//! Cross-crate determinism: every stochastic component is seeded, so every
//! experiment must be bit-reproducible run to run. These tests re-run
//! representative pipelines twice and require identical outputs — the
//! property that makes EXPERIMENTS.md's numbers stable.

use teco::dl::data::MarkovTextGen;
use teco::dl::{AdamConfig, OffloadedAdam, TinyGpt, TinyGptConfig, Visitable};
use teco::md::{sec7_experiment, LjSystem, MdTiming};
use teco::offload::convergence::{run, ConvergenceConfig, DbaSchedule, Task};
use teco::offload::{autotune, experiments, Calibration};
use teco::sim::SimRng;

#[test]
fn convergence_runs_are_bit_identical() {
    for task in [Task::LanguageModel, Task::Classification, Task::Gcn, Task::Seq2Seq] {
        let cfg = ConvergenceConfig {
            task,
            steps: 40,
            lr: 3e-3,
            dba: Some(DbaSchedule { act_aft_steps: 10, dirty_bytes: 2 }),
            ..Default::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.losses, b.losses, "{task:?} losses diverged");
        assert_eq!(a.final_metric.to_bits(), b.final_metric.to_bits());
    }
}

#[test]
fn full_training_with_dba_is_reproducible() {
    let train = || {
        let mut rng = SimRng::seed_from_u64(321);
        let gen = MarkovTextGen::new(16, 2, &mut rng);
        let cfg = TinyGptConfig { vocab: 16, dim: 16, heads: 2, layers: 1, max_seq: 10 };
        let mut m = TinyGpt::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig::default());
        let mut data_rng = rng.fork("d");
        for step in 0..30u64 {
            let seq = gen.sample(8, &mut data_rng);
            m.zero_grads();
            m.train_sequence(&seq, 1.0);
            if step >= 10 {
                opt.step_with_writeback(&mut m, &mut |_, old, new| {
                    teco::offload::dba_merge_bits(old, new, 2)
                });
            } else {
                opt.step(&mut m);
            }
        }
        let mut bits = Vec::new();
        m.visit_params(&mut |p| bits.extend(p.value.iter().map(|v| v.to_bits())));
        bits
    };
    assert_eq!(train(), train());
}

#[test]
fn md_trajectory_is_reproducible() {
    let run_md = || {
        let mut rng = SimRng::seed_from_u64(5);
        let mut sys = LjSystem::fcc_melt(3, 0.8442, 1.44, 0.002, &mut rng);
        for _ in 0..40 {
            sys.step();
        }
        (sys.total_energy(), sys.position_stream())
    };
    let (e1, p1) = run_md();
    let (e2, p2) = run_md();
    assert_eq!(e1.to_bits(), e2.to_bits());
    assert_eq!(p1.len(), p2.len());
    for (a, b) in p1.iter().zip(&p2) {
        assert_eq!(a.to_bits(), b.to_bits());
    }
    let s1 = sec7_experiment(&MdTiming::paper(), 32_000);
    let s2 = sec7_experiment(&MdTiming::paper(), 32_000);
    assert_eq!(s1.improvement_pct.to_bits(), s2.improvement_pct.to_bits());
}

#[test]
fn timing_experiments_are_reproducible() {
    let cal = Calibration::paper();
    let go = || {
        let t1: Vec<f64> = experiments::table1(&cal).iter().map(|r| r.measured_pct).collect();
        let t6: Vec<f64> = experiments::table6(&cal).iter().map(|r| r.teco_reduction).collect();
        let ab: Vec<f64> =
            experiments::ablation_inval_vs_update(&cal).iter().map(|r| r.penalty_pct).collect();
        (t1, t6, ab)
    };
    let a = go();
    let b = go();
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

/// The sweep matrix behind `bench_results/*.json`: run-to-run JSON must be
/// byte-identical, and the worker count must never leak into the output —
/// serial (workers = 1) and parallel (the core count `cargo bench` and CI
/// would use) executions of the same grid must serialize identically.
/// This is the property that lets the CI smoke jobs `cmp` two runs.
#[test]
fn sweep_json_is_byte_identical_across_runs_and_worker_counts() {
    let parallel = teco::dl::num_cores().max(2);
    let fault = |workers| {
        serde_json::to_string(&teco_bench::sweeps::fault_rows_with_workers(workers)).unwrap()
    };
    let scaling = |workers| {
        serde_json::to_string(&teco_bench::sweeps::scaling_rows_with_workers(workers)).unwrap()
    };

    let fault_serial = fault(1);
    assert_eq!(fault_serial, fault(1), "fault sweep diverged run to run");
    assert_eq!(fault_serial, fault(parallel), "fault sweep leaked its worker count");

    let scaling_serial = scaling(1);
    assert_eq!(scaling_serial, scaling(1), "scaling sweep diverged run to run");
    assert_eq!(scaling_serial, scaling(parallel), "scaling sweep leaked its worker count");

    let collective = |workers| {
        serde_json::to_string(&teco_bench::sweeps::collective_sweep_with_workers(workers)).unwrap()
    };
    let collective_serial = collective(1);
    assert_eq!(collective_serial, collective(1), "collective sweep diverged run to run");
    assert_eq!(collective_serial, collective(parallel), "collective sweep leaked its worker count");
}

#[test]
fn bayesian_optimizer_is_reproducible() {
    let run_bo = || {
        let mut f = |x: f64| (x - 5.0).powi(2) + (x * 3.0).sin();
        let domain: Vec<f64> = (0..=20).map(|i| i as f64 * 0.5).collect();
        let r = autotune::minimize(&mut f, &domain, 3, 6, 99);
        (r.best_x, r.history.len())
    };
    assert_eq!(run_bo(), run_bo());
}
