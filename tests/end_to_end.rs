//! Cross-crate integration tests: the functional TECO stack driven by real
//! training, validating that the three independent implementations of the
//! DBA semantics — the word-level optimizer hook, the line-level
//! Aggregator/Disaggregator hardware model, and the session's full
//! push-param path — agree bit-for-bit.

use teco::core::{TecoConfig, TecoSession};
use teco::dl::layers::Visitable;
use teco::dl::{AdamConfig, OffloadedAdam, TinyGpt, TinyGptConfig};
use teco::mem::{Addr, LineData, WORDS_PER_LINE};
use teco::offload::convergence::dba_merge_bits;
use teco::sim::{SimRng, SimTime};

/// Train a real model; ship every parameter update through the *session's*
/// hardware path (aggregate → link → disaggregate-merge) and check the
/// device copy equals what the word-level hook computes.
#[test]
fn hardware_path_matches_optimizer_hook_on_real_training() {
    let mut rng = SimRng::seed_from_u64(99);
    let cfg = TinyGptConfig { vocab: 16, dim: 8, heads: 2, layers: 1, max_seq: 8 };
    let mut model = TinyGpt::new(cfg, &mut rng);
    let mut opt = OffloadedAdam::new(AdamConfig { lr: 1e-3, ..Default::default() });

    // Mirror of the GPU copy, maintained through the session's line path.
    let n_params = model.param_count();
    let n_lines = (n_params * 4).div_ceil(64);
    let mut session = TecoSession::new(
        TecoConfig::default()
            .with_act_aft_steps(2)
            .with_giant_cache_bytes((n_lines as u64 + 1) * 64),
    )
    .unwrap();
    let (_, base) = session.alloc_tensor("params", n_lines as u64 * 64).unwrap();

    // Initialize the device copy with the initial parameters.
    let snapshot = |m: &mut TinyGpt| {
        let mut v = Vec::new();
        m.visit_params(&mut |p| v.extend_from_slice(&p.value));
        v
    };
    let to_lines = |vals: &[f32]| -> Vec<LineData> {
        let mut lines = Vec::with_capacity(n_lines);
        for chunk_idx in 0..n_lines {
            let mut words = [0f32; WORDS_PER_LINE];
            for (w, slot) in words.iter_mut().enumerate() {
                let idx = chunk_idx * WORDS_PER_LINE + w;
                if idx < vals.len() {
                    *slot = vals[idx];
                }
            }
            lines.push(LineData::from_f32(words));
        }
        lines
    };
    let init = snapshot(&mut model);
    session.push_param_lines(base, &to_lines(&init), SimTime::ZERO).unwrap();

    let seq = [1usize, 2, 3, 4, 5, 6];
    let mut now = SimTime::ZERO;
    for step in 0..4u64 {
        model.zero_grads();
        model.train_sequence(&seq, 1.0);

        let dba = session.check_activation(step);
        let dirty = if dba { 2u8 } else { 4 };
        // Word-level hook applies the same merge the hardware will.
        opt.step_with_writeback(&mut model, &mut |_, old, new| dba_merge_bits(old, new, dirty));

        // Ship the *fresh master* values through the hardware path; the
        // device copy after disaggregation must equal the hook's output
        // (which is what `model` now holds as its GPU working copy).
        let mut fresh_master = Vec::new();
        model.visit_params(&mut |p| {
            let name = p.name.clone();
            fresh_master.extend_from_slice(opt.master(&name).unwrap());
        });
        session.push_param_lines(base, &to_lines(&fresh_master), now).unwrap();
        now = session.cxlfence_params(now);

        // Compare device copy to the model's working copy.
        let gpu = snapshot(&mut model);
        for (li, _) in to_lines(&gpu).iter().enumerate() {
            let device = session.device_read_line(Addr(base.0 + li as u64 * 64)).unwrap();
            let words = device.to_f32();
            for (w, word) in words.iter().enumerate() {
                let idx = li * WORDS_PER_LINE + w;
                if idx < gpu.len() {
                    assert_eq!(
                        word.to_bits(),
                        gpu[idx].to_bits(),
                        "step {step} param {idx} diverged (dba={dba})"
                    );
                }
            }
        }
    }
    assert!(session.dba_active());
    assert!(session.stats().bytes_to_device > 0);
}

/// Mixed-precision path (§V): FP32 parameters cross the link (so DBA
/// applies), and the GPU-side FP16 cast happens after the merge. The cast
/// of a DBA-merged value equals the cast of the exact value whenever the
/// change fits the low two bytes.
#[test]
fn mixed_precision_cast_after_dba_merge() {
    use teco::dl::half::through_f16;
    let mut rng = SimRng::seed_from_u64(5);
    for _ in 0..1000 {
        let exact = rng.normal(0.0, 0.5) as f32;
        // A small perturbation that fits the low two bytes.
        let stale_bits = (exact.to_bits() & 0xFFFF_0000) | (rng.next_u64() as u32 & 0xFFFF);
        let merged = f32::from_bits(dba_merge_bits(stale_bits, exact.to_bits(), 2));
        assert_eq!(merged.to_bits(), exact.to_bits());
        assert_eq!(through_f16(merged).to_bits(), through_f16(exact).to_bits());
    }
}

/// LZ4 round-trips the byte image of *real trained parameters* — and barely
/// compresses them (the Table VIII premise).
#[test]
fn lz4_on_real_trained_parameters() {
    use teco::compress::{compress, compression_ratio, decompress};
    let mut rng = SimRng::seed_from_u64(21);
    let cfg = TinyGptConfig { vocab: 32, dim: 16, heads: 2, layers: 2, max_seq: 12 };
    let mut model = TinyGpt::new(cfg, &mut rng);
    let mut opt = OffloadedAdam::new(AdamConfig::default());
    let seq = [3usize, 1, 4, 1, 5, 9, 2, 6];
    for _ in 0..30 {
        model.zero_grads();
        model.train_sequence(&seq, 1.0);
        opt.step(&mut model);
    }
    let mut bytes = Vec::new();
    model.visit_params(&mut |p| {
        for v in &p.value {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
    });
    let c = compress(&bytes);
    assert_eq!(decompress(&c).unwrap(), bytes, "lossless round trip");
    let ratio = compression_ratio(bytes.len(), c.len());
    assert!(ratio < 0.25, "trained params should be nearly incompressible: {ratio}");
}

/// The full experiment pipeline is deterministic end to end.
#[test]
fn experiment_pipeline_deterministic() {
    use teco::offload::{experiments, Calibration};
    let cal = Calibration::paper();
    let a = experiments::fig11_table4(&cal);
    let b = experiments::fig11_table4(&cal);
    for (x, y) in a.iter().zip(&b) {
        assert_eq!(x.oom, y.oom);
        if !x.oom {
            assert_eq!(x.teco_reduction.to_bits(), y.teco_reduction.to_bits());
        }
    }
}

/// Session + model-zoo sizing: every Table III giant cache accommodates the
/// FP16 parameter copy plus a gradient buffer, as §IV-A1 requires.
#[test]
fn giant_cache_sizes_fit_their_models() {
    for spec in teco::dl::ModelSpec::table3() {
        let mut session = TecoSession::new(
            TecoConfig::default().with_giant_cache_bytes(spec.giant_cache_bytes()),
        )
        .unwrap();
        // FP16 working parameters + a 64 MB gradient buffer.
        session.alloc_tensor("params_fp16", spec.params * 2).unwrap_or_else(|e| {
            panic!("{}: fp16 params don't fit the giant cache: {e}", spec.name)
        });
        session
            .alloc_tensor("grad_buffer", 64 << 20)
            .unwrap_or_else(|e| panic!("{}: grad buffer doesn't fit: {e}", spec.name));
    }
}
