//! End-to-end placement anchor: the default (single-tier) policy must be
//! byte-identical to the pre-placement-engine behavior.
//!
//! The fixture `tests/golden/placement_anchor.md` was blessed from the
//! tree *before* the placement engine landed, so every digest below is a
//! commitment to the pre-PR bytes: the default TECO configuration, a
//! default session's serialized snapshot (fault-free and faulty), and the
//! serialized cluster/fabric reports for N ∈ {1, 2} and H ∈ {1, 2} with
//! and without fault injection. If wiring the placement engine through
//! `TecoSession`/`ClusterSession` perturbs any of these encodings — an
//! extra config key, a reordered snapshot field, a changed stat — the
//! digest moves and this test fails. Regenerate (only for an *intended*
//! byte change) with `TECO_BLESS=1 cargo test --test placement_anchor`.

use std::fmt::Write as _;
use std::path::PathBuf;

use teco::core::{run_cluster_uninterrupted, run_fabric_uninterrupted, TecoConfig};
use teco_bench::sweeps::{fabric_workload, fnv1a_hex, run_fault_workload, scaling_workload};
use teco_cxl::{FaultConfig, RasConfig};
use teco_testsupport::golden::assert_golden;

fn fixture() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden/placement_anchor.md")
}

/// The faulty variant drives the cluster/fabric paths through pool-media
/// RAS (the churn sweep's proven recipe — link-level faults can kill a
/// cluster run, RAS cannot).
fn ras() -> RasConfig {
    RasConfig { media_faults_per_tick: 0.5, scrub_lines_per_tick: 16, spare_lines: 128, seed: 11 }
}

fn anchor_document() -> String {
    let mut out = String::from("# Placement anchor digests (pre-engine bytes)\n\n");

    // The default configuration's exact serialized form. The placement
    // field must be omitted at its default, so this encoding can never
    // carry a `placement` key.
    let cfg_json = serde_json::to_string(&TecoConfig::default()).expect("serialize config");
    assert!(
        !cfg_json.contains("placement"),
        "default TecoConfig must not serialize a placement field"
    );
    let _ = writeln!(out, "default_config: `{}`", fnv1a_hex(cfg_json.as_bytes()));

    // A default session after the fixed fault-sweep workload, fault-free
    // and with the fault injector on: the full snapshot encoding.
    let (clean, _, _) = run_fault_workload(2, FaultConfig::off());
    let clean_json = serde_json::to_string(&clean.snapshot()).expect("serialize snapshot");
    let _ = writeln!(out, "session_clean: `{}`", fnv1a_hex(clean_json.as_bytes()));
    let fault = FaultConfig {
        crc_error_rate: 0.01,
        stall_rate: 0.01,
        stall_ns: 100,
        poison_rate: 0.0025,
        dba_checksum_error_rate: 0.01,
        retry_limit: 16,
        seed: 42,
        ..FaultConfig::off()
    };
    let (faulty, _, _) = run_fault_workload(2, fault);
    let faulty_json = serde_json::to_string(&faulty.snapshot()).expect("serialize snapshot");
    let _ = writeln!(out, "session_faulty: `{}`", fnv1a_hex(faulty_json.as_bytes()));

    // Cluster reports, N ∈ {1, 2}, fault-free and under media RAS.
    for devices in [1usize, 2] {
        let w = scaling_workload(devices, 4);
        let report = run_cluster_uninterrupted(&w).expect("cluster run completes").report;
        let json = serde_json::to_string(&report).expect("serialize report");
        let _ = writeln!(out, "cluster_n{devices}_clean: `{}`", fnv1a_hex(json.as_bytes()));

        let mut wf = scaling_workload(devices, 4);
        wf.cfg.base = wf.cfg.base.clone().with_ras(ras());
        let report = run_cluster_uninterrupted(&wf).expect("faulty cluster run completes").report;
        let json = serde_json::to_string(&report).expect("serialize report");
        let _ = writeln!(out, "cluster_n{devices}_faulty: `{}`", fnv1a_hex(json.as_bytes()));
    }

    // Fabric reports, H ∈ {1, 2}, fault-free and under media RAS.
    for hosts in [1usize, 2] {
        let w = fabric_workload(hosts);
        let report = run_fabric_uninterrupted(&w).expect("fabric run completes").report;
        let json = serde_json::to_string(&report).expect("serialize report");
        let _ = writeln!(out, "fabric_h{hosts}_clean: `{}`", fnv1a_hex(json.as_bytes()));

        let mut wf = fabric_workload(hosts);
        wf.base.cfg.base = wf.base.cfg.base.clone().with_ras(ras());
        let report = run_fabric_uninterrupted(&wf).expect("faulty fabric run completes").report;
        let json = serde_json::to_string(&report).expect("serialize report");
        let _ = writeln!(out, "fabric_h{hosts}_faulty: `{}`", fnv1a_hex(json.as_bytes()));
    }

    out
}

#[test]
fn default_policy_byte_identical_to_pre_engine_behavior() {
    assert_golden(fixture(), &anchor_document());
}
