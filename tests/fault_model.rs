//! Cross-crate fault-model acceptance tests: the seeded link fault
//! injector plus the session's recovery ladder, driven end to end.
//!
//! The four properties pinned here are the PR's acceptance criteria:
//! identical seed+config ⇒ identical fault schedule and report; recoverable
//! faults leave the giant cache bit-identical to a fault-free run; zero
//! injected faults ⇒ timing and traffic identical to the fault-model-off
//! path; and poison quarantines a line without corrupting its neighbors.

use teco::core::{TecoConfig, TecoSession};
use teco::cxl::{Direction, FaultConfig};
use teco::mem::{Addr, LineData};
use teco::offload::fault_report_md;
use teco::sim::{Interval, SimTime};

const LINES: u64 = 128;

fn base_line(i: u64) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16usize {
        l.set_word(w, ((i as u32) << 16) ^ ((w as u32) << 26) | 0x0AAA);
    }
    l
}

/// A DBA-conformant update of `base_line(i)`: high halves unchanged.
fn update_line(step: u64, i: u64) -> LineData {
    let mut l = base_line(i);
    for w in 0..16usize {
        let lo = (0x1000u32.wrapping_add(step as u32 * 257).wrapping_add(w as u32)) & 0xFFFF;
        l.set_word(w, (l.word(w) & 0xFFFF_0000) | lo);
    }
    l
}

/// Run the reference workload: establish resident copies, activate DBA,
/// then three rounds of conformant updates with a gradient stream and two
/// fences per round. Returns (session, end time, params base).
fn run_workload(fault: FaultConfig) -> (TecoSession, SimTime, Addr) {
    let cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 20)
        .with_act_aft_steps(1)
        .with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, pbase) = s.alloc_tensor("params", LINES * 64).expect("alloc params");
    let (_, gbase) = s.alloc_tensor("grads", LINES * 64).expect("alloc grads");
    let mut now = SimTime::ZERO;
    for step in 0..4u64 {
        for i in 0..LINES {
            let _ = s.push_grad_line(Addr(gbase.0 + i * 64), update_line(step, i), now);
        }
        now = s.cxlfence_grads(now);
        s.check_activation(step);
        let lines: Vec<LineData> = if step == 0 {
            (0..LINES).map(base_line).collect()
        } else {
            (0..LINES).map(|i| update_line(step, i)).collect()
        };
        s.push_param_lines(pbase, &lines, now).expect("param push");
        now = s.cxlfence_params(now);
    }
    (s, now, pbase)
}

fn recoverable() -> FaultConfig {
    // The always-recoverable fault classes: CRC errors and stalls are
    // absorbed by link replay, checksum mismatches by the full-line retry.
    // (Poison is only best-effort recoverable — a poisoned *retry*
    // deliberately degrades the region — so it gets its own test.)
    FaultConfig {
        crc_error_rate: 0.2,
        stall_rate: 0.1,
        stall_ns: 50,
        dba_checksum_error_rate: 0.2,
        retry_limit: 64, // high enough that nothing exhausts
        seed: 1234,
        ..FaultConfig::off()
    }
}

#[test]
fn same_seed_same_fault_schedule_and_report() {
    let (a, ta, ba) = run_workload(recoverable());
    let (b, tb, bb) = run_workload(recoverable());
    assert_eq!(ta, tb, "simulated end times diverged");
    assert_eq!(a.fault_report(), b.fault_report(), "fault schedules diverged");
    assert_eq!(a.stats().bytes_to_device, b.stats().bytes_to_device);
    assert_eq!(a.link().volume(Direction::ToDevice), b.link().volume(Direction::ToDevice));
    for i in 0..LINES {
        assert_eq!(
            a.device_read_line(Addr(ba.0 + i * 64)).unwrap(),
            b.device_read_line(Addr(bb.0 + i * 64)).unwrap(),
            "line {i}"
        );
    }
    // The rendered report is identical too (what the CI smoke job diffs).
    assert_eq!(
        fault_report_md(&a.fault_report(), a.degraded_regions()),
        fault_report_md(&b.fault_report(), b.degraded_regions())
    );
    assert!(a.fault_report().any(), "workload must actually exercise faults");
}

#[test]
fn recoverable_faults_leave_cache_bit_identical() {
    let (faulty, tf, bf) = run_workload(recoverable());
    let (clean, tc, bc) = run_workload(FaultConfig::off());
    assert_eq!(faulty.fault_report().degraded_regions, 0, "all faults recoverable");
    for i in 0..LINES {
        assert_eq!(
            faulty.device_read_line(Addr(bf.0 + i * 64)).unwrap(),
            clean.device_read_line(Addr(bc.0 + i * 64)).unwrap(),
            "line {i}"
        );
    }
    // Only time and the fault report differ.
    assert!(tf > tc, "recovery must cost simulated time");
    assert!(!clean.fault_report().any());
}

#[test]
fn zero_rates_behave_exactly_like_fault_model_off() {
    // All-zero rates leave the injector disarmed: the session must take
    // the identical fast path — same timing, traffic, stats, and contents
    // as a config that never mentioned faults.
    let zeroed = FaultConfig { seed: 99, fence_timeout_ns: 0, ..FaultConfig::off() };
    let (a, ta, ba) = run_workload(zeroed);
    let (b, tb, bb) = run_workload(FaultConfig::off());
    assert_eq!(ta, tb, "timing must be identical");
    assert_eq!(a.stats().bytes_to_device, b.stats().bytes_to_device);
    assert_eq!(a.stats().bytes_to_host, b.stats().bytes_to_host);
    assert_eq!(a.link().volume(Direction::ToDevice), b.link().volume(Direction::ToDevice));
    assert_eq!(a.link().volume(Direction::ToHost), b.link().volume(Direction::ToHost));
    assert!(!a.fault_report().any());
    for i in 0..LINES {
        assert_eq!(
            a.device_read_line(Addr(ba.0 + i * 64)).unwrap(),
            b.device_read_line(Addr(bb.0 + i * 64)).unwrap(),
        );
    }
}

#[test]
fn poison_quarantines_without_corrupting_neighbors() {
    // Establish a clean region, then push one line under poison_rate 1.0:
    // the victim quarantines (and the ladder heals or degrades it), while
    // every neighbor keeps its established contents untouched.
    let fault = FaultConfig { poison_rate: 1.0, seed: 3, ..FaultConfig::off() };
    let cfg = TecoConfig::default().with_giant_cache_bytes(1 << 20).with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, base) = s.alloc_tensor("params", LINES * 64).expect("alloc");
    // The establishing pushes themselves run under poison, so every line
    // already exercises quarantine-then-heal; afterwards re-push only the
    // victim and check the others never move.
    for i in 0..LINES {
        s.push_param_line(Addr(base.0 + i * 64), base_line(i), SimTime::ZERO).expect("establish");
    }
    let before: Vec<LineData> =
        (0..LINES).map(|i| s.device_read_line(Addr(base.0 + i * 64)).unwrap()).collect();
    for (i, b) in before.iter().enumerate() {
        assert_eq!(*b, base_line(i as u64), "establishment delivered exact data");
    }
    let victim = LINES / 2;
    let fresh = update_line(9, victim);
    s.push_param_line(Addr(base.0 + victim * 64), fresh, SimTime::from_us(1)).expect("victim push");
    assert!(s.fault_report().quarantined_lines >= 1, "poison must quarantine");
    assert_eq!(s.device_read_line(Addr(base.0 + victim * 64)).unwrap(), fresh);
    assert!(!s.giant_cache().is_quarantined(Addr(base.0 + victim * 64)), "healed");
    for i in 0..LINES {
        if i == victim {
            continue;
        }
        assert_eq!(
            s.device_read_line(Addr(base.0 + i * 64)).unwrap(),
            before[i as usize],
            "neighbor {i} must be untouched"
        );
    }
}

#[test]
fn fence_all_with_traffic_both_directions_and_timeout() {
    // Satellite: simultaneous in-flight traffic in both directions. An
    // unbounded fence_all outlasts both drains; a tight timeout surfaces
    // the typed error while per-direction fences on a drained link pass.
    let fault = FaultConfig {
        stall_rate: 1.0,
        stall_ns: 10,
        fence_timeout_ns: 10_000,
        seed: 8,
        ..FaultConfig::off()
    };
    let cfg = TecoConfig::default().with_giant_cache_bytes(1 << 21).with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, pbase) = s.alloc_tensor("params", 2048 * 64).expect("alloc p");
    let (_, gbase) = s.alloc_tensor("grads", 2048 * 64).expect("alloc g");
    let mut last: Option<Interval> = None;
    for i in 0..2048u64 {
        let iv = s.push_param_line(Addr(pbase.0 + i * 64), base_line(i), SimTime::ZERO).unwrap();
        let gv = s.push_grad_line(Addr(gbase.0 + i * 64), base_line(i), SimTime::ZERO).unwrap();
        let both = Interval::new(iv.start.min(gv.start), iv.end.max(gv.end));
        last = Some(match last {
            None => both,
            Some(p) => Interval::new(p.start.min(both.start), p.end.max(both.end)),
        });
    }
    // Both directions loaded beyond the 10 µs budget → both time out.
    assert!(s.try_cxlfence_params(SimTime::ZERO).is_err());
    assert!(s.try_cxlfence_grads(SimTime::ZERO).is_err());
    assert_eq!(s.fault_report().fence_timeouts, 2);
    // The unbounded fences wait out both drains.
    let down = s.cxlfence_params(SimTime::ZERO);
    let up = s.cxlfence_grads(SimTime::ZERO);
    assert!(down.max(up) >= last.unwrap().end, "fences outlast all in-flight traffic");
    // After the drain, the same bounded fences succeed.
    let later = down.max(up);
    assert!(s.try_cxlfence_params(later).is_ok());
    assert!(s.try_cxlfence_grads(later).is_ok());
    assert_eq!(s.fault_report().fence_timeouts, 2, "no new timeouts after drain");
}
