//! Crash-consistency integration tests: snapshot → serialize → restore
//! must be observationally invisible at every layer, and corrupted
//! snapshot bytes must fail with a typed [`SnapshotError`], never a panic.
//!
//! The per-crate invariants live next to their subsystems (`crates/sim`
//! unit-tests the envelope, `crates/core` kills the session harness at
//! every boundary); these tests exercise the same machinery through the
//! umbrella crate's public surface, the way a user embedding TECO would.

use proptest::prelude::*;
use serde::{Deserialize, Serialize};
use teco::core::{
    run_resumed, run_uninterrupted, KillPoint, ResumeWorkload, StepBoundary, TecoTrainer,
};
use teco::cxl::FaultConfig;
use teco::dl::data::MarkovTextGen;
use teco::dl::{
    capture_params, restore_params, AdamConfig, OffloadedAdam, TinyGpt, TinyGptConfig, Visitable,
};
use teco::sim::{
    decode_snapshot, encode_snapshot, Engine, EngineState, Model, Scheduler, SchedulerState,
    SimRng, SimTime, SnapshotError,
};

/// A model that just records every delivery, in order.
struct Drain {
    log: Vec<(u64, u32)>,
}

impl Model for Drain {
    type Event = u32;
    fn handle(&mut self, now: SimTime, event: u32, _sched: &mut Scheduler<u32>) {
        self.log.push((now.as_ps(), event));
    }
}

/// Concrete serde image of an [`EngineState<u32>`] — the generic parts
/// structs carry no serde impls by design; callers embed the triples.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CalendarSnapshot {
    now_ps: u64,
    seq: u64,
    scheduled: u64,
    processed: u64,
    entries: Vec<(u64, u64, u32)>,
}

impl CalendarSnapshot {
    fn of(state: &EngineState<u32>) -> Self {
        CalendarSnapshot {
            now_ps: state.sched.now.as_ps(),
            seq: state.sched.seq,
            scheduled: state.sched.scheduled,
            processed: state.processed,
            entries: state.sched.entries.iter().map(|&(t, s, e)| (t.as_ps(), s, e)).collect(),
        }
    }

    fn into_state(self) -> EngineState<u32> {
        EngineState {
            sched: SchedulerState {
                now: SimTime::from_ps(self.now_ps),
                seq: self.seq,
                scheduled: self.scheduled,
                entries: self
                    .entries
                    .into_iter()
                    .map(|(t, s, e)| (SimTime::from_ps(t), s, e))
                    .collect(),
            },
            processed: self.processed,
        }
    }
}

proptest! {
    /// Snapshot a half-drained event calendar through the full envelope
    /// (capture → JSON → framed bytes → decode → restore) and require the
    /// restored engine to deliver the exact remaining event stream.
    #[test]
    fn calendar_snapshot_roundtrip_preserves_event_stream(
        events in prop::collection::vec((0u64..200_000, 0u32..1000), 0..48),
        drains in 0u64..24,
    ) {
        let mut live = Engine::new(Drain { log: Vec::new() });
        live.prime_batch(events.iter().map(|&(t, e)| (SimTime::from_ps(t), e)));
        for _ in 0..drains {
            if !live.step() {
                break;
            }
        }

        // The kill: serialize the calendar, rebuild from nothing but bytes.
        let bytes = encode_snapshot(&CalendarSnapshot::of(&live.capture()));
        let snap: CalendarSnapshot = decode_snapshot(&bytes).expect("clean bytes decode");
        let mut restored = Engine::restore(Drain { log: Vec::new() }, snap.into_state());

        let live_end = live.run();
        let restored_end = restored.run();
        prop_assert_eq!(live_end, restored_end);
        prop_assert_eq!(live.events_processed(), restored.events_processed());
        // The restored run replays exactly the deliveries the live engine
        // made *after* the snapshot point.
        let live_log = &live.model().log;
        let tail = &live_log[live_log.len() - restored.model().log.len()..];
        prop_assert_eq!(&restored.model().log[..], tail);
    }

    /// Corrupted snapshot bytes — truncations, bit flips, raw garbage —
    /// must yield a typed [`SnapshotError`] with a usable message; decoding
    /// must never panic and never silently accept damaged state.
    #[test]
    fn corrupt_snapshot_bytes_fail_typed(
        payload in prop::collection::vec(any::<u64>(), 0..32),
        cut_frac in any::<u16>(),
        flip_frac in any::<u16>(),
    ) {
        let bytes = encode_snapshot(&payload);

        // Truncate at a strictly-shorter length.
        let cut = cut_frac as usize % bytes.len();
        let err = decode_snapshot::<Vec<u64>>(&bytes[..cut])
            .expect_err("truncated envelope must not decode");
        prop_assert!(!err.to_string().is_empty());

        // Flip one bit anywhere in the envelope.
        let mut flipped = bytes.clone();
        let bit = flip_frac as usize % (flipped.len() * 8);
        flipped[bit / 8] ^= 1 << (bit % 8);
        let err = decode_snapshot::<Vec<u64>>(&flipped)
            .expect_err("bit-flipped envelope must not decode");
        match err {
            SnapshotError::BadMagic
            | SnapshotError::UnsupportedVersion(_)
            | SnapshotError::Truncated { .. }
            | SnapshotError::ChecksumMismatch { .. }
            | SnapshotError::Corrupt(_) => {}
        }

        // Raw garbage (the payload's own bytes, headerless).
        let junk: Vec<u8> = payload.iter().flat_map(|v| v.to_le_bytes()).collect();
        prop_assert!(decode_snapshot::<Vec<u64>>(&junk).is_err());
    }
}

fn faulty_workload(seed: u64) -> ResumeWorkload {
    let mut w = ResumeWorkload::small(seed);
    w.cfg = w.cfg.with_fault(FaultConfig {
        crc_error_rate: 0.25,
        stall_rate: 0.1,
        stall_ns: 40,
        dba_checksum_error_rate: 0.2,
        poison_rate: 0.02,
        retry_limit: 64,
        seed: 1234,
        ..FaultConfig::off()
    });
    w
}

/// Kill+resume equivalence through the umbrella crate: the resumed run's
/// JSON report is byte-identical to the uninterrupted run's, for both a
/// zero-fault and a heavily faulty configuration (the latter snapshots the
/// fault injector's RNG mid-schedule), and resuming is itself
/// deterministic: two resumed runs produce equal outcomes.
#[test]
fn resume_equivalence_zero_fault_and_faulty() {
    for (name, w) in [("zero-fault", ResumeWorkload::small(3)), ("faulty", faulty_workload(3))] {
        let base = run_uninterrupted(&w).expect("uninterrupted run completes");
        let base_json = serde_json::to_string(&base.report).expect("serialize baseline");
        for boundary in [
            StepBoundary::AfterGradFence,
            StepBoundary::AfterActivation,
            StepBoundary::AfterParamFence,
        ] {
            let kill = KillPoint { step: w.steps / 2, boundary };
            let resumed = run_resumed(&w, kill).expect("resumed run completes");
            let resumed_json = serde_json::to_string(&resumed.report).expect("serialize resumed");
            assert_eq!(resumed_json, base_json, "{name} diverged at {boundary:?}");
            assert_eq!(resumed.snapshots_taken, 1);
            assert_eq!(resumed.restores, 1);
            let again = run_resumed(&w, kill).expect("second resumed run completes");
            assert_eq!(again, resumed, "{name}: resuming must be deterministic");
        }
    }
}

/// Audit-enabled runs pass cleanly on the stock workload configs — with
/// and without the fault model, interrupted and not.
#[test]
fn audited_runs_stay_clean() {
    for w in [ResumeWorkload::small(9), faulty_workload(9)] {
        let mut w = w;
        w.cfg = w.cfg.with_audit(true);
        let base = run_uninterrupted(&w).expect("audited run completes");
        assert!(base.report.audit_enabled);
        assert!(base.last_audit_error.is_none(), "audit: {:?}", base.last_audit_error);
        let kill = KillPoint { step: 2, boundary: StepBoundary::AfterParamFence };
        let resumed = run_resumed(&w, kill).expect("audited resume completes");
        assert!(resumed.last_audit_error.is_none(), "audit: {:?}", resumed.last_audit_error);
        assert_eq!(
            serde_json::to_string(&resumed.report).expect("serialize resumed"),
            serde_json::to_string(&base.report).expect("serialize baseline"),
        );
    }
}

/// Whole-trainer resume: kill a real TinyGpt training loop mid-run,
/// serialize trainer + optimizer + model parameters + data RNG through the
/// snapshot envelope, restore into fresh objects, and require the
/// continuation to match an uninterrupted run bit for bit — losses, step
/// reports, and every final parameter.
#[test]
fn trainer_and_model_resume_bit_identically() {
    #[derive(Serialize, Deserialize)]
    struct FullCheckpoint {
        trainer: teco::core::TrainerSnapshot,
        params: Vec<teco::dl::ParamSnapshot>,
        data_rng: [u64; 4],
    }

    let build = || {
        let mut rng = SimRng::seed_from_u64(77);
        let gen = MarkovTextGen::new(16, 2, &mut rng);
        let cfg = TinyGptConfig { vocab: 16, dim: 16, heads: 2, layers: 1, max_seq: 12 };
        let model = TinyGpt::new(cfg, &mut rng);
        let data_rng = rng.fork("data");
        let tcfg =
            teco::core::TecoConfig::default().with_act_aft_steps(4).with_giant_cache_bytes(1 << 20);
        let trainer = TecoTrainer::new(
            tcfg,
            OffloadedAdam::new(AdamConfig { lr: 2e-3, ..Default::default() }),
        )
        .expect("default config with a 1 MiB giant cache validates");
        (gen, model, data_rng, trainer)
    };
    let step = |t: &mut TecoTrainer, m: &mut TinyGpt, gen: &MarkovTextGen, rng: &mut SimRng| {
        let seq = gen.sample(10, rng);
        t.train_step(m, &mut |m: &mut TinyGpt| {
            m.zero_grads();
            m.train_sequence(&seq, 1.0)
        })
    };
    let param_bits = |m: &mut TinyGpt| -> Vec<Vec<u32>> {
        capture_params(m).into_iter().map(|p| p.value_bits).collect()
    };

    // Uninterrupted reference: 12 steps straight through.
    let (gen, mut model, mut data_rng, mut trainer) = build();
    for _ in 0..12 {
        step(&mut trainer, &mut model, &gen, &mut data_rng);
    }
    let ref_reports = trainer.reports().to_vec();
    let ref_bits = param_bits(&mut model);

    // Killed run: 6 steps, snapshot everything, drop it all, restore from
    // bytes, finish.
    let (gen, mut model, mut data_rng, mut trainer) = build();
    for _ in 0..6 {
        step(&mut trainer, &mut model, &gen, &mut data_rng);
    }
    let bytes = encode_snapshot(&FullCheckpoint {
        trainer: trainer.snapshot(),
        params: capture_params(&mut model),
        data_rng: data_rng.state(),
    });
    drop((trainer, model, data_rng));

    let ckpt: FullCheckpoint = decode_snapshot(&bytes).expect("clean checkpoint decodes");
    let mut trainer = TecoTrainer::from_snapshot(&ckpt.trainer).expect("trainer restores");
    let mut rng = SimRng::seed_from_u64(77);
    let gen = MarkovTextGen::new(16, 2, &mut rng);
    let cfg = TinyGptConfig { vocab: 16, dim: 16, heads: 2, layers: 1, max_seq: 12 };
    let mut model = TinyGpt::new(cfg, &mut rng);
    restore_params(&mut model, &ckpt.params);
    let mut data_rng = SimRng::from_state(ckpt.data_rng);
    assert_eq!(trainer.steps(), 6);
    for _ in 0..6 {
        step(&mut trainer, &mut model, &gen, &mut data_rng);
    }

    assert_eq!(trainer.reports(), &ref_reports[..], "step reports diverged after resume");
    assert_eq!(param_bits(&mut model), ref_bits, "final parameters diverged after resume");
}
