//! The paper's headline claims, each asserted against the reproduction.
//! These are the acceptance tests of the whole artifact: if one fails, a
//! table or figure has drifted from the paper's shape.

use teco::dl::ModelSpec;
use teco::md::{sec7_experiment, MdTiming};
use teco::offload::{experiments, simulate_step, Calibration, System};

fn cal() -> Calibration {
    Calibration::paper()
}

/// Abstract: "we reduce training time by 33.7% (up to 55.4%) ... compared
/// with the state-of-the-art work in DeepSpeed."
#[test]
fn claim_average_training_time_reduction() {
    let cells = experiments::fig11_table4(&cal());
    let savings: Vec<f64> =
        cells.iter().filter(|c| !c.oom).map(|c| 100.0 * (1.0 - 1.0 / c.teco_reduction)).collect();
    let avg = savings.iter().sum::<f64>() / savings.len() as f64;
    let max = savings.iter().fold(0.0f64, |a, &b| a.max(b));
    assert!(avg > 22.0 && avg < 45.0, "average saving {avg:.1}% (paper 33.7%)");
    assert!(max > 35.0 && max < 60.0, "max saving {max:.1}% (paper 55.4%)");
}

/// Abstract: "TECO reduces communication overhead by 93.7% on average (up
/// to 100%)."
#[test]
fn claim_communication_overhead_reduction() {
    let rows = experiments::volume_summary(&cal());
    let avg = rows.iter().map(|r| r.overhead_reduction_pct).sum::<f64>() / rows.len() as f64;
    assert!(avg > 80.0, "average overhead reduction {avg:.1}% (paper 93.7%)");
    assert!(
        rows.iter().any(|r| r.overhead_reduction_pct > 95.0),
        "some configuration should approach full hiding"
    );
}

/// Table I: communication is 42.24% of ZeRO-Offload time at batch 4 and
/// decreases with batch size.
#[test]
fn claim_table1_comm_share() {
    let rows = experiments::table1(&cal());
    assert!((rows[0].measured_pct - 42.24).abs() < 4.0);
    assert!(rows.windows(2).all(|w| w[0].measured_pct > w[1].measured_pct));
    assert!((rows[3].measured_pct - 25.95).abs() < 5.0);
}

/// §VIII-B: TECO-Reduction outperforms ZeRO-Offload by 1.08×–1.82×, and
/// consistently outperforms TECO-CXL "by up to 21% because of DBA".
#[test]
fn claim_speedup_range_and_dba_gain() {
    let cells = experiments::fig11_table4(&cal());
    let mut max_dba_gain = 0.0f64;
    for c in cells.iter().filter(|c| !c.oom) {
        assert!(
            c.teco_reduction >= 1.05 && c.teco_reduction <= 1.95,
            "{} b{}: {:.2}",
            c.model,
            c.batch,
            c.teco_reduction
        );
        assert!(c.teco_reduction >= c.teco_cxl);
        max_dba_gain = max_dba_gain.max(100.0 * (c.teco_reduction / c.teco_cxl - 1.0));
    }
    assert!(
        max_dba_gain > 3.0 && max_dba_gain < 25.0,
        "max DBA-over-CXL gain {max_dba_gain:.1}% (paper: up to 21%)"
    );
}

/// §IV-A2: the invalidation protocol's on-demand transfers increase
/// training time by ~56.6% on average.
#[test]
fn claim_invalidation_penalty() {
    let rows = experiments::ablation_inval_vs_update(&cal());
    let avg = rows.iter().map(|r| r.penalty_pct).sum::<f64>() / rows.len() as f64;
    assert!((avg - 56.6).abs() < 15.0, "average penalty {avg:.1}% (paper 56.6%)");
}

/// Table VI: TECO keeps winning as GPT-2 scales to 11 B, but the gain
/// shrinks because compute dominates ("computation time ... already
/// accounts for 63.4% of the total time").
#[test]
fn claim_model_size_sensitivity() {
    let rows = experiments::table6(&cal());
    for r in &rows {
        assert!(r.teco_reduction > 1.2, "{}: {:.2}", r.model, r.teco_reduction);
    }
    let small = rows[0].teco_reduction;
    let big = rows[3].teco_reduction;
    assert!(big < small, "11B gain {big:.2} should be below base {small:.2}");
    // Compute share at 11B: >50% of the step.
    let spec = ModelSpec::gpt2_11b();
    let r = simulate_step(&cal(), &spec, 4, System::ZeroOffload);
    let compute_share = (r.breakdown.fwd_bwd + r.breakdown.adam + r.breakdown.grad_clip)
        .as_secs_f64()
        / r.total.as_secs_f64();
    assert!(compute_share > 0.5, "compute share {compute_share:.2} (paper 63.4%)");
}

/// §VIII-B Fig 12: with TECO at batch 8 the gradient transfer is hidden;
/// with DBA the parameter transfer is (essentially) fully hidden.
#[test]
fn claim_fig12_hiding() {
    let rows = experiments::fig12_breakdown(&cal());
    let red8 = rows.iter().find(|r| r.system == "TECO-Reduction" && r.batch == 8).unwrap();
    assert!(red8.grad_xfer_ms < 3.0, "grad exposure {:.1} ms", red8.grad_xfer_ms);
    for r in rows.iter().filter(|r| r.system == "TECO-Reduction") {
        assert!(r.param_xfer_ms < 5.0, "param exposure {:.1} ms", r.param_xfer_ms);
    }
    // And TECO-CXL already cuts the batch-4 parameter exposure by ≥~70%.
    let zero4 = rows.iter().find(|r| r.system == "ZeRO-Offload" && r.batch == 4).unwrap();
    let cxl4 = rows.iter().find(|r| r.system == "TECO-CXL" && r.batch == 4).unwrap();
    let cut = 1.0 - cxl4.param_xfer_ms / zero4.param_xfer_ms;
    assert!(cut > 0.6, "TECO-CXL param cut {:.0}% (paper 76%)", 100.0 * cut);
}

/// §VII: LAMMPS generality — ~21.5% improvement, 17% volume cut, CXL:DBA
/// contribution roughly 78:22.
#[test]
fn claim_lammps_generality() {
    let r = sec7_experiment(&MdTiming::paper(), 32_000);
    assert!((r.improvement_pct - 21.5).abs() < 8.0);
    assert!((r.volume_reduction_pct - 17.0).abs() < 7.0);
    assert!(r.cxl_contribution_pct > 60.0 && r.cxl_contribution_pct < 90.0);
}

/// §VI: CXLFENCE takes less than 1% of training time.
#[test]
fn claim_fence_under_one_percent() {
    for spec in ModelSpec::table3() {
        let batch = if spec.name == "GCNII" { 1 } else { 4 };
        let r = simulate_step(&cal(), &spec, batch, System::TecoReduction);
        let share = r.breakdown.fence.as_secs_f64() / r.total.as_secs_f64();
        assert!(share < 0.01, "{}: fence share {share:.4}", spec.name);
    }
}

/// §VIII-C: DBA halves parameter volume; gradients move unaggregated.
#[test]
fn claim_volume_halving() {
    for spec in [ModelSpec::gpt2(), ModelSpec::t5_large()] {
        let red = simulate_step(&cal(), &spec, 4, System::TecoReduction);
        let cxl = simulate_step(&cal(), &spec, 4, System::TecoCxl);
        assert_eq!(red.bytes_to_device * 2, cxl.bytes_to_device);
        assert_eq!(red.bytes_to_host, cxl.bytes_to_host);
    }
}

/// Table VIII: LZ4 ratios on live parameter streams are far too low to pay
/// for codec time (the DBA-vs-lossless argument).
#[test]
fn claim_lz4_is_impractical() {
    use teco::compress::{compress, compression_ratio, Lz4Throughput};
    use teco::sim::SimRng;
    let mut rng = SimRng::seed_from_u64(17);
    let mut bytes = Vec::new();
    for _ in 0..500_000 {
        let v = rng.normal(0.0, 0.02) as f32;
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    let ratio = compression_ratio(bytes.len(), compress(&bytes).len());
    assert!(ratio < 0.10, "dense params ratio {ratio}");
    // Pipeline slower than just sending raw bytes at link speed.
    let t = Lz4Throughput::default();
    let raw_secs = bytes.len() as f64 / 15.088e9;
    assert!(t.pipeline_seconds(bytes.len() as u64, ratio, 15.088e9) > raw_secs);
}
