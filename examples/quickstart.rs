//! Quickstart: the Listing-1 user experience on the functional TECO stack.
//!
//! Builds a `TecoSession`, maps parameter and gradient tensors into the
//! giant-cache coherence domain, and runs a few "training steps": gradient
//! lines stream device→host during backward, `check_activation(i)` flips
//! DBA on at the configured step, parameter lines stream host→device
//! (aggregated to 32-byte payloads once DBA is active, merged bit-exactly
//! by the device-side Disaggregator), and `CXLFENCE` closes each phase.
//!
//! Run with: `cargo run --release --example quickstart`

use teco::core::{TecoConfig, TecoSession};
use teco::cxl::Direction;
use teco::mem::{Addr, LineData};
use teco::sim::SimTime;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // act_aft_steps = 2 so the demo shows both modes quickly.
    let cfg = TecoConfig::default().with_act_aft_steps(2).with_giant_cache_bytes(1 << 20);
    let mut session = TecoSession::new(cfg)?;

    // Tensor mapping is done once, at allocation time (§VI: hidden from
    // the user by the framework).
    let n_lines = 64u64;
    let (_, params) = session.alloc_tensor("parameters", n_lines * 64)?;
    let (_, grads) = session.alloc_tensor("gradient_buffer", n_lines * 64)?;

    let mut now = SimTime::ZERO;
    for step in 0..4u64 {
        // loss.backward(): gradient lines written back on the GPU stream to
        // the CPU through the update protocol; CXLFENCE inside backward.
        for i in 0..n_lines {
            let mut line = LineData::zeroed();
            for w in 0..16 {
                line.set_word(w, (step as u32) << 16 | (i as u32 * 16 + w as u32));
            }
            session.push_grad_line(Addr(grads.0 + i * 64), line, now)?;
        }
        now = session.cxlfence_grads(now);

        // The ONE user-visible TECO call (Listing 1, line 6).
        let dba = session.check_activation(step);

        // optimizer.step(): the CPU sweeps parameters and ships the whole
        // updated run through the bulk path (one Aggregator pass, one
        // device-side merge). We perturb only the low two bytes, the §III
        // common case, so DBA reconstructs exactly.
        let fresh_lines: Vec<LineData> = (0..n_lines)
            .map(|i| {
                let stale = session.device_read_line(Addr(params.0 + i * 64)).unwrap();
                let mut fresh = stale;
                for w in 0..16 {
                    fresh.set_word(
                        w,
                        (stale.word(w) & 0xFFFF_0000) | (0x1000 + step as u32 * 64 + i as u32),
                    );
                }
                fresh
            })
            .collect();
        session.push_param_lines(params, &fresh_lines, now)?;
        // The GPU copy is bit-exact after the merge.
        for (i, fresh) in fresh_lines.iter().enumerate() {
            assert_eq!(session.device_read_line(Addr(params.0 + i as u64 * 64))?, *fresh);
        }
        now = session.cxlfence_params(now);

        println!(
            "step {step}: dba={dba:<5} wire bytes/line={:>2}  simulated time={now}",
            session.wire_bytes_per_line()
        );
    }

    let s = session.stats();
    println!(
        "\nparameter lines pushed: {} ({} payload bytes to device)",
        s.param_lines, s.bytes_to_device
    );
    println!(
        "gradient  lines pushed: {} ({} payload bytes to host)",
        s.grad_lines, s.bytes_to_host
    );
    println!("CXLFENCE calls: {} (two per step, §VI)", session.fence_stats().calls);
    println!(
        "link volume: {} B down, {} B up",
        session.link().volume(Direction::ToDevice),
        session.link().volume(Direction::ToHost)
    );
    println!(
        "\nDBA halved the steady-state parameter payload: 64 B/line before step 2, {} B/line after.",
        session.wire_bytes_per_line()
    );
    Ok(())
}
