//! Fine-tune a (small, real) model under ZeRO-Offload vs TECO-Reduction:
//! the convergence side uses live training with the bit-exact DBA merge;
//! the performance side uses the calibrated step simulator for the
//! Bert-large configuration of Table III.
//!
//! Run with: `cargo run --release --example bert_finetune`

use teco::dl::ModelSpec;
use teco::offload::convergence::{run, ConvergenceConfig, DbaSchedule, Task};
use teco::offload::{simulate_step, Calibration, System};

fn main() {
    // --- Convergence: does DBA change training? (Fig 10 / Table V) ---
    let steps = 300u64;
    let base = run(&ConvergenceConfig {
        task: Task::Classification,
        steps,
        lr: 5e-3,
        pretrain_steps: 40,
        ..Default::default()
    });
    let teco = run(&ConvergenceConfig {
        task: Task::Classification,
        steps,
        lr: 5e-3,
        pretrain_steps: 40,
        dba: Some(DbaSchedule { act_aft_steps: 100, dirty_bytes: 2 }),
        ..Default::default()
    });
    println!("Bert-proxy fine-tune ({} steps, DBA after 100):", steps);
    println!("  final accuracy  original:        {:.3}", base.final_metric);
    println!("  final accuracy  TECO-Reduction:  {:.3}", teco.final_metric);
    println!("  DBA-active steps: {}", teco.dba_active_steps);

    // --- Performance: what does TECO buy on Bert-large? (Table IV) ---
    let cal = Calibration::paper();
    let bert = ModelSpec::bert_large();
    println!("\nBert-large-cased step time (calibrated simulator):");
    println!(
        "{:>8} {:>14} {:>14} {:>14} {:>9}",
        "batch", "ZeRO-Offload", "TECO-CXL", "TECO-Red", "speedup"
    );
    for batch in [4u32, 8, 16] {
        let zero = simulate_step(&cal, &bert, batch, System::ZeroOffload);
        let cxl = simulate_step(&cal, &bert, batch, System::TecoCxl);
        let red = simulate_step(&cal, &bert, batch, System::TecoReduction);
        println!(
            "{:>8} {:>14} {:>14} {:>14} {:>8.2}x",
            batch,
            zero.total.to_string(),
            cxl.total.to_string(),
            red.total.to_string(),
            red.speedup_over(&zero)
        );
    }
    println!("\npaper (Table IV, Bert): 1.60x / 1.62x / 1.41x at batch 4 / 8 / 16.");
}
