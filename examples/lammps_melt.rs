//! The §VII generality study, end to end: run the *real* Lennard-Jones
//! melt (LAMMPS `melt` benchmark in reduced units), print thermo output,
//! measure how DBA-friendly the live position stream is, then report the
//! offload-model results (transfer share, improvement, CXL:DBA split).
//!
//! Run with: `cargo run --release --example lammps_melt`

use teco::md::{position_dba_applicability, sec7_experiment, LjSystem, MdTiming};
use teco::sim::SimRng;

fn main() {
    let mut rng = SimRng::seed_from_u64(2024);
    let mut sys = LjSystem::fcc_melt(5, 0.8442, 1.44, 0.002, &mut rng);
    println!(
        "3D Lennard-Jones melt: {} atoms, box {:.2} sigma, dt {}",
        sys.n(),
        sys.box_len,
        sys.dt
    );
    println!("{:>6} {:>10} {:>12} {:>12} {:>12}", "step", "T*", "KE", "PE", "E_total");
    let e0 = sys.total_energy();
    for step in 0..=100 {
        if step % 20 == 0 {
            println!(
                "{:>6} {:>10.4} {:>12.2} {:>12.2} {:>12.2}",
                step,
                sys.temperature(),
                sys.kinetic(),
                sys.potential,
                sys.total_energy()
            );
        }
        sys.step();
    }
    let drift = ((sys.total_energy() - e0) / e0.abs()).abs();
    println!("energy drift over 100 steps: {:.3}% (velocity Verlet)", 100.0 * drift);

    let frac = position_dba_applicability(&mut sys, 20);
    println!(
        "\nDBA applicability, measured on the live trajectory: {:.1}% of per-step\nposition word-changes fit the low two bytes (forces do not — like gradients).",
        100.0 * frac
    );

    let r = sec7_experiment(&MdTiming::paper(), 32_000);
    println!("\noffload model, 32k atoms (paper values in parentheses):");
    println!("  transfer share of step:  {:>5.1}%  (27%)", r.baseline_transfer_pct);
    println!("  TECO improvement:        {:>5.1}%  (21.5%)", r.improvement_pct);
    println!("  DBA volume reduction:    {:>5.1}%  (17%)", r.volume_reduction_pct);
    println!(
        "  CXL : DBA contribution:  {:>4.0}% : {:.0}%  (78% : 22%)",
        r.cxl_contribution_pct, r.dba_contribution_pct
    );
}
