//! Walk through Fig. 5's coherence transitions message by message, in both
//! protocol modes, and show the flit-level wire image of the traffic —
//! a didactic trace of exactly what the update extension changes.
//!
//! Run with: `cargo run --release --example protocol_trace`

use teco::cxl::{unpack, Agent, CoherenceEngine, FlitPacker, MesiState, ProtocolMode};
use teco::mem::{Addr, LineData, LINE_BYTES};

fn state(s: MesiState) -> &'static str {
    match s {
        MesiState::M => "M",
        MesiState::E => "E",
        MesiState::S => "S",
        MesiState::I => "I",
    }
}

fn trace(mode: ProtocolMode) {
    println!("\n── protocol = {mode:?} ──");
    let mut eng = CoherenceEngine::new(mode);
    let addr = Addr(0x40);
    let mut line = LineData::zeroed();
    for w in 0..16 {
        line.set_word(w, 0x4000_0000 + w as u32);
    }
    let st = eng.line_state(addr);
    println!(
        "start:            Cs={} Gs={}  (giant cache holds the initial copy)",
        state(st.cs),
        state(st.gs)
    );

    let mut all_packets = Vec::new();
    let pkts = eng.write(Agent::Cpu, addr, line.bytes(), false);
    let st = eng.line_state(addr);
    println!(
        "CPU updates line: Cs={} Gs={}  messages: {:?}",
        state(st.cs),
        state(st.gs),
        pkts.iter().map(|p| p.opcode).collect::<Vec<_>>()
    );
    all_packets.extend(pkts);

    let pkts = eng.read(Agent::Device, addr, LINE_BYTES);
    let st = eng.line_state(addr);
    println!(
        "GPU reads line:   Cs={} Gs={}  messages: {:?}{}",
        state(st.cs),
        state(st.gs),
        pkts.iter().map(|p| p.opcode).collect::<Vec<_>>(),
        if pkts.is_empty() {
            "  ← hit, zero traffic"
        } else {
            "  ← ON-DEMAND transfer on the critical path"
        }
    );
    all_packets.extend(pkts);

    let pkts = eng.flush(Agent::Cpu, &[addr], LINE_BYTES);
    let st = eng.line_state(addr);
    println!(
        "CPU flushes:      Cs={} Gs={}  messages: {:?}",
        state(st.cs),
        state(st.gs),
        pkts.iter().map(|p| p.opcode).collect::<Vec<_>>()
    );
    all_packets.extend(pkts);

    // Wire image.
    let mut packer = FlitPacker::new();
    for p in &all_packets {
        packer.push_packet(p);
    }
    let wire = packer.wire_bytes();
    let flits = packer.finish();
    let back = unpack(&flits).expect("wire image reparses");
    assert_eq!(back.len(), all_packets.len());
    println!(
        "wire image: {} packets → {} flits ({} bytes); data moved: {} B",
        all_packets.len(),
        flits.len(),
        wire,
        eng.to_device.data_bytes + eng.to_host.data_bytes
    );
}

fn main() {
    println!("Fig. 5 walk-through: CPU updates a parameter cache line mapped to the");
    println!("giant cache, the GPU consumes it, the CPU flushes at iteration end.");
    trace(ProtocolMode::Update);
    trace(ProtocolMode::Invalidation);
    println!("\nThe update extension moves the data AT WRITE TIME (FlushData right after");
    println!("GoFlush) so the GPU read is a pure hit; stock MESI defers it to the read,");
    println!("putting the PCIe round trip on the critical path — the §IV-A2 motivation.");
}
