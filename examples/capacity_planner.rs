//! Giant-cache capacity planning: for each Table III model, show the
//! BAR-configured giant-cache size, the snoop-filter directory the update
//! protocol avoids (§IV-A2), and which batch sizes fit the V100's 32 GB
//! under ZeRO-Offload (the §VIII-B OOM boundary).
//!
//! Run with: `cargo run --release --example capacity_planner`

use teco::cxl::full_directory_bytes;
use teco::dl::ModelSpec;
use teco::offload::experiments::zero_offload_ooms;

fn main() {
    println!(
        "{:<20} {:>10} {:>12} {:>12} {:>20}",
        "model", "params", "giant cache", "directory", "ZeRO-Offload fits at"
    );
    for spec in ModelSpec::table3().into_iter().chain([ModelSpec::gpt2_11b()]) {
        let dir_mb = full_directory_bytes(spec.giant_cache_bytes()) as f64 / (1 << 20) as f64;
        let fits: Vec<String> = [1u32, 4, 8, 16, 20]
            .iter()
            .filter(|&&b| !zero_offload_ooms(&spec, b))
            .map(|b| b.to_string())
            .collect();
        println!(
            "{:<20} {:>9}M {:>10}MB {:>10.0}MB {:>20}",
            spec.name,
            spec.params / 1_000_000,
            spec.giant_cache_mb,
            dir_mb,
            if fits.is_empty() { "none".to_string() } else { format!("bs {{{}}}", fits.join(",")) }
        );
    }
    println!("\nT5-large drops out at batch 16 — the §VIII-B OOM case. The directory");
    println!("column is the snoop-filter memory the update protocol's producer-consumer");
    println!("knowledge avoids spending (§IV-A2).");
}
