//! Datacenter cost model (§VIII-C).
//!
//! "It has been reported that in an AWS data center, the AI training takes
//! 20% of GPU cycles. Assume a data center with 256 A100 GPU and 50%
//! utilization of GPUs. 7% of saving in training time leads to a reduction
//! of roughly $900K in production cost in a year. (The cost estimation is
//! based on AWS p4de.24xlarge instance)."

use serde::{Deserialize, Serialize};

/// Fleet and pricing assumptions.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct DatacenterModel {
    /// GPUs in the fleet.
    pub gpus: u32,
    /// Overall GPU utilization.
    pub utilization: f64,
    /// Fraction of busy cycles spent on AI *training* (vs inference etc.).
    pub training_share: f64,
    /// On-demand price of one 8-GPU p4de.24xlarge instance, $/hour.
    pub instance_price_per_hour: f64,
    /// GPUs per instance.
    pub gpus_per_instance: u32,
}

impl DatacenterModel {
    /// The paper's assumptions (256 A100s, 50 % utilization, 20 % of busy
    /// cycles on training, p4de.24xlarge pricing).
    pub fn paper() -> Self {
        DatacenterModel {
            gpus: 256,
            utilization: 0.5,
            training_share: 0.2,
            // vantage.sh lists p4de.24xlarge around $40.97/h on demand.
            instance_price_per_hour: 40.97,
            gpus_per_instance: 8,
        }
    }

    /// Dollar cost of one GPU-hour.
    pub fn gpu_hour_cost(&self) -> f64 {
        self.instance_price_per_hour / self.gpus_per_instance as f64
    }

    /// Annual spend attributable to AI training across the fleet.
    pub fn annual_training_spend(&self) -> f64 {
        let gpu_hours_per_year = self.gpus as f64 * 24.0 * 365.0 * self.utilization;
        gpu_hours_per_year * self.training_share * self.gpu_hour_cost()
    }

    /// Annual on-demand bill for the whole provisioned fleet (instances are
    /// paid for around the clock regardless of utilization).
    pub fn annual_fleet_bill(&self) -> f64 {
        let instances = self.gpus as f64 / self.gpus_per_instance as f64;
        instances * self.instance_price_per_hour * 24.0 * 365.0
    }

    /// Conservative savings: `fraction` of the *training* share of actually
    /// utilized GPU-hours.
    pub fn annual_savings_training_only(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        self.annual_training_spend() * fraction
    }

    /// The §VIII-C headline arithmetic: applying the training-time saving
    /// to the provisioned fleet's annual bill (capacity freed is capacity
    /// not bought) — this is the calculation that yields "roughly $900K"
    /// for a 7 % saving on a 256-GPU p4de fleet.
    pub fn annual_savings(&self, fraction: f64) -> f64 {
        assert!((0.0..=1.0).contains(&fraction));
        self.annual_fleet_bill() * fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_arithmetic_reproduces_900k() {
        // §VIII-C: "7% of saving in training time leads to a reduction of
        // roughly $900K in production cost in a year."
        let dc = DatacenterModel::paper();
        let savings = dc.annual_savings(0.07);
        assert!(
            (700_000.0..1_100_000.0).contains(&savings),
            "7% saving = ${savings:.0}/yr (paper: ~$900K)"
        );
        // The conservative utilization-weighted figure is far smaller — the
        // paper's number is the fleet-bill interpretation.
        assert!(dc.annual_savings_training_only(0.07) < 150_000.0);
    }

    #[test]
    fn spend_scales_linearly_in_fleet_and_utilization() {
        let base = DatacenterModel::paper();
        let double_fleet = DatacenterModel { gpus: 512, ..base };
        assert!(
            (double_fleet.annual_training_spend() / base.annual_training_spend() - 2.0).abs()
                < 1e-9
        );
        let full_util = DatacenterModel { utilization: 1.0, ..base };
        assert!(
            (full_util.annual_training_spend() / base.annual_training_spend() - 2.0).abs() < 1e-9
        );
    }

    #[test]
    fn teco_scale_savings() {
        // At the reproduction's measured 30% average training-time
        // reduction, the same fleet saves several $M/year.
        let dc = DatacenterModel::paper();
        let savings = dc.annual_savings(0.30);
        assert!(savings > 3_000_000.0, "${savings:.0}");
        assert!(savings < dc.annual_fleet_bill());
    }

    #[test]
    fn gpu_hour_cost() {
        let dc = DatacenterModel::paper();
        assert!((dc.gpu_hour_cost() - 40.97 / 8.0).abs() < 1e-9);
    }
}
