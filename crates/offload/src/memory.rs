//! Memory-footprint accounting for the offload split (Figs. 1 and 3).
//!
//! ZeRO-Offload's placement: GPU holds the FP16 working parameters, the
//! activations, and a small gradient buffer; CPU memory holds the FP32
//! master parameters, both ADAM moments, and the full gradients. TECO maps
//! the GPU-side parameter copy and gradient buffer into the giant cache
//! (§IV-A1: "this size is the size of parameters in the accelerator plus
//! the size of the gradient buffer"). This module derives those footprints
//! from a [`ModelSpec`] and validates them against Table III's published
//! giant-cache sizes.

use serde::Serialize;
use teco_dl::ModelSpec;

/// Byte footprint on the accelerator.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GpuLayout {
    /// FP16 working parameters.
    pub params_fp16: u64,
    /// Activation memory at the given batch.
    pub activations: u64,
    /// The gradient staging buffer.
    pub grad_buffer: u64,
}

impl GpuLayout {
    /// Total accelerator bytes.
    pub fn total(&self) -> u64 {
        self.params_fp16 + self.activations + self.grad_buffer
    }
    /// The giant-cache slice: parameters + gradient buffer (activations
    /// stay in conventional non-coherent memory, Fig. 3).
    pub fn giant_cache(&self) -> u64 {
        self.params_fp16 + self.grad_buffer
    }
}

/// Byte footprint in CPU memory.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct CpuLayout {
    /// FP32 master parameters.
    pub params_fp32: u64,
    /// ADAM first+second moments (FP32 each).
    pub optimizer_states: u64,
    /// Full gradients (FP32 after host-side conversion).
    pub gradients: u64,
}

impl CpuLayout {
    /// Total CPU bytes the offload scheme consumes.
    pub fn total(&self) -> u64 {
        self.params_fp32 + self.optimizer_states + self.gradients
    }
}

/// The gradient-buffer sizing rule: proportional to the model's per-layer
/// parameter bytes (the buffer must absorb at least a layer's worth of
/// gradients between flushes), with a floor.
pub fn grad_buffer_bytes(spec: &ModelSpec) -> u64 {
    let per_layer = spec.per_layer_param_bytes();
    (4 * per_layer).max(32 << 20)
}

/// Accelerator layout for a model at a batch size.
pub fn gpu_layout(spec: &ModelSpec, batch: u32) -> GpuLayout {
    GpuLayout {
        params_fp16: spec.params * 2,
        activations: spec.act_bytes_per_token * spec.tokens_per_step(batch),
        grad_buffer: grad_buffer_bytes(spec),
    }
}

/// CPU layout for a model.
pub fn cpu_layout(spec: &ModelSpec) -> CpuLayout {
    CpuLayout {
        params_fp32: spec.param_bytes(),
        optimizer_states: spec.optimizer_state_bytes(),
        gradients: spec.param_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_giant_cache_tracks_table3() {
        // §IV-A1's sizing rule (fp16 params + gradient buffer) should land
        // within ~35 % of every Table III giant-cache figure.
        for spec in ModelSpec::table3() {
            let derived = gpu_layout(&spec, 4).giant_cache() as f64;
            let table = spec.giant_cache_bytes() as f64;
            let ratio = derived / table;
            assert!(
                (0.65..1.45).contains(&ratio),
                "{}: derived {:.0} MB vs Table III {} MB (ratio {ratio:.2})",
                spec.name,
                derived / (1 << 20) as f64,
                spec.giant_cache_mb
            );
        }
    }

    #[test]
    fn cpu_memory_is_4x_params_for_offload() {
        // ZeRO-Offload's CPU footprint: fp32 params + 2 moments + grads =
        // 16 bytes/param.
        for spec in ModelSpec::table3() {
            let cpu = cpu_layout(&spec);
            assert_eq!(cpu.total(), spec.params * 16, "{}", spec.name);
        }
    }

    #[test]
    fn cpu_memory_fits_paper_testbed() {
        // The AD appendix testbed has 2 × 186 GB of DRAM; even GPT2-11B's
        // CPU state (176 GB) fits.
        let host_bytes = 2 * 186u64 * (1 << 30);
        for spec in ModelSpec::table3().into_iter().chain([ModelSpec::gpt2_11b()]) {
            assert!(
                cpu_layout(&spec).total() < host_bytes,
                "{}: CPU state exceeds testbed DRAM",
                spec.name
            );
        }
    }

    #[test]
    fn activations_grow_with_batch() {
        let spec = ModelSpec::bert_large();
        let a4 = gpu_layout(&spec, 4).activations;
        let a16 = gpu_layout(&spec, 16).activations;
        assert_eq!(a16, 4 * a4);
        // The giant-cache slice is batch-independent (set before training,
        // §IV-A1).
        assert_eq!(gpu_layout(&spec, 4).giant_cache(), gpu_layout(&spec, 16).giant_cache());
    }

    #[test]
    fn layout_consistent_with_oom_model() {
        // The experiment driver's OOM check and this layout agree on the
        // §VIII-B boundary case.
        use crate::experiments::zero_offload_ooms;
        let t5 = ModelSpec::t5_large();
        let gpu16 = gpu_layout(&t5, 16);
        let gpu8 = gpu_layout(&t5, 8);
        let vram = 32u64 << 30;
        assert_eq!(zero_offload_ooms(&t5, 16), gpu16.params_fp16 + gpu16.activations > vram);
        assert_eq!(zero_offload_ooms(&t5, 8), gpu8.params_fp16 + gpu8.activations > vram);
    }
}
