//! The ZeRO-Offload CPU double-buffer model (§II-A).
//!
//! "ZeRO-Offload uses a double-buffer technique on CPU to hide the transfer
//! overhead: while CPU fills one buffer with new parameters, the other is
//! used for parameter transfers from CPU to GPU. However, the buffer
//! filling is much faster than the parameter transfer. As a result, the
//! parameter transfer is largely exposed to the critical path."
//!
//! This module quantifies that failure: a two-stage pipeline where stage 1
//! (buffer fill, at memory speed) feeds stage 2 (PCIe transfer). The
//! pipeline's makespan is bottlenecked by the slow stage, so the transfer
//! is hidden only to the extent the fill is slow — which it isn't.

use teco_sim::{Bandwidth, SimTime};

/// Result of simulating the double-buffered parameter path.
#[derive(Debug, Clone, Copy)]
pub struct DoubleBufferResult {
    /// Total time from first fill to last transfer completion.
    pub makespan: SimTime,
    /// Transfer time not overlapped with filling (exposed).
    pub exposed_transfer: SimTime,
    /// Fraction of the total transfer time that was hidden.
    pub hidden_fraction: f64,
}

/// Simulate a double-buffered copy of `total_bytes` split into
/// `buffer_bytes` pieces: fills at `fill_bw`, transfers at `link_bw`, two
/// buffers (fill of piece i+1 overlaps transfer of piece i).
pub fn double_buffer(
    total_bytes: u64,
    buffer_bytes: u64,
    fill_bw: Bandwidth,
    link_bw: Bandwidth,
) -> DoubleBufferResult {
    assert!(buffer_bytes > 0 && total_bytes > 0);
    let n = total_bytes.div_ceil(buffer_bytes);
    let mut fill_done = SimTime::ZERO;
    let mut xfer_done = SimTime::ZERO;
    let mut transfer_busy = SimTime::ZERO;
    let mut remaining = total_bytes;
    for _ in 0..n {
        let piece = buffer_bytes.min(remaining);
        remaining -= piece;
        // Fill piece into the free buffer (can overlap the ongoing
        // transfer, but a buffer only frees when its transfer finished —
        // with 2 buffers, fill i+1 must wait for transfer i−1).
        fill_done = fill_done.max(xfer_done.saturating_sub(link_bw.transfer_time(piece)))
            + fill_bw.transfer_time(piece);
        // Transfer starts when the piece is filled and the link is free.
        let start = fill_done.max(xfer_done);
        xfer_done = start + link_bw.transfer_time(piece);
        transfer_busy += link_bw.transfer_time(piece);
    }
    let fill_total = fill_bw.transfer_time(total_bytes);
    let exposed = xfer_done.saturating_sub(fill_total);
    DoubleBufferResult {
        makespan: xfer_done,
        exposed_transfer: exposed,
        hidden_fraction: 1.0 - exposed.as_secs_f64() / transfer_busy.as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fast_fill_leaves_transfer_exposed() {
        // The §II-A case: memory-speed fill (120 GB/s) vs PCIe (16 GB/s):
        // almost the whole transfer is exposed.
        let r = double_buffer(
            1_336_000_000, // Bert-large params
            64 << 20,
            Bandwidth::from_gb_per_sec(120.0),
            Bandwidth::from_gb_per_sec(16.0),
        );
        assert!(
            r.hidden_fraction < 0.2,
            "double buffering hid {:.0}% — §II-A says it largely fails",
            100.0 * r.hidden_fraction
        );
        // Makespan ≈ the bare transfer time.
        let bare = Bandwidth::from_gb_per_sec(16.0).transfer_time(1_336_000_000);
        assert!(r.makespan.as_secs_f64() < 1.15 * bare.as_secs_f64());
    }

    #[test]
    fn balanced_stages_hide_half() {
        // When fill and transfer run at the same rate, the pipeline hides
        // ~all but one piece of the transfer.
        let r = double_buffer(
            1 << 30,
            1 << 26,
            Bandwidth::from_gb_per_sec(16.0),
            Bandwidth::from_gb_per_sec(16.0),
        );
        assert!(r.hidden_fraction > 0.9, "hid {:.2}", r.hidden_fraction);
    }

    #[test]
    fn slow_fill_hides_everything_but_last_piece() {
        let r = double_buffer(
            1 << 28,
            1 << 24,
            Bandwidth::from_gb_per_sec(2.0), // fill slower than the link
            Bandwidth::from_gb_per_sec(16.0),
        );
        assert!(r.hidden_fraction > 0.9);
    }

    #[test]
    fn single_piece_has_no_overlap() {
        let bytes = 1u64 << 20;
        let r = double_buffer(
            bytes,
            bytes,
            Bandwidth::from_gb_per_sec(100.0),
            Bandwidth::from_gb_per_sec(10.0),
        );
        assert!(r.hidden_fraction.abs() < 1e-9);
        let expect = Bandwidth::from_gb_per_sec(100.0).transfer_time(bytes)
            + Bandwidth::from_gb_per_sec(10.0).transfer_time(bytes);
        assert_eq!(r.makespan, expect);
    }
}
