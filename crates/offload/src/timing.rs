//! Compute-time models and calibration constants.
//!
//! The paper's evaluation platform simulates the CPU with gem5-avx and the
//! GPU with Accel-Sim; this module replaces both with calibrated analytic
//! models that produce the same *phase durations* the CXL emulator
//! consumed. Constants are chosen so the ZeRO-Offload baseline reproduces
//! Table I (exposed-communication share vs. batch size on Bert-large);
//! everything else (Tables IV/VI, Figs. 11/12) then follows from the
//! schedule simulation in [`crate::schedule`].

use serde::{Deserialize, Serialize};
use teco_cxl::CxlConfig;
use teco_dl::ModelSpec;
use teco_sim::{Bandwidth, SimTime};

/// All tunable platform constants.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Calibration {
    /// GPU peak mixed-precision throughput (V100 tensor cores ≈ 112 TFLOP/s
    /// achievable).
    pub gpu_peak_flops: f64,
    /// Asymptotic fraction of peak reached at large batch.
    pub gpu_eff_max: f64,
    /// Batch size at which efficiency reaches half of `gpu_eff_max` —
    /// models the arithmetic-intensity ramp that makes small-batch GPU
    /// steps inefficient (the §II-A DPU discussion).
    pub gpu_bs_half: f64,
    /// Fixed per-step GPU overhead (kernel launches, sync).
    pub gpu_step_overhead: SimTime,
    /// CPU effective memory bandwidth for the vectorized ADAM sweep
    /// (Table II: 8 memory controllers of DDR4; AVX-512 streaming).
    pub cpu_mem_bw: Bandwidth,
    /// Bytes touched per parameter by the ADAM update (read p,g,m,v; write
    /// p,m,v — 7 × 4 B).
    pub adam_bytes_per_param: u64,
    /// Bytes touched per parameter by gradient clipping (one fused
    /// norm+scale streaming pass: 4 B).
    pub clip_bytes_per_param: u64,
    /// Gradient-buffer size on GPU (ZeRO-Offload flushes when full).
    pub grad_buffer_bytes: u64,
    /// Gradients travel in FP16 under mixed precision (2 B/param);
    /// parameters travel in FP32 (4 B/param) so DBA applies (§V).
    pub grad_bytes_per_param: u64,
    /// The CXL link configuration (also yields the raw-PCIe rate the
    /// ZeRO-Offload baseline uses).
    pub cxl: CxlConfig,
    /// Chunks a tensor sweep is split into for overlap simulation (per
    /// model layer granularity is used when larger).
    pub min_chunks: usize,
}

impl Default for Calibration {
    fn default() -> Self {
        Self::paper()
    }
}

impl Calibration {
    /// Constants calibrated against Table I (see crate tests and
    /// EXPERIMENTS.md for the fit).
    pub fn paper() -> Self {
        Calibration {
            gpu_peak_flops: 112e12,
            gpu_eff_max: 0.297,
            gpu_bs_half: 2.0,
            gpu_step_overhead: SimTime::from_ms(6),
            cpu_mem_bw: Bandwidth::from_gb_per_sec(120.0),
            adam_bytes_per_param: 28,
            clip_bytes_per_param: 4,
            grad_buffer_bytes: 256 << 20,
            grad_bytes_per_param: 2,
            cxl: CxlConfig::paper(),
            min_chunks: 24,
        }
    }

    /// GPU efficiency at a batch size: `eff_max · bs / (bs + bs_half)`.
    pub fn gpu_efficiency(&self, batch: u32) -> f64 {
        let b = batch as f64;
        self.gpu_eff_max * b / (b + self.gpu_bs_half)
    }

    /// Forward+backward time on GPU for one step.
    pub fn fwd_bwd_time(&self, spec: &ModelSpec, batch: u32) -> SimTime {
        let flops = spec.flops_per_step(batch);
        let rate = self.gpu_peak_flops * self.gpu_efficiency(batch);
        self.gpu_step_overhead + SimTime::from_secs_f64(flops / rate)
    }

    /// Forward share of fwd+bwd (backward ≈ 2× forward).
    pub fn forward_time(&self, spec: &ModelSpec, batch: u32) -> SimTime {
        self.fwd_bwd_time(spec, batch) / 3
    }
    /// Backward share of fwd+bwd.
    pub fn backward_time(&self, spec: &ModelSpec, batch: u32) -> SimTime {
        let fb = self.fwd_bwd_time(spec, batch);
        fb - fb / 3
    }

    /// CPU gradient-clipping time (Fig. 1 phase 4, "gradient optimizer" in
    /// the Fig. 12 breakdown).
    pub fn clip_time(&self, spec: &ModelSpec) -> SimTime {
        self.cpu_mem_bw.transfer_time(spec.params * self.clip_bytes_per_param)
    }

    /// CPU ADAM time (Fig. 12 "parameter optimization").
    pub fn adam_time(&self, spec: &ModelSpec) -> SimTime {
        self.cpu_mem_bw.transfer_time(spec.params * self.adam_bytes_per_param)
    }

    /// The rate at which the CPU optimizer *produces* updated parameter
    /// bytes (param bytes ÷ ADAM time) — the producer rate of the TECO
    /// update-protocol stream.
    pub fn adam_param_production_rate(&self, spec: &ModelSpec) -> Bandwidth {
        let bytes = spec.param_bytes();
        let t = self.adam_time(spec);
        Bandwidth::from_bytes_per_sec(bytes as f64 / t.as_secs_f64())
    }

    /// The rate at which backward *produces* gradient bytes (gradient bytes
    /// ÷ backward time).
    pub fn grad_production_rate(&self, spec: &ModelSpec, batch: u32) -> Bandwidth {
        let bytes = spec.params * self.grad_bytes_per_param;
        let t = self.backward_time(spec, batch);
        Bandwidth::from_bytes_per_sec(bytes as f64 / t.as_secs_f64())
    }

    /// Raw PCIe bandwidth (the ZeRO-Offload baseline's cudaMemcpy path).
    pub fn pcie_bw(&self) -> Bandwidth {
        self.cxl.pcie_bandwidth()
    }
    /// CXL payload bandwidth.
    pub fn cxl_bw(&self) -> Bandwidth {
        self.cxl.cxl_bandwidth()
    }

    /// Number of chunks used to stream a tensor region of a model.
    pub fn chunks_for(&self, spec: &ModelSpec) -> usize {
        (spec.layers as usize).max(self.min_chunks)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn efficiency_ramps_with_batch() {
        let c = Calibration::paper();
        assert!(c.gpu_efficiency(4) < c.gpu_efficiency(8));
        assert!(c.gpu_efficiency(8) < c.gpu_efficiency(20));
        assert!(c.gpu_efficiency(1_000) < c.gpu_eff_max);
        assert!(c.gpu_efficiency(1_000) > 0.95 * c.gpu_eff_max);
    }

    #[test]
    fn fwd_bwd_grows_sublinearly_in_batch() {
        let c = Calibration::paper();
        let bert = ModelSpec::bert_large();
        let t4 = c.fwd_bwd_time(&bert, 4);
        let t8 = c.fwd_bwd_time(&bert, 8);
        let t16 = c.fwd_bwd_time(&bert, 16);
        assert!(t8 > t4 && t16 > t8);
        // Doubling batch less than doubles time (efficiency ramp).
        assert!(t8.as_secs_f64() < 2.0 * t4.as_secs_f64());
        assert!(t16.as_secs_f64() < 2.0 * t8.as_secs_f64());
    }

    #[test]
    fn forward_backward_split() {
        let c = Calibration::paper();
        let spec = ModelSpec::gpt2();
        let fb = c.fwd_bwd_time(&spec, 8);
        let f = c.forward_time(&spec, 8);
        let b = c.backward_time(&spec, 8);
        assert_eq!(f + b, fb);
        // Backward ≈ 2× forward.
        let ratio = b.as_secs_f64() / f.as_secs_f64();
        assert!((1.8..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn cpu_times_scale_with_params() {
        let c = Calibration::paper();
        let small = ModelSpec::gpt2();
        let big = ModelSpec::t5_large();
        assert!(c.adam_time(&big) > c.adam_time(&small));
        assert!(c.clip_time(&big) > c.clip_time(&small));
        // ADAM touches more bytes than clipping.
        assert!(c.adam_time(&small) > c.clip_time(&small));
    }

    #[test]
    fn production_rates_are_consistent() {
        let c = Calibration::paper();
        let bert = ModelSpec::bert_large();
        let rate = c.adam_param_production_rate(&bert);
        let t = rate.transfer_time(bert.param_bytes());
        let adam = c.adam_time(&bert);
        let err = (t.as_secs_f64() - adam.as_secs_f64()).abs() / adam.as_secs_f64();
        assert!(err < 1e-6, "err {err}");
    }

    #[test]
    fn param_transfer_dominance_precondition() {
        // The §I premise: a bulk parameter transfer takes ~10–100 ms on
        // PCIe 3.0 — longer than typical layer-wise compute.
        let c = Calibration::paper();
        let bert = ModelSpec::bert_large();
        let t_param = c.pcie_bw().transfer_time(bert.param_bytes());
        assert!(t_param > SimTime::from_ms(50) && t_param < SimTime::from_ms(120));
    }
}
