//! Markdown report generation: renders the full experiment suite into one
//! document (the mechanical core behind EXPERIMENTS.md). Each section
//! carries the paper's reference values next to the measured ones so drift
//! is visible at a glance.

use crate::experiments;
use crate::timing::Calibration;
use std::fmt::Write as _;
use teco_cxl::FaultStats;

/// Render a markdown table from a header and rows.
pub fn md_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "| {} |", header.join(" | "));
    let _ = writeln!(s, "|{}|", header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
    for r in rows {
        let _ = writeln!(s, "| {} |", r.join(" | "));
    }
    s
}

/// Generate the timing-experiment sections of the report (the convergence
/// experiments are long-running and live in their bench binaries).
pub fn timing_report(cal: &Calibration) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# TECO reproduction — timing experiment report\n");

    // Table I.
    let _ = writeln!(out, "## Table I — exposed communication share (ZeRO-Offload, Bert-large)\n");
    let rows: Vec<Vec<String>> = experiments::table1(cal)
        .iter()
        .map(|r| {
            vec![
                r.batch.to_string(),
                format!("{:.2}%", r.measured_pct),
                format!("{:.2}%", r.paper_pct),
            ]
        })
        .collect();
    out += &md_table(&["batch", "measured", "paper"], &rows);

    // Table IV / Fig 11.
    let _ = writeln!(out, "\n## Fig. 11 / Table IV — speedup over ZeRO-Offload\n");
    let rows: Vec<Vec<String>> = experiments::fig11_table4(cal)
        .iter()
        .map(|c| {
            vec![
                c.model.clone(),
                c.batch.to_string(),
                if c.oom { "OOM".into() } else { format!("{:.2}", c.teco_cxl) },
                if c.oom { "OOM".into() } else { format!("{:.2}", c.teco_reduction) },
                c.paper_reduction.map(|p| format!("{p:.2}")).unwrap_or_else(|| "—".into()),
            ]
        })
        .collect();
    out += &md_table(&["model", "batch", "TECO-CXL", "TECO-Red", "paper"], &rows);

    // Fig 12.
    let _ = writeln!(out, "\n## Fig. 12 — time breakdown, T5-large (ms)\n");
    let rows: Vec<Vec<String>> = experiments::fig12_breakdown(cal)
        .iter()
        .map(|r| {
            vec![
                r.system.to_string(),
                r.batch.to_string(),
                format!("{:.1}", r.fwd_bwd_ms),
                format!("{:.1}", r.grad_xfer_ms),
                format!("{:.1}", r.clip_ms),
                format!("{:.1}", r.adam_ms),
                format!("{:.1}", r.param_xfer_ms),
                format!("{:.1}", r.total_ms),
            ]
        })
        .collect();
    out += &md_table(
        &["system", "batch", "fwd+bwd", "grad xfer", "clip", "adam", "param xfer", "total"],
        &rows,
    );

    // Table VI.
    let _ = writeln!(out, "\n## Table VI — model-size sensitivity (batch 4)\n");
    let rows: Vec<Vec<String>> = experiments::table6(cal)
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                format!("{:.2}", r.teco_cxl),
                format!("{:.2}", r.paper.0),
                format!("{:.2}", r.teco_reduction),
                format!("{:.2}", r.paper.1),
            ]
        })
        .collect();
    out += &md_table(&["model", "TECO-CXL", "paper", "TECO-Red", "paper"], &rows);

    // Ablation.
    let _ = writeln!(out, "\n## §IV-A2 — invalidation vs update protocol\n");
    let ab = experiments::ablation_inval_vs_update(cal);
    let avg = ab.iter().map(|r| r.penalty_pct).sum::<f64>() / ab.len() as f64;
    let rows: Vec<Vec<String>> =
        ab.iter().map(|r| vec![r.model.clone(), format!("+{:.1}%", r.penalty_pct)]).collect();
    out += &md_table(&["model", "penalty"], &rows);
    let _ = writeln!(out, "\naverage: +{avg:.1}% (paper: +56.6%)");

    // Volume.
    let _ = writeln!(out, "\n## §VIII-C — communication volume & overhead\n");
    let vol = experiments::volume_summary(cal);
    let avg = vol.iter().map(|r| r.overhead_reduction_pct).sum::<f64>() / vol.len() as f64;
    let rows: Vec<Vec<String>> = vol
        .iter()
        .map(|r| {
            vec![
                r.model.clone(),
                r.batch.to_string(),
                format!("{:.0}", r.param_bytes_zero as f64 / 1e6),
                format!("{:.0}", r.param_bytes_red as f64 / 1e6),
                format!("{:.1}%", r.overhead_reduction_pct),
            ]
        })
        .collect();
    out +=
        &md_table(&["model", "batch", "param MB (zero)", "param MB (red)", "overhead cut"], &rows);
    let _ = writeln!(out, "\naverage exposed-overhead reduction: {avg:.1}% (paper: 93.7%)");
    out
}

/// Render a merged fault/recovery report (link-side error counters plus
/// session-side recovery counters) as one markdown section. The shape is
/// fixed — every counter always appears, zero or not — so reports from
/// different runs diff cleanly line-by-line.
pub fn fault_report_md(stats: &FaultStats, degraded: &[String]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Link fault & recovery report\n");
    if !stats.any() && degraded.is_empty() {
        let _ = writeln!(out, "No faults injected or observed (fault model off or clean run).\n");
    }
    let rows: Vec<Vec<String>> = [
        ("CRC errors (link)", stats.crc_errors),
        ("link retries", stats.retries),
        ("replay exhaustions", stats.replay_exhausted),
        ("transient stalls", stats.stalls),
        ("stall time (ns)", stats.stall_ns),
        ("replay time (ns)", stats.replay_ns),
        ("poisoned deliveries", stats.poisoned_lines),
        ("lines quarantined", stats.quarantined_lines),
        ("DBA checksum mismatches", stats.checksum_mismatches),
        ("full-line retries", stats.full_line_retries),
        ("regions degraded to baseline", stats.degraded_regions),
        ("fence timeouts", stats.fence_timeouts),
    ]
    .iter()
    .map(|(name, v)| vec![(*name).to_string(), v.to_string()])
    .collect();
    out += &md_table(&["counter", "count"], &rows);
    if !degraded.is_empty() {
        let _ = writeln!(out, "\ndegraded regions (in order): {}", degraded.join(", "));
    }
    out
}

/// One point of a multi-device scaling sweep, reduced to what the report
/// renders. A plain data carrier so this crate needs no dependency on the
/// cluster layer that produces it.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalingPoint {
    /// Devices sharing the pool.
    pub devices: u64,
    /// Per-device batch size.
    pub batch: u64,
    /// End-to-end cluster time in nanoseconds.
    pub cluster_time_ns: u64,
    /// Throughput speedup versus the N=1 run at the same batch
    /// (N devices process N shards per step).
    pub speedup_vs_one: f64,
    /// Parallel efficiency: `speedup_vs_one / devices × 100`.
    pub efficiency_pct: f64,
    /// Total time devices waited on the shared host budget.
    pub host_wait_ns: u64,
    /// When the shared host budget drained.
    pub host_drained_ns: u64,
    /// Bytes the update-mode broadcast fan-out saved versus per-device
    /// host reads.
    pub fanout_saved_bytes: u64,
}

/// Render the multi-device scaling section: one row per (devices, batch)
/// point, fixed shape, so two sweeps diff cleanly line-by-line.
pub fn scaling_report_md(points: &[ScalingPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Multi-device scaling over a shared CXL pool\n");
    if points.is_empty() {
        let _ = writeln!(out, "No scaling points recorded.\n");
        return out;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.devices.to_string(),
                p.batch.to_string(),
                format!("{:.3}", p.cluster_time_ns as f64 / 1e6),
                format!("{:.2}", p.speedup_vs_one),
                format!("{:.1}%", p.efficiency_pct),
                format!("{:.3}", p.host_wait_ns as f64 / 1e6),
                format!("{:.3}", p.host_drained_ns as f64 / 1e6),
                format!("{:.2}", p.fanout_saved_bytes as f64 / 1e6),
            ]
        })
        .collect();
    out += &md_table(
        &[
            "devices",
            "batch",
            "cluster ms",
            "speedup",
            "efficiency",
            "host wait ms",
            "host drain ms",
            "fan-out saved MB",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "\nSpeedup counts shards processed per unit time versus the one-device run;\n\
         efficiency below 100% is host-budget contention (the shared DRAM pool\n\
         serializes gradient reduction once aggregate link bandwidth exceeds it).\n\
         Fan-out savings are the host reads the update-mode broadcast avoided."
    );
    out
}

/// One fault-domain churn point for the report's markdown table. A plain
/// data carrier, like [`ScalingPoint`]: the cluster layer that runs the
/// kills lives above this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnPoint {
    /// Devices sharing the pool.
    pub devices: u64,
    /// Failure schedule: `"none"`, `"lose"` (kill, stay at N−1), or
    /// `"readmit"` (kill, then hot-readmit from the pool).
    pub kill_mode: String,
    /// Persistent media faults injected per scrub tick.
    pub media_rate: f64,
    /// Watchdog detections.
    pub down_events: u64,
    /// Hot readmissions performed.
    pub readmits: u64,
    /// Gradient-line pushes rerouted through survivors.
    pub redistributed_lines: u64,
    /// Media faults injected (device + pool).
    pub faults_injected: u64,
    /// Lines retired to spares.
    pub lines_retired: u64,
    /// Quarantined lines rebuilt from the clean pooled copy.
    pub rebuilds: u64,
    /// End-to-end cluster time in nanoseconds.
    pub cluster_time_ns: u64,
    /// Did every surviving (or readmitted) replica and the pool converge
    /// byte-for-byte to the never-failed clean run?
    pub converged: bool,
}

/// Render the fault-domain churn section: one row per (devices,
/// kill-mode, media-rate) cell, fixed shape for clean diffs.
pub fn churn_report_md(points: &[ChurnPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Fault domains: device loss and pool-media RAS under churn\n");
    if points.is_empty() {
        let _ = writeln!(out, "No churn points recorded.\n");
        return out;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.devices.to_string(),
                p.kill_mode.clone(),
                format!("{:.2}", p.media_rate),
                p.down_events.to_string(),
                p.readmits.to_string(),
                p.redistributed_lines.to_string(),
                p.faults_injected.to_string(),
                p.lines_retired.to_string(),
                p.rebuilds.to_string(),
                format!("{:.3}", p.cluster_time_ns as f64 / 1e6),
                if p.converged { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    out += &md_table(
        &[
            "devices",
            "kill",
            "media rate",
            "down",
            "readmits",
            "rerouted lines",
            "faults",
            "retired",
            "rebuilds",
            "cluster ms",
            "converged",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "\nEach cell kills a device mid-run (watchdog-detected at the gradient\n\
         fence), reroutes its shard through the survivors, and optionally\n\
         hot-readmits it from the pooled optimizer state, while persistent\n\
         media faults are scrubbed, retired to spares, and rebuilt from the\n\
         clean pooled copy. \"converged\" means the pooled optimizer and every\n\
         live replica ended byte-identical to the never-failed, fault-free run."
    );
    out
}

/// One pool-vs-ring all-reduce comparison point for the report's
/// markdown table. A plain data carrier, like [`ScalingPoint`]: the
/// collective layer that produces it lives below this crate, the sweep
/// that runs it above.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectivePoint {
    /// Hosts sharing the pool.
    pub hosts: u64,
    /// Gradient bytes contributed per host.
    pub grad_bytes: u64,
    /// Pool-staged all-reduce completion time in nanoseconds.
    pub pool_ns: u64,
    /// Ring all-reduce completion time in nanoseconds.
    pub ring_ns: u64,
    /// `ring_ns / pool_ns`.
    pub speedup: f64,
    /// Host↔pool port bytes the pool path moved ((2H−1)·G).
    pub pool_port_bytes: u64,
    /// Endpoint-port bytes the ring moved (4(H−1)·G).
    pub ring_link_bytes: u64,
    /// Pool-media bytes the gather fan-in avoided re-reading.
    pub fanin_saved_bytes: u64,
    /// Did both paths produce bit-identical reduced gradients?
    pub results_match: bool,
}

/// Render the inter-host collective section: one row per (hosts,
/// gradient-size) cell, fixed shape for clean diffs.
pub fn collective_report_md(points: &[CollectivePoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Inter-host all-reduce: pool-staged vs point-to-point ring\n");
    if points.is_empty() {
        let _ = writeln!(out, "No collective points recorded.\n");
        return out;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.hosts.to_string(),
                format!("{:.0}", p.grad_bytes as f64 / (1 << 20) as f64),
                format!("{:.3}", p.pool_ns as f64 / 1e6),
                format!("{:.3}", p.ring_ns as f64 / 1e6),
                format!("{:.2}", p.speedup),
                format!("{:.1}", p.pool_port_bytes as f64 / 1e6),
                format!("{:.1}", p.ring_link_bytes as f64 / 1e6),
                format!("{:.1}", p.fanin_saved_bytes as f64 / 1e6),
                if p.results_match { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    out += &md_table(
        &[
            "hosts",
            "grad MB",
            "pool ms",
            "ring ms",
            "speedup",
            "pool port MB",
            "ring link MB",
            "fan-in saved MB",
            "bits match",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "\nThe pool path stages each host's gradient once and reads peers\n\
         directly from the shared pool ((2H\u{2212}1)\u{b7}G port bytes, one staged\n\
         write plus direct reads); the ring moves 4(H\u{2212}1)\u{b7}G endpoint-port\n\
         bytes over 2(H\u{2212}1) bulk-synchronous hops. Both reduce with the same\n\
         wrapping-add kernel, so \"bits match\" is exact equality of the\n\
         reduced gradients. Fan-in savings are the pool-DRAM reads the\n\
         switched multicast avoided during the gather phase."
    );
    out
}

/// One fabric-chaos point for the report's markdown table: an H-host
/// fabric with a host kill and/or staging-media faults injected into
/// its collectives. A plain data carrier, like [`ChurnPoint`]: the
/// fabric layer that runs the chaos lives above this crate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosPoint {
    /// Hosts in the fabric.
    pub hosts: u64,
    /// Kill schedule: `"none"`, `"reduce-scatter"`, or `"all-gather"`
    /// (the collective phase the host dies in).
    pub kill_phase: String,
    /// Staging-media faults injected per RAS tick.
    pub media_rate: f64,
    /// Watchdog host-loss detections.
    pub detections: u64,
    /// Survivor regroups (H→H−1 re-shards, ladder rung 2).
    pub regroups: u64,
    /// Hot host readmissions performed.
    pub readmissions: u64,
    /// Per-chunk checksummed retries on transient port faults.
    pub chunk_retries: u64,
    /// Staging-media faults detected before any reader consumed them.
    pub media_detections: u64,
    /// Collectives rerouted over the ring fallback (ladder rung 3).
    pub ring_fallbacks: u64,
    /// Corrupted bytes that reached a reduction — must be zero.
    pub poisoned_admitted: u64,
    /// End-of-run fabric time in nanoseconds.
    pub fabric_time_ns: u64,
    /// Did the degraded run's reduced gradients and parameters stay
    /// byte-identical to the matching never-failed fabric's?
    pub converged: bool,
}

/// Render the fabric-chaos section: one row per (hosts, kill-phase,
/// media-rate) cell, fixed shape for clean diffs.
pub fn chaos_report_md(points: &[ChaosPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Fabric chaos: host loss and media faults mid-all-reduce\n");
    if points.is_empty() {
        let _ = writeln!(out, "No chaos points recorded.\n");
        return out;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.hosts.to_string(),
                p.kill_phase.clone(),
                format!("{:.2}", p.media_rate),
                p.detections.to_string(),
                p.regroups.to_string(),
                p.readmissions.to_string(),
                p.chunk_retries.to_string(),
                p.media_detections.to_string(),
                p.ring_fallbacks.to_string(),
                p.poisoned_admitted.to_string(),
                format!("{:.3}", p.fabric_time_ns as f64 / 1e6),
                if p.converged { "yes".into() } else { "NO".into() },
            ]
        })
        .collect();
    out += &md_table(
        &[
            "hosts",
            "kill phase",
            "media rate",
            "detected",
            "regroups",
            "readmits",
            "retries",
            "media det",
            "ring falls",
            "poisoned",
            "fabric ms",
            "converged",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "\nEach cell kills a host at a chunk boundary of one step's all-reduce\n\
         and/or injects persistent staging-media faults. The collective\n\
         deadline watchdog detects the loss, the fabric walks the degradation\n\
         ladder (per-chunk checksummed retry \u{2192} survivor regroup \u{2192} ring\n\
         fallback under retirement pressure), and the lost host hot-readmits\n\
         from pooled state. \"converged\" means the regrouped reduces and the\n\
         final parameters stayed byte-identical to the matching never-failed\n\
         fabric; \"poisoned\" counts corrupt bytes admitted to a reduction and\n\
         must be zero in every cell."
    );
    out
}

/// One tiered-placement sweep point for the report's markdown table:
/// one model run under one placement policy. A plain data carrier, like
/// [`ScalingPoint`]: the session layer that produces it lives above this
/// crate.
#[derive(Debug, Clone, PartialEq)]
pub struct PlacementPoint {
    /// Model display name.
    pub model: String,
    /// Placement policy label: `"single-tier"` or `"tiered"`.
    pub policy: String,
    /// BO-autotuned giant-cache size in MB.
    pub autotuned_mb: u64,
    /// The published Table III giant-cache size in MB.
    pub table3_mb: u64,
    /// Bytes resident in the device tier at end of run.
    pub device_bytes: u64,
    /// Bytes resident in the giant cache at end of run.
    pub giant_cache_bytes: u64,
    /// Bytes resident in plain host DRAM at end of run.
    pub host_dram_bytes: u64,
    /// Tensor migrations executed at step boundaries.
    pub migrations: u64,
    /// Bytes moved by those migrations.
    pub migrated_bytes: u64,
    /// Parameter bytes that crossed the host link.
    pub link_param_bytes: u64,
    /// Gradient bytes that crossed the host link.
    pub link_grad_bytes: u64,
    /// FNV-1a digest of the final session snapshot.
    pub snapshot_digest: String,
}

/// Render the tiered-placement section: one row per (model, policy)
/// cell, fixed shape for clean diffs.
pub fn placement_report_md(points: &[PlacementPoint]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Tiered tensor placement: device / giant cache / host DRAM\n");
    if points.is_empty() {
        let _ = writeln!(out, "No placement points recorded.\n");
        return out;
    }
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.model.clone(),
                p.policy.clone(),
                p.autotuned_mb.to_string(),
                p.table3_mb.to_string(),
                p.device_bytes.to_string(),
                p.giant_cache_bytes.to_string(),
                p.host_dram_bytes.to_string(),
                p.migrations.to_string(),
                p.migrated_bytes.to_string(),
                p.link_param_bytes.to_string(),
                p.link_grad_bytes.to_string(),
                p.snapshot_digest.clone(),
            ]
        })
        .collect();
    out += &md_table(
        &[
            "model",
            "policy",
            "tuned MB",
            "Table III MB",
            "device B",
            "cache B",
            "host B",
            "migrations",
            "migrated B",
            "param link B",
            "grad link B",
            "snapshot",
        ],
        &rows,
    );
    let _ = writeln!(
        out,
        "\nEach row trains one scaled-down model under one placement policy.\n\
         Single-tier is the legacy layout (everything in the giant cache, no\n\
         placement engine constructed); tiered splits tensors by class —\n\
         small hot tensors pin device-resident, params and grads stage in\n\
         the CXL giant cache, optimizer moments spill to plain host DRAM —\n\
         and migrates across tiers only at step boundaries. \"tuned MB\" is\n\
         the BO-sized giant cache next to the published Table III setting;\n\
         the snapshot digest proves run-to-run byte reproducibility."
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn md_table_shapes() {
        let t =
            md_table(&["a", "b"], &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]]);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "| a | b |");
        assert_eq!(lines[1], "|---|---|");
        assert_eq!(lines[2], "| 1 | 2 |");
    }

    #[test]
    fn timing_report_contains_all_sections() {
        let rep = timing_report(&Calibration::paper());
        for needle in [
            "Table I",
            "Table IV",
            "Fig. 12",
            "Table VI",
            "invalidation vs update",
            "communication volume",
            "Bert-large-cased",
            "GPT2-11B",
            "OOM", // the T5@16 cell
        ] {
            assert!(rep.contains(needle), "report missing {needle:?}");
        }
        // Every markdown table is well-formed (same cell count per row).
        for block in rep.split("\n\n") {
            let rows: Vec<&str> = block.lines().filter(|l| l.starts_with('|')).collect();
            if rows.len() >= 2 {
                let cols = rows[0].matches('|').count();
                for r in &rows {
                    assert_eq!(r.matches('|').count(), cols, "ragged table: {r}");
                }
            }
        }
    }

    #[test]
    fn report_is_deterministic() {
        let cal = Calibration::paper();
        assert_eq!(timing_report(&cal), timing_report(&cal));
    }

    #[test]
    fn fault_report_fixed_shape() {
        // Zero and nonzero reports render the same table rows, so run
        // outputs diff cleanly; degraded regions append when present.
        let clean = fault_report_md(&FaultStats::default(), &[]);
        assert!(clean.contains("No faults injected"));
        let mut s = FaultStats { crc_errors: 3, retries: 7, ..FaultStats::default() };
        s.quarantined_lines = 1;
        let dirty = fault_report_md(&s, &["params".into(), "grads".into()]);
        assert!(!dirty.contains("No faults injected"));
        assert!(dirty.contains("| CRC errors (link) | 3 |"));
        assert!(dirty.contains("degraded regions (in order): params, grads"));
        let count = |r: &str| r.lines().filter(|l| l.starts_with('|')).count();
        assert_eq!(count(&clean), count(&dirty), "same table shape");
    }

    #[test]
    fn scaling_report_renders_rows_and_empty_case() {
        assert!(scaling_report_md(&[]).contains("No scaling points recorded"));
        let p = ScalingPoint {
            devices: 4,
            batch: 8,
            cluster_time_ns: 1_500_000,
            speedup_vs_one: 3.2,
            efficiency_pct: 80.0,
            host_wait_ns: 250_000,
            host_drained_ns: 1_400_000,
            fanout_saved_bytes: 3_000_000,
        };
        let md = scaling_report_md(std::slice::from_ref(&p));
        assert!(md.contains("| 4 | 8 | 1.500 | 3.20 | 80.0% | 0.250 | 1.400 | 3.00 |"), "{md}");
        assert_eq!(md, scaling_report_md(&[p]), "deterministic");
    }

    #[test]
    fn churn_report_renders_rows_and_empty_case() {
        assert!(churn_report_md(&[]).contains("No churn points recorded"));
        let p = ChurnPoint {
            devices: 4,
            kill_mode: "readmit".into(),
            media_rate: 1.0,
            down_events: 1,
            readmits: 1,
            redistributed_lines: 24,
            faults_injected: 17,
            lines_retired: 12,
            rebuilds: 3,
            cluster_time_ns: 2_400_000,
            converged: true,
        };
        let md = churn_report_md(std::slice::from_ref(&p));
        assert!(
            md.contains("| 4 | readmit | 1.00 | 1 | 1 | 24 | 17 | 12 | 3 | 2.400 | yes |"),
            "{md}"
        );
        let mut bad = p.clone();
        bad.converged = false;
        assert!(churn_report_md(&[bad]).contains("| NO |"));
        assert_eq!(md, churn_report_md(&[p]), "deterministic");
    }

    #[test]
    fn collective_report_renders_rows_and_empty_case() {
        assert!(collective_report_md(&[]).contains("No collective points recorded"));
        let p = CollectivePoint {
            hosts: 4,
            grad_bytes: 64 << 20,
            pool_ns: 20_000_000,
            ring_ns: 33_000_000,
            speedup: 1.65,
            pool_port_bytes: 7 * (64 << 20),
            ring_link_bytes: 12 * (64 << 20),
            fanin_saved_bytes: 2 * (64 << 20),
            results_match: true,
        };
        let md = collective_report_md(std::slice::from_ref(&p));
        assert!(
            md.contains("| 4 | 64 | 20.000 | 33.000 | 1.65 | 469.8 | 805.3 | 134.2 | yes |"),
            "{md}"
        );
        let mut bad = p.clone();
        bad.results_match = false;
        assert!(collective_report_md(&[bad]).contains("| NO |"));
        assert_eq!(md, collective_report_md(&[p]), "deterministic");
    }

    #[test]
    fn placement_report_renders_rows_and_empty_case() {
        assert!(placement_report_md(&[]).contains("No placement points recorded"));
        let p = PlacementPoint {
            model: "GPT-2".into(),
            policy: "tiered".into(),
            autotuned_mb: 320,
            table3_mb: 324,
            device_bytes: 4096,
            giant_cache_bytes: 131_072,
            host_dram_bytes: 65_536,
            migrations: 2,
            migrated_bytes: 8192,
            link_param_bytes: 262_144,
            link_grad_bytes: 131_072,
            snapshot_digest: "deadbeefcafef00d".into(),
        };
        let md = placement_report_md(std::slice::from_ref(&p));
        assert!(
            md.contains(
                "| GPT-2 | tiered | 320 | 324 | 4096 | 131072 | 65536 | 2 | 8192 | 262144 \
                 | 131072 | deadbeefcafef00d |"
            ),
            "{md}"
        );
        assert_eq!(md, placement_report_md(&[p]), "deterministic");
    }
}
