//! # teco-offload — ZeRO-Offload and TECO training-step simulation
//!
//! The evaluation engine of the reproduction: steady-state training-step
//! schedules for ZeRO-Offload, TECO-CXL, TECO-Reduction, and the
//! invalidation-protocol ablation ([`schedule`]); the calibrated platform
//! timing model ([`timing`]); the live-training DBA convergence coupling
//! ([`convergence`]); and the experiment drivers that regenerate every
//! table and figure ([`experiments`]).

pub mod autotune;
pub mod baselines;
pub mod convergence;
pub mod cost;
pub mod doublebuffer;
pub mod experiments;
pub mod memory;
pub mod multistep;
pub mod report;
pub mod schedule;
pub mod sweep;
pub mod timing;

pub use autotune::{
    autotune_giant_cache, expected_improvement, giant_cache_working_set, minimize, BoResult,
    GaussianProcess, GiantCacheTune,
};
pub use baselines::{dpu_hiding_fraction, simulate_prefetch_step, simulate_zero_offload_dpu};
pub use convergence::{dba_merge_bits, ConvergenceConfig, ConvergenceResult, DbaSchedule, Task};
pub use cost::DatacenterModel;
pub use doublebuffer::{double_buffer, DoubleBufferResult};
pub use memory::{cpu_layout, gpu_layout, CpuLayout, GpuLayout};
pub use multistep::{simulate_dpu_run, simulate_run, RunResult};
pub use report::{
    chaos_report_md, churn_report_md, collective_report_md, fault_report_md, md_table,
    placement_report_md, scaling_report_md, timing_report, ChaosPoint, ChurnPoint, CollectivePoint,
    PlacementPoint, ScalingPoint,
};
pub use schedule::{
    dba_payload_fraction, simulate_step, simulate_teco_dba, Breakdown, StepResult, System,
};
pub use sweep::{sweep, sweep_with_workers};
pub use timing::Calibration;
