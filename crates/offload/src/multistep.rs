//! Multi-step training-run simulation.
//!
//! The per-step simulators in [`crate::schedule`] assume steady state.
//! This module runs N consecutive steps with explicit cross-step state:
//! the `CXLFENCE` at each phase boundary means ZeRO-Offload and the TECO
//! systems genuinely are steady-state (each step is independent), while
//! DPU pipelines the parameter transfer into the next step's compute and
//! needs one step to fill. The run simulator both *verifies* the
//! steady-state assumption and produces whole-run estimates (hours to a
//! step budget — the Table VII currency, and the §V-A activation schedule
//! where the first `act_aft_steps` run without DBA).

use crate::baselines::simulate_zero_offload_dpu;
use crate::convergence::DbaSchedule;
use crate::schedule::{simulate_step, System};
use crate::timing::Calibration;
use serde::Serialize;
use teco_dl::ModelSpec;
use teco_sim::SimTime;

/// Result of a multi-step run.
#[derive(Debug, Clone, Serialize)]
pub struct RunResult {
    /// Per-step durations.
    pub step_times: Vec<SimTime>,
    /// Total wall clock.
    pub total: SimTime,
}

impl RunResult {
    /// Total in hours.
    pub fn hours(&self) -> f64 {
        self.total.as_secs_f64() / 3600.0
    }
    /// Mean step time.
    pub fn mean_step(&self) -> SimTime {
        if self.step_times.is_empty() {
            SimTime::ZERO
        } else {
            SimTime::from_ps(self.total.as_ps() / self.step_times.len() as u64)
        }
    }
}

/// Simulate `steps` training steps of a system. For TECO systems a
/// [`DbaSchedule`] selects when steps switch from TECO-CXL (full lines) to
/// TECO-Reduction (aggregated payloads) — the run-level view of
/// `check_activation`.
pub fn simulate_run(
    cal: &Calibration,
    spec: &ModelSpec,
    batch: u32,
    system: System,
    steps: u64,
    dba: Option<DbaSchedule>,
) -> RunResult {
    let mut step_times = Vec::with_capacity(steps as usize);
    let mut total = SimTime::ZERO;
    // Steady-state per-step times (fences make steps independent).
    let t_plain = simulate_step(cal, spec, batch, system).total;
    let t_cxl = simulate_step(cal, spec, batch, System::TecoCxl).total;
    for step in 0..steps {
        let t = match (system, dba) {
            (System::TecoReduction, Some(s)) if !s.active_at(step) => t_cxl,
            _ => t_plain,
        };
        step_times.push(t);
        total += t;
    }
    RunResult { step_times, total }
}

/// Simulate a DPU run, including the pipeline-fill first step (which has
/// nothing to overlap with and pays the full exposed transfer).
pub fn simulate_dpu_run(cal: &Calibration, spec: &ModelSpec, batch: u32, steps: u64) -> RunResult {
    let cold = simulate_step(cal, spec, batch, System::ZeroOffload).total;
    let warm = simulate_zero_offload_dpu(cal, spec, batch).total;
    let mut step_times = Vec::with_capacity(steps as usize);
    let mut total = SimTime::ZERO;
    for step in 0..steps {
        let t = if step == 0 { cold } else { warm };
        step_times.push(t);
        total += t;
    }
    RunResult { step_times, total }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn steady_state_runs_are_linear() {
        let c = cal();
        let spec = ModelSpec::gpt2();
        let one = simulate_step(&c, &spec, 4, System::ZeroOffload).total;
        let run = simulate_run(&c, &spec, 4, System::ZeroOffload, 100, None);
        assert_eq!(run.total, one * 100);
        assert_eq!(run.mean_step(), one);
        assert_eq!(run.step_times.len(), 100);
    }

    #[test]
    fn dba_schedule_mixes_step_kinds() {
        let c = cal();
        let spec = ModelSpec::bert_large();
        let sched = DbaSchedule { act_aft_steps: 30, dirty_bytes: 2 };
        let run = simulate_run(&c, &spec, 4, System::TecoReduction, 100, Some(sched));
        let cxl = simulate_step(&c, &spec, 4, System::TecoCxl).total;
        let red = simulate_step(&c, &spec, 4, System::TecoReduction).total;
        assert_eq!(run.step_times[0], cxl);
        assert_eq!(run.step_times[29], cxl);
        assert_eq!(run.step_times[30], red);
        assert_eq!(run.total, cxl * 30 + red * 70);
        // Later activation → slower run.
        let later = simulate_run(
            &c,
            &spec,
            4,
            System::TecoReduction,
            100,
            Some(DbaSchedule { act_aft_steps: 90, dirty_bytes: 2 }),
        );
        assert!(later.total > run.total);
    }

    #[test]
    fn dpu_run_has_pipeline_fill() {
        let c = cal();
        let spec = ModelSpec::bert_large();
        let run = simulate_dpu_run(&c, &spec, 4, 50);
        assert!(run.step_times[0] > run.step_times[1], "first step fills the pipeline");
        assert!(run.step_times[1..].windows(2).all(|w| w[0] == w[1]));
        // Amortized, the fill cost vanishes.
        let warm = run.step_times[1];
        let mean = run.mean_step();
        assert!(mean >= warm && mean.as_secs_f64() < warm.as_secs_f64() * 1.05);
    }

    #[test]
    fn run_hours_are_table7_scale() {
        // A GLUE-scale fine-tune (tens of thousands of steps) lands in the
        // single-digit-hours regime the paper's Table VII reports.
        let c = cal();
        let spec = ModelSpec::bert_large();
        let run = simulate_run(&c, &spec, 8, System::TecoReduction, 36_800, None);
        assert!(run.hours() > 0.5 && run.hours() < 10.0, "{:.2} h", run.hours());
    }
}
