//! Bayesian optimization of `act_aft_steps` (§V-A: "`act_aft_steps` can be
//! tuned using the Bayesian optimization" — the paper's refs 17 and 94).
//!
//! A small, self-contained BO stack: a Gaussian process with an RBF kernel
//! (Cholesky-based exact inference — evaluation counts are tiny), the
//! expected-improvement acquisition, and a sequential minimizer over a
//! discrete candidate domain. The objective for TECO couples the two sides
//! of Fig. 13: the accuracy cost of activating DBA early and the time cost
//! of activating it late.

use teco_sim::SimRng;

/// A 1-D Gaussian process with an RBF kernel and Gaussian observation
/// noise, fit by exact Cholesky inference.
#[derive(Debug, Clone)]
pub struct GaussianProcess {
    xs: Vec<f64>,
    ys: Vec<f64>,
    /// RBF lengthscale.
    pub lengthscale: f64,
    /// Signal variance σ_f².
    pub signal_var: f64,
    /// Observation-noise variance σ_n².
    pub noise_var: f64,
    /// Cached Cholesky factor of K + σ_n² I (lower triangular, row-major).
    chol: Vec<f64>,
    /// Cached α = K⁻¹ (y − mean).
    alpha: Vec<f64>,
    y_mean: f64,
}

impl GaussianProcess {
    /// New GP with the given hyperparameters and no data.
    pub fn new(lengthscale: f64, signal_var: f64, noise_var: f64) -> Self {
        assert!(lengthscale > 0.0 && signal_var > 0.0 && noise_var >= 0.0);
        GaussianProcess {
            xs: Vec::new(),
            ys: Vec::new(),
            lengthscale,
            signal_var,
            noise_var,
            chol: Vec::new(),
            alpha: Vec::new(),
            y_mean: 0.0,
        }
    }

    fn kernel(&self, a: f64, b: f64) -> f64 {
        let d = (a - b) / self.lengthscale;
        self.signal_var * (-0.5 * d * d).exp()
    }

    /// Add an observation and refit.
    pub fn observe(&mut self, x: f64, y: f64) {
        self.xs.push(x);
        self.ys.push(y);
        self.refit();
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.xs.len()
    }
    /// True when no observations.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    fn refit(&mut self) {
        let n = self.xs.len();
        self.y_mean = self.ys.iter().sum::<f64>() / n as f64;
        // K + σ_n² I.
        let mut k = vec![0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                k[i * n + j] = self.kernel(self.xs[i], self.xs[j]);
            }
            k[i * n + i] += self.noise_var + 1e-10;
        }
        // Cholesky: K = L Lᵀ.
        let mut l = vec![0f64; n * n];
        for i in 0..n {
            for j in 0..=i {
                let mut sum = k[i * n + j];
                for p in 0..j {
                    sum -= l[i * n + p] * l[j * n + p];
                }
                if i == j {
                    assert!(sum > 0.0, "kernel matrix not PD (sum={sum})");
                    l[i * n + i] = sum.sqrt();
                } else {
                    l[i * n + j] = sum / l[j * n + j];
                }
            }
        }
        // α = L⁻ᵀ L⁻¹ (y − mean).
        let mut z = vec![0f64; n];
        for i in 0..n {
            let mut sum = self.ys[i] - self.y_mean;
            for p in 0..i {
                sum -= l[i * n + p] * z[p];
            }
            z[i] = sum / l[i * n + i];
        }
        let mut alpha = vec![0f64; n];
        for i in (0..n).rev() {
            let mut sum = z[i];
            for p in (i + 1)..n {
                sum -= l[p * n + i] * alpha[p];
            }
            alpha[i] = sum / l[i * n + i];
        }
        self.chol = l;
        self.alpha = alpha;
    }

    /// Posterior mean and variance at `x`.
    pub fn posterior(&self, x: f64) -> (f64, f64) {
        let n = self.xs.len();
        if n == 0 {
            return (0.0, self.signal_var);
        }
        let kx: Vec<f64> = self.xs.iter().map(|&xi| self.kernel(x, xi)).collect();
        let mean = self.y_mean + kx.iter().zip(&self.alpha).map(|(a, b)| a * b).sum::<f64>();
        // v = L⁻¹ kx.
        let mut v = vec![0f64; n];
        for i in 0..n {
            let mut sum = kx[i];
            for (p, vp) in v.iter().enumerate().take(i) {
                sum -= self.chol[i * n + p] * vp;
            }
            v[i] = sum / self.chol[i * n + i];
        }
        let var = (self.kernel(x, x) - v.iter().map(|a| a * a).sum::<f64>()).max(1e-12);
        (mean, var)
    }
}

/// Standard-normal PDF.
fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * std::f64::consts::PI).sqrt()
}
/// Standard-normal CDF (Abramowitz-Stegun style erf approximation).
fn big_phi(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / std::f64::consts::SQRT_2))
}
fn erf(x: f64) -> f64 {
    // Numerical Recipes 6.2 approximation, |err| < 1.2e-7.
    let t = 1.0 / (1.0 + 0.5 * x.abs());
    let tau = t
        * (-x * x - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        1.0 - tau
    } else {
        tau - 1.0
    }
}

/// Expected improvement (for minimization) at `x` given the best observed
/// value `best`.
pub fn expected_improvement(gp: &GaussianProcess, x: f64, best: f64) -> f64 {
    let (mu, var) = gp.posterior(x);
    let sigma = var.sqrt();
    if sigma < 1e-12 {
        return (best - mu).max(0.0);
    }
    let z = (best - mu) / sigma;
    (best - mu) * big_phi(z) + sigma * phi(z)
}

/// Result of a BO run.
#[derive(Debug, Clone)]
pub struct BoResult {
    /// Best input found.
    pub best_x: f64,
    /// Its objective value.
    pub best_y: f64,
    /// Every (x, y) evaluated, in order.
    pub history: Vec<(f64, f64)>,
}

/// Minimize `f` over the discrete `domain` with `n_init` random probes and
/// `n_iter` EI-guided evaluations.
pub fn minimize(
    f: &mut dyn FnMut(f64) -> f64,
    domain: &[f64],
    n_init: usize,
    n_iter: usize,
    seed: u64,
) -> BoResult {
    assert!(!domain.is_empty() && n_init >= 1);
    let span = domain.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
        - domain.iter().cloned().fold(f64::INFINITY, f64::min);
    let mut gp = GaussianProcess::new((span / 4.0).max(1e-6), 1.0, 1e-4);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut history = Vec::new();
    let mut evaluated = vec![false; domain.len()];

    // Normalize y online for GP conditioning.
    let mut raw: Vec<f64> = Vec::new();
    let eval_at = |idx: usize,
                   gp: &mut GaussianProcess,
                   raw: &mut Vec<f64>,
                   history: &mut Vec<(f64, f64)>,
                   evaluated: &mut Vec<bool>,
                   f: &mut dyn FnMut(f64) -> f64| {
        let x = domain[idx];
        let y = f(x);
        raw.push(y);
        history.push((x, y));
        evaluated[idx] = true;
        // Refit GP on standardized observations.
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        let std = (raw.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / raw.len() as f64)
            .sqrt()
            .max(1e-9);
        *gp = GaussianProcess::new(gp.lengthscale, 1.0, 1e-4);
        for (xx, yy) in history.iter() {
            gp.observe(*xx, (yy - mean) / std);
        }
    };

    for _ in 0..n_init.min(domain.len()) {
        // Random unevaluated point.
        let mut idx = rng.index(domain.len());
        while evaluated[idx] {
            idx = rng.index(domain.len());
        }
        eval_at(idx, &mut gp, &mut raw, &mut history, &mut evaluated, f);
    }
    for _ in 0..n_iter {
        if evaluated.iter().all(|&e| e) {
            break;
        }
        // Standardized best.
        let mean = raw.iter().sum::<f64>() / raw.len() as f64;
        let std = (raw.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / raw.len() as f64)
            .sqrt()
            .max(1e-9);
        let best_std = history.iter().map(|&(_, y)| (y - mean) / std).fold(f64::INFINITY, f64::min);
        // Pick the unevaluated candidate with maximum EI.
        let (idx, _) = domain
            .iter()
            .enumerate()
            .filter(|(i, _)| !evaluated[*i])
            .map(|(i, &x)| (i, expected_improvement(&gp, x, best_std)))
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .expect("unevaluated candidates exist");
        eval_at(idx, &mut gp, &mut raw, &mut history, &mut evaluated, f);
    }

    let (best_x, best_y) = history
        .iter()
        .cloned()
        .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .expect("nonempty history");
    BoResult { best_x, best_y, history }
}

// ---- Giant-cache sizing (Table III) ----

/// Per-line coherence-directory metadata resident alongside each cached
/// 64-byte line (owner, sharer bits, DBA register image).
const DIRECTORY_BYTES_PER_LINE: f64 = 12.0;
/// Cost per byte of parameter working set spilled to plain host DRAM when
/// the giant cache is undersized (full-line transfers, no DBA).
const SPILL_COST_PER_BYTE: f64 = 8.0;
/// Cost per byte of pool capacity reserved but never referenced when the
/// giant cache is oversized (opportunity cost of the shared pool).
const IDLE_COST_PER_BYTE: f64 = 0.25;

/// The giant-cache working set for one model: the parameter image in
/// DBA-compressed form plus per-line directory metadata. The published
/// Table III sizes sit within ~7 % of this estimate for every model.
pub fn giant_cache_working_set(spec: &teco_dl::ModelSpec, dirty_bytes: u8) -> f64 {
    let frac = crate::schedule::dba_payload_fraction(dirty_bytes);
    let lines = spec.param_bytes().div_ceil(64) as f64;
    spec.param_bytes() as f64 * frac + lines * DIRECTORY_BYTES_PER_LINE
}

/// Result of autotuning the giant-cache size for one model.
#[derive(Debug, Clone)]
pub struct GiantCacheTune {
    /// Model display name.
    pub model: &'static str,
    /// BO-selected giant-cache size in MB.
    pub tuned_mb: u64,
    /// The published Table III size in MB, for comparison.
    pub table3_mb: u64,
    /// Objective value at the tuned size.
    pub cost: f64,
    /// Objective evaluations spent.
    pub evals: usize,
}

/// Size the giant cache for `spec` with the BO minimizer: the objective
/// charges spilled working set (undersized) against idle pool reservation
/// (oversized), searched over a geometric MB grid in log2 space.
pub fn autotune_giant_cache(spec: &teco_dl::ModelSpec, seed: u64) -> GiantCacheTune {
    let need = giant_cache_working_set(spec, 2);
    // 64 MB .. 32 GB in ×2^(1/8) ≈ ×1.09 steps, searched as log2(MB).
    let domain: Vec<f64> = (48..=120).map(|i| i as f64 / 8.0).collect();
    let mut f = |x: f64| {
        let bytes = x.exp2() * (1u64 << 20) as f64;
        (need - bytes).max(0.0) * SPILL_COST_PER_BYTE + (bytes - need).max(0.0) * IDLE_COST_PER_BYTE
    };
    let r = minimize(&mut f, &domain, 5, 27, seed);
    GiantCacheTune {
        model: spec.name,
        tuned_mb: r.best_x.exp2().round() as u64,
        table3_mb: spec.giant_cache_mb,
        cost: r.best_y,
        evals: r.history.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gp_interpolates_observations() {
        let mut gp = GaussianProcess::new(1.0, 1.0, 1e-8);
        for &(x, y) in &[(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)] {
            gp.observe(x, y);
        }
        for &(x, y) in &[(0.0, 1.0), (1.0, 2.0), (2.0, 0.5)] {
            let (mu, var) = gp.posterior(x);
            assert!((mu - y).abs() < 1e-3, "mu({x})={mu} want {y}");
            assert!(var < 1e-3, "var({x})={var}");
        }
        // Far away, the posterior reverts to the mean with high variance.
        let (mu, var) = gp.posterior(100.0);
        let mean = (1.0 + 2.0 + 0.5) / 3.0;
        assert!((mu - mean).abs() < 1e-6);
        assert!(var > 0.9);
    }

    #[test]
    fn gp_posterior_variance_shrinks_near_data() {
        let mut gp = GaussianProcess::new(1.0, 1.0, 1e-6);
        gp.observe(0.0, 0.0);
        let (_, v_near) = gp.posterior(0.1);
        let (_, v_far) = gp.posterior(3.0);
        assert!(v_near < v_far);
    }

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-6); // approximation error ~1e-7
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((big_phi(0.0) - 0.5).abs() < 1e-6);
        assert!((big_phi(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn ei_prefers_low_mean_and_high_uncertainty() {
        let mut gp = GaussianProcess::new(0.5, 1.0, 1e-6);
        gp.observe(0.0, 0.0);
        gp.observe(2.0, 1.0);
        // EI at the known minimum's neighborhood vs at the known bad point.
        let ei_near_good = expected_improvement(&gp, 0.2, 0.0);
        let ei_near_bad = expected_improvement(&gp, 1.9, 0.0);
        assert!(ei_near_good > ei_near_bad);
        // A far-away point with big uncertainty also has positive EI.
        assert!(expected_improvement(&gp, 10.0, 0.0) > 0.0);
    }

    #[test]
    fn bo_finds_quadratic_minimum_with_few_evals() {
        let mut calls = 0usize;
        let mut f = |x: f64| {
            calls += 1;
            (x - 7.0) * (x - 7.0)
        };
        let domain: Vec<f64> = (0..=20).map(|i| i as f64).collect();
        let r = minimize(&mut f, &domain, 3, 7, 42);
        assert!((r.best_x - 7.0).abs() <= 1.0, "best_x {}", r.best_x);
        assert!(calls <= 10, "used {calls} evals");
        assert_eq!(r.history.len(), calls);
    }

    #[test]
    fn bo_handles_noisy_objective() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut f = |x: f64| (x - 3.0).powi(2) + rng.normal(0.0, 0.05);
        let domain: Vec<f64> = (0..=10).map(|i| i as f64).collect();
        let r = minimize(&mut f, &domain, 3, 6, 7);
        assert!((r.best_x - 3.0).abs() <= 1.0, "best_x {}", r.best_x);
    }

    #[test]
    fn bo_exhausts_small_domains_gracefully() {
        let mut f = |x: f64| -x;
        let domain = [1.0, 2.0, 3.0];
        let r = minimize(&mut f, &domain, 1, 10, 1);
        assert_eq!(r.best_x, 3.0);
        assert_eq!(r.history.len(), 3);
    }

    #[test]
    fn autotuned_cache_tracks_table3() {
        for spec in teco_dl::ModelSpec::table3() {
            let tune = autotune_giant_cache(&spec, 11);
            let ratio = tune.tuned_mb as f64 / tune.table3_mb as f64;
            assert!(
                (0.7..=1.4).contains(&ratio),
                "{}: tuned {} MB vs Table III {} MB (ratio {ratio:.2})",
                tune.model,
                tune.tuned_mb,
                tune.table3_mb
            );
        }
    }

    #[test]
    fn autotune_is_deterministic_and_scales_with_model() {
        let bert = teco_dl::ModelSpec::bert_large();
        let a = autotune_giant_cache(&bert, 11);
        let b = autotune_giant_cache(&bert, 11);
        assert_eq!(a.tuned_mb, b.tuned_mb);
        assert_eq!(a.evals, b.evals);

        let small = autotune_giant_cache(&teco_dl::ModelSpec::gpt2(), 11);
        let large = autotune_giant_cache(&teco_dl::ModelSpec::t5_large(), 11);
        assert!(small.tuned_mb < a.tuned_mb && a.tuned_mb < large.tuned_mb);
    }
}
