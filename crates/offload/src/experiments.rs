//! Experiment drivers: one function per paper table/figure that the bench
//! binaries (and integration tests) call. Each returns serializable rows
//! carrying both the measured value and the paper's reference value so
//! EXPERIMENTS.md can be regenerated mechanically.

use crate::schedule::{simulate_step, StepResult, System};
use crate::sweep::sweep;
use crate::timing::Calibration;
use serde::Serialize;
use teco_dl::ModelSpec;

/// Table I: exposed-communication share of ZeRO-Offload training time on
/// Bert-large, by batch size.
#[derive(Debug, Clone, Serialize)]
pub struct Table1Row {
    /// Batch size.
    pub batch: u32,
    /// Measured exposed-communication percentage.
    pub measured_pct: f64,
    /// The paper's Table I value.
    pub paper_pct: f64,
}

/// Run the Table I experiment.
pub fn table1(cal: &Calibration) -> Vec<Table1Row> {
    let bert = ModelSpec::bert_large();
    let paper = [(4u32, 42.24), (8, 37.87), (16, 28.65), (20, 25.95)];
    paper
        .iter()
        .map(|&(batch, paper_pct)| {
            let r = simulate_step(cal, &bert, batch, System::ZeroOffload);
            Table1Row { batch, measured_pct: 100.0 * r.comm_fraction(), paper_pct }
        })
        .collect()
}

/// One cell of the Fig. 11 / Table IV speedup matrix.
#[derive(Debug, Clone, Serialize)]
pub struct SpeedupCell {
    /// Model name.
    pub model: String,
    /// Batch size (GCNII trains full-graph: reported once, batch = 1).
    pub batch: u32,
    /// TECO-CXL speedup over ZeRO-Offload.
    pub teco_cxl: f64,
    /// TECO-Reduction speedup over ZeRO-Offload.
    pub teco_reduction: f64,
    /// Paper's Table IV TECO-Reduction value (None where the paper has no
    /// number, e.g. T5 at batch 16 hits OOM).
    pub paper_reduction: Option<f64>,
    /// Did the baseline OOM at this configuration (T5-large @ 16)?
    pub oom: bool,
}

/// The V100's memory capacity in the paper's testbed (32 GB).
const GPU_MEM_BYTES: u64 = 32 << 30;

/// Would ZeRO-Offload OOM for this model/batch? ZeRO-Offload keeps the
/// FP16 working parameters plus activations on the GPU (gradients and
/// optimizer state live in CPU memory). Activation footprints per token are
/// taken from the model zoo; T5-large fails exactly at batch 16 (§VIII-B).
pub fn zero_offload_ooms(spec: &ModelSpec, batch: u32) -> bool {
    let fp16_params = spec.params * 2;
    let act = spec.act_bytes_per_token * spec.tokens_per_step(batch);
    fp16_params + act > GPU_MEM_BYTES
}

/// Run the Fig. 11 / Table IV experiment over all Table III models.
pub fn fig11_table4(cal: &Calibration) -> Vec<SpeedupCell> {
    let paper: &[(&str, &[(u32, f64)])] = &[
        ("GPT-2", &[(4, 1.82), (8, 1.52), (16, 1.32)]),
        ("Albert-xxlarge-v1", &[(4, 1.25), (8, 1.23), (16, 1.08)]),
        ("Bert-large-cased", &[(4, 1.6), (8, 1.62), (16, 1.41)]),
        ("T5-large", &[(4, 1.73), (8, 1.58)]),
    ];
    // Materialize the (model, batch) sweep points, then fan the independent
    // simulations across cores; results come back in point order, so the
    // rows are identical to the old serial double loop.
    let mut points = Vec::new();
    for spec in ModelSpec::table3() {
        let batches: &[u32] = if spec.name == "GCNII" { &[1] } else { &[4, 8, 16] };
        for &batch in batches {
            points.push((spec.clone(), batch));
        }
    }
    sweep(&points, |_, (spec, batch)| {
        let batch = *batch;
        let oom = zero_offload_ooms(spec, batch);
        let paper_reduction = paper
            .iter()
            .find(|(n, _)| *n == spec.name)
            .and_then(|(_, cells)| cells.iter().find(|(b, _)| *b == batch))
            .map(|&(_, s)| s);
        if oom {
            return SpeedupCell {
                model: spec.name.to_string(),
                batch,
                teco_cxl: f64::NAN,
                teco_reduction: f64::NAN,
                paper_reduction,
                oom: true,
            };
        }
        let zero = simulate_step(cal, spec, batch, System::ZeroOffload);
        let cxl = simulate_step(cal, spec, batch, System::TecoCxl);
        let red = simulate_step(cal, spec, batch, System::TecoReduction);
        SpeedupCell {
            model: spec.name.to_string(),
            batch,
            teco_cxl: cxl.speedup_over(&zero),
            teco_reduction: red.speedup_over(&zero),
            paper_reduction,
            oom: false,
        }
    })
}

/// Fig. 12: the per-phase time breakdown for T5-large across systems and
/// batch sizes.
#[derive(Debug, Clone, Serialize)]
pub struct BreakdownRow {
    /// System name.
    pub system: &'static str,
    /// Batch size.
    pub batch: u32,
    /// Component milliseconds: fwd+bwd, exposed grad xfer, clip, adam,
    /// exposed param xfer, fence.
    pub fwd_bwd_ms: f64,
    pub grad_xfer_ms: f64,
    pub clip_ms: f64,
    pub adam_ms: f64,
    pub param_xfer_ms: f64,
    pub fence_ms: f64,
    pub total_ms: f64,
}

/// Run the Fig. 12 experiment.
pub fn fig12_breakdown(cal: &Calibration) -> Vec<BreakdownRow> {
    let t5 = ModelSpec::t5_large();
    let mut out = Vec::new();
    for &batch in &[2u32, 4, 8] {
        for sys in [System::ZeroOffload, System::TecoCxl, System::TecoReduction] {
            let r = simulate_step(cal, &t5, batch, sys);
            let b = r.breakdown;
            out.push(BreakdownRow {
                system: sys.name(),
                batch,
                fwd_bwd_ms: b.fwd_bwd.as_millis_f64(),
                grad_xfer_ms: b.grad_transfer_exposed.as_millis_f64(),
                clip_ms: b.grad_clip.as_millis_f64(),
                adam_ms: b.adam.as_millis_f64(),
                param_xfer_ms: b.param_transfer_exposed.as_millis_f64(),
                fence_ms: b.fence.as_millis_f64(),
                total_ms: r.total.as_millis_f64(),
            });
        }
    }
    out
}

/// Table VI: model-size sensitivity on the GPT-2 family at batch 4.
#[derive(Debug, Clone, Serialize)]
pub struct Table6Row {
    /// Model name.
    pub model: String,
    /// Measured TECO-CXL speedup.
    pub teco_cxl: f64,
    /// Measured TECO-Reduction speedup.
    pub teco_reduction: f64,
    /// Paper's values (cxl, reduction).
    pub paper: (f64, f64),
}

/// Run the Table VI experiment.
pub fn table6(cal: &Calibration) -> Vec<Table6Row> {
    let paper = [
        ("GPT-2", (1.55, 1.82)),
        ("GPT2-Medium", (1.54, 1.64)),
        ("GPT2-Large", (1.67, 1.79)),
        ("GPT2-11B", (1.29, 1.41)),
    ];
    let points: Vec<_> = ModelSpec::table6().into_iter().zip(paper).collect();
    sweep(&points, |_, (spec, (name, paper))| {
        assert_eq!(spec.name, *name);
        let zero = simulate_step(cal, spec, 4, System::ZeroOffload);
        let cxl = simulate_step(cal, spec, 4, System::TecoCxl);
        let red = simulate_step(cal, spec, 4, System::TecoReduction);
        Table6Row {
            model: spec.name.to_string(),
            teco_cxl: cxl.speedup_over(&zero),
            teco_reduction: red.speedup_over(&zero),
            paper: *paper,
        }
    })
}

/// §IV-A2 ablation: training-time increase of the invalidation protocol
/// over the update protocol.
#[derive(Debug, Clone, Serialize)]
pub struct AblationRow {
    /// Model name.
    pub model: String,
    /// Percent increase in step time (invalidation vs. update), batch 4.
    pub penalty_pct: f64,
}

/// Run the invalidation-vs-update ablation. The paper reports +56.6 % on
/// average, up to +99.7 % for T5-large.
pub fn ablation_inval_vs_update(cal: &Calibration) -> Vec<AblationRow> {
    ModelSpec::table3()
        .into_iter()
        .map(|spec| {
            let batch = if spec.name == "GCNII" { 1 } else { 4 };
            let upd = simulate_step(cal, &spec, batch, System::TecoCxl);
            let inv = simulate_step(cal, &spec, batch, System::TecoInvalidation);
            AblationRow {
                model: spec.name.to_string(),
                penalty_pct: 100.0 * (inv.total.as_secs_f64() / upd.total.as_secs_f64() - 1.0),
            }
        })
        .collect()
}

/// §VIII-C: communication volume and exposed-overhead reduction.
#[derive(Debug, Clone, Serialize)]
pub struct VolumeRow {
    /// Model name.
    pub model: String,
    /// Batch size.
    pub batch: u32,
    /// Parameter bytes per step, baseline.
    pub param_bytes_zero: u64,
    /// Parameter bytes per step with DBA.
    pub param_bytes_red: u64,
    /// Gradient bytes (identical in both; DBA never applies).
    pub grad_bytes: u64,
    /// Exposed-communication reduction, percent (the 93.7 %-average claim).
    pub overhead_reduction_pct: f64,
}

/// Run the communication-volume experiment.
pub fn volume_summary(cal: &Calibration) -> Vec<VolumeRow> {
    let mut points = Vec::new();
    for spec in ModelSpec::table3() {
        let batches: &[u32] = if spec.name == "GCNII" { &[1] } else { &[4, 8] };
        for &batch in batches {
            points.push((spec.clone(), batch));
        }
    }
    sweep(&points, |_, (spec, batch)| {
        let zero = simulate_step(cal, spec, *batch, System::ZeroOffload);
        let red = simulate_step(cal, spec, *batch, System::TecoReduction);
        let z = zero.breakdown.comm_exposed().as_secs_f64();
        let r = red.breakdown.comm_exposed().as_secs_f64();
        VolumeRow {
            model: spec.name.to_string(),
            batch: *batch,
            param_bytes_zero: zero.bytes_to_device,
            param_bytes_red: red.bytes_to_device,
            grad_bytes: zero.bytes_to_host,
            overhead_reduction_pct: if z > 0.0 { 100.0 * (1.0 - r / z) } else { 100.0 },
        }
    })
}

/// Convenience: simulate all three systems for a model/batch.
pub fn all_systems(cal: &Calibration, spec: &ModelSpec, batch: u32) -> [StepResult; 3] {
    [
        simulate_step(cal, spec, batch, System::ZeroOffload),
        simulate_step(cal, spec, batch, System::TecoCxl),
        simulate_step(cal, spec, batch, System::TecoReduction),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn table1_tracks_paper_within_tolerance() {
        for row in table1(&cal()) {
            let err = (row.measured_pct - row.paper_pct).abs();
            assert!(
                err < 6.0,
                "bs{}: {:.1} vs paper {:.1}",
                row.batch,
                row.measured_pct,
                row.paper_pct
            );
        }
    }

    #[test]
    fn table1_is_monotonically_decreasing() {
        let rows = table1(&cal());
        for w in rows.windows(2) {
            assert!(w[0].measured_pct > w[1].measured_pct);
        }
    }

    #[test]
    fn table4_speedups_in_paper_range() {
        // Paper: 1.08×–1.82×. Allow a modest modeling band around it.
        for cell in fig11_table4(&cal()) {
            if cell.oom {
                continue;
            }
            assert!(
                cell.teco_reduction > 1.05 && cell.teco_reduction < 2.0,
                "{} b{}: {:.2}",
                cell.model,
                cell.batch,
                cell.teco_reduction
            );
            // Reduction at least matches CXL (DBA only removes bytes).
            assert!(cell.teco_reduction >= cell.teco_cxl - 1e-9);
            if let Some(p) = cell.paper_reduction {
                assert!(
                    (cell.teco_reduction - p).abs() < 0.35,
                    "{} b{}: {:.2} vs paper {:.2}",
                    cell.model,
                    cell.batch,
                    cell.teco_reduction,
                    p
                );
            }
        }
    }

    #[test]
    fn t5_ooms_at_batch_16_only() {
        // §VIII-B: "We cannot evaluate T5-large with ZeRO-Offload when the
        // batch size is 16".
        let t5 = ModelSpec::t5_large();
        assert!(!zero_offload_ooms(&t5, 4));
        assert!(!zero_offload_ooms(&t5, 8));
        assert!(zero_offload_ooms(&t5, 16));
        // The others fit at 16.
        for spec in [ModelSpec::gpt2(), ModelSpec::bert_large()] {
            assert!(!zero_offload_ooms(&spec, 16), "{}", spec.name);
        }
        let cells = fig11_table4(&cal());
        let t5_16 = cells
            .iter()
            .find(|c| c.model == "T5-large" && c.batch == 16)
            .expect("fig11_table4 must emit a T5-large cell at batch 16");
        assert!(t5_16.oom);
    }

    #[test]
    fn albert_shows_least_speedup() {
        // §VIII-B observation 2.
        let cells = fig11_table4(&cal());
        for batch in [4u32, 8] {
            let albert = cells
                .iter()
                .find(|c| c.model == "Albert-xxlarge-v1" && c.batch == batch)
                .unwrap_or_else(|| {
                    panic!("fig11_table4 must emit an Albert-xxlarge-v1 cell at batch {batch}")
                });
            for c in cells.iter().filter(|c| c.batch == batch && !c.oom && c.model != "GCNII") {
                assert!(albert.teco_reduction <= c.teco_reduction + 1e-9, "{}", c.model);
            }
        }
    }

    #[test]
    fn fig12_param_transfer_vanishes_with_dba() {
        let rows = fig12_breakdown(&cal());
        for batch in [2u32, 4, 8] {
            let zero = rows
                .iter()
                .find(|r| r.system == "ZeRO-Offload" && r.batch == batch)
                .unwrap_or_else(|| {
                    panic!("fig12_breakdown must emit a ZeRO-Offload row at batch {batch}")
                });
            let red = rows
                .iter()
                .find(|r| r.system == "TECO-Reduction" && r.batch == batch)
                .unwrap_or_else(|| {
                    panic!("fig12_breakdown must emit a TECO-Reduction row at batch {batch}")
                });
            assert!(red.param_xfer_ms < 0.1 * zero.param_xfer_ms);
            assert!(red.total_ms < zero.total_ms);
            // Compute and CPU phases are system-independent.
            assert!((red.fwd_bwd_ms - zero.fwd_bwd_ms).abs() < 1e-6);
            assert!((red.adam_ms - zero.adam_ms).abs() < 1e-6);
        }
    }

    #[test]
    fn table6_shape_matches_paper() {
        let rows = table6(&cal());
        assert_eq!(rows.len(), 4);
        for r in &rows {
            assert!(r.teco_reduction >= r.teco_cxl - 1e-9, "{}", r.model);
            assert!(
                (r.teco_reduction - r.paper.1).abs() < 0.45,
                "{}: {:.2} vs {:.2}",
                r.model,
                r.teco_reduction,
                r.paper.1
            );
        }
        // The 11B model shows the smallest gain (compute dominates).
        let gains: Vec<f64> = rows.iter().map(|r| r.teco_reduction).collect();
        assert!(gains[3] < gains[0] && gains[3] < gains[2]);
    }

    #[test]
    fn ablation_penalty_shape() {
        let rows = ablation_inval_vs_update(&cal());
        let avg = rows.iter().map(|r| r.penalty_pct).sum::<f64>() / rows.len() as f64;
        // Paper: +56.6 % average, up to +99.7 % (T5). Our model lands the
        // average nearly exactly; per-model ranking differs slightly.
        assert!(avg > 40.0 && avg < 75.0, "avg {avg}");
        let t5 = rows
            .iter()
            .find(|r| r.model == "T5-large")
            .expect("ablation_inval_vs_update must emit a T5-large row");
        assert!(t5.penalty_pct >= avg, "T5 above average: {:.1} vs {:.1}", t5.penalty_pct, avg);
        // Albert (compute-heavy) suffers least.
        let albert = rows
            .iter()
            .find(|r| r.model == "Albert-xxlarge-v1")
            .expect("ablation_inval_vs_update must emit an Albert-xxlarge-v1 row");
        assert!(rows.iter().all(|r| r.penalty_pct >= albert.penalty_pct - 1e-9));
    }

    #[test]
    fn volume_claims_hold() {
        let rows = volume_summary(&cal());
        for r in &rows {
            // §VIII-C: param volume −50 %, gradient volume unchanged.
            assert_eq!(r.param_bytes_red * 2, r.param_bytes_zero, "{}", r.model);
            assert!(r.grad_bytes > 0);
        }
        let avg = rows.iter().map(|r| r.overhead_reduction_pct).sum::<f64>() / rows.len() as f64;
        // Paper: 93.7 % average reduction (up to 100 %).
        assert!(avg > 70.0, "avg overhead reduction {avg}");
        assert!(rows.iter().any(|r| r.overhead_reduction_pct > 90.0));
    }
}
