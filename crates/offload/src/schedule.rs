//! Training-step schedule simulation for ZeRO-Offload and the TECO
//! variants.
//!
//! One simulated step covers Fig. 1's five phases, measured from forward
//! start to the point the *next* forward could start:
//!
//! 1. forward (GPU) — 2. backward (GPU), gradients streaming out —
//! 3. gradient transfer GPU→CPU — 4. clip + ADAM (CPU) —
//! 5. parameter transfer CPU→GPU.
//!
//! The systems differ in *when bytes move*:
//!
//! - **ZeRO-Offload**: gradients flush in buffer-sized bursts over raw PCIe
//!   during backward (tail exposed); parameters move as one bulk copy after
//!   the optimizer — largely exposed (double buffering hides buffer
//!   *filling*, not the transfer; DPU is ineffective at the evaluated batch
//!   sizes, §II-A/§III).
//! - **TECO-CXL**: the update protocol pushes cache lines at writeback
//!   time, so gradient lines stream during backward and parameter lines
//!   stream *during* the ADAM sweep; only the drain tails plus two
//!   `CXLFENCE` calls are exposed.
//! - **TECO-Reduction**: TECO-CXL plus DBA — parameter payloads shrink to
//!   `dirty_bytes`/4 of each word (gradients are never aggregated, §V).
//! - **TECO-Invalidation** (ablation, §IV-A2): the stock MESI protocol —
//!   writebacks send invalidations only and every consumer pays an
//!   on-demand bulk transfer on its critical path.

use crate::timing::Calibration;
use serde::{Deserialize, Serialize};
use teco_cxl::FENCE_CHECK_OVERHEAD;
use teco_dl::ModelSpec;
use teco_mem::ChunkedSweep;
use teco_sim::{SerialServer, SimTime};

/// The simulated training system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum System {
    /// The DeepSpeed ZeRO-Offload baseline (PCIe, explicit transfers).
    ZeroOffload,
    /// TECO with the CXL update protocol, no DBA.
    TecoCxl,
    /// TECO with update protocol + dirty-byte aggregation.
    TecoReduction,
    /// TECO hardware but stock invalidation-based MESI (the §IV-A2
    /// motivation ablation).
    TecoInvalidation,
}

impl System {
    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            System::ZeroOffload => "ZeRO-Offload",
            System::TecoCxl => "TECO-CXL",
            System::TecoReduction => "TECO-Reduction",
            System::TecoInvalidation => "TECO-Invalidation",
        }
    }
}

/// The Fig. 12 time breakdown of one step.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Breakdown {
    /// GPU forward+backward.
    pub fwd_bwd: SimTime,
    /// Gradient-transfer time exposed to the critical path.
    pub grad_transfer_exposed: SimTime,
    /// CPU gradient clipping ("gradient optimizer").
    pub grad_clip: SimTime,
    /// CPU ADAM ("parameter optimization").
    pub adam: SimTime,
    /// Parameter-transfer time exposed to the critical path.
    pub param_transfer_exposed: SimTime,
    /// CXLFENCE overhead (TECO systems; zero for the baseline).
    pub fence: SimTime,
}

impl Breakdown {
    /// Sum of all components (== step total).
    pub fn total(&self) -> SimTime {
        self.fwd_bwd
            + self.grad_transfer_exposed
            + self.grad_clip
            + self.adam
            + self.param_transfer_exposed
            + self.fence
    }
    /// Exposed communication time (Table I's numerator).
    pub fn comm_exposed(&self) -> SimTime {
        self.grad_transfer_exposed + self.param_transfer_exposed
    }
}

/// Result of simulating one steady-state training step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct StepResult {
    /// Which system was simulated.
    pub system: System,
    /// Step wall-clock time.
    pub total: SimTime,
    /// Where the time went.
    pub breakdown: Breakdown,
    /// Payload bytes moved GPU→CPU (gradients).
    pub bytes_to_host: u64,
    /// Payload bytes moved CPU→GPU (parameters).
    pub bytes_to_device: u64,
    /// Wire (link-occupancy) time of all transfers, exposed or not.
    pub link_busy: SimTime,
}

impl StepResult {
    /// Exposed-communication share of the step (Table I's metric).
    pub fn comm_fraction(&self) -> f64 {
        self.breakdown.comm_exposed().fraction_of(self.total)
    }
    /// Speedup of this step relative to another result.
    pub fn speedup_over(&self, base: &StepResult) -> f64 {
        base.total.as_secs_f64() / self.total.as_secs_f64()
    }
}

/// The fraction of a full line DBA with `dirty_bytes` transmits
/// (`dirty_bytes = 4` disables truncation).
pub fn dba_payload_fraction(dirty_bytes: u8) -> f64 {
    assert!((1..=4).contains(&dirty_bytes), "dirty_bytes 1..=4");
    dirty_bytes as f64 / 4.0
}

/// Simulate a TECO update-protocol step with an arbitrary `dirty_bytes`
/// setting (1–4; 4 equals TECO-CXL). Gradients never aggregate.
pub fn simulate_teco_dba(
    cal: &Calibration,
    spec: &ModelSpec,
    batch: u32,
    dirty_bytes: u8,
) -> StepResult {
    let frac = dba_payload_fraction(dirty_bytes);
    // Reuse the standard TECO-CXL step, then replay the parameter stream
    // with the scaled payload.
    let base = simulate_step(cal, spec, batch, System::TecoCxl);
    let t_clip = cal.clip_time(spec);
    let t_adam = cal.adam_time(spec);
    let bwd_end = cal.fwd_bwd_time(spec, batch);
    let cpu_start = bwd_end + base.breakdown.grad_transfer_exposed + FENCE_CHECK_OVERHEAD;
    let adam_start = cpu_start + t_clip;
    let adam_end = adam_start + t_adam;
    let param_bytes = spec.param_bytes();
    let wire_bytes = ((param_bytes as f64) * frac).round() as u64;
    let sweep = ChunkedSweep {
        total_bytes: wire_bytes,
        chunks: cal.chunks_for(spec),
        update_rate: cal.adam_param_production_rate(spec).scaled(frac),
        start: adam_start,
    };
    let mut link = SerialServer::new(cal.cxl_bw());
    for c in sweep.chunks() {
        link.submit_with_latency(c.ready, c.bytes, cal.cxl.aggregator_latency);
    }
    let drain = link.next_free();
    let mut br = base.breakdown;
    br.param_transfer_exposed = drain.saturating_sub(adam_end);
    let total = br.total();
    StepResult {
        system: System::TecoReduction,
        total,
        breakdown: br,
        bytes_to_host: base.bytes_to_host,
        bytes_to_device: wire_bytes,
        link_busy: base.link_busy, // parameter stream busy time differs; callers use totals
    }
}

/// Simulate one steady-state training step.
pub fn simulate_step(
    cal: &Calibration,
    spec: &ModelSpec,
    batch: u32,
    system: System,
) -> StepResult {
    let t_f = cal.forward_time(spec, batch);
    let t_b = cal.backward_time(spec, batch);
    let bwd_start = t_f;
    let bwd_end = t_f + t_b;
    let t_clip = cal.clip_time(spec);
    let t_adam = cal.adam_time(spec);

    let grad_bytes = spec.params * cal.grad_bytes_per_param;
    let param_bytes = spec.param_bytes();
    let chunks = cal.chunks_for(spec);

    let mut br =
        Breakdown { fwd_bwd: t_f + t_b, grad_clip: t_clip, adam: t_adam, ..Breakdown::default() };
    let mut link_busy = SimTime::ZERO;
    let mut bytes_to_device = param_bytes;

    let (grad_drain, fence_after_bwd) = match system {
        System::ZeroOffload => {
            // Buffer-sized bursts over raw PCIe during backward. Each burst
            // becomes eligible when backward has produced it.
            let burst = cal.grad_buffer_bytes.min(grad_bytes).max(1);
            let n_bursts = grad_bytes.div_ceil(burst) as usize;
            let sweep = ChunkedSweep {
                total_bytes: grad_bytes,
                chunks: n_bursts,
                update_rate: cal.grad_production_rate(spec, batch),
                start: bwd_start,
            };
            let mut link = SerialServer::new(cal.pcie_bw());
            for c in sweep.chunks() {
                link.submit(c.ready, c.bytes);
            }
            link_busy += link.busy_time();
            (link.next_free(), SimTime::ZERO)
        }
        System::TecoInvalidation => {
            // Invalidation protocol: gradient lines are invalidated during
            // backward but the *data* moves on demand when the CPU reads it
            // for clipping — one bulk on-demand transfer, fully exposed.
            let mut link = SerialServer::new(cal.cxl_bw());
            let iv = link.submit(bwd_end, grad_bytes);
            link_busy += link.busy_time();
            (iv.end, FENCE_CHECK_OVERHEAD)
        }
        System::TecoCxl | System::TecoReduction => {
            // Update protocol: gradient cache lines stream over CXL as the
            // backward pass writes them back (no DBA for gradients, §V).
            let sweep = ChunkedSweep {
                total_bytes: grad_bytes,
                chunks,
                update_rate: cal.grad_production_rate(spec, batch),
                start: bwd_start,
            };
            let mut link = SerialServer::new(cal.cxl_bw());
            for c in sweep.chunks() {
                link.submit_with_latency(c.ready, c.bytes, cal.cxl.disaggregator_latency);
            }
            link_busy += link.busy_time();
            (link.next_free(), FENCE_CHECK_OVERHEAD)
        }
    };
    br.grad_transfer_exposed = grad_drain.saturating_sub(bwd_end);
    br.fence += fence_after_bwd;

    // CPU phase: clipping needs every gradient (global norm), then ADAM.
    let cpu_start = bwd_end + br.grad_transfer_exposed + fence_after_bwd;
    let adam_start = cpu_start + t_clip;
    let adam_end = adam_start + t_adam;

    // Parameter transfer CPU→GPU.
    let step_end = match system {
        System::ZeroOffload => {
            // Bulk copy after the optimizer finishes; double buffering does
            // not hide the transfer itself (§II-A).
            let mut link = SerialServer::new(cal.pcie_bw());
            let iv = link.submit(adam_end, param_bytes);
            link_busy += link.busy_time();
            br.param_transfer_exposed = iv.end - adam_end;
            iv.end
        }
        System::TecoInvalidation => {
            // On-demand at the next forward's first parameter read.
            let mut link = SerialServer::new(cal.cxl_bw());
            let iv = link.submit(adam_end, param_bytes);
            link_busy += link.busy_time();
            br.param_transfer_exposed = iv.end - adam_end;
            br.fence += FENCE_CHECK_OVERHEAD;
            iv.end + FENCE_CHECK_OVERHEAD
        }
        System::TecoCxl | System::TecoReduction => {
            // Update protocol: parameter lines stream while ADAM sweeps.
            let payload_frac = if system == System::TecoReduction {
                // DBA with dirty_bytes = 2: 32-byte payloads per 64-byte
                // line; the link layer packs two payloads per slot (§V-B).
                dba_payload_fraction(2)
            } else {
                1.0
            };
            let wire_bytes = ((param_bytes as f64) * payload_frac).round() as u64;
            bytes_to_device = wire_bytes;
            let sweep = ChunkedSweep {
                total_bytes: wire_bytes,
                chunks,
                update_rate: cal.adam_param_production_rate(spec).scaled(
                    // The producer emits *wire* bytes at the rate ADAM
                    // produces the underlying parameters.
                    wire_bytes as f64 / param_bytes as f64,
                ),
                start: adam_start,
            };
            let mut link = SerialServer::new(cal.cxl_bw());
            let extra = cal.cxl.aggregator_latency;
            for c in sweep.chunks() {
                link.submit_with_latency(c.ready, c.bytes, extra);
            }
            link_busy += link.busy_time();
            let drain = link.next_free();
            br.param_transfer_exposed = drain.saturating_sub(adam_end);
            br.fence += FENCE_CHECK_OVERHEAD;
            drain.max(adam_end) + FENCE_CHECK_OVERHEAD
        }
    };

    let result = StepResult {
        system,
        total: step_end,
        breakdown: br,
        bytes_to_host: grad_bytes,
        bytes_to_device,
        link_busy,
    };
    debug_assert_eq!(result.breakdown.total(), result.total, "breakdown must sum to total");
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn breakdown_sums_to_total_for_all_systems() {
        let c = cal();
        for spec in ModelSpec::table3() {
            for batch in [1u32, 4, 8, 16] {
                for sys in [
                    System::ZeroOffload,
                    System::TecoCxl,
                    System::TecoReduction,
                    System::TecoInvalidation,
                ] {
                    let r = simulate_step(&c, &spec, batch, sys);
                    assert_eq!(
                        r.breakdown.total(),
                        r.total,
                        "{} {} b{batch}",
                        spec.name,
                        sys.name()
                    );
                    assert!(r.total > SimTime::ZERO);
                }
            }
        }
    }

    #[test]
    fn teco_reduction_beats_cxl_beats_zero() {
        let c = cal();
        for spec in [ModelSpec::gpt2(), ModelSpec::bert_large(), ModelSpec::t5_large()] {
            for batch in [4u32, 8] {
                let zero = simulate_step(&c, &spec, batch, System::ZeroOffload);
                let cxl = simulate_step(&c, &spec, batch, System::TecoCxl);
                let red = simulate_step(&c, &spec, batch, System::TecoReduction);
                assert!(cxl.total < zero.total, "{} b{batch}: CXL not faster", spec.name);
                assert!(red.total <= cxl.total, "{} b{batch}: DBA not faster", spec.name);
            }
        }
    }

    #[test]
    fn invalidation_is_slowest_teco_mode() {
        let c = cal();
        let spec = ModelSpec::t5_large();
        let upd = simulate_step(&c, &spec, 4, System::TecoCxl);
        let inv = simulate_step(&c, &spec, 4, System::TecoInvalidation);
        assert!(inv.total > upd.total);
        // §IV-A2: on-demand transfer costs tens of percent extra.
        let penalty = inv.total.as_secs_f64() / upd.total.as_secs_f64();
        assert!(penalty > 1.2, "penalty {penalty}");
    }

    #[test]
    fn dba_halves_parameter_volume_only() {
        let c = cal();
        let spec = ModelSpec::bert_large();
        let cxl = simulate_step(&c, &spec, 8, System::TecoCxl);
        let red = simulate_step(&c, &spec, 8, System::TecoReduction);
        assert_eq!(red.bytes_to_device * 2, cxl.bytes_to_device);
        assert_eq!(red.bytes_to_host, cxl.bytes_to_host, "gradients never aggregated");
    }

    #[test]
    fn comm_fraction_decreases_with_batch_for_zero_offload() {
        // The Table I trend.
        let c = cal();
        let spec = ModelSpec::bert_large();
        let fracs: Vec<f64> = [4u32, 8, 16, 20]
            .iter()
            .map(|&b| simulate_step(&c, &spec, b, System::ZeroOffload).comm_fraction())
            .collect();
        for w in fracs.windows(2) {
            assert!(w[0] > w[1], "fractions not decreasing: {fracs:?}");
        }
        assert!(fracs[0] > 0.30, "bs4 fraction {}", fracs[0]);
        assert!(fracs[3] < 0.35, "bs20 fraction {}", fracs[3]);
    }

    #[test]
    fn teco_hides_most_parameter_transfer() {
        // Fig. 12: with DBA the parameter transfer is (nearly) fully hidden
        // behind the ADAM sweep.
        let c = cal();
        let spec = ModelSpec::t5_large();
        let zero = simulate_step(&c, &spec, 4, System::ZeroOffload);
        let red = simulate_step(&c, &spec, 4, System::TecoReduction);
        assert!(
            red.breakdown.param_transfer_exposed.as_secs_f64()
                < 0.1 * zero.breakdown.param_transfer_exposed.as_secs_f64(),
            "exposed {} vs {}",
            red.breakdown.param_transfer_exposed,
            zero.breakdown.param_transfer_exposed
        );
    }

    #[test]
    fn gradient_transfer_fully_hidden_at_batch_8() {
        // §VIII-B: "the transfer time is completely hidden by TECO when the
        // batch size is 8" — all that remains is the final-chunk drain tail
        // (a couple of ms out of a ~90 ms gradient stream).
        let c = cal();
        let spec = ModelSpec::t5_large();
        let r = simulate_step(&c, &spec, 8, System::TecoReduction);
        let z = simulate_step(&c, &spec, 8, System::ZeroOffload);
        assert!(
            r.breakdown.grad_transfer_exposed < SimTime::from_ms(3),
            "exposed {}",
            r.breakdown.grad_transfer_exposed
        );
        assert!(
            r.breakdown.grad_transfer_exposed.as_secs_f64()
                < 0.25 * z.breakdown.grad_transfer_exposed.as_secs_f64()
        );
    }

    #[test]
    fn simulate_teco_dba_matches_named_systems() {
        let c = cal();
        for spec in [ModelSpec::gpt2(), ModelSpec::t5_large()] {
            for batch in [4u32, 8] {
                let named = simulate_step(&c, &spec, batch, System::TecoReduction);
                let param = simulate_teco_dba(&c, &spec, batch, 2);
                assert_eq!(param.total, named.total, "{} b{batch}", spec.name);
                assert_eq!(param.bytes_to_device, named.bytes_to_device);
                let cxl = simulate_step(&c, &spec, batch, System::TecoCxl);
                let full = simulate_teco_dba(&c, &spec, batch, 4);
                assert_eq!(full.total, cxl.total);
            }
        }
    }

    #[test]
    fn dirty_bytes_sweep_is_monotone() {
        let c = cal();
        let spec = ModelSpec::t5_large();
        let mut prev = SimTime::MAX;
        for n in (1..=4u8).rev() {
            let r = simulate_teco_dba(&c, &spec, 4, n);
            assert!(r.total <= prev, "dirty_bytes {n} slower than {}", n + 1);
            prev = r.total;
        }
    }

    #[test]
    fn fence_called_twice_per_step() {
        let c = cal();
        let spec = ModelSpec::gpt2();
        let r = simulate_step(&c, &spec, 4, System::TecoReduction);
        assert_eq!(r.breakdown.fence, FENCE_CHECK_OVERHEAD * 2);
        // §VI: fence cost is under 1 % of the step.
        assert!(r.breakdown.fence.as_secs_f64() < 0.01 * r.total.as_secs_f64());
        let z = simulate_step(&c, &spec, 4, System::ZeroOffload);
        assert_eq!(z.breakdown.fence, SimTime::ZERO);
    }
}
