//! Parallel experiment-sweep runner.
//!
//! Every paper table/figure is a sweep over independent points
//! (model × batch × config), each of which runs a deterministic simulation.
//! This module fans those points across cores with scoped threads while
//! keeping the output *bit-identical* to a serial run: workers claim
//! indices from a shared atomic counter, and results are scattered back
//! into index order, so neither thread count nor scheduling affects the
//! returned `Vec`. Each point's computation is itself deterministic (seeded
//! RNGs, no shared state), which makes the whole sweep reproducible.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Map `f` over `items` in parallel, returning results in item order.
///
/// `f` receives `(index, &item)` and must be safe to call concurrently
/// from multiple threads (it only gets `&self` access to captured state).
/// Falls back to a plain serial loop when the machine has one core or the
/// sweep has at most one point.
pub fn sweep<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    sweep_with_workers(items, teco_dl::num_cores(), f)
}

/// [`sweep`] with an explicit worker count. `workers <= 1` runs the plain
/// serial loop; any count must return bit-identical results (the
/// determinism matrix in `tests/determinism.rs` pins serial against
/// parallel for the shipped sweeps).
pub fn sweep_with_workers<T, R, F>(items: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let n = items.len();
    let workers = workers.min(n);
    if workers <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut slots: Vec<Option<R>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    // Dynamic dispatch: uneven point costs (11B models next
                    // to GCNII) would starve a static partition.
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= n {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            for (i, r) in h.join().expect("sweep worker panicked") {
                slots[i] = Some(r);
            }
        }
    });
    slots.into_iter().map(|r| r.expect("every index claimed exactly once")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order() {
        let items: Vec<u64> = (0..100).collect();
        // Uneven per-item cost scrambles completion order on purpose.
        let out = sweep(&items, |i, &x| {
            if i % 7 == 0 {
                std::thread::sleep(std::time::Duration::from_micros(200));
            }
            x * 2
        });
        assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn matches_serial_run() {
        let items: Vec<u64> = (0..64).map(|i| i * 31 + 7).collect();
        let work = |_: usize, &x: &u64| -> u64 {
            // A small deterministic computation with float involvement,
            // mirroring the simulate_step call shape.
            (0..x % 97).fold(x, |a, b| a.wrapping_mul(6364136223846793005).wrapping_add(b))
        };
        let serial: Vec<u64> = items.iter().enumerate().map(|(i, x)| work(i, x)).collect();
        assert_eq!(sweep(&items, work), serial);
    }

    #[test]
    fn handles_empty_and_single() {
        let empty: Vec<u32> = Vec::new();
        assert!(sweep(&empty, |_, &x| x).is_empty());
        assert_eq!(sweep(&[41u32], |i, &x| x + i as u32 + 1), vec![42]);
    }

    #[test]
    fn indices_are_correct() {
        let items = vec!["a", "b", "c", "d"];
        let out = sweep(&items, |i, s| format!("{i}:{s}"));
        assert_eq!(out, vec!["0:a", "1:b", "2:c", "3:d"]);
    }

    #[test]
    fn worker_count_never_changes_results() {
        let items: Vec<u64> = (0..40).map(|i| i * 13 + 5).collect();
        let work = |i: usize, &x: &u64| -> u64 { x.wrapping_mul(i as u64 + 1) ^ (x >> 3) };
        let serial = sweep_with_workers(&items, 1, work);
        for workers in [2, 3, 8, 64] {
            assert_eq!(sweep_with_workers(&items, workers, work), serial, "{workers} workers");
        }
    }
}
