//! Live-training coupling of TECO's dirty-byte aggregation.
//!
//! This is where the *approximation* side of DBA is measured (Figs. 10 and
//! 13, Table V): once DBA activates (after `act_aft_steps`), only the low
//! `dirty_bytes` of each FP32 parameter word cross the interconnect, so the
//! GPU's working copy keeps the *stale high bytes* whenever an update also
//! changed them. We train real models (from `teco-dl`) with the optimizer's
//! writeback hook performing exactly that merge — bit-for-bit what the
//! Disaggregator does — and record loss curves, final metrics, and the
//! Fig. 2 byte-change profiles.

use serde::Serialize;
use teco_dl::data::{community_graph, gaussian_clusters, MarkovTextGen};
use teco_dl::layers::NormAdj;
use teco_dl::loss::perplexity;
use teco_dl::model::MlpClassifier;
use teco_dl::profile::{flatten_grads, flatten_params, SnapshotProfiler};
use teco_dl::{
    AdamConfig, ByteChangeStats, GcnConfig, GcnIIModel, OffloadedAdam, TinyGpt, TinyGptConfig,
    Visitable,
};
use teco_sim::SimRng;

/// TECO's DBA schedule (the two §V-A hyperparameters).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct DbaSchedule {
    /// Steps to wait before activating DBA (`act_aft_steps`, default 500).
    pub act_aft_steps: u64,
    /// Dirty-byte length per 4-byte word (`dirty_bytes`, default 2).
    pub dirty_bytes: u8,
}

impl Default for DbaSchedule {
    fn default() -> Self {
        DbaSchedule { act_aft_steps: 500, dirty_bytes: 2 }
    }
}

impl DbaSchedule {
    /// Is DBA active at (0-based) training step `step`? This is the
    /// `check_activation(i)` predicate of Listing 1.
    pub fn active_at(&self, step: u64) -> bool {
        step >= self.act_aft_steps
    }
}

/// Per-word DBA merge: keep the high `4 − n` bytes of `old` (the stale GPU
/// copy) and take the low `n` bytes of `new` (the fresh CPU master). The
/// word-level equivalent of the Disaggregator's reset-shift-OR (§V-C).
#[inline]
pub fn dba_merge_bits(old: u32, new: u32, dirty_bytes: u8) -> u32 {
    match dirty_bytes {
        0 => old,
        4 => new,
        n => {
            let low_mask = (1u32 << (8 * n as u32)) - 1;
            (old & !low_mask) | (new & low_mask)
        }
    }
}

/// What a convergence run trains.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum Task {
    /// Causal LM on Markov text (GPT-2 / T5 proxy; metric: perplexity).
    LanguageModel,
    /// MLP on Gaussian clusters (BERT-classification proxy; metric:
    /// accuracy).
    Classification,
    /// GCNII on an SBM community graph (metric: accuracy).
    Gcn,
    /// Encoder-decoder sequence reversal (T5 proxy; metric: perplexity).
    Seq2Seq,
    /// GCNII link prediction (Table III's Wisconsin task; metric:
    /// accuracy).
    LinkPrediction,
}

/// Configuration of one convergence run.
#[derive(Debug, Clone)]
pub struct ConvergenceConfig {
    /// The task to train.
    pub task: Task,
    /// Total optimizer steps.
    pub steps: u64,
    /// Sequences per step (LM) or ignored (full-batch tasks).
    pub batch: usize,
    /// Sequence length (LM).
    pub seq: usize,
    /// RNG seed (model init + data).
    pub seed: u64,
    /// ADAM learning rate.
    pub lr: f32,
    /// DBA schedule; `None` trains the exact baseline ("Original").
    pub dba: Option<DbaSchedule>,
    /// Record Fig. 2 byte-change profiles every `n` steps (0 = never).
    pub profile_every: u64,
    /// Start profiling only at this step (Fig. 2 measures consecutive-step
    /// changes late in fine-tuning, where updates are small).
    pub profile_after: u64,
    /// Linearly decay the learning rate to this value by the final step
    /// (`None` keeps `lr` constant). Fine-tuning schedules decay to ~0,
    /// which is what concentrates late-training value changes in the low
    /// mantissa bytes (§III).
    pub lr_end: Option<f32>,
    /// Exact (no-DBA) warmup steps before the measured run — emulates
    /// starting from a *pre-trained checkpoint*, which is the paper's
    /// setting (every Table III workload is a fine-tune).
    pub pretrain_steps: u64,
}

impl Default for ConvergenceConfig {
    fn default() -> Self {
        ConvergenceConfig {
            task: Task::LanguageModel,
            steps: 300,
            batch: 4,
            seq: 16,
            seed: 42,
            lr: 2e-3,
            dba: None,
            profile_every: 0,
            profile_after: 0,
            lr_end: None,
            pretrain_steps: 0,
        }
    }
}

/// The learning rate at `step` of `total` under the config's schedule.
fn lr_at(cfg: &ConvergenceConfig, step: u64) -> f32 {
    match cfg.lr_end {
        None => cfg.lr,
        Some(end) => {
            let t = if cfg.steps <= 1 { 1.0 } else { step as f32 / (cfg.steps - 1) as f32 };
            cfg.lr + (end - cfg.lr) * t
        }
    }
}

/// Result of a convergence run.
#[derive(Debug, Clone, Serialize)]
pub struct ConvergenceResult {
    /// Training loss per step.
    pub losses: Vec<f32>,
    /// Final metric: perplexity for LM (lower better), accuracy for the
    /// classification tasks (higher better).
    pub final_metric: f32,
    /// Human name of the metric.
    pub metric_name: &'static str,
    /// Fig. 2(a): parameter byte-change profile per recorded transition.
    pub param_profile: Vec<ByteChangeStats>,
    /// Fig. 2(b): gradient byte-change profile per recorded transition.
    pub grad_profile: Vec<ByteChangeStats>,
    /// Steps during which DBA was active.
    pub dba_active_steps: u64,
}

impl ConvergenceResult {
    /// Smoothed (windowed-mean) loss curve for plotting.
    pub fn smoothed_losses(&self, window: usize) -> Vec<f32> {
        assert!(window >= 1);
        self.losses
            .windows(window.min(self.losses.len().max(1)))
            .map(|w| w.iter().sum::<f32>() / w.len() as f32)
            .collect()
    }
}

/// Drive one optimizer step with the configured writeback.
fn optimizer_step(
    opt: &mut OffloadedAdam,
    model: &mut dyn Visitable,
    dba: Option<DbaSchedule>,
    step: u64,
) -> bool {
    match dba {
        Some(s) if s.active_at(step) => {
            let n = s.dirty_bytes;
            opt.step_with_writeback(model, &mut |_, old, new| dba_merge_bits(old, new, n));
            true
        }
        _ => {
            opt.step(model);
            false
        }
    }
}

/// Run a convergence experiment.
pub fn run(cfg: &ConvergenceConfig) -> ConvergenceResult {
    match cfg.task {
        Task::LanguageModel => run_lm(cfg),
        Task::Classification => run_classifier(cfg),
        Task::Gcn => run_gcn(cfg),
        Task::Seq2Seq => run_seq2seq(cfg),
        Task::LinkPrediction => run_link_prediction(cfg),
    }
}

fn run_seq2seq(cfg: &ConvergenceConfig) -> ConvergenceResult {
    use teco_dl::{TinyT5, TinyT5Config};
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let t5cfg = TinyT5Config {
        vocab: 24,
        dim: 16,
        heads: 2,
        enc_layers: 1,
        dec_layers: 1,
        max_seq: cfg.seq.max(8),
    };
    let mut model = TinyT5::new(t5cfg, &mut rng);
    let mut data_rng = rng.fork("data");
    let mut opt = OffloadedAdam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut param_prof = SnapshotProfiler::new();
    let mut grad_prof = SnapshotProfiler::new();
    let mut losses = Vec::new();
    let mut dba_steps = 0u64;
    // Sequence reversal: src random tokens 2.., target = BOS + reversed src.
    let sample = |rng: &mut SimRng| -> (Vec<usize>, Vec<usize>) {
        let len = 6;
        let src: Vec<usize> = (0..len).map(|_| 2 + rng.index(22)).collect();
        let mut tgt = vec![0usize];
        tgt.extend(src.iter().rev());
        (src, tgt)
    };

    for _ in 0..cfg.pretrain_steps {
        model.zero_grads();
        for _ in 0..cfg.batch {
            let (src, tgt) = sample(&mut data_rng);
            model.train_pair(&src, &tgt, 1.0 / cfg.batch as f32);
        }
        opt.step(&mut model);
    }
    for step in 0..cfg.steps {
        opt.set_lr(lr_at(cfg, step));
        model.zero_grads();
        let mut loss = 0f32;
        for _ in 0..cfg.batch {
            let (src, tgt) = sample(&mut data_rng);
            loss += model.train_pair(&src, &tgt, 1.0 / cfg.batch as f32);
        }
        losses.push(loss / cfg.batch as f32);
        let profile =
            cfg.profile_every > 0 && step >= cfg.profile_after && step % cfg.profile_every == 0;
        if profile {
            grad_prof.record(&flatten_grads(&mut model));
        }
        if optimizer_step(&mut opt, &mut model, cfg.dba, step) {
            dba_steps += 1;
        }
        if profile {
            param_prof.record(&flatten_params(&mut model));
        }
    }
    let mut eval_rng = SimRng::seed_from_u64(cfg.seed ^ 0xE7A1);
    let mut ce = 0f32;
    let evals = 16;
    for _ in 0..evals {
        let (src, tgt) = sample(&mut eval_rng);
        ce += model.eval_pair(&src, &tgt);
    }
    model.zero_grads();
    ConvergenceResult {
        losses,
        final_metric: perplexity(ce / evals as f32),
        metric_name: "perplexity",
        param_profile: param_prof.history,
        grad_profile: grad_prof.history,
        dba_active_steps: dba_steps,
    }
}

fn run_link_prediction(cfg: &ConvergenceConfig) -> ConvergenceResult {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let g = community_graph(40, 4, 0.5, 0.03, 8, &mut rng);
    let adj = NormAdj::from_edges(g.n, &g.edges);
    let gcn_cfg =
        GcnConfig { in_dim: 8, hidden: 16, layers: 2, classes: 4, alpha: 0.1, lambda: 0.5 };
    let mut model = GcnIIModel::new(gcn_cfg, &mut rng);
    let mut opt = OffloadedAdam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    // Candidate set: real edges plus an equal number of sampled non-edges.
    let mut pairs: Vec<(usize, usize)> = g.edges.iter().take(60).copied().collect();
    let mut labels = vec![1.0f32; pairs.len()];
    let mut tries = 0;
    while labels.iter().filter(|&&l| l == 0.0).count() < pairs.len() / 2 && tries < 10_000 {
        tries += 1;
        let (u, v) = (rng.index(g.n), rng.index(g.n));
        if u != v && !g.edges.contains(&(u.min(v), u.max(v))) {
            pairs.push((u.min(v), u.max(v)));
            labels.push(0.0);
        }
    }
    let mut param_prof = SnapshotProfiler::new();
    let mut grad_prof = SnapshotProfiler::new();
    let mut losses = Vec::new();
    let mut dba_steps = 0u64;
    let mut final_acc = 0f32;
    for _ in 0..cfg.pretrain_steps {
        model.zero_grads();
        model.link_prediction_step(&adj, &g.features, &pairs, &labels);
        opt.step(&mut model);
    }
    for step in 0..cfg.steps {
        opt.set_lr(lr_at(cfg, step));
        model.zero_grads();
        let (loss, acc) = model.link_prediction_step(&adj, &g.features, &pairs, &labels);
        losses.push(loss);
        final_acc = acc;
        let profile =
            cfg.profile_every > 0 && step >= cfg.profile_after && step % cfg.profile_every == 0;
        if profile {
            grad_prof.record(&flatten_grads(&mut model));
        }
        if optimizer_step(&mut opt, &mut model, cfg.dba, step) {
            dba_steps += 1;
        }
        if profile {
            param_prof.record(&flatten_params(&mut model));
        }
    }
    ConvergenceResult {
        losses,
        final_metric: final_acc,
        metric_name: "accuracy",
        param_profile: param_prof.history,
        grad_profile: grad_prof.history,
        dba_active_steps: dba_steps,
    }
}

fn run_lm(cfg: &ConvergenceConfig) -> ConvergenceResult {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let gen = MarkovTextGen::new(32, 2, &mut rng);
    let model_cfg =
        TinyGptConfig { vocab: 32, dim: 24, heads: 4, layers: 2, max_seq: cfg.seq.max(8) };
    let mut model = TinyGpt::new(model_cfg, &mut rng);
    let mut data_rng = rng.fork("data");
    let mut opt = OffloadedAdam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut param_prof = SnapshotProfiler::new();
    let mut grad_prof = SnapshotProfiler::new();
    let mut losses = Vec::with_capacity(cfg.steps as usize);
    let mut dba_steps = 0u64;

    // "Pre-training": exact steps emulating the published checkpoint.
    for _ in 0..cfg.pretrain_steps {
        model.zero_grads();
        for _ in 0..cfg.batch {
            let seq = gen.sample(cfg.seq, &mut data_rng);
            model.train_sequence(&seq, 1.0 / cfg.batch as f32);
        }
        opt.step(&mut model);
    }

    for step in 0..cfg.steps {
        opt.set_lr(lr_at(cfg, step));
        model.zero_grads();
        let mut loss = 0f32;
        for _ in 0..cfg.batch {
            let seq = gen.sample(cfg.seq, &mut data_rng);
            loss += model.train_sequence(&seq, 1.0 / cfg.batch as f32);
        }
        losses.push(loss / cfg.batch as f32);
        let profile =
            cfg.profile_every > 0 && step >= cfg.profile_after && step % cfg.profile_every == 0;
        if profile {
            grad_prof.record(&flatten_grads(&mut model));
        }
        if optimizer_step(&mut opt, &mut model, cfg.dba, step) {
            dba_steps += 1;
        }
        if profile {
            param_prof.record(&flatten_params(&mut model));
        }
    }

    // Final metric: perplexity on held-out sequences.
    let mut eval_rng = SimRng::seed_from_u64(cfg.seed ^ 0xE7A1);
    let mut ce = 0f32;
    let evals = 32;
    for _ in 0..evals {
        let seq = gen.sample(cfg.seq, &mut eval_rng);
        ce += model.eval_sequence(&seq);
    }
    ConvergenceResult {
        losses,
        final_metric: perplexity(ce / evals as f32),
        metric_name: "perplexity",
        param_profile: param_prof.history,
        grad_profile: grad_prof.history,
        dba_active_steps: dba_steps,
    }
}

fn run_classifier(cfg: &ConvergenceConfig) -> ConvergenceResult {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    // One draw of cluster centers; first half trains, second half evaluates
    // (labels are assigned round-robin, so the split stays balanced).
    let all = gaussian_clusters(320, 8, 4, 0.75, &mut rng);
    let dim = 8usize;
    let split = 160usize;
    let train_x =
        teco_dl::Tensor::from_vec(&[split, dim], all.features.data()[..split * dim].to_vec());
    let train_y = all.labels[..split].to_vec();
    let eval_x =
        teco_dl::Tensor::from_vec(&[split, dim], all.features.data()[split * dim..].to_vec());
    let eval_y = all.labels[split..].to_vec();
    let mut model = MlpClassifier::new(8, 24, 4, &mut rng);
    let mut opt = OffloadedAdam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut param_prof = SnapshotProfiler::new();
    let mut grad_prof = SnapshotProfiler::new();
    let mut losses = Vec::new();
    let mut dba_steps = 0u64;

    for _ in 0..cfg.pretrain_steps {
        model.zero_grads();
        model.train_step(&train_x, &train_y);
        opt.step(&mut model);
    }

    for step in 0..cfg.steps {
        opt.set_lr(lr_at(cfg, step));
        model.zero_grads();
        let (loss, _) = model.train_step(&train_x, &train_y);
        losses.push(loss);
        let profile =
            cfg.profile_every > 0 && step >= cfg.profile_after && step % cfg.profile_every == 0;
        if profile {
            grad_prof.record(&flatten_grads(&mut model));
        }
        if optimizer_step(&mut opt, &mut model, cfg.dba, step) {
            dba_steps += 1;
        }
        if profile {
            param_prof.record(&flatten_params(&mut model));
        }
    }
    let acc = model.eval(&eval_x, &eval_y);
    ConvergenceResult {
        losses,
        final_metric: acc,
        metric_name: "accuracy",
        param_profile: param_prof.history,
        grad_profile: grad_prof.history,
        dba_active_steps: dba_steps,
    }
}

fn run_gcn(cfg: &ConvergenceConfig) -> ConvergenceResult {
    let mut rng = SimRng::seed_from_u64(cfg.seed);
    let g = community_graph(48, 4, 0.28, 0.08, 8, &mut rng);
    let adj = NormAdj::from_edges(g.n, &g.edges);
    let gcn_cfg =
        GcnConfig { in_dim: 8, hidden: 16, layers: 4, classes: 4, alpha: 0.1, lambda: 0.5 };
    let mut model = GcnIIModel::new(gcn_cfg, &mut rng);
    let mut opt = OffloadedAdam::new(AdamConfig { lr: cfg.lr, ..Default::default() });
    let mut param_prof = SnapshotProfiler::new();
    let mut grad_prof = SnapshotProfiler::new();
    let mut losses = Vec::new();
    let mut dba_steps = 0u64;
    let mut final_acc = 0f32;

    for _ in 0..cfg.pretrain_steps {
        model.zero_grads();
        model.train_step(&adj, &g.features, &g.labels);
        opt.step(&mut model);
    }

    for step in 0..cfg.steps {
        opt.set_lr(lr_at(cfg, step));
        model.zero_grads();
        let (loss, acc) = model.train_step(&adj, &g.features, &g.labels);
        losses.push(loss);
        final_acc = acc;
        let profile =
            cfg.profile_every > 0 && step >= cfg.profile_after && step % cfg.profile_every == 0;
        if profile {
            grad_prof.record(&flatten_grads(&mut model));
        }
        if optimizer_step(&mut opt, &mut model, cfg.dba, step) {
            dba_steps += 1;
        }
        if profile {
            param_prof.record(&flatten_params(&mut model));
        }
    }
    ConvergenceResult {
        losses,
        final_metric: final_acc,
        metric_name: "accuracy",
        param_profile: param_prof.history,
        grad_profile: grad_prof.history,
        dba_active_steps: dba_steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dba_merge_bits_semantics() {
        assert_eq!(dba_merge_bits(0xAABBCCDD, 0x11223344, 0), 0xAABBCCDD);
        assert_eq!(dba_merge_bits(0xAABBCCDD, 0x11223344, 1), 0xAABBCC44);
        assert_eq!(dba_merge_bits(0xAABBCCDD, 0x11223344, 2), 0xAABB3344);
        assert_eq!(dba_merge_bits(0xAABBCCDD, 0x11223344, 3), 0xAA223344);
        assert_eq!(dba_merge_bits(0xAABBCCDD, 0x11223344, 4), 0x11223344);
    }

    #[test]
    fn dba_merge_matches_cxl_disaggregator() {
        // The word-level hook must agree with the bit-exact line-level
        // hardware model in teco-cxl.
        use teco_cxl::{merged_reference, DbaRegister};
        use teco_mem::LineData;
        let mut stale = LineData::zeroed();
        let mut fresh = LineData::zeroed();
        for w in 0..16 {
            stale.set_word(w, 0x9ABC_DEF0u32.wrapping_add(w as u32 * 77));
            fresh.set_word(w, 0x1357_9BDFu32.wrapping_add(w as u32 * 31));
        }
        for n in 0..=4u8 {
            let hw = merged_reference(&stale, &fresh, n);
            for w in 0..16 {
                assert_eq!(
                    hw.word(w),
                    dba_merge_bits(stale.word(w), fresh.word(w), n),
                    "n={n} w={w}"
                );
            }
            let _ = DbaRegister::new(true, n); // n is a valid register value
        }
    }

    #[test]
    fn schedule_activation_point() {
        let s = DbaSchedule::default();
        assert!(!s.active_at(0));
        assert!(!s.active_at(499));
        assert!(s.active_at(500));
        assert!(s.active_at(10_000));
    }

    #[test]
    fn lm_baseline_converges() {
        let cfg = ConvergenceConfig { steps: 120, ..Default::default() };
        let r = run(&cfg);
        assert_eq!(r.losses.len(), 120);
        let early: f32 = r.losses[..10].iter().sum::<f32>() / 10.0;
        let late: f32 = r.losses[110..].iter().sum::<f32>() / 10.0;
        assert!(late < early, "loss {early} → {late}");
        assert!(r.final_metric < 32.0, "perplexity below vocab size");
        assert_eq!(r.dba_active_steps, 0);
    }

    #[test]
    fn dba_late_activation_tracks_baseline() {
        // Fig. 10's claim: with act_aft_steps at the default, loss curves
        // with and without TECO-Reduction "show the similar trend".
        let base_cfg = ConvergenceConfig { steps: 200, ..Default::default() };
        let base = run(&base_cfg);
        let dba_cfg = ConvergenceConfig {
            dba: Some(DbaSchedule { act_aft_steps: 120, dirty_bytes: 2 }),
            ..base_cfg
        };
        let dba = run(&dba_cfg);
        assert_eq!(dba.dba_active_steps, 80);
        // Final losses within a modest band of each other.
        let b: f32 = base.losses[190..].iter().sum::<f32>() / 10.0;
        let d: f32 = dba.losses[190..].iter().sum::<f32>() / 10.0;
        assert!((d - b).abs() < 0.35 * b.max(0.2), "baseline {b} vs dba {d}");
        // Metric degrades only mildly (Table V shape).
        assert!(dba.final_metric < base.final_metric * 1.6);
    }

    #[test]
    fn dba_from_step_zero_hurts_more_than_late() {
        // Fig. 13's shape: activating DBA immediately degrades accuracy
        // more than activating at the default point.
        let steps = 200;
        let base = run(&ConvergenceConfig { steps, ..Default::default() });
        let early = run(&ConvergenceConfig {
            steps,
            dba: Some(DbaSchedule { act_aft_steps: 0, dirty_bytes: 2 }),
            ..Default::default()
        });
        let late = run(&ConvergenceConfig {
            steps,
            dba: Some(DbaSchedule { act_aft_steps: 150, dirty_bytes: 2 }),
            ..Default::default()
        });
        // Perplexity: lower is better; early activation ≥ late ≥ ~baseline.
        assert!(
            early.final_metric >= late.final_metric * 0.98,
            "early {} late {}",
            early.final_metric,
            late.final_metric
        );
        assert!(late.final_metric <= base.final_metric * 1.4);
    }

    #[test]
    fn profiling_produces_fig2_series() {
        let cfg = ConvergenceConfig { steps: 60, profile_every: 5, ..Default::default() };
        let r = run(&cfg);
        assert!(!r.param_profile.is_empty());
        assert!(!r.grad_profile.is_empty());
        // Parameters concentrate changes in the low bytes far more than
        // gradients do (the §III contrast that justifies applying DBA to
        // parameters only).
        let mut p_agg = ByteChangeStats::default();
        for s in &r.param_profile {
            p_agg.merge(s);
        }
        let mut g_agg = ByteChangeStats::default();
        for s in &r.grad_profile {
            g_agg.merge(s);
        }
        assert!(
            p_agg.frac_low_two_of_changed() > g_agg.frac_low_two_of_changed(),
            "params {} vs grads {}",
            p_agg.frac_low_two_of_changed(),
            g_agg.frac_low_two_of_changed()
        );
    }

    #[test]
    fn seq2seq_and_link_prediction_tasks_run() {
        let t5 = run(&ConvergenceConfig {
            task: Task::Seq2Seq,
            steps: 60,
            lr: 3e-3,
            ..Default::default()
        });
        assert_eq!(t5.metric_name, "perplexity");
        assert!(t5.final_metric < 24.0, "below uniform: {}", t5.final_metric);
        let early: f32 = t5.losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = t5.losses[55..].iter().sum::<f32>() / 5.0;
        assert!(late < early, "seq2seq loss {early} → {late}");

        let lp = run(&ConvergenceConfig {
            task: Task::LinkPrediction,
            steps: 120,
            lr: 5e-3,
            ..Default::default()
        });
        assert_eq!(lp.metric_name, "accuracy");
        assert!(lp.final_metric > 0.6, "link acc {}", lp.final_metric);
    }

    #[test]
    fn classifier_and_gcn_tasks_run() {
        let c = run(&ConvergenceConfig {
            task: Task::Classification,
            steps: 60,
            lr: 5e-3,
            ..Default::default()
        });
        assert_eq!(c.metric_name, "accuracy");
        assert!(c.final_metric > 0.5, "acc {}", c.final_metric);
        let g =
            run(&ConvergenceConfig { task: Task::Gcn, steps: 60, lr: 5e-3, ..Default::default() });
        assert!(g.final_metric > 0.4, "acc {}", g.final_metric);
    }

    #[test]
    fn runs_are_deterministic() {
        let cfg = ConvergenceConfig { steps: 30, ..Default::default() };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.losses, b.losses);
        assert_eq!(a.final_metric, b.final_metric);
    }
}
