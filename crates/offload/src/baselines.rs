//! Additional software baselines from the paper's §I/§II discussion:
//!
//! - **Layer-wise prefetching** (the SwapAdvisor / SuperNeurons / Sentinel
//!   class of related work): parameters are fetched layer-by-layer, one
//!   layer ahead of the forward pass. Hiding works only when per-layer
//!   compute exceeds per-layer transfer time — "one must use a large batch
//!   size or large layer-wise computation ... because of suboptimal data
//!   partitioning and limited PCIe bandwidth" (§I).
//! - **DPU (one-step delayed parameter update)** from ZeRO-Offload: the
//!   parameter transfer of step *i* overlaps the forward+backward of step
//!   *i+1* (which still uses step *i−1*'s weights). Effective only at
//!   large batch ("requires significantly large batch sizes to achieve
//!   enough arithmetic intensity", §II-A), and it perturbs convergence —
//!   which is why the paper's headline comparison keeps it honest.

use crate::schedule::{Breakdown, StepResult, System};
use crate::timing::Calibration;
use teco_dl::ModelSpec;
use teco_sim::{SerialServer, SimTime};

/// Simulate one steady-state step of a *layer-wise prefetching* system:
/// layer `l`'s parameters transfer over PCIe while layer `l−1` computes its
/// forward pass; backward runs from resident copies; gradients and the CPU
/// phase behave as in ZeRO-Offload.
pub fn simulate_prefetch_step(cal: &Calibration, spec: &ModelSpec, batch: u32) -> StepResult {
    let layers = spec.layers.max(1) as u64;
    let t_f = cal.forward_time(spec, batch);
    let t_b = cal.backward_time(spec, batch);
    let per_layer_fwd = t_f / layers;
    let per_layer_bytes = spec.param_bytes() / layers;
    let pcie = cal.pcie_bw();

    // Forward with prefetching: layer l's fetch is issued as early as the
    // link allows (FIFO in layer order), and layer l's compute starts when
    // both its parameters have arrived and layer l−1 finished.
    let mut link = SerialServer::new(pcie);
    let mut compute_free = SimTime::ZERO;
    for _ in 0..layers {
        let iv = link.submit(SimTime::ZERO, per_layer_bytes);
        let begin = compute_free.max(iv.end);
        compute_free = begin + per_layer_fwd;
    }
    // Exposure = forward critical path − pure compute time.
    let fwd_end = compute_free;
    let fwd_exposed = fwd_end.saturating_sub(t_f);

    // Backward and gradient flush: as ZeRO-Offload (buffered bursts).
    let bwd_end = fwd_end + t_b;
    let grad_bytes = spec.params * cal.grad_bytes_per_param;
    let burst = cal.grad_buffer_bytes.min(grad_bytes).max(1);
    let n_bursts = grad_bytes.div_ceil(burst) as usize;
    let sweep = teco_mem::ChunkedSweep {
        total_bytes: grad_bytes,
        chunks: n_bursts,
        update_rate: cal.grad_production_rate(spec, batch),
        start: fwd_end,
    };
    let mut glink = SerialServer::new(pcie);
    for c in sweep.chunks() {
        glink.submit(c.ready, c.bytes);
    }
    let grad_exposed = glink.next_free().saturating_sub(bwd_end);

    // CPU phase; no parameter bulk copy afterwards (next step prefetches),
    // but the *first* layer's prefetch cannot overlap anything, so the
    // next step still pays its latency — folded into fwd_exposed above.
    let t_clip = cal.clip_time(spec);
    let t_adam = cal.adam_time(spec);
    let total = bwd_end + grad_exposed + t_clip + t_adam;

    let br = Breakdown {
        fwd_bwd: t_f + t_b,
        grad_transfer_exposed: grad_exposed,
        grad_clip: t_clip,
        adam: t_adam,
        param_transfer_exposed: fwd_exposed,
        fence: SimTime::ZERO,
    };
    StepResult {
        system: System::ZeroOffload, // reported as a software baseline
        total,
        breakdown: br,
        bytes_to_host: grad_bytes,
        bytes_to_device: spec.param_bytes(),
        link_busy: link.busy_time() + glink.busy_time(),
    }
}

/// Simulate ZeRO-Offload **with DPU**: the parameter transfer overlaps the
/// next step's forward+backward instead of sitting on the critical path.
/// Exposure is whatever the transfer fails to hide behind fwd+bwd.
pub fn simulate_zero_offload_dpu(cal: &Calibration, spec: &ModelSpec, batch: u32) -> StepResult {
    let base = crate::schedule::simulate_step(cal, spec, batch, System::ZeroOffload);
    let fb = cal.fwd_bwd_time(spec, batch);
    let t_param = cal.pcie_bw().transfer_time(spec.param_bytes());
    // DPU hides min(t_param, fb) of the parameter transfer.
    let exposed = t_param.saturating_sub(fb);
    let hidden = t_param - exposed;
    let mut br = base.breakdown;
    br.param_transfer_exposed = exposed;
    StepResult { total: base.total - hidden, breakdown: br, ..base }
}

/// The DPU-effectiveness curve: fraction of the parameter transfer DPU
/// hides, by batch size — §II-A's "requires significantly large batch
/// sizes" quantified.
pub fn dpu_hiding_fraction(cal: &Calibration, spec: &ModelSpec, batch: u32) -> f64 {
    let t_param = cal.pcie_bw().transfer_time(spec.param_bytes());
    let fb = cal.fwd_bwd_time(spec, batch);
    (fb.as_secs_f64() / t_param.as_secs_f64()).min(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::simulate_step;

    fn cal() -> Calibration {
        Calibration::paper()
    }

    #[test]
    fn prefetch_beats_bulk_zero_offload() {
        // Layer-wise prefetch overlaps most of the parameter transfer with
        // forward compute — better than the bulk copy, worse than TECO.
        let c = cal();
        for spec in [ModelSpec::bert_large(), ModelSpec::t5_large()] {
            let zero = simulate_step(&c, &spec, 4, System::ZeroOffload);
            let pre = simulate_prefetch_step(&c, &spec, 4);
            let red = simulate_step(&c, &spec, 4, System::TecoReduction);
            assert!(pre.total < zero.total, "{}: prefetch not faster than bulk", spec.name);
            assert!(red.total < pre.total, "{}: TECO must still win", spec.name);
        }
    }

    #[test]
    fn prefetch_exposure_grows_when_layers_are_transfer_bound() {
        // At batch 4 each Bert layer computes for ~2 ms but its parameters
        // take ~3.5 ms on PCIe — prefetching cannot keep up (§I's point).
        let c = cal();
        let bert = ModelSpec::bert_large();
        let pre4 = simulate_prefetch_step(&c, &bert, 4);
        assert!(
            pre4.breakdown.param_transfer_exposed > SimTime::from_ms(10),
            "exposed {}",
            pre4.breakdown.param_transfer_exposed
        );
        // More batch → more per-layer compute → less exposure.
        let pre16 = simulate_prefetch_step(&c, &bert, 16);
        assert!(pre16.breakdown.param_transfer_exposed < pre4.breakdown.param_transfer_exposed);
    }

    #[test]
    fn dpu_helps_more_at_large_batch() {
        let c = cal();
        let bert = ModelSpec::bert_large();
        let f4 = dpu_hiding_fraction(&c, &bert, 4);
        let f20 = dpu_hiding_fraction(&c, &bert, 20);
        assert!(f20 > f4, "{f4} vs {f20}");
        // §III: at batch 4 the arithmetic intensity is too low for DPU to
        // hide the full transfer.
        assert!(f4 < 1.0);
    }

    #[test]
    fn dpu_never_slower_and_teco_still_wins() {
        let c = cal();
        for spec in ModelSpec::table3() {
            let batch = if spec.name == "GCNII" { 1 } else { 8 };
            let zero = simulate_step(&c, &spec, batch, System::ZeroOffload);
            let dpu = simulate_zero_offload_dpu(&c, &spec, batch);
            let red = simulate_step(&c, &spec, batch, System::TecoReduction);
            assert!(dpu.total <= zero.total);
            assert!(
                red.total < dpu.total,
                "{}: TECO {} !< DPU {}",
                spec.name,
                red.total,
                dpu.total
            );
        }
    }

    #[test]
    fn dpu_breakdown_consistent() {
        let c = cal();
        let spec = ModelSpec::gpt2();
        let dpu = simulate_zero_offload_dpu(&c, &spec, 4);
        assert_eq!(dpu.breakdown.total(), dpu.total, "breakdown must still sum");
    }
}
