//! Property-based tests for the offload schedule simulators.

use proptest::prelude::*;
use teco_dl::{ModelKind, ModelSpec};
use teco_offload::{
    dba_payload_fraction, simulate_prefetch_step, simulate_run, simulate_step, simulate_teco_dba,
    Calibration, DbaSchedule, System,
};
use teco_sim::SimTime;

/// A randomized-but-plausible model spec.
fn spec_strategy() -> impl Strategy<Value = ModelSpec> {
    (
        50u64..2_000, // params in millions
        2u32..64,     // layers
        prop::sample::select(vec![64u32, 128, 256, 512]),
        1u32..25, // attention intensity ×10
    )
        .prop_map(|(pm, layers, seq, ai)| ModelSpec {
            name: "random",
            kind: ModelKind::TransformerDecoder,
            params: pm * 1_000_000,
            layers,
            hidden: 1024,
            heads: 12,
            giant_cache_mb: pm * 3,
            seq_len: seq,
            attention_intensity: ai as f64 / 10.0,
            act_bytes_per_token: 1_000_000,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants that must hold for every system on every plausible model.
    #[test]
    fn step_invariants(spec in spec_strategy(), batch in 1u32..24) {
        let cal = Calibration::paper();
        for sys in [System::ZeroOffload, System::TecoCxl, System::TecoReduction, System::TecoInvalidation] {
            let r = simulate_step(&cal, &spec, batch, sys);
            prop_assert_eq!(r.breakdown.total(), r.total, "{} breakdown", sys.name());
            prop_assert!(r.total > SimTime::ZERO);
            let f = r.comm_fraction();
            prop_assert!((0.0..1.0).contains(&f), "{} comm fraction {f}", sys.name());
            prop_assert!(r.bytes_to_host > 0 && r.bytes_to_device > 0);
        }
    }

    /// Ordering: TECO-Reduction ≤ TECO-CXL ≤ Invalidation; Reduction ≤ ZeRO.
    #[test]
    fn system_ordering(spec in spec_strategy(), batch in 1u32..24) {
        let cal = Calibration::paper();
        let zero = simulate_step(&cal, &spec, batch, System::ZeroOffload);
        let cxl = simulate_step(&cal, &spec, batch, System::TecoCxl);
        let red = simulate_step(&cal, &spec, batch, System::TecoReduction);
        let inv = simulate_step(&cal, &spec, batch, System::TecoInvalidation);
        prop_assert!(red.total <= cxl.total);
        prop_assert!(cxl.total <= inv.total);
        prop_assert!(red.total <= zero.total + SimTime::from_ms(1),
            "TECO-Red slower than ZeRO: {} vs {}", red.total, zero.total);
    }

    /// DBA volume scaling is exactly dirty_bytes/4 on parameters and never
    /// touches gradients; step time is monotone in dirty_bytes.
    #[test]
    fn dba_scaling(spec in spec_strategy(), batch in 1u32..16) {
        let cal = Calibration::paper();
        let cxl = simulate_step(&cal, &spec, batch, System::TecoCxl);
        let mut prev_total = SimTime::MAX;
        for n in (1..=4u8).rev() {
            let r = simulate_teco_dba(&cal, &spec, batch, n);
            let expect = ((spec.param_bytes() as f64) * dba_payload_fraction(n)).round() as u64;
            prop_assert_eq!(r.bytes_to_device, expect);
            prop_assert_eq!(r.bytes_to_host, cxl.bytes_to_host);
            prop_assert!(r.total <= prev_total, "dirty {n} not monotone");
            prev_total = r.total;
        }
    }

    /// Prefetching is never worse than the bulk baseline and never better
    /// than TECO-Reduction.
    #[test]
    fn prefetch_bracketing(spec in spec_strategy(), batch in 1u32..16) {
        let cal = Calibration::paper();
        let zero = simulate_step(&cal, &spec, batch, System::ZeroOffload);
        let pre = simulate_prefetch_step(&cal, &spec, batch);
        let red = simulate_step(&cal, &spec, batch, System::TecoReduction);
        prop_assert!(pre.total <= zero.total + SimTime::from_ms(1));
        prop_assert!(red.total <= pre.total + SimTime::from_ms(1));
    }

    /// Run totals equal the sum of their parts, and the DBA schedule's
    /// activation step partitions the run.
    #[test]
    fn run_additivity(
        spec in spec_strategy(),
        batch in 1u32..12,
        steps in 1u64..60,
        act in 0u64..60,
    ) {
        let cal = Calibration::paper();
        let sched = DbaSchedule { act_aft_steps: act, dirty_bytes: 2 };
        let run = simulate_run(&cal, &spec, batch, System::TecoReduction, steps, Some(sched));
        prop_assert_eq!(run.step_times.len() as u64, steps);
        let sum: SimTime = run.step_times.iter().copied().sum();
        prop_assert_eq!(sum, run.total);
        let cxl = simulate_step(&cal, &spec, batch, System::TecoCxl).total;
        let red = simulate_step(&cal, &spec, batch, System::TecoReduction).total;
        let n_cxl = act.min(steps);
        prop_assert_eq!(run.total, cxl * n_cxl + red * (steps - n_cxl));
    }

    /// Exposed communication never exceeds the pure wire time of all bytes.
    #[test]
    fn exposure_bounded_by_wire_time(spec in spec_strategy(), batch in 1u32..16) {
        let cal = Calibration::paper();
        for sys in [System::ZeroOffload, System::TecoCxl, System::TecoReduction] {
            let r = simulate_step(&cal, &spec, batch, sys);
            let slowest = cal.cxl_bw();
            let wire = slowest.transfer_time(r.bytes_to_device + r.bytes_to_host);
            prop_assert!(
                r.breakdown.comm_exposed() <= wire + SimTime::from_ms(1),
                "{}: exposed {} > wire {}",
                sys.name(),
                r.breakdown.comm_exposed(),
                wire
            );
        }
    }
}
