//! Golden-file tests for this crate's markdown renderers.
//!
//! Each renderer's output is diffed byte-for-byte against a fixture under
//! `tests/golden/`. The renderers promise a fixed shape (every counter
//! always present, fixed column sets) precisely so reports diff cleanly;
//! these tests pin that promise. Regenerate with
//! `TECO_BLESS=1 cargo test -p teco-offload --test report_golden` and
//! review the fixture diff.

use std::path::PathBuf;

use teco_cxl::FaultStats;
use teco_offload::{fault_report_md, scaling_report_md, timing_report, Calibration, ScalingPoint};
use teco_testsupport::golden::assert_golden;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

#[test]
fn timing_report_matches_fixture() {
    assert_golden(fixture("timing_report.md"), &timing_report(&Calibration::paper()));
}

#[test]
fn fault_report_clean_matches_fixture() {
    assert_golden(fixture("fault_report_clean.md"), &fault_report_md(&FaultStats::default(), &[]));
}

#[test]
fn fault_report_dirty_matches_fixture() {
    let stats = FaultStats {
        crc_errors: 12,
        retries: 17,
        replay_exhausted: 1,
        stalls: 4,
        stall_ns: 400,
        replay_ns: 2_310,
        poisoned_lines: 3,
        quarantined_lines: 3,
        checksum_mismatches: 9,
        full_line_retries: 9,
        degraded_regions: 1,
        fence_timeouts: 0,
    };
    let degraded = vec!["params".to_string(), "activations".to_string()];
    assert_golden(fixture("fault_report_dirty.md"), &fault_report_md(&stats, &degraded));
}

#[test]
fn scaling_report_matches_fixture() {
    let points = vec![
        ScalingPoint {
            devices: 1,
            batch: 8,
            cluster_time_ns: 4_800_000,
            speedup_vs_one: 1.0,
            efficiency_pct: 100.0,
            host_wait_ns: 0,
            host_drained_ns: 1_400_000,
            fanout_saved_bytes: 0,
        },
        ScalingPoint {
            devices: 4,
            batch: 8,
            cluster_time_ns: 6_000_000,
            speedup_vs_one: 3.2,
            efficiency_pct: 80.0,
            host_wait_ns: 250_000,
            host_drained_ns: 5_600_000,
            fanout_saved_bytes: 3_000_000,
        },
    ];
    assert_golden(fixture("scaling_report.md"), &scaling_report_md(&points));
}

#[test]
fn scaling_report_empty_matches_fixture() {
    assert_golden(fixture("scaling_report_empty.md"), &scaling_report_md(&[]));
}
