//! IEEE-754 binary16 (FP16) conversion, implemented from scratch.
//!
//! Mixed-precision training (§V, "About mixed-precision training") keeps
//! FP32 master parameters on CPU and converts to FP16 **on the GPU** after
//! the transfer — so the CPU→GPU traffic stays FP32 and DBA still applies.
//! These conversions implement that GPU-side cast, with round-to-nearest-
//! even, subnormal, infinity and NaN handling.

/// Convert an `f32` to its binary16 bit pattern (round-to-nearest-even).
pub fn f32_to_f16_bits(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xFF) as i32;
    let mant = bits & 0x007F_FFFF;

    if exp == 0xFF {
        // Inf / NaN. Preserve NaN-ness with a quiet mantissa bit.
        return if mant == 0 { sign | 0x7C00 } else { sign | 0x7E00 };
    }

    // Unbiased exponent, rebiasing from 127 to 15.
    let e = exp - 127 + 15;
    if e >= 0x1F {
        // Overflow → infinity.
        return sign | 0x7C00;
    }
    if e <= 0 {
        // Subnormal (or underflow to zero).
        if e < -10 {
            return sign; // too small: ±0
        }
        // Implicit leading 1 becomes explicit; shift right by (1 − e).
        let m = mant | 0x0080_0000;
        let shift = (14 - e) as u32;
        let half = m >> shift;
        // Round to nearest even.
        let rem = m & ((1u32 << shift) - 1);
        let halfway = 1u32 << (shift - 1);
        let rounded =
            if rem > halfway || (rem == halfway && half & 1 == 1) { half + 1 } else { half };
        return sign | rounded as u16;
    }

    // Normal number: keep top 10 mantissa bits with RNE.
    let half_mant = (mant >> 13) as u16;
    let rem = mant & 0x1FFF;
    let mut out = sign | ((e as u16) << 10) | half_mant;
    if rem > 0x1000 || (rem == 0x1000 && half_mant & 1 == 1) {
        out = out.wrapping_add(1); // may carry into exponent — that's correct
    }
    out
}

/// Convert a binary16 bit pattern to `f32` (exact).
pub fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1F) as u32;
    let mant = (h & 0x3FF) as u32;
    if exp == 0x1F {
        return f32::from_bits(sign | 0x7F80_0000 | (mant << 13)); // Inf / NaN
    }
    // Finite values are exact in f32; compute them arithmetically.
    // Subnormal: mant · 2⁻²⁴. Normal: (1024 + mant) · 2^(exp − 25).
    let mag = if exp == 0 {
        mant as f32 * 2f32.powi(-24)
    } else {
        (1024 + mant) as f32 * 2f32.powi(exp as i32 - 25)
    };
    if sign != 0 {
        -mag
    } else {
        mag
    }
}

/// Round-trip an f32 through FP16 (the precision the GPU compute sees).
pub fn through_f16(x: f32) -> f32 {
    f16_bits_to_f32(f32_to_f16_bits(x))
}

/// Cast a slice through FP16 in place (the GPU-side conversion kernel).
pub fn cast_slice_through_f16(xs: &mut [f32]) {
    for x in xs {
        *x = through_f16(*x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_small_integers() {
        for i in -64i32..=64 {
            let x = i as f32;
            assert_eq!(through_f16(x), x, "{x}");
        }
    }

    #[test]
    fn known_bit_patterns() {
        assert_eq!(f32_to_f16_bits(0.0), 0x0000);
        assert_eq!(f32_to_f16_bits(-0.0), 0x8000);
        assert_eq!(f32_to_f16_bits(1.0), 0x3C00);
        assert_eq!(f32_to_f16_bits(-2.0), 0xC000);
        assert_eq!(f32_to_f16_bits(65504.0), 0x7BFF); // f16::MAX
        assert_eq!(f32_to_f16_bits(0.5), 0x3800);
    }

    #[test]
    fn overflow_to_infinity() {
        assert_eq!(f32_to_f16_bits(1e6), 0x7C00);
        assert_eq!(f32_to_f16_bits(-1e6), 0xFC00);
        assert_eq!(f16_bits_to_f32(0x7C00), f32::INFINITY);
        assert_eq!(f16_bits_to_f32(0xFC00), f32::NEG_INFINITY);
    }

    #[test]
    fn nan_preserved() {
        let h = f32_to_f16_bits(f32::NAN);
        assert!(f16_bits_to_f32(h).is_nan());
    }

    #[test]
    fn subnormals() {
        // Smallest positive f16 subnormal = 2^-24.
        let tiny = 2.0f32.powi(-24);
        assert_eq!(f32_to_f16_bits(tiny), 0x0001);
        assert_eq!(f16_bits_to_f32(0x0001), tiny);
        // Below half of that → 0.
        assert_eq!(f32_to_f16_bits(2.0f32.powi(-26)), 0x0000);
        // Largest subnormal.
        let big_sub = f16_bits_to_f32(0x03FF);
        assert!(big_sub < 2.0f32.powi(-14));
        assert_eq!(f32_to_f16_bits(big_sub), 0x03FF);
    }

    #[test]
    fn round_to_nearest_even() {
        // 1 + 2^-11 is exactly halfway between 1.0 and the next f16 → rounds
        // to even (1.0).
        let x = 1.0 + 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(x), 0x3C00);
        // 1 + 3·2^-11 is halfway between 0x3C01 and 0x3C02 → rounds to even
        // (0x3C02).
        let y = 1.0 + 3.0 * 2.0f32.powi(-11);
        assert_eq!(f32_to_f16_bits(y), 0x3C02);
    }

    #[test]
    fn roundtrip_error_bounded() {
        // Relative error of f32→f16→f32 is ≤ 2^-11 for normal numbers.
        let mut x = 1.000001f32;
        for _ in 0..2000 {
            let y = through_f16(x);
            let rel = ((y - x) / x).abs();
            assert!(rel <= 2.0f32.powi(-11) + 1e-7, "x={x} y={y} rel={rel}");
            x *= 1.01;
            if x > 60000.0 {
                break;
            }
        }
    }

    #[test]
    fn all_f16_values_roundtrip_exactly() {
        // f16 → f32 → f16 must be the identity for every finite pattern.
        for h in 0u16..=0xFFFF {
            let exp = (h >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // Inf/NaN handled separately
            }
            let back = f32_to_f16_bits(f16_bits_to_f32(h));
            assert_eq!(back, h, "pattern {h:#06x}");
        }
    }

    #[test]
    fn cast_slice() {
        let mut xs = vec![0.1f32, 1.5, -3.25, 100.0];
        cast_slice_through_f16(&mut xs);
        assert_eq!(xs[1], 1.5);
        assert_eq!(xs[2], -3.25);
        assert!((xs[0] - 0.1).abs() < 1e-4);
    }
}
