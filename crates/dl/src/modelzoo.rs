//! The model zoo of Table III (plus the Table VI GPT-2 scale sweep):
//! parameter counts, shapes, giant-cache sizes, and the FLOP/byte
//! quantities the timing models consume.

use serde::{Deserialize, Serialize};

/// Architecture family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ModelKind {
    /// Decoder-only transformer (GPT-2).
    TransformerDecoder,
    /// Encoder-only transformer (BERT, ALBERT).
    TransformerEncoder,
    /// Encoder-decoder transformer (T5).
    TransformerEncDec,
    /// Graph neural network (GCNII).
    Gnn,
}

/// One evaluated model configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelSpec {
    /// Display name.
    pub name: &'static str,
    /// Family.
    pub kind: ModelKind,
    /// Total parameters.
    pub params: u64,
    /// Transformer layers (or GCN depth).
    pub layers: u32,
    /// Hidden size.
    pub hidden: u32,
    /// Attention heads (0 for GNN).
    pub heads: u32,
    /// Giant-cache size from Table III, in MB.
    pub giant_cache_mb: u64,
    /// Typical fine-tuning sequence length (tokens per sample).
    pub seq_len: u32,
    /// Relative attention-compute weight: ALBERT has 4× more heads, making
    /// forward/backward a larger share of step time (§VIII-B observation 2).
    pub attention_intensity: f64,
    /// GPU activation memory per processed token (bytes) — drives the
    /// out-of-memory model (§VIII-B: T5-large OOMs at batch 16). ALBERT's
    /// cross-layer parameter sharing and GPT2-11B's activation
    /// checkpointing give them smaller per-token footprints.
    pub act_bytes_per_token: u64,
}

impl ModelSpec {
    /// Parameter bytes in FP32.
    pub fn param_bytes(&self) -> u64 {
        self.params * 4
    }
    /// Gradient bytes in FP32 (same count as parameters).
    pub fn grad_bytes(&self) -> u64 {
        self.params * 4
    }
    /// ADAM optimizer-state bytes on CPU (moments m+v in FP32).
    pub fn optimizer_state_bytes(&self) -> u64 {
        self.params * 8
    }
    /// Giant-cache size in bytes.
    pub fn giant_cache_bytes(&self) -> u64 {
        self.giant_cache_mb << 20
    }
    /// Parameter bytes per transformer layer (uniform split — transformer
    /// blocks are homogeneous).
    pub fn per_layer_param_bytes(&self) -> u64 {
        self.param_bytes() / self.layers as u64
    }
    /// Tokens processed per step at a given batch size.
    pub fn tokens_per_step(&self, batch: u32) -> u64 {
        batch as u64 * self.seq_len as u64
    }
    /// Training FLOPs per step: the standard `6 · params · tokens`
    /// estimate (2 for forward, 4 for backward), scaled by the model's
    /// attention intensity.
    pub fn flops_per_step(&self, batch: u32) -> f64 {
        6.0 * self.params as f64 * self.tokens_per_step(batch) as f64 * self.attention_intensity
    }

    // ---- Table III ----

    /// GPT-2 (122M): 12 layers, hidden 1024, 12 heads; Wikitext LM.
    pub fn gpt2() -> Self {
        ModelSpec {
            name: "GPT-2",
            kind: ModelKind::TransformerDecoder,
            params: 122_000_000,
            layers: 12,
            hidden: 1024,
            heads: 12,
            giant_cache_mb: 324,
            seq_len: 128,
            attention_intensity: 1.0,
            act_bytes_per_token: 3_700_000,
        }
    }

    /// ALBERT-xxlarge-v1 (223M): 12 layers, hidden 4096, 48 heads; SQuAD-v2.
    pub fn albert_xxlarge() -> Self {
        ModelSpec {
            name: "Albert-xxlarge-v1",
            kind: ModelKind::TransformerEncoder,
            params: 223_000_000,
            layers: 12,
            hidden: 4096,
            heads: 48,
            giant_cache_mb: 547,
            seq_len: 384,
            // 4× more attention heads than the others (§VIII-B): compute
            // takes a larger share, leaving less room for TECO to win.
            attention_intensity: 2.4,
            act_bytes_per_token: 4_500_000,
        }
    }

    /// BERT-large-cased (334M): 24 layers, hidden 1024, 12 heads; IMDB.
    pub fn bert_large() -> Self {
        ModelSpec {
            name: "Bert-large-cased",
            kind: ModelKind::TransformerEncoder,
            params: 334_000_000,
            layers: 24,
            hidden: 1024,
            heads: 12,
            giant_cache_mb: 817,
            seq_len: 128,
            attention_intensity: 1.0,
            act_bytes_per_token: 7_400_000,
        }
    }

    /// T5-large (737M): 48 layers, hidden 1024, 12 heads; Wiki-summary.
    pub fn t5_large() -> Self {
        ModelSpec {
            name: "T5-large",
            kind: ModelKind::TransformerEncDec,
            params: 737_000_000,
            layers: 48,
            hidden: 1024,
            heads: 12,
            giant_cache_mb: 2069,
            seq_len: 128,
            attention_intensity: 0.95,
            act_bytes_per_token: 16_500_000,
        }
    }

    /// GCNII (156M): 64 layers, hidden 1560; Wisconsin link prediction.
    pub fn gcnii() -> Self {
        ModelSpec {
            name: "GCNII",
            kind: ModelKind::Gnn,
            params: 156_000_000,
            layers: 64,
            hidden: 1560,
            heads: 0,
            giant_cache_mb: 400,
            seq_len: 1, // full-graph training: batch size fixed
            attention_intensity: 0.8,
            act_bytes_per_token: 100_000,
        }
    }

    // ---- Table VI scale sweep ----

    /// GPT-2 Medium (356M).
    pub fn gpt2_medium() -> Self {
        ModelSpec {
            name: "GPT2-Medium",
            params: 356_000_000,
            layers: 24,
            giant_cache_mb: 950,
            act_bytes_per_token: 7_400_000,
            ..Self::gpt2()
        }
    }
    /// GPT-2 Large (778M).
    pub fn gpt2_large() -> Self {
        ModelSpec {
            name: "GPT2-Large",
            params: 778_000_000,
            layers: 36,
            hidden: 1280,
            giant_cache_mb: 2075,
            act_bytes_per_token: 13_800_000,
            ..Self::gpt2()
        }
    }
    /// The paper's 11-billion-parameter GPT-2 configuration.
    pub fn gpt2_11b() -> Self {
        ModelSpec {
            name: "GPT2-11B",
            params: 11_000_000_000,
            layers: 70,
            hidden: 3584,
            giant_cache_mb: 28_000,
            // At this scale compute dominates: the paper reports compute is
            // already 63.4 % of total time, shrinking TECO's win to 1.41×.
            attention_intensity: 1.35,
            // Activation checkpointing keeps the footprint trainable.
            act_bytes_per_token: 15_000_000,
            ..Self::gpt2()
        }
    }

    /// All Table III models, in the paper's order.
    pub fn table3() -> Vec<ModelSpec> {
        vec![
            Self::gpt2(),
            Self::albert_xxlarge(),
            Self::bert_large(),
            Self::t5_large(),
            Self::gcnii(),
        ]
    }

    /// The Table VI GPT-2 scale sweep.
    pub fn table6() -> Vec<ModelSpec> {
        vec![Self::gpt2(), Self::gpt2_medium(), Self::gpt2_large(), Self::gpt2_11b()]
    }

    /// Find a spec by name.
    pub fn by_name(name: &str) -> Option<ModelSpec> {
        Self::table3().into_iter().chain(Self::table6()).find(|m| m.name.eq_ignore_ascii_case(name))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_matches_paper() {
        let specs = ModelSpec::table3();
        assert_eq!(specs.len(), 5);
        let bert = &specs[2];
        assert_eq!(bert.params, 334_000_000);
        assert_eq!(bert.layers, 24);
        assert_eq!(bert.hidden, 1024);
        assert_eq!(bert.giant_cache_mb, 817);
        let t5 = &specs[3];
        assert_eq!(t5.params, 737_000_000);
        assert_eq!(t5.giant_cache_mb, 2069);
    }

    #[test]
    fn byte_arithmetic() {
        let gpt2 = ModelSpec::gpt2();
        assert_eq!(gpt2.param_bytes(), 488_000_000);
        assert_eq!(gpt2.optimizer_state_bytes(), 976_000_000);
        assert_eq!(
            gpt2.per_layer_param_bytes() * gpt2.layers as u64,
            gpt2.param_bytes() - gpt2.param_bytes() % gpt2.layers as u64
        );
    }

    #[test]
    fn flops_scale_with_batch_and_params() {
        let gpt2 = ModelSpec::gpt2();
        assert!((gpt2.flops_per_step(8) / gpt2.flops_per_step(4) - 2.0).abs() < 1e-9);
        let b = ModelSpec::bert_large();
        assert!(b.flops_per_step(4) > gpt2.flops_per_step(4));
    }

    #[test]
    fn albert_is_compute_heavy() {
        // §VIII-B: Albert's 4× attention heads → larger compute share.
        let albert = ModelSpec::albert_xxlarge();
        let bert = ModelSpec::bert_large();
        // Per-parameter compute intensity must exceed Bert's.
        let ai = albert.flops_per_step(4) / albert.params as f64;
        let bi = bert.flops_per_step(4) / bert.params as f64;
        assert!(ai > bi);
    }

    #[test]
    fn table6_is_monotone_in_params() {
        let sweep = ModelSpec::table6();
        for w in sweep.windows(2) {
            assert!(w[0].params < w[1].params);
        }
        assert_eq!(sweep[3].params, 11_000_000_000);
    }

    #[test]
    fn by_name_lookup() {
        assert_eq!(ModelSpec::by_name("t5-large").unwrap().params, 737_000_000);
        assert_eq!(ModelSpec::by_name("GPT2-11B").unwrap().layers, 70);
        assert!(ModelSpec::by_name("nope").is_none());
    }
}
