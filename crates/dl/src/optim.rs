//! Optimizers, structured the way ZeRO-Offload splits them: the optimizer
//! lives on the **CPU** and owns the FP32 *master* weights plus ADAM
//! moments; the model's `Param::value` buffers are the **GPU working copy**
//! that forward/backward reads. Each `step` therefore has an explicit
//! *writeback* — the parameter transfer from CPU to GPU — which the TECO
//! convergence experiments intercept to apply the DBA merge (only the low
//! `dirty_bytes` of each FP32 word actually travel; high bytes stay stale
//! on the GPU).

use crate::layers::param::Visitable;
use std::collections::HashMap;

/// ADAM hyperparameters (+ global-norm gradient clipping, which
/// ZeRO-Offload applies on CPU before the optimizer — Fig. 1 phase 4).
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Global-norm clip threshold (None = no clipping).
    pub clip_norm: Option<f32>,
    /// Decoupled weight decay (AdamW); 0 disables it.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(1.0),
            weight_decay: 0.0,
        }
    }
}

/// Per-parameter CPU-side state.
#[derive(Debug, Clone)]
struct ParamState {
    /// FP32 master weights (the CPU's exact copy).
    master: Vec<f32>,
    /// First moment.
    m: Vec<f32>,
    /// Second moment.
    v: Vec<f32>,
}

/// The CPU-resident ADAM optimizer with explicit GPU writeback.
#[derive(Debug, Clone)]
pub struct OffloadedAdam {
    cfg: AdamConfig,
    t: u64,
    states: HashMap<String, ParamState>,
    /// Bytes that would cross the interconnect per step (params × 4) — used
    /// by callers for volume accounting.
    last_writeback_bytes: u64,
}

/// The writeback transform: given a parameter name, the *stale GPU* word
/// bits and the *new master* word bits, produce the bits the GPU copy ends
/// up holding. Identity (`|_, _, new| new`) is a full-precision transfer;
/// the DBA coupling keeps the high bytes of `old`.
pub type Writeback<'a> = dyn FnMut(&str, u32, u32) -> u32 + 'a;

impl OffloadedAdam {
    /// New optimizer.
    pub fn new(cfg: AdamConfig) -> Self {
        OffloadedAdam { cfg, t: 0, states: HashMap::new(), last_writeback_bytes: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }
    /// Set the learning rate (for schedules/decay).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
    /// Bytes written back to the GPU copy on the last step.
    pub fn last_writeback_bytes(&self) -> u64 {
        self.last_writeback_bytes
    }

    /// One optimizer step with a full-precision writeback.
    pub fn step(&mut self, model: &mut dyn Visitable) {
        self.step_with_writeback(model, &mut |_, _, new| new);
    }

    /// One optimizer step with a custom writeback transform (the TECO DBA
    /// hook). Gradient clipping (if configured) scales all gradients by
    /// `clip/max(norm, clip)` first, exactly once, before any update.
    pub fn step_with_writeback(&mut self, model: &mut dyn Visitable, writeback: &mut Writeback) {
        self.t += 1;
        let t = self.t;
        let cfg = self.cfg;

        // Phase 4 (CPU): gradient clipping by global norm.
        let scale = match cfg.clip_norm {
            Some(clip) => {
                let norm = model.grad_l2_norm();
                if norm > clip {
                    clip / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        let mut bytes = 0u64;

        let states = &mut self.states;
        model.visit_params(&mut |p| {
            let st = states.entry(p.name.clone()).or_insert_with(|| ParamState {
                // First sighting: the master copy starts equal to the GPU
                // working copy (both initialized from the checkpoint).
                master: p.value.clone(),
                m: vec![0.0; p.value.len()],
                v: vec![0.0; p.value.len()],
            });
            assert_eq!(st.master.len(), p.value.len(), "param {} resized", p.name);
            for i in 0..p.value.len() {
                let g = p.grad[i] * scale;
                st.m[i] = cfg.beta1 * st.m[i] + (1.0 - cfg.beta1) * g;
                st.v[i] = cfg.beta2 * st.v[i] + (1.0 - cfg.beta2) * g * g;
                let mhat = st.m[i] / bc1;
                let vhat = st.v[i] / bc2;
                // Decoupled weight decay (AdamW), then the ADAM update.
                st.master[i] -= cfg.lr * cfg.weight_decay * st.master[i];
                st.master[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
                // Parameter transfer CPU→GPU, through the writeback hook.
                let old_bits = p.value[i].to_bits();
                let new_bits = st.master[i].to_bits();
                p.value[i] = f32::from_bits(writeback(&p.name, old_bits, new_bits));
            }
            bytes += p.value.len() as u64 * 4;
        });
        self.last_writeback_bytes = bytes;
    }

    /// The CPU master copy of a parameter (for profiling/tests).
    pub fn master(&self, name: &str) -> Option<&[f32]> {
        self.states.get(name).map(|s| s.master.as_slice())
    }
}

/// Plain SGD (used by the GCNII workload and a few tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
    /// One step: `w -= lr · g`.
    pub fn step(&self, model: &mut dyn Visitable) {
        let lr = self.lr;
        model.visit_params(&mut |p| {
            for (v, g) in p.value.iter_mut().zip(&p.grad) {
                *v -= lr * g;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::param::Param;

    struct One(Param);
    impl Visitable for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }
    }

    fn quadratic_grad(p: &Param) -> Vec<f32> {
        // L = ½‖w − 3‖²  →  g = w − 3.
        p.value.iter().map(|w| w - 3.0).collect()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut m = One(Param::zeros("w", 4));
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.1, clip_norm: None, ..Default::default() });
        for _ in 0..300 {
            m.0.grad = quadratic_grad(&m.0);
            opt.step(&mut m);
        }
        for &w in &m.0.value {
            assert!((w - 3.0).abs() < 1e-2, "w={w}");
        }
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut m = One(Param::zeros("w", 4));
        let opt = Sgd::new(0.3);
        for _ in 0..100 {
            m.0.grad = quadratic_grad(&m.0);
            opt.step(&mut m);
        }
        for &w in &m.0.value {
            assert!((w - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn clipping_bounds_effective_gradient() {
        let mut m = One(Param::zeros("w", 2));
        m.0.grad = vec![30.0, 40.0]; // norm 50
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 1.0, clip_norm: Some(5.0), ..Default::default() });
        // With clipping the first-step effective gradient is g·(5/50), so
        // m̂ direction magnitudes stay proportional — the first Adam step is
        // lr·g/|g| elementwise-ish; just verify the update is finite and
        // much smaller than without clipping.
        let mut unclipped = One(Param::zeros("w", 2));
        unclipped.0.grad = vec![30.0, 40.0];
        let mut opt2 =
            OffloadedAdam::new(AdamConfig { lr: 1.0, clip_norm: None, ..Default::default() });
        opt.step(&mut m);
        opt2.step(&mut unclipped);
        // ADAM normalizes per-element, so first-step sizes match; the
        // difference shows in the moments. Verify master state tracked.
        assert!(opt.master("w").is_some());
        assert!(m.0.value.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn writeback_hook_sees_old_and_new_bits() {
        let mut m = One(Param::zeros("w", 3));
        m.0.value = vec![1.0, 2.0, 3.0];
        m.0.grad = vec![1.0, 1.0, 1.0];
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.5, clip_norm: None, ..Default::default() });
        let mut seen = Vec::new();
        opt.step_with_writeback(&mut m, &mut |name, old, new| {
            seen.push((name.to_string(), old, new));
            new
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].1, 1.0f32.to_bits());
        assert!(seen.iter().all(|(n, _, _)| n == "w"));
        // GPU copy took the new master values.
        let master = opt.master("w").unwrap().to_vec();
        assert_eq!(m.0.value, master);
        assert_eq!(opt.last_writeback_bytes(), 12);
    }

    #[test]
    fn stale_writeback_diverges_gpu_from_master() {
        // A writeback that keeps the old bits entirely models a dropped
        // transfer: the GPU copy must stop tracking the master.
        let mut m = One(Param::zeros("w", 1));
        m.0.value = vec![1.0];
        m.0.grad = vec![1.0];
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.5, clip_norm: None, ..Default::default() });
        opt.step_with_writeback(&mut m, &mut |_, old, _| old);
        assert_eq!(m.0.value[0], 1.0, "GPU copy unchanged");
        assert!(opt.master("w").unwrap()[0] < 1.0, "master updated");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut m = One(Param::zeros("w", 2));
        m.0.value = vec![1.0, -1.0];
        m.0.grad = vec![0.0, 0.0];
        let mut opt = OffloadedAdam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            clip_norm: None,
            ..Default::default()
        });
        for _ in 0..10 {
            m.0.grad = vec![0.0, 0.0];
            opt.step(&mut m);
        }
        // Pure decay: w ← w·(1 − lr·wd)^10 = 0.99^10 ≈ 0.904.
        assert!((m.0.value[0] - 0.99f32.powi(10)).abs() < 1e-4, "{}", m.0.value[0]);
        assert!((m.0.value[1] + 0.99f32.powi(10)).abs() < 1e-4);
    }

    #[test]
    fn master_initialized_from_first_value() {
        let mut m = One(Param::zeros("w", 2));
        m.0.value = vec![7.0, -2.0];
        m.0.grad = vec![0.0, 0.0];
        let mut opt = OffloadedAdam::new(AdamConfig::default());
        opt.step(&mut m);
        // Zero grads → master unchanged → GPU copy unchanged.
        assert_eq!(m.0.value, vec![7.0, -2.0]);
        assert_eq!(opt.master("w").unwrap(), &[7.0, -2.0]);
    }
}
