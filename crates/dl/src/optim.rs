//! Optimizers, structured the way ZeRO-Offload splits them: the optimizer
//! lives on the **CPU** and owns the FP32 *master* weights plus ADAM
//! moments; the model's `Param::value` buffers are the **GPU working copy**
//! that forward/backward reads. Each `step` therefore has an explicit
//! *writeback* — the parameter transfer from CPU to GPU — which the TECO
//! convergence experiments intercept to apply the DBA merge (only the low
//! `dirty_bytes` of each FP32 word actually travel; high bytes stay stale
//! on the GPU).

use crate::layers::param::Visitable;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// ADAM hyperparameters (+ global-norm gradient clipping, which
/// ZeRO-Offload applies on CPU before the optimizer — Fig. 1 phase 4).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Denominator fuzz.
    pub eps: f32,
    /// Global-norm clip threshold (None = no clipping).
    pub clip_norm: Option<f32>,
    /// Decoupled weight decay (AdamW); 0 disables it.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            clip_norm: Some(1.0),
            weight_decay: 0.0,
        }
    }
}

/// Per-parameter CPU-side state.
#[derive(Debug, Clone)]
struct ParamState {
    /// FP32 master weights (the CPU's exact copy).
    master: Vec<f32>,
    /// First moment.
    m: Vec<f32>,
    /// Second moment.
    v: Vec<f32>,
}

/// The CPU-resident ADAM optimizer with explicit GPU writeback.
#[derive(Debug, Clone)]
pub struct OffloadedAdam {
    cfg: AdamConfig,
    t: u64,
    states: HashMap<String, ParamState>,
    /// Bytes that would cross the interconnect per step (params × 4) — used
    /// by callers for volume accounting.
    last_writeback_bytes: u64,
}

/// The writeback transform: given a parameter name, the *stale GPU* word
/// bits and the *new master* word bits, produce the bits the GPU copy ends
/// up holding. Identity (`|_, _, new| new`) is a full-precision transfer;
/// the DBA coupling keeps the high bytes of `old`.
pub type Writeback<'a> = dyn FnMut(&str, u32, u32) -> u32 + 'a;

impl OffloadedAdam {
    /// New optimizer.
    pub fn new(cfg: AdamConfig) -> Self {
        OffloadedAdam { cfg, t: 0, states: HashMap::new(), last_writeback_bytes: 0 }
    }

    /// The configuration.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }
    /// Set the learning rate (for schedules/decay).
    pub fn set_lr(&mut self, lr: f32) {
        self.cfg.lr = lr;
    }
    /// Steps taken.
    pub fn steps(&self) -> u64 {
        self.t
    }
    /// Bytes written back to the GPU copy on the last step.
    pub fn last_writeback_bytes(&self) -> u64 {
        self.last_writeback_bytes
    }

    /// One optimizer step with a full-precision writeback.
    pub fn step(&mut self, model: &mut dyn Visitable) {
        self.step_with_writeback(model, &mut |_, _, new| new);
    }

    /// One optimizer step with a custom writeback transform (the TECO DBA
    /// hook). Gradient clipping (if configured) scales all gradients by
    /// `clip/max(norm, clip)` first, exactly once, before any update.
    pub fn step_with_writeback(&mut self, model: &mut dyn Visitable, writeback: &mut Writeback) {
        self.t += 1;
        let t = self.t;
        let cfg = self.cfg;

        // Phase 4 (CPU): gradient clipping by global norm.
        let scale = match cfg.clip_norm {
            Some(clip) => {
                let norm = model.grad_l2_norm();
                if norm > clip {
                    clip / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };

        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        let mut bytes = 0u64;

        let states = &mut self.states;
        model.visit_params(&mut |p| {
            let st = states.entry(p.name.clone()).or_insert_with(|| ParamState {
                // First sighting: the master copy starts equal to the GPU
                // working copy (both initialized from the checkpoint).
                master: p.value.clone(),
                m: vec![0.0; p.value.len()],
                v: vec![0.0; p.value.len()],
            });
            assert_eq!(st.master.len(), p.value.len(), "param {} resized", p.name);
            for i in 0..p.value.len() {
                let g = p.grad[i] * scale;
                st.m[i] = cfg.beta1 * st.m[i] + (1.0 - cfg.beta1) * g;
                st.v[i] = cfg.beta2 * st.v[i] + (1.0 - cfg.beta2) * g * g;
                let mhat = st.m[i] / bc1;
                let vhat = st.v[i] / bc2;
                // Decoupled weight decay (AdamW), then the ADAM update.
                st.master[i] -= cfg.lr * cfg.weight_decay * st.master[i];
                st.master[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
                // Parameter transfer CPU→GPU, through the writeback hook.
                let old_bits = p.value[i].to_bits();
                let new_bits = st.master[i].to_bits();
                p.value[i] = f32::from_bits(writeback(&p.name, old_bits, new_bits));
            }
            bytes += p.value.len() as u64 * 4;
        });
        self.last_writeback_bytes = bytes;
    }

    /// The CPU master copy of a parameter (for profiling/tests).
    pub fn master(&self, name: &str) -> Option<&[f32]> {
        self.states.get(name).map(|s| s.master.as_slice())
    }

    /// Capture the full CPU-side optimizer state. Entries are sorted by
    /// parameter name so the serialized form is deterministic regardless of
    /// `HashMap` iteration order; buffers are captured as IEEE-754 bit
    /// patterns (see [`crate::layers::param::ParamSnapshot`] for why).
    pub fn snapshot(&self) -> AdamSnapshot {
        let mut states: Vec<AdamParamSnapshot> = self
            .states
            .iter()
            .map(|(name, st)| AdamParamSnapshot {
                name: name.clone(),
                master_bits: st.master.iter().map(|v| v.to_bits()).collect(),
                m_bits: st.m.iter().map(|v| v.to_bits()).collect(),
                v_bits: st.v.iter().map(|v| v.to_bits()).collect(),
            })
            .collect();
        states.sort_by(|a, b| a.name.cmp(&b.name));
        AdamSnapshot {
            cfg: self.cfg,
            t: self.t,
            states,
            last_writeback_bytes: self.last_writeback_bytes,
        }
    }

    /// Rebuild the optimizer from a captured state.
    pub fn restore(s: &AdamSnapshot) -> Self {
        let states = s
            .states
            .iter()
            .map(|ps| {
                assert_eq!(ps.master_bits.len(), ps.m_bits.len(), "param {} skewed", ps.name);
                assert_eq!(ps.master_bits.len(), ps.v_bits.len(), "param {} skewed", ps.name);
                let bits_to_f32 =
                    |bits: &[u32]| bits.iter().map(|&b| f32::from_bits(b)).collect::<Vec<f32>>();
                (
                    ps.name.clone(),
                    ParamState {
                        master: bits_to_f32(&ps.master_bits),
                        m: bits_to_f32(&ps.m_bits),
                        v: bits_to_f32(&ps.v_bits),
                    },
                )
            })
            .collect();
        OffloadedAdam { cfg: s.cfg, t: s.t, states, last_writeback_bytes: s.last_writeback_bytes }
    }
}

/// One parameter's CPU-side optimizer state, bit-exact.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdamParamSnapshot {
    /// Parameter name (the optimizer's state-map key).
    pub name: String,
    /// FP32 master weights as IEEE-754 bit patterns.
    pub master_bits: Vec<u32>,
    /// First moment as bit patterns.
    pub m_bits: Vec<u32>,
    /// Second moment as bit patterns.
    pub v_bits: Vec<u32>,
}

/// Serialized form of [`OffloadedAdam`]: config, step counter, and every
/// parameter's master/moment buffers, sorted by name.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdamSnapshot {
    /// Hyperparameters (including any learning-rate schedule position).
    pub cfg: AdamConfig,
    /// Steps taken.
    pub t: u64,
    /// Per-parameter state, sorted by `name`.
    pub states: Vec<AdamParamSnapshot>,
    /// Volume accounting carried across the snapshot boundary.
    pub last_writeback_bytes: u64,
}

/// Plain SGD (used by the GCNII workload and a few tests).
#[derive(Debug, Clone)]
pub struct Sgd {
    /// Learning rate.
    pub lr: f32,
}

impl Sgd {
    /// New SGD optimizer.
    pub fn new(lr: f32) -> Self {
        Sgd { lr }
    }
    /// One step: `w -= lr · g`.
    pub fn step(&self, model: &mut dyn Visitable) {
        let lr = self.lr;
        model.visit_params(&mut |p| {
            for (v, g) in p.value.iter_mut().zip(&p.grad) {
                *v -= lr * g;
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::param::Param;

    struct One(Param);
    impl Visitable for One {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
        }
    }

    fn quadratic_grad(p: &Param) -> Vec<f32> {
        // L = ½‖w − 3‖²  →  g = w − 3.
        p.value.iter().map(|w| w - 3.0).collect()
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let mut m = One(Param::zeros("w", 4));
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.1, clip_norm: None, ..Default::default() });
        for _ in 0..300 {
            m.0.grad = quadratic_grad(&m.0);
            opt.step(&mut m);
        }
        for &w in &m.0.value {
            assert!((w - 3.0).abs() < 1e-2, "w={w}");
        }
        assert_eq!(opt.steps(), 300);
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let mut m = One(Param::zeros("w", 4));
        let opt = Sgd::new(0.3);
        for _ in 0..100 {
            m.0.grad = quadratic_grad(&m.0);
            opt.step(&mut m);
        }
        for &w in &m.0.value {
            assert!((w - 3.0).abs() < 1e-3);
        }
    }

    #[test]
    fn clipping_bounds_effective_gradient() {
        let mut m = One(Param::zeros("w", 2));
        m.0.grad = vec![30.0, 40.0]; // norm 50
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 1.0, clip_norm: Some(5.0), ..Default::default() });
        // With clipping the first-step effective gradient is g·(5/50), so
        // m̂ direction magnitudes stay proportional — the first Adam step is
        // lr·g/|g| elementwise-ish; just verify the update is finite and
        // much smaller than without clipping.
        let mut unclipped = One(Param::zeros("w", 2));
        unclipped.0.grad = vec![30.0, 40.0];
        let mut opt2 =
            OffloadedAdam::new(AdamConfig { lr: 1.0, clip_norm: None, ..Default::default() });
        opt.step(&mut m);
        opt2.step(&mut unclipped);
        // ADAM normalizes per-element, so first-step sizes match; the
        // difference shows in the moments. Verify master state tracked.
        assert!(opt.master("w").is_some());
        assert!(m.0.value.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn writeback_hook_sees_old_and_new_bits() {
        let mut m = One(Param::zeros("w", 3));
        m.0.value = vec![1.0, 2.0, 3.0];
        m.0.grad = vec![1.0, 1.0, 1.0];
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.5, clip_norm: None, ..Default::default() });
        let mut seen = Vec::new();
        opt.step_with_writeback(&mut m, &mut |name, old, new| {
            seen.push((name.to_string(), old, new));
            new
        });
        assert_eq!(seen.len(), 3);
        assert_eq!(seen[0].1, 1.0f32.to_bits());
        assert!(seen.iter().all(|(n, _, _)| n == "w"));
        // GPU copy took the new master values.
        let master = opt.master("w").unwrap().to_vec();
        assert_eq!(m.0.value, master);
        assert_eq!(opt.last_writeback_bytes(), 12);
    }

    #[test]
    fn stale_writeback_diverges_gpu_from_master() {
        // A writeback that keeps the old bits entirely models a dropped
        // transfer: the GPU copy must stop tracking the master.
        let mut m = One(Param::zeros("w", 1));
        m.0.value = vec![1.0];
        m.0.grad = vec![1.0];
        let mut opt =
            OffloadedAdam::new(AdamConfig { lr: 0.5, clip_norm: None, ..Default::default() });
        opt.step_with_writeback(&mut m, &mut |_, old, _| old);
        assert_eq!(m.0.value[0], 1.0, "GPU copy unchanged");
        assert!(opt.master("w").unwrap()[0] < 1.0, "master updated");
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut m = One(Param::zeros("w", 2));
        m.0.value = vec![1.0, -1.0];
        m.0.grad = vec![0.0, 0.0];
        let mut opt = OffloadedAdam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.1,
            clip_norm: None,
            ..Default::default()
        });
        for _ in 0..10 {
            m.0.grad = vec![0.0, 0.0];
            opt.step(&mut m);
        }
        // Pure decay: w ← w·(1 − lr·wd)^10 = 0.99^10 ≈ 0.904.
        assert!((m.0.value[0] - 0.99f32.powi(10)).abs() < 1e-4, "{}", m.0.value[0]);
        assert!((m.0.value[1] + 0.99f32.powi(10)).abs() < 1e-4);
    }

    #[test]
    fn snapshot_restore_resumes_bit_identically() {
        // Two optimizers: one runs 20 steps straight; the other runs 10,
        // round-trips through serialized JSON, and runs 10 more. Every
        // master/moment/GPU bit must agree.
        let mut rng = teco_sim::SimRng::seed_from_u64(9);
        let mut m_a = One(Param::randn("w", 32, 0.5, &mut rng));
        let mut m_b = One(m_a.0.clone());
        let cfg = AdamConfig { lr: 0.05, weight_decay: 0.01, ..Default::default() };
        let mut opt_a = OffloadedAdam::new(cfg);
        let mut opt_b = OffloadedAdam::new(cfg);
        let drive = |m: &mut One, opt: &mut OffloadedAdam| {
            m.0.grad = quadratic_grad(&m.0);
            opt.step(m);
        };
        for _ in 0..10 {
            drive(&mut m_a, &mut opt_a);
            drive(&mut m_b, &mut opt_b);
        }
        // Serialize → drop → rebuild B from the wire form.
        let wire = serde_json::to_string(&opt_b.snapshot()).unwrap();
        drop(opt_b);
        let snap: AdamSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(snap, opt_a.snapshot(), "round-trip must be lossless");
        let mut opt_b = OffloadedAdam::restore(&snap);
        for _ in 0..10 {
            drive(&mut m_a, &mut opt_a);
            drive(&mut m_b, &mut opt_b);
        }
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<u32>>();
        assert_eq!(bits(&m_a.0.value), bits(&m_b.0.value));
        assert_eq!(bits(opt_a.master("w").unwrap()), bits(opt_b.master("w").unwrap()));
        assert_eq!(opt_a.steps(), opt_b.steps());
    }

    #[test]
    fn param_snapshot_roundtrips_awkward_floats() {
        use crate::layers::param::ParamSnapshot;
        let mut p = Param::zeros("odd", 4);
        p.value = vec![f32::NAN, -0.0, f32::MIN_POSITIVE / 2.0, 1.0e-42];
        p.grad = vec![f32::INFINITY, f32::NEG_INFINITY, 3.5, -0.0];
        let snap = ParamSnapshot::of(&p);
        let wire = serde_json::to_string(&snap).unwrap();
        let back: ParamSnapshot = serde_json::from_str(&wire).unwrap();
        assert_eq!(back, snap);
        let mut q = Param::zeros("odd", 4);
        back.apply_to(&mut q);
        assert_eq!(
            p.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            q.value.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn master_initialized_from_first_value() {
        let mut m = One(Param::zeros("w", 2));
        m.0.value = vec![7.0, -2.0];
        m.0.grad = vec![0.0, 0.0];
        let mut opt = OffloadedAdam::new(AdamConfig::default());
        opt.step(&mut m);
        // Zero grads → master unchanged → GPU copy unchanged.
        assert_eq!(m.0.value, vec![7.0, -2.0]);
        assert_eq!(opt.master("w").unwrap(), &[7.0, -2.0]);
    }
}
