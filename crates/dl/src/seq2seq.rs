//! Encoder-decoder (T5-style) models: cross-attention, decoder blocks, and
//! a small trainable seq2seq transformer. T5-large is one of the paper's
//! five workloads (Table III, Wiki-summary summarization); this module
//! provides the real encoder-decoder training dynamics for its convergence
//! proxy.

use crate::layers::{
    Act, Activation, CausalSelfAttention, Embedding, LayerNorm, Linear, Param, TransformerBlock,
    Visitable,
};
use crate::loss::softmax_cross_entropy;
use crate::ops::softmax_rows;
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// Cross-attention: queries from the decoder stream, keys/values from the
/// encoder memory. Single-head-per-group layout identical to
/// [`CausalSelfAttention`] but with separate Q and KV projections and no
/// causal mask (every decoder position may read all encoder positions).
#[derive(Debug, Clone)]
pub struct CrossAttention {
    /// Query projection `[D, D]`.
    pub wq: Linear,
    /// Fused key-value projection `[D, 2D]`.
    pub wkv: Linear,
    /// Output projection `[D, D]`.
    pub wo: Linear,
    dim: usize,
    heads: usize,
    cache: Option<XAttnCache>,
}

#[derive(Debug, Clone)]
struct XAttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    attn: Vec<Tensor>, // per head [Td, Te]
}

impl CrossAttention {
    /// New cross-attention of width `dim` with `heads` heads.
    pub fn new(name: &str, dim: usize, heads: usize, rng: &mut SimRng) -> Self {
        assert!(dim.is_multiple_of(heads));
        let std = 0.02;
        CrossAttention {
            wq: Linear::new(&format!("{name}.wq"), dim, dim, std, rng),
            wkv: Linear::new(&format!("{name}.wkv"), dim, 2 * dim, std, rng),
            wo: Linear::new(&format!("{name}.wo"), dim, dim, std, rng),
            dim,
            heads,
            cache: None,
        }
    }

    fn head(&self, x: &Tensor, h: usize) -> Tensor {
        let dh = self.dim / self.heads;
        let mut out = Tensor::zeros(&[x.rows(), dh]);
        for r in 0..x.rows() {
            out.row_mut(r).copy_from_slice(&x.row(r)[h * dh..(h + 1) * dh]);
        }
        out
    }
    fn unhead(&self, full: &mut Tensor, part: &Tensor, h: usize) {
        let dh = self.dim / self.heads;
        for r in 0..part.rows() {
            let dst = &mut full.row_mut(r)[h * dh..(h + 1) * dh];
            for (d, s) in dst.iter_mut().zip(part.row(r)) {
                *d += s;
            }
        }
    }

    /// Forward: decoder stream `x [Td, D]` attends to `memory [Te, D]`.
    pub fn forward(&mut self, x: &Tensor, memory: &Tensor) -> Tensor {
        let td = x.rows();
        let te = memory.rows();
        let d = self.dim;
        let q = self.wq.forward(x);
        let kv = self.wkv.forward(memory);
        let mut k = Tensor::zeros(&[te, d]);
        let mut v = Tensor::zeros(&[te, d]);
        for r in 0..te {
            k.row_mut(r).copy_from_slice(&kv.row(r)[0..d]);
            v.row_mut(r).copy_from_slice(&kv.row(r)[d..2 * d]);
        }
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = Tensor::zeros(&[td, d]);
        let mut attn_mats = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = self.head(&q, h);
            let kh = self.head(&k, h);
            let vh = self.head(&v, h);
            let mut s = Tensor::zeros(&[td, te]);
            for i in 0..td {
                for j in 0..te {
                    let dot: f32 = qh.row(i).iter().zip(kh.row(j)).map(|(a, b)| a * b).sum();
                    s.set(i, j, dot * scale);
                }
            }
            softmax_rows(&mut s);
            let mut ctx_h = Tensor::zeros(&[td, dh]);
            for i in 0..td {
                for j in 0..te {
                    let a = s.at(i, j);
                    for c in 0..dh {
                        ctx_h.data_mut()[i * dh + c] += a * vh.at(j, c);
                    }
                }
            }
            self.unhead(&mut ctx, &ctx_h, h);
            attn_mats.push(s);
        }
        self.cache = Some(XAttnCache { q, k, v, attn: attn_mats });
        self.wo.forward(&ctx)
    }

    /// Backward: returns `(dx, d_memory)`.
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let d_ctx = self.wo.backward(dy);
        let cache = self.cache.take().expect("backward before forward");
        let td = d_ctx.rows();
        let te = cache.k.rows();
        let d = self.dim;
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();

        let mut dq = Tensor::zeros(&[td, d]);
        let mut dk = Tensor::zeros(&[te, d]);
        let mut dv = Tensor::zeros(&[te, d]);
        for h in 0..self.heads {
            let qh = self.head(&cache.q, h);
            let kh = self.head(&cache.k, h);
            let vh = self.head(&cache.v, h);
            let a = &cache.attn[h];
            let d_ctx_h = self.head(&d_ctx, h);

            let mut dvh = Tensor::zeros(&[te, dh]);
            let mut da = Tensor::zeros(&[td, te]);
            for i in 0..td {
                for j in 0..te {
                    let aij = a.at(i, j);
                    let mut dot = 0f32;
                    for c in 0..dh {
                        let g = d_ctx_h.at(i, c);
                        dvh.data_mut()[j * dh + c] += aij * g;
                        dot += g * vh.at(j, c);
                    }
                    da.set(i, j, dot);
                }
            }
            let mut ds = Tensor::zeros(&[td, te]);
            for i in 0..td {
                let mut dot = 0f32;
                for j in 0..te {
                    dot += a.at(i, j) * da.at(i, j);
                }
                for j in 0..te {
                    ds.set(i, j, a.at(i, j) * (da.at(i, j) - dot));
                }
            }
            let mut dqh = Tensor::zeros(&[td, dh]);
            let mut dkh = Tensor::zeros(&[te, dh]);
            for i in 0..td {
                for j in 0..te {
                    let dsv = ds.at(i, j) * scale;
                    if dsv == 0.0 {
                        continue;
                    }
                    for c in 0..dh {
                        dqh.data_mut()[i * dh + c] += dsv * kh.at(j, c);
                        dkh.data_mut()[j * dh + c] += dsv * qh.at(i, c);
                    }
                }
            }
            self.unhead(&mut dq, &dqh, h);
            self.unhead(&mut dk, &dkh, h);
            self.unhead(&mut dv, &dvh, h);
        }
        let dx = self.wq.backward(&dq);
        let mut d_kv = Tensor::zeros(&[te, 2 * d]);
        for r in 0..te {
            d_kv.row_mut(r)[0..d].copy_from_slice(dk.row(r));
            d_kv.row_mut(r)[d..2 * d].copy_from_slice(dv.row(r));
        }
        let d_memory = self.wkv.backward(&d_kv);
        (dx, d_memory)
    }
}

impl Visitable for CrossAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wq.visit_params(f);
        self.wkv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// One decoder block: causal self-attention, cross-attention to the
/// encoder memory, and an MLP — each pre-normed with a residual.
#[derive(Debug, Clone)]
pub struct DecoderBlock {
    ln1: LayerNorm,
    self_attn: CausalSelfAttention,
    ln2: LayerNorm,
    cross: CrossAttention,
    ln3: LayerNorm,
    fc1: Linear,
    act: Activation,
    fc2: Linear,
}

impl DecoderBlock {
    /// New decoder block.
    pub fn new(name: &str, dim: usize, heads: usize, rng: &mut SimRng) -> Self {
        let std = 0.02;
        DecoderBlock {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            self_attn: CausalSelfAttention::new(&format!("{name}.self"), dim, heads, true, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            cross: CrossAttention::new(&format!("{name}.cross"), dim, heads, rng),
            ln3: LayerNorm::new(&format!("{name}.ln3"), dim),
            fc1: Linear::new(&format!("{name}.fc1"), dim, 4 * dim, std, rng),
            act: Activation::new(Act::Gelu),
            fc2: Linear::new(&format!("{name}.fc2"), 4 * dim, dim, std, rng),
        }
    }

    /// Forward over the decoder stream with the encoder memory.
    pub fn forward(&mut self, x: &Tensor, memory: &Tensor) -> Tensor {
        let mut y = x.clone();
        y.add_assign(&self.self_attn.forward(&self.ln1.forward(x)));
        let mut z = y.clone();
        z.add_assign(&self.cross.forward(&self.ln2.forward(&y), memory));
        let m = self.fc2.forward(&self.act.forward(&self.fc1.forward(&self.ln3.forward(&z))));
        let mut out = z;
        out.add_assign(&m);
        out
    }

    /// Backward; returns `(dx, d_memory)`.
    pub fn backward(&mut self, dy: &Tensor) -> (Tensor, Tensor) {
        let d_m = self.fc1.backward(&self.act.backward(&self.fc2.backward(dy)));
        let mut d_z = dy.clone();
        d_z.add_assign(&self.ln3.backward(&d_m));

        let (d_h2, d_memory) = self.cross.backward(&d_z);
        let mut d_y = d_z;
        d_y.add_assign(&self.ln2.backward(&d_h2));

        let d_h1 = self.self_attn.backward(&d_y);
        let mut d_x = d_y;
        d_x.add_assign(&self.ln1.backward(&d_h1));
        (d_x, d_memory)
    }
}

impl Visitable for DecoderBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.self_attn.visit_params(f);
        self.ln2.visit_params(f);
        self.cross.visit_params(f);
        self.ln3.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

/// Configuration for [`TinyT5`].
#[derive(Debug, Clone, Copy)]
pub struct TinyT5Config {
    /// Vocabulary (shared between encoder and decoder).
    pub vocab: usize,
    /// Width.
    pub dim: usize,
    /// Heads.
    pub heads: usize,
    /// Encoder blocks.
    pub enc_layers: usize,
    /// Decoder blocks.
    pub dec_layers: usize,
    /// Max sequence length.
    pub max_seq: usize,
}

impl Default for TinyT5Config {
    fn default() -> Self {
        TinyT5Config { vocab: 32, dim: 16, heads: 2, enc_layers: 1, dec_layers: 1, max_seq: 16 }
    }
}

/// A small encoder-decoder transformer (T5 shape).
#[derive(Debug, Clone)]
pub struct TinyT5 {
    cfg: TinyT5Config,
    enc_emb: Embedding,
    enc_pos: Embedding,
    enc_blocks: Vec<TransformerBlock>,
    dec_emb: Embedding,
    dec_pos: Embedding,
    dec_blocks: Vec<DecoderBlock>,
    ln_f: LayerNorm,
    head: Linear,
}

impl TinyT5 {
    /// Build the model.
    pub fn new(cfg: TinyT5Config, rng: &mut SimRng) -> Self {
        let std = 0.02;
        TinyT5 {
            enc_emb: Embedding::new("enc_emb", cfg.vocab, cfg.dim, std, rng),
            enc_pos: Embedding::new("enc_pos", cfg.max_seq, cfg.dim, std, rng),
            enc_blocks: (0..cfg.enc_layers)
                .map(|i| TransformerBlock::new(&format!("enc{i}"), cfg.dim, cfg.heads, false, rng))
                .collect(),
            dec_emb: Embedding::new("dec_emb", cfg.vocab, cfg.dim, std, rng),
            dec_pos: Embedding::new("dec_pos", cfg.max_seq, cfg.dim, std, rng),
            dec_blocks: (0..cfg.dec_layers)
                .map(|i| DecoderBlock::new(&format!("dec{i}"), cfg.dim, cfg.heads, rng))
                .collect(),
            ln_f: LayerNorm::new("t5.ln_f", cfg.dim),
            head: Linear::new("t5.head", cfg.dim, cfg.vocab, std, rng),
            cfg,
        }
    }

    /// Forward: encode `src`, decode `dec_input`, return logits `[Td, V]`.
    pub fn forward(&mut self, src: &[usize], dec_input: &[usize]) -> Tensor {
        assert!(src.len() <= self.cfg.max_seq && dec_input.len() <= self.cfg.max_seq);
        // Encoder.
        let mut m = self.enc_emb.forward(src);
        let pos: Vec<usize> = (0..src.len()).collect();
        m.add_assign(&self.enc_pos.forward(&pos));
        for b in &mut self.enc_blocks {
            m = b.forward(&m);
        }
        // Decoder.
        let mut x = self.dec_emb.forward(dec_input);
        let dpos: Vec<usize> = (0..dec_input.len()).collect();
        x.add_assign(&self.dec_pos.forward(&dpos));
        for b in &mut self.dec_blocks {
            x = b.forward(&x, &m);
        }
        self.head.forward(&self.ln_f.forward(&x))
    }

    /// Train on one (src, target) pair (teacher forcing: decoder input is
    /// `targets[..n-1]`, labels `targets[1..]`). Returns the loss.
    pub fn train_pair(&mut self, src: &[usize], targets: &[usize], grad_scale: f32) -> f32 {
        assert!(targets.len() >= 2);
        let dec_in = &targets[..targets.len() - 1];
        let labels = &targets[1..];
        let logits = self.forward(src, dec_in);
        let (loss, mut d_logits) = softmax_cross_entropy(&logits, labels);
        d_logits.scale(grad_scale);

        // Backward through head + decoder, accumulating memory grads.
        let dx = self.head.backward(&d_logits);
        let mut dx = self.ln_f.backward(&dx);
        let mut d_memory_total: Option<Tensor> = None;
        for b in self.dec_blocks.iter_mut().rev() {
            let (d_prev, d_mem) = b.backward(&dx);
            dx = d_prev;
            match &mut d_memory_total {
                Some(t) => t.add_assign(&d_mem),
                None => d_memory_total = Some(d_mem),
            }
        }
        self.dec_emb.backward(&dx);
        self.dec_pos.backward(&dx);

        // Backward through the encoder with the accumulated memory grad.
        let mut dm = d_memory_total.expect("at least one decoder block");
        for b in self.enc_blocks.iter_mut().rev() {
            dm = b.backward(&dm);
        }
        self.enc_emb.backward(&dm);
        self.enc_pos.backward(&dm);
        loss
    }

    /// Evaluate loss on a pair without touching gradients... except layer
    /// caches (grads are accumulated; callers should `zero_grads` after).
    pub fn eval_pair(&mut self, src: &[usize], targets: &[usize]) -> f32 {
        let dec_in = &targets[..targets.len() - 1];
        let labels = &targets[1..];
        let logits = self.forward(src, dec_in);
        softmax_cross_entropy(&logits, labels).0
    }
}

impl Visitable for TinyT5 {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.enc_emb.visit_params(f);
        self.enc_pos.visit_params(f);
        for b in &mut self.enc_blocks {
            b.visit_params(f);
        }
        self.dec_emb.visit_params(f);
        self.dec_pos.visit_params(f);
        for b in &mut self.dec_blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optim::{AdamConfig, OffloadedAdam};

    #[test]
    fn cross_attention_shapes() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut xa = CrossAttention::new("xa", 8, 2, &mut rng);
        let x = Tensor::from_vec(&[3, 8], (0..24).map(|i| (i as f32 * 0.1).sin()).collect());
        let m = Tensor::from_vec(&[5, 8], (0..40).map(|i| (i as f32 * 0.2).cos()).collect());
        let y = xa.forward(&x, &m);
        assert_eq!(y.shape(), &[3, 8]);
        let (dx, dm) = xa.backward(&Tensor::full(&[3, 8], 1.0));
        assert_eq!(dx.shape(), &[3, 8]);
        assert_eq!(dm.shape(), &[5, 8]);
    }

    #[test]
    fn cross_attention_gradcheck() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut xa = CrossAttention::new("xa", 6, 2, &mut rng);
        let x = Tensor::from_vec(&[2, 6], (0..12).map(|i| (i as f32 * 0.31).cos() * 0.4).collect());
        let m = Tensor::from_vec(&[3, 6], (0..18).map(|i| (i as f32 * 0.17).sin() * 0.4).collect());
        xa.zero_grads();
        xa.forward(&x, &m);
        let dy = Tensor::full(&[2, 6], 1.0);
        let (dx, dm) = xa.backward(&dy);
        let h = 1e-3f32;
        // dx check.
        for &idx in &[0usize, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let num = (xa.forward(&xp, &m).sum() - xa.forward(&xm, &m).sum()) / (2.0 * h);
            assert!((num - dx.data()[idx]).abs() < 3e-2, "dx[{idx}]: {} vs {num}", dx.data()[idx]);
        }
        // d_memory check.
        for &idx in &[0usize, 17] {
            let mut mp = m.clone();
            mp.data_mut()[idx] += h;
            let mut mm = m.clone();
            mm.data_mut()[idx] -= h;
            let num = (xa.forward(&x, &mp).sum() - xa.forward(&x, &mm).sum()) / (2.0 * h);
            assert!((num - dm.data()[idx]).abs() < 3e-2, "dm[{idx}]: {} vs {num}", dm.data()[idx]);
        }
    }

    #[test]
    fn decoder_block_roundtrip_shapes() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut b = DecoderBlock::new("d0", 8, 2, &mut rng);
        let x = Tensor::from_vec(&[4, 8], (0..32).map(|i| (i as f32 * 0.07).sin()).collect());
        let m = Tensor::from_vec(&[6, 8], (0..48).map(|i| (i as f32 * 0.11).cos()).collect());
        let y = b.forward(&x, &m);
        assert_eq!(y.shape(), &[4, 8]);
        let (dx, dm) = b.backward(&Tensor::full(&[4, 8], 0.5));
        assert_eq!(dx.shape(), &[4, 8]);
        assert_eq!(dm.shape(), &[6, 8]);
        assert!(b.param_count() > 0);
    }

    #[test]
    fn t5_overfits_a_copy_task() {
        // Seq2seq copy: target = src shifted; a tiny T5 must overfit one
        // fixed pair quickly.
        let mut rng = SimRng::seed_from_u64(11);
        let mut m = TinyT5::new(TinyT5Config::default(), &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 3e-3, ..Default::default() });
        let src = [5usize, 9, 2, 7, 1];
        let tgt = [0usize, 5, 9, 2, 7, 1]; // BOS + copy
        let first = m.eval_pair(&src, &tgt);
        m.zero_grads();
        for _ in 0..80 {
            m.zero_grads();
            m.train_pair(&src, &tgt, 1.0);
            opt.step(&mut m);
        }
        let last = m.eval_pair(&src, &tgt);
        assert!(last < first * 0.3, "loss {first} → {last}");
    }

    #[test]
    fn decoder_attends_to_encoder() {
        // Changing the source must change the decoder logits (cross-attn
        // actually wired).
        let mut rng = SimRng::seed_from_u64(13);
        let mut m = TinyT5::new(TinyT5Config::default(), &mut rng);
        let dec = [0usize, 1, 2];
        let a = m.forward(&[3, 4, 5], &dec);
        let b = m.forward(&[6, 7, 8], &dec);
        let diff: f32 = a.data().iter().zip(b.data()).map(|(x, y)| (x - y).abs()).sum();
        assert!(diff > 1e-3, "decoder ignored the source");
    }

    #[test]
    fn t5_training_is_deterministic() {
        let run = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut m = TinyT5::new(TinyT5Config::default(), &mut rng);
            m.zero_grads();
            m.train_pair(&[1, 2, 3], &[0, 1, 2, 3], 1.0)
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}
