//! A pre-norm transformer block: `x + Attn(LN(x))` then `x + MLP(LN(x))`.

use super::activation::{Act, Activation};
use super::attention::CausalSelfAttention;
use super::layernorm::LayerNorm;
use super::linear::Linear;
use super::param::{Param, Visitable};
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// One transformer block (GPT-2 style pre-norm).
#[derive(Debug, Clone)]
pub struct TransformerBlock {
    /// Pre-attention LayerNorm.
    pub ln1: LayerNorm,
    /// Self-attention.
    pub attn: CausalSelfAttention,
    /// Pre-MLP LayerNorm.
    pub ln2: LayerNorm,
    /// MLP up-projection `[D, 4D]`.
    pub fc1: Linear,
    /// MLP activation.
    pub act: Activation,
    /// MLP down-projection `[4D, D]`.
    pub fc2: Linear,
}

impl TransformerBlock {
    /// New block of width `dim` with `heads` attention heads and a 4×
    /// MLP expansion.
    pub fn new(name: &str, dim: usize, heads: usize, causal: bool, rng: &mut SimRng) -> Self {
        let std = 0.02;
        TransformerBlock {
            ln1: LayerNorm::new(&format!("{name}.ln1"), dim),
            attn: CausalSelfAttention::new(&format!("{name}.attn"), dim, heads, causal, rng),
            ln2: LayerNorm::new(&format!("{name}.ln2"), dim),
            fc1: Linear::new(&format!("{name}.fc1"), dim, 4 * dim, std, rng),
            act: Activation::new(Act::Gelu),
            fc2: Linear::new(&format!("{name}.fc2"), 4 * dim, dim, std, rng),
        }
    }

    /// Forward over one sequence `[T, D]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        // x + Attn(LN1(x))
        let h = self.ln1.forward(x);
        let a = self.attn.forward(&h);
        let mut y = x.clone();
        y.add_assign(&a);
        // y + MLP(LN2(y))
        let h2 = self.ln2.forward(&y);
        let m = self.fc2.forward(&self.act.forward(&self.fc1.forward(&h2)));
        let mut out = y;
        out.add_assign(&m);
        out
    }

    /// Backward; returns dx.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        // Through the MLP residual branch.
        let d_m = self.fc1.backward(&self.act.backward(&self.fc2.backward(dy)));
        let d_h2 = self.ln2.backward(&d_m);
        let mut d_y = dy.clone();
        d_y.add_assign(&d_h2);
        // Through the attention residual branch.
        let d_a = self.attn.backward(&d_y);
        let d_h1 = self.ln1.backward(&d_a);
        let mut d_x = d_y;
        d_x.add_assign(&d_h1);
        d_x
    }
}

impl Visitable for TransformerBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.ln1.visit_params(f);
        self.attn.visit_params(f);
        self.ln2.visit_params(f);
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_and_param_count() {
        let mut rng = SimRng::seed_from_u64(3);
        let d = 8;
        let mut b = TransformerBlock::new("b0", d, 2, true, &mut rng);
        let x = Tensor::from_vec(&[5, d], (0..40).map(|i| ((i as f32) * 0.11).sin()).collect());
        let y = b.forward(&x);
        assert_eq!(y.shape(), &[5, d]);
        // ln1: 2d; attn: d·3d+3d + d·d+d; ln2: 2d; fc1: d·4d+4d; fc2: 4d·d+d.
        let expect = 2 * d
            + (d * 3 * d + 3 * d)
            + (d * d + d)
            + 2 * d
            + (d * 4 * d + 4 * d)
            + (4 * d * d + d);
        assert_eq!(b.param_count(), expect);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SimRng::seed_from_u64(17);
        let d = 6;
        let t = 3;
        let mut b = TransformerBlock::new("b0", d, 2, true, &mut rng);
        let x = Tensor::from_vec(
            &[t, d],
            (0..t * d).map(|i| ((i as f32) * 0.29).cos() * 0.3).collect(),
        );
        b.zero_grads();
        b.forward(&x);
        let dy = Tensor::full(&[t, d], 1.0);
        let dx = b.backward(&dy);

        let h = 1e-3f32;
        for &idx in &[0usize, 8, t * d - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let num = (b.forward(&xp).sum() - b.forward(&xm).sum()) / (2.0 * h);
            let ana = dx.data()[idx];
            assert!((num - ana).abs() < 5e-2 * (1.0 + ana.abs()), "dx[{idx}]: {ana} vs {num}");
        }
    }

    #[test]
    fn residual_path_preserves_signal() {
        // With tiny weights the block is ≈ identity (residual dominates).
        let mut rng = SimRng::seed_from_u64(4);
        let mut b = TransformerBlock::new("b0", 8, 2, true, &mut rng);
        b.visit_params(&mut |p| {
            if !p.name.contains("gamma") {
                p.value.iter_mut().for_each(|v| *v *= 1e-3);
            }
        });
        let x = Tensor::from_vec(&[2, 8], (0..16).map(|i| i as f32 * 0.1).collect());
        let y = b.forward(&x);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 0.15, "{a} vs {b}");
        }
    }
}
