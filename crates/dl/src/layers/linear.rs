//! Fully-connected layer with explicit backward.

use super::param::{Param, Visitable};
use crate::ops::{add_bias, matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// `y = x·W + b`, `x: [n, in]`, `W: [in, out]`, `b: [out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix, flat `[in × out]`.
    pub w: Param,
    /// Bias vector `[out]`.
    pub b: Param,
    in_dim: usize,
    out_dim: usize,
    /// Cached input from the last forward, for backward.
    cache_x: Option<Tensor>,
}

impl Linear {
    /// New layer with N(0, std) weights and zero bias.
    pub fn new(name: &str, in_dim: usize, out_dim: usize, std: f32, rng: &mut SimRng) -> Self {
        Linear {
            w: Param::randn(format!("{name}.w"), in_dim * out_dim, std, rng),
            b: Param::zeros(format!("{name}.b"), out_dim),
            in_dim,
            out_dim,
            cache_x: None,
        }
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.in_dim
    }
    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.out_dim
    }

    fn w_tensor(&self) -> Tensor {
        Tensor::from_vec(&[self.in_dim, self.out_dim], self.w.value.clone())
    }

    /// Forward pass; caches `x` for backward.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.in_dim);
        let mut y = matmul(x, &self.w_tensor());
        add_bias(&mut y, &self.b.value);
        self.cache_x = Some(x.clone());
        y
    }

    /// Backward pass: accumulates `dW = xᵀ·dy`, `db = Σ dy`, returns
    /// `dx = dy·Wᵀ`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        assert_eq!(dy.cols(), self.out_dim);
        assert_eq!(dy.rows(), x.rows());

        let dw = matmul_tn(x, dy); // [in, out]
        for (g, d) in self.w.grad.iter_mut().zip(dw.data()) {
            *g += d;
        }
        for r in 0..dy.rows() {
            for (g, d) in self.b.grad.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
        let w = self.w_tensor();
        matmul_nt(dy, &w) // [n, in]
    }
}

impl Visitable for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
        f(&mut self.b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finite_diff_check(layer: &mut Linear, x: &Tensor) {
        // Scalar loss L = sum(y). dL/dy = ones.
        let y = layer.forward(x);
        let ones = Tensor::full(&[y.rows(), y.cols()], 1.0);
        layer.zero_grads();
        let dx = layer.backward(&ones);

        // Check dW numerically at a few positions.
        let h = 1e-3f32;
        for &idx in &[0usize, 1, layer.w.len() - 1] {
            let orig = layer.w.value[idx];
            layer.w.value[idx] = orig + h;
            let lp = layer.forward(x).sum();
            layer.w.value[idx] = orig - h;
            let lm = layer.forward(x).sum();
            layer.w.value[idx] = orig;
            let num = (lp - lm) / (2.0 * h);
            let ana = layer.w.grad[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dW[{idx}]: {ana} vs {num}");
        }
        // Check dx numerically.
        for &idx in &[0usize, x.len() - 1] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let lp = layer.forward(&xp).sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let lm = layer.forward(&xm).sum();
            let num = (lp - lm) / (2.0 * h);
            let ana = dx.data()[idx];
            assert!((num - ana).abs() < 2e-2 * (1.0 + ana.abs()), "dx[{idx}]: {ana} vs {num}");
        }
    }

    #[test]
    fn forward_known_values() {
        let mut rng = SimRng::seed_from_u64(3);
        let mut l = Linear::new("l", 2, 2, 0.0, &mut rng);
        l.w.value = vec![1.0, 2.0, 3.0, 4.0]; // [[1,2],[3,4]]
        l.b.value = vec![0.5, -0.5];
        let x = Tensor::from_vec(&[1, 2], vec![1.0, 1.0]);
        let y = l.forward(&x);
        assert_eq!(y.data(), &[4.5, 5.5]);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = SimRng::seed_from_u64(7);
        let mut l = Linear::new("l", 5, 4, 0.3, &mut rng);
        let x = Tensor::from_vec(&[3, 5], (0..15).map(|i| ((i as f32) * 0.17).sin()).collect());
        finite_diff_check(&mut l, &x);
    }

    #[test]
    fn backward_accumulates_grads() {
        let mut rng = SimRng::seed_from_u64(9);
        let mut l = Linear::new("l", 3, 2, 0.1, &mut rng);
        let x = Tensor::full(&[2, 3], 1.0);
        let dy = Tensor::full(&[2, 2], 1.0);
        l.forward(&x);
        l.backward(&dy);
        let g1 = l.w.grad.clone();
        l.forward(&x);
        l.backward(&dy);
        for (a, b) in l.w.grad.iter().zip(&g1) {
            assert!((a - 2.0 * b).abs() < 1e-5, "grad must accumulate");
        }
        // Bias grad: each output column saw 2 rows × 2 passes of 1.0.
        assert_eq!(l.b.grad, vec![4.0, 4.0]);
    }

    #[test]
    fn visit_params_order() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut l = Linear::new("q", 4, 3, 0.1, &mut rng);
        let mut names = Vec::new();
        l.visit_params(&mut |p| names.push(p.name.clone()));
        assert_eq!(names, vec!["q.w", "q.b"]);
        assert_eq!(l.param_count(), 4 * 3 + 3);
    }

    #[test]
    #[should_panic(expected = "backward before forward")]
    fn backward_requires_forward() {
        let mut rng = SimRng::seed_from_u64(1);
        let mut l = Linear::new("l", 2, 2, 0.1, &mut rng);
        l.backward(&Tensor::zeros(&[1, 2]));
    }
}
