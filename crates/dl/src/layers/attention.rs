//! Causal multi-head self-attention with a full explicit backward pass.
//!
//! Operates on a single sequence `[T, D]`; the model loops over batch
//! sequences (batch sizes in the convergence experiments are small).

use super::linear::Linear;
use super::param::{Param, Visitable};
use crate::ops::softmax_rows;
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// Multi-head causal self-attention: fused QKV projection, per-head scaled
/// dot-product attention with a causal mask, and an output projection.
#[derive(Debug, Clone)]
pub struct CausalSelfAttention {
    /// Fused QKV projection `[D, 3D]`.
    pub wqkv: Linear,
    /// Output projection `[D, D]`.
    pub wo: Linear,
    dim: usize,
    heads: usize,
    /// Cache: (q, k, v as [T, D] each, per-head attention matrices).
    cache: Option<AttnCache>,
    causal: bool,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax outputs, one `[T, T]` tensor per head.
    attn: Vec<Tensor>,
}

impl CausalSelfAttention {
    /// New attention block. `dim` must be divisible by `heads`.
    pub fn new(name: &str, dim: usize, heads: usize, causal: bool, rng: &mut SimRng) -> Self {
        assert!(dim.is_multiple_of(heads), "dim {dim} not divisible by heads {heads}");
        let std = 0.02;
        CausalSelfAttention {
            wqkv: Linear::new(&format!("{name}.wqkv"), dim, 3 * dim, std, rng),
            wo: Linear::new(&format!("{name}.wo"), dim, dim, std, rng),
            dim,
            heads,
            cache: None,
            causal,
        }
    }

    /// Head width.
    pub fn head_dim(&self) -> usize {
        self.dim / self.heads
    }
    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.heads
    }

    /// Slice head `h` columns out of `[T, D]` into `[T, dh]`.
    fn head(&self, x: &Tensor, h: usize) -> Tensor {
        let t = x.rows();
        let dh = self.head_dim();
        let mut out = Tensor::zeros(&[t, dh]);
        for r in 0..t {
            out.row_mut(r).copy_from_slice(&x.row(r)[h * dh..(h + 1) * dh]);
        }
        out
    }

    /// Add head `h`'s `[T, dh]` gradient back into `[T, D]` at its columns.
    fn unhead(&self, full: &mut Tensor, part: &Tensor, h: usize) {
        let dh = self.head_dim();
        for r in 0..part.rows() {
            let dst = &mut full.row_mut(r)[h * dh..(h + 1) * dh];
            for (d, s) in dst.iter_mut().zip(part.row(r)) {
                *d += s;
            }
        }
    }

    /// Forward over one sequence `[T, D]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let t = x.rows();
        assert_eq!(x.cols(), self.dim);
        let qkv = self.wqkv.forward(x); // [T, 3D]
        let d = self.dim;
        let mut q = Tensor::zeros(&[t, d]);
        let mut k = Tensor::zeros(&[t, d]);
        let mut v = Tensor::zeros(&[t, d]);
        for r in 0..t {
            q.row_mut(r).copy_from_slice(&qkv.row(r)[0..d]);
            k.row_mut(r).copy_from_slice(&qkv.row(r)[d..2 * d]);
            v.row_mut(r).copy_from_slice(&qkv.row(r)[2 * d..3 * d]);
        }

        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();
        let mut ctx = Tensor::zeros(&[t, d]);
        let mut attn_mats = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = self.head(&q, h);
            let kh = self.head(&k, h);
            let vh = self.head(&v, h);
            // Scores with causal mask.
            let mut s = Tensor::zeros(&[t, t]);
            for i in 0..t {
                for j in 0..t {
                    if self.causal && j > i {
                        s.set(i, j, f32::NEG_INFINITY);
                    } else {
                        let dot: f32 = qh.row(i).iter().zip(kh.row(j)).map(|(a, b)| a * b).sum();
                        s.set(i, j, dot * scale);
                    }
                }
            }
            softmax_rows(&mut s);
            // ctx_h = a · v_h.
            let mut ctx_h = Tensor::zeros(&[t, dh]);
            for i in 0..t {
                for j in 0..t {
                    let a = s.at(i, j);
                    if a == 0.0 {
                        continue;
                    }
                    for c in 0..dh {
                        ctx_h.data_mut()[i * dh + c] += a * vh.at(j, c);
                    }
                }
            }
            self.unhead(&mut ctx, &ctx_h, h);
            attn_mats.push(s);
        }
        self.cache = Some(AttnCache { q, k, v, attn: attn_mats });
        self.wo.forward(&ctx)
    }

    /// Backward over one sequence; returns dx `[T, D]`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let d_ctx = self.wo.backward(dy); // [T, D]
        let cache = self.cache.take().expect("backward before forward");
        let t = d_ctx.rows();
        let d = self.dim;
        let dh = self.head_dim();
        let scale = 1.0 / (dh as f32).sqrt();

        let mut dq = Tensor::zeros(&[t, d]);
        let mut dk = Tensor::zeros(&[t, d]);
        let mut dv = Tensor::zeros(&[t, d]);

        for h in 0..self.heads {
            let qh = self.head(&cache.q, h);
            let kh = self.head(&cache.k, h);
            let vh = self.head(&cache.v, h);
            let a = &cache.attn[h]; // [T, T]
            let d_ctx_h = self.head(&d_ctx, h); // [T, dh]

            // dV_h = aᵀ · d_ctx_h ; dA = d_ctx_h · V_hᵀ.
            let mut dvh = Tensor::zeros(&[t, dh]);
            let mut da = Tensor::zeros(&[t, t]);
            for i in 0..t {
                for j in 0..t {
                    let aij = a.at(i, j);
                    let mut dot = 0f32;
                    for c in 0..dh {
                        let g = d_ctx_h.at(i, c);
                        dvh.data_mut()[j * dh + c] += aij * g;
                        dot += g * vh.at(j, c);
                    }
                    da.set(i, j, dot);
                }
            }
            // Softmax backward per row: ds = a ⊙ (da − Σ_j a·da).
            let mut ds = Tensor::zeros(&[t, t]);
            for i in 0..t {
                let mut dot = 0f32;
                for j in 0..t {
                    dot += a.at(i, j) * da.at(i, j);
                }
                for j in 0..t {
                    ds.set(i, j, a.at(i, j) * (da.at(i, j) - dot));
                }
            }
            // dQ_h = ds · K_h · scale ; dK_h = dsᵀ · Q_h · scale.
            let mut dqh = Tensor::zeros(&[t, dh]);
            let mut dkh = Tensor::zeros(&[t, dh]);
            for i in 0..t {
                for j in 0..t {
                    let dsv = ds.at(i, j) * scale;
                    if dsv == 0.0 {
                        continue;
                    }
                    for c in 0..dh {
                        dqh.data_mut()[i * dh + c] += dsv * kh.at(j, c);
                        dkh.data_mut()[j * dh + c] += dsv * qh.at(i, c);
                    }
                }
            }
            self.unhead(&mut dq, &dqh, h);
            self.unhead(&mut dk, &dkh, h);
            self.unhead(&mut dv, &dvh, h);
        }

        // Reassemble d_qkv and run the fused projection backward.
        let mut d_qkv = Tensor::zeros(&[t, 3 * d]);
        for r in 0..t {
            d_qkv.row_mut(r)[0..d].copy_from_slice(dq.row(r));
            d_qkv.row_mut(r)[d..2 * d].copy_from_slice(dk.row(r));
            d_qkv.row_mut(r)[2 * d..3 * d].copy_from_slice(dv.row(r));
        }
        self.wqkv.backward(&d_qkv)
    }
}

impl Visitable for CausalSelfAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.wqkv.visit_params(f);
        self.wo.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn attn(dim: usize, heads: usize, causal: bool, seed: u64) -> CausalSelfAttention {
        let mut rng = SimRng::seed_from_u64(seed);
        CausalSelfAttention::new("attn", dim, heads, causal, &mut rng)
    }

    #[test]
    fn output_shape_and_determinism() {
        let mut a1 = attn(8, 2, true, 5);
        let mut a2 = attn(8, 2, true, 5);
        let x = Tensor::from_vec(&[4, 8], (0..32).map(|i| ((i as f32) * 0.2).sin()).collect());
        let y1 = a1.forward(&x);
        let y2 = a2.forward(&x);
        assert_eq!(y1.shape(), &[4, 8]);
        assert_eq!(y1.data(), y2.data());
    }

    #[test]
    fn causal_mask_blocks_future() {
        // Changing a later token must not change earlier outputs.
        let mut a = attn(8, 2, true, 5);
        let x1 = Tensor::from_vec(&[4, 8], (0..32).map(|i| ((i as f32) * 0.2).sin()).collect());
        let mut x2 = x1.clone();
        for v in x2.row_mut(3) {
            *v += 1.0;
        }
        let y1 = a.forward(&x1);
        let mut a2 = attn(8, 2, true, 5);
        let y2 = a2.forward(&x2);
        for r in 0..3 {
            for c in 0..8 {
                assert!((y1.at(r, c) - y2.at(r, c)).abs() < 1e-6, "row {r} leaked future");
            }
        }
        // Row 3 must differ.
        let diff: f32 = (0..8).map(|c| (y1.at(3, c) - y2.at(3, c)).abs()).sum();
        assert!(diff > 1e-4);
    }

    #[test]
    fn non_causal_attends_everywhere() {
        let mut a = attn(4, 1, false, 9);
        let x1 = Tensor::from_vec(&[3, 4], (0..12).map(|i| (i as f32) * 0.1).collect());
        let mut x2 = x1.clone();
        for v in x2.row_mut(2) {
            *v += 1.0;
        }
        let y1 = a.forward(&x1);
        let mut a2 = attn(4, 1, false, 9);
        let y2 = a2.forward(&x2);
        let diff: f32 = (0..4).map(|c| (y1.at(0, c) - y2.at(0, c)).abs()).sum();
        assert!(diff > 1e-5, "non-causal row 0 must see row 2");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut a = attn(6, 2, true, 11);
        let t = 3;
        let x =
            Tensor::from_vec(&[t, 6], (0..18).map(|i| ((i as f32) * 0.37).cos() * 0.5).collect());
        a.zero_grads();
        a.forward(&x);
        let dy = Tensor::full(&[t, 6], 1.0);
        let dx = a.backward(&dy);

        let h = 1e-3f32;
        let loss = |att: &mut CausalSelfAttention, xx: &Tensor| att.forward(xx).sum();
        for &idx in &[0usize, 7, 17] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let num = (loss(&mut a, &xp) - loss(&mut a, &xm)) / (2.0 * h);
            let ana = dx.data()[idx];
            assert!((num - ana).abs() < 3e-2 * (1.0 + ana.abs()), "dx[{idx}]: {ana} vs {num}");
        }
        // Spot-check a weight gradient too (re-run fwd/bwd to refresh grads).
        a.zero_grads();
        a.forward(&x);
        a.backward(&dy);
        let widx = 5usize;
        let ana = a.wqkv.w.grad[widx];
        let orig = a.wqkv.w.value[widx];
        a.wqkv.w.value[widx] = orig + h;
        let lp = loss(&mut a, &x);
        a.wqkv.w.value[widx] = orig - h;
        let lm = loss(&mut a, &x);
        a.wqkv.w.value[widx] = orig;
        let num = (lp - lm) / (2.0 * h);
        assert!((num - ana).abs() < 3e-2 * (1.0 + ana.abs()), "dW: {ana} vs {num}");
    }

    #[test]
    fn param_count() {
        let mut a = attn(8, 2, true, 1);
        // wqkv: 8·24 + 24; wo: 8·8 + 8.
        assert_eq!(a.param_count(), 8 * 24 + 24 + 64 + 8);
    }
}
