//! GCNII-style graph convolution (Chen et al., ICML'20 — the paper's fifth
//! workload, Table III).
//!
//! One GCNII layer computes
//! `H' = σ( ((1−α)·P·H + α·H0) · ((1−β)·I + β·W) )`
//! where `P` is the symmetric-normalized adjacency with self-loops, `H0` the
//! initial representation (residual connection to layer 0), `α` the initial
//! residual weight and `β = ln(λ/ℓ + 1)` the identity-mapping strength at
//! depth `ℓ`.

use super::param::{Param, Visitable};
use crate::ops::{matmul, matmul_nt, matmul_tn};
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// A sparse symmetric-normalized adjacency operator `P = D̃^-½ Ã D̃^-½`.
#[derive(Debug, Clone)]
pub struct NormAdj {
    n: usize,
    /// CSR-ish: for each node, (neighbor, weight) including the self loop.
    rows: Vec<Vec<(usize, f32)>>,
}

impl NormAdj {
    /// Build from an undirected edge list over `n` nodes (self-loops added).
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Self {
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for &(a, b) in edges {
            assert!(a < n && b < n, "edge ({a},{b}) out of range");
            if a != b {
                adj[a].push(b);
                adj[b].push(a);
            }
        }
        for (i, l) in adj.iter_mut().enumerate() {
            l.push(i); // self loop
            l.sort_unstable();
            l.dedup();
        }
        let deg: Vec<f32> = adj.iter().map(|l| l.len() as f32).collect();
        let rows = adj
            .iter()
            .enumerate()
            .map(|(i, l)| l.iter().map(|&j| (j, 1.0 / (deg[i] * deg[j]).sqrt())).collect())
            .collect();
        NormAdj { n, rows }
    }

    /// Number of nodes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// `Y = P · X` for `X: [n, d]`.
    pub fn propagate(&self, x: &Tensor) -> Tensor {
        assert_eq!(x.rows(), self.n);
        let d = x.cols();
        let mut y = Tensor::zeros(&[self.n, d]);
        for (i, nbrs) in self.rows.iter().enumerate() {
            for &(j, w) in nbrs {
                let src = x.row(j);
                let dst = &mut y.data_mut()[i * d..(i + 1) * d];
                for (o, s) in dst.iter_mut().zip(src) {
                    *o += w * s;
                }
            }
        }
        y
    }

    /// `P` is symmetric, so propagate is its own transpose — used in
    /// backward.
    pub fn propagate_transpose(&self, x: &Tensor) -> Tensor {
        self.propagate(x)
    }
}

/// One GCNII layer.
#[derive(Debug, Clone)]
pub struct GcnIILayer {
    /// Weight `[d, d]`.
    pub w: Param,
    dim: usize,
    /// Initial-residual mixing weight α.
    pub alpha: f32,
    /// Identity-mapping strength β at this depth.
    pub beta: f32,
    cache: Option<(Tensor, Tensor)>, // (support = (1−α)PH + αH0, pre-ReLU out)
}

impl GcnIILayer {
    /// New layer at depth `layer_index` (1-based) with decay constant
    /// `lambda` (GCNII uses λ ≈ 0.5–1.5).
    pub fn new(
        name: &str,
        dim: usize,
        alpha: f32,
        lambda: f32,
        layer_index: usize,
        rng: &mut SimRng,
    ) -> Self {
        let beta = (lambda / layer_index as f32 + 1.0).ln();
        GcnIILayer {
            w: Param::randn(format!("{name}.w"), dim * dim, (1.0 / dim as f32).sqrt(), rng),
            dim,
            alpha,
            beta,
            cache: None,
        }
    }

    fn w_tensor(&self) -> Tensor {
        Tensor::from_vec(&[self.dim, self.dim], self.w.value.clone())
    }

    /// Forward: `relu( support · ((1−β)I + βW) )` with
    /// `support = (1−α)·P·h + α·h0`.
    pub fn forward(&mut self, adj: &NormAdj, h: &Tensor, h0: &Tensor) -> Tensor {
        assert_eq!(h.cols(), self.dim);
        let ph = adj.propagate(h);
        let mut support = ph;
        support.scale(1.0 - self.alpha);
        let mut h0s = h0.clone();
        h0s.scale(self.alpha);
        support.add_assign(&h0s);

        // out = (1−β)·support + β·support·W
        let mut sw = matmul(&support, &self.w_tensor());
        sw.scale(self.beta);
        let mut pre = support.clone();
        pre.scale(1.0 - self.beta);
        pre.add_assign(&sw);

        let out = pre.map(|x| x.max(0.0));
        self.cache = Some((support, pre));
        out
    }

    /// Backward; returns `(dh, dh0)`.
    pub fn backward(&mut self, adj: &NormAdj, dy: &Tensor) -> (Tensor, Tensor) {
        let (support, pre) = self.cache.take().expect("backward before forward");
        // Through ReLU.
        let mut d_pre = dy.clone();
        for (d, &p) in d_pre.data_mut().iter_mut().zip(pre.data()) {
            if p <= 0.0 {
                *d = 0.0;
            }
        }
        // dW = β · supportᵀ · d_pre.
        let dw = matmul_tn(&support, &d_pre);
        for (g, d) in self.w.grad.iter_mut().zip(dw.data()) {
            *g += self.beta * d;
        }
        // d_support = (1−β)·d_pre + β·d_pre·Wᵀ.
        let mut d_support = matmul_nt(&d_pre, &self.w_tensor());
        d_support.scale(self.beta);
        let mut lin = d_pre;
        lin.scale(1.0 - self.beta);
        d_support.add_assign(&lin);
        // Split into the two inputs.
        let mut dh = adj.propagate_transpose(&d_support);
        dh.scale(1.0 - self.alpha);
        let mut dh0 = d_support;
        dh0.scale(self.alpha);
        (dh, dh0)
    }
}

impl Visitable for GcnIILayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.w);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_graph(n: usize) -> NormAdj {
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        NormAdj::from_edges(n, &edges)
    }

    #[test]
    fn norm_adj_row_weights() {
        let adj = path_graph(3);
        // Node 0: neighbors {0, 1}; deg(0)=2 (incl self), deg(1)=3.
        let x = Tensor::from_vec(&[3, 1], vec![1.0, 1.0, 1.0]);
        let y = adj.propagate(&x);
        // Each output = Σ 1/sqrt(deg_i deg_j).
        let expect0 = 1.0 / (2.0f32) + 1.0 / (2.0f32 * 3.0).sqrt();
        assert!((y.at(0, 0) - expect0).abs() < 1e-5);
    }

    #[test]
    fn propagation_is_symmetric() {
        let adj = path_graph(5);
        let x = Tensor::from_vec(&[5, 2], (0..10).map(|i| (i as f32).sin()).collect());
        let y = Tensor::from_vec(&[5, 2], (0..10).map(|i| (i as f32).cos()).collect());
        // <Px, y> == <x, Py> for symmetric P.
        let px = adj.propagate(&x);
        let py = adj.propagate(&y);
        let a: f32 = px.data().iter().zip(y.data()).map(|(u, v)| u * v).sum();
        let b: f32 = x.data().iter().zip(py.data()).map(|(u, v)| u * v).sum();
        assert!((a - b).abs() < 1e-4);
    }

    #[test]
    fn beta_decays_with_depth() {
        let mut rng = SimRng::seed_from_u64(1);
        let l1 = GcnIILayer::new("g1", 4, 0.1, 1.0, 1, &mut rng);
        let l8 = GcnIILayer::new("g8", 4, 0.1, 1.0, 8, &mut rng);
        assert!(l1.beta > l8.beta, "identity mapping strengthens with depth");
        assert!(l8.beta > 0.0);
    }

    #[test]
    fn forward_shape_and_nonnegativity() {
        let mut rng = SimRng::seed_from_u64(2);
        let adj = path_graph(6);
        let mut l = GcnIILayer::new("g", 3, 0.1, 0.5, 1, &mut rng);
        let h = Tensor::from_vec(&[6, 3], (0..18).map(|i| ((i as f32) * 0.7).sin()).collect());
        let h0 = h.clone();
        let y = l.forward(&adj, &h, &h0);
        assert_eq!(y.shape(), &[6, 3]);
        assert!(y.data().iter().all(|&v| v >= 0.0), "ReLU output");
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SimRng::seed_from_u64(23);
        let adj = path_graph(4);
        let mut l = GcnIILayer::new("g", 3, 0.2, 0.8, 2, &mut rng);
        let h = Tensor::from_vec(&[4, 3], (0..12).map(|i| ((i as f32) * 0.41).cos()).collect());
        let h0 = Tensor::from_vec(&[4, 3], (0..12).map(|i| ((i as f32) * 0.23).sin()).collect());
        l.zero_grads();
        l.forward(&adj, &h, &h0);
        let dy = Tensor::full(&[4, 3], 1.0);
        let (dh, dh0) = l.backward(&adj, &dy);

        let hstep = 1e-3f32;
        let loss = |l: &mut GcnIILayer, hh: &Tensor, hh0: &Tensor| l.forward(&adj, hh, hh0).sum();
        for &idx in &[0usize, 5, 11] {
            let mut hp = h.clone();
            hp.data_mut()[idx] += hstep;
            let mut hm = h.clone();
            hm.data_mut()[idx] -= hstep;
            let num = (loss(&mut l, &hp, &h0) - loss(&mut l, &hm, &h0)) / (2.0 * hstep);
            assert!((num - dh.data()[idx]).abs() < 5e-2, "dh[{idx}]: {} vs {num}", dh.data()[idx]);

            let mut h0p = h0.clone();
            h0p.data_mut()[idx] += hstep;
            let mut h0m = h0.clone();
            h0m.data_mut()[idx] -= hstep;
            let num0 = (loss(&mut l, &h, &h0p) - loss(&mut l, &h, &h0m)) / (2.0 * hstep);
            assert!((num0 - dh0.data()[idx]).abs() < 5e-2, "dh0[{idx}]");
        }
        // Weight gradient spot check.
        l.zero_grads();
        l.forward(&adj, &h, &h0);
        l.backward(&adj, &dy);
        let widx = 4;
        let ana = l.w.grad[widx];
        let orig = l.w.value[widx];
        l.w.value[widx] = orig + hstep;
        let lp = loss(&mut l, &h, &h0);
        l.w.value[widx] = orig - hstep;
        let lm = loss(&mut l, &h, &h0);
        l.w.value[widx] = orig;
        let num = (lp - lm) / (2.0 * hstep);
        assert!((num - ana).abs() < 5e-2, "dW: {ana} vs {num}");
    }
}
