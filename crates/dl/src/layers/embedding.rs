//! Lookup-table embedding with explicit backward.

use super::param::{Param, Visitable};
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// An embedding table `[vocab, dim]`: forward gathers rows by index,
/// backward scatters gradients back to the gathered rows.
#[derive(Debug, Clone)]
pub struct Embedding {
    /// The table, flat `[vocab × dim]`.
    pub table: Param,
    vocab: usize,
    dim: usize,
    cache_idx: Option<Vec<usize>>,
}

impl Embedding {
    /// New table with N(0, std) entries.
    pub fn new(name: &str, vocab: usize, dim: usize, std: f32, rng: &mut SimRng) -> Self {
        Embedding {
            table: Param::randn(format!("{name}.table"), vocab * dim, std, rng),
            vocab,
            dim,
            cache_idx: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }
    /// Embedding width.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Gather rows for `indices`; output `[len, dim]`.
    pub fn forward(&mut self, indices: &[usize]) -> Tensor {
        let mut out = Tensor::zeros(&[indices.len(), self.dim]);
        for (r, &ix) in indices.iter().enumerate() {
            assert!(ix < self.vocab, "token {ix} out of vocab {}", self.vocab);
            let src = &self.table.value[ix * self.dim..(ix + 1) * self.dim];
            out.row_mut(r).copy_from_slice(src);
        }
        self.cache_idx = Some(indices.to_vec());
        out
    }

    /// Scatter-add `dy` rows into the table gradient.
    pub fn backward(&mut self, dy: &Tensor) {
        let idx = self.cache_idx.as_ref().expect("backward before forward");
        assert_eq!(dy.rows(), idx.len());
        assert_eq!(dy.cols(), self.dim);
        for (r, &ix) in idx.iter().enumerate() {
            let dst = &mut self.table.grad[ix * self.dim..(ix + 1) * self.dim];
            for (g, d) in dst.iter_mut().zip(dy.row(r)) {
                *g += d;
            }
        }
    }
}

impl Visitable for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.table);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gather_rows() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut e = Embedding::new("e", 4, 3, 0.1, &mut rng);
        for v in 0..4 {
            for d in 0..3 {
                e.table.value[v * 3 + d] = (v * 10 + d) as f32;
            }
        }
        let y = e.forward(&[2, 0, 2]);
        assert_eq!(y.row(0), &[20., 21., 22.]);
        assert_eq!(y.row(1), &[0., 1., 2.]);
        assert_eq!(y.row(2), &[20., 21., 22.]);
    }

    #[test]
    fn scatter_accumulates_repeats() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut e = Embedding::new("e", 4, 2, 0.1, &mut rng);
        e.forward(&[1, 1, 3]);
        let dy = Tensor::from_vec(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        e.backward(&dy);
        // Token 1 appears twice: grads sum.
        assert_eq!(&e.table.grad[2..4], &[4., 6.]);
        assert_eq!(&e.table.grad[6..8], &[5., 6.]);
        // Untouched rows stay zero.
        assert_eq!(&e.table.grad[0..2], &[0., 0.]);
    }

    #[test]
    #[should_panic(expected = "out of vocab")]
    fn oov_panics() {
        let mut rng = SimRng::seed_from_u64(2);
        let mut e = Embedding::new("e", 4, 2, 0.1, &mut rng);
        e.forward(&[4]);
    }
}
