//! Neural-network layers with explicit forward/backward passes.

pub mod activation;
pub mod attention;
pub mod dropout;
pub mod embedding;
pub mod gcn;
pub mod layernorm;
pub mod linear;
pub mod param;
pub mod transformer;

pub use activation::{Act, Activation};
pub use attention::CausalSelfAttention;
pub use dropout::Dropout;
pub use embedding::Embedding;
pub use gcn::{GcnIILayer, NormAdj};
pub use layernorm::LayerNorm;
pub use linear::Linear;
pub use param::{capture_params, restore_params, Param, ParamSnapshot, Visitable};
pub use transformer::TransformerBlock;
