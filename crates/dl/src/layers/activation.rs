//! Elementwise activation layers (stateless apart from the backward cache).

use crate::ops::{gelu, gelu_grad, relu};
use crate::tensor::Tensor;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// GELU (tanh approximation) — transformers.
    Gelu,
    /// ReLU — GCNs and MLP baselines.
    Relu,
}

/// An activation layer with cached pre-activation input.
#[derive(Debug, Clone)]
pub struct Activation {
    act: Act,
    cache_x: Option<Tensor>,
}

impl Activation {
    /// New activation of the given kind.
    pub fn new(act: Act) -> Self {
        Activation { act, cache_x: None }
    }

    /// Forward pass.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        self.cache_x = Some(x.clone());
        match self.act {
            Act::Gelu => x.map(gelu),
            Act::Relu => x.map(relu),
        }
    }

    /// Backward pass: `dx = dy ⊙ f'(x)`.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let x = self.cache_x.as_ref().expect("backward before forward");
        assert_eq!(x.shape(), dy.shape());
        let mut dx = dy.clone();
        match self.act {
            Act::Gelu => {
                for (d, &xv) in dx.data_mut().iter_mut().zip(x.data()) {
                    *d *= gelu_grad(xv);
                }
            }
            Act::Relu => {
                for (d, &xv) in dx.data_mut().iter_mut().zip(x.data()) {
                    if xv <= 0.0 {
                        *d = 0.0;
                    }
                }
            }
        }
        dx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_forward_backward() {
        let mut a = Activation::new(Act::Relu);
        let x = Tensor::from_vec(&[1, 4], vec![-2.0, -0.5, 0.5, 2.0]);
        let y = a.forward(&x);
        assert_eq!(y.data(), &[0.0, 0.0, 0.5, 2.0]);
        let dy = Tensor::full(&[1, 4], 1.0);
        let dx = a.backward(&dy);
        assert_eq!(dx.data(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn gelu_backward_matches_finite_difference() {
        let mut a = Activation::new(Act::Gelu);
        let x = Tensor::from_vec(&[1, 5], vec![-2.0, -0.7, 0.0, 0.9, 1.8]);
        a.forward(&x);
        let dy = Tensor::full(&[1, 5], 1.0);
        let dx = a.backward(&dy);
        let h = 1e-3f32;
        for i in 0..5 {
            let mut xp = x.clone();
            xp.data_mut()[i] += h;
            let mut xm = x.clone();
            xm.data_mut()[i] -= h;
            let mut ap = Activation::new(Act::Gelu);
            let mut am = Activation::new(Act::Gelu);
            let num = (ap.forward(&xp).sum() - am.forward(&xm).sum()) / (2.0 * h);
            assert!((dx.data()[i] - num).abs() < 1e-2, "i={i}");
        }
    }
}
