//! Inverted dropout.
//!
//! Fine-tuning recipes for every Table III model use dropout; it also
//! matters to the §III byte-change statistics (dropout noise keeps
//! gradients "changing in all bytes" even near convergence).

use crate::tensor::Tensor;
use teco_sim::SimRng;

/// Inverted dropout: at train time, zero each element with probability `p`
/// and scale survivors by `1/(1−p)`; at eval time, identity.
#[derive(Debug, Clone)]
pub struct Dropout {
    /// Drop probability.
    pub p: f32,
    training: bool,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// New dropout with probability `p ∈ [0, 1)`.
    pub fn new(p: f32) -> Self {
        assert!((0.0..1.0).contains(&p), "p must be in [0,1): {p}");
        Dropout { p, training: true, mask: None }
    }

    /// Switch between train and eval behavior.
    pub fn set_training(&mut self, training: bool) {
        self.training = training;
    }
    /// Is the layer in training mode?
    pub fn training(&self) -> bool {
        self.training
    }

    /// Forward pass; draws a fresh mask from `rng` when training.
    pub fn forward(&mut self, x: &Tensor, rng: &mut SimRng) -> Tensor {
        if !self.training || self.p == 0.0 {
            self.mask = None;
            return x.clone();
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let mask: Vec<bool> = (0..x.len()).map(|_| rng.bernoulli(keep as f64)).collect();
        let mut y = x.clone();
        for (v, &m) in y.data_mut().iter_mut().zip(&mask) {
            *v = if m { *v * scale } else { 0.0 };
        }
        self.mask = Some(mask);
        y
    }

    /// Backward pass: gradients flow only through kept elements, scaled.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        match &self.mask {
            None => dy.clone(),
            Some(mask) => {
                assert_eq!(mask.len(), dy.len(), "mask/grad shape mismatch");
                let scale = 1.0 / (1.0 - self.p);
                let mut dx = dy.clone();
                for (g, &m) in dx.data_mut().iter_mut().zip(mask) {
                    *g = if m { *g * scale } else { 0.0 };
                }
                dx
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5);
        d.set_training(false);
        let mut rng = SimRng::seed_from_u64(1);
        let x = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(d.forward(&x, &mut rng).data(), x.data());
        assert_eq!(d.backward(&x).data(), x.data());
    }

    #[test]
    fn expectation_preserved() {
        let mut d = Dropout::new(0.3);
        let mut rng = SimRng::seed_from_u64(2);
        let x = Tensor::full(&[100, 100], 1.0);
        let y = d.forward(&x, &mut rng);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.02, "E[y]={mean}");
        // Survivors are scaled by exactly 1/keep.
        let keep_scale = 1.0 / 0.7;
        assert!(y.data().iter().all(|&v| v == 0.0 || (v - keep_scale).abs() < 1e-6));
    }

    #[test]
    fn backward_uses_same_mask() {
        let mut d = Dropout::new(0.5);
        let mut rng = SimRng::seed_from_u64(3);
        let x = Tensor::full(&[1, 64], 1.0);
        let y = d.forward(&x, &mut rng);
        let dy = Tensor::full(&[1, 64], 1.0);
        let dx = d.backward(&dy);
        for (yv, gv) in y.data().iter().zip(dx.data()) {
            assert_eq!(*yv == 0.0, *gv == 0.0, "mask mismatch");
        }
    }

    #[test]
    fn zero_probability_is_identity_in_training() {
        let mut d = Dropout::new(0.0);
        let mut rng = SimRng::seed_from_u64(4);
        let x = Tensor::from_vec(&[4], vec![1., -2., 3., -4.]);
        assert_eq!(d.forward(&x, &mut rng).data(), x.data());
    }

    #[test]
    #[should_panic(expected = "p must be in")]
    fn rejects_p_one() {
        Dropout::new(1.0);
    }
}
