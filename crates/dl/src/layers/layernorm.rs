//! Layer normalization with explicit backward.

use super::param::{Param, Visitable};
use crate::tensor::Tensor;

/// Row-wise LayerNorm: `y = γ · (x − μ) / √(σ² + ε) + β`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale γ, `[dim]`.
    pub gamma: Param,
    /// Shift β, `[dim]`.
    pub beta: Param,
    dim: usize,
    eps: f32,
    /// Cached normalized input x̂ and inverse std per row.
    cache: Option<(Tensor, Vec<f32>)>,
}

impl LayerNorm {
    /// New LayerNorm over feature width `dim`, γ=1, β=0.
    pub fn new(name: &str, dim: usize) -> Self {
        let mut gamma = Param::zeros(format!("{name}.gamma"), dim);
        gamma.value.iter_mut().for_each(|v| *v = 1.0);
        LayerNorm {
            gamma,
            beta: Param::zeros(format!("{name}.beta"), dim),
            dim,
            eps: 1e-5,
            cache: None,
        }
    }

    /// Forward pass over `[n, dim]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        assert_eq!(x.cols(), self.dim);
        let n = x.rows();
        let d = self.dim;
        let mut xhat = Tensor::zeros(&[n, d]);
        let mut inv_std = vec![0f32; n];
        let mut y = Tensor::zeros(&[n, d]);
        for (r, istd_slot) in inv_std.iter_mut().enumerate() {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let istd = 1.0 / (var + self.eps).sqrt();
            *istd_slot = istd;
            for (c, &xv) in row.iter().enumerate() {
                let xh = (xv - mean) * istd;
                xhat.set(r, c, xh);
                y.set(r, c, self.gamma.value[c] * xh + self.beta.value[c]);
            }
        }
        self.cache = Some((xhat, inv_std));
        y
    }

    /// Backward pass: accumulates dγ, dβ; returns dx.
    pub fn backward(&mut self, dy: &Tensor) -> Tensor {
        let (xhat, inv_std) = self.cache.as_ref().expect("backward before forward");
        let n = dy.rows();
        let d = self.dim;
        let mut dx = Tensor::zeros(&[n, d]);
        for (r, &istd) in inv_std.iter().enumerate().take(n) {
            let dyr = dy.row(r);
            let xhr = xhat.row(r);
            // dγ, dβ.
            for c in 0..d {
                self.gamma.grad[c] += dyr[c] * xhr[c];
                self.beta.grad[c] += dyr[c];
            }
            // dx via the standard LayerNorm backward:
            // dx = (γ·dy − mean(γ·dy) − x̂·mean(γ·dy·x̂)) · inv_std
            let mut g = vec![0f32; d];
            for c in 0..d {
                g[c] = self.gamma.value[c] * dyr[c];
            }
            let mean_g = g.iter().sum::<f32>() / d as f32;
            let mean_gx = g.iter().zip(xhr).map(|(a, b)| a * b).sum::<f32>() / d as f32;
            for c in 0..d {
                dx.set(r, c, (g[c] - mean_g - xhr[c] * mean_gx) * istd);
            }
        }
        dx
    }
}

impl Visitable for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_normalizes_rows() {
        let mut ln = LayerNorm::new("ln", 4);
        let x = Tensor::from_vec(&[2, 4], vec![1., 2., 3., 4., 10., 10., 10., 10.]);
        let y = ln.forward(&x);
        // Row 0: mean 0, unit variance after normalization.
        let m: f32 = y.row(0).iter().sum::<f32>() / 4.0;
        assert!(m.abs() < 1e-5);
        let v: f32 = y.row(0).iter().map(|a| a * a).sum::<f32>() / 4.0;
        assert!((v - 1.0).abs() < 1e-3);
        // Constant row normalizes to ~0.
        assert!(y.row(1).iter().all(|a| a.abs() < 1e-2));
    }

    #[test]
    fn gamma_beta_applied() {
        let mut ln = LayerNorm::new("ln", 2);
        ln.gamma.value = vec![2.0, 2.0];
        ln.beta.value = vec![1.0, 1.0];
        let x = Tensor::from_vec(&[1, 2], vec![-1.0, 1.0]);
        let y = ln.forward(&x);
        // x̂ = [-1, 1] (unit variance already): y = 2·x̂ + 1 = [-1, 3].
        assert!((y.at(0, 0) + 1.0).abs() < 1e-2);
        assert!((y.at(0, 1) - 3.0).abs() < 1e-2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut ln = LayerNorm::new("ln", 6);
        ln.gamma.value = vec![0.9, 1.1, 1.0, 0.8, 1.2, 1.05];
        let x = Tensor::from_vec(&[2, 6], (0..12).map(|i| ((i as f32) * 0.31).cos()).collect());
        let y = ln.forward(&x);
        let dy = Tensor::full(&[2, 6], 1.0);
        ln.zero_grads();
        let dx = ln.backward(&dy);
        drop(y);

        let h = 1e-3f32;
        // Check dx numerically: L = sum(LN(x)).
        for &idx in &[0usize, 5, 7, 11] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += h;
            let lp = ln.forward(&xp).sum();
            let mut xm = x.clone();
            xm.data_mut()[idx] -= h;
            let lm = ln.forward(&xm).sum();
            let num = (lp - lm) / (2.0 * h);
            let ana = dx.data()[idx];
            assert!((num - ana).abs() < 5e-2, "dx[{idx}]: {ana} vs {num}");
        }
        // Check dγ numerically.
        for &c in &[0usize, 3, 5] {
            let orig = ln.gamma.value[c];
            ln.gamma.value[c] = orig + h;
            let lp = ln.forward(&x).sum();
            ln.gamma.value[c] = orig - h;
            let lm = ln.forward(&x).sum();
            ln.gamma.value[c] = orig;
            let num = (lp - lm) / (2.0 * h);
            assert!((num - ln.gamma.grad[c]).abs() < 5e-2, "dγ[{c}]");
        }
        // dβ is just the column sum of dy.
        assert!(ln.beta.grad.iter().all(|g| (g - 2.0).abs() < 1e-5));
    }

    #[test]
    fn visitable() {
        let mut ln = LayerNorm::new("n", 8);
        assert_eq!(ln.param_count(), 16);
    }
}
