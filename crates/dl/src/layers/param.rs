//! Trainable parameters.
//!
//! A [`Param`] is a named flat FP32 buffer plus its gradient accumulator —
//! the unit the ADAM optimizer sweeps and the unit whose bytes the TECO
//! transfer path moves. Layers expose their parameters through
//! [`Visitable::visit_params`], which is how the optimizer, the byte-change
//! profiler, and the DBA truncation coupling reach every weight without the
//! layers knowing about any of them.

use serde::{Deserialize, Serialize};
use teco_sim::SimRng;

/// One named trainable tensor, stored flat.
#[derive(Debug, Clone)]
pub struct Param {
    /// Diagnostic name (e.g. `"block0.attn.wqkv"`).
    pub name: String,
    /// Current value (on the "GPU" side of the offload split: the working
    /// copy used by forward/backward).
    pub value: Vec<f32>,
    /// Gradient accumulator, same length as `value`.
    pub grad: Vec<f32>,
}

impl Param {
    /// Zero-initialized parameter.
    pub fn zeros(name: impl Into<String>, len: usize) -> Self {
        Param { name: name.into(), value: vec![0.0; len], grad: vec![0.0; len] }
    }

    /// Gaussian initialization with the given std — the usual transformer
    /// init (0.02) or Xavier-ish scaling chosen by the caller.
    pub fn randn(name: impl Into<String>, len: usize, std: f32, rng: &mut SimRng) -> Self {
        Param {
            name: name.into(),
            value: (0..len).map(|_| rng.normal(0.0, std as f64) as f32).collect(),
            grad: vec![0.0; len],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Serialized form of a [`Param`]. FP32 buffers are captured as raw IEEE-754
/// bit patterns, not as floats: the snapshot payload travels through JSON,
/// and round-tripping `u32` is bit-exact by construction for every value —
/// including NaN payloads and subnormals — which a float text path cannot
/// promise. Bit-identical resume depends on this.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParamSnapshot {
    /// The parameter's diagnostic name (restore is matched by name).
    pub name: String,
    /// `value` as IEEE-754 bit patterns.
    pub value_bits: Vec<u32>,
    /// `grad` as IEEE-754 bit patterns.
    pub grad_bits: Vec<u32>,
}

impl ParamSnapshot {
    /// Capture one parameter.
    pub fn of(p: &Param) -> Self {
        ParamSnapshot {
            name: p.name.clone(),
            value_bits: p.value.iter().map(|v| v.to_bits()).collect(),
            grad_bits: p.grad.iter().map(|g| g.to_bits()).collect(),
        }
    }

    /// Write the captured bits back into `p`. Panics if the snapshot was
    /// taken from a differently named or shaped parameter — that means the
    /// restored model was built from a different config, which no amount of
    /// bit-copying can paper over.
    pub fn apply_to(&self, p: &mut Param) {
        assert_eq!(self.name, p.name, "snapshot/param name mismatch");
        assert_eq!(self.value_bits.len(), p.value.len(), "param {} resized", p.name);
        assert_eq!(self.grad_bits.len(), p.grad.len(), "param {} grad resized", p.name);
        for (dst, &bits) in p.value.iter_mut().zip(&self.value_bits) {
            *dst = f32::from_bits(bits);
        }
        for (dst, &bits) in p.grad.iter_mut().zip(&self.grad_bits) {
            *dst = f32::from_bits(bits);
        }
    }
}

/// Capture every parameter of a model, in visit order.
pub fn capture_params(model: &mut dyn Visitable) -> Vec<ParamSnapshot> {
    let mut snaps = Vec::new();
    model.visit_params(&mut |p| snaps.push(ParamSnapshot::of(p)));
    snaps
}

/// Restore every parameter of a model from `snaps`, in visit order. The
/// model must have been built from the same config (same layers, names,
/// and shapes); any mismatch panics with the offending parameter.
pub fn restore_params(model: &mut dyn Visitable, snaps: &[ParamSnapshot]) {
    let mut idx = 0usize;
    model.visit_params(&mut |p| {
        let snap = snaps.get(idx).unwrap_or_else(|| {
            panic!("model has more params than the snapshot ({} captured)", snaps.len())
        });
        snap.apply_to(p);
        idx += 1;
    });
    assert_eq!(idx, snaps.len(), "snapshot has more params than the model");
}

/// Implemented by every layer and model: walk all trainable parameters.
pub trait Visitable {
    /// Call `f` on each parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero all gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Global L2 norm of all gradients (for clipping).
    fn grad_l2_norm(&mut self) -> f32 {
        let mut acc = 0f64;
        self.visit_params(&mut |p| {
            acc += p.grad.iter().map(|g| (*g as f64).powi(2)).sum::<f64>();
        });
        acc.sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(Param, Param);
    impl Visitable for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
            f(&mut self.1);
        }
    }

    #[test]
    fn zeros_and_randn() {
        let mut rng = SimRng::seed_from_u64(1);
        let z = Param::zeros("z", 8);
        assert_eq!(z.len(), 8);
        assert!(z.value.iter().all(|&v| v == 0.0));
        let r = Param::randn("r", 1000, 0.02, &mut rng);
        let mean: f32 = r.value.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.01);
        let std = (r.value.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 1000.0).sqrt();
        assert!((std - 0.02).abs() < 0.005, "std {std}");
    }

    #[test]
    fn visitor_counts_and_zeroes() {
        let mut m = Two(Param::zeros("a", 3), Param::zeros("b", 5));
        assert_eq!(m.param_count(), 8);
        m.0.grad = vec![3.0, 0.0, 4.0];
        assert!((m.grad_l2_norm() - 5.0).abs() < 1e-6);
        m.zero_grads();
        assert_eq!(m.grad_l2_norm(), 0.0);
    }
}
