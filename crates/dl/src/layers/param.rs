//! Trainable parameters.
//!
//! A [`Param`] is a named flat FP32 buffer plus its gradient accumulator —
//! the unit the ADAM optimizer sweeps and the unit whose bytes the TECO
//! transfer path moves. Layers expose their parameters through
//! [`Visitable::visit_params`], which is how the optimizer, the byte-change
//! profiler, and the DBA truncation coupling reach every weight without the
//! layers knowing about any of them.

use teco_sim::SimRng;

/// One named trainable tensor, stored flat.
#[derive(Debug, Clone)]
pub struct Param {
    /// Diagnostic name (e.g. `"block0.attn.wqkv"`).
    pub name: String,
    /// Current value (on the "GPU" side of the offload split: the working
    /// copy used by forward/backward).
    pub value: Vec<f32>,
    /// Gradient accumulator, same length as `value`.
    pub grad: Vec<f32>,
}

impl Param {
    /// Zero-initialized parameter.
    pub fn zeros(name: impl Into<String>, len: usize) -> Self {
        Param { name: name.into(), value: vec![0.0; len], grad: vec![0.0; len] }
    }

    /// Gaussian initialization with the given std — the usual transformer
    /// init (0.02) or Xavier-ish scaling chosen by the caller.
    pub fn randn(name: impl Into<String>, len: usize, std: f32, rng: &mut SimRng) -> Self {
        Param {
            name: name.into(),
            value: (0..len).map(|_| rng.normal(0.0, std as f64) as f32).collect(),
            grad: vec![0.0; len],
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Reset the gradient to zero.
    pub fn zero_grad(&mut self) {
        self.grad.iter_mut().for_each(|g| *g = 0.0);
    }
}

/// Implemented by every layer and model: walk all trainable parameters.
pub trait Visitable {
    /// Call `f` on each parameter, in a stable order.
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param));

    /// Total scalar parameter count.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// Zero all gradients.
    fn zero_grads(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Global L2 norm of all gradients (for clipping).
    fn grad_l2_norm(&mut self) -> f32 {
        let mut acc = 0f64;
        self.visit_params(&mut |p| {
            acc += p.grad.iter().map(|g| (*g as f64).powi(2)).sum::<f64>();
        });
        acc.sqrt() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Two(Param, Param);
    impl Visitable for Two {
        fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
            f(&mut self.0);
            f(&mut self.1);
        }
    }

    #[test]
    fn zeros_and_randn() {
        let mut rng = SimRng::seed_from_u64(1);
        let z = Param::zeros("z", 8);
        assert_eq!(z.len(), 8);
        assert!(z.value.iter().all(|&v| v == 0.0));
        let r = Param::randn("r", 1000, 0.02, &mut rng);
        let mean: f32 = r.value.iter().sum::<f32>() / 1000.0;
        assert!(mean.abs() < 0.01);
        let std = (r.value.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 1000.0).sqrt();
        assert!((std - 0.02).abs() < 0.005, "std {std}");
    }

    #[test]
    fn visitor_counts_and_zeroes() {
        let mut m = Two(Param::zeros("a", 3), Param::zeros("b", 5));
        assert_eq!(m.param_count(), 8);
        m.0.grad = vec![3.0, 0.0, 4.0];
        assert!((m.grad_l2_norm() - 5.0).abs() < 1e-6);
        m.zero_grads();
        assert_eq!(m.grad_l2_norm(), 0.0);
    }
}
