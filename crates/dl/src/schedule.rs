//! Learning-rate schedules.
//!
//! Fine-tuning schedules matter to this reproduction twice over: the §III
//! byte-change profile depends on late-training update magnitudes (decayed
//! learning rates shrink updates into the low mantissa bytes), and the
//! paper lists the learning rate among the hyperparameters that — like
//! `act_aft_steps` — the user tunes per model.

use serde::{Deserialize, Serialize};

/// A learning-rate schedule over a fixed number of steps.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant rate.
    Constant {
        /// The rate.
        lr: f32,
    },
    /// Linear decay from `lr` to `lr_end` over `total` steps.
    Linear {
        /// Initial rate.
        lr: f32,
        /// Final rate.
        lr_end: f32,
        /// Total steps.
        total: u64,
    },
    /// Linear warmup to `lr` over `warmup` steps, then cosine decay to
    /// `lr_end` at `total`.
    CosineWarmup {
        /// Peak rate.
        lr: f32,
        /// Final rate.
        lr_end: f32,
        /// Warmup steps.
        warmup: u64,
        /// Total steps.
        total: u64,
    },
}

impl LrSchedule {
    /// The learning rate at (0-based) `step`.
    pub fn at(&self, step: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::Linear { lr, lr_end, total } => {
                if total <= 1 {
                    return lr_end;
                }
                let t = (step.min(total - 1)) as f32 / (total - 1) as f32;
                lr + (lr_end - lr) * t
            }
            LrSchedule::CosineWarmup { lr, lr_end, warmup, total } => {
                if warmup > 0 && step < warmup {
                    return lr * (step + 1) as f32 / warmup as f32;
                }
                let span = total.saturating_sub(warmup).max(1);
                let t = (step.saturating_sub(warmup)).min(span) as f32 / span as f32;
                let cos = 0.5 * (1.0 + (std::f32::consts::PI * t).cos());
                lr_end + (lr - lr_end) * cos
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 1e-3 };
        assert_eq!(s.at(0), 1e-3);
        assert_eq!(s.at(1_000_000), 1e-3);
    }

    #[test]
    fn linear_endpoints_and_midpoint() {
        let s = LrSchedule::Linear { lr: 1.0, lr_end: 0.0, total: 101 };
        assert_eq!(s.at(0), 1.0);
        assert!((s.at(50) - 0.5).abs() < 1e-6);
        assert_eq!(s.at(100), 0.0);
        // Clamped beyond the end.
        assert_eq!(s.at(500), 0.0);
    }

    #[test]
    fn linear_degenerate_total() {
        let s = LrSchedule::Linear { lr: 1.0, lr_end: 0.25, total: 1 };
        assert_eq!(s.at(0), 0.25);
    }

    #[test]
    fn cosine_warmup_shape() {
        let s = LrSchedule::CosineWarmup { lr: 1.0, lr_end: 0.1, warmup: 10, total: 110 };
        // Warmup ramps up.
        assert!(s.at(0) < s.at(5));
        assert!(s.at(5) < s.at(9));
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Then decays monotonically.
        assert!(s.at(20) > s.at(60));
        assert!(s.at(60) > s.at(105));
        // Ends at lr_end.
        assert!((s.at(110) - 0.1).abs() < 1e-6);
        // Midpoint of cosine ≈ average of peak and floor.
        let mid = s.at(10 + 50);
        assert!((mid - 0.55).abs() < 0.02, "mid {mid}");
    }

    #[test]
    fn cosine_without_warmup() {
        let s = LrSchedule::CosineWarmup { lr: 2.0, lr_end: 0.0, warmup: 0, total: 100 };
        assert!((s.at(0) - 2.0).abs() < 1e-5);
        assert!(s.at(99) < 0.01);
    }
}
