//! Dense math kernels: blocked matmul (with optional multi-threading via
//! std scoped threads), softmax, and elementwise helpers. These are
//! the compute kernels behind the layers in [`crate::layers`].

use crate::tensor::Tensor;
use std::sync::OnceLock;

/// Threshold (in output elements) above which matmul spawns worker threads.
const PAR_THRESHOLD: usize = 64 * 64;

/// Cached core count: `available_parallelism` can issue a syscall, so look it
/// up once instead of on every call. Shared by the matmul fan-out here and
/// the experiment sweep runner in `teco_offload`.
pub fn num_cores() -> usize {
    static CORES: OnceLock<usize> = OnceLock::new();
    *CORES.get_or_init(|| std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1))
}

/// `C = A · B` for 2-D tensors `[m,k]·[k,n] → [m,n]`.
///
/// Inner loops are written i-k-j over row-major data so the hot loop is a
/// stride-1 FMA over `B`'s rows — the standard cache-friendly ordering.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    let a_d = a.data();
    let b_d = b.data();

    // Capping threads at `m` means every chunk below is non-empty, and a
    // single-chunk split degenerates to the serial loop without a spawn.
    let nthreads = num_cores().min(m).min(8);
    if m * n >= PAR_THRESHOLD && nthreads > 1 {
        let rows_per = m.div_ceil(nthreads);
        std::thread::scope(|s| {
            let mut chunks = c.data_mut().chunks_mut(rows_per * n).enumerate();
            // Run the first chunk on the calling thread instead of parking it
            // behind joins; spawn only for the rest.
            let (_, first) = chunks.next().expect("m >= 1 guarantees a chunk");
            for (ci, chunk) in chunks {
                let start = ci * rows_per;
                s.spawn(move || {
                    for (li, c_row) in chunk.chunks_mut(n).enumerate() {
                        let i = start + li;
                        matmul_row(&a_d[i * k..(i + 1) * k], b_d, n, c_row);
                    }
                });
            }
            for (li, c_row) in first.chunks_mut(n).enumerate() {
                matmul_row(&a_d[li * k..(li + 1) * k], b_d, n, c_row);
            }
        });
    } else {
        for i in 0..m {
            let c_start = i * n;
            // Split borrow: read A row by index, write C row slice.
            let a_row = &a_d[i * k..(i + 1) * k];
            matmul_row(a_row, b_d, n, &mut c.data_mut()[c_start..c_start + n]);
        }
    }
    c
}

#[inline]
fn matmul_row(a_row: &[f32], b: &[f32], n: usize, c_row: &mut [f32]) {
    for (kk, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        let b_row = &b[kk * n..kk * n + n];
        for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
            *c_v += a_ik * b_v;
        }
    }
}

/// `C = Aᵀ · B` without materializing the transpose: `[k,m]ᵀ·[k,n] → [m,n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (k, m) = (a.rows(), a.cols());
    let (kb, n) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_tn inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    for kk in 0..k {
        let a_row = a.row(kk);
        let b_row = b.row(kk);
        for (i, &a_ki) in a_row.iter().enumerate() {
            if a_ki == 0.0 {
                continue;
            }
            let c_row = &mut c.data_mut()[i * n..(i + 1) * n];
            for (c_v, &b_v) in c_row.iter_mut().zip(b_row) {
                *c_v += a_ki * b_v;
            }
        }
    }
    c
}

/// `C = A · Bᵀ` without materializing the transpose: `[m,k]·[n,k]ᵀ → [m,n]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = (a.rows(), a.cols());
    let (n, kb) = (b.rows(), b.cols());
    assert_eq!(k, kb, "matmul_nt inner dims {k} vs {kb}");
    let mut c = Tensor::zeros(&[m, n]);
    for i in 0..m {
        let a_row = a.row(i);
        for j in 0..n {
            let b_row = b.row(j);
            let mut acc = 0f32;
            for (x, y) in a_row.iter().zip(b_row) {
                acc += x * y;
            }
            c.set(i, j, acc);
        }
    }
    c
}

/// Add a bias row vector to each row of a 2-D tensor.
pub fn add_bias(x: &mut Tensor, bias: &[f32]) {
    let n = x.cols();
    assert_eq!(bias.len(), n);
    for r in 0..x.rows() {
        for (v, b) in x.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
}

/// Numerically-stable row-wise softmax, in place.
pub fn softmax_rows(x: &mut Tensor) {
    for r in 0..x.rows() {
        let row = x.row_mut(r);
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0f32;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    }
}

/// GELU activation (tanh approximation, as used by BERT/GPT-2).
#[inline]
pub fn gelu(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/π)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// Derivative of [`gelu`].
#[inline]
pub fn gelu_grad(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = 0.044715 * x * x * x;
    let t = (C * (x + x3)).tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// ReLU activation.
#[inline]
pub fn relu(x: f32) -> f32 {
    x.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v)
    }

    #[test]
    fn matmul_small_known() {
        let a = t(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = matmul(&a, &b);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let n = 17;
        let mut eye = Tensor::zeros(&[n, n]);
        for i in 0..n {
            eye.set(i, i, 1.0);
        }
        let x = t(&[n, n], (0..n * n).map(|i| (i as f32).sin()).collect());
        let y = matmul(&x, &eye);
        for (a, b) in x.data().iter().zip(y.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_parallel_matches_serial() {
        // Cross the PAR_THRESHOLD and compare against the naive definition.
        let m = 70;
        let k = 40;
        let n = 70;
        let a = t(&[m, k], (0..m * k).map(|i| ((i * 37 % 101) as f32 - 50.0) / 25.0).collect());
        let b = t(&[k, n], (0..k * n).map(|i| ((i * 53 % 97) as f32 - 48.0) / 24.0).collect());
        let c = matmul(&a, &b);
        for i in (0..m).step_by(13) {
            for j in (0..n).step_by(17) {
                let mut acc = 0f32;
                for kk in 0..k {
                    acc += a.at(i, kk) * b.at(kk, j);
                }
                assert!((c.at(i, j) - acc).abs() < 1e-3, "({i},{j}): {} vs {acc}", c.at(i, j));
            }
        }
    }

    #[test]
    fn matmul_tn_matches_explicit_transpose() {
        let a = t(&[3, 2], vec![1., 2., 3., 4., 5., 6.]);
        let b = t(&[3, 4], (0..12).map(|i| i as f32).collect());
        let c1 = matmul_tn(&a, &b);
        let c2 = matmul(&a.transposed(), &b);
        assert_eq!(c1.shape(), c2.shape());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    fn matmul_nt_matches_explicit_transpose() {
        let a = t(&[2, 3], (0..6).map(|i| i as f32 + 1.0).collect());
        let b = t(&[4, 3], (0..12).map(|i| (i as f32) * 0.5).collect());
        let c1 = matmul_nt(&a, &b);
        let c2 = matmul(&a, &b.transposed());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_dim_mismatch_panics() {
        matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bias_and_softmax() {
        let mut x = t(&[2, 3], vec![0., 0., 0., 1., 2., 3.]);
        add_bias(&mut x, &[1., 1., 1.]);
        assert_eq!(x.row(0), &[1., 1., 1.]);
        softmax_rows(&mut x);
        for r in 0..2 {
            let s: f32 = x.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-6);
        }
        // Uniform logits → uniform probabilities.
        for &p in x.row(0) {
            assert!((p - 1.0 / 3.0).abs() < 1e-6);
        }
        // Monotone logits → monotone probabilities.
        assert!(x.at(1, 0) < x.at(1, 1) && x.at(1, 1) < x.at(1, 2));
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let mut x = t(&[1, 3], vec![1000.0, 1001.0, 1002.0]);
        softmax_rows(&mut x);
        let s: f32 = x.row(0).iter().sum();
        assert!((s - 1.0).abs() < 1e-6);
        assert!(x.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn gelu_properties() {
        assert_eq!(gelu(0.0), 0.0);
        assert!(gelu(3.0) > 2.9); // ≈ identity for large positive x
        assert!(gelu(-5.0).abs() < 1e-3); // ≈ 0 for large negative x
                                          // Numeric derivative check.
        for &x in &[-2.0f32, -0.5, 0.0, 0.7, 2.3] {
            let h = 1e-3;
            let num = (gelu(x + h) - gelu(x - h)) / (2.0 * h);
            assert!((gelu_grad(x) - num).abs() < 1e-2, "x={x}: {} vs {num}", gelu_grad(x));
        }
    }

    #[test]
    fn relu_basics() {
        assert_eq!(relu(-1.0), 0.0);
        assert_eq!(relu(2.5), 2.5);
    }
}
