//! A small dense FP32 tensor type.
//!
//! The convergence and profiling experiments need *real* training dynamics,
//! not a framework: this tensor is a contiguous row-major `Vec<f32>` with
//! the handful of shape operations the layer implementations require. All
//! heavy math lives in [`crate::ops`].

use std::fmt;

/// A dense, row-major FP32 tensor.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{:?}(", self.shape)?;
        let preview: Vec<String> = self.data.iter().take(6).map(|x| format!("{x:.4}")).collect();
        write!(f, "{}{})", preview.join(", "), if self.data.len() > 6 { ", …" } else { "" })
    }
}

impl Tensor {
    /// Zero-filled tensor.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![0.0; n] }
    }

    /// Constant-filled tensor.
    pub fn full(shape: &[usize], v: f32) -> Self {
        let n = shape.iter().product();
        Tensor { shape: shape.to_vec(), data: vec![v; n] }
    }

    /// Build from existing data; length must match the shape product.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "shape {shape:?} incompatible with {} elements",
            data.len()
        );
        Tensor { shape: shape.to_vec(), data }
    }

    /// The shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }
    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
    /// Number of rows of a 2-D tensor.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "rows() needs a 2-D tensor");
        self.shape[0]
    }
    /// Number of columns of a 2-D tensor.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.len(), 2, "cols() needs a 2-D tensor");
        self.shape[1]
    }

    /// Flat data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }
    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
    /// Consume into the flat data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// 2-D element access.
    #[inline]
    pub fn at(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c]
    }
    /// 2-D element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.shape.len(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    /// A view of row `r` of a 2-D tensor.
    pub fn row(&self, r: usize) -> &[f32] {
        let w = self.cols();
        &self.data[r * w..(r + 1) * w]
    }
    /// A mutable view of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        let w = self.cols();
        &mut self.data[r * w..(r + 1) * w]
    }

    /// Reinterpret with a new shape of equal element count.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        assert_eq!(shape.iter().product::<usize>(), self.data.len());
        self.shape = shape.to_vec();
        self
    }

    /// Element-wise map into a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// In-place element-wise `self += other` (shapes must match).
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place scale.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt() as f32
    }

    /// Transposed copy of a 2-D tensor.
    pub fn transposed(&self) -> Tensor {
        assert_eq!(self.shape.len(), 2);
        let (r, c) = (self.shape[0], self.shape[1]);
        let mut out = Tensor::zeros(&[c, r]);
        for i in 0..r {
            for j in 0..c {
                out.data[j * r + i] = self.data[i * c + j];
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_shape() {
        let t = Tensor::zeros(&[2, 3]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.len(), 6);
        assert_eq!(t.rows(), 2);
        assert_eq!(t.cols(), 3);
        let u = Tensor::full(&[4], 2.5);
        assert_eq!(u.sum(), 10.0);
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn from_vec_checks_length() {
        Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn element_access() {
        let mut t = Tensor::zeros(&[2, 3]);
        t.set(1, 2, 7.0);
        assert_eq!(t.at(1, 2), 7.0);
        assert_eq!(t.row(1), &[0.0, 0.0, 7.0]);
        t.row_mut(0)[1] = 3.0;
        assert_eq!(t.at(0, 1), 3.0);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let u = t.clone().reshape(&[3, 2]);
        assert_eq!(u.shape(), &[3, 2]);
        assert_eq!(u.data(), t.data());
    }

    #[test]
    fn map_scale_add() {
        let t = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]);
        let sq = t.map(|x| x * x);
        assert_eq!(sq.data(), &[1.0, 4.0, 9.0]);
        let mut u = t.clone();
        u.add_assign(&t);
        assert_eq!(u.data(), &[2.0, 4.0, 6.0]);
        u.scale(0.5);
        assert_eq!(u.data(), t.data());
    }

    #[test]
    fn norms_and_means() {
        let t = Tensor::from_vec(&[2, 2], vec![3.0, 4.0, 0.0, 0.0]);
        assert!((t.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(t.mean(), 1.75);
    }

    #[test]
    fn transpose() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|i| i as f32).collect());
        let u = t.transposed();
        assert_eq!(u.shape(), &[3, 2]);
        for i in 0..2 {
            for j in 0..3 {
                assert_eq!(t.at(i, j), u.at(j, i));
            }
        }
    }
}
