//! End-to-end trainable models: a small GPT-style language model and a
//! GCNII node classifier. These are the *real* training workloads behind
//! the paper's convergence/accuracy experiments (Figs. 2, 10, 13;
//! Table V); the billion-parameter configurations of Table III are modeled
//! for *timing* by [`crate::modelzoo`].

use crate::layers::{
    Embedding, GcnIILayer, LayerNorm, Linear, NormAdj, Param, TransformerBlock, Visitable,
};
use crate::loss::softmax_cross_entropy;
use crate::tensor::Tensor;
use teco_sim::SimRng;

/// Configuration for [`TinyGpt`].
#[derive(Debug, Clone, Copy)]
pub struct TinyGptConfig {
    /// Vocabulary size.
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Attention heads.
    pub heads: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Maximum sequence length (positional table size).
    pub max_seq: usize,
}

impl Default for TinyGptConfig {
    fn default() -> Self {
        TinyGptConfig { vocab: 64, dim: 32, heads: 4, layers: 2, max_seq: 32 }
    }
}

/// A small causal language model: token+position embeddings, pre-norm
/// transformer blocks, final LayerNorm, and a vocabulary head.
#[derive(Debug, Clone)]
pub struct TinyGpt {
    cfg: TinyGptConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    ln_f: LayerNorm,
    head: Linear,
    cache_tokens: Option<Vec<usize>>,
}

impl TinyGpt {
    /// Build with N(0, 0.02) initialization.
    pub fn new(cfg: TinyGptConfig, rng: &mut SimRng) -> Self {
        let std = 0.02;
        TinyGpt {
            tok_emb: Embedding::new("tok_emb", cfg.vocab, cfg.dim, std, rng),
            pos_emb: Embedding::new("pos_emb", cfg.max_seq, cfg.dim, std, rng),
            blocks: (0..cfg.layers)
                .map(|i| TransformerBlock::new(&format!("block{i}"), cfg.dim, cfg.heads, true, rng))
                .collect(),
            ln_f: LayerNorm::new("ln_f", cfg.dim),
            head: Linear::new("head", cfg.dim, cfg.vocab, std, rng),
            cfg,
            cache_tokens: None,
        }
    }

    /// The configuration.
    pub fn config(&self) -> TinyGptConfig {
        self.cfg
    }

    /// Forward one sequence of token ids; returns logits `[T, vocab]`.
    pub fn forward(&mut self, tokens: &[usize]) -> Tensor {
        assert!(tokens.len() <= self.cfg.max_seq, "sequence too long");
        let te = self.tok_emb.forward(tokens);
        let positions: Vec<usize> = (0..tokens.len()).collect();
        let pe = self.pos_emb.forward(&positions);
        let mut x = te;
        x.add_assign(&pe);
        for b in &mut self.blocks {
            x = b.forward(&x);
        }
        let x = self.ln_f.forward(&x);
        self.cache_tokens = Some(tokens.to_vec());
        self.head.forward(&x)
    }

    /// Backward from d_logits through the whole stack.
    pub fn backward(&mut self, d_logits: &Tensor) {
        let dx = self.head.backward(d_logits);
        let mut dx = self.ln_f.backward(&dx);
        for b in self.blocks.iter_mut().rev() {
            dx = b.backward(&dx);
        }
        // Token and position embeddings both received x, so both get dx.
        self.tok_emb.backward(&dx);
        self.pos_emb.backward(&dx);
    }

    /// Compute mean next-token cross-entropy on one sequence and accumulate
    /// gradients (scaled by `grad_scale` for batch averaging). Returns the
    /// loss.
    pub fn train_sequence(&mut self, tokens: &[usize], grad_scale: f32) -> f32 {
        assert!(tokens.len() >= 2, "need at least 2 tokens");
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let logits = self.forward(inputs);
        let (loss, mut d_logits) = softmax_cross_entropy(&logits, targets);
        d_logits.scale(grad_scale);
        self.backward(&d_logits);
        loss
    }

    /// Greedy autoregressive generation: extend `prompt` token by token
    /// (argmax decoding) up to `max_new` new tokens or the context limit.
    pub fn generate(&mut self, prompt: &[usize], max_new: usize) -> Vec<usize> {
        assert!(!prompt.is_empty());
        let mut tokens = prompt.to_vec();
        for _ in 0..max_new {
            if tokens.len() >= self.cfg.max_seq {
                break;
            }
            let logits = self.forward(&tokens);
            let last = logits.row(logits.rows() - 1);
            let next = last
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .map(|(i, _)| i)
                .unwrap();
            tokens.push(next);
        }
        tokens
    }

    /// Evaluate mean cross-entropy on one sequence without touching grads.
    pub fn eval_sequence(&mut self, tokens: &[usize]) -> f32 {
        let inputs = &tokens[..tokens.len() - 1];
        let targets = &tokens[1..];
        let logits = self.forward(inputs);
        softmax_cross_entropy(&logits, targets).0
    }
}

impl Visitable for TinyGpt {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.tok_emb.visit_params(f);
        self.pos_emb.visit_params(f);
        for b in &mut self.blocks {
            b.visit_params(f);
        }
        self.ln_f.visit_params(f);
        self.head.visit_params(f);
    }
}

/// Configuration for [`GcnIIModel`].
#[derive(Debug, Clone, Copy)]
pub struct GcnConfig {
    /// Input feature width.
    pub in_dim: usize,
    /// Hidden width.
    pub hidden: usize,
    /// Number of GCNII propagation layers.
    pub layers: usize,
    /// Output classes.
    pub classes: usize,
    /// Initial-residual α.
    pub alpha: f32,
    /// Identity-map decay λ.
    pub lambda: f32,
}

impl Default for GcnConfig {
    fn default() -> Self {
        GcnConfig { in_dim: 8, hidden: 16, layers: 4, classes: 4, alpha: 0.1, lambda: 0.5 }
    }
}

/// GCNII node classifier: input projection → L GCNII layers (with the
/// initial representation residual) → output projection.
#[derive(Debug, Clone)]
pub struct GcnIIModel {
    cfg: GcnConfig,
    input: Linear,
    layers: Vec<GcnIILayer>,
    output: Linear,
    cache_h0: Option<Tensor>,
}

impl GcnIIModel {
    /// Build the model.
    pub fn new(cfg: GcnConfig, rng: &mut SimRng) -> Self {
        let std = (1.0 / cfg.in_dim as f32).sqrt();
        GcnIIModel {
            input: Linear::new("gcn.in", cfg.in_dim, cfg.hidden, std, rng),
            layers: (1..=cfg.layers)
                .map(|l| {
                    GcnIILayer::new(&format!("gcn.l{l}"), cfg.hidden, cfg.alpha, cfg.lambda, l, rng)
                })
                .collect(),
            output: Linear::new("gcn.out", cfg.hidden, cfg.classes, std, rng),
            cfg,
            cache_h0: None,
        }
    }

    /// Forward all nodes: features `[n, in_dim]` → logits `[n, classes]`.
    pub fn forward(&mut self, adj: &NormAdj, x: &Tensor) -> Tensor {
        let h0 = self.input.forward(x).map(|v| v.max(0.0));
        let mut h = h0.clone();
        for l in &mut self.layers {
            h = l.forward(adj, &h, &h0);
        }
        self.cache_h0 = Some(h0);
        self.output.forward(&h)
    }

    /// Backward from d_logits.
    pub fn backward(&mut self, adj: &NormAdj, d_logits: &Tensor) {
        let mut dh = self.output.backward(d_logits);
        let mut dh0_acc = Tensor::zeros(&[dh.rows(), self.cfg.hidden]);
        for l in self.layers.iter_mut().rev() {
            let (dh_prev, dh0) = l.backward(adj, &dh);
            dh = dh_prev;
            dh0_acc.add_assign(&dh0);
        }
        dh0_acc.add_assign(&dh); // layer-1 input is h0 itself
                                 // Through the input ReLU.
        let h0 = self.cache_h0.take().expect("backward before forward");
        for (d, &v) in dh0_acc.data_mut().iter_mut().zip(h0.data()) {
            if v <= 0.0 {
                *d = 0.0;
            }
        }
        self.input.backward(&dh0_acc);
    }

    /// Node embeddings after the GCNII stack (before the classifier head),
    /// for the link-prediction task.
    pub fn embed(&mut self, adj: &NormAdj, x: &Tensor) -> Tensor {
        let h0 = self.input.forward(x).map(|v| v.max(0.0));
        let mut h = h0.clone();
        for l in &mut self.layers {
            h = l.forward(adj, &h, &h0);
        }
        self.cache_h0 = Some(h0);
        h
    }

    /// Backward from a gradient on the embeddings (skipping the classifier
    /// head) — the link-prediction backward path.
    pub fn backward_from_hidden(&mut self, adj: &NormAdj, d_h: &Tensor) {
        let mut dh = d_h.clone();
        let mut dh0_acc = Tensor::zeros(&[dh.rows(), self.cfg.hidden]);
        for l in self.layers.iter_mut().rev() {
            let (dh_prev, dh0) = l.backward(adj, &dh);
            dh = dh_prev;
            dh0_acc.add_assign(&dh0);
        }
        dh0_acc.add_assign(&dh);
        let h0 = self.cache_h0.take().expect("backward before forward");
        for (d, &v) in dh0_acc.data_mut().iter_mut().zip(h0.data()) {
            if v <= 0.0 {
                *d = 0.0;
            }
        }
        self.input.backward(&dh0_acc);
    }

    /// One *link-prediction* training step (Table III's GCNII task): score
    /// each candidate edge `(u, v)` as `h_u · h_v`, BCE against the labels
    /// (1 = real edge, 0 = sampled non-edge). Returns (loss, accuracy).
    pub fn link_prediction_step(
        &mut self,
        adj: &NormAdj,
        x: &Tensor,
        pairs: &[(usize, usize)],
        labels: &[f32],
    ) -> (f32, f32) {
        assert_eq!(pairs.len(), labels.len());
        let h = self.embed(adj, x);
        let logits: Vec<f32> = pairs
            .iter()
            .map(|&(u, v)| h.row(u).iter().zip(h.row(v)).map(|(a, b)| a * b).sum())
            .collect();
        let (loss, d_logits) = crate::loss::bce_with_logits(&logits, labels);
        let acc = crate::loss::binary_accuracy(&logits, labels);
        // d h_u += g · h_v ; d h_v += g · h_u.
        let mut dh = Tensor::zeros(&[h.rows(), h.cols()]);
        for (&(u, v), &g) in pairs.iter().zip(&d_logits) {
            for c in 0..h.cols() {
                dh.data_mut()[u * h.cols() + c] += g * h.at(v, c);
                dh.data_mut()[v * h.cols() + c] += g * h.at(u, c);
            }
        }
        self.backward_from_hidden(adj, &dh);
        (loss, acc)
    }

    /// One full-graph training step; returns (loss, accuracy).
    pub fn train_step(&mut self, adj: &NormAdj, x: &Tensor, labels: &[usize]) -> (f32, f32) {
        let logits = self.forward(adj, x);
        let (loss, d) = softmax_cross_entropy(&logits, labels);
        let acc = crate::loss::accuracy(&logits, labels);
        self.backward(adj, &d);
        (loss, acc)
    }
}

impl Visitable for GcnIIModel {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.input.visit_params(f);
        for l in &mut self.layers {
            l.visit_params(f);
        }
        self.output.visit_params(f);
    }
}

/// A two-layer MLP classifier (used by the Table V accuracy-proxy tasks).
#[derive(Debug, Clone)]
pub struct MlpClassifier {
    fc1: Linear,
    act: crate::layers::Activation,
    fc2: Linear,
}

impl MlpClassifier {
    /// Build `in_dim → hidden → classes` with GELU.
    pub fn new(in_dim: usize, hidden: usize, classes: usize, rng: &mut SimRng) -> Self {
        let std = (2.0 / in_dim as f32).sqrt();
        MlpClassifier {
            fc1: Linear::new("mlp.fc1", in_dim, hidden, std, rng),
            act: crate::layers::Activation::new(crate::layers::Act::Gelu),
            fc2: Linear::new("mlp.fc2", hidden, classes, std, rng),
        }
    }

    /// Forward: features `[n, in]` → logits `[n, classes]`.
    pub fn forward(&mut self, x: &Tensor) -> Tensor {
        let h = self.act.forward(&self.fc1.forward(x));
        self.fc2.forward(&h)
    }

    /// One training step on a batch; returns (loss, accuracy).
    pub fn train_step(&mut self, x: &Tensor, labels: &[usize]) -> (f32, f32) {
        let logits = self.forward(x);
        let (loss, d) = softmax_cross_entropy(&logits, labels);
        let acc = crate::loss::accuracy(&logits, labels);
        let dh = self.fc2.backward(&d);
        let dh = self.act.backward(&dh);
        self.fc1.backward(&dh);
        (loss, acc)
    }

    /// Accuracy on a batch without touching gradients.
    pub fn eval(&mut self, x: &Tensor, labels: &[usize]) -> f32 {
        let logits = self.forward(x);
        crate::loss::accuracy(&logits, labels)
    }
}

impl Visitable for MlpClassifier {
    fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.fc1.visit_params(f);
        self.fc2.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::MarkovTextGen;
    use crate::optim::{AdamConfig, OffloadedAdam};

    #[test]
    fn tinygpt_shapes() {
        let mut rng = SimRng::seed_from_u64(5);
        let cfg = TinyGptConfig { vocab: 16, dim: 8, heads: 2, layers: 2, max_seq: 12 };
        let mut m = TinyGpt::new(cfg, &mut rng);
        let logits = m.forward(&[1, 2, 3, 4]);
        assert_eq!(logits.shape(), &[4, 16]);
        assert!(m.param_count() > 0);
    }

    #[test]
    fn tinygpt_loss_decreases_on_fixed_batch() {
        // Overfit a single repeated sequence — loss must fall sharply.
        let mut rng = SimRng::seed_from_u64(7);
        let cfg = TinyGptConfig { vocab: 8, dim: 16, heads: 2, layers: 1, max_seq: 10 };
        let mut m = TinyGpt::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 3e-3, ..Default::default() });
        let seq = [1usize, 2, 3, 4, 5, 6, 7, 1, 2];
        let first = m.eval_sequence(&seq);
        for _ in 0..60 {
            m.zero_grads();
            m.train_sequence(&seq, 1.0);
            opt.step(&mut m);
        }
        let last = m.eval_sequence(&seq);
        assert!(last < first * 0.5, "loss {first} → {last}");
    }

    #[test]
    fn tinygpt_learns_markov_structure() {
        let mut rng = SimRng::seed_from_u64(11);
        let gen = MarkovTextGen::new(16, 2, &mut rng);
        let cfg = TinyGptConfig { vocab: 16, dim: 16, heads: 2, layers: 1, max_seq: 16 };
        let mut m = TinyGpt::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 2e-3, ..Default::default() });
        let mut data_rng = rng.fork("data");
        let mut first = 0.0;
        let mut last = 0.0;
        for step in 0..80 {
            let seq = gen.sample(12, &mut data_rng);
            m.zero_grads();
            let loss = m.train_sequence(&seq, 1.0);
            if step == 0 {
                first = loss;
            }
            last = loss;
            opt.step(&mut m);
        }
        assert!(last < first, "loss {first} → {last}");
        assert!(last < (16f32).ln(), "below uniform entropy");
    }

    #[test]
    fn generation_follows_learned_transitions() {
        // After training on Markov data, greedy decoding should emit only
        // legal transitions most of the time.
        let mut rng = SimRng::seed_from_u64(77);
        let gen = MarkovTextGen::new(12, 2, &mut rng);
        let cfg = TinyGptConfig { vocab: 12, dim: 16, heads: 2, layers: 1, max_seq: 24 };
        let mut m = TinyGpt::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 3e-3, ..Default::default() });
        let mut data_rng = rng.fork("data");
        for _ in 0..150 {
            let seq = gen.sample(16, &mut data_rng);
            m.zero_grads();
            m.train_sequence(&seq, 1.0);
            opt.step(&mut m);
        }
        let out = m.generate(&[0], 20);
        assert!(out.len() > 1 && out.len() <= 24);
        assert!(out.iter().all(|&t| t < 12));
        // Determinism of greedy decoding.
        assert_eq!(out, m.generate(&[0], 20));
    }

    #[test]
    fn gcn_learns_communities() {
        use crate::data::community_graph;
        let mut rng = SimRng::seed_from_u64(13);
        let g = community_graph(40, 4, 0.5, 0.02, 8, &mut rng);
        let adj = NormAdj::from_edges(g.n, &g.edges);
        let cfg =
            GcnConfig { in_dim: 8, hidden: 16, layers: 3, classes: 4, alpha: 0.1, lambda: 0.5 };
        let mut m = GcnIIModel::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        let mut accs = Vec::new();
        for _ in 0..60 {
            m.zero_grads();
            let (_, acc) = m.train_step(&adj, &g.features, &g.labels);
            accs.push(acc);
            opt.step(&mut m);
        }
        let early = accs[0];
        let late = *accs.last().unwrap();
        assert!(late > early.max(0.5), "accuracy {early} → {late}");
    }

    #[test]
    fn gcn_link_prediction_learns() {
        use crate::data::community_graph;
        let mut rng = SimRng::seed_from_u64(41);
        let g = community_graph(40, 4, 0.5, 0.03, 8, &mut rng);
        let adj = NormAdj::from_edges(g.n, &g.edges);
        let cfg =
            GcnConfig { in_dim: 8, hidden: 16, layers: 2, classes: 4, alpha: 0.1, lambda: 0.5 };
        let mut m = GcnIIModel::new(cfg, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        // Positive pairs = real edges; negatives = random non-edges.
        let mut pairs: Vec<(usize, usize)> = g.edges.iter().take(60).copied().collect();
        let mut labels = vec![1.0f32; pairs.len()];
        let mut tries = 0;
        while labels.iter().filter(|&&l| l == 0.0).count() < 60 && tries < 10_000 {
            tries += 1;
            let (u, v) = (rng.index(g.n), rng.index(g.n));
            if u != v && !g.edges.contains(&(u.min(v), u.max(v))) {
                pairs.push((u, v));
                labels.push(0.0);
            }
        }
        let mut acc = 0.0;
        let mut first = 0.0;
        for step in 0..250 {
            m.zero_grads();
            let (_, a) = m.link_prediction_step(&adj, &g.features, &pairs, &labels);
            if step == 0 {
                first = a;
            }
            acc = a;
            opt.step(&mut m);
        }
        assert!(acc > first.max(0.65), "link-prediction accuracy {first} → {acc}");
    }

    #[test]
    fn mlp_learns_clusters() {
        use crate::data::gaussian_clusters;
        let mut rng = SimRng::seed_from_u64(31);
        let data = gaussian_clusters(120, 6, 3, 0.2, &mut rng);
        let mut m = MlpClassifier::new(6, 16, 3, &mut rng);
        let mut opt = OffloadedAdam::new(AdamConfig { lr: 5e-3, ..Default::default() });
        let mut final_acc = 0.0;
        for _ in 0..80 {
            m.zero_grads();
            let (_, acc) = m.train_step(&data.features, &data.labels);
            final_acc = acc;
            opt.step(&mut m);
        }
        assert!(final_acc > 0.9, "accuracy {final_acc}");
    }

    #[test]
    fn backward_is_deterministic() {
        let mut rng1 = SimRng::seed_from_u64(21);
        let mut rng2 = SimRng::seed_from_u64(21);
        let cfg = TinyGptConfig { vocab: 8, dim: 8, heads: 2, layers: 1, max_seq: 8 };
        let mut a = TinyGpt::new(cfg, &mut rng1);
        let mut b = TinyGpt::new(cfg, &mut rng2);
        let seq = [1usize, 2, 3, 4];
        a.zero_grads();
        b.zero_grads();
        let la = a.train_sequence(&seq, 1.0);
        let lb = b.train_sequence(&seq, 1.0);
        assert_eq!(la, lb);
        let mut ga = Vec::new();
        let mut gb = Vec::new();
        a.visit_params(&mut |p| ga.extend_from_slice(&p.grad));
        b.visit_params(&mut |p| gb.extend_from_slice(&p.grad));
        assert_eq!(ga, gb);
    }
}
