//! # teco-dl — a minimal deep-learning framework
//!
//! The DL substrate for the TECO (SC'24) reproduction. The paper's
//! convergence, accuracy, and byte-change-profiling experiments need *real*
//! training dynamics, so this crate implements — from scratch — everything
//! those experiments require:
//!
//! - [`tensor`] / [`ops`]: dense FP32 tensors and kernels (blocked matmul
//!   with optional crossbeam-threaded rows, softmax, GELU);
//! - [`layers`]: Linear, LayerNorm, Embedding, causal multi-head attention,
//!   pre-norm transformer blocks, and GCNII graph convolution — all with
//!   explicit, finite-difference-validated backward passes;
//! - [`loss`]: softmax cross-entropy (+ perplexity), MSE, accuracy;
//! - [`optim`]: the CPU-resident **ZeRO-Offload-style ADAM** with FP32
//!   master weights and an explicit GPU-writeback hook (where the DBA merge
//!   plugs in), plus gradient clipping and SGD;
//! - [`half`]: IEEE binary16 conversion (the GPU-side mixed-precision cast);
//! - [`model`]: a trainable GPT-style LM and a GCNII node classifier;
//! - [`data`]: synthetic learnable datasets (Markov text, Gaussian
//!   clusters, SBM community graphs);
//! - [`modelzoo`]: the Table III / Table VI model configurations with the
//!   FLOP and byte arithmetic the timing models consume;
//! - [`profile`]: the Fig. 2 value-changed-bytes profiler.

pub mod data;
pub mod half;
pub mod layers;
pub mod loss;
pub mod model;
pub mod modelzoo;
pub mod ops;
pub mod optim;
pub mod profile;
pub mod schedule;
pub mod seq2seq;
pub mod tensor;

pub use layers::{capture_params, restore_params, Param, ParamSnapshot, Visitable};
pub use model::{GcnConfig, GcnIIModel, TinyGpt, TinyGptConfig};
pub use modelzoo::{ModelKind, ModelSpec};
pub use ops::num_cores;
pub use optim::{AdamConfig, AdamParamSnapshot, AdamSnapshot, OffloadedAdam, Sgd};
pub use profile::{flatten_grads, flatten_params, ByteChangeStats, SnapshotProfiler};
pub use schedule::LrSchedule;
pub use seq2seq::{CrossAttention, DecoderBlock, TinyT5, TinyT5Config};
pub use tensor::Tensor;
