//! The value-change byte profiler behind Fig. 2 and §III.
//!
//! Across two consecutive training steps, for every FP32 parameter (or
//! gradient) we classify which of its four bytes changed: only the last
//! byte (case 1), only the last two bytes (case 2), some other distribution
//! (case 3), or nothing at all. The paper's headline measurement: ~80 % of
//! value-changed Bert parameters fall in case 1, and 44.5 % of parameters
//! don't change at all in some steps — the redundancy DBA exploits.

use serde::Serialize;
use teco_mem::{classify_change, ByteChange};

/// Counts of each Fig. 2 byte-change class for one step transition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct ByteChangeStats {
    /// Words with no byte changed.
    pub unchanged: u64,
    /// Only the least-significant byte changed.
    pub last_byte: u64,
    /// Only the least-significant two bytes changed.
    pub last_two: u64,
    /// Any other change pattern.
    pub other: u64,
}

impl ByteChangeStats {
    /// Total words inspected.
    pub fn total(&self) -> u64 {
        self.unchanged + self.last_byte + self.last_two + self.other
    }
    /// Words that changed at all.
    pub fn changed(&self) -> u64 {
        self.total() - self.unchanged
    }
    /// Fraction of *changed* words in case 1 (Fig. 2's y-axis).
    pub fn frac_last_byte_of_changed(&self) -> f64 {
        if self.changed() == 0 {
            0.0
        } else {
            self.last_byte as f64 / self.changed() as f64
        }
    }
    /// Fraction of changed words in cases 1+2 — the share DBA with
    /// `dirty_bytes = 2` transfers exactly.
    pub fn frac_low_two_of_changed(&self) -> f64 {
        if self.changed() == 0 {
            0.0
        } else {
            (self.last_byte + self.last_two) as f64 / self.changed() as f64
        }
    }
    /// Fraction of all words that did not change (§III: 44.5 % for Bert).
    pub fn frac_unchanged(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.unchanged as f64 / self.total() as f64
        }
    }

    /// Merge another stats block.
    pub fn merge(&mut self, o: &ByteChangeStats) {
        self.unchanged += o.unchanged;
        self.last_byte += o.last_byte;
        self.last_two += o.last_two;
        self.other += o.other;
    }
}

/// Classify the element-wise byte changes between two equal-length FP32
/// snapshots.
pub fn profile_change(prev: &[f32], curr: &[f32]) -> ByteChangeStats {
    assert_eq!(prev.len(), curr.len(), "snapshot length mismatch");
    let mut s = ByteChangeStats::default();
    for (&a, &b) in prev.iter().zip(curr) {
        match classify_change(a.to_bits(), b.to_bits()) {
            ByteChange::Unchanged => s.unchanged += 1,
            ByteChange::LastByte => s.last_byte += 1,
            ByteChange::LastTwoBytes => s.last_two += 1,
            ByteChange::Other => s.other += 1,
        }
    }
    s
}

/// Tracks snapshots across training steps and produces the per-step Fig. 2
/// series.
#[derive(Debug, Clone, Default)]
pub struct SnapshotProfiler {
    prev: Option<Vec<f32>>,
    /// One entry per recorded transition, in step order.
    pub history: Vec<ByteChangeStats>,
}

impl SnapshotProfiler {
    /// New profiler with no baseline snapshot.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record the current flattened parameter (or gradient) values. The
    /// first call sets the baseline; each later call appends a transition
    /// to [`SnapshotProfiler::history`].
    pub fn record(&mut self, snapshot: &[f32]) {
        if let Some(prev) = &self.prev {
            self.history.push(profile_change(prev, snapshot));
        }
        self.prev = Some(snapshot.to_vec());
    }

    /// Aggregate stats over all recorded transitions.
    pub fn aggregate(&self) -> ByteChangeStats {
        let mut agg = ByteChangeStats::default();
        for h in &self.history {
            agg.merge(h);
        }
        agg
    }
}

/// Flatten a model's parameters (via its visitor) into one vector — the
/// snapshot the profiler consumes.
pub fn flatten_params(model: &mut dyn crate::layers::Visitable) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.extend_from_slice(&p.value));
    out
}

/// Flatten a model's gradients.
pub fn flatten_grads(model: &mut dyn crate::layers::Visitable) -> Vec<f32> {
    let mut out = Vec::new();
    model.visit_params(&mut |p| out.extend_from_slice(&p.grad));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_each_class() {
        let prev = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut curr = prev.clone();
        // unchanged: curr[0]
        curr[1] = f32::from_bits(prev[1].to_bits() ^ 0x0000_0001); // last byte
        curr[2] = f32::from_bits(prev[2].to_bits() ^ 0x0000_0F00); // last two
        curr[3] = -4.0; // sign flip: other
        let s = profile_change(&prev, &curr);
        assert_eq!(s.unchanged, 1);
        assert_eq!(s.last_byte, 1);
        assert_eq!(s.last_two, 1);
        assert_eq!(s.other, 1);
        assert_eq!(s.changed(), 3);
        assert!((s.frac_last_byte_of_changed() - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.frac_low_two_of_changed() - 2.0 / 3.0).abs() < 1e-12);
        assert!((s.frac_unchanged() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn small_additive_updates_hit_low_bytes() {
        // The §III mechanism: tiny ADAM updates perturb low mantissa bits.
        let prev: Vec<f32> = (0..1000).map(|i| 1.0 + i as f32 * 1e-3).collect();
        let curr: Vec<f32> = prev.iter().map(|&x| x + x * 1e-6).collect();
        let s = profile_change(&prev, &curr);
        assert!(
            s.frac_low_two_of_changed() > 0.9,
            "low-two fraction {}",
            s.frac_low_two_of_changed()
        );
    }

    #[test]
    fn large_updates_hit_other() {
        let prev: Vec<f32> = (0..100).map(|i| 1.0 + i as f32).collect();
        let curr: Vec<f32> = prev.iter().map(|&x| x * 2.0).collect(); // exponent bump
        let s = profile_change(&prev, &curr);
        assert_eq!(s.other, 100);
    }

    #[test]
    fn snapshot_profiler_history() {
        let mut p = SnapshotProfiler::new();
        p.record(&[1.0, 2.0]);
        assert!(p.history.is_empty());
        p.record(&[1.0, 2.5]);
        p.record(&[1.0, 2.5]);
        assert_eq!(p.history.len(), 2);
        assert_eq!(p.history[1].unchanged, 2);
        let agg = p.aggregate();
        assert_eq!(agg.total(), 4);
        assert_eq!(agg.unchanged, 3);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_snapshots_panic() {
        profile_change(&[1.0], &[1.0, 2.0]);
    }
}
