//! Loss functions with analytic gradients.

use crate::ops::softmax_rows;
use crate::tensor::Tensor;

/// Softmax cross-entropy over logits `[n, classes]` with integer targets.
/// Returns `(mean_loss, d_logits)` where the gradient is already divided by
/// `n` (mean reduction).
pub fn softmax_cross_entropy(logits: &Tensor, targets: &[usize]) -> (f32, Tensor) {
    let n = logits.rows();
    let c = logits.cols();
    assert_eq!(targets.len(), n, "targets/logits row mismatch");
    let mut probs = logits.clone();
    softmax_rows(&mut probs);
    let mut loss = 0f64;
    let mut grad = probs.clone();
    for (r, &t) in targets.iter().enumerate() {
        assert!(t < c, "target {t} out of {c} classes");
        let p = probs.at(r, t).max(1e-12);
        loss -= (p as f64).ln();
        grad.set(r, t, grad.at(r, t) - 1.0);
    }
    grad.scale(1.0 / n as f32);
    ((loss / n as f64) as f32, grad)
}

/// Perplexity from a mean cross-entropy loss (the GPT-2 metric in Table V).
pub fn perplexity(mean_ce: f32) -> f32 {
    mean_ce.exp()
}

/// Mean-squared error; returns `(mean_loss, d_pred)`.
pub fn mse(pred: &Tensor, target: &Tensor) -> (f32, Tensor) {
    assert_eq!(pred.shape(), target.shape());
    let n = pred.len() as f32;
    let mut grad = pred.clone();
    let mut loss = 0f64;
    for (g, &t) in grad.data_mut().iter_mut().zip(target.data()) {
        let d = *g - t;
        loss += (d as f64) * (d as f64);
        *g = 2.0 * d / n;
    }
    ((loss / n as f64) as f32, grad)
}

/// Binary cross-entropy on logits: `mean( log(1+e^z) − y·z )` with the
/// numerically-stable max trick. Returns `(mean_loss, d_logits)`. Used by
/// the GCNII *link prediction* task (Table III's Wisconsin workload).
pub fn bce_with_logits(logits: &[f32], targets: &[f32]) -> (f32, Vec<f32>) {
    assert_eq!(logits.len(), targets.len());
    assert!(!logits.is_empty());
    let n = logits.len() as f32;
    let mut loss = 0f64;
    let mut grad = Vec::with_capacity(logits.len());
    for (&z, &y) in logits.iter().zip(targets) {
        debug_assert!((0.0..=1.0).contains(&y));
        // loss = max(z,0) − y·z + ln(1 + e^{−|z|})
        loss += (z.max(0.0) - y * z + (1.0 + (-z.abs()).exp()).ln()) as f64;
        let sigma = 1.0 / (1.0 + (-z).exp());
        grad.push((sigma - y) / n);
    }
    ((loss / n as f64) as f32, grad)
}

/// Fraction of correct binary predictions at threshold 0 on the logits.
pub fn binary_accuracy(logits: &[f32], targets: &[f32]) -> f32 {
    assert_eq!(logits.len(), targets.len());
    let correct = logits.iter().zip(targets).filter(|(&z, &y)| (z > 0.0) == (y > 0.5)).count();
    correct as f32 / logits.len() as f32
}

/// Classification accuracy: fraction of rows whose argmax equals the target.
pub fn accuracy(logits: &Tensor, targets: &[usize]) -> f32 {
    let n = logits.rows();
    assert_eq!(targets.len(), n);
    let mut correct = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(i, _)| i)
            .unwrap();
        if argmax == t {
            correct += 1;
        }
    }
    correct as f32 / n as f32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_entropy_uniform_logits() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4f32).ln()).abs() < 1e-5);
        // Gradient: (p − one-hot)/n with p = 0.25.
        assert!((grad.at(0, 0) - (0.25 - 1.0) / 2.0).abs() < 1e-6);
        assert!((grad.at(0, 1) - 0.25 / 2.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_confident_correct_is_small() {
        let mut logits = Tensor::zeros(&[1, 3]);
        logits.set(0, 1, 20.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-3);
        let (loss_wrong, _) = softmax_cross_entropy(&logits, &[0]);
        assert!(loss_wrong > 10.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(&[2, 3], vec![0.2, -0.1, 0.4, 1.0, 0.0, -1.0]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let h = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += h;
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= h;
            let (fp, _) = softmax_cross_entropy(&lp, &targets);
            let (fm, _) = softmax_cross_entropy(&lm, &targets);
            let num = (fp - fm) / (2.0 * h);
            assert!((num - grad.data()[idx]).abs() < 1e-3, "idx {idx}");
        }
    }

    #[test]
    fn grad_rows_sum_to_zero() {
        // Softmax CE gradient rows always sum to 0 (probabilities − one-hot).
        let logits = Tensor::from_vec(&[1, 5], vec![0.3, 1.2, -0.7, 0.0, 2.0]);
        let (_, grad) = softmax_cross_entropy(&logits, &[4]);
        let s: f32 = grad.row(0).iter().sum();
        assert!(s.abs() < 1e-6);
    }

    #[test]
    fn perplexity_of_uniform() {
        assert!((perplexity((4f32).ln()) - 4.0).abs() < 1e-4);
    }

    #[test]
    fn mse_basics() {
        let p = Tensor::from_vec(&[2], vec![1.0, 3.0]);
        let t = Tensor::from_vec(&[2], vec![0.0, 0.0]);
        let (loss, grad) = mse(&p, &t);
        assert!((loss - 5.0).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 3.0]); // 2·d/n = d
    }

    #[test]
    fn bce_known_values() {
        // z = 0 → loss = ln 2 regardless of the label; grad = (0.5 − y).
        let (loss, grad) = bce_with_logits(&[0.0], &[1.0]);
        assert!((loss - std::f32::consts::LN_2).abs() < 1e-6);
        assert!((grad[0] + 0.5).abs() < 1e-6);
        // Confident-correct is cheap; confident-wrong is expensive.
        let (good, _) = bce_with_logits(&[10.0], &[1.0]);
        let (bad, _) = bce_with_logits(&[10.0], &[0.0]);
        assert!(good < 1e-3);
        assert!(bad > 9.0);
    }

    #[test]
    fn bce_gradient_matches_finite_difference() {
        let logits = [0.3f32, -1.2, 2.0];
        let targets = [1.0f32, 0.0, 1.0];
        let (_, grad) = bce_with_logits(&logits, &targets);
        let h = 1e-3f32;
        for i in 0..3 {
            let mut lp = logits;
            lp[i] += h;
            let mut lm = logits;
            lm[i] -= h;
            let num =
                (bce_with_logits(&lp, &targets).0 - bce_with_logits(&lm, &targets).0) / (2.0 * h);
            assert!((num - grad[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn bce_is_stable_for_large_logits() {
        let (loss, grad) = bce_with_logits(&[1000.0, -1000.0], &[1.0, 0.0]);
        assert!(loss.is_finite() && loss < 1e-3);
        assert!(grad.iter().all(|g| g.is_finite()));
    }

    #[test]
    fn binary_accuracy_thresholds_at_zero() {
        let acc = binary_accuracy(&[2.0, -1.0, 0.5, -0.5], &[1.0, 0.0, 0.0, 1.0]);
        assert!((acc - 0.5).abs() < 1e-6);
    }

    #[test]
    fn accuracy_counts_argmax() {
        let logits = Tensor::from_vec(&[3, 2], vec![2.0, 1.0, 0.0, 5.0, 1.0, 1.0]);
        // Row 2 ties → `max_by` keeps the last maximal element (index 1).
        assert!((accuracy(&logits, &[0, 1, 1]) - 1.0).abs() < 1e-6);
        assert!((accuracy(&logits, &[1, 1, 0]) - 1.0 / 3.0).abs() < 1e-6);
    }
}
