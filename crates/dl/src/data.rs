//! Synthetic dataset generators.
//!
//! The paper fine-tunes published checkpoints on IMDB / Wikitext / Squad /
//! Wiki-summary / Wisconsin. Those datasets (and checkpoints) are not
//! available here, so the convergence experiments use synthetic tasks with
//! the same *learnability structure*: sequence data with low-entropy
//! transition structure for language modeling, Gaussian clusters for
//! classification, and a stochastic-block-model graph for GCNII. What the
//! experiments measure — whether DBA's stale-byte approximation changes the
//! optimization trajectory — depends on training dynamics, not on token
//! semantics (see DESIGN.md substitutions).

use crate::tensor::Tensor;
use teco_sim::SimRng;

/// A sparse first-order Markov text generator: every token has
/// `branching` likely successors, so sequences have entropy
/// `≈ ln(branching)` — learnable by a small causal LM.
#[derive(Debug, Clone)]
pub struct MarkovTextGen {
    vocab: usize,
    /// `succ[t]` = the allowed successors of token `t`.
    succ: Vec<Vec<usize>>,
}

impl MarkovTextGen {
    /// Build a random transition structure over `vocab` tokens.
    pub fn new(vocab: usize, branching: usize, rng: &mut SimRng) -> Self {
        assert!(vocab >= 2 && branching >= 1 && branching <= vocab);
        let succ = (0..vocab)
            .map(|_| {
                let mut s: Vec<usize> = (0..vocab).collect();
                rng.shuffle(&mut s);
                s.truncate(branching);
                s
            })
            .collect();
        MarkovTextGen { vocab, succ }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.vocab
    }

    /// The per-token entropy of the generating process, in nats.
    pub fn entropy(&self) -> f32 {
        (self.succ[0].len() as f32).ln()
    }

    /// Sample a sequence of `len` tokens.
    pub fn sample(&self, len: usize, rng: &mut SimRng) -> Vec<usize> {
        assert!(len >= 1);
        let mut out = Vec::with_capacity(len);
        let mut cur = rng.index(self.vocab);
        out.push(cur);
        for _ in 1..len {
            let nexts = &self.succ[cur];
            cur = nexts[rng.index(nexts.len())];
            out.push(cur);
        }
        out
    }

    /// Sample a batch of sequences.
    pub fn sample_batch(&self, batch: usize, len: usize, rng: &mut SimRng) -> Vec<Vec<usize>> {
        (0..batch).map(|_| self.sample(len, rng)).collect()
    }
}

/// A Gaussian-cluster classification dataset.
#[derive(Debug, Clone)]
pub struct Classification {
    /// Features `[n, dim]`.
    pub features: Tensor,
    /// Labels `[n]`.
    pub labels: Vec<usize>,
    /// Number of classes.
    pub classes: usize,
}

/// Generate `n` points in `dim` dimensions across `classes` Gaussian
/// clusters with the given intra-cluster noise.
pub fn gaussian_clusters(
    n: usize,
    dim: usize,
    classes: usize,
    noise: f64,
    rng: &mut SimRng,
) -> Classification {
    assert!(classes >= 2 && dim >= 1);
    // Random unit-ish centers.
    let centers: Vec<Vec<f64>> =
        (0..classes).map(|_| (0..dim).map(|_| rng.normal(0.0, 1.0)).collect()).collect();
    let mut feats = Vec::with_capacity(n * dim);
    let mut labels = Vec::with_capacity(n);
    for i in 0..n {
        let c = i % classes;
        labels.push(c);
        for &center in &centers[c] {
            feats.push((center + rng.normal(0.0, noise)) as f32);
        }
    }
    Classification { features: Tensor::from_vec(&[n, dim], feats), labels, classes }
}

/// A stochastic-block-model community graph for the GCNII workload.
#[derive(Debug, Clone)]
pub struct CommunityGraph {
    /// Node count.
    pub n: usize,
    /// Undirected edges.
    pub edges: Vec<(usize, usize)>,
    /// Node features `[n, feat_dim]` (noisy community indicators).
    pub features: Tensor,
    /// Community labels.
    pub labels: Vec<usize>,
}

/// Generate an SBM graph: nodes in the same community connect with
/// probability `p_in`, across communities with `p_out`.
pub fn community_graph(
    n: usize,
    communities: usize,
    p_in: f64,
    p_out: f64,
    feat_dim: usize,
    rng: &mut SimRng,
) -> CommunityGraph {
    assert!(communities >= 2 && feat_dim >= communities);
    let labels: Vec<usize> = (0..n).map(|i| i % communities).collect();
    let mut edges = Vec::new();
    for a in 0..n {
        for b in (a + 1)..n {
            let p = if labels[a] == labels[b] { p_in } else { p_out };
            if rng.bernoulli(p) {
                edges.push((a, b));
            }
        }
    }
    // Features: noisy one-hot community signal in the first `communities`
    // dims, noise elsewhere.
    let mut feats = Vec::with_capacity(n * feat_dim);
    for &l in &labels {
        for d in 0..feat_dim {
            let base = if d == l { 1.0 } else { 0.0 };
            feats.push((base + rng.normal(0.0, 0.3)) as f32);
        }
    }
    CommunityGraph { n, edges, features: Tensor::from_vec(&[n, feat_dim], feats), labels }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markov_sequences_respect_transitions() {
        let mut rng = SimRng::seed_from_u64(3);
        let gen = MarkovTextGen::new(10, 3, &mut rng);
        let mut sample_rng = rng.fork("s");
        for _ in 0..20 {
            let seq = gen.sample(30, &mut sample_rng);
            assert_eq!(seq.len(), 30);
            for w in seq.windows(2) {
                assert!(gen.succ[w[0]].contains(&w[1]), "illegal transition {w:?}");
            }
        }
        assert!((gen.entropy() - 3f32.ln()).abs() < 1e-6);
    }

    #[test]
    fn markov_batch_shape() {
        let mut rng = SimRng::seed_from_u64(4);
        let gen = MarkovTextGen::new(8, 2, &mut rng);
        let batch = gen.sample_batch(5, 12, &mut rng);
        assert_eq!(batch.len(), 5);
        assert!(batch.iter().all(|s| s.len() == 12));
    }

    #[test]
    fn clusters_are_separable() {
        let mut rng = SimRng::seed_from_u64(5);
        let data = gaussian_clusters(100, 6, 3, 0.1, &mut rng);
        assert_eq!(data.features.rows(), 100);
        assert_eq!(data.labels.len(), 100);
        // Nearest-centroid classification should be near-perfect at low noise.
        let mut centroids = vec![vec![0f32; 6]; 3];
        let mut counts = [0usize; 3];
        for i in 0..100 {
            let c = data.labels[i];
            counts[c] += 1;
            for (d, cd) in centroids[c].iter_mut().enumerate() {
                *cd += data.features.at(i, d);
            }
        }
        for (c, cent) in centroids.iter_mut().enumerate() {
            cent.iter_mut().for_each(|v| *v /= counts[c] as f32);
        }
        let mut correct = 0;
        for i in 0..100 {
            let mut best = (f32::INFINITY, 0usize);
            for (c, cent) in centroids.iter().enumerate() {
                let d2: f32 = (0..6).map(|d| (data.features.at(i, d) - cent[d]).powi(2)).sum();
                if d2 < best.0 {
                    best = (d2, c);
                }
            }
            if best.1 == data.labels[i] {
                correct += 1;
            }
        }
        assert!(correct >= 95, "only {correct}/100 separable");
    }

    #[test]
    fn sbm_graph_has_community_structure() {
        let mut rng = SimRng::seed_from_u64(6);
        let g = community_graph(60, 3, 0.5, 0.02, 6, &mut rng);
        let (mut within, mut across) = (0usize, 0usize);
        for &(a, b) in &g.edges {
            if g.labels[a] == g.labels[b] {
                within += 1;
            } else {
                across += 1;
            }
        }
        assert!(within > across * 2, "within={within} across={across}");
        assert_eq!(g.features.rows(), 60);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        let mk = |seed| {
            let mut rng = SimRng::seed_from_u64(seed);
            let gen = MarkovTextGen::new(12, 2, &mut rng);
            gen.sample(20, &mut rng)
        };
        assert_eq!(mk(9), mk(9));
        assert_ne!(mk(9), mk(10));
    }
}
