//! Property-based tests for the DL framework.

use proptest::prelude::*;
use teco_dl::half::{f16_bits_to_f32, f32_to_f16_bits, through_f16};
use teco_dl::layers::{Linear, Visitable};
use teco_dl::loss::softmax_cross_entropy;
use teco_dl::ops::{matmul, matmul_nt, matmul_tn, softmax_rows};
use teco_dl::profile::profile_change;
use teco_dl::Tensor;
use teco_sim::SimRng;

proptest! {
    /// f16→f32→f16 is the identity for all finite patterns (exhaustive in a
    /// unit test; here, random patterns including specials).
    #[test]
    fn f16_f32_f16_roundtrip(h in any::<u16>()) {
        let x = f16_bits_to_f32(h);
        if x.is_nan() {
            prop_assert!(f16_bits_to_f32(f32_to_f16_bits(x)).is_nan());
        } else {
            prop_assert_eq!(f32_to_f16_bits(x), h);
        }
    }

    /// f32→f16 relative error is bounded by 2⁻¹¹ for in-range normals.
    #[test]
    fn f16_relative_error_bound(x in -60000.0f32..60000.0) {
        prop_assume!(x.abs() >= 2.0f32.powi(-14)); // skip subnormal range
        let y = through_f16(x);
        let rel = ((y - x) / x).abs();
        prop_assert!(rel <= 2.0f32.powi(-11) + 1e-7, "x={x} y={y}");
    }

    /// f16 conversion is monotone: a ≤ b → f16(a) ≤ f16(b).
    #[test]
    fn f16_monotone(a in -1000.0f32..1000.0, b in -1000.0f32..1000.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(through_f16(lo) <= through_f16(hi));
    }

    /// Matmul distributes over addition: (A+B)·C = A·C + B·C.
    #[test]
    fn matmul_distributive(
        m in 1usize..6, k in 1usize..6, n in 1usize..6,
        seed in any::<u64>(),
    ) {
        let mut rng = SimRng::seed_from_u64(seed);
        let rnd = |r: &mut SimRng, len: usize| -> Vec<f32> {
            (0..len).map(|_| r.normal(0.0, 1.0) as f32).collect()
        };
        let a = Tensor::from_vec(&[m, k], rnd(&mut rng, m * k));
        let b = Tensor::from_vec(&[m, k], rnd(&mut rng, m * k));
        let c = Tensor::from_vec(&[k, n], rnd(&mut rng, k * n));
        let mut ab = a.clone();
        ab.add_assign(&b);
        let lhs = matmul(&ab, &c);
        let mut rhs = matmul(&a, &c);
        rhs.add_assign(&matmul(&b, &c));
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    /// matmul_tn/matmul_nt agree with explicit transposes.
    #[test]
    fn transposed_matmuls_consistent(m in 1usize..5, k in 1usize..5, n in 1usize..5, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let rnd = |r: &mut SimRng, len: usize| -> Vec<f32> {
            (0..len).map(|_| r.normal(0.0, 1.0) as f32).collect()
        };
        let at = Tensor::from_vec(&[k, m], rnd(&mut rng, m * k));
        let b = Tensor::from_vec(&[k, n], rnd(&mut rng, k * n));
        let c1 = matmul_tn(&at, &b);
        let c2 = matmul(&at.transposed(), &b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
        let a = Tensor::from_vec(&[m, k], rnd(&mut rng, m * k));
        let bt = Tensor::from_vec(&[n, k], rnd(&mut rng, k * n));
        let d1 = matmul_nt(&a, &bt);
        let d2 = matmul(&a, &bt.transposed());
        for (x, y) in d1.data().iter().zip(d2.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Softmax rows always sum to 1 and are shift-invariant.
    #[test]
    fn softmax_invariants(rows in 1usize..5, cols in 1usize..8, seed in any::<u64>(), shift in -50.0f32..50.0) {
        let mut rng = SimRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.normal(0.0, 3.0) as f32).collect();
        let mut a = Tensor::from_vec(&[rows, cols], data.clone());
        let mut b = Tensor::from_vec(&[rows, cols], data.iter().map(|x| x + shift).collect());
        softmax_rows(&mut a);
        softmax_rows(&mut b);
        for r in 0..rows {
            let s: f32 = a.row(r).iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-5);
            for c in 0..cols {
                prop_assert!((a.at(r, c) - b.at(r, c)).abs() < 1e-5, "shift invariance");
            }
        }
    }

    /// Cross-entropy gradient rows sum to ~0 and the loss is nonnegative.
    #[test]
    fn cross_entropy_invariants(rows in 1usize..6, cols in 2usize..8, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let logits = Tensor::from_vec(
            &[rows, cols],
            (0..rows * cols).map(|_| rng.normal(0.0, 2.0) as f32).collect(),
        );
        let targets: Vec<usize> = (0..rows).map(|_| rng.index(cols)).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &targets);
        prop_assert!(loss >= 0.0);
        for r in 0..rows {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    /// Linear-layer gradients match finite differences for random shapes.
    #[test]
    fn linear_gradcheck(inn in 1usize..5, out in 1usize..5, n in 1usize..4, seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let mut l = Linear::new("l", inn, out, 0.5, &mut rng);
        let x = Tensor::from_vec(
            &[n, inn],
            (0..n * inn).map(|_| rng.normal(0.0, 1.0) as f32).collect(),
        );
        l.zero_grads();
        l.forward(&x);
        let dy = Tensor::full(&[n, out], 1.0);
        l.backward(&dy);
        let h = 1e-2f32;
        let idx = (seed as usize) % (inn * out);
        let orig = l.w.value[idx];
        l.w.value[idx] = orig + h;
        let lp = l.forward(&x).sum();
        l.w.value[idx] = orig - h;
        let lm = l.forward(&x).sum();
        l.w.value[idx] = orig;
        let num = (lp - lm) / (2.0 * h);
        let ana = l.w.grad[idx];
        prop_assert!((num - ana).abs() < 5e-2 * (1.0 + ana.abs()), "{ana} vs {num}");
    }

    /// profile_change class counts always partition the words.
    #[test]
    fn profile_partition(prev in prop::collection::vec(any::<f32>(), 1..200), seed in any::<u64>()) {
        let mut rng = SimRng::seed_from_u64(seed);
        let curr: Vec<f32> = prev
            .iter()
            .map(|&x| if rng.bernoulli(0.5) { x } else { f32::from_bits(x.to_bits() ^ rng.next_u64() as u32) })
            .collect();
        let s = profile_change(&prev, &curr);
        prop_assert_eq!(s.total() as usize, prev.len());
        prop_assert_eq!(s.changed(), s.last_byte + s.last_two + s.other);
    }
}
