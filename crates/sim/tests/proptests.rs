//! Property-based tests for the simulation kernel's core invariants.

use proptest::prelude::*;
use teco_sim::{Bandwidth, Engine, Interval, IntervalSet, Model, Scheduler, SerialServer, SimTime};

proptest! {
    /// Transfer time is monotone in payload size and additive under FIFO
    /// serial service (pipelining never creates or destroys service time).
    #[test]
    fn serial_server_busy_equals_sum_of_services(
        sizes in prop::collection::vec(1u64..100_000, 1..50),
        gaps in prop::collection::vec(0u64..1_000, 1..50),
    ) {
        let rate = Bandwidth::from_gb_per_sec(16.0);
        let mut s = SerialServer::new(rate);
        let mut t = SimTime::ZERO;
        let mut expect_busy = SimTime::ZERO;
        for (i, &b) in sizes.iter().enumerate() {
            t += SimTime::from_ns(gaps[i % gaps.len()]);
            let iv = s.submit(t, b);
            prop_assert!(iv.start >= t);
            prop_assert_eq!(iv.len(), rate.transfer_time(b));
            expect_busy += rate.transfer_time(b);
        }
        prop_assert_eq!(s.busy_time(), expect_busy);
        // The link never finishes before the pure-bandwidth lower bound.
        let total: u64 = sizes.iter().sum();
        prop_assert!(s.next_free() >= rate.transfer_time(total));
    }

    /// Service intervals from a FIFO server never overlap and are ordered.
    #[test]
    fn serial_server_intervals_disjoint(
        sizes in prop::collection::vec(1u64..10_000, 1..40),
    ) {
        let mut s = SerialServer::new(Bandwidth::from_gb_per_sec(8.0));
        let mut prev_end = SimTime::ZERO;
        for &b in &sizes {
            let iv = s.submit(SimTime::ZERO, b);
            prop_assert!(iv.start >= prev_end);
            prev_end = iv.end;
        }
    }

    /// IntervalSet union measure is subadditive and exact for disjoint input;
    /// intersection with self is identity.
    #[test]
    fn interval_set_measures(
        raw in prop::collection::vec((0u64..10_000, 1u64..500), 0..60),
    ) {
        let ivs: Vec<Interval> = raw
            .iter()
            .map(|&(s, l)| Interval::new(SimTime::from_ns(s), SimTime::from_ns(s + l)))
            .collect();
        let set = IntervalSet::from_intervals(ivs.iter().copied());
        let sum: SimTime = ivs.iter().map(|iv| iv.len()).sum();
        prop_assert!(set.total() <= sum);
        prop_assert_eq!(set.intersection_measure(&set), set.total());
        prop_assert_eq!(set.difference_measure(&set), SimTime::ZERO);
        // Intervals in the set are sorted, disjoint, non-adjacent.
        for w in set.intervals().windows(2) {
            prop_assert!(w[0].end < w[1].start);
        }
    }

    /// intersection(a, b) is symmetric and bounded by both measures.
    #[test]
    fn interval_set_intersection_symmetric(
        raw_a in prop::collection::vec((0u64..5_000, 1u64..300), 0..40),
        raw_b in prop::collection::vec((0u64..5_000, 1u64..300), 0..40),
    ) {
        let mk = |raw: &[(u64, u64)]| {
            IntervalSet::from_intervals(raw.iter().map(|&(s, l)| {
                Interval::new(SimTime::from_ns(s), SimTime::from_ns(s + l))
            }))
        };
        let a = mk(&raw_a);
        let b = mk(&raw_b);
        let ab = a.intersection_measure(&b);
        prop_assert_eq!(ab, b.intersection_measure(&a));
        prop_assert!(ab <= a.total());
        prop_assert!(ab <= b.total());
        prop_assert_eq!(a.difference_measure(&b) + ab, a.total());
    }

    /// The event engine delivers every scheduled event exactly once, in
    /// nondecreasing time order.
    #[test]
    fn engine_delivers_all_events_in_order(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
    ) {
        struct Collect {
            seen: Vec<SimTime>,
        }
        impl Model for Collect {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), _: &mut Scheduler<()>) {
                self.seen.push(now);
            }
        }
        let mut eng = Engine::new(Collect { seen: vec![] });
        for &t in &times {
            eng.prime(SimTime::from_ns(t), ());
        }
        eng.run();
        prop_assert_eq!(eng.model().seen.len(), times.len());
        for w in eng.model().seen.windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
        let mut expect: Vec<u64> = times.clone();
        expect.sort_unstable();
        let got: Vec<u64> = eng.model().seen.iter().map(|t| t.as_ns()).collect();
        prop_assert_eq!(got, expect);
    }

    /// Bandwidth transfer-time round trip: bytes_in(transfer_time(n)) ≈ n.
    #[test]
    fn bandwidth_roundtrip(bytes in 1u64..1_000_000_000, gb in 1u32..64) {
        let bw = Bandwidth::from_gb_per_sec(gb as f64);
        let t = bw.transfer_time(bytes);
        let back = bw.bytes_in(t);
        // Rounding to a picosecond loses at most rate·1ps bytes.
        let slack = (bw.bytes_per_sec() * 1e-12).ceil() as u64 + 1;
        prop_assert!(back + slack >= bytes && back <= bytes + slack,
            "bytes={bytes} back={back} slack={slack}");
    }
}
