//! Lightweight statistics collectors for simulation models: online
//! mean/variance, histograms, and time-weighted values. All collectors are
//! plain data (no interior mutability) so models stay `Send` and
//! deterministic.

use crate::time::SimTime;
use serde::Serialize;

/// Welford online mean/variance accumulator.
#[derive(Debug, Clone, Default, Serialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        OnlineStats { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Population variance (0 when fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }
    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }
    /// Minimum observation (None when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }
    /// Maximum observation (None when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }

    /// Merge another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n;
        self.mean += delta * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A fixed-width linear histogram over `[lo, hi)` with under/overflow bins.
#[derive(Debug, Clone, Serialize)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    count: u64,
}

impl Histogram {
    /// `nbins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(hi > lo && nbins > 0, "bad histogram spec");
        Histogram { lo, hi, bins: vec![0; nbins], underflow: 0, overflow: 0, count: 0 }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.count += 1;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.bins.len() as f64;
            let idx = ((x - self.lo) / w) as usize;
            // Guard against float edge cases at the top boundary.
            let idx = idx.min(self.bins.len() - 1);
            self.bins[idx] += 1;
        }
    }

    /// Raw bin counts (excluding under/overflow).
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }
    /// Observations below `lo`.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }
    /// Observations at or above `hi`.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
    /// Total observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Approximate p-quantile (0..=1) from bin midpoints; None when empty.
    pub fn quantile(&self, p: f64) -> Option<f64> {
        assert!((0.0..=1.0).contains(&p), "quantile out of range");
        if self.count == 0 {
            return None;
        }
        let target = (p * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = self.underflow;
        if seen >= target {
            return Some(self.lo);
        }
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        for (i, &c) in self.bins.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(self.lo + w * (i as f64 + 0.5));
            }
        }
        Some(self.hi)
    }
}

/// Tracks a piecewise-constant value over simulated time and computes its
/// time-weighted average — e.g. average queue occupancy.
#[derive(Debug, Clone)]
pub struct TimeWeighted {
    last_t: SimTime,
    last_v: f64,
    weighted_sum: f64, // ∫ v dt in (value · seconds)
    started: bool,
}

impl Default for TimeWeighted {
    fn default() -> Self {
        Self::new()
    }
}

impl TimeWeighted {
    /// New tracker; the value is undefined until the first `set`.
    pub fn new() -> Self {
        TimeWeighted { last_t: SimTime::ZERO, last_v: 0.0, weighted_sum: 0.0, started: false }
    }

    /// Set the value at time `t` (must be nondecreasing).
    pub fn set(&mut self, t: SimTime, v: f64) {
        if self.started {
            assert!(t >= self.last_t, "time went backwards");
            self.weighted_sum += self.last_v * (t - self.last_t).as_secs_f64();
        }
        self.last_t = t;
        self.last_v = v;
        self.started = true;
    }

    /// Time-weighted average over `[first set, t]`.
    pub fn average_until(&self, t: SimTime) -> f64 {
        if !self.started {
            return 0.0;
        }
        assert!(t >= self.last_t, "time went backwards");
        let total = self.weighted_sum + self.last_v * (t - self.last_t).as_secs_f64();
        let span = t.as_secs_f64(); // tracker conventionally starts at 0
        if span == 0.0 {
            self.last_v
        } else {
            total / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basics() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
    }

    #[test]
    fn online_stats_merge_matches_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.record(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.record(x);
        }
        for &x in &xs[37..] {
            b.record(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
    }

    #[test]
    fn histogram_binning() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [-1.0, 0.0, 0.5, 5.5, 9.99, 10.0, 42.0] {
            h.record(x);
        }
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.bins()[0], 2); // 0.0 and 0.5
        assert_eq!(h.bins()[5], 1); // 5.5
        assert_eq!(h.bins()[9], 1); // 9.99
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn histogram_quantiles() {
        let mut h = Histogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            h.record(i as f64 + 0.5);
        }
        let median = h.quantile(0.5).unwrap();
        assert!((median - 49.5).abs() <= 1.0, "median={median}");
        assert!(h.quantile(0.0).is_some());
        assert!(h.quantile(1.0).unwrap() >= 99.0);
        assert_eq!(Histogram::new(0.0, 1.0, 4).quantile(0.5), None);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new();
        tw.set(SimTime::ZERO, 0.0);
        tw.set(SimTime::from_secs(1), 10.0); // value 0 for 1 s
        tw.set(SimTime::from_secs(3), 0.0); // value 10 for 2 s
                                            // Over [0, 4]: (0·1 + 10·2 + 0·1) / 4 = 5
        let avg = tw.average_until(SimTime::from_secs(4));
        assert!((avg - 5.0).abs() < 1e-9);
    }

    #[test]
    fn time_weighted_unset_is_zero() {
        let tw = TimeWeighted::new();
        assert_eq!(tw.average_until(SimTime::from_secs(1)), 0.0);
    }
}
