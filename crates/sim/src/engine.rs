//! A minimal, deterministic discrete-event simulation engine.
//!
//! The engine is deliberately monomorphic: a simulation is a [`Model`] with a
//! concrete `Event` type, and the [`Engine`] owns both the model state and the
//! pending-event calendar. Events scheduled for the same timestamp are
//! delivered in scheduling order (FIFO tie-break via a sequence number), which
//! makes every simulation in this workspace bit-reproducible.
//!
//! # Calendar structure
//!
//! The [`Scheduler`] is a hybrid calendar/bucket queue rather than a single
//! comparison-based heap. Near-future events land in fixed-width time buckets
//! (O(1) insert); events beyond the bucket window spill into an overflow heap.
//! Buckets are promoted one at a time into a small "current" heap as the clock
//! reaches them, which restores the exact `(time, seq)` total order — the
//! observable event sequence is identical to the old global-heap
//! implementation, bit for bit. When the whole window drains, it is rebased
//! onto the earliest overflow event. The win is that heap operations now act
//! on one bucket's worth of events (typically a handful) instead of the whole
//! calendar.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// log2 of the bucket width: 4096 ps ≈ 4 ns per bucket, a good match for the
/// line-transfer and DRAM timescales this workspace simulates.
const BUCKET_WIDTH_LOG2: u32 = 12;
const BUCKET_WIDTH_PS: u64 = 1 << BUCKET_WIDTH_LOG2;
/// Buckets in the near-future window (~1 µs of simulated time).
const NUM_BUCKETS: usize = 256;

/// A simulation model: owns the world state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`, possibly scheduling more.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Internal heap entry. Ordered by `(time, seq)` so that equal-time events
/// pop in the order they were scheduled.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event calendar handed to [`Model::handle`] for scheduling follow-ups.
///
/// See the module docs for the hybrid calendar/bucket-queue layout. The
/// invariants tying the three containers together:
///
/// - `current` holds every pending event with `time < promoted_end`;
/// - `buckets[i]` holds events in `[window_start + i·W, window_start + (i+1)·W)`
///   for `i >= cursor` (earlier buckets have been promoted and are empty);
/// - `overflow` holds events at or beyond `window_start + NUM_BUCKETS·W`.
///
/// Causality (`schedule_at` asserts `at >= now`) guarantees nothing is ever
/// inserted below an already-promoted region, so `current`'s minimum is
/// always the global minimum.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    scheduled: u64,
    pending: usize,
    /// Start of the bucket window (ps, multiple of the bucket width).
    window_start: u64,
    /// Next bucket index to promote.
    cursor: usize,
    /// Absolute time (ps) below which events go straight to `current`.
    promoted_end: u64,
    buckets: Vec<Vec<Entry<E>>>,
    current: BinaryHeap<Reverse<Entry<E>>>,
    overflow: BinaryHeap<Reverse<Entry<E>>>,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            scheduled: 0,
            pending: 0,
            window_start: 0,
            cursor: 0,
            promoted_end: 0,
            buckets: (0..NUM_BUCKETS).map(|_| Vec::new()).collect(),
            current: BinaryHeap::new(),
            overflow: BinaryHeap::new(),
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    #[inline]
    fn window_end(&self) -> u64 {
        self.window_start + (NUM_BUCKETS as u64) * BUCKET_WIDTH_PS
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past —
    /// a causality violation is always a bug in the model.
    #[inline]
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "causality violation: scheduling at {at} before now={}", self.now);
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.pending += 1;
        let entry = Entry { time: at, seq, event };
        let t = at.0;
        if t < self.promoted_end {
            self.current.push(Reverse(entry));
        } else if t < self.window_end() {
            let idx = ((t - self.window_start) >> BUCKET_WIDTH_LOG2) as usize;
            self.buckets[idx].push(entry);
        } else {
            self.overflow.push(Reverse(entry));
        }
    }

    /// Schedule `event` after a relative delay.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Enqueue a burst of events in one call. Sequence numbers are assigned
    /// in iteration order, so equal-time events within the batch keep their
    /// relative order — exactly as if `schedule_at` had been called per
    /// event. Bucket routing makes each insert O(1); no heap is touched for
    /// near-future times.
    pub fn schedule_batch(&mut self, events: impl IntoIterator<Item = (SimTime, E)>) {
        for (at, event) in events {
            self.schedule_at(at, event);
        }
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.pending
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    /// Promote buckets (and, when the window drains, rebase it onto the
    /// overflow heap) until `current` holds the global minimum or the
    /// calendar is proven empty.
    #[cold]
    fn ensure_current(&mut self) {
        while self.current.is_empty() {
            // Skip empty buckets cheaply; promote the first non-empty one.
            while self.cursor < NUM_BUCKETS && self.buckets[self.cursor].is_empty() {
                self.cursor += 1;
            }
            if self.cursor < NUM_BUCKETS {
                let bucket = &mut self.buckets[self.cursor];
                self.cursor += 1;
                self.promoted_end = self.window_start + (self.cursor as u64) * BUCKET_WIDTH_PS;
                // Rebuild rather than push one-by-one: heapify is O(n), and
                // reusing the heap's backing Vec keeps this allocation-free
                // in steady state.
                let mut backing = std::mem::take(&mut self.current).into_vec();
                backing.extend(bucket.drain(..).map(Reverse));
                self.current = BinaryHeap::from(backing);
                return;
            }
            // Window exhausted: rebase onto the earliest far-future event.
            let Some(Reverse(head)) = self.overflow.peek() else {
                return; // truly empty
            };
            self.window_start = (head.time.0 >> BUCKET_WIDTH_LOG2) << BUCKET_WIDTH_LOG2;
            self.cursor = 0;
            self.promoted_end = self.window_start;
            let window_end = self.window_end();
            while let Some(Reverse(head)) = self.overflow.peek() {
                if head.time.0 >= window_end {
                    break;
                }
                let Reverse(entry) = self.overflow.pop().expect("peeked entry");
                let idx = ((entry.time.0 - self.window_start) >> BUCKET_WIDTH_LOG2) as usize;
                self.buckets[idx].push(entry);
            }
        }
    }

    /// Earliest pending event time, if any. Promotes internally but does not
    /// consume — `pop` afterwards returns exactly this event.
    #[inline]
    pub fn peek_time(&mut self) -> Option<SimTime> {
        if self.current.is_empty() {
            self.ensure_current();
        }
        self.current.peek().map(|Reverse(e)| e.time)
    }

    #[inline]
    fn pop(&mut self) -> Option<(SimTime, E)> {
        if self.current.is_empty() {
            self.ensure_current();
        }
        self.current.pop().map(|Reverse(e)| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            self.pending -= 1;
            (e.time, e.event)
        })
    }

    /// Capture the calendar as plain data: clock, counters, and every
    /// pending entry as a `(time, seq, event)` triple sorted in delivery
    /// order. Which internal container an entry currently sits in
    /// (current/bucket/overflow) is *not* observable through `pop`, so it
    /// is deliberately not captured; [`Scheduler::restore`] re-derives a
    /// valid routing from the clock alone.
    pub fn capture(&self) -> SchedulerState<E>
    where
        E: Clone,
    {
        let mut entries: Vec<(SimTime, u64, E)> = Vec::with_capacity(self.pending);
        for Reverse(e) in self.current.iter().chain(self.overflow.iter()) {
            entries.push((e.time, e.seq, e.event.clone()));
        }
        for bucket in &self.buckets {
            for e in bucket {
                entries.push((e.time, e.seq, e.event.clone()));
            }
        }
        entries.sort_by_key(|&(t, s, _)| (t, s));
        debug_assert_eq!(entries.len(), self.pending);
        SchedulerState { now: self.now, seq: self.seq, scheduled: self.scheduled, entries }
    }

    /// Rebuild a calendar from captured state. The window is rebased at the
    /// restored clock with nothing promoted; because pop order depends only
    /// on `(time, seq)`, the restored scheduler delivers the exact event
    /// sequence the original would have.
    pub fn restore(state: SchedulerState<E>) -> Self {
        let mut s = Scheduler::new();
        s.now = state.now;
        s.seq = state.seq;
        s.scheduled = state.scheduled;
        s.pending = state.entries.len();
        s.window_start = (state.now.0 >> BUCKET_WIDTH_LOG2) << BUCKET_WIDTH_LOG2;
        s.cursor = 0;
        s.promoted_end = s.window_start;
        let window_end = s.window_end();
        for (time, seq, event) in state.entries {
            assert!(time >= s.now, "snapshot entry at {time} precedes restored clock {}", s.now);
            assert!(seq < s.seq, "snapshot entry seq {seq} not covered by seq counter {}", s.seq);
            let entry = Entry { time, seq, event };
            if time.0 < window_end {
                let idx = ((time.0 - s.window_start) >> BUCKET_WIDTH_LOG2) as usize;
                s.buckets[idx].push(entry);
            } else {
                s.overflow.push(Reverse(entry));
            }
        }
        s
    }
}

/// Plain-data image of a [`Scheduler`], produced by [`Scheduler::capture`].
///
/// Generic containers cannot use the derived serde impls, so this stays a
/// raw parts struct; callers embed the triples in a concrete snapshot type.
#[derive(Debug, Clone, PartialEq)]
pub struct SchedulerState<E> {
    /// Simulated clock at capture time.
    pub now: SimTime,
    /// Next sequence number to assign.
    pub seq: u64,
    /// Total events ever scheduled.
    pub scheduled: u64,
    /// Every pending event, sorted by `(time, seq)` delivery order.
    pub entries: Vec<(SimTime, u64, E)>,
}

/// Discrete-event engine: drives a [`Model`] until quiescence or a deadline.
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty calendar.
    pub fn new(model: M) -> Self {
        Engine { model, sched: Scheduler::new(), processed: 0 }
    }

    /// Seed an initial event at time `at` before running.
    pub fn prime(&mut self, at: SimTime, event: M::Event) -> &mut Self {
        self.sched.schedule_at(at, event);
        self
    }

    /// Seed a burst of initial events before running (see
    /// [`Scheduler::schedule_batch`]).
    pub fn prime_batch(
        &mut self,
        events: impl IntoIterator<Item = (SimTime, M::Event)>,
    ) -> &mut Self {
        self.sched.schedule_batch(events);
        self
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }
    /// Mutable access to the model (e.g. to read out statistics).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }
    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Process a single event. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((t, ev)) => {
                self.model.handle(t, ev, &mut self.sched);
                self.processed += 1;
                true
            }
            None => false,
        }
    }

    /// Run until the calendar is empty; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Run until the calendar is empty or the next event is strictly after
    /// `deadline`. Events at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(head) = self.sched.peek_time() {
            if head > deadline {
                break;
            }
            self.step();
        }
        self.now()
    }

    /// Run at most `max_events` events; returns how many were processed.
    /// A guard for models suspected of livelock.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }

    /// Capture the engine's calendar and progress counter (the model's own
    /// state is the caller's to snapshot alongside).
    pub fn capture(&self) -> EngineState<M::Event>
    where
        M::Event: Clone,
    {
        EngineState { sched: self.sched.capture(), processed: self.processed }
    }

    /// Rebuild an engine around `model` from captured calendar state.
    pub fn restore(model: M, state: EngineState<M::Event>) -> Self {
        Engine { model, sched: Scheduler::restore(state.sched), processed: state.processed }
    }
}

/// Plain-data image of an [`Engine`]'s calendar and progress counter.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineState<E> {
    /// The calendar image.
    pub sched: SchedulerState<E>,
    /// Events processed so far.
    pub processed: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts event deliveries and records their order.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
        chain_left: u32,
    }

    enum Ev {
        Tag(u32),
        Chain,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.log.push((now, t)),
                Ev::Chain => {
                    self.log.push((now, 999));
                    if self.chain_left > 0 {
                        self.chain_left -= 1;
                        sched.schedule_in(SimTime::from_ns(10), Ev::Chain);
                    }
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder { log: vec![], chain_left: 0 }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(recorder());
        eng.prime(SimTime::from_ns(30), Ev::Tag(3));
        eng.prime(SimTime::from_ns(10), Ev::Tag(1));
        eng.prime(SimTime::from_ns(20), Ev::Tag(2));
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(30));
        let tags: Vec<u32> = eng.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn equal_time_events_fifo() {
        let mut eng = Engine::new(recorder());
        for t in 0..100 {
            eng.prime(SimTime::from_ns(5), Ev::Tag(t));
        }
        eng.run();
        let tags: Vec<u32> = eng.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut eng = Engine::new(Recorder { log: vec![], chain_left: 5 });
        eng.prime(SimTime::ZERO, Ev::Chain);
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(50));
        assert_eq!(eng.model().log.len(), 6);
        assert_eq!(eng.events_processed(), 6);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut eng = Engine::new(recorder());
        eng.prime(SimTime::from_ns(10), Ev::Tag(1));
        eng.prime(SimTime::from_ns(20), Ev::Tag(2));
        eng.prime(SimTime::from_ns(21), Ev::Tag(3));
        eng.run_until(SimTime::from_ns(20));
        assert_eq!(eng.model().log.len(), 2);
        // The remaining event still runs afterwards.
        eng.run();
        assert_eq!(eng.model().log.len(), 3);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut eng = Engine::new(Recorder { log: vec![], chain_left: u32::MAX });
        eng.prime(SimTime::ZERO, Ev::Chain);
        let n = eng.run_bounded(1000);
        assert_eq!(n, 1000);
        assert_eq!(eng.model().log.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now.saturating_sub(SimTime::from_ns(1)), ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.prime(SimTime::from_ns(10), ());
        eng.run();
    }

    #[test]
    fn far_future_events_cross_window_rebase() {
        // Events far beyond the ~1 µs bucket window land in the overflow
        // heap and must still come out in exact (time, seq) order across
        // several window rebases.
        let mut eng = Engine::new(recorder());
        let times_ns = [5u64, 3_000, 2_999, 40_000, 39_999, 1_000_000, 999_999, 7];
        for (i, &t) in times_ns.iter().enumerate() {
            eng.prime(SimTime::from_ns(t), Ev::Tag(i as u32));
        }
        eng.run();
        let got: Vec<(u64, u32)> =
            eng.model().log.iter().map(|&(t, tag)| (t.as_ns(), tag)).collect();
        let mut want: Vec<(u64, u32)> =
            times_ns.iter().enumerate().map(|(i, &t)| (t, i as u32)).collect();
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn batch_scheduling_preserves_fifo_order() {
        let mut eng = Engine::new(recorder());
        // Two batches at the same timestamp plus an interleaved single event:
        // delivery must follow global scheduling order.
        eng.prime_batch((0..50).map(|i| (SimTime::from_ns(5), Ev::Tag(i))));
        eng.prime(SimTime::from_ns(5), Ev::Tag(50));
        eng.prime_batch((51..100).map(|i| (SimTime::from_ns(5), Ev::Tag(i))));
        eng.run();
        let tags: Vec<u32> = eng.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn same_bucket_reschedule_during_drain() {
        // A chain with a 10 ns period repeatedly schedules into the bucket
        // currently being drained and its successors; order must hold.
        let mut eng = Engine::new(Recorder { log: vec![], chain_left: 1000 });
        eng.prime(SimTime::ZERO, Ev::Chain);
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(10_000));
        assert_eq!(eng.events_processed(), 1001);
        for (i, &(t, _)) in eng.model().log.iter().enumerate() {
            assert_eq!(t, SimTime::from_ns(10 * i as u64));
        }
    }

    #[test]
    fn empty_engine_is_quiescent() {
        let mut eng = Engine::new(recorder());
        assert!(!eng.step());
        assert_eq!(eng.run(), SimTime::ZERO);
        assert_eq!(eng.events_processed(), 0);
    }

    /// Clonable model for the capture/restore tests: logs deliveries and
    /// chains follow-ups so the calendar keeps churning mid-capture.
    #[derive(Clone, PartialEq, Debug)]
    struct Collect {
        log: Vec<(SimTime, u64)>,
    }
    impl Model for Collect {
        type Event = u64;
        fn handle(&mut self, now: SimTime, ev: u64, sched: &mut Scheduler<u64>) {
            self.log.push((now, ev));
            if ev < 500 {
                sched.schedule_in(SimTime::from_ns(7 + ev % 5), ev + 13);
            }
        }
    }

    #[test]
    fn capture_restore_resumes_bit_identically() {
        // Prime a calendar spanning buckets and the overflow heap, run
        // partway, capture, and let a restored engine finish: the combined
        // event log, clock, and counters must match an uninterrupted run.
        let times_ns = [5u64, 3_000, 2_999, 40_000, 39_999, 1_000_000, 999_999, 7, 5, 5];
        let primed = || {
            let mut eng = Engine::new(Collect { log: vec![] });
            for (i, &t) in times_ns.iter().enumerate() {
                eng.prime(SimTime::from_ns(t), i as u64);
            }
            eng
        };
        let mut full = primed();
        full.run();
        for boundary in [0u64, 1, 3, 17, 60] {
            let mut killed = primed();
            killed.run_bounded(boundary);
            let state = killed.capture();
            let model = killed.model().clone();
            drop(killed);
            let mut resumed = Engine::restore(model, state);
            resumed.run();
            assert_eq!(resumed.model(), full.model(), "boundary {boundary}");
            assert_eq!(resumed.now(), full.now());
            assert_eq!(resumed.events_processed(), full.events_processed());
        }
    }
}
