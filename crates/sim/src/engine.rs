//! A minimal, deterministic discrete-event simulation engine.
//!
//! The engine is deliberately monomorphic: a simulation is a [`Model`] with a
//! concrete `Event` type, and the [`Engine`] owns both the model state and the
//! pending-event heap. Events scheduled for the same timestamp are delivered
//! in scheduling order (FIFO tie-break via a sequence number), which makes
//! every simulation in this workspace bit-reproducible.

use crate::time::SimTime;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A simulation model: owns the world state and reacts to events.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle one event at simulated time `now`, possibly scheduling more.
    fn handle(&mut self, now: SimTime, event: Self::Event, sched: &mut Scheduler<Self::Event>);
}

/// Internal heap entry. Ordered by `(time, seq)` so that equal-time events
/// pop in the order they were scheduled.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.time, self.seq).cmp(&(other.time, other.seq))
    }
}

/// The event calendar handed to [`Model::handle`] for scheduling follow-ups.
pub struct Scheduler<E> {
    now: SimTime,
    seq: u64,
    heap: BinaryHeap<Reverse<Entry<E>>>,
    scheduled: u64,
}

impl<E> Scheduler<E> {
    fn new() -> Self {
        Scheduler {
            now: SimTime::ZERO,
            seq: 0,
            heap: BinaryHeap::new(),
            scheduled: 0,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` at absolute time `at`. Panics if `at` is in the past —
    /// a causality violation is always a bug in the model.
    pub fn schedule_at(&mut self, at: SimTime, event: E) {
        assert!(
            at >= self.now,
            "causality violation: scheduling at {at} before now={}",
            self.now
        );
        let seq = self.seq;
        self.seq += 1;
        self.scheduled += 1;
        self.heap.push(Reverse(Entry { time: at, seq, event }));
    }

    /// Schedule `event` after a relative delay.
    #[inline]
    pub fn schedule_in(&mut self, delay: SimTime, event: E) {
        self.schedule_at(self.now + delay, event);
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.heap.len()
    }

    /// Total number of events ever scheduled.
    #[inline]
    pub fn total_scheduled(&self) -> u64 {
        self.scheduled
    }

    fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|Reverse(e)| {
            debug_assert!(e.time >= self.now);
            self.now = e.time;
            (e.time, e.event)
        })
    }
}

/// Discrete-event engine: drives a [`Model`] until quiescence or a deadline.
pub struct Engine<M: Model> {
    model: M,
    sched: Scheduler<M::Event>,
    processed: u64,
}

impl<M: Model> Engine<M> {
    /// Create an engine around `model` with an empty calendar.
    pub fn new(model: M) -> Self {
        Engine {
            model,
            sched: Scheduler::new(),
            processed: 0,
        }
    }

    /// Seed an initial event at time `at` before running.
    pub fn prime(&mut self, at: SimTime, event: M::Event) -> &mut Self {
        self.sched.schedule_at(at, event);
        self
    }

    /// Immutable access to the model.
    pub fn model(&self) -> &M {
        &self.model
    }
    /// Mutable access to the model (e.g. to read out statistics).
    pub fn model_mut(&mut self) -> &mut M {
        &mut self.model
    }
    /// Consume the engine, returning the model.
    pub fn into_model(self) -> M {
        self.model
    }

    /// Current simulated time (time of the last processed event).
    pub fn now(&self) -> SimTime {
        self.sched.now()
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Process a single event. Returns `false` when the calendar is empty.
    pub fn step(&mut self) -> bool {
        match self.sched.pop() {
            Some((t, ev)) => {
                self.model.handle(t, ev, &mut self.sched);
                self.processed += 1;
                true
            }
            None => false,
        }
    }

    /// Run until the calendar is empty; returns the final simulated time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now()
    }

    /// Run until the calendar is empty or the next event is strictly after
    /// `deadline`. Events at exactly `deadline` are processed.
    pub fn run_until(&mut self, deadline: SimTime) -> SimTime {
        while let Some(Reverse(head)) = self.sched.heap.peek() {
            if head.time > deadline {
                break;
            }
            self.step();
        }
        self.now()
    }

    /// Run at most `max_events` events; returns how many were processed.
    /// A guard for models suspected of livelock.
    pub fn run_bounded(&mut self, max_events: u64) -> u64 {
        let mut n = 0;
        while n < max_events && self.step() {
            n += 1;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A model that counts event deliveries and records their order.
    struct Recorder {
        log: Vec<(SimTime, u32)>,
        chain_left: u32,
    }

    enum Ev {
        Tag(u32),
        Chain,
    }

    impl Model for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, sched: &mut Scheduler<Ev>) {
            match ev {
                Ev::Tag(t) => self.log.push((now, t)),
                Ev::Chain => {
                    self.log.push((now, 999));
                    if self.chain_left > 0 {
                        self.chain_left -= 1;
                        sched.schedule_in(SimTime::from_ns(10), Ev::Chain);
                    }
                }
            }
        }
    }

    fn recorder() -> Recorder {
        Recorder { log: vec![], chain_left: 0 }
    }

    #[test]
    fn events_run_in_time_order() {
        let mut eng = Engine::new(recorder());
        eng.prime(SimTime::from_ns(30), Ev::Tag(3));
        eng.prime(SimTime::from_ns(10), Ev::Tag(1));
        eng.prime(SimTime::from_ns(20), Ev::Tag(2));
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(30));
        let tags: Vec<u32> = eng.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, vec![1, 2, 3]);
    }

    #[test]
    fn equal_time_events_fifo() {
        let mut eng = Engine::new(recorder());
        for t in 0..100 {
            eng.prime(SimTime::from_ns(5), Ev::Tag(t));
        }
        eng.run();
        let tags: Vec<u32> = eng.model().log.iter().map(|&(_, t)| t).collect();
        assert_eq!(tags, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chained_scheduling_advances_clock() {
        let mut eng = Engine::new(Recorder { log: vec![], chain_left: 5 });
        eng.prime(SimTime::ZERO, Ev::Chain);
        let end = eng.run();
        assert_eq!(end, SimTime::from_ns(50));
        assert_eq!(eng.model().log.len(), 6);
        assert_eq!(eng.events_processed(), 6);
    }

    #[test]
    fn run_until_stops_at_deadline_inclusive() {
        let mut eng = Engine::new(recorder());
        eng.prime(SimTime::from_ns(10), Ev::Tag(1));
        eng.prime(SimTime::from_ns(20), Ev::Tag(2));
        eng.prime(SimTime::from_ns(21), Ev::Tag(3));
        eng.run_until(SimTime::from_ns(20));
        assert_eq!(eng.model().log.len(), 2);
        // The remaining event still runs afterwards.
        eng.run();
        assert_eq!(eng.model().log.len(), 3);
    }

    #[test]
    fn run_bounded_limits_events() {
        let mut eng = Engine::new(Recorder { log: vec![], chain_left: u32::MAX });
        eng.prime(SimTime::ZERO, Ev::Chain);
        let n = eng.run_bounded(1000);
        assert_eq!(n, 1000);
        assert_eq!(eng.model().log.len(), 1000);
    }

    #[test]
    #[should_panic(expected = "causality violation")]
    fn scheduling_in_the_past_panics() {
        struct Bad;
        impl Model for Bad {
            type Event = ();
            fn handle(&mut self, now: SimTime, _: (), sched: &mut Scheduler<()>) {
                sched.schedule_at(now.saturating_sub(SimTime::from_ns(1)), ());
            }
        }
        let mut eng = Engine::new(Bad);
        eng.prime(SimTime::from_ns(10), ());
        eng.run();
    }

    #[test]
    fn empty_engine_is_quiescent() {
        let mut eng = Engine::new(recorder());
        assert!(!eng.step());
        assert_eq!(eng.run(), SimTime::ZERO);
        assert_eq!(eng.events_processed(), 0);
    }
}
