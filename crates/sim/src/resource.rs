//! Queueing-theory building blocks used by the interconnect and compute
//! models: a FIFO serial server (a link is a serial bus — the paper's CXL
//! emulator streams cache lines "one after another"), a bounded pending
//! queue (the 128-entry CXL controller queue), and busy-interval sets for
//! exposed-vs-overlapped time accounting.

use crate::time::{Bandwidth, SimTime};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A half-open busy interval `[start, end)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interval {
    pub start: SimTime,
    pub end: SimTime,
}

impl Interval {
    /// Construct, asserting `start <= end`.
    pub fn new(start: SimTime, end: SimTime) -> Self {
        assert!(start <= end, "inverted interval {start}..{end}");
        Interval { start, end }
    }
    /// Interval length.
    #[inline]
    pub fn len(&self) -> SimTime {
        self.end - self.start
    }
    /// True when the interval is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// A work-conserving FIFO server with a fixed byte rate.
///
/// Jobs are submitted in nondecreasing ready-time order (the simulation is
/// causal) and each occupies the server for `bytes / rate`, starting no
/// earlier than both its ready time and the completion of the previous job.
#[derive(Debug, Clone)]
pub struct SerialServer {
    rate: Bandwidth,
    next_free: SimTime,
    busy: SimTime,
    bytes_served: u64,
    jobs: u64,
    last_ready: SimTime,
}

impl SerialServer {
    /// A server draining at `rate`.
    pub fn new(rate: Bandwidth) -> Self {
        SerialServer {
            rate,
            next_free: SimTime::ZERO,
            busy: SimTime::ZERO,
            bytes_served: 0,
            jobs: 0,
            last_ready: SimTime::ZERO,
        }
    }

    /// The configured rate.
    pub fn rate(&self) -> Bandwidth {
        self.rate
    }

    /// Submit a job of `bytes` that becomes ready at `ready`; returns the
    /// service interval. An extra fixed `latency` (e.g. the 1 ns Aggregator
    /// delay) can be folded in by the caller via [`SerialServer::submit_with_latency`].
    pub fn submit(&mut self, ready: SimTime, bytes: u64) -> Interval {
        self.submit_with_latency(ready, bytes, SimTime::ZERO)
    }

    /// Like [`submit`](Self::submit) but the job additionally pays a fixed
    /// pipeline `latency` before its bytes start flowing. Because service is
    /// FIFO and pipelined, the latency delays only this job's start, not the
    /// server's availability for subsequent bytes.
    pub fn submit_with_latency(
        &mut self,
        ready: SimTime,
        bytes: u64,
        latency: SimTime,
    ) -> Interval {
        assert!(
            ready >= self.last_ready,
            "SerialServer requires nondecreasing ready times ({ready} < {})",
            self.last_ready
        );
        self.last_ready = ready;
        let start = (ready + latency).max(self.next_free);
        let service = self.rate.transfer_time(bytes);
        let end = start + service;
        self.next_free = end;
        self.busy += service;
        self.bytes_served += bytes;
        self.jobs += 1;
        Interval { start, end }
    }

    /// Earliest time the server could start a new job.
    pub fn next_free(&self) -> SimTime {
        self.next_free
    }
    /// Cumulative service (busy) time.
    pub fn busy_time(&self) -> SimTime {
        self.busy
    }
    /// Total bytes served.
    pub fn bytes_served(&self) -> u64 {
        self.bytes_served
    }
    /// Total jobs served.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }
    /// Utilization over `[0, horizon)`.
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        self.busy.fraction_of(horizon)
    }

    /// Capture the full server state for a checkpoint.
    pub fn snapshot(&self) -> SerialServerSnapshot {
        SerialServerSnapshot {
            rate: self.rate,
            next_free: self.next_free,
            busy: self.busy,
            bytes_served: self.bytes_served,
            jobs: self.jobs,
            last_ready: self.last_ready,
        }
    }

    /// Rebuild a server from a snapshot; subsequent submissions behave
    /// exactly as they would have on the original.
    pub fn restore(s: &SerialServerSnapshot) -> Self {
        SerialServer {
            rate: s.rate,
            next_free: s.next_free,
            busy: s.busy,
            bytes_served: s.bytes_served,
            jobs: s.jobs,
            last_ready: s.last_ready,
        }
    }
}

/// Serializable image of a [`SerialServer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SerialServerSnapshot {
    /// Configured drain rate.
    pub rate: Bandwidth,
    /// Earliest start time for the next job.
    pub next_free: SimTime,
    /// Cumulative busy time.
    pub busy: SimTime,
    /// Total bytes served.
    pub bytes_served: u64,
    /// Total jobs served.
    pub jobs: u64,
    /// Ready time of the most recent submission (monotonicity guard).
    pub last_ready: SimTime,
}

/// A bounded FIFO admission queue in front of a serial server, modeling the
/// CXL controller's pending queue ("a pending queue of 128 entries",
/// §VIII-A). When the queue is full the producer stalls: the entry is
/// admitted only once an older entry has completed service. The returned
/// admission time therefore back-pressures the producer model.
#[derive(Debug, Clone)]
pub struct BoundedServer {
    server: SerialServer,
    capacity: usize,
    /// Completion times of admitted-but-possibly-unfinished entries, FIFO.
    completions: VecDeque<SimTime>,
    stall: SimTime,
    max_occupancy: usize,
}

impl BoundedServer {
    /// A serial server fronted by a queue of `capacity` entries.
    pub fn new(rate: Bandwidth, capacity: usize) -> Self {
        assert!(capacity > 0, "queue capacity must be positive");
        BoundedServer {
            server: SerialServer::new(rate),
            capacity,
            completions: VecDeque::with_capacity(capacity),
            stall: SimTime::ZERO,
            max_occupancy: 0,
        }
    }

    /// Submit a job; returns `(admitted, service_interval)` where `admitted`
    /// is when the producer could hand the entry to the queue (≥ `ready` when
    /// the queue was full) and the interval is the link service window.
    pub fn submit(&mut self, ready: SimTime, bytes: u64) -> (SimTime, Interval) {
        self.submit_with_latency(ready, bytes, SimTime::ZERO)
    }

    /// [`submit`](Self::submit) with a fixed per-entry pipeline latency.
    pub fn submit_with_latency(
        &mut self,
        ready: SimTime,
        bytes: u64,
        latency: SimTime,
    ) -> (SimTime, Interval) {
        // Drop entries that have certainly drained by `ready`.
        while let Some(&front) = self.completions.front() {
            if front <= ready {
                self.completions.pop_front();
            } else {
                break;
            }
        }
        // If still full, the producer must wait for the oldest in-flight
        // entry to finish.
        let admitted = if self.completions.len() >= self.capacity {
            let idx = self.completions.len() - self.capacity;
            let unblock = self.completions[idx];
            self.stall += unblock - ready;
            unblock
        } else {
            ready
        };
        // Entries that drained while the producer was stalled have left the
        // queue by the admission instant.
        while let Some(&front) = self.completions.front() {
            if front <= admitted {
                self.completions.pop_front();
            } else {
                break;
            }
        }
        let iv = self.server.submit_with_latency(admitted, bytes, latency);
        self.completions.push_back(iv.end);
        self.max_occupancy = self.max_occupancy.max(self.completions.len());
        (admitted, iv)
    }

    /// Total producer stall time caused by a full queue.
    pub fn stall_time(&self) -> SimTime {
        self.stall
    }
    /// High-water mark of queue occupancy observed.
    pub fn max_occupancy(&self) -> usize {
        self.max_occupancy
    }
    /// The underlying serial server.
    pub fn server(&self) -> &SerialServer {
        &self.server
    }

    /// Capture the queue state (including in-flight completion times) for a
    /// checkpoint.
    pub fn snapshot(&self) -> BoundedServerSnapshot {
        BoundedServerSnapshot {
            server: self.server.snapshot(),
            capacity: self.capacity as u64,
            completions: self.completions.iter().copied().collect(),
            stall: self.stall,
            max_occupancy: self.max_occupancy as u64,
        }
    }

    /// Rebuild a bounded server from a snapshot.
    pub fn restore(s: &BoundedServerSnapshot) -> Self {
        assert!(s.capacity > 0, "queue capacity must be positive");
        BoundedServer {
            server: SerialServer::restore(&s.server),
            capacity: s.capacity as usize,
            completions: s.completions.iter().copied().collect(),
            stall: s.stall,
            max_occupancy: s.max_occupancy as usize,
        }
    }
}

/// Serializable image of a [`BoundedServer`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundedServerSnapshot {
    /// The fronted serial server.
    pub server: SerialServerSnapshot,
    /// Queue capacity.
    pub capacity: u64,
    /// FIFO completion times of admitted-but-possibly-unfinished entries.
    pub completions: Vec<SimTime>,
    /// Accumulated producer stall time.
    pub stall: SimTime,
    /// Occupancy high-water mark.
    pub max_occupancy: u64,
}

/// A set of busy intervals with union/intersection measures. Used to compute
/// "communication time exposed to the critical path": the part of the link's
/// busy time not covered by compute busy time.
#[derive(Debug, Clone, Default)]
pub struct IntervalSet {
    /// Disjoint, sorted intervals.
    ivs: Vec<Interval>,
}

impl IntervalSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Build from arbitrary (possibly overlapping, unsorted) intervals.
    pub fn from_intervals<I: IntoIterator<Item = Interval>>(iter: I) -> Self {
        let mut s = Self::new();
        for iv in iter {
            s.add(iv);
        }
        s
    }

    /// Insert an interval, merging overlaps.
    pub fn add(&mut self, iv: Interval) {
        if iv.is_empty() {
            return;
        }
        // Binary search for insertion point by start.
        let pos = self.ivs.partition_point(|x| x.end < iv.start);
        let mut merged = iv;
        let mut end_pos = pos;
        while end_pos < self.ivs.len() && self.ivs[end_pos].start <= merged.end {
            merged.start = merged.start.min(self.ivs[end_pos].start);
            merged.end = merged.end.max(self.ivs[end_pos].end);
            end_pos += 1;
        }
        self.ivs.splice(pos..end_pos, [merged]);
    }

    /// Total measure of the set.
    pub fn total(&self) -> SimTime {
        self.ivs.iter().map(Interval::len).sum()
    }

    /// Number of disjoint intervals.
    pub fn len(&self) -> usize {
        self.ivs.len()
    }
    /// True if the set is empty.
    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }
    /// The disjoint intervals, sorted.
    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    /// Measure of `self ∩ other`.
    pub fn intersection_measure(&self, other: &IntervalSet) -> SimTime {
        let mut total = SimTime::ZERO;
        let (mut i, mut j) = (0, 0);
        while i < self.ivs.len() && j < other.ivs.len() {
            let a = self.ivs[i];
            let b = other.ivs[j];
            let lo = a.start.max(b.start);
            let hi = a.end.min(b.end);
            if lo < hi {
                total += hi - lo;
            }
            if a.end <= b.end {
                i += 1;
            } else {
                j += 1;
            }
        }
        total
    }

    /// Measure of `self \ other` — e.g. link-busy time *not* hidden behind
    /// compute: the exposed communication time of the paper's Table I.
    pub fn difference_measure(&self, other: &IntervalSet) -> SimTime {
        self.total() - self.intersection_measure(other)
    }

    /// Latest end time in the set (ZERO when empty).
    pub fn span_end(&self) -> SimTime {
        self.ivs.last().map_or(SimTime::ZERO, |iv| iv.end)
    }

    /// Capture the disjoint interval list for a checkpoint.
    pub fn snapshot(&self) -> IntervalSetSnapshot {
        IntervalSetSnapshot { ivs: self.ivs.iter().map(|iv| (iv.start, iv.end)).collect() }
    }

    /// Rebuild a set from a snapshot. The captured list is already disjoint
    /// and sorted, so this is a straight reload.
    pub fn restore(s: &IntervalSetSnapshot) -> Self {
        IntervalSet { ivs: s.ivs.iter().map(|&(start, end)| Interval::new(start, end)).collect() }
    }
}

/// Serializable image of an [`IntervalSet`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSetSnapshot {
    /// Disjoint `(start, end)` pairs, sorted by start.
    pub ivs: Vec<(SimTime, SimTime)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(a: u64, b: u64) -> Interval {
        Interval::new(SimTime::from_ns(a), SimTime::from_ns(b))
    }

    #[test]
    fn serial_server_fifo_backlog() {
        // 16 GB/s → 64 B lines take 4 ns each.
        let mut s = SerialServer::new(Bandwidth::from_gb_per_sec(16.0));
        let a = s.submit(SimTime::ZERO, 64);
        assert_eq!((a.start, a.end), (SimTime::ZERO, SimTime::from_ns(4)));
        // Second job ready at 1 ns queues behind the first.
        let b = s.submit(SimTime::from_ns(1), 64);
        assert_eq!((b.start, b.end), (SimTime::from_ns(4), SimTime::from_ns(8)));
        // Third job ready after the backlog drains starts immediately.
        let c = s.submit(SimTime::from_ns(20), 64);
        assert_eq!(c.start, SimTime::from_ns(20));
        assert_eq!(s.bytes_served(), 192);
        assert_eq!(s.jobs(), 3);
        assert_eq!(s.busy_time(), SimTime::from_ns(12));
    }

    #[test]
    fn serial_server_latency_delays_start_only() {
        let mut s = SerialServer::new(Bandwidth::from_gb_per_sec(16.0));
        // 1 ns aggregator latency on a lightly-loaded link.
        let a = s.submit_with_latency(SimTime::ZERO, 64, SimTime::from_ns(1));
        assert_eq!((a.start, a.end), (SimTime::from_ns(1), SimTime::from_ns(5)));
        // Pipelined: a back-to-back job's latency is hidden behind the busy link.
        let b = s.submit_with_latency(SimTime::ZERO, 64, SimTime::from_ns(1));
        assert_eq!(b.start, SimTime::from_ns(5));
    }

    #[test]
    #[should_panic(expected = "nondecreasing")]
    fn serial_server_rejects_time_travel() {
        let mut s = SerialServer::new(Bandwidth::from_gb_per_sec(1.0));
        s.submit(SimTime::from_ns(10), 1);
        s.submit(SimTime::from_ns(5), 1);
    }

    #[test]
    fn bounded_server_backpressure() {
        // Capacity 2, 4 ns per 64B line, all ready at t=0.
        let mut q = BoundedServer::new(Bandwidth::from_gb_per_sec(16.0), 2);
        let (a0, _) = q.submit(SimTime::ZERO, 64);
        let (a1, _) = q.submit(SimTime::ZERO, 64);
        assert_eq!(a0, SimTime::ZERO);
        assert_eq!(a1, SimTime::ZERO);
        // Third entry must wait for the first to complete at 4 ns.
        let (a2, iv2) = q.submit(SimTime::ZERO, 64);
        assert_eq!(a2, SimTime::from_ns(4));
        assert_eq!(iv2.end, SimTime::from_ns(12));
        assert_eq!(q.stall_time(), SimTime::from_ns(4));
        assert_eq!(q.max_occupancy(), 2);
    }

    #[test]
    fn bounded_server_no_stall_when_spaced() {
        let mut q = BoundedServer::new(Bandwidth::from_gb_per_sec(16.0), 2);
        for i in 0..10 {
            let (adm, _) = q.submit(SimTime::from_ns(i * 10), 64);
            assert_eq!(adm, SimTime::from_ns(i * 10));
        }
        assert_eq!(q.stall_time(), SimTime::ZERO);
    }

    #[test]
    fn interval_set_merging() {
        let mut s = IntervalSet::new();
        s.add(ns(0, 10));
        s.add(ns(20, 30));
        s.add(ns(5, 25)); // bridges both
        assert_eq!(s.len(), 1);
        assert_eq!(s.total(), SimTime::from_ns(30));
        s.add(ns(40, 40)); // empty is a no-op
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn interval_set_adjacent_intervals_merge() {
        let mut s = IntervalSet::new();
        s.add(ns(0, 10));
        s.add(ns(10, 20));
        assert_eq!(s.len(), 1);
        assert_eq!(s.total(), SimTime::from_ns(20));
    }

    #[test]
    fn interval_set_out_of_order_insertion() {
        let mut s = IntervalSet::new();
        s.add(ns(50, 60));
        s.add(ns(0, 10));
        s.add(ns(30, 40));
        assert_eq!(s.len(), 3);
        assert_eq!(s.total(), SimTime::from_ns(30));
        assert_eq!(s.span_end(), SimTime::from_ns(60));
    }

    #[test]
    fn exposed_time_accounting() {
        // Link busy 0..40; compute busy 10..30 → 20 ns exposed.
        let link = IntervalSet::from_intervals([ns(0, 40)]);
        let compute = IntervalSet::from_intervals([ns(10, 30)]);
        assert_eq!(link.intersection_measure(&compute), SimTime::from_ns(20));
        assert_eq!(link.difference_measure(&compute), SimTime::from_ns(20));
        // Fully hidden case.
        let compute_all = IntervalSet::from_intervals([ns(0, 100)]);
        assert_eq!(link.difference_measure(&compute_all), SimTime::ZERO);
    }

    #[test]
    fn intersection_multiple_fragments() {
        let a = IntervalSet::from_intervals([ns(0, 10), ns(20, 30), ns(40, 50)]);
        let b = IntervalSet::from_intervals([ns(5, 25), ns(45, 60)]);
        // overlaps: [5,10)=5, [20,25)=5, [45,50)=5
        assert_eq!(a.intersection_measure(&b), SimTime::from_ns(15));
        assert_eq!(b.intersection_measure(&a), SimTime::from_ns(15));
    }
}
