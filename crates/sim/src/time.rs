//! Simulation time and bandwidth arithmetic.
//!
//! All simulated timestamps are carried as integer **picoseconds** so that
//! (a) event ordering is exact and reproducible (no float comparisons), and
//! (b) sub-nanosecond hardware latencies — e.g. the 1.28 ns Aggregator and
//! 1.126 ns Disaggregator delays from §VIII-D of the paper — are
//! representable without rounding. A `u64` of picoseconds covers ~213 days
//! of simulated time, far beyond any training-step simulation.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time (or a duration), in picoseconds.
///
/// The same type is used for instants and durations; the simulation code in
/// this workspace never needs an affine/vector distinction, and a single type
/// keeps the arithmetic obvious.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub u64);

impl SimTime {
    /// Time zero — the start of every simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable time; used as an "infinitely late" sentinel.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }
    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * 1_000)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000_000)
    }
    /// Construct from seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000_000)
    }
    /// Construct from fractional seconds, rounding to the nearest picosecond.
    ///
    /// Panics if `s` is negative or too large to represent.
    pub fn from_secs_f64(s: f64) -> Self {
        assert!(s >= 0.0, "negative simulated duration: {s}");
        let ps = s * 1e12;
        assert!(ps <= u64::MAX as f64, "simulated duration overflow: {s} s");
        SimTime(ps.round() as u64)
    }
    /// Construct from fractional nanoseconds, rounding to the nearest picosecond.
    pub fn from_ns_f64(ns: f64) -> Self {
        Self::from_secs_f64(ns * 1e-9)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }
    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / 1_000
    }
    /// As fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 * 1e-12
    }
    /// As fractional milliseconds.
    #[inline]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 * 1e-9
    }
    /// As fractional microseconds.
    #[inline]
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 * 1e-6
    }
    /// As fractional nanoseconds.
    #[inline]
    pub fn as_ns_f64(self) -> f64 {
        self.0 as f64 * 1e-3
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    /// Used for "exposed time = transfer end − compute end, if positive".
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition (None on overflow).
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The later of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }
    /// The earlier of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }

    /// Multiply a duration by an integer count.
    #[inline]
    pub fn mul_u64(self, n: u64) -> SimTime {
        SimTime(self.0.checked_mul(n).expect("SimTime overflow"))
    }

    /// Fraction `self / whole` as f64 (0.0 when `whole` is zero).
    #[inline]
    pub fn fraction_of(self, whole: SimTime) -> f64 {
        if whole.0 == 0 {
            0.0
        } else {
            self.0 as f64 / whole.0 as f64
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_add(rhs.0).expect("SimTime overflow"))
    }
}
impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}
impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.checked_sub(rhs.0).expect("SimTime underflow"))
    }
}
impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}
impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, rhs: u64) -> SimTime {
        self.mul_u64(rhs)
    }
}
impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, rhs: u64) -> SimTime {
        SimTime(self.0 / rhs)
    }
}
impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an auto-selected unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ps = self.0;
        if ps == 0 {
            write!(f, "0s")
        } else if ps < 1_000 {
            write!(f, "{ps}ps")
        } else if ps < 1_000_000 {
            write!(f, "{:.3}ns", ps as f64 / 1e3)
        } else if ps < 1_000_000_000 {
            write!(f, "{:.3}us", ps as f64 / 1e6)
        } else if ps < 1_000_000_000_000 {
            write!(f, "{:.3}ms", ps as f64 / 1e9)
        } else {
            write!(f, "{:.3}s", ps as f64 / 1e12)
        }
    }
}

/// A link/bus transfer rate in bytes per second.
///
/// Encapsulates the "how long does `n` bytes take" computation so every model
/// in the workspace rounds the same way (to the nearest picosecond, with a
/// minimum of 1 ps for a nonzero payload so causality is never violated).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// Construct from bytes per second. Must be finite and positive.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps.is_finite() && bps > 0.0, "invalid bandwidth: {bps}");
        Bandwidth { bytes_per_sec: bps }
    }
    /// Construct from gigabytes per second (decimal GB, matching PCIe
    /// marketing rates used in the paper: PCIe 3.0 ×16 = 16 GB/s).
    pub fn from_gb_per_sec(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    /// The raw rate.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }
    /// The rate in decimal GB/s.
    #[inline]
    pub fn gb_per_sec(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// Scale the bandwidth by an efficiency factor in (0, 1], e.g. the
    /// paper's 94.3 % CXL protocol efficiency over raw PCIe.
    pub fn scaled(self, efficiency: f64) -> Self {
        assert!(efficiency > 0.0 && efficiency <= 1.0, "efficiency must be in (0,1]: {efficiency}");
        Self::from_bytes_per_sec(self.bytes_per_sec * efficiency)
    }

    /// Time to move `bytes` at this rate. Zero bytes take zero time; any
    /// nonzero payload takes at least one picosecond.
    pub fn transfer_time(self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let ps = (bytes as f64 / self.bytes_per_sec) * 1e12;
        SimTime((ps.round() as u64).max(1))
    }

    /// Number of whole bytes that can be moved in `t` at this rate.
    pub fn bytes_in(self, t: SimTime) -> u64 {
        (self.bytes_per_sec * t.as_secs_f64()).floor() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_ns(5).as_ps(), 5_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(2).as_ps(), 2_000_000_000);
        assert_eq!(SimTime::from_secs(1).as_ps(), 1_000_000_000_000);
        assert_eq!(SimTime::from_secs_f64(0.5).as_ps(), 500_000_000_000);
    }

    #[test]
    fn from_ns_f64_subnanosecond() {
        // The Aggregator latency from the paper: 1.28 ns.
        let t = SimTime::from_ns_f64(1.28);
        assert_eq!(t.as_ps(), 1_280);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(10);
        let b = SimTime::from_ns(4);
        assert_eq!((a + b).as_ns(), 14);
        assert_eq!((a - b).as_ns(), 6);
        assert_eq!((a * 3).as_ns(), 30);
        assert_eq!((a / 2).as_ns(), 5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.saturating_sub(b).as_ns(), 6);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn sub_underflow_panics() {
        let _ = SimTime::from_ns(1) - SimTime::from_ns(2);
    }

    #[test]
    fn sum_and_fraction() {
        let total: SimTime =
            [SimTime::from_ns(1), SimTime::from_ns(2), SimTime::from_ns(3)].into_iter().sum();
        assert_eq!(total.as_ns(), 6);
        assert!((SimTime::from_ns(3).fraction_of(total) - 0.5).abs() < 1e-12);
        assert_eq!(SimTime::from_ns(3).fraction_of(SimTime::ZERO), 0.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::ZERO.to_string(), "0s");
        assert_eq!(SimTime::from_ps(500).to_string(), "500ps");
        assert_eq!(SimTime::from_ns(1).to_string(), "1.000ns");
        assert_eq!(SimTime::from_us(2).to_string(), "2.000us");
        assert_eq!(SimTime::from_ms(3).to_string(), "3.000ms");
        assert_eq!(SimTime::from_secs(4).to_string(), "4.000s");
    }

    #[test]
    fn bandwidth_transfer_time() {
        // 16 GB/s: 16 bytes take 1 ns.
        let bw = Bandwidth::from_gb_per_sec(16.0);
        assert_eq!(bw.transfer_time(16).as_ps(), 1_000);
        // A 64-byte cache line takes 4 ns — the paper's "each cache line
        // takes around 4 ns" figure for PCIe 3.0 x16.
        assert_eq!(bw.transfer_time(64).as_ns(), 4);
        assert_eq!(bw.transfer_time(0), SimTime::ZERO);
        // Tiny payloads never take zero time.
        assert!(bw.transfer_time(1) >= SimTime::from_ps(1));
    }

    #[test]
    fn bandwidth_cxl_efficiency() {
        // The paper assumes CXL delivers 94.3% of PCIe bandwidth.
        let pcie = Bandwidth::from_gb_per_sec(16.0);
        let cxl = pcie.scaled(0.943);
        assert!((cxl.gb_per_sec() - 15.088).abs() < 1e-9);
        assert!(cxl.transfer_time(1 << 30) > pcie.transfer_time(1 << 30));
    }

    #[test]
    fn bandwidth_bytes_in() {
        let bw = Bandwidth::from_gb_per_sec(1.0);
        assert_eq!(bw.bytes_in(SimTime::from_secs(1)), 1_000_000_000);
        assert_eq!(bw.bytes_in(SimTime::from_ns(1)), 1);
    }

    #[test]
    #[should_panic(expected = "invalid bandwidth")]
    fn bandwidth_rejects_zero() {
        let _ = Bandwidth::from_bytes_per_sec(0.0);
    }

    #[test]
    #[should_panic(expected = "efficiency")]
    fn bandwidth_rejects_bad_efficiency() {
        let _ = Bandwidth::from_gb_per_sec(16.0).scaled(1.5);
    }
}
