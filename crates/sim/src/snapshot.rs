//! Crash-consistent snapshot framing.
//!
//! Every checkpoint in the workspace is one self-validating byte envelope:
//!
//! ```text
//! magic "TECOSNAP" (8 B) ‖ version u32 LE ‖ payload_len u64 LE ‖
//! FNV-1a-64(payload) u64 LE ‖ JSON payload
//! ```
//!
//! The JSON payload is the serde value tree of a per-component snapshot
//! struct, so the format is self-describing and diffable; the header makes
//! restore *total*: a truncated, bit-flipped, or version-skewed blob comes
//! back as a typed [`SnapshotError`], never a panic. Encoding is
//! deterministic (struct fields serialize in declaration order, maps sort
//! their keys), which is what lets the kill/resume harness compare a
//! resumed run's report byte-for-byte against an uninterrupted one.

use serde::{Deserialize, Serialize};

/// Magic prefix of every snapshot envelope.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"TECOSNAP";
/// Current envelope version. Bump on any incompatible payload change.
pub const SNAPSHOT_VERSION: u32 = 1;
/// Fixed header size: magic + version + payload_len + checksum.
pub const SNAPSHOT_HEADER_BYTES: usize = 8 + 4 + 8 + 8;

/// Typed decode failures. Restore never panics on hostile bytes: every
/// malformed envelope maps to exactly one of these.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The first 8 bytes are not `TECOSNAP`.
    BadMagic,
    /// The envelope declares a version this build cannot read.
    UnsupportedVersion(u32),
    /// The byte stream is shorter (or longer) than the header promises.
    Truncated {
        /// Total envelope length the header implies.
        expected: u64,
        /// Length actually supplied.
        actual: u64,
    },
    /// The payload bytes do not hash to the header checksum.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        expected: u64,
        /// Checksum of the payload as received.
        actual: u64,
    },
    /// The payload passed framing checks but is not a valid snapshot of
    /// the requested type (bad UTF-8, bad JSON, or a shape mismatch).
    Corrupt(String),
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "snapshot missing TECOSNAP magic"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot version {v} (this build reads {SNAPSHOT_VERSION})")
            }
            SnapshotError::Truncated { expected, actual } => {
                write!(f, "snapshot truncated: header implies {expected} bytes, got {actual}")
            }
            SnapshotError::ChecksumMismatch { expected, actual } => {
                write!(
                    f,
                    "snapshot checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
                )
            }
            SnapshotError::Corrupt(msg) => write!(f, "snapshot payload corrupt: {msg}"),
        }
    }
}
impl std::error::Error for SnapshotError {}

/// FNV-1a-64 over the payload — cheap, dependency-free, and sensitive to
/// every single-bit flip the fuzz tests inject.
pub fn snapshot_checksum(payload: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in payload {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    h
}

/// Serialize `value` into a framed snapshot envelope.
pub fn encode_snapshot<T: Serialize>(value: &T) -> Vec<u8> {
    let payload =
        serde_json::to_string(value).expect("snapshot structs serialize infallibly").into_bytes();
    let mut out = Vec::with_capacity(SNAPSHOT_HEADER_BYTES + payload.len());
    out.extend_from_slice(&SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(&snapshot_checksum(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// Decode a framed snapshot envelope back into a `T`.
///
/// Validation order: length → magic → version → declared payload length →
/// checksum → UTF-8/JSON/shape. Arbitrary bytes therefore always produce a
/// typed error; the checksum gate means a bit flip anywhere in the payload
/// is caught before the JSON parser ever sees it.
pub fn decode_snapshot<T: Deserialize>(bytes: &[u8]) -> Result<T, SnapshotError> {
    if bytes.len() < SNAPSHOT_HEADER_BYTES {
        return Err(SnapshotError::Truncated {
            expected: SNAPSHOT_HEADER_BYTES as u64,
            actual: bytes.len() as u64,
        });
    }
    if bytes[..8] != SNAPSHOT_MAGIC {
        return Err(SnapshotError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::UnsupportedVersion(version));
    }
    let declared = u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes"));
    let payload = &bytes[SNAPSHOT_HEADER_BYTES..];
    if payload.len() as u64 != declared {
        return Err(SnapshotError::Truncated {
            expected: SNAPSHOT_HEADER_BYTES as u64 + declared,
            actual: bytes.len() as u64,
        });
    }
    let expected = u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes"));
    let actual = snapshot_checksum(payload);
    if expected != actual {
        return Err(SnapshotError::ChecksumMismatch { expected, actual });
    }
    let text = std::str::from_utf8(payload)
        .map_err(|e| SnapshotError::Corrupt(format!("payload is not UTF-8: {e}")))?;
    serde_json::from_str(text).map_err(|e| SnapshotError::Corrupt(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Demo {
        label: String,
        counters: Vec<u64>,
        flag: bool,
    }

    fn demo() -> Demo {
        Demo { label: "scheduler".into(), counters: vec![1, 2, 3, u64::MAX], flag: true }
    }

    #[test]
    fn roundtrip_is_identity() {
        let bytes = encode_snapshot(&demo());
        let back: Demo = decode_snapshot(&bytes).unwrap();
        assert_eq!(back, demo());
        // Re-encoding the decoded value is byte-identical (deterministic
        // serialization, the property the resume harness depends on).
        assert_eq!(encode_snapshot(&back), bytes);
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = encode_snapshot(&demo());
        for len in 0..bytes.len() {
            let err = decode_snapshot::<Demo>(&bytes[..len]).unwrap_err();
            assert!(
                matches!(err, SnapshotError::Truncated { .. }),
                "prefix of {len} bytes gave {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_and_version_detected() {
        let mut bytes = encode_snapshot(&demo());
        bytes[0] ^= 0xFF;
        assert_eq!(decode_snapshot::<Demo>(&bytes).unwrap_err(), SnapshotError::BadMagic);
        let mut bytes = encode_snapshot(&demo());
        bytes[8] = 0x7F;
        assert!(matches!(
            decode_snapshot::<Demo>(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion(_)
        ));
    }

    #[test]
    fn payload_flip_is_checksum_mismatch() {
        let clean = encode_snapshot(&demo());
        for pos in SNAPSHOT_HEADER_BYTES..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x01;
            assert!(matches!(
                decode_snapshot::<Demo>(&bytes).unwrap_err(),
                SnapshotError::ChecksumMismatch { .. }
            ));
        }
    }

    #[test]
    fn shape_mismatch_is_corrupt_not_panic() {
        // Valid envelope of one type, decoded as another.
        let bytes = encode_snapshot(&vec![1u64, 2, 3]);
        let err = decode_snapshot::<Demo>(&bytes).unwrap_err();
        assert!(matches!(err, SnapshotError::Corrupt(_)));
    }
}
