//! # teco-sim — discrete-event simulation kernel
//!
//! Foundation crate for the TECO (SC'24) reproduction. Provides:
//!
//! - [`SimTime`] / [`Bandwidth`]: exact integer-picosecond time and link-rate
//!   arithmetic shared by every model in the workspace;
//! - [`Engine`] / [`Model`] / [`Scheduler`]: a deterministic typed-event
//!   discrete-event engine (FIFO tie-breaking, causality-checked);
//! - [`SerialServer`] / [`BoundedServer`] / [`IntervalSet`]: queueing
//!   primitives for serial buses (CXL is a serial link), bounded pending
//!   queues (the 128-entry CXL controller queue), and exposed-vs-overlapped
//!   time accounting (the paper's "communication time exposed to the
//!   critical path");
//! - [`SimRng`]: explicitly-seeded, forkable randomness so every experiment
//!   is reproducible;
//! - [`stats`]: online statistics collectors.
//!
//! Nothing in this crate knows about CXL or deep learning; it is the generic
//! substrate the higher crates (`teco-mem`, `teco-cxl`, `teco-offload`)
//! build on.

pub mod engine;
pub mod resource;
pub mod rng;
pub mod snapshot;
pub mod stats;
pub mod time;

pub use engine::{Engine, EngineState, Model, Scheduler, SchedulerState};
pub use resource::{
    BoundedServer, BoundedServerSnapshot, Interval, IntervalSet, IntervalSetSnapshot, SerialServer,
    SerialServerSnapshot,
};
pub use rng::SimRng;
pub use snapshot::{
    decode_snapshot, encode_snapshot, snapshot_checksum, SnapshotError, SNAPSHOT_HEADER_BYTES,
    SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
pub use stats::{Histogram, OnlineStats, TimeWeighted};
pub use time::{Bandwidth, SimTime};
