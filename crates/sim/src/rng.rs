//! Deterministic random-number support.
//!
//! Every stochastic component in the workspace draws from a [`SimRng`] seeded
//! explicitly, so experiments are reproducible run-to-run and the bench
//! harness can report stable numbers. Streams can be forked per component so
//! adding draws in one module does not perturb another.
//!
//! The generator is a self-contained xoshiro256++ (public-domain algorithm by
//! Blackman & Vigna) seeded through SplitMix64, so the workspace carries no
//! external RNG dependency and the stream is stable across toolchains.

/// A small, fast, explicitly-seeded RNG for simulation use.
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Seed from a 64-bit value.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        SimRng { state: std::array::from_fn(|_| splitmix64(&mut sm)) }
    }

    /// The raw xoshiro256++ state, for checkpoint/restore. Restoring via
    /// [`SimRng::from_state`] resumes the stream exactly where it was,
    /// including the fork lineage (forks consume one `next_u64` draw, so
    /// the captured state encodes how many children were forked).
    pub fn state(&self) -> [u64; 4] {
        self.state
    }

    /// Rebuild a generator from a state captured with [`SimRng::state`].
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng { state }
    }

    /// Derive an independent child stream for a named component. The label
    /// is hashed (FNV-1a) into the child seed, so streams with different
    /// labels are decorrelated while remaining reproducible.
    pub fn fork(&mut self, label: &str) -> SimRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        let salt = self.next_u64();
        SimRng::seed_from_u64(h ^ salt)
    }

    /// Uniform in `[0, 1)` with 53 bits of precision.
    pub fn uniform(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform_range(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi > lo);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` (Lemire widening-multiply reduction).
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0);
        ((self.next_u64() as u128 * n as u128) >> 64) as usize
    }

    /// A standard normal draw (Box–Muller).
    pub fn standard_normal(&mut self) -> f64 {
        // Avoid u1 == 0 to keep ln finite.
        let u1 = 1.0 - self.uniform();
        let u2 = self.uniform();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.standard_normal()
    }

    /// Bernoulli draw with probability `p`.
    pub fn bernoulli(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        self.uniform() < p
    }

    /// Exponential draw with the given rate (events per unit).
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(rate > 0.0);
        -(1.0 - self.uniform()).ln() / rate
    }

    /// A raw u64 (xoshiro256++ output function).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_decorrelated_and_deterministic() {
        let mut root1 = SimRng::seed_from_u64(7);
        let mut root2 = SimRng::seed_from_u64(7);
        let mut c1 = root1.fork("link");
        let mut c2 = root2.fork("link");
        assert_eq!(c1.next_u64(), c2.next_u64()); // reproducible
        let mut root3 = SimRng::seed_from_u64(7);
        let mut other = root3.fork("cache");
        assert_ne!(c1.next_u64(), other.next_u64());
    }

    #[test]
    fn uniform_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = r.uniform();
            assert!((0.0..1.0).contains(&x));
            let y = r.uniform_range(5.0, 6.0);
            assert!((5.0..6.0).contains(&y));
        }
    }

    #[test]
    fn index_covers_domain() {
        let mut r = SimRng::seed_from_u64(17);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.index(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn normal_moments() {
        let mut r = SimRng::seed_from_u64(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.15, "var={var}");
    }

    #[test]
    fn bernoulli_frequency() {
        let mut r = SimRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| r.bernoulli(0.3)).count();
        assert!((hits as f64 / 10_000.0 - 0.3).abs() < 0.02);
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::seed_from_u64(9);
        let n = 50_000;
        let mean = (0..n).map(|_| r.exponential(2.0)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean={mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(13);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>()); // astronomically unlikely
    }
}
