//! Dense, region-indexed line arenas.
//!
//! Tensor regions give every cache line a stable `(region, line_index)`
//! coordinate, so per-line bookkeeping that the hot paths used to keep in
//! `HashMap<u64, …>`s can live in flat slabs addressed by O(1) arithmetic:
//! a [`LineIndexer`] maps a line address to a dense slot (binary search
//! over the handful of registered region spans — far cheaper than hashing
//! a SipHash key per event), a [`LineSlab`] stores per-line values in
//! lazily materialized fixed-size chunks (so a multi-GB timing-only region
//! costs no memory until a line is actually touched), and a [`LineBitmap`]
//! keeps one bit per line with a popcount maintained incrementally.
//!
//! Addresses outside every registered region resolve to
//! [`LineSlot::Spill`]: callers keep a small hash-map spillover for those,
//! preserving the old "any address works" behavior for standalone use
//! while the region-registered steady state never hashes.

use crate::line::{Addr, LINE_BYTES};

/// Resolved coordinate of one cache line.
///
/// `Dense` carries the slot in the flat slabs; `Spill` carries the global
/// line index (address / 64) for the hash-map spillover.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LineSlot {
    /// Inside a registered region: index into the dense slabs.
    Dense(usize),
    /// Outside every registered region: global line index, for the
    /// spillover map.
    Spill(u64),
}

/// One registered span of lines.
#[derive(Debug, Clone, Copy)]
struct Span {
    /// First line index (base address / 64).
    first_line: u64,
    /// Lines in the span.
    n_lines: usize,
    /// Dense slot of `first_line`.
    slot_base: usize,
}

/// Maps line addresses to dense slots across registered region spans.
///
/// Spans are assigned slots in registration order (append-only, so already
/// handed-out slots never move) and kept sorted by base line for binary
/// search on resolve.
#[derive(Debug, Clone, Default)]
pub struct LineIndexer {
    spans: Vec<Span>,
    slots: usize,
}

impl LineIndexer {
    /// Empty indexer: every address resolves to `Spill`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `bytes` (rounded up to whole lines) starting at `base`.
    /// Returns `false` (and registers nothing) if the span would overlap an
    /// existing one — callers treat those addresses as spillover.
    pub fn add_span(&mut self, base: Addr, bytes: u64) -> bool {
        let first_line = base.line_index();
        let n_lines = bytes.div_ceil(LINE_BYTES as u64) as usize;
        if n_lines == 0 {
            return true;
        }
        let overlaps = self.spans.iter().any(|s| {
            first_line < s.first_line + s.n_lines as u64
                && s.first_line < first_line + n_lines as u64
        });
        if overlaps {
            return false;
        }
        self.spans.push(Span { first_line, n_lines, slot_base: self.slots });
        self.slots += n_lines;
        self.spans.sort_by_key(|s| s.first_line);
        true
    }

    /// Total dense slots (lines) registered.
    pub fn slots(&self) -> usize {
        self.slots
    }

    /// Number of registered spans.
    pub fn spans(&self) -> usize {
        self.spans.len()
    }

    /// Resolve the line containing `a`.
    #[inline]
    pub fn resolve(&self, a: Addr) -> LineSlot {
        self.resolve_line(a.line_index())
    }

    /// Resolve a global line index.
    #[inline]
    pub fn resolve_line(&self, line: u64) -> LineSlot {
        let idx = self.spans.partition_point(|s| s.first_line <= line);
        if idx > 0 {
            let s = &self.spans[idx - 1];
            let off = line - s.first_line;
            if off < s.n_lines as u64 {
                return LineSlot::Dense(s.slot_base + off as usize);
            }
        }
        LineSlot::Spill(line)
    }

    /// Resolve a run of `n` consecutive lines starting at `a`. Returns the
    /// dense slot of the first line only when the *whole* run lies inside
    /// one span (so slot arithmetic `start + i` is valid for every line).
    pub fn resolve_run(&self, a: Addr, n: usize) -> Option<usize> {
        let line = a.line_index();
        let idx = self.spans.partition_point(|s| s.first_line <= line);
        if idx == 0 {
            return None;
        }
        let s = &self.spans[idx - 1];
        let off = line - s.first_line;
        (off + n as u64 <= s.n_lines as u64).then(|| s.slot_base + off as usize)
    }

    /// The registered spans as plain `(first_line, n_lines, slot_base)`
    /// triples, sorted by first line — the checkpoint image of the indexer.
    pub fn span_parts(&self) -> Vec<(u64, u64, u64)> {
        self.spans.iter().map(|s| (s.first_line, s.n_lines as u64, s.slot_base as u64)).collect()
    }

    /// Rebuild an indexer from [`LineIndexer::span_parts`] output. Slot
    /// assignments are restored verbatim, so dense slots handed out before
    /// the checkpoint stay valid after it.
    pub fn from_span_parts(parts: &[(u64, u64, u64)]) -> Self {
        let mut spans: Vec<Span> = parts
            .iter()
            .map(|&(first_line, n_lines, slot_base)| Span {
                first_line,
                n_lines: n_lines as usize,
                slot_base: slot_base as usize,
            })
            .collect();
        spans.sort_by_key(|s| s.first_line);
        let slots = parts.iter().map(|&(_, n, base)| (base + n) as usize).max().unwrap_or(0);
        LineIndexer { spans, slots }
    }
}

/// Lines per [`LineSlab`] chunk. 8192 lines = 512 KB of line data: big
/// enough that chunk crossings are rare in bulk runs, small enough that a
/// barely-touched multi-GB region stays cheap.
pub const CHUNK_LINES: usize = 8192;

/// A dense per-line value store with lazily materialized chunks.
///
/// Slots are allocated in whole chunks of `CHUNK_LINES × stride` entries;
/// a chunk materializes (filled with the default value) on first mutable
/// access, so untouched stretches of a huge region cost only one pointer.
/// `stride` is the entries-per-line factor: 1 for per-line state, 64
/// (`LINE_BYTES`) for line data.
#[derive(Debug, Clone)]
pub struct LineSlab<T: Copy> {
    chunks: Vec<Option<Box<[T]>>>,
    /// Entries per line.
    stride: usize,
    /// Total entries (lines × stride).
    len: usize,
    fill: T,
}

impl<T: Copy> LineSlab<T> {
    /// Empty slab holding `stride` entries per line.
    pub fn new(stride: usize, fill: T) -> Self {
        assert!(stride > 0);
        LineSlab { chunks: Vec::new(), stride, len: 0, fill }
    }

    /// Entries per chunk.
    #[inline]
    fn chunk_len(&self) -> usize {
        CHUNK_LINES * self.stride
    }

    /// Grow to cover `lines` lines (no-op if already that large).
    pub fn grow_lines(&mut self, lines: usize) {
        let want = lines * self.stride;
        if want > self.len {
            self.len = want;
            let chunks = want.div_ceil(self.chunk_len());
            self.chunks.resize_with(chunks, || None);
        }
    }

    /// Total entries covered.
    pub fn len(&self) -> usize {
        self.len
    }
    /// True when no lines are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
    /// Number of chunks actually materialized.
    pub fn chunks_resident(&self) -> usize {
        self.chunks.iter().filter(|c| c.is_some()).count()
    }

    /// Read entry `i`, returning the fill value while the chunk is
    /// unmaterialized.
    #[inline]
    pub fn get(&self, i: usize) -> T {
        debug_assert!(i < self.len);
        match &self.chunks[i / self.chunk_len()] {
            Some(c) => c[i % self.chunk_len()],
            None => self.fill,
        }
    }

    /// Mutable access to entry `i`, materializing its chunk.
    #[inline]
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        debug_assert!(i < self.len);
        let cl = self.chunk_len();
        let (fill, chunk) = (self.fill, &mut self.chunks[i / cl]);
        let c = chunk.get_or_insert_with(|| vec![fill; cl].into_boxed_slice());
        &mut c[i % cl]
    }

    /// Copy entries `[start, start + out.len())` into `out`, reading the
    /// fill value from unmaterialized chunks (no materialization).
    pub fn copy_to(&self, start: usize, out: &mut [T]) {
        debug_assert!(start + out.len() <= self.len);
        let cl = self.chunk_len();
        let mut done = 0;
        while done < out.len() {
            let i = start + done;
            let within = i % cl;
            let take = (cl - within).min(out.len() - done);
            match &self.chunks[i / cl] {
                Some(c) => out[done..done + take].copy_from_slice(&c[within..within + take]),
                None => out[done..done + take].fill(self.fill),
            }
            done += take;
        }
    }

    /// The materialized chunks as `(chunk_index, contents)` pairs, in
    /// index order — together with `len()` and the construction-time
    /// `(stride, fill)`, the complete checkpoint image of the slab.
    /// Unmaterialized chunks are omitted; restoring through
    /// [`LineSlab::from_parts`] leaves them unmaterialized again, so a
    /// restore does not inflate memory over the original.
    pub fn resident_parts(&self) -> Vec<(u64, Vec<T>)> {
        self.chunks
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (i as u64, c.to_vec())))
            .collect()
    }

    /// Rebuild a slab from its construction parameters, total entry count,
    /// and [`LineSlab::resident_parts`] output.
    pub fn from_parts(stride: usize, fill: T, len: usize, parts: &[(u64, Vec<T>)]) -> Self {
        let mut slab = LineSlab::new(stride, fill);
        slab.len = len;
        slab.chunks.resize_with(len.div_ceil(slab.chunk_len()), || None);
        for (idx, contents) in parts {
            let idx = *idx as usize;
            assert!(idx < slab.chunks.len(), "chunk {idx} out of range");
            assert_eq!(contents.len(), slab.chunk_len(), "chunk {idx} has wrong length");
            slab.chunks[idx] = Some(contents.clone().into_boxed_slice());
        }
        slab
    }

    /// Visit each materialized contiguous segment of entries
    /// `[start, start + len)` mutably, materializing chunks on the way.
    /// Segments are passed in order as `(offset_within_range, &mut [T])`.
    pub fn for_segments_mut(
        &mut self,
        start: usize,
        len: usize,
        mut f: impl FnMut(usize, &mut [T]),
    ) {
        debug_assert!(start + len <= self.len);
        let cl = self.chunk_len();
        let fill = self.fill;
        let mut done = 0;
        while done < len {
            let i = start + done;
            let within = i % cl;
            let take = (cl - within).min(len - done);
            let chunk =
                self.chunks[i / cl].get_or_insert_with(|| vec![fill; cl].into_boxed_slice());
            f(done, &mut chunk[within..within + take]);
            done += take;
        }
    }
}

/// One bit per line with an incrementally maintained popcount.
#[derive(Debug, Clone, Default)]
pub struct LineBitmap {
    words: Vec<u64>,
    lines: usize,
    ones: usize,
}

impl LineBitmap {
    /// Empty bitmap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow to cover `lines` lines (new bits are 0).
    pub fn grow(&mut self, lines: usize) {
        if lines > self.lines {
            self.lines = lines;
            self.words.resize(lines.div_ceil(64), 0);
        }
    }

    /// Lines covered.
    pub fn len(&self) -> usize {
        self.lines
    }
    /// True when no lines are covered.
    pub fn is_empty(&self) -> bool {
        self.lines == 0
    }
    /// Bits currently set.
    pub fn count(&self) -> usize {
        self.ones
    }

    /// Read bit `i`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.lines);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`; returns the previous value.
    #[inline]
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.lines);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & m != 0;
        if !was {
            self.words[w] |= m;
            self.ones += 1;
        }
        was
    }

    /// Clear bit `i`; returns the previous value.
    #[inline]
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.lines);
        let (w, m) = (i / 64, 1u64 << (i % 64));
        let was = self.words[w] & m != 0;
        if was {
            self.words[w] &= !m;
            self.ones -= 1;
        }
        was
    }

    /// First set bit in `[start, start + len)`, if any — word-at-a-time, so
    /// the all-clear common case costs `len / 64` tests.
    pub fn first_set_in(&self, start: usize, len: usize) -> Option<usize> {
        debug_assert!(start + len <= self.lines);
        if self.ones == 0 || len == 0 {
            return None;
        }
        let end = start + len;
        let mut i = start;
        while i < end {
            let w = i / 64;
            let lo = i % 64;
            let hi = (end - w * 64).min(64);
            let mask = if hi == 64 { !0u64 << lo } else { ((1u64 << hi) - 1) & (!0u64 << lo) };
            let bits = self.words[w] & mask;
            if bits != 0 {
                return Some(w * 64 + bits.trailing_zeros() as usize);
            }
            i = (w + 1) * 64;
        }
        None
    }

    /// Set every bit in `[start, start + len)`.
    pub fn set_range(&mut self, start: usize, len: usize) {
        for i in start..start + len {
            self.set(i);
        }
    }

    /// The raw bit words, for a checkpoint. Paired with `len()`, this is
    /// the full image (the popcount is derivable).
    pub fn word_parts(&self) -> Vec<u64> {
        self.words.clone()
    }

    /// Rebuild a bitmap from `lines` and [`LineBitmap::word_parts`] output;
    /// the popcount is recomputed.
    pub fn from_parts(lines: usize, words: &[u64]) -> Self {
        assert_eq!(words.len(), lines.div_ceil(64), "word count does not match line count");
        let ones = words.iter().map(|w| w.count_ones() as usize).sum();
        LineBitmap { words: words.to_vec(), lines, ones }
    }

    /// Iterate the indices of all set bits, ascending.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(move |(w, &word)| {
            let base = w * 64;
            (0..64).filter(move |b| word & (1u64 << b) != 0).map(move |b| base + b)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexer_resolves_dense_and_spill() {
        let mut ix = LineIndexer::new();
        assert_eq!(ix.resolve(Addr(0)), LineSlot::Spill(0));
        assert!(ix.add_span(Addr(0), 256)); // 4 lines, slots 0..4
        assert!(ix.add_span(Addr(1024), 128)); // 2 lines, slots 4..6
        assert_eq!(ix.slots(), 6);
        assert_eq!(ix.resolve(Addr(0)), LineSlot::Dense(0));
        assert_eq!(ix.resolve(Addr(255)), LineSlot::Dense(3));
        assert_eq!(ix.resolve(Addr(256)), LineSlot::Spill(4));
        assert_eq!(ix.resolve(Addr(1024)), LineSlot::Dense(4));
        assert_eq!(ix.resolve(Addr(1089)), LineSlot::Dense(5));
        assert_eq!(ix.resolve(Addr(1152)), LineSlot::Spill(18));
    }

    #[test]
    fn indexer_slots_stable_under_out_of_order_registration() {
        let mut ix = LineIndexer::new();
        assert!(ix.add_span(Addr(4096), 64)); // slot 0
        assert!(ix.add_span(Addr(0), 64)); // slot 1, though lower address
        assert_eq!(ix.resolve(Addr(4096)), LineSlot::Dense(0));
        assert_eq!(ix.resolve(Addr(0)), LineSlot::Dense(1));
    }

    #[test]
    fn indexer_rejects_overlap() {
        let mut ix = LineIndexer::new();
        assert!(ix.add_span(Addr(0), 256));
        assert!(!ix.add_span(Addr(128), 256));
        assert_eq!(ix.slots(), 4);
    }

    #[test]
    fn indexer_resolve_run_requires_one_span() {
        let mut ix = LineIndexer::new();
        ix.add_span(Addr(0), 256); // 4 lines
        assert_eq!(ix.resolve_run(Addr(0), 4), Some(0));
        assert_eq!(ix.resolve_run(Addr(64), 3), Some(1));
        assert_eq!(ix.resolve_run(Addr(64), 4), None, "run leaves the span");
        assert_eq!(ix.resolve_run(Addr(512), 1), None);
    }

    #[test]
    fn slab_lazy_chunks_and_fill() {
        let mut s: LineSlab<u8> = LineSlab::new(1, 0xEE);
        s.grow_lines(3 * CHUNK_LINES);
        assert_eq!(s.chunks_resident(), 0);
        assert_eq!(s.get(5), 0xEE);
        *s.get_mut(CHUNK_LINES + 7) = 0x42;
        assert_eq!(s.chunks_resident(), 1, "only the touched chunk materialized");
        assert_eq!(s.get(CHUNK_LINES + 7), 0x42);
        assert_eq!(s.get(CHUNK_LINES + 8), 0xEE, "rest of chunk holds the fill");
    }

    #[test]
    fn slab_segments_cross_chunks() {
        let mut s: LineSlab<u32> = LineSlab::new(1, 0);
        s.grow_lines(2 * CHUNK_LINES);
        let start = CHUNK_LINES - 2;
        let mut offsets = Vec::new();
        s.for_segments_mut(start, 5, |off, seg| {
            offsets.push((off, seg.len()));
            for v in seg.iter_mut() {
                *v = 9;
            }
        });
        assert_eq!(offsets, vec![(0, 2), (2, 3)]);
        for i in 0..5 {
            assert_eq!(s.get(start + i), 9);
        }
    }

    #[test]
    fn slab_copy_to_mixes_resident_and_fill() {
        let mut s: LineSlab<u8> = LineSlab::new(1, 0x11);
        s.grow_lines(2 * CHUNK_LINES);
        *s.get_mut(CHUNK_LINES) = 0x77; // second chunk resident, first absent
        let mut out = [0u8; 4];
        s.copy_to(CHUNK_LINES - 2, &mut out);
        assert_eq!(out, [0x11, 0x11, 0x77, 0x11]);
    }

    #[test]
    fn bitmap_counts_and_scans() {
        let mut b = LineBitmap::new();
        b.grow(200);
        assert_eq!(b.count(), 0);
        assert!(!b.set(3));
        assert!(b.set(3), "second set reports already-set");
        b.set(130);
        assert_eq!(b.count(), 2);
        assert!(b.get(3) && b.get(130));
        assert_eq!(b.first_set_in(0, 200), Some(3));
        assert_eq!(b.first_set_in(4, 196), Some(130));
        assert_eq!(b.first_set_in(4, 100), None);
        assert!(b.clear(3));
        assert!(!b.clear(3));
        assert_eq!(b.count(), 1);
        b.set_range(60, 10);
        assert_eq!(b.count(), 11);
        assert_eq!(b.first_set_in(0, 200), Some(60));
    }

    #[test]
    fn bitmap_scan_word_boundaries() {
        let mut b = LineBitmap::new();
        b.grow(256);
        b.set(63);
        b.set(64);
        b.set(191);
        assert_eq!(b.first_set_in(0, 63), None);
        assert_eq!(b.first_set_in(0, 64), Some(63));
        assert_eq!(b.first_set_in(64, 64), Some(64));
        assert_eq!(b.first_set_in(65, 127), Some(191), "191 is the last line in range");
        assert_eq!(b.first_set_in(65, 126), None, "range ends just before 191");
        assert_eq!(b.first_set_in(192, 64), None);
    }
}
