//! Page-retirement remap table.
//!
//! When pool-media RAS detects a *persistent* uncorrectable fault in a
//! line (unlike the link layer's transient flit poison, these survive
//! retry), the line's physical backing is retired and the logical line is
//! transparently re-homed to a spare physical slot. The table is the
//! single indirection between logical line indices (what regions,
//! bitmaps, the coherence indexer, and the auditor reason about) and
//! physical data slots (where the bytes actually live): everything above
//! stays logical, only the data-slab access resolves through here.
//!
//! Spares live in a reserved physical range *beyond* any mappable region,
//! so the bump-allocator frontier, `is_mapped`, and the auditor's
//! accounting invariants are untouched by retirement. Retiring a line
//! that is already retired assigns a *fresh* spare (the previous spare is
//! itself considered worn out and abandoned) — media wear-out can strike
//! the replacement too.
//!
//! The table is deterministic and snapshot-friendly: entries are kept
//! sorted by logical line, spares are handed out sequentially, and the
//! snapshot captures the exact allocation cursor.

use serde::{Deserialize, Serialize};

/// Retirement failed: every spare slot has been consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemapError {
    /// No spare slot is left for the line that needs re-homing.
    SparesExhausted {
        /// The logical line that could not be retired.
        line: u64,
    },
}

impl std::fmt::Display for RemapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RemapError::SparesExhausted { line } => {
                write!(f, "no spare slot left to retire line {line}")
            }
        }
    }
}
impl std::error::Error for RemapError {}

/// The logical-line → physical-slot indirection for retired pages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemapTable {
    /// First physical slot of the spare range (beyond every region).
    spare_base: u64,
    /// Total spare slots reserved.
    spare_slots: u64,
    /// Spares consumed so far (allocation cursor).
    next_spare: u64,
    /// `(logical line, physical slot)`, sorted by logical line.
    entries: Vec<(u64, u64)>,
}

/// Serializable image of a [`RemapTable`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RemapSnapshot {
    /// First physical slot of the spare range.
    pub spare_base: u64,
    /// Total spare slots reserved.
    pub spare_slots: u64,
    /// Spares consumed.
    pub next_spare: u64,
    /// `(logical line, physical slot)`, sorted by logical line.
    pub entries: Vec<(u64, u64)>,
}

impl RemapTable {
    /// A table with `spare_slots` spare physical slots starting at
    /// `spare_base` (which must lie beyond every mappable region).
    pub fn new(spare_base: u64, spare_slots: u64) -> Self {
        RemapTable { spare_base, spare_slots, next_spare: 0, entries: Vec::new() }
    }

    /// Resolve a logical line to its physical slot (identity unless the
    /// line has been retired).
    #[inline]
    pub fn resolve(&self, line: u64) -> u64 {
        if self.entries.is_empty() {
            return line;
        }
        match self.entries.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => self.entries[i].1,
            Err(_) => line,
        }
    }

    /// Retire a logical line: re-home it to the next spare slot. Returns
    /// the new physical slot. Retiring an already-retired line abandons
    /// its current spare and assigns a fresh one.
    pub fn retire(&mut self, line: u64) -> Result<u64, RemapError> {
        if self.next_spare >= self.spare_slots {
            return Err(RemapError::SparesExhausted { line });
        }
        let slot = self.spare_base + self.next_spare;
        self.next_spare += 1;
        match self.entries.binary_search_by_key(&line, |&(l, _)| l) {
            Ok(i) => self.entries[i].1 = slot,
            Err(i) => self.entries.insert(i, (line, slot)),
        }
        Ok(slot)
    }

    /// Has this logical line been retired?
    pub fn is_retired(&self, line: u64) -> bool {
        self.entries.binary_search_by_key(&line, |&(l, _)| l).is_ok()
    }

    /// Number of retired logical lines.
    pub fn retired_count(&self) -> u64 {
        self.entries.len() as u64
    }

    /// Spare slots not yet consumed.
    pub fn spares_left(&self) -> u64 {
        self.spare_slots - self.next_spare
    }

    /// First physical slot of the spare range.
    pub fn spare_base(&self) -> u64 {
        self.spare_base
    }

    /// Serializable image of the table.
    pub fn snapshot(&self) -> RemapSnapshot {
        RemapSnapshot {
            spare_base: self.spare_base,
            spare_slots: self.spare_slots,
            next_spare: self.next_spare,
            entries: self.entries.clone(),
        }
    }

    /// Rebuild from a snapshot.
    pub fn from_snapshot(s: &RemapSnapshot) -> Self {
        RemapTable {
            spare_base: s.spare_base,
            spare_slots: s.spare_slots,
            next_spare: s.next_spare,
            entries: s.entries.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_until_retired() {
        let t = RemapTable::new(1000, 4);
        assert_eq!(t.resolve(0), 0);
        assert_eq!(t.resolve(999), 999);
        assert_eq!(t.retired_count(), 0);
        assert_eq!(t.spares_left(), 4);
    }

    #[test]
    fn retire_re_homes_to_sequential_spares() {
        let mut t = RemapTable::new(1000, 4);
        assert_eq!(t.retire(7).unwrap(), 1000);
        assert_eq!(t.retire(3).unwrap(), 1001);
        assert_eq!(t.resolve(7), 1000);
        assert_eq!(t.resolve(3), 1001);
        assert_eq!(t.resolve(5), 5);
        assert!(t.is_retired(7) && t.is_retired(3) && !t.is_retired(5));
        assert_eq!(t.retired_count(), 2);
        assert_eq!(t.spares_left(), 2);
    }

    #[test]
    fn re_retiring_a_line_consumes_a_fresh_spare() {
        let mut t = RemapTable::new(1000, 4);
        assert_eq!(t.retire(7).unwrap(), 1000);
        assert_eq!(t.retire(7).unwrap(), 1001);
        assert_eq!(t.resolve(7), 1001);
        assert_eq!(t.retired_count(), 1, "still one logical line retired");
        assert_eq!(t.spares_left(), 2, "but two spares consumed");
    }

    #[test]
    fn exhaustion_is_a_typed_error() {
        let mut t = RemapTable::new(1000, 1);
        t.retire(0).unwrap();
        let err = t.retire(1).unwrap_err();
        assert_eq!(err, RemapError::SparesExhausted { line: 1 });
        assert!(err.to_string().contains("line 1"));
        // The failed retirement changed nothing.
        assert_eq!(t.resolve(1), 1);
        assert_eq!(t.retired_count(), 1);
    }

    #[test]
    fn snapshot_roundtrip_is_exact() {
        let mut t = RemapTable::new(500, 8);
        t.retire(2).unwrap();
        t.retire(9).unwrap();
        t.retire(2).unwrap();
        let snap = t.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back = RemapTable::from_snapshot(&serde_json::from_str(&json).unwrap());
        assert_eq!(back, t);
        assert_eq!(back.resolve(2), t.resolve(2));
        assert_eq!(back.spares_left(), t.spares_left());
    }
}
