//! A bank/row-state DRAM timing model — the workspace's Ramulator
//! substitute for §VIII-D: the Disaggregator performs one extra read per
//! cache-line update (read stale line, merge dirty bytes, write merged
//! line). The paper reports that replaying the traces through Ramulator
//! inflates total DRAM cycles by 2.48× (sequential) and 1.9× (shuffled),
//! yet the inflation is invisible end-to-end because GDDR bandwidth
//! (900 GB/s) dwarfs PCIe 3.0 (16 GB/s).
//!
//! The model tracks per-bank open rows and read/write bus turnaround, which
//! is enough to reproduce the asymmetry: a read-modify-write pair on an open
//! row costs more than 2× a lone write on a *sequential* stream (turnaround
//! penalties on every pair), but less than 2× on a *shuffled* stream (the
//! extra read opens the row, so the write becomes a row hit).

use crate::line::Addr;
use serde::{Deserialize, Serialize};

/// DRAM timing parameters in memory-clock cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Number of banks (across all channels/ranks, flattened).
    pub banks: usize,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// ACT-to-CAS delay (tRCD).
    pub t_rcd: u64,
    /// Precharge time (tRP).
    pub t_rp: u64,
    /// CAS latency (tCL / tCAS).
    pub t_cas: u64,
    /// Data burst occupancy per 64-byte access (tBURST).
    pub t_burst: u64,
    /// Bus turnaround penalty when switching between read and write.
    pub t_turnaround: u64,
}

impl DramConfig {
    /// A GDDR5-flavored per-channel configuration (V100-era accelerator
    /// memory; the paper's GPU has 8 memory controllers and traces are
    /// replayed per channel). `banks` counts *effective* banks: the number
    /// of activations that can genuinely proceed in parallel once tFAW and
    /// bank-group restrictions are folded in.
    pub fn gddr5() -> Self {
        DramConfig {
            banks: 4,
            row_bytes: 2048,
            t_rcd: 14,
            t_rp: 14,
            t_cas: 14,
            t_burst: 4,
            t_turnaround: 2,
        }
    }

    /// DDR4-2666-flavored host memory (Table II: 32 GB DDR4-2600).
    pub fn ddr4() -> Self {
        DramConfig {
            banks: 4,
            row_bytes: 8192,
            t_rcd: 19,
            t_rp: 19,
            t_cas: 19,
            t_burst: 4,
            t_turnaround: 2,
        }
    }
}

/// Direction of a DRAM access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// Read a 64-byte line.
    Read,
    /// Write a 64-byte line.
    Write,
}

/// One access in a DRAM command trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramAccess {
    /// Line address.
    pub addr: Addr,
    /// Read or write.
    pub dir: Dir,
}

/// Result of replaying a trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DramResult {
    /// Total cycles from first issue to last completion.
    pub cycles: u64,
    /// Row-buffer hits.
    pub row_hits: u64,
    /// Row-buffer misses (activation needed).
    pub row_misses: u64,
    /// Accesses replayed.
    pub accesses: u64,
}

impl DramResult {
    /// Row-hit rate.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct BankState {
    open_row: Option<u64>,
    /// Earliest cycle the bank can accept its next column command.
    cas_ready: u64,
}

/// The DRAM device model: replays an access stream and accumulates cycles.
#[derive(Debug, Clone)]
pub struct Dram {
    cfg: DramConfig,
    banks: Vec<BankState>,
    bus_free: u64,
    last_dir: Option<Dir>,
    result: DramResult,
}

impl Dram {
    /// Fresh device with all banks precharged.
    pub fn new(cfg: DramConfig) -> Self {
        Dram {
            banks: vec![BankState { open_row: None, cas_ready: 0 }; cfg.banks],
            cfg,
            bus_free: 0,
            last_dir: None,
            result: DramResult::default(),
        }
    }

    #[inline]
    fn map(&self, a: Addr) -> (usize, u64) {
        // Row-interleaved bank mapping: consecutive rows rotate banks, so a
        // sequential sweep streams within a row then moves to the next bank.
        let row_global = a.0 / self.cfg.row_bytes;
        let bank = (row_global % self.cfg.banks as u64) as usize;
        (bank, row_global / self.cfg.banks as u64)
    }

    /// Issue one access; returns its completion cycle.
    pub fn access(&mut self, acc: DramAccess) -> u64 {
        let (bank_idx, row) = self.map(acc.addr);
        let cfg = self.cfg;
        let bank = &mut self.banks[bank_idx];
        self.result.accesses += 1;

        // Row activation if needed. CAS latency itself is pipelined; what
        // occupies the bank is precharge+activate on a miss and the column
        // command slot (one per burst) on hits.
        let mut cas_ready = bank.cas_ready;
        match bank.open_row {
            Some(open) if open == row => {
                self.result.row_hits += 1;
            }
            Some(_) => {
                self.result.row_misses += 1;
                cas_ready += cfg.t_rp + cfg.t_rcd;
            }
            None => {
                self.result.row_misses += 1;
                cas_ready += cfg.t_rcd;
            }
        }
        bank.open_row = Some(row);

        // The data bus serializes bursts, with a turnaround bubble when the
        // transfer direction flips.
        let mut bus_at = self.bus_free.max(cas_ready);
        if let Some(last) = self.last_dir {
            if last != acc.dir {
                bus_at += cfg.t_turnaround;
            }
        }
        let done = bus_at + cfg.t_cas + cfg.t_burst;
        self.bus_free = bus_at + cfg.t_burst;
        self.last_dir = Some(acc.dir);
        bank.cas_ready = bus_at + cfg.t_burst;
        self.result.cycles = self.result.cycles.max(done);
        done
    }

    /// Replay a whole trace from a fresh bus timeline, returning totals.
    pub fn replay<I: IntoIterator<Item = DramAccess>>(cfg: DramConfig, trace: I) -> DramResult {
        let mut d = Dram::new(cfg);
        for acc in trace {
            d.access(acc);
        }
        d.result
    }

    /// Counters so far.
    pub fn result(&self) -> DramResult {
        self.result
    }
}

/// Build the *write-only* trace of a line-granular update stream (the
/// baseline: CXL writes merged lines directly).
pub fn write_only_trace(addrs: &[Addr]) -> Vec<DramAccess> {
    addrs.iter().map(|&addr| DramAccess { addr, dir: Dir::Write }).collect()
}

/// Build the *read-modify-write* trace the Disaggregator produces: for each
/// updated line, read the stale copy, then write the merged line (§V-C:
/// "one extra read operation per cache line update").
pub fn read_modify_write_trace(addrs: &[Addr]) -> Vec<DramAccess> {
    let mut out = Vec::with_capacity(addrs.len() * 2);
    for &addr in addrs {
        out.push(DramAccess { addr, dir: Dir::Read });
        out.push(DramAccess { addr, dir: Dir::Write });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use teco_sim::SimRng;

    fn seq_addrs(n: u64) -> Vec<Addr> {
        (0..n).map(|i| Addr(i * 64)).collect()
    }

    #[test]
    fn row_hits_on_sequential_stream() {
        let cfg = DramConfig::gddr5();
        let addrs = seq_addrs(1024);
        let r = Dram::replay(cfg, write_only_trace(&addrs));
        // 2048-byte rows hold 32 lines: hit rate ≈ 31/32.
        assert!(r.hit_rate() > 0.9, "hit rate {}", r.hit_rate());
        assert_eq!(r.accesses, 1024);
    }

    #[test]
    fn shuffled_stream_mostly_misses() {
        let cfg = DramConfig::gddr5();
        let mut rng = SimRng::seed_from_u64(99);
        let mut addrs = seq_addrs(8192);
        rng.shuffle(&mut addrs);
        let r = Dram::replay(cfg, write_only_trace(&addrs));
        assert!(r.hit_rate() < 0.3, "hit rate {}", r.hit_rate());
    }

    #[test]
    fn rmw_inflation_sequential_exceeds_2x() {
        // The §VIII-D shape: on a sequential stream, interleaving a read
        // before every write costs MORE than 2× (bus turnaround on every
        // pair) — the paper measured 2.48×.
        let cfg = DramConfig::gddr5();
        let addrs = seq_addrs(4096);
        let w = Dram::replay(cfg, write_only_trace(&addrs));
        let rmw = Dram::replay(cfg, read_modify_write_trace(&addrs));
        let inflation = rmw.cycles as f64 / w.cycles as f64;
        assert!(inflation > 2.0 && inflation < 3.5, "sequential inflation {inflation}");
    }

    #[test]
    fn rmw_inflation_shuffled_below_sequential() {
        // Shuffled: the extra read performs the row activation the write
        // would have paid anyway, so inflation is < the sequential case —
        // the paper measured 1.9× vs 2.48×.
        let cfg = DramConfig::gddr5();
        let mut rng = SimRng::seed_from_u64(7);
        let mut addrs = seq_addrs(4096);
        rng.shuffle(&mut addrs);
        let w = Dram::replay(cfg, write_only_trace(&addrs));
        let rmw = Dram::replay(cfg, read_modify_write_trace(&addrs));
        let shuffled_inflation = rmw.cycles as f64 / w.cycles as f64;

        let seq = seq_addrs(4096);
        let seq_inflation = Dram::replay(cfg, read_modify_write_trace(&seq)).cycles as f64
            / Dram::replay(cfg, write_only_trace(&seq)).cycles as f64;
        assert!(
            shuffled_inflation < seq_inflation,
            "shuffled {shuffled_inflation} !< sequential {seq_inflation}"
        );
        assert!(shuffled_inflation > 1.2 && shuffled_inflation < 2.2);
    }

    #[test]
    fn rmw_read_is_row_hit_after_write_miss() {
        // Within one RMW pair the write always hits the row the read opened.
        let cfg = DramConfig::gddr5();
        let addrs = vec![Addr(0), Addr(1 << 20)];
        let r = Dram::replay(cfg, read_modify_write_trace(&addrs));
        assert_eq!(r.row_hits, 2); // each write hits
        assert_eq!(r.row_misses, 2); // each read misses
    }

    #[test]
    fn bank_mapping_spreads_rows() {
        let d = Dram::new(DramConfig::gddr5());
        let (b0, _) = d.map(Addr(0));
        let (b1, _) = d.map(Addr(2048)); // next row
        assert_ne!(b0, b1);
        // Same row, different column → same bank and row.
        let (ba, ra) = d.map(Addr(64));
        let (bb, rb) = d.map(Addr(128));
        assert_eq!((ba, ra), (bb, rb));
    }

    #[test]
    fn replay_empty_trace() {
        let r = Dram::replay(DramConfig::ddr4(), Vec::new());
        assert_eq!(r.cycles, 0);
        assert_eq!(r.accesses, 0);
        assert_eq!(r.hit_rate(), 0.0);
    }
}
