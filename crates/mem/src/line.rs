//! Cache-line primitives: physical addresses, 64-byte line payloads, and
//! word-level accessors. The dirty-byte aggregation logic in `teco-cxl`
//! operates on these payloads bit-exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Cache-line size in bytes. The paper (and gem5 Table II) uses 64-byte
/// lines throughout; DBA packs "the last N bytes of each 4-byte parameter"
/// out of a 64-byte line.
pub const LINE_BYTES: usize = 64;
/// 4-byte word size — one FP32 parameter.
pub const WORD_BYTES: usize = 4;
/// Words per cache line (16 FP32 parameters).
pub const WORDS_PER_LINE: usize = LINE_BYTES / WORD_BYTES;

/// A byte address in the simulated physical address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Addr(pub u64);

impl Addr {
    /// The address of the cache line containing this byte.
    #[inline]
    pub const fn line_base(self) -> Addr {
        Addr(self.0 & !(LINE_BYTES as u64 - 1))
    }
    /// Byte offset within the cache line.
    #[inline]
    pub const fn line_offset(self) -> usize {
        (self.0 & (LINE_BYTES as u64 - 1)) as usize
    }
    /// True when line-aligned.
    #[inline]
    pub const fn is_line_aligned(self) -> bool {
        self.0.is_multiple_of(LINE_BYTES as u64)
    }
    /// Line index (address / 64).
    #[inline]
    pub const fn line_index(self) -> u64 {
        self.0 / LINE_BYTES as u64
    }
    /// Add a byte offset.
    #[inline]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#012x}", self.0)
    }
}

/// Number of 64-byte lines needed to hold `bytes` (ceiling division).
#[inline]
pub const fn lines_for_bytes(bytes: u64) -> u64 {
    bytes.div_ceil(LINE_BYTES as u64)
}

/// The payload of one 64-byte cache line.
///
/// `repr(transparent)` over the byte array so a run of lines is one
/// contiguous byte region — [`lines_as_bytes`] hands that region to the
/// bulk pack/merge kernels without per-line staging.
#[derive(Clone, Copy, PartialEq, Eq)]
#[repr(transparent)]
pub struct LineData(pub [u8; LINE_BYTES]);

/// View a run of lines as one contiguous byte slice (`len * 64` bytes).
#[inline]
pub fn lines_as_bytes(lines: &[LineData]) -> &[u8] {
    // SAFETY: `LineData` is `repr(transparent)` over `[u8; LINE_BYTES]`,
    // so a slice of lines is exactly `lines.len() * LINE_BYTES` contiguous
    // initialized bytes with alignment 1.
    unsafe { std::slice::from_raw_parts(lines.as_ptr().cast(), lines.len() * LINE_BYTES) }
}

/// Mutable counterpart of [`lines_as_bytes`]. Every byte pattern is a
/// valid `LineData`, so arbitrary writes through the view are sound.
#[inline]
pub fn lines_as_bytes_mut(lines: &mut [LineData]) -> &mut [u8] {
    // SAFETY: as in `lines_as_bytes`; `LineData` has no invalid bit
    // patterns, so mutation through the byte view cannot break it.
    unsafe { std::slice::from_raw_parts_mut(lines.as_mut_ptr().cast(), lines.len() * LINE_BYTES) }
}

impl Default for LineData {
    fn default() -> Self {
        LineData([0u8; LINE_BYTES])
    }
}

impl fmt::Debug for LineData {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "LineData[")?;
        for (i, b) in self.0.iter().enumerate() {
            if i > 0 && i % 4 == 0 {
                write!(f, " ")?;
            }
            write!(f, "{b:02x}")?;
        }
        write!(f, "]")
    }
}

impl LineData {
    /// A zero-filled line.
    pub fn zeroed() -> Self {
        Self::default()
    }

    /// Build a line from 16 FP32 values (little-endian, the layout PyTorch
    /// tensors have on x86).
    pub fn from_f32(words: [f32; WORDS_PER_LINE]) -> Self {
        let mut data = [0u8; LINE_BYTES];
        for (i, w) in words.iter().enumerate() {
            data[i * 4..i * 4 + 4].copy_from_slice(&w.to_le_bits_bytes());
        }
        LineData(data)
    }

    /// Decode the 16 FP32 values in the line.
    pub fn to_f32(&self) -> [f32; WORDS_PER_LINE] {
        let mut out = [0f32; WORDS_PER_LINE];
        for (i, o) in out.iter_mut().enumerate() {
            let mut b = [0u8; 4];
            b.copy_from_slice(&self.0[i * 4..i * 4 + 4]);
            *o = f32::from_le_bytes(b);
        }
        out
    }

    /// Read word `w` (0..16) as raw little-endian u32.
    #[inline]
    pub fn word(&self, w: usize) -> u32 {
        assert!(w < WORDS_PER_LINE);
        let mut b = [0u8; 4];
        b.copy_from_slice(&self.0[w * 4..w * 4 + 4]);
        u32::from_le_bytes(b)
    }

    /// Write word `w` (0..16) as raw little-endian u32.
    #[inline]
    pub fn set_word(&mut self, w: usize, v: u32) {
        assert!(w < WORDS_PER_LINE);
        self.0[w * 4..w * 4 + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// Bytes of the line.
    #[inline]
    pub fn bytes(&self) -> &[u8; LINE_BYTES] {
        &self.0
    }
    /// Mutable bytes of the line.
    #[inline]
    pub fn bytes_mut(&mut self) -> &mut [u8; LINE_BYTES] {
        &mut self.0
    }
}

/// Helper trait: `f32::to_le_bits_bytes` without going through `u32` at every
/// call site.
trait F32Ext {
    fn to_le_bits_bytes(self) -> [u8; 4];
}
impl F32Ext for f32 {
    #[inline]
    fn to_le_bits_bytes(self) -> [u8; 4] {
        self.to_le_bytes()
    }
}

/// Classification of *which bytes changed* between two observations of the
/// same 4-byte word across consecutive training steps — the paper's Fig. 2
/// taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ByteChange {
    /// All four bytes identical (the word did not change value).
    Unchanged,
    /// Only the least-significant byte changed (Fig 2 "case 1").
    LastByte,
    /// Only the least-significant two bytes changed (Fig 2 "case 2").
    LastTwoBytes,
    /// Any other distribution of changed bytes (Fig 2 "case 3").
    Other,
}

/// Classify the byte-level difference between `old` and `new` 32-bit words.
///
/// FP32 is stored little-endian, so "least significant two bytes" are the low
/// two bytes of the `u32` representation — the low 16 mantissa bits of the
/// float, matching §III's observation that value changes concentrate in the
/// mantissa.
pub fn classify_change(old: u32, new: u32) -> ByteChange {
    let diff = old ^ new;
    if diff == 0 {
        ByteChange::Unchanged
    } else if diff & 0xFFFF_FF00 == 0 {
        ByteChange::LastByte
    } else if diff & 0xFFFF_0000 == 0 {
        ByteChange::LastTwoBytes
    } else {
        ByteChange::Other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_alignment() {
        let a = Addr(0x1234);
        assert_eq!(a.line_base(), Addr(0x1200));
        assert_eq!(a.line_offset(), 0x34);
        assert!(!a.is_line_aligned());
        assert!(Addr(0x1240).is_line_aligned());
        assert_eq!(Addr(128).line_index(), 2);
        assert_eq!(a.offset(0x10), Addr(0x1244));
    }

    #[test]
    fn lines_for_bytes_ceiling() {
        assert_eq!(lines_for_bytes(0), 0);
        assert_eq!(lines_for_bytes(1), 1);
        assert_eq!(lines_for_bytes(64), 1);
        assert_eq!(lines_for_bytes(65), 2);
        // Bert-large: 334M params × 4 B = 1.336 GB → ~20.9 M lines.
        assert_eq!(lines_for_bytes(334_000_000 * 4), 20_875_000);
    }

    #[test]
    fn line_f32_roundtrip() {
        let mut words = [0f32; WORDS_PER_LINE];
        for (i, w) in words.iter_mut().enumerate() {
            *w = (i as f32) * 1.5 - 3.25;
        }
        let line = LineData::from_f32(words);
        assert_eq!(line.to_f32(), words);
    }

    #[test]
    fn lines_as_bytes_views_are_contiguous_and_writable() {
        let mut lines: Vec<LineData> = (0..3u8)
            .map(|i| {
                let mut l = LineData::zeroed();
                l.bytes_mut().fill(i + 1);
                l
            })
            .collect();
        let flat = lines_as_bytes(&lines);
        assert_eq!(flat.len(), 3 * LINE_BYTES);
        for (i, chunk) in flat.chunks_exact(LINE_BYTES).enumerate() {
            assert!(chunk.iter().all(|&b| b == i as u8 + 1), "line {i}");
        }
        assert_eq!(lines_as_bytes(&lines[..0]), &[] as &[u8]);

        lines_as_bytes_mut(&mut lines)[LINE_BYTES] = 0xEE;
        assert_eq!(lines[1].bytes()[0], 0xEE);
        assert_eq!(lines[0].bytes()[LINE_BYTES - 1], 1);
    }

    #[test]
    fn line_word_accessors() {
        let mut line = LineData::zeroed();
        line.set_word(0, 0xDEAD_BEEF);
        line.set_word(15, 0x0102_0304);
        assert_eq!(line.word(0), 0xDEAD_BEEF);
        assert_eq!(line.word(15), 0x0102_0304);
        assert_eq!(line.bytes()[0], 0xEF); // little-endian
        assert_eq!(line.word(7), 0);
    }

    #[test]
    #[should_panic]
    fn word_out_of_range_panics() {
        LineData::zeroed().word(16);
    }

    #[test]
    fn classify_change_cases() {
        assert_eq!(classify_change(0x11223344, 0x11223344), ByteChange::Unchanged);
        assert_eq!(classify_change(0x11223344, 0x11223345), ByteChange::LastByte);
        assert_eq!(classify_change(0x11223344, 0x1122FF44), ByteChange::LastTwoBytes);
        assert_eq!(classify_change(0x11223344, 0x11FF3344), ByteChange::Other);
        assert_eq!(classify_change(0x11223344, 0xFF223344), ByteChange::Other);
        // Change in byte 1 only still counts as "last two bytes" per the
        // paper's taxonomy (the low TWO bytes are where the change lives).
        assert_eq!(classify_change(0x11223344, 0x11223444), ByteChange::LastTwoBytes);
    }

    #[test]
    fn classify_change_on_floats() {
        // A small additive update to a float typically flips low mantissa
        // bits only.
        let old = 1.000000f32.to_bits();
        let new = 1.0000001f32.to_bits();
        assert_eq!(classify_change(old, new), ByteChange::LastByte);
        // A sign flip touches the top byte.
        let neg = (-1.0f32).to_bits();
        assert_eq!(classify_change(old, neg), ByteChange::Other);
    }
}
