//! # teco-mem — memory-subsystem models
//!
//! Substrate crate for the TECO (SC'24) reproduction:
//!
//! - [`mod@line`]: 64-byte cache-line payloads, addresses, and the Fig. 2
//!   byte-change taxonomy ([`ByteChange`], [`classify_change`]);
//! - [`region`]: BAR-style address-region registry (the Aggregator's
//!   per-region address registers);
//! - [`cache`]: set-associative write-back caches and the Table II gem5-avx
//!   L1/L2/L3 hierarchy, producing the main-memory writeback stream the CXL
//!   home agent inspects;
//! - [`trace`]: vectorized-optimizer sweep generators that convert a
//!   parameter-update kernel into a timestamped writeback trace (the gem5
//!   trace-collection substitute), plus chunk-granular schedules for
//!   billion-parameter regions;
//! - [`dram`]: a bank/row-state DRAM model (Ramulator substitute) for the
//!   §VIII-D Disaggregator read-modify-write overhead study;
//! - [`remap`]: the page-retirement remap table — logical lines re-homed
//!   to spare physical slots after persistent media faults;
//! - [`tier`]: tiered-placement mechanism — device / giant-cache /
//!   host-DRAM capacities, per-region heat tracking, and the deterministic
//!   step-boundary migration planner.

pub mod arena;
pub mod cache;
pub mod dram;
pub mod line;
pub mod region;
pub mod remap;
pub mod tier;
pub mod trace;

pub use arena::{LineBitmap, LineIndexer, LineSlab, LineSlot, CHUNK_LINES};
pub use cache::{AccessResult, Cache, CacheConfig, CacheStats, Hierarchy, MemWriteback};
pub use dram::{Dir, Dram, DramAccess, DramConfig, DramResult};
pub use line::{
    classify_change, lines_as_bytes, lines_as_bytes_mut, lines_for_bytes, Addr, ByteChange,
    LineData, LINE_BYTES, WORDS_PER_LINE, WORD_BYTES,
};
pub use region::{Region, RegionId, RegionMap};
pub use remap::{RemapError, RemapSnapshot, RemapTable};
pub use tier::{
    HeatTracker, MigrationMove, MigrationPlan, MigrationPlanner, PlacedTensor, PlacementMap,
    PlannerConfig, RegionHeat, Tier, TierCapacities, TierError,
};
pub use trace::{Chunk, ChunkedSweep, MemAccess, SweepGen, Writeback, WritebackTrace};
