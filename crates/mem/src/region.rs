//! BAR-style address-region registry.
//!
//! TECO configures the giant cache "using resizable Base Address Registers
//! (BAR)" and the Aggregator holds "two registers ('address registers') per
//! cached region, which are set when a tensor is allocated and checked by the
//! CXL host agent when triggering coherent data transfer" (§V-B). This module
//! models that registry: named, non-overlapping `[base, base+size)` regions
//! with O(log n) containment lookup.

use crate::line::Addr;
use serde::{Deserialize, Serialize};

/// One registered memory region (a pair of address registers).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Region {
    /// Human-readable tag (e.g. `"parameters"`, `"gradient_buffer"`).
    pub name: String,
    /// Base byte address (inclusive).
    pub base: Addr,
    /// Size in bytes.
    pub size: u64,
}

impl Region {
    /// End address (exclusive).
    pub fn end(&self) -> Addr {
        Addr(self.base.0 + self.size)
    }
    /// True when `a` lies inside the region.
    pub fn contains(&self, a: Addr) -> bool {
        a >= self.base && a < self.end()
    }
}

/// Identifies a region within a [`RegionMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RegionId(pub usize);

/// A registry of non-overlapping regions, kept sorted by base address.
#[derive(Debug, Clone, Default)]
pub struct RegionMap {
    regions: Vec<Region>,
}

/// Error returned when a new region would overlap an existing one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OverlapError {
    /// Name of the existing region that conflicts.
    pub existing: String,
}

impl std::fmt::Display for OverlapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "region overlaps existing region {:?}", self.existing)
    }
}
impl std::error::Error for OverlapError {}

impl RegionMap {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a region; errors if it overlaps an existing one.
    pub fn register(
        &mut self,
        name: impl Into<String>,
        base: Addr,
        size: u64,
    ) -> Result<RegionId, OverlapError> {
        assert!(size > 0, "zero-sized region");
        let new = Region { name: name.into(), base, size };
        for r in &self.regions {
            let disjoint = new.end() <= r.base || new.base >= r.end();
            if !disjoint {
                return Err(OverlapError { existing: r.name.clone() });
            }
        }
        self.regions.push(new);
        // Keep sorted by base so lookup can binary-search. Registration is
        // rare (once per tensor allocation), lookups are hot.
        self.regions.sort_by_key(|r| r.base);
        let idx = self.regions.iter().position(|r| r.base == base).unwrap();
        Ok(RegionId(idx))
    }

    /// The region containing address `a`, if any. This is the check the CXL
    /// home agent performs on every writeback ("checks if this cache line is
    /// mapped in the giant cache", Fig. 8).
    pub fn lookup(&self, a: Addr) -> Option<&Region> {
        let idx = self.regions.partition_point(|r| r.base <= a);
        if idx == 0 {
            return None;
        }
        let r = &self.regions[idx - 1];
        r.contains(a).then_some(r)
    }

    /// True when `a` falls in any registered region.
    pub fn contains(&self, a: Addr) -> bool {
        self.lookup(a).is_some()
    }

    /// All regions, sorted by base address.
    pub fn regions(&self) -> &[Region] {
        &self.regions
    }

    /// Total registered bytes.
    pub fn total_bytes(&self) -> u64 {
        self.regions.iter().map(|r| r.size).sum()
    }

    /// Find a region by name.
    pub fn by_name(&self, name: &str) -> Option<&Region> {
        self.regions.iter().find(|r| r.name == name)
    }

    /// Rebuild a map from a checkpointed region list. The list must be
    /// non-overlapping (it came from `regions()`, which guarantees that);
    /// sorting is re-established here, so the order of `regions` is free.
    pub fn from_regions(regions: Vec<Region>) -> Self {
        let mut m = RegionMap { regions };
        m.regions.sort_by_key(|r| r.base);
        for pair in m.regions.windows(2) {
            assert!(
                pair[0].end() <= pair[1].base,
                "checkpointed regions {:?} and {:?} overlap",
                pair[0].name,
                pair[1].name
            );
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut m = RegionMap::new();
        m.register("params", Addr(0x1000), 0x1000).unwrap();
        m.register("grads", Addr(0x4000), 0x800).unwrap();
        assert!(m.contains(Addr(0x1000)));
        assert!(m.contains(Addr(0x1FFF)));
        assert!(!m.contains(Addr(0x2000)));
        assert!(!m.contains(Addr(0xFFF)));
        assert_eq!(m.lookup(Addr(0x4123)).unwrap().name, "grads");
        assert_eq!(m.total_bytes(), 0x1800);
    }

    #[test]
    fn overlap_rejected() {
        let mut m = RegionMap::new();
        m.register("a", Addr(0x1000), 0x1000).unwrap();
        let err = m.register("b", Addr(0x1800), 0x1000).unwrap_err();
        assert_eq!(err.existing, "a");
        // Touching at the boundary is fine (half-open intervals).
        m.register("c", Addr(0x2000), 0x100).unwrap();
        assert_eq!(m.regions().len(), 2);
    }

    #[test]
    fn lookup_with_many_regions() {
        let mut m = RegionMap::new();
        // Register out of order; lookup must still binary-search correctly.
        for i in (0..100u64).rev() {
            m.register(format!("r{i}"), Addr(i * 0x1000), 0x800).unwrap();
        }
        for i in 0..100u64 {
            assert_eq!(m.lookup(Addr(i * 0x1000 + 0x7FF)).unwrap().name, format!("r{i}"));
            assert!(!m.contains(Addr(i * 0x1000 + 0x800)));
        }
    }

    #[test]
    fn by_name() {
        let mut m = RegionMap::new();
        m.register("giant_cache", Addr(0), 817 << 20).unwrap(); // Bert-large: 817 MB
        let r = m.by_name("giant_cache").unwrap();
        assert_eq!(r.size, 817 << 20);
        assert!(m.by_name("nope").is_none());
    }
}
