//! Set-associative write-back cache model and a three-level hierarchy
//! matching the gem5-avx configuration of Table II:
//!
//! | level | size  | line | assoc |
//! |-------|-------|------|-------|
//! | L1    | 8 KB  | 64 B | 8     |
//! | L2    | 64 KB | 64 B | 16    |
//! | L3    | 16 MB | 64 B | 64    |
//!
//! The model is functional (hit/miss/eviction/writeback), not cycle-level:
//! the paper's CXL emulator only consumes the *writeback stream* ("we collect
//! the timing and amount of these writebacks by generating a trace of main
//! memory accesses during CPU simulation"), which this model produces.

use crate::line::{Addr, LINE_BYTES};
use serde::{Deserialize, Serialize};

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: usize,
}

impl CacheConfig {
    /// L1 data cache from Table II: 8 KB, 64 B lines, 8-way.
    pub fn gem5_l1() -> Self {
        CacheConfig { size_bytes: 8 << 10, assoc: 8 }
    }
    /// L2 from Table II: 64 KB, 64 B lines, 16-way.
    pub fn gem5_l2() -> Self {
        CacheConfig { size_bytes: 64 << 10, assoc: 16 }
    }
    /// Shared L3 from Table II: 16 MB, 64 B lines, 64-way.
    pub fn gem5_l3() -> Self {
        CacheConfig { size_bytes: 16 << 20, assoc: 64 }
    }

    /// Number of sets implied by the geometry.
    pub fn num_sets(&self) -> usize {
        let lines = self.size_bytes as usize / LINE_BYTES;
        assert!(lines.is_multiple_of(self.assoc), "size/assoc mismatch");
        lines / self.assoc
    }
}

/// The outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Did the access hit in this level?
    pub hit: bool,
    /// If a dirty victim was evicted to make room, its line address.
    pub writeback: Option<Addr>,
    /// If a (clean or dirty) victim was evicted, its line address.
    pub evicted: Option<Addr>,
}

/// Aggregate counters for one cache level.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    pub accesses: u64,
    pub hits: u64,
    pub misses: u64,
    pub writebacks: u64,
    pub evictions: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero when no accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

#[derive(Debug, Clone, Copy)]
struct Way {
    tag: u64,
    valid: bool,
    dirty: bool,
    lru: u64,
}

/// A single set-associative write-back, write-allocate cache with LRU
/// replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    cfg: CacheConfig,
    sets: Vec<Vec<Way>>,
    clock: u64,
    stats: CacheStats,
}

impl Cache {
    /// Build an empty cache with the given geometry.
    pub fn new(cfg: CacheConfig) -> Self {
        let nsets = cfg.num_sets();
        Cache {
            cfg,
            sets: vec![vec![Way { tag: 0, valid: false, dirty: false, lru: 0 }; cfg.assoc]; nsets],
            clock: 0,
            stats: CacheStats::default(),
        }
    }

    /// The geometry.
    pub fn config(&self) -> CacheConfig {
        self.cfg
    }
    /// Counters so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    #[inline]
    fn set_and_tag(&self, a: Addr) -> (usize, u64) {
        let line = a.line_index();
        let nsets = self.sets.len() as u64;
        ((line % nsets) as usize, line / nsets)
    }

    /// Access the line containing `a`. `is_store` marks the line dirty on
    /// hit or fill. Returns hit/miss plus any eviction/writeback produced.
    pub fn access(&mut self, a: Addr, is_store: bool) -> AccessResult {
        self.clock += 1;
        self.stats.accesses += 1;
        let (set_idx, tag) = self.set_and_tag(a);
        let nsets = self.sets.len() as u64;
        let set = &mut self.sets[set_idx];

        // Hit path.
        if let Some(way) = set.iter_mut().find(|w| w.valid && w.tag == tag) {
            way.lru = self.clock;
            way.dirty |= is_store;
            self.stats.hits += 1;
            return AccessResult { hit: true, writeback: None, evicted: None };
        }

        // Miss: pick an invalid way or the LRU victim.
        self.stats.misses += 1;
        let victim_idx = match set.iter().position(|w| !w.valid) {
            Some(i) => i,
            None => {
                let (i, _) =
                    set.iter().enumerate().min_by_key(|(_, w)| w.lru).expect("nonempty set");
                i
            }
        };
        let victim = set[victim_idx];
        let (mut writeback, mut evicted) = (None, None);
        if victim.valid {
            let victim_addr = Addr((victim.tag * nsets + set_idx as u64) * LINE_BYTES as u64);
            evicted = Some(victim_addr);
            self.stats.evictions += 1;
            if victim.dirty {
                writeback = Some(victim_addr);
                self.stats.writebacks += 1;
            }
        }
        set[victim_idx] = Way { tag, valid: true, dirty: is_store, lru: self.clock };
        AccessResult { hit: false, writeback, evicted }
    }

    /// Flush every dirty line, returning their addresses in set order. This
    /// models the once-per-iteration CPU cache flush that "guarantees all
    /// the updated parameters are sent out" (§IV-A2).
    pub fn flush_dirty(&mut self) -> Vec<Addr> {
        let nsets = self.sets.len() as u64;
        let mut out = Vec::new();
        for (set_idx, set) in self.sets.iter_mut().enumerate() {
            for way in set.iter_mut() {
                if way.valid && way.dirty {
                    out.push(Addr((way.tag * nsets + set_idx as u64) * LINE_BYTES as u64));
                    way.dirty = false;
                    self.stats.writebacks += 1;
                }
            }
        }
        out
    }

    /// Invalidate everything (cold restart), with no writebacks.
    pub fn invalidate_all(&mut self) {
        for set in &mut self.sets {
            for way in set.iter_mut() {
                way.valid = false;
                way.dirty = false;
            }
        }
    }

    /// Number of valid lines currently resident.
    pub fn resident_lines(&self) -> usize {
        self.sets.iter().map(|s| s.iter().filter(|w| w.valid).count()).sum()
    }

    /// Number of dirty lines currently resident.
    pub fn dirty_lines(&self) -> usize {
        self.sets.iter().map(|s| s.iter().filter(|w| w.valid && w.dirty).count()).sum()
    }
}

/// A writeback emitted by the hierarchy to main memory, tagged with the level
/// it left from (always the last level here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemWriteback {
    /// Line address written back to memory.
    pub addr: Addr,
}

/// A three-level inclusive-enough hierarchy: L1 misses go to L2, L2 misses
/// to L3; dirty evictions cascade downwards; dirty L3 evictions become main
/// memory writebacks — the events the CXL home agent inspects.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    /// Levels from closest (L1) to farthest (L3).
    levels: Vec<Cache>,
}

impl Hierarchy {
    /// The Table II gem5-avx hierarchy.
    pub fn gem5() -> Self {
        Hierarchy {
            levels: vec![
                Cache::new(CacheConfig::gem5_l1()),
                Cache::new(CacheConfig::gem5_l2()),
                Cache::new(CacheConfig::gem5_l3()),
            ],
        }
    }

    /// A custom stack of levels (closest first).
    pub fn new(levels: Vec<Cache>) -> Self {
        assert!(!levels.is_empty());
        Hierarchy { levels }
    }

    /// Access an address; returns writebacks that reached main memory.
    pub fn access(&mut self, a: Addr, is_store: bool) -> Vec<MemWriteback> {
        let mut mem_wbs = Vec::new();
        // Walk down until a level hits (or we reach memory), collecting
        // dirty victims which are then *stored* into the next level down.
        let mut pending_dirty: Vec<(usize, Addr)> = Vec::new(); // (from_level, addr)
        for (li, level) in self.levels.iter_mut().enumerate() {
            let r = level.access(a, is_store && li == 0);
            if let Some(wb) = r.writeback {
                pending_dirty.push((li, wb));
            }
            if r.hit {
                break;
            }
        }
        // Dirty victims move to the next level down (write-allocate there);
        // from the last level they hit memory.
        while let Some((from, addr)) = pending_dirty.pop() {
            let next = from + 1;
            if next >= self.levels.len() {
                mem_wbs.push(MemWriteback { addr });
            } else {
                let r = self.levels[next].access(addr, true);
                if let Some(wb) = r.writeback {
                    pending_dirty.push((next, wb));
                }
            }
        }
        mem_wbs
    }

    /// Flush all dirty lines in every level to memory; returns the line
    /// addresses (deduplicated, sorted) that reach main memory.
    pub fn flush_to_memory(&mut self) -> Vec<Addr> {
        let mut addrs: Vec<Addr> = Vec::new();
        for level in &mut self.levels {
            addrs.extend(level.flush_dirty());
        }
        addrs.sort_unstable();
        addrs.dedup();
        addrs
    }

    /// Per-level stats, closest level first.
    pub fn stats(&self) -> Vec<CacheStats> {
        self.levels.iter().map(|c| c.stats()).collect()
    }

    /// Access a level directly (0 = L1).
    pub fn level(&self, i: usize) -> &Cache {
        &self.levels[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 4 sets × 2 ways × 64 B = 512 B.
        Cache::new(CacheConfig { size_bytes: 512, assoc: 2 })
    }

    #[test]
    fn geometry() {
        assert_eq!(CacheConfig::gem5_l1().num_sets(), 16);
        assert_eq!(CacheConfig::gem5_l2().num_sets(), 64);
        assert_eq!(CacheConfig::gem5_l3().num_sets(), 4096);
        assert_eq!(tiny().config().num_sets(), 4);
    }

    #[test]
    fn hit_after_fill() {
        let mut c = tiny();
        let a = Addr(0x100);
        assert!(!c.access(a, false).hit);
        assert!(c.access(a, false).hit);
        assert!(c.access(Addr(0x13F), false).hit); // same line
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_and_writeback() {
        let mut c = tiny(); // 4 sets, 2 ways; lines mapping to set 0: 0, 256, 512, ...
        let s0 = |i: u64| Addr(i * 4 * 64); // stride of num_sets lines
        c.access(s0(0), true); // dirty
        c.access(s0(1), false);
        // Third distinct line in set 0 evicts LRU = line 0 (dirty → writeback).
        let r = c.access(s0(2), false);
        assert!(!r.hit);
        assert_eq!(r.writeback, Some(s0(0)));
        assert_eq!(r.evicted, Some(s0(0)));
        // Fourth evicts line 1 (clean → eviction but no writeback).
        let r = c.access(s0(3), false);
        assert_eq!(r.writeback, None);
        assert_eq!(r.evicted, Some(s0(1)));
        assert_eq!(c.stats().writebacks, 1);
        assert_eq!(c.stats().evictions, 2);
    }

    #[test]
    fn lru_recency_updates_on_hit() {
        let mut c = tiny();
        let s0 = |i: u64| Addr(i * 4 * 64);
        c.access(s0(0), false);
        c.access(s0(1), false);
        c.access(s0(0), false); // refresh 0 → victim should be 1
        let r = c.access(s0(2), false);
        assert_eq!(r.evicted, Some(s0(1)));
    }

    #[test]
    fn store_marks_dirty_on_hit() {
        let mut c = tiny();
        let a = Addr(0);
        c.access(a, false); // clean fill
        assert_eq!(c.dirty_lines(), 0);
        c.access(a, true); // dirtied by store hit
        assert_eq!(c.dirty_lines(), 1);
    }

    #[test]
    fn flush_dirty_emits_each_dirty_line_once() {
        let mut c = tiny();
        c.access(Addr(0), true);
        c.access(Addr(64), true);
        c.access(Addr(128), false);
        let mut flushed = c.flush_dirty();
        flushed.sort_unstable();
        assert_eq!(flushed, vec![Addr(0), Addr(64)]);
        // Second flush finds nothing.
        assert!(c.flush_dirty().is_empty());
        assert_eq!(c.dirty_lines(), 0);
        assert_eq!(c.resident_lines(), 3);
    }

    #[test]
    fn sequential_sweep_writes_back_everything() {
        // Streaming stores over a footprint ≫ cache size: every line is
        // eventually written back (either by eviction or final flush).
        // This is exactly the vectorized-ADAM parameter-update pattern.
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, assoc: 4 });
        let nlines = 1000u64;
        let mut wbs = 0u64;
        for i in 0..nlines {
            let r = c.access(Addr(i * 64), true);
            if r.writeback.is_some() {
                wbs += 1;
            }
        }
        wbs += c.flush_dirty().len() as u64;
        assert_eq!(wbs, nlines);
    }

    #[test]
    fn hierarchy_miss_cascades_and_dirty_evictions_reach_memory() {
        let mut h = Hierarchy::new(vec![
            Cache::new(CacheConfig { size_bytes: 256, assoc: 2 }), // 2 sets
            Cache::new(CacheConfig { size_bytes: 512, assoc: 2 }), // 4 sets
        ]);
        // Write a footprint much larger than L2; count memory writebacks
        // plus final flush — must equal the number of distinct dirty lines.
        let nlines = 256u64;
        let mut mem_wbs = 0usize;
        for i in 0..nlines {
            mem_wbs += h.access(Addr(i * 64), true).len();
        }
        mem_wbs += h.flush_to_memory().len();
        assert_eq!(mem_wbs as u64, nlines);
    }

    #[test]
    fn hierarchy_small_footprint_stays_cached() {
        let mut h = Hierarchy::gem5();
        // 4 KB working set fits in L1 (8 KB): after warmup, no memory
        // writebacks during re-traversal.
        for round in 0..3 {
            let mut wbs = 0;
            for i in 0..64u64 {
                wbs += h.access(Addr(i * 64), true).len();
            }
            if round > 0 {
                assert_eq!(wbs, 0, "warm working set must not leak to memory");
            }
        }
        let l1 = h.stats()[0];
        assert!(l1.hit_rate() > 0.6);
    }

    #[test]
    fn invalidate_all_drops_contents() {
        let mut c = tiny();
        c.access(Addr(0), true);
        c.invalidate_all();
        assert_eq!(c.resident_lines(), 0);
        assert!(c.flush_dirty().is_empty());
    }
}
