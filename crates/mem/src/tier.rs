//! Tiered tensor placement: tiers, capacities, per-region heat, and the
//! step-boundary migration planner.
//!
//! TECO's giant cache is one tier of a three-tier memory hierarchy:
//! accelerator-resident memory (no link traffic), the CXL giant cache
//! (coherent, DBA-aggregated traffic), and plain host DRAM (coherent but
//! uncached — every device access crosses the link full-size). 10Cache
//! and the CostEfficientUSL offload managers argue that *which* tier a
//! tensor lives in should follow its class and observed heat, not a
//! hard-coded layout. This module is the mechanism layer: capacity-checked
//! placement accounting, deterministic heat decay, and a migration planner
//! that produces a plan only at strictly increasing step boundaries — the
//! policy (which class prefers which tier) lives in `teco_core::placement`.
//!
//! Invariants the planner guarantees (locked down by the proptest suite in
//! `tests/tier_planner_props.rs`):
//! - a plan never drives any tier above its capacity;
//! - plans exist only at step boundaries, and a boundary is planned at
//!   most once (a replayed step yields `NotAtBoundary`, never a second,
//!   different plan);
//! - planning is a pure function of (step, heat, map, planner state), so a
//!   snapshot/restore replay reproduces every subsequent plan bit-for-bit;
//! - pinned tensors never move.

use serde::{Deserialize, Serialize};

/// One level of the placement hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Accelerator-resident: no link traffic, scarcest capacity.
    Device,
    /// The CXL giant cache: coherent, DBA-aggregated transfers.
    GiantCache,
    /// Plain (uncached) host DRAM: coherent full-line transfers, no DBA.
    HostDram,
}

impl Tier {
    /// All tiers, fastest first.
    pub const ALL: [Tier; 3] = [Tier::Device, Tier::GiantCache, Tier::HostDram];

    /// Stable human-readable label (used in reports and sweep JSON).
    pub fn label(self) -> &'static str {
        match self {
            Tier::Device => "device",
            Tier::GiantCache => "giant_cache",
            Tier::HostDram => "host_dram",
        }
    }

    fn idx(self) -> usize {
        match self {
            Tier::Device => 0,
            Tier::GiantCache => 1,
            Tier::HostDram => 2,
        }
    }
}

/// Byte capacity of each tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TierCapacities {
    /// Accelerator-resident bytes the placement engine may claim.
    pub device_bytes: u64,
    /// Giant-cache bytes (the resizable-BAR setting).
    pub giant_cache_bytes: u64,
    /// Plain host-DRAM bytes offered to offloaded tensors.
    pub host_dram_bytes: u64,
}

impl TierCapacities {
    /// The capacity of `tier`.
    pub fn of(&self, tier: Tier) -> u64 {
        match tier {
            Tier::Device => self.device_bytes,
            Tier::GiantCache => self.giant_cache_bytes,
            Tier::HostDram => self.host_dram_bytes,
        }
    }
}

/// Errors from placement accounting and planning.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TierError {
    /// Placing (or migrating) the tensor would exceed the tier's capacity.
    CapacityExceeded {
        /// The tier that would overflow.
        tier: Tier,
        /// Bytes the operation needed.
        requested: u64,
        /// Bytes still free in that tier.
        available: u64,
    },
    /// No tensor with this handle exists.
    UnknownRegion(usize),
    /// The planner was asked to plan a step it has already planned (or an
    /// earlier one): migration decisions happen at most once per step
    /// boundary, in strictly increasing step order.
    NotAtBoundary {
        /// The step the caller asked to plan.
        step: u64,
        /// The last step boundary already planned.
        last_planned: u64,
    },
}

impl std::fmt::Display for TierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TierError::CapacityExceeded { tier, requested, available } => write!(
                f,
                "tier {} capacity exceeded: requested {requested} B, {available} B available",
                tier.label()
            ),
            TierError::UnknownRegion(h) => write!(f, "unknown placement region handle {h}"),
            TierError::NotAtBoundary { step, last_planned } => write!(
                f,
                "step {step} is not a fresh boundary (last planned boundary: {last_planned})"
            ),
        }
    }
}
impl std::error::Error for TierError {}

/// One placed tensor (the placement map's unit of accounting).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacedTensor {
    /// Human-readable tag (mirrors the giant-cache region name).
    pub name: String,
    /// Size in bytes.
    pub bytes: u64,
    /// Current tier.
    pub tier: Tier,
    /// Pinned tensors are never migrated (the policy layer pins tensor
    /// classes whose layout the training loop hard-codes, e.g. the
    /// parameter region a cluster broadcast targets).
    pub pinned: bool,
}

/// Capacity-checked tensor→tier accounting. Handles are dense indices in
/// placement order, so every walk is deterministic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementMap {
    caps: TierCapacities,
    tensors: Vec<PlacedTensor>,
    used: [u64; 3],
}

impl PlacementMap {
    /// An empty map over the given capacities.
    pub fn new(caps: TierCapacities) -> Self {
        PlacementMap { caps, tensors: Vec::new(), used: [0; 3] }
    }

    /// The configured capacities.
    pub fn capacities(&self) -> TierCapacities {
        self.caps
    }

    /// Bytes currently placed in `tier`.
    pub fn used(&self, tier: Tier) -> u64 {
        self.used[tier.idx()]
    }

    /// Bytes still free in `tier`.
    pub fn free(&self, tier: Tier) -> u64 {
        self.caps.of(tier) - self.used(tier)
    }

    /// Number of placed tensors.
    pub fn len(&self) -> usize {
        self.tensors.len()
    }

    /// Is the map empty?
    pub fn is_empty(&self) -> bool {
        self.tensors.is_empty()
    }

    /// The placed tensors, in placement order (handle = index).
    pub fn tensors(&self) -> &[PlacedTensor] {
        &self.tensors
    }

    /// The tensor behind `handle`.
    pub fn get(&self, handle: usize) -> Result<&PlacedTensor, TierError> {
        self.tensors.get(handle).ok_or(TierError::UnknownRegion(handle))
    }

    /// The tier `handle` currently lives in.
    pub fn tier_of(&self, handle: usize) -> Result<Tier, TierError> {
        Ok(self.get(handle)?.tier)
    }

    /// Place a tensor in `tier`, capacity-checked. Returns its handle.
    pub fn place(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        tier: Tier,
        pinned: bool,
    ) -> Result<usize, TierError> {
        let free = self.free(tier);
        if bytes > free {
            return Err(TierError::CapacityExceeded { tier, requested: bytes, available: free });
        }
        self.used[tier.idx()] += bytes;
        self.tensors.push(PlacedTensor { name: name.into(), bytes, tier, pinned });
        Ok(self.tensors.len() - 1)
    }

    /// Place a tensor in the first tier of `order` with room, starting
    /// from `preferred`. Returns the handle and the tier actually used.
    pub fn place_with_fallback(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
        preferred: Tier,
        pinned: bool,
        fallback: &[Tier],
    ) -> Result<(usize, Tier), TierError> {
        let name = name.into();
        let mut last_err = None;
        for &tier in std::iter::once(&preferred).chain(fallback) {
            match self.place(name.clone(), bytes, tier, pinned) {
                Ok(h) => return Ok((h, tier)),
                Err(e) => last_err = Some(e),
            }
        }
        Err(last_err.expect("at least the preferred tier was tried"))
    }

    /// Apply a migration plan, re-validating every move against the
    /// capacities (a plan produced against this map always validates; the
    /// check catches replaying a foreign or stale plan).
    pub fn apply(&mut self, plan: &MigrationPlan) -> Result<(), TierError> {
        for mv in &plan.moves {
            let t = self.get(mv.region)?;
            debug_assert_eq!(t.tier, mv.from, "plan disagrees with map on source tier");
            debug_assert_eq!(t.bytes, mv.bytes, "plan disagrees with map on size");
            let free = self.free(mv.to);
            if mv.bytes > free {
                return Err(TierError::CapacityExceeded {
                    tier: mv.to,
                    requested: mv.bytes,
                    available: free,
                });
            }
            self.used[mv.from.idx()] -= mv.bytes;
            self.used[mv.to.idx()] += mv.bytes;
            self.tensors[mv.region].tier = mv.to;
        }
        Ok(())
    }
}

/// Per-region access heat for one decay window (one training step).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RegionHeat {
    /// Read transactions observed.
    pub reads: u64,
    /// Write transactions observed.
    pub writes: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
}

impl RegionHeat {
    /// The planner's scalar heat score: total transactions this window.
    pub fn score(&self) -> u64 {
        self.reads + self.writes
    }

    fn decay(&mut self) {
        // Deterministic integer halving: history fades geometrically, and
        // two identical traces always decay identically.
        self.reads >>= 1;
        self.writes >>= 1;
        self.read_bytes >>= 1;
        self.write_bytes >>= 1;
    }
}

/// Per-region heat accounting, fed by the session's coherence-transaction
/// stream and decayed once per step boundary.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct HeatTracker {
    heats: Vec<RegionHeat>,
}

impl HeatTracker {
    /// An empty tracker.
    pub fn new() -> Self {
        Self::default()
    }

    /// Grow to cover handle `h` (new slots start cold).
    pub fn ensure(&mut self, h: usize) {
        if h >= self.heats.len() {
            self.heats.resize(h + 1, RegionHeat::default());
        }
    }

    /// Record a read of `bytes` against region `h`.
    pub fn record_read(&mut self, h: usize, bytes: u64) {
        self.ensure(h);
        self.heats[h].reads += 1;
        self.heats[h].read_bytes += bytes;
    }

    /// Record a write of `bytes` against region `h`.
    pub fn record_write(&mut self, h: usize, bytes: u64) {
        self.ensure(h);
        self.heats[h].writes += 1;
        self.heats[h].write_bytes += bytes;
    }

    /// The heat of region `h` (cold if never seen).
    pub fn heat(&self, h: usize) -> RegionHeat {
        self.heats.get(h).copied().unwrap_or_default()
    }

    /// Decay every region's heat (called once per step boundary, after
    /// planning, so a plan sees the full just-finished window).
    pub fn end_step(&mut self) {
        for h in &mut self.heats {
            h.decay();
        }
    }
}

/// One tensor migration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationMove {
    /// The tensor's placement handle.
    pub region: usize,
    /// Tier it leaves.
    pub from: Tier,
    /// Tier it enters.
    pub to: Tier,
    /// Bytes moved across the link.
    pub bytes: u64,
}

/// A step boundary's migration decisions, in application order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlan {
    /// The step boundary this plan belongs to.
    pub step: u64,
    /// The moves, demotions first (they free the capacity promotions
    /// consume).
    pub moves: Vec<MigrationMove>,
}

impl MigrationPlan {
    /// A plan with nothing to do.
    pub fn empty(step: u64) -> Self {
        MigrationPlan { step, moves: Vec::new() }
    }

    /// Total bytes the plan moves.
    pub fn bytes(&self) -> u64 {
        self.moves.iter().map(|m| m.bytes).sum()
    }
}

/// Heat thresholds steering promotion/demotion between the giant cache
/// and plain host DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlannerConfig {
    /// A host-DRAM tensor whose heat score reaches this is promoted into
    /// the giant cache (capacity permitting).
    pub promote_score: u64,
    /// A giant-cache tensor whose heat score falls to or below this is
    /// demoted to host DRAM.
    pub demote_score: u64,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig { promote_score: 4, demote_score: 0 }
    }
}

impl PlannerConfig {
    /// Validate the thresholds; a demote threshold at or above the promote
    /// threshold would oscillate a tensor between tiers every step.
    pub fn validate(&self) -> Result<(), String> {
        if self.demote_score >= self.promote_score {
            return Err(format!(
                "demote_score {} must be below promote_score {}",
                self.demote_score, self.promote_score
            ));
        }
        Ok(())
    }
}

/// The step-boundary migration planner. Device-tier tensors are fixed by
/// the allocation policy; the planner shuttles *unpinned* tensors between
/// the giant cache and plain host DRAM by heat.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MigrationPlanner {
    cfg: PlannerConfig,
    /// Last step boundary planned; `u64::MAX` sentinel = none yet.
    last_planned: u64,
}

/// Sentinel for "no boundary planned yet" (keeps the snapshot a plain
/// integer).
const NEVER_PLANNED: u64 = u64::MAX;

impl MigrationPlanner {
    /// A planner with the given thresholds.
    pub fn new(cfg: PlannerConfig) -> Self {
        MigrationPlanner { cfg, last_planned: NEVER_PLANNED }
    }

    /// The thresholds.
    pub fn config(&self) -> PlannerConfig {
        self.cfg
    }

    /// The last boundary planned, if any.
    pub fn last_planned_step(&self) -> Option<u64> {
        (self.last_planned != NEVER_PLANNED).then_some(self.last_planned)
    }

    /// Plan the migrations for the boundary after `step`. Deterministic:
    /// demotions in ascending handle order first, then promotions in
    /// descending heat-score order (ties broken by ascending handle),
    /// admitted only while the giant cache has room. Errors with
    /// [`TierError::NotAtBoundary`] when `step` is not strictly beyond the
    /// last planned boundary — the planner structurally cannot migrate
    /// mid-step or double-plan a boundary.
    pub fn plan(
        &mut self,
        step: u64,
        heat: &HeatTracker,
        map: &PlacementMap,
    ) -> Result<MigrationPlan, TierError> {
        if self.last_planned != NEVER_PLANNED && step <= self.last_planned {
            return Err(TierError::NotAtBoundary { step, last_planned: self.last_planned });
        }
        self.last_planned = step;

        let mut plan = MigrationPlan::empty(step);
        let mut cache_free = map.free(Tier::GiantCache);
        let mut dram_free = map.free(Tier::HostDram);

        // Demotions first: cold giant-cache tensors head to host DRAM,
        // freeing the room promotions below will want.
        for (h, t) in map.tensors().iter().enumerate() {
            if t.pinned || t.tier != Tier::GiantCache {
                continue;
            }
            if heat.heat(h).score() <= self.cfg.demote_score && t.bytes <= dram_free {
                dram_free -= t.bytes;
                cache_free += t.bytes;
                plan.moves.push(MigrationMove {
                    region: h,
                    from: Tier::GiantCache,
                    to: Tier::HostDram,
                    bytes: t.bytes,
                });
            }
        }

        // Promotions: hot host-DRAM tensors move into the giant cache,
        // hottest first, while capacity lasts.
        let mut candidates: Vec<(u64, usize)> = map
            .tensors()
            .iter()
            .enumerate()
            .filter(|(h, t)| {
                !t.pinned
                    && t.tier == Tier::HostDram
                    && heat.heat(*h).score() >= self.cfg.promote_score
            })
            .map(|(h, _)| (heat.heat(h).score(), h))
            .collect();
        candidates.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, h) in candidates {
            let bytes = map.tensors()[h].bytes;
            if bytes <= cache_free {
                cache_free -= bytes;
                plan.moves.push(MigrationMove {
                    region: h,
                    from: Tier::HostDram,
                    to: Tier::GiantCache,
                    bytes,
                });
            }
        }
        Ok(plan)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn caps() -> TierCapacities {
        TierCapacities { device_bytes: 1024, giant_cache_bytes: 4096, host_dram_bytes: 1 << 20 }
    }

    #[test]
    fn place_and_account() {
        let mut m = PlacementMap::new(caps());
        let p = m.place("params", 2048, Tier::GiantCache, true).unwrap();
        let g = m.place("grads", 1024, Tier::GiantCache, false).unwrap();
        assert_eq!((p, g), (0, 1));
        assert_eq!(m.used(Tier::GiantCache), 3072);
        assert_eq!(m.free(Tier::GiantCache), 1024);
        let err = m.place("too_big", 2048, Tier::GiantCache, false).unwrap_err();
        assert!(matches!(err, TierError::CapacityExceeded { tier: Tier::GiantCache, .. }));
    }

    #[test]
    fn fallback_walks_tiers_in_order() {
        let mut m = PlacementMap::new(caps());
        m.place("fill", 1024, Tier::Device, true).unwrap();
        let (_, tier) =
            m.place_with_fallback("small", 512, Tier::Device, false, &[Tier::GiantCache]).unwrap();
        assert_eq!(tier, Tier::GiantCache, "full device tier falls back to the giant cache");
    }

    #[test]
    fn heat_decays_deterministically() {
        let mut h = HeatTracker::new();
        h.record_write(2, 64);
        h.record_write(2, 64);
        h.record_read(2, 64);
        assert_eq!(h.heat(2).score(), 3);
        h.end_step();
        assert_eq!(h.heat(2), RegionHeat { reads: 0, writes: 1, read_bytes: 32, write_bytes: 64 });
        assert_eq!(h.heat(0), RegionHeat::default());
    }

    #[test]
    fn planner_promotes_and_demotes_by_heat() {
        let mut m = PlacementMap::new(caps());
        let cold = m.place("cold", 1024, Tier::GiantCache, false).unwrap();
        let hot = m.place("hot", 2048, Tier::HostDram, false).unwrap();
        let pinned = m.place("pinned", 512, Tier::GiantCache, true).unwrap();
        let mut heat = HeatTracker::new();
        for _ in 0..8 {
            heat.record_write(hot, 64);
        }
        let mut planner = MigrationPlanner::new(PlannerConfig::default());
        let plan = planner.plan(0, &heat, &m).unwrap();
        assert_eq!(plan.moves.len(), 2);
        assert_eq!(plan.moves[0].region, cold);
        assert_eq!(plan.moves[0].to, Tier::HostDram);
        assert_eq!(plan.moves[1].region, hot);
        assert_eq!(plan.moves[1].to, Tier::GiantCache);
        assert!(plan.moves.iter().all(|mv| mv.region != pinned));
        m.apply(&plan).unwrap();
        assert_eq!(m.tier_of(hot).unwrap(), Tier::GiantCache);
        assert_eq!(m.tier_of(cold).unwrap(), Tier::HostDram);
    }

    #[test]
    fn planner_rejects_replayed_boundary() {
        let m = PlacementMap::new(caps());
        let heat = HeatTracker::new();
        let mut planner = MigrationPlanner::new(PlannerConfig::default());
        planner.plan(3, &heat, &m).unwrap();
        let err = planner.plan(3, &heat, &m).unwrap_err();
        assert_eq!(err, TierError::NotAtBoundary { step: 3, last_planned: 3 });
        assert!(planner.plan(2, &heat, &m).is_err());
        assert!(planner.plan(4, &heat, &m).is_ok());
    }

    #[test]
    fn promotion_respects_capacity() {
        let mut m = PlacementMap::new(TierCapacities {
            device_bytes: 0,
            giant_cache_bytes: 2048,
            host_dram_bytes: 1 << 20,
        });
        m.place("resident", 1536, Tier::GiantCache, true).unwrap();
        let big = m.place("big_hot", 1024, Tier::HostDram, false).unwrap();
        let small = m.place("small_hot", 512, Tier::HostDram, false).unwrap();
        let mut heat = HeatTracker::new();
        for _ in 0..10 {
            heat.record_write(big, 64);
        }
        for _ in 0..5 {
            heat.record_write(small, 64);
        }
        let mut planner = MigrationPlanner::new(PlannerConfig::default());
        let plan = planner.plan(0, &heat, &m).unwrap();
        // The hottest candidate does not fit; the next one does.
        assert_eq!(plan.moves.len(), 1);
        assert_eq!(plan.moves[0].region, small);
        m.apply(&plan).unwrap();
        assert!(m.used(Tier::GiantCache) <= m.capacities().giant_cache_bytes);
    }

    #[test]
    fn serde_roundtrip() {
        let mut m = PlacementMap::new(caps());
        m.place("a", 256, Tier::Device, false).unwrap();
        m.place("b", 512, Tier::HostDram, false).unwrap();
        let json = serde_json::to_string(&m).unwrap();
        let back: PlacementMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);

        let mut planner = MigrationPlanner::new(PlannerConfig::default());
        let heat = HeatTracker::new();
        planner.plan(1, &heat, &m).unwrap();
        let json = serde_json::to_string(&planner).unwrap();
        let back: MigrationPlanner = serde_json::from_str(&json).unwrap();
        assert_eq!(back, planner);
        assert_eq!(back.last_planned_step(), Some(1));
    }
}
