//! Memory-access traces and writeback-trace generation.
//!
//! The paper's methodology (§VIII-A): "we collect the timing and amount of
//! these writebacks by generating a trace of main memory accesses during CPU
//! simulation. The trace contains the timings and addresses of memory
//! loads/stores." The CXL emulator then replays the trace. This module is
//! our gem5-substitute trace producer: it drives the cache hierarchy with
//! the access pattern of a vectorized ADAM update sweep (or arbitrary
//! patterns) and emits timestamped writebacks to main memory.

use crate::cache::Hierarchy;
use crate::line::{Addr, LINE_BYTES};
use teco_sim::{Bandwidth, SimRng, SimTime};

/// One record in a load/store trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemAccess {
    /// When the access issues.
    pub time: SimTime,
    /// Byte address accessed.
    pub addr: Addr,
    /// Store (true) or load (false).
    pub is_store: bool,
}

/// One main-memory writeback event — what the CXL home agent sees.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Writeback {
    /// When the line left the last-level cache.
    pub time: SimTime,
    /// Line address.
    pub addr: Addr,
}

/// A timestamped writeback trace, sorted by time.
#[derive(Debug, Clone, Default)]
pub struct WritebackTrace {
    /// The events, in nondecreasing time order.
    pub events: Vec<Writeback>,
}

impl WritebackTrace {
    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
    /// Total bytes written back (one line each).
    pub fn total_bytes(&self) -> u64 {
        (self.events.len() * LINE_BYTES) as u64
    }
    /// Time of the last event (ZERO when empty).
    pub fn end_time(&self) -> SimTime {
        self.events.last().map_or(SimTime::ZERO, |w| w.time)
    }
}

/// Generates the access pattern of a vectorized (AVX-512 style) optimizer
/// sweep: sequential stores over `[base, base+bytes)` at a given *update
/// throughput* (bytes of parameters updated per second). Each 64-byte line
/// is stored once — AVX-512 updates 16 floats per instruction, so "multiple
/// parameters are updated at the same time, causing only one transfer of the
/// cache line" (§IV-B).
pub struct SweepGen {
    /// Start of the region.
    pub base: Addr,
    /// Region size in bytes (will be rounded up to whole lines).
    pub bytes: u64,
    /// Parameter-update throughput of the CPU kernel.
    pub update_rate: Bandwidth,
    /// Sweep start time.
    pub start: SimTime,
}

impl SweepGen {
    /// Produce the store accesses of the sweep (one per line).
    pub fn accesses(&self) -> impl Iterator<Item = MemAccess> + '_ {
        let nlines = self.bytes.div_ceil(LINE_BYTES as u64);
        (0..nlines).map(move |i| {
            let t = self.start + self.update_rate.transfer_time(i * LINE_BYTES as u64);
            MemAccess { time: t, addr: Addr(self.base.0 + i * LINE_BYTES as u64), is_store: true }
        })
    }

    /// Run the sweep through a cache hierarchy and collect the main-memory
    /// writeback trace, including the end-of-iteration flush (§IV-A2: "the
    /// flush happens only once at each training iteration").
    pub fn writeback_trace(&self, hierarchy: &mut Hierarchy) -> WritebackTrace {
        let mut events = Vec::new();
        let mut last_t = self.start;
        for acc in self.accesses() {
            last_t = acc.time;
            for wb in hierarchy.access(acc.addr, acc.is_store) {
                events.push(Writeback { time: acc.time, addr: wb.addr });
            }
        }
        // Final flush drains the remaining dirty lines at sweep end.
        let flush_t = last_t + self.update_rate.transfer_time(LINE_BYTES as u64);
        for addr in hierarchy.flush_to_memory() {
            events.push(Writeback { time: flush_t, addr });
        }
        events.sort_by_key(|w| (w.time, w.addr));
        WritebackTrace { events }
    }
}

/// A chunk-granular writeback schedule for *large* regions where per-line
/// traces would be too big (a 737M-parameter T5 sweep is ~46M lines). The
/// sweep is divided into `chunks` equal pieces; each chunk's writeback burst
/// is timestamped at the moment the optimizer finishes producing it. This is
/// the production-rate view the TECO schedule simulator consumes.
#[derive(Debug, Clone)]
pub struct ChunkedSweep {
    /// Total bytes in the region.
    pub total_bytes: u64,
    /// Number of chunks (≥ 1).
    pub chunks: usize,
    /// Producer throughput.
    pub update_rate: Bandwidth,
    /// Sweep start time.
    pub start: SimTime,
}

/// One chunk of a [`ChunkedSweep`]: `bytes` become ready at `ready`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Chunk {
    /// When the producer finished writing this chunk (lines become eligible
    /// for writeback/transfer).
    pub ready: SimTime,
    /// Payload bytes in the chunk.
    pub bytes: u64,
}

impl ChunkedSweep {
    /// The chunk schedule. Chunks are equal-sized except the last, which
    /// absorbs the remainder.
    pub fn chunks(&self) -> Vec<Chunk> {
        assert!(self.chunks >= 1);
        let per = self.total_bytes / self.chunks as u64;
        let mut out = Vec::with_capacity(self.chunks);
        let mut produced = 0u64;
        for i in 0..self.chunks {
            let bytes = if i + 1 == self.chunks { self.total_bytes - produced } else { per };
            produced += bytes;
            let ready = self.start + self.update_rate.transfer_time(produced);
            out.push(Chunk { ready, bytes });
        }
        out
    }

    /// When the producer finishes the whole sweep.
    pub fn end_time(&self) -> SimTime {
        self.start + self.update_rate.transfer_time(self.total_bytes)
    }
}

/// Shuffle the addresses of a line-granular region, for the DRAM
/// shuffled-access experiment (§VIII-D).
pub fn shuffled_line_addrs(base: Addr, bytes: u64, rng: &mut SimRng) -> Vec<Addr> {
    let nlines = bytes.div_ceil(LINE_BYTES as u64);
    let mut addrs: Vec<Addr> = (0..nlines).map(|i| Addr(base.0 + i * LINE_BYTES as u64)).collect();
    rng.shuffle(&mut addrs);
    addrs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::{Cache, CacheConfig};

    #[test]
    fn sweep_accesses_are_sequential_and_timed() {
        let g = SweepGen {
            base: Addr(0x1000),
            bytes: 256,
            update_rate: Bandwidth::from_gb_per_sec(16.0),
            start: SimTime::from_ns(100),
        };
        let accs: Vec<_> = g.accesses().collect();
        assert_eq!(accs.len(), 4);
        assert_eq!(accs[0].addr, Addr(0x1000));
        assert_eq!(accs[3].addr, Addr(0x10C0));
        assert_eq!(accs[0].time, SimTime::from_ns(100));
        // 64 B at 16 GB/s = 4 ns per line.
        assert_eq!(accs[1].time, SimTime::from_ns(104));
        assert!(accs.iter().all(|a| a.is_store));
    }

    #[test]
    fn sweep_writeback_trace_covers_all_lines_once() {
        let mut h = Hierarchy::new(vec![Cache::new(CacheConfig { size_bytes: 1024, assoc: 2 })]);
        let g = SweepGen {
            base: Addr(0),
            bytes: 100 * 64,
            update_rate: Bandwidth::from_gb_per_sec(16.0),
            start: SimTime::ZERO,
        };
        let trace = g.writeback_trace(&mut h);
        assert_eq!(trace.len(), 100);
        assert_eq!(trace.total_bytes(), 6400);
        // Sorted by time.
        for w in trace.events.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        // Every line appears exactly once.
        let mut addrs: Vec<u64> = trace.events.iter().map(|w| w.addr.0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), 100);
    }

    #[test]
    fn writeback_lags_production_by_cache_depth() {
        // With a cache of 16 lines, the first writeback can only happen
        // after the cache fills — i.e., the trace "lags" the sweep.
        let mut h = Hierarchy::new(vec![Cache::new(CacheConfig { size_bytes: 1024, assoc: 2 })]);
        let g = SweepGen {
            base: Addr(0),
            bytes: 64 * 64,
            update_rate: Bandwidth::from_gb_per_sec(16.0),
            start: SimTime::ZERO,
        };
        let trace = g.writeback_trace(&mut h);
        let first = trace.events.first().unwrap();
        assert!(first.time >= SimTime::from_ns(4 * 16), "first wb at {}", first.time);
    }

    #[test]
    fn chunked_sweep_schedule() {
        let s = ChunkedSweep {
            total_bytes: 1000,
            chunks: 3,
            update_rate: Bandwidth::from_gb_per_sec(1.0),
            start: SimTime::ZERO,
        };
        let cs = s.chunks();
        assert_eq!(cs.len(), 3);
        assert_eq!(cs[0].bytes, 333);
        assert_eq!(cs[1].bytes, 333);
        assert_eq!(cs[2].bytes, 334);
        assert_eq!(cs.iter().map(|c| c.bytes).sum::<u64>(), 1000);
        // Ready times are the cumulative production times.
        assert_eq!(cs[2].ready, s.end_time());
        assert!(cs[0].ready < cs[1].ready && cs[1].ready < cs[2].ready);
    }

    #[test]
    fn chunked_sweep_single_chunk_is_bulk() {
        let s = ChunkedSweep {
            total_bytes: 4096,
            chunks: 1,
            update_rate: Bandwidth::from_gb_per_sec(4.0),
            start: SimTime::from_ns(7),
        };
        let cs = s.chunks();
        assert_eq!(cs.len(), 1);
        assert_eq!(cs[0].bytes, 4096);
        assert_eq!(cs[0].ready, s.end_time());
    }

    #[test]
    fn shuffled_addrs_is_permutation() {
        let mut rng = SimRng::seed_from_u64(1);
        let addrs = shuffled_line_addrs(Addr(0), 64 * 64, &mut rng);
        assert_eq!(addrs.len(), 64);
        let mut sorted: Vec<u64> = addrs.iter().map(|a| a.0).collect();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).map(|i| i * 64).collect::<Vec<_>>());
    }
}
