//! Property-based tests for the memory models.

use proptest::prelude::*;
use teco_mem::{
    classify_change, lines_for_bytes, Addr, ByteChange, Cache, CacheConfig, Hierarchy, LineData,
    RegionMap, SweepGen, LINE_BYTES, WORDS_PER_LINE,
};
use teco_sim::{Bandwidth, SimTime};

proptest! {
    /// Line round-trip: encoding 16 floats and decoding them is identity
    /// (bit-exact, including NaN payloads via raw words).
    #[test]
    fn line_f32_roundtrip(words in prop::array::uniform16(any::<f32>())) {
        let line = LineData::from_f32(words);
        let back = line.to_f32();
        for i in 0..WORDS_PER_LINE {
            prop_assert_eq!(words[i].to_bits(), back[i].to_bits());
        }
    }

    /// Word accessors are independent: writing one word never disturbs others.
    #[test]
    fn line_word_isolation(idx in 0usize..16, v in any::<u32>()) {
        let mut line = LineData::zeroed();
        line.set_word(idx, v);
        for w in 0..WORDS_PER_LINE {
            if w == idx {
                prop_assert_eq!(line.word(w), v);
            } else {
                prop_assert_eq!(line.word(w), 0);
            }
        }
    }

    /// classify_change is consistent with the XOR mask definition.
    #[test]
    fn classify_change_matches_mask(old in any::<u32>(), new in any::<u32>()) {
        let c = classify_change(old, new);
        let diff = old ^ new;
        match c {
            ByteChange::Unchanged => prop_assert_eq!(diff, 0),
            ByteChange::LastByte => {
                prop_assert!(diff != 0 && diff & 0xFFFF_FF00 == 0)
            }
            ByteChange::LastTwoBytes => {
                prop_assert!(diff & 0xFFFF_0000 == 0 && diff & 0x0000_FF00 != 0)
            }
            ByteChange::Other => prop_assert!(diff & 0xFFFF_0000 != 0),
        }
    }

    /// Address line decomposition: base + offset reconstructs the address,
    /// and base is always aligned.
    #[test]
    fn addr_decomposition(a in any::<u64>()) {
        let addr = Addr(a & !(0u64) >> 1); // keep addition below from overflowing
        let base = addr.line_base();
        prop_assert!(base.is_line_aligned());
        prop_assert_eq!(base.0 + addr.line_offset() as u64, addr.0);
        prop_assert!(addr.line_offset() < LINE_BYTES);
    }

    /// lines_for_bytes is the exact ceiling.
    #[test]
    fn lines_for_bytes_exact(bytes in 0u64..1_000_000_000) {
        let l = lines_for_bytes(bytes);
        prop_assert!(l * 64 >= bytes);
        prop_assert!(l == 0 || (l - 1) * 64 < bytes);
    }

    /// Cache conservation: for a store-only workload over distinct lines,
    /// writebacks(evictions) + dirty-at-end == distinct dirty lines.
    #[test]
    fn cache_dirty_line_conservation(
        lines in prop::collection::vec(0u64..512, 1..300),
        assoc in prop::sample::select(vec![1usize, 2, 4, 8]),
    ) {
        let mut c = Cache::new(CacheConfig { size_bytes: 4096, assoc });
        let mut wbs = 0usize;
        for &l in &lines {
            if c.access(Addr(l * 64), true).writeback.is_some() {
                wbs += 1;
            }
        }
        let flushed = c.flush_dirty().len();
        let mut distinct = lines.clone();
        distinct.sort_unstable();
        distinct.dedup();
        // Every distinct line was written at least once; a line may be
        // evicted and re-fetched, producing extra writebacks — so the sum
        // is at least the number of distinct lines.
        prop_assert!(wbs + flushed >= distinct.len());
        prop_assert_eq!(c.dirty_lines(), 0);
    }

    /// Hierarchy flush leaves no dirty state behind, and the set of lines
    /// written to memory over a run is a subset of lines ever stored.
    #[test]
    fn hierarchy_memory_writebacks_are_stored_lines(
        lines in prop::collection::vec(0u64..2048, 1..400),
    ) {
        let mut h = Hierarchy::new(vec![
            Cache::new(CacheConfig { size_bytes: 512, assoc: 2 }),
            Cache::new(CacheConfig { size_bytes: 2048, assoc: 4 }),
        ]);
        let mut touched: Vec<u64> = Vec::new();
        let mut mem_lines: Vec<u64> = Vec::new();
        for &l in &lines {
            touched.push(l * 64);
            for wb in h.access(Addr(l * 64), true) {
                mem_lines.push(wb.addr.0);
            }
        }
        mem_lines.extend(h.flush_to_memory().iter().map(|a| a.0));
        touched.sort_unstable();
        touched.dedup();
        for m in &mem_lines {
            prop_assert!(touched.binary_search(m).is_ok(), "memory saw unstored line {m:#x}");
        }
        prop_assert!(h.flush_to_memory().is_empty());
    }

    /// A sweep's writeback trace covers each swept line exactly once when
    /// each line is stored once.
    #[test]
    fn sweep_trace_is_exact_cover(nlines in 1u64..500, cache_kb in prop::sample::select(vec![1u64, 4, 16])) {
        let mut h = Hierarchy::new(vec![Cache::new(CacheConfig {
            size_bytes: cache_kb << 10,
            assoc: 4,
        })]);
        let g = SweepGen {
            base: Addr(0),
            bytes: nlines * 64,
            update_rate: Bandwidth::from_gb_per_sec(16.0),
            start: SimTime::ZERO,
        };
        let trace = g.writeback_trace(&mut h);
        prop_assert_eq!(trace.len() as u64, nlines);
        let mut addrs: Vec<u64> = trace.events.iter().map(|w| w.addr.0).collect();
        addrs.sort_unstable();
        addrs.dedup();
        prop_assert_eq!(addrs.len() as u64, nlines);
    }

    /// RegionMap never reports containment for addresses outside all regions.
    #[test]
    fn region_lookup_consistent(bases in prop::collection::vec(0u64..1000, 1..20)) {
        let mut m = RegionMap::new();
        let mut placed = Vec::new();
        for (i, b) in bases.iter().enumerate() {
            // Space regions out to avoid overlap: each gets a 0x100 slot.
            let base = Addr(b * 0x1000);
            if m.register(format!("r{i}"), base, 0x100).is_ok() {
                placed.push(base);
            }
        }
        for &b in &placed {
            prop_assert!(m.contains(b));
            prop_assert!(m.contains(Addr(b.0 + 0xFF)));
            prop_assert!(!m.contains(Addr(b.0 + 0x100)));
        }
    }
}
