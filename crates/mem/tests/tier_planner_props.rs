//! Property-based equivalence suite for the step-boundary migration
//! planner (`teco_mem::tier`).
//!
//! Three contracts, over arbitrary heat traces × tier capacities:
//!
//! 1. **Capacity**: applying every plan the planner emits never pushes any
//!    tier past its capacity, and the per-tier accounting stays equal to
//!    the sum of resident tensor bytes (conservation).
//! 2. **Boundary discipline**: migrations happen only at strictly
//!    increasing step boundaries — replanning the same boundary or an
//!    earlier one is a structural error, so a mid-step migration cannot
//!    be expressed.
//! 3. **Snapshot determinism**: serializing planner + map + heat mid-trace
//!    and resuming from the snapshot replays the identical plans and ends
//!    in the byte-identical state.
//!
//! Seeds that found interesting schedules during development are promoted
//! to the named regression tests at the bottom.

use proptest::prelude::*;
use teco_mem::{
    HeatTracker, MigrationPlanner, PlacementMap, PlannerConfig, Tier, TierCapacities, TierError,
};

/// One tensor in a generated workload: size in 64-byte lines, whether it
/// starts in the giant cache (vs host DRAM), and whether it is pinned.
#[derive(Debug, Clone)]
struct GenTensor {
    lines: u64,
    in_cache: bool,
    pinned: bool,
}

fn arb_tensor() -> impl Strategy<Value = GenTensor> {
    (1u64..32, any::<bool>(), any::<bool>()).prop_map(|(lines, in_cache, pinned)| GenTensor {
        lines,
        in_cache,
        pinned,
    })
}

/// A heat trace: per step, per tensor, (reads, writes) observed that step.
fn arb_trace(tensors: usize) -> impl Strategy<Value = Vec<Vec<(u64, u64)>>> {
    prop::collection::vec(prop::collection::vec((0u64..12, 0u64..12), tensors..=tensors), 1..10)
}

/// Build the map, skipping tensors that do not fit their starting tier
/// (the generator does not know the capacities; placement is fallible by
/// design and the property quantifies over whatever actually fits).
fn build_map(caps: TierCapacities, tensors: &[GenTensor]) -> PlacementMap {
    let mut map = PlacementMap::new(caps);
    for (i, t) in tensors.iter().enumerate() {
        let tier = if t.in_cache { Tier::GiantCache } else { Tier::HostDram };
        let _ = map.place(format!("t{i}"), t.lines * 64, tier, t.pinned);
    }
    map
}

fn check_conservation(map: &PlacementMap) {
    for tier in Tier::ALL {
        let sum: u64 = map.tensors().iter().filter(|t| t.tier == tier).map(|t| t.bytes).sum();
        assert_eq!(map.used(tier), sum, "accounting drifted from residency in {tier:?}");
        assert!(
            map.used(tier) <= map.capacities().of(tier),
            "{:?} over capacity: {} > {}",
            tier,
            map.used(tier),
            map.capacities().of(tier)
        );
    }
}

proptest! {
    /// Contract 1: arbitrary traces never push a tier past capacity, and
    /// accounting always equals residency.
    #[test]
    fn planner_never_exceeds_capacity(
        cache_lines in 1u64..64,
        tensors in prop::collection::vec(arb_tensor(), 1..12),
        trace in arb_trace(12),
        promote in 1u64..8,
    ) {
        let caps = TierCapacities {
            device_bytes: 0,
            giant_cache_bytes: cache_lines * 64,
            host_dram_bytes: 1 << 20,
        };
        let mut map = build_map(caps, &tensors);
        let mut heat = HeatTracker::new();
        let mut planner =
            MigrationPlanner::new(PlannerConfig { promote_score: promote, demote_score: 0 });
        for (step, loads) in trace.iter().enumerate() {
            for (h, &(reads, writes)) in loads.iter().enumerate().take(map.len()) {
                for _ in 0..reads {
                    heat.record_read(h, 64);
                }
                for _ in 0..writes {
                    heat.record_write(h, 64);
                }
            }
            let plan = planner.plan(step as u64, &heat, &map).expect("strictly increasing");
            map.apply(&plan).expect("planner plans always validate");
            check_conservation(&map);
            // Demotions always precede promotions inside one plan.
            let first_promo = plan.moves.iter().position(|m| m.to == Tier::GiantCache);
            if let Some(p) = first_promo {
                prop_assert!(
                    plan.moves[p..].iter().all(|m| m.to == Tier::GiantCache),
                    "demotion after a promotion in {:?}",
                    plan.moves
                );
            }
            heat.end_step();
        }
        // Pinned tensors never moved.
        for (i, t) in map.tensors().iter().enumerate() {
            if t.pinned {
                let started = if tensors[i].in_cache { Tier::GiantCache } else { Tier::HostDram };
                // Tensors that failed initial placement were skipped, so
                // handles may not align beyond map.len(); map handles are a
                // prefix of the generator order only when all fit.
                if map.len() == tensors.len() {
                    prop_assert_eq!(t.tier, started, "pinned tensor migrated");
                }
            }
        }
    }

    /// Contract 2: a boundary can be planned once; the same or an earlier
    /// step is rejected, so nothing can migrate mid-step.
    #[test]
    fn boundaries_are_strictly_monotone(
        steps in prop::collection::vec(0u64..100, 1..20),
    ) {
        let caps = TierCapacities {
            device_bytes: 0,
            giant_cache_bytes: 1 << 12,
            host_dram_bytes: 1 << 12,
        };
        let map = build_map(caps, &[]);
        let heat = HeatTracker::new();
        let mut planner = MigrationPlanner::new(PlannerConfig::default());
        let mut last: Option<u64> = None;
        for &s in &steps {
            let r = planner.plan(s, &heat, &map);
            match last {
                Some(l) if s <= l => {
                    prop_assert!(
                        matches!(r, Err(TierError::NotAtBoundary { step, last_planned })
                            if step == s && last_planned == l),
                        "replay of boundary {} after {} must be rejected", s, l
                    );
                }
                _ => {
                    prop_assert!(r.is_ok());
                    last = Some(s);
                }
            }
            prop_assert_eq!(planner.last_planned_step(), last);
        }
    }

    /// Contract 3: snapshotting planner + map + heat at an arbitrary cut
    /// point and resuming replays the identical plans and final state.
    #[test]
    fn snapshot_replay_is_deterministic(
        cache_lines in 1u64..32,
        tensors in prop::collection::vec(arb_tensor(), 1..8),
        trace in arb_trace(8),
        cut in 0usize..9,
    ) {
        let caps = TierCapacities {
            device_bytes: 0,
            giant_cache_bytes: cache_lines * 64,
            host_dram_bytes: 1 << 20,
        };
        let drive = |map: &mut PlacementMap,
                     heat: &mut HeatTracker,
                     planner: &mut MigrationPlanner,
                     steps: std::ops::Range<usize>,
                     trace: &[Vec<(u64, u64)>]| {
            let mut plans = Vec::new();
            for step in steps {
                for (h, &(reads, writes)) in trace[step].iter().enumerate().take(map.len()) {
                    for _ in 0..reads {
                        heat.record_read(h, 64);
                    }
                    for _ in 0..writes {
                        heat.record_write(h, 64);
                    }
                }
                let plan = planner.plan(step as u64, heat, map).expect("monotone");
                map.apply(&plan).expect("valid plan");
                heat.end_step();
                plans.push(plan);
            }
            plans
        };

        // Uninterrupted run.
        let mut map_a = build_map(caps, &tensors);
        let mut heat_a = HeatTracker::new();
        let mut pl_a = MigrationPlanner::new(PlannerConfig::default());
        let plans_a = drive(&mut map_a, &mut heat_a, &mut pl_a, 0..trace.len(), &trace);

        // Run to the cut, snapshot through serde, resume, finish.
        let cut = cut.min(trace.len());
        let mut map_b = build_map(caps, &tensors);
        let mut heat_b = HeatTracker::new();
        let mut pl_b = MigrationPlanner::new(PlannerConfig::default());
        let mut plans_b = drive(&mut map_b, &mut heat_b, &mut pl_b, 0..cut, &trace);
        let mut map_b: PlacementMap =
            serde_json::from_str(&serde_json::to_string(&map_b).unwrap()).unwrap();
        let mut heat_b: HeatTracker =
            serde_json::from_str(&serde_json::to_string(&heat_b).unwrap()).unwrap();
        let mut pl_b: MigrationPlanner =
            serde_json::from_str(&serde_json::to_string(&pl_b).unwrap()).unwrap();
        plans_b.extend(drive(&mut map_b, &mut heat_b, &mut pl_b, cut..trace.len(), &trace));

        prop_assert_eq!(plans_a, plans_b, "resumed run planned differently");
        prop_assert_eq!(
            serde_json::to_string(&map_a).unwrap(),
            serde_json::to_string(&map_b).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&heat_a).unwrap(),
            serde_json::to_string(&heat_b).unwrap()
        );
        prop_assert_eq!(
            serde_json::to_string(&pl_a).unwrap(),
            serde_json::to_string(&pl_b).unwrap()
        );
    }
}

// ---------------------------------------------------------------------------
// Named regressions promoted from proptest-found schedules
// ---------------------------------------------------------------------------

/// Found while shrinking `planner_never_exceeds_capacity`: two hot
/// host-DRAM tensors compete for one tensor's worth of cache headroom.
/// The hotter one must win; admitting both would blow the capacity the
/// property guards. (Ties break by ascending handle.)
#[test]
fn regression_promotion_respects_remaining_capacity() {
    let caps = TierCapacities { device_bytes: 0, giant_cache_bytes: 256, host_dram_bytes: 1 << 16 };
    let mut map = PlacementMap::new(caps);
    let warm = map.place("warm", 256, Tier::HostDram, false).unwrap();
    let hot = map.place("hot", 256, Tier::HostDram, false).unwrap();
    let mut heat = HeatTracker::new();
    for _ in 0..4 {
        heat.record_read(warm, 64);
    }
    for _ in 0..9 {
        heat.record_read(hot, 64);
    }
    let mut planner = MigrationPlanner::new(PlannerConfig::default());
    let plan = planner.plan(0, &heat, &map).unwrap();
    assert_eq!(plan.moves.len(), 1, "only one candidate fits: {:?}", plan.moves);
    assert_eq!(plan.moves[0].region, hot, "the hotter tensor must win the slot");
    map.apply(&plan).unwrap();
    assert_eq!(map.used(Tier::GiantCache), 256);
}

/// Found while shrinking `snapshot_replay_is_deterministic`: a demotion
/// and a promotion at the same boundary must net out — the demotion frees
/// exactly the room the promotion needs, and application order (demotions
/// first) makes the plan valid.
#[test]
fn regression_demotion_funds_same_boundary_promotion() {
    let caps = TierCapacities { device_bytes: 0, giant_cache_bytes: 512, host_dram_bytes: 1 << 16 };
    let mut map = PlacementMap::new(caps);
    let cold = map.place("cold", 512, Tier::GiantCache, false).unwrap();
    let hot = map.place("hot", 512, Tier::HostDram, false).unwrap();
    let mut heat = HeatTracker::new();
    for _ in 0..6 {
        heat.record_write(hot, 64);
    }
    let mut planner = MigrationPlanner::new(PlannerConfig::default());
    let plan = planner.plan(3, &heat, &map).unwrap();
    assert_eq!(plan.moves.len(), 2);
    assert_eq!((plan.moves[0].region, plan.moves[0].to), (cold, Tier::HostDram));
    assert_eq!((plan.moves[1].region, plan.moves[1].to), (hot, Tier::GiantCache));
    map.apply(&plan).unwrap();
    assert_eq!(map.tier_of(hot).unwrap(), Tier::GiantCache);
    assert_eq!(map.tier_of(cold).unwrap(), Tier::HostDram);
    assert_eq!(map.used(Tier::GiantCache), 512);
}

/// Found while shrinking `boundaries_are_strictly_monotone`: step 0 is a
/// plannable boundary (the sentinel must not make boundary 0 look already
/// planned), and replanning 0 afterwards is rejected.
#[test]
fn regression_step_zero_plans_once() {
    let caps = TierCapacities { device_bytes: 0, giant_cache_bytes: 512, host_dram_bytes: 512 };
    let map = PlacementMap::new(caps);
    let heat = HeatTracker::new();
    let mut planner = MigrationPlanner::new(PlannerConfig::default());
    assert_eq!(planner.last_planned_step(), None);
    planner.plan(0, &heat, &map).expect("boundary 0 must be plannable");
    assert_eq!(planner.last_planned_step(), Some(0));
    assert!(matches!(
        planner.plan(0, &heat, &map),
        Err(TierError::NotAtBoundary { step: 0, last_planned: 0 })
    ));
}
