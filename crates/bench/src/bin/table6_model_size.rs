//! Table VI: impact of model size (GPT-2 → 11B) on TECO effectiveness.

use teco_bench::{dump_json, f, header, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let rows = experiments::table6(&cal);
    header("Table VI", "Model-size sensitivity (batch 4, speedup over ZeRO-Offload)");
    row(&["model".into(), "TECO-CXL".into(), "paper".into(), "TECO-Red".into(), "paper".into()]);
    for r in &rows {
        row(&[r.model.clone(), f(r.teco_cxl), f(r.paper.0), f(r.teco_reduction), f(r.paper.1)]);
    }
    dump_json("table6_model_size", &rows);
}
