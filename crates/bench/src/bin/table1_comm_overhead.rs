//! Table I: percentage of ZeRO-Offload training time spent in exposed
//! communication, Bert-large, batch sizes {4, 8, 16, 20}.

use teco_bench::{dump_json, f, header, pct, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let rows = experiments::table1(&cal);
    header("Table I", "Communication share of ZeRO-Offload training time (Bert-large)");
    row(&["batch".into(), "measured".into(), "paper".into(), "abs err".into()]);
    for r in &rows {
        row(&[
            r.batch.to_string(),
            pct(r.measured_pct),
            pct(r.paper_pct),
            f((r.measured_pct - r.paper_pct).abs()),
        ]);
    }
    dump_json("table1_comm_overhead", &rows);
}
