//! §VI: the user-facing API costs. CXLFENCE is called exactly twice per
//! step and takes <1% of step time; the snoop filter the giant cache would
//! have needed (and update mode avoids) is quantified.

use teco_bench::{dump_json, f, header, pct, row};
use teco_cxl::full_directory_bytes;
use teco_dl::ModelSpec;
use teco_offload::{simulate_step, Calibration, System};

fn main() {
    let cal = Calibration::paper();
    header("§VI / §IV-A2", "API and fence overhead");
    row(&["model".into(), "batch".into(), "fence".into(), "step".into(), "share".into()]);
    let mut out = Vec::new();
    for spec in ModelSpec::table3() {
        let batch = if spec.name == "GCNII" { 1 } else { 4 };
        let r = simulate_step(&cal, &spec, batch, System::TecoReduction);
        let share = 100.0 * r.breakdown.fence.as_secs_f64() / r.total.as_secs_f64();
        row(&[
            spec.name.into(),
            batch.to_string(),
            r.breakdown.fence.to_string(),
            r.total.to_string(),
            pct(share),
        ]);
        out.push((spec.name, share));
    }
    println!("\npaper: CXLFENCE (built on cudaDeviceSynchronize) takes <1% of training time.");

    println!("\nSnoop-filter savings of the update protocol (directory the giant cache avoids):");
    row(&["model".into(), "giant cache MB".into(), "directory MB".into()]);
    for spec in ModelSpec::table3() {
        let dir = full_directory_bytes(spec.giant_cache_bytes());
        row(&[spec.name.into(), spec.giant_cache_mb.to_string(), f(dir as f64 / (1 << 20) as f64)]);
    }
    dump_json("api_overhead", &out);
}
