//! Fig. 13: sweeping `act_aft_steps` — accuracy (perplexity proxy) vs.
//! speedup. Early activation wins more time but costs accuracy; the paper
//! picks step 500 of 1775 as the balance point.

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_offload::convergence::{run, ConvergenceConfig, DbaSchedule};
use teco_offload::{simulate_step, Calibration, System};

fn main() {
    let steps = 500u64;
    let cal = Calibration::paper();
    let gpt2 = ModelSpec::gpt2();
    // Per-step times: before DBA activation a step runs TECO-CXL, after it
    // TECO-Reduction; the baseline is ZeRO-Offload throughout.
    let t_zero = simulate_step(&cal, &gpt2, 4, System::ZeroOffload).total.as_secs_f64();
    let t_cxl = simulate_step(&cal, &gpt2, 4, System::TecoCxl).total.as_secs_f64();
    let t_red = simulate_step(&cal, &gpt2, 4, System::TecoReduction).total.as_secs_f64();

    header("Fig 13", "DBA activation-point sweep (GPT-2 proxy; paper knee at 500/1775 steps)");
    row(&["act_after".into(), "perplexity".into(), "speedup".into()]);
    // Fine-tune from a "pre-trained checkpoint" (120 exact warmup steps).
    let baseline = run(&ConvergenceConfig { steps, pretrain_steps: 120, ..Default::default() });
    let mut rows = Vec::new();
    for act in [0u64, 50, 125, 250, 375, 500] {
        let r = if act >= steps {
            None
        } else {
            Some(run(&ConvergenceConfig {
                steps,
                pretrain_steps: 120,
                dba: Some(DbaSchedule { act_aft_steps: act, dirty_bytes: 2 }),
                ..Default::default()
            }))
        };
        let ppl = r.as_ref().map(|r| r.final_metric).unwrap_or(baseline.final_metric);
        let time = act as f64 * t_cxl + (steps - act.min(steps)) as f64 * t_red;
        let speedup = steps as f64 * t_zero / time;
        row(&[act.to_string(), f(ppl as f64), f(speedup)]);
        rows.push((act, ppl, speedup));
    }
    println!("\nno-DBA perplexity: {:.2}", baseline.final_metric);
    println!("paper: accuracy 22.50→21.21 across activation points, speedup 1.63→1.15;");
    println!("activating at the default point balances both.");
    dump_json("fig13_dba_activation", &rows);
}
