//! Methodology validation: the paper's gem5 flow collects a cache-hierarchy
//! *writeback trace* and replays it through the CXL emulator. We do the
//! same at reduced scale — drive a real vectorized-ADAM access sweep
//! through the Table II cache hierarchy, replay the resulting per-line
//! writebacks through the event-driven CXL controller — and compare the
//! exposed transfer time against the chunk-granular fast path the big
//! simulations use.

use teco_bench::{dump_json, f, header, row};
use teco_cxl::controller::{run_controller, LineRequest};
use teco_cxl::CxlConfig;
use teco_mem::{Addr, ChunkedSweep, Hierarchy, SweepGen, LINE_BYTES};
use teco_offload::Calibration;
use teco_sim::{SerialServer, SimTime};

fn main() {
    let cal = Calibration::paper();
    let cfg = CxlConfig::paper();
    header("Validation", "Per-line trace replay vs chunked fast path");
    row(&[
        "region MB".into(),
        "lines".into(),
        "trace drain ms".into(),
        "chunk drain ms".into(),
        "err %".into(),
    ]);
    let mut out = Vec::new();
    for mb in [8u64, 32, 128, 256] {
        let bytes = mb << 20;
        // Per-line path: ADAM sweep through the gem5 hierarchy → writeback
        // trace → DES controller.
        let mut h = Hierarchy::gem5();
        let rate = cal.cpu_mem_bw.scaled(4.0 / cal_adam_bytes(&cal));
        let sweep = SweepGen { base: Addr(0), bytes, update_rate: rate, start: SimTime::ZERO };
        let trace = sweep.writeback_trace(&mut h);
        let reqs: Vec<LineRequest> = trace
            .events
            .iter()
            .enumerate()
            .map(|(id, w)| LineRequest { id, ready: w.time, bytes: LINE_BYTES as u64 })
            .collect();
        let des = match run_controller(&cfg, reqs, SimTime::ZERO) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("controller replay failed for {mb} MB region: {e}");
                std::process::exit(1);
            }
        };

        // Chunked fast path at the same production rate.
        let chunked = ChunkedSweep {
            total_bytes: bytes,
            chunks: 48,
            update_rate: rate,
            start: SimTime::ZERO,
        };
        let mut link = SerialServer::new(cfg.cxl_bandwidth());
        for c in chunked.chunks() {
            link.submit(c.ready, c.bytes);
        }
        let fast = link.next_free();
        let err = 100.0 * (des.drain.as_secs_f64() - fast.as_secs_f64()).abs() / fast.as_secs_f64();
        row(&[
            mb.to_string(),
            trace.len().to_string(),
            f(des.drain.as_millis_f64()),
            f(fast.as_millis_f64()),
            f(err),
        ]);
        out.push((mb, des.drain.as_millis_f64(), fast.as_millis_f64(), err));
    }
    println!("\nthe error is the end-of-iteration flush tail: lines still resident in the");
    println!("16 MB L3 when the sweep ends can only drain afterwards (the paper's");
    println!("once-per-iteration flush, §IV-A2). For tensor regions >> L3 — every Table III");
    println!("model — the tail vanishes and the chunk-granular fast path matches the");
    println!("per-line DES replay, justifying its use at billion-parameter scale");
    println!("(a 737M-parameter sweep is ~46M lines).");
    dump_json("trace_replay_validation", &out);
}

/// ADAM touches `adam_bytes_per_param` per 4-byte parameter; the sweep's
/// line-store rate is cpu_mem_bw scaled to the parameter-byte share.
fn cal_adam_bytes(cal: &Calibration) -> f64 {
    cal.adam_bytes_per_param as f64
}
