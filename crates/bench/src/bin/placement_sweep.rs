//! Placement sweep: every Table III model under the explicit single-tier
//! policy instance and the non-default tiered policy.
//!
//! Each cell runs the fixed scaled-down workload — per step: gradient
//! lines flush and fence, DBA activates mid-run, parameters and optimizer
//! moments push back — under one placement policy, then serializes the
//! end state. Single-tier cells must be byte-identical to a session whose
//! config never mentions placement (the legacy layout is one policy
//! instance); tiered cells pin small hot tensors device-resident, stage
//! params/grads in the CXL giant cache, and spill optimizer moments to
//! plain host DRAM, migrating only at step boundaries. Each row also
//! carries the BO-autotuned giant-cache size next to the published
//! Table III setting.
//!
//! The row computation lives in [`teco_bench::sweeps`]. Everything is
//! seeded: running this binary twice produces byte-identical
//! `bench_results/placement_sweep.json` (the CI placement-smoke job
//! diffs exactly that), and the acceptance gate aborts the process on
//! any divergence.

use teco_bench::sweeps::{placement_divergences, placement_rows};
use teco_bench::{dump_json, header, row};

fn main() {
    header("Placement sweep", "Table III models × {single-tier, tiered} policies");
    row(&[
        "model".into(),
        "policy".into(),
        "tuned MB".into(),
        "Table III MB".into(),
        "device B".into(),
        "cache B".into(),
        "host B".into(),
        "migrations".into(),
        "snapshot".into(),
    ]);
    let out = placement_rows();
    for r in &out {
        row(&[
            r.model.clone(),
            r.policy.clone(),
            r.autotuned_mb.to_string(),
            r.table3_mb.to_string(),
            r.device_bytes.to_string(),
            r.giant_cache_bytes.to_string(),
            r.host_dram_bytes.to_string(),
            r.migrations.to_string(),
            r.snapshot_digest.clone(),
        ]);
    }
    let bad = placement_divergences(&out);
    if bad.is_empty() {
        println!("\ngate: explicit single-tier matched the legacy default byte-for-byte on");
        println!("every model; every tiered cell re-placed tensors off the giant cache;");
        println!("the autotuned giant cache tracked Table III on every row.");
    } else {
        for b in &bad {
            eprintln!("DIVERGENCE: {b}");
        }
        std::process::exit(1);
    }
    dump_json("placement_sweep", &out);
}
