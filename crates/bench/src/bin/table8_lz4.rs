//! Table VIII: lossless compression (LZ4) of parameter transfers —
//! measured compression ratios on model-like parameter streams using the
//! real from-scratch codec, and the resulting normalized training time.
//! Paper ratios: GPT2 5%, Albert 0%, Bert 0%, T5 36%; normalized times
//! 4.51 / 1.95 / 3.03 / 2.04 (≥ ~2× TECO).

use teco_bench::{dump_json, f, header, pct, row};
use teco_compress::{compress, compression_ratio, Lz4Throughput};
use teco_dl::ModelSpec;
use teco_offload::{simulate_step, Calibration, System};
use teco_sim::SimRng;

/// Synthesize a parameter byte stream with a model-specific exact-zero
/// fraction (pruned/padding weights compress; live mantissas don't).
fn param_stream(zero_frac: f64, n_params: usize, rng: &mut SimRng) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(n_params * 4);
    for _ in 0..n_params {
        let v = if rng.bernoulli(zero_frac) { 0f32 } else { rng.normal(0.0, 0.02) as f32 };
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn main() {
    let cal = Calibration::paper();
    let codec = Lz4Throughput::default();
    let mut rng = SimRng::seed_from_u64(8);
    // Exact-zero fractions matching each model's measured compressibility.
    let cases = [
        ("GPT2", ModelSpec::gpt2(), 0.065, 0.05, 4.51),
        ("Albert-xxlarge-v1", ModelSpec::albert_xxlarge(), 0.0, 0.0, 1.95),
        ("Bert-large", ModelSpec::bert_large(), 0.0, 0.0, 3.03),
        ("T5-large", ModelSpec::t5_large(), 0.42, 0.36, 2.04),
    ];
    header("Table VIII", "Lossless LZ4 on parameter transfers");
    row(&[
        "model".into(),
        "ratio".into(),
        "paper ratio".into(),
        "norm time".into(),
        "paper".into(),
    ]);
    let mut out = Vec::new();
    for (name, spec, zero_frac, paper_ratio, paper_norm) in cases {
        // Measure the ratio with the real codec on a 2M-param sample.
        let sample = param_stream(zero_frac, 2_000_000, &mut rng);
        let ratio = compression_ratio(sample.len(), compress(&sample).len());

        // Normalized training time: a ZeRO-Offload step whose parameter
        // transfer goes through compress→link→decompress, vs TECO-Reduction.
        let zero = simulate_step(&cal, &spec, 4, System::ZeroOffload);
        let red = simulate_step(&cal, &spec, 4, System::TecoReduction);
        let pipeline =
            codec.pipeline_seconds(spec.param_bytes(), ratio, cal.pcie_bw().bytes_per_sec());
        let lz4_total = zero.total.as_secs_f64()
            - zero.breakdown.param_transfer_exposed.as_secs_f64()
            + pipeline;
        let norm = lz4_total / red.total.as_secs_f64();
        row(&[name.into(), pct(100.0 * ratio), pct(100.0 * paper_ratio), f(norm), f(paper_norm)]);
        out.push((name, ratio, norm));
    }
    println!("\npaper conclusion: 'compression and decompression incur large performance");
    println!("overhead (at least 2x)' — replacing DBA with lossless compression is impractical.");
    dump_json("table8_lz4", &out);
}
