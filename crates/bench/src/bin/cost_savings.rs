//! §VIII-C cost analysis: the "$900K per year" datacenter arithmetic,
//! re-derived from the measured speedups.

use teco_bench::{dump_json, f, header, row};
use teco_offload::{experiments, Calibration, DatacenterModel};

fn main() {
    let cal = Calibration::paper();
    let dc = DatacenterModel::paper();
    header("§VIII-C", "Datacenter cost savings (256 A100s, p4de.24xlarge pricing)");
    println!("annual fleet bill: ${:.2}M", dc.annual_fleet_bill() / 1e6);
    println!(
        "paper's arithmetic: 7% training-time saving → ${:.0}K/yr (paper: ~$900K)\n",
        dc.annual_savings(0.07) / 1e3
    );

    // Re-derive from measured per-model savings.
    let cells = experiments::fig11_table4(&cal);
    row(&["model".into(), "batch".into(), "time saved".into(), "$K/yr (fleet)".into()]);
    let mut out = Vec::new();
    for c in cells.iter().filter(|c| !c.oom) {
        let saving = 1.0 - 1.0 / c.teco_reduction;
        let dollars = dc.annual_savings(saving) / 1e3;
        row(&[c.model.clone(), c.batch.to_string(), format!("{:.1}%", 100.0 * saving), f(dollars)]);
        out.push((c.model.clone(), c.batch, saving, dollars));
    }
    let avg = out.iter().map(|o| o.2).sum::<f64>() / out.len() as f64;
    println!(
        "\nat the measured average saving ({:.1}%), the fleet-bill interpretation",
        100.0 * avg
    );
    println!(
        "yields ${:.2}M/yr; the conservative utilization-weighted figure is ${:.0}K/yr.",
        dc.annual_savings(avg) / 1e6,
        dc.annual_savings_training_only(avg) / 1e3
    );
    dump_json("cost_savings", &out);
}
