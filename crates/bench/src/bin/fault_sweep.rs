//! Fault sweep: the recovery cost of the link fault model across fault
//! rates × `dirty_bytes`. Each cell runs the same fixed-seed functional
//! workload (gradient stream out, DBA-conformant parameter updates back,
//! two fences per step) and records simulated time, recovery counters, and
//! whether the giant-cache end state stayed bit-identical to a fault-free
//! run — the recoverability criterion, measured rather than assumed.
//!
//! The row computation lives in [`teco_bench::sweeps`], where the
//! determinism test matrix pins serial against parallel execution.
//! Everything is seeded: running this binary twice produces byte-identical
//! `bench_results/fault_sweep.json` (the CI fault-smoke job diffs exactly
//! that).

use teco_bench::sweeps::fault_rows;
use teco_bench::{dump_json, f, header, row};

fn main() {
    header("Fault sweep", "recovery cost across fault rates × dirty_bytes");
    row(&[
        "rate".into(),
        "dirty".into(),
        "sim ms".into(),
        "slowdown".into(),
        "retries".into(),
        "mismatch".into(),
        "quarantine".into(),
        "degraded".into(),
        "state ok".into(),
    ]);
    let out = fault_rows();
    for r in &out {
        row(&[
            format!("{}", r.fault_rate),
            r.dirty_bytes.to_string(),
            f(r.sim_time_ns as f64 / 1e6),
            f(r.slowdown_vs_clean),
            r.link_retries.to_string(),
            r.checksum_mismatches.to_string(),
            r.quarantined_lines.to_string(),
            r.degraded_regions.to_string(),
            r.state_matches_clean.to_string(),
        ]);
    }
    println!("\nrate 0 rows are byte-identical to the fault-model-off baseline; nonzero");
    println!("rates pay recovery time (retries, stalls, full-line resends) but the");
    println!("giant-cache end state stays bit-identical to the clean run.");
    dump_json("fault_sweep", &out);
}
