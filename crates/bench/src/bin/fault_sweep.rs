//! Fault sweep: the recovery cost of the link fault model across fault
//! rates × `dirty_bytes`. Each cell runs the same fixed-seed functional
//! workload (gradient stream out, DBA-conformant parameter updates back,
//! two fences per step) and records simulated time, recovery counters, and
//! whether the giant-cache end state stayed bit-identical to a fault-free
//! run — the PR's recoverability criterion, measured rather than assumed.
//!
//! Everything is seeded: running this binary twice produces byte-identical
//! `bench_results/fault_sweep.json` (the CI fault-smoke job diffs exactly
//! that).

use serde::Serialize;
use teco_bench::{dump_json, f, header, row};
use teco_core::{TecoConfig, TecoSession};
use teco_cxl::FaultConfig;
use teco_mem::{Addr, LineData};
use teco_sim::SimTime;

const LINES: u64 = 512;
const ROUNDS: u64 = 4;
const SEED: u64 = 42;

#[derive(Serialize)]
struct SweepRow {
    fault_rate: f64,
    dirty_bytes: u8,
    sim_time_ns: u64,
    slowdown_vs_clean: f64,
    bytes_to_device: u64,
    crc_errors: u64,
    link_retries: u64,
    stalls: u64,
    checksum_mismatches: u64,
    quarantined_lines: u64,
    full_line_retries: u64,
    degraded_regions: u64,
    state_matches_clean: bool,
}

/// Parameter line for (step, i): the high halves of every word are fixed
/// across steps (the §III DBA premise), only the low two bytes change.
fn param_line(step: u64, i: u64) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16usize {
        let hi = ((i as u32) << 16) ^ ((w as u32) << 26);
        let lo = (0x1000u32.wrapping_add(step as u32 * 257).wrapping_add(w as u32)) & 0xFFFF;
        l.set_word(w, (hi & 0xFFFF_0000) | lo);
    }
    l
}

fn grad_line(step: u64, i: u64) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16usize {
        l.set_word(w, (step as u32) << 24 ^ (i as u32) << 8 ^ w as u32);
    }
    l
}

/// Run the fixed workload; returns the session, the end-of-run simulated
/// time, and the parameter region base.
fn run_workload(dirty_bytes: u8, fault: FaultConfig) -> (TecoSession, SimTime, Addr) {
    let cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 22)
        .with_dirty_bytes(dirty_bytes)
        .with_act_aft_steps(1) // step 0 establishes resident copies
        .with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, pbase) = s.alloc_tensor("params", LINES * 64).expect("alloc params");
    let (_, gbase) = s.alloc_tensor("grads", LINES * 64).expect("alloc grads");
    let mut now = SimTime::ZERO;
    for step in 0..ROUNDS {
        for i in 0..LINES {
            // A gradient line lost to retry exhaustion is recorded in the
            // fault stats; the sweep keeps going.
            let _ = s.push_grad_line(Addr(gbase.0 + i * 64), grad_line(step, i), now);
        }
        now = s.cxlfence_grads(now);
        s.check_activation(step);
        let lines: Vec<LineData> = (0..LINES).map(|i| param_line(step, i)).collect();
        s.push_param_lines(pbase, &lines, now).expect("param push");
        now = s.cxlfence_params(now);
    }
    (s, now, pbase)
}

fn state_matches(a: &TecoSession, ab: Addr, b: &TecoSession, bb: Addr) -> bool {
    (0..LINES).all(|i| {
        a.device_read_line(Addr(ab.0 + i * 64)).ok() == b.device_read_line(Addr(bb.0 + i * 64)).ok()
    })
}

fn main() {
    header("Fault sweep", "recovery cost across fault rates × dirty_bytes");
    row(&[
        "rate".into(),
        "dirty".into(),
        "sim ms".into(),
        "slowdown".into(),
        "retries".into(),
        "mismatch".into(),
        "quarantine".into(),
        "degraded".into(),
        "state ok".into(),
    ]);
    let mut out = Vec::new();
    for &dirty in &[2u8, 4] {
        let (clean_s, clean_t, clean_b) = run_workload(dirty, FaultConfig::off());
        for &rate in &[0.0f64, 0.001, 0.01, 0.05] {
            let fault = FaultConfig {
                crc_error_rate: rate,
                stall_rate: rate,
                stall_ns: 100,
                poison_rate: rate / 4.0,
                dba_checksum_error_rate: rate,
                retry_limit: 8,
                seed: SEED,
                ..FaultConfig::off()
            };
            let (s, t, b) = run_workload(dirty, fault);
            let r = s.fault_report();
            let matches = state_matches(&s, b, &clean_s, clean_b);
            let slowdown = t.as_ns() as f64 / clean_t.as_ns() as f64;
            row(&[
                format!("{rate}"),
                dirty.to_string(),
                f(t.as_ns() as f64 / 1e6),
                f(slowdown),
                r.retries.to_string(),
                r.checksum_mismatches.to_string(),
                r.quarantined_lines.to_string(),
                r.degraded_regions.to_string(),
                matches.to_string(),
            ]);
            out.push(SweepRow {
                fault_rate: rate,
                dirty_bytes: dirty,
                sim_time_ns: t.as_ns(),
                slowdown_vs_clean: slowdown,
                bytes_to_device: s.stats().bytes_to_device,
                crc_errors: r.crc_errors,
                link_retries: r.retries,
                stalls: r.stalls,
                checksum_mismatches: r.checksum_mismatches,
                quarantined_lines: r.quarantined_lines,
                full_line_retries: r.full_line_retries,
                degraded_regions: r.degraded_regions,
                state_matches_clean: matches,
            });
        }
    }
    println!("\nrate 0 rows are byte-identical to the fault-model-off baseline; nonzero");
    println!("rates pay recovery time (retries, stalls, full-line resends) but the");
    println!("giant-cache end state stays bit-identical to the clean run.");
    dump_json("fault_sweep", &out);
}
