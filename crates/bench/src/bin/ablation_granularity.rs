//! Design ablation: transfer granularity. §I identifies *coarse-grained
//! tensor transfer* as a root problem; this sweep varies how finely the
//! parameter stream is chunked (1 chunk = the bulk software copy ... many
//! chunks = cache-line-like streaming) and shows the exposed time shrink.

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_mem::ChunkedSweep;
use teco_offload::{simulate_step, sweep, Calibration, System};
use teco_sim::{SerialServer, SimTime};

fn main() {
    let cal = Calibration::paper();
    let bert = ModelSpec::bert_large();
    let adam = cal.adam_time(&bert);
    let bytes = bert.param_bytes();

    header("Ablation", "Parameter-transfer granularity (Bert-large, CXL link)");
    row(&["chunks".into(), "exposed ms".into(), "hidden %".into()]);
    let bulk_exposed = cal.cxl_bw().transfer_time(bytes);
    // Each granularity point replays an independent link simulation.
    let points = [1usize, 2, 4, 8, 24, 96, 384];
    let results = sweep(&points, |_, &chunks| {
        let stream = ChunkedSweep {
            total_bytes: bytes,
            chunks,
            update_rate: cal.adam_param_production_rate(&bert),
            start: SimTime::ZERO,
        };
        let mut link = SerialServer::new(cal.cxl_bw());
        for c in stream.chunks() {
            link.submit(c.ready, c.bytes);
        }
        let exposed = link.next_free().saturating_sub(adam);
        let hidden = 100.0 * (1.0 - exposed.as_secs_f64() / bulk_exposed.as_secs_f64());
        (chunks, exposed.as_millis_f64(), hidden)
    });
    let mut out = Vec::new();
    for &(chunks, exposed_ms, hidden) in &results {
        row(&[chunks.to_string(), f(exposed_ms), f(hidden)]);
        out.push((chunks, exposed_ms));
    }
    println!("\nchunks=1 is the software bulk copy (fully exposed after ADAM);");
    println!("fine-grained streaming overlaps the ADAM sweep — the §IV-A2 point of");
    println!("decomposing transfers to cache-line granularity.");

    let zero = simulate_step(&cal, &bert, 4, System::ZeroOffload);
    let red = simulate_step(&cal, &bert, 4, System::TecoReduction);
    println!(
        "end-to-end: exposed param transfer {} (bulk) → {} (TECO-Reduction).",
        zero.breakdown.param_transfer_exposed, red.breakdown.param_transfer_exposed
    );
    dump_json("ablation_granularity", &out);
}
