//! Render the timing-experiment suite into a single markdown report at
//! `bench_results/REPORT.md` — the mechanical counterpart of
//! EXPERIMENTS.md.

use teco_offload::{timing_report, Calibration};

fn main() {
    let report = timing_report(&Calibration::paper());
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    let path = "bench_results/REPORT.md";
    std::fs::write(path, &report).expect("write report");
    println!("{report}");
    println!("\nwritten to {path}");
}
