//! Render the timing-experiment suite into a single markdown report at
//! `bench_results/REPORT.md` — the mechanical counterpart of
//! EXPERIMENTS.md — and distill the Criterion medians that `cargo bench`
//! persisted into a machine-readable `bench_results/perf_summary.json`
//! (the dba / event_engine / coherence numbers future PRs diff against).

use serde::Value;
use teco_bench::report::{
    chaos_section, churn_section, collective_section, datapath_section, fault_section,
    placement_section, resume_section, scaling_section, snoop_section,
};
use teco_offload::{timing_report, Calibration};

/// Which `criterion_medians.json` groups feed each perf-summary section.
const SECTIONS: &[(&str, &[&str])] = &[
    ("dba", &["aggregator", "disaggregator", "aggregator_bulk", "disaggregator_bulk"]),
    ("event_engine", &["event_engine"]),
    ("coherence", &["coherence"]),
    ("coherence_event", &["coherence_event"]),
    ("giant_cache_merge", &["giant_cache_merge"]),
    ("step_throughput", &["step_throughput"]),
    ("datapath", &["datapath", "datapath_sharded"]),
];

/// Build `perf_summary.json` from the medians `cargo bench` left behind.
/// Returns `None` (gracefully) when no benches have been run yet.
fn perf_summary() -> Option<Value> {
    let text = std::fs::read_to_string("bench_results/criterion_medians.json").ok()?;
    let medians: Value = match serde_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            eprintln!("warning: criterion_medians.json unreadable: {e}");
            return None;
        }
    };
    let Value::Object(entries) = medians else {
        eprintln!("warning: criterion_medians.json is not an object");
        return None;
    };
    let mut sections = Vec::new();
    for &(section, groups) in SECTIONS {
        let mut items: Vec<(String, Value)> = entries
            .iter()
            .filter(|(key, _)| key.split('/').next().is_some_and(|g| groups.contains(&g)))
            .cloned()
            .collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        sections.push((section.to_string(), Value::Object(items)));
    }
    Some(Value::Object(sections))
}

fn main() {
    let report = format!(
        "{}\n{}{}{}{}{}{}{}{}{}",
        timing_report(&Calibration::paper()),
        fault_section(),
        snoop_section(),
        resume_section(),
        scaling_section(),
        datapath_section(),
        churn_section(),
        collective_section(),
        chaos_section(),
        placement_section()
    );
    std::fs::create_dir_all("bench_results").expect("create bench_results/");
    let path = "bench_results/REPORT.md";
    std::fs::write(path, &report).expect("write report");
    println!("{report}");
    println!("\nwritten to {path}");

    match perf_summary() {
        Some(summary) => {
            let out = "bench_results/perf_summary.json";
            let text = serde_json::to_string_pretty(&summary).expect("serialize summary");
            std::fs::write(out, text).expect("write perf summary");
            println!("perf medians written to {out}");
        }
        None => {
            println!(
                "no Criterion medians found — run `cargo bench` first to seed perf_summary.json"
            );
        }
    }
}
