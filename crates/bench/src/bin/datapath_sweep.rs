//! Datapath sweep: the sharded-coherence determinism contract, measured.
//! Each cell runs the same fixed-seed workload (bulk parameter runs long
//! enough to cross the fabric's thread-spawn threshold, a gradient
//! stream back, two fences per round) at coherence workers ∈ {1, 2, 4},
//! with the fault model off and on, under both protocol modes — and
//! records the end state down to an FNV-1a digest of the serialized
//! session snapshot.
//!
//! Rows differing only in `workers` must be byte-identical everywhere
//! else; this binary exits nonzero if they are not. Everything is seeded,
//! so two invocations produce byte-identical
//! `bench_results/datapath_sweep.json` — the CI datapath-smoke job diffs
//! exactly that, run-to-run and sharded-vs-serial.

use teco_bench::sweeps::{datapath_divergences, datapath_rows};
use teco_bench::{dump_json, header, row};

fn main() {
    header("Datapath sweep", "sharded coherence vs serial across faults × protocol");
    row(&[
        "workers".into(),
        "faulty".into(),
        "inval".into(),
        "sim ms".into(),
        "to-dev MB".into(),
        "retries".into(),
        "mismatch".into(),
        "snoop peak".into(),
        "digest".into(),
    ]);
    let out = datapath_rows();
    for r in &out {
        row(&[
            r.workers.to_string(),
            r.faulty.to_string(),
            r.invalidation.to_string(),
            format!("{:.3}", r.sim_time_ns as f64 / 1e6),
            format!("{:.2}", r.bytes_to_device as f64 / 1e6),
            r.link_retries.to_string(),
            r.checksum_mismatches.to_string(),
            r.snoop_peak.to_string(),
            r.snapshot_digest.clone(),
        ]);
    }
    let bad = datapath_divergences(&out);
    if bad.is_empty() {
        println!("\nevery worker count reproduced the serial end state bit-for-bit");
    } else {
        for b in &bad {
            eprintln!("datapath sweep DIVERGENCE: {b}");
        }
    }
    dump_json("datapath_sweep", &out);
    if !bad.is_empty() {
        std::process::exit(1);
    }
}
