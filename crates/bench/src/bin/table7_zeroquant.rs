//! Table VII: training time of ZeRO-Quant (lossy INT8 compression with a
//! full-precision teacher) vs TECO-Reduction on a Bert-base-sized model.
//! Paper: 5.8 h vs 2.03 h (≈2.86×).

use teco_bench::{dump_json, f, header, row};
use teco_compress::ZeroQuantCost;
use teco_dl::{ModelKind, ModelSpec};
use teco_offload::{simulate_step, Calibration, System};

fn main() {
    let cal = Calibration::paper();
    // Bert-base-uncased: 110M parameters, 12 layers, hidden 768.
    let bert_base = ModelSpec {
        name: "Bert-base-uncased",
        kind: ModelKind::TransformerEncoder,
        params: 110_000_000,
        layers: 12,
        hidden: 768,
        heads: 12,
        giant_cache_mb: 270,
        seq_len: 128,
        attention_intensity: 1.0,
        act_bytes_per_token: 2_500_000,
    };
    let steps_to_converge = 36_800u64; // ~3 epochs of GLUE-MNLI at batch 32

    let teco = simulate_step(&cal, &bert_base, 8, System::TecoReduction);
    // ZeRO-Quant: a ZeRO-Offload-style schedule (its INT8 weights shrink
    // the transfer 4x, but the teacher forward + distillation + quant
    // kernels inflate compute).
    let zero = simulate_step(&cal, &bert_base, 8, System::ZeroOffload);
    let zq_cost = ZeroQuantCost::default();
    let mut zq_step = zero.total.as_secs_f64();
    // INT8 weights: parameter transfer shrinks to about a quarter.
    zq_step -= zero.breakdown.param_transfer_exposed.as_secs_f64() * 0.75;
    zq_step *= zq_cost.step_multiplier();

    let teco_hours = teco.total.as_secs_f64() * steps_to_converge as f64 / 3600.0;
    let zq_hours = zq_step * steps_to_converge as f64 / 3600.0;

    header("Table VII", "Training time, GLUE-MNLI-scale fine-tune of Bert-base");
    row(&["system".into(), "hours".into(), "paper".into()]);
    row(&["Zero-Quant".into(), f(zq_hours), f(5.8)]);
    row(&["TECO-Reduction".into(), f(teco_hours), f(2.03)]);
    println!(
        "\nratio: {:.2}x (paper: 2.86x) — the teacher model makes lossy compression far slower than DBA",
        zq_hours / teco_hours
    );
    dump_json("table7_zeroquant", &[("Zero-Quant", zq_hours), ("TECO-Reduction", teco_hours)]);
}
