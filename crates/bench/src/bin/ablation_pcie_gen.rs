//! Design ablation: does TECO still matter on faster links? Sweeps PCIe
//! 3.0/4.0/5.0 (§I notes even PCIe 5.0 transfers take ~10 ms per layer
//! group). The win shrinks with bandwidth but persists while CPU-side
//! optimizer time can hide streamed transfers.

use teco_bench::{dump_json, f, header, row};
use teco_cxl::{CxlConfig, PcieGen};
use teco_dl::ModelSpec;
use teco_offload::{simulate_step, Calibration, System};

fn main() {
    header("Ablation", "PCIe generation sweep (Bert-large, batch 4)");
    row(&["link".into(), "GB/s".into(), "ZeRO ms".into(), "TECO-Red ms".into(), "speedup".into()]);
    let bert = ModelSpec::bert_large();
    let mut out = Vec::new();
    for (name, gen) in
        [("PCIe 3.0", PcieGen::Gen3), ("PCIe 4.0", PcieGen::Gen4), ("PCIe 5.0", PcieGen::Gen5)]
    {
        let mut cal = Calibration::paper();
        cal.cxl = CxlConfig { gen, ..CxlConfig::paper() };
        let zero = simulate_step(&cal, &bert, 4, System::ZeroOffload);
        let red = simulate_step(&cal, &bert, 4, System::TecoReduction);
        let s = red.speedup_over(&zero);
        row(&[
            name.into(),
            f(cal.pcie_bw().gb_per_sec()),
            f(zero.total.as_millis_f64()),
            f(red.total.as_millis_f64()),
            f(s),
        ]);
        out.push((name, s));
    }
    println!("\nTECO's advantage shrinks as raw bandwidth grows but does not vanish:");
    println!("the update protocol converts *any* exposed bulk copy into an overlapped");
    println!("stream, and DBA halves whatever remains.");
    dump_json("ablation_pcie_gen", &out);
}
