//! Collective sweep: pool-staged inter-host all-reduce vs the NCCL-style
//! point-to-point ring, H ∈ {2, 4, 8} × gradient ∈ {1, 16, 64} MiB, plus
//! the fabric anchor rows (H ∈ {1, 2, 4, 8} training fabrics over the
//! shared pool).
//!
//! The pool path stages each host's gradient once and reads the peers'
//! regions directly from the shared pool — (2H−1)·G host↔pool port bytes
//! with the reduced-shard writeback overlapped on the full-duplex port —
//! while the ring moves 4(H−1)·G endpoint-port bytes over 2(H−1)
//! bulk-synchronous hops. Both reduce with the same wrapping-add kernel,
//! so the sweep asserts bit-identical results cell by cell.
//!
//! The row computation lives in [`teco_bench::sweeps`], where the
//! determinism test matrix pins serial against parallel execution.
//! Everything is seeded: running this binary twice produces
//! byte-identical `bench_results/collective_sweep.json` (the CI
//! collective-smoke job diffs exactly that). The binary is also the
//! acceptance gate: it exits nonzero if any cell fails to beat the ring
//! on time *or* bytes, if any cell's bits diverge, or if any fabric row
//! perturbs host 0 away from the standalone single-host path.

use teco_bench::sweeps::{collective_divergences, collective_sweep};
use teco_bench::{dump_json, f, header, row};

fn main() {
    let out = collective_sweep();

    header("Fabric anchor", "H-host training fabrics over one shared CXL pool");
    row(&[
        "hosts".into(),
        "devices".into(),
        "fabric ms".into(),
        "exchange ms".into(),
        "port MB".into(),
        "fan-in MB".into(),
        "host0 ok".into(),
    ]);
    for r in &out.fabric {
        row(&[
            r.hosts.to_string(),
            r.devices_per_host.to_string(),
            f(r.fabric_time_ns as f64 / 1e6),
            f(r.exchange_ns as f64 / 1e6),
            f(r.pool_port_bytes as f64 / 1e6),
            f(r.fanin_saved_bytes as f64 / 1e6),
            if r.host0_matches_cluster { "yes".into() } else { "NO".into() },
        ]);
    }

    header("Collective sweep", "pool-staged all-reduce vs point-to-point ring");
    row(&[
        "hosts".into(),
        "grad MB".into(),
        "pool ms".into(),
        "ring ms".into(),
        "speedup".into(),
        "pool MB".into(),
        "ring MB".into(),
        "byte ratio".into(),
        "match".into(),
    ]);
    for r in &out.collective {
        row(&[
            r.hosts.to_string(),
            (r.grad_bytes >> 20).to_string(),
            f(r.pool_ns as f64 / 1e6),
            f(r.ring_ns as f64 / 1e6),
            f(r.speedup),
            f(r.pool_port_bytes as f64 / 1e6),
            f(r.ring_link_bytes as f64 / 1e6),
            f(r.byte_ratio),
            if r.results_match { "yes".into() } else { "NO".into() },
        ]);
    }

    let bad = collective_divergences(&out);
    if bad.is_empty() {
        println!("\nevery cell: pool beat the ring on completion time and moved bytes,");
        println!("both paths reduced to bit-identical gradients, and host 0 of every");
        println!("fabric stayed byte-identical to the standalone single-host path.");
    } else {
        println!("\nGATE FAILURES: {}", bad.join("; "));
    }
    dump_json("collective_sweep", &out);
    if !bad.is_empty() {
        std::process::exit(1);
    }
}
