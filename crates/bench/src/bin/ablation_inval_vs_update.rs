//! §IV-A2 ablation: cost of stock invalidation-based MESI vs. TECO's
//! update protocol (paper: +56.6% average, up to +99.7%).

use teco_bench::{dump_json, header, pct, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let rows = experiments::ablation_inval_vs_update(&cal);
    header("Ablation", "Invalidation protocol vs update protocol (step-time increase)");
    row(&["model".into(), "penalty".into()]);
    for r in &rows {
        row(&[r.model.clone(), pct(r.penalty_pct)]);
    }
    let avg = rows.iter().map(|r| r.penalty_pct).sum::<f64>() / rows.len() as f64;
    println!("\naverage: +{avg:.1}% (paper: +56.6% average, up to +99.7%)");
    dump_json("ablation_inval_vs_update", &rows);
}
