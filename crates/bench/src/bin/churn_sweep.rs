//! Churn sweep: fault domains under device loss and pool-media RAS,
//! N ∈ {2, 4} × kill mode ∈ {none, lose, readmit} × media-fault rate
//! ∈ {0, 1 per tick}.
//!
//! Each cell runs the fixed churn workload — a device killed mid-run is
//! declared down by the fence-deadline watchdog, its host account is
//! quarantined, its gradient shard reroutes through the survivors
//! round-robin (the wrapping-sum reduce makes the pool bytes identical
//! to the never-failed run's), and in readmit mode it is rebuilt from
//! nothing but the pooled optimizer state. Persistent media faults are
//! patrol-scrubbed, retired to spares, and rebuilt from the clean pooled
//! copy before any poisoned byte reaches a parameter.
//!
//! The row computation lives in [`teco_bench::sweeps`]. Everything is
//! seeded and formulaic: running this binary twice produces
//! byte-identical `bench_results/churn_sweep.json` (the CI chaos-smoke
//! job diffs exactly that). There is no paper baseline — the paper
//! evaluates a single fault-free accelerator; this sweep is the model's
//! prediction for the elastic-recovery regime (see EXPERIMENTS.md).

use teco_bench::sweeps::churn_rows;
use teco_bench::{dump_json, f, header, row};

fn main() {
    header("Churn sweep", "device loss × media faults × N over a shared CXL pool");
    row(&[
        "devices".into(),
        "kill".into(),
        "media rate".into(),
        "down".into(),
        "readmits".into(),
        "rerouted".into(),
        "faults".into(),
        "retired".into(),
        "rebuilds".into(),
        "cluster ms".into(),
        "converged".into(),
    ]);
    let out = churn_rows();
    for r in &out {
        row(&[
            r.devices.to_string(),
            r.kill_mode.clone(),
            f(r.media_rate),
            r.down_events.to_string(),
            r.readmits.to_string(),
            r.redistributed_lines.to_string(),
            r.ras_faults_injected.to_string(),
            r.ras_lines_retired.to_string(),
            r.ras_rebuilds.to_string(),
            f(r.cluster_time_ns as f64 / 1e6),
            if r.converged { "yes".into() } else { "NO".into() },
        ]);
    }
    let diverged: Vec<String> = out
        .iter()
        .filter(|r| !r.converged)
        .map(|r| format!("N={} kill={} rate={}", r.devices, r.kill_mode, r.media_rate))
        .collect();
    if diverged.is_empty() {
        println!("\nevery cell converged: the pool and every live replica ended");
        println!("byte-identical to its never-failed, fault-free baseline.");
    } else {
        println!("\nDIVERGED cells: {}", diverged.join("; "));
    }
    dump_json("churn_sweep", &out);
    if !diverged.is_empty() {
        std::process::exit(1);
    }
}
