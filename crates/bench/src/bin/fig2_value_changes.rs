//! Fig. 2: distribution of value-changed bytes in parameters (a) and
//! gradients (b) across consecutive training steps, measured on a *real*
//! fine-tuning run of the small LM.

use teco_bench::{dump_json, header, pct, row};
use teco_offload::convergence::{run, ConvergenceConfig, Task};

fn main() {
    // Fine-tuning regime: converge first, then profile *consecutive*
    // steps late in training under a decayed learning rate — the setting
    // of §III (a pre-trained Bert fine-tuned to convergence).
    let cfg = ConvergenceConfig {
        task: Task::LanguageModel,
        steps: 600,
        profile_every: 1,
        profile_after: 450,
        lr: 2e-3,
        lr_end: Some(3e-6),
        ..Default::default()
    };
    let r = run(&cfg);
    header("Fig 2(a)", "Value-changed bytes in PARAMETERS across consecutive steps");
    row(&[
        "step".into(),
        "last byte".into(),
        "last 2 bytes".into(),
        "other".into(),
        "unchanged".into(),
    ]);
    for (i, s) in r.param_profile.iter().enumerate().step_by(10) {
        let ch = s.changed().max(1) as f64;
        row(&[
            (451 + i).to_string(),
            pct(100.0 * s.last_byte as f64 / ch),
            pct(100.0 * s.last_two as f64 / ch),
            pct(100.0 * s.other as f64 / ch),
            pct(100.0 * s.frac_unchanged()),
        ]);
    }
    let mut agg = teco_dl::ByteChangeStats::default();
    for s in &r.param_profile {
        agg.merge(s);
    }
    let last = r.param_profile.last().unwrap();
    println!(
        "\nparams (aggregate over the profiled window): {:.1}% of changed words fit the",
        100.0 * agg.frac_low_two_of_changed()
    );
    println!(
        "low TWO bytes (the dirty_bytes=2 target); {:.1}% near convergence — the paper's",
        100.0 * last.frac_low_two_of_changed()
    );
    println!("~80% (case 1) + case 2 union. The trend matches §III: 'the first two cases");
    println!("become more common when the training is close to converge'.");
    println!(
        "split note: our case-1 ({:.1}%) vs case-2 share differs from the paper's because",
        100.0 * agg.frac_last_byte_of_changed()
    );
    println!(
        "the proxy model's parameter magnitudes are smaller than Bert's (see EXPERIMENTS.md)."
    );

    header("Fig 2(b)", "Value-changed bytes in GRADIENTS across consecutive steps");
    let mut gagg = teco_dl::ByteChangeStats::default();
    for s in &r.grad_profile {
        gagg.merge(s);
    }
    println!(
        "grads: only {:.1}% of changed words fit the low two bytes — 'all bytes in gradients frequently change' → DBA not applied to gradients.",
        100.0 * gagg.frac_low_two_of_changed()
    );
    dump_json("fig2_value_changes", &(&r.param_profile, &r.grad_profile));
}
