//! §VIII-C: communication volume (DBA halves parameter bytes, never
//! touches gradients) and exposed-communication-overhead reduction
//! (paper: 93.7% on average, up to 100%).

use teco_bench::{dump_json, header, pct, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let rows = experiments::volume_summary(&cal);
    header("§VIII-C", "Communication volume & exposed-overhead reduction");
    row(&[
        "model".into(),
        "batch".into(),
        "param MB (zero)".into(),
        "param MB (red)".into(),
        "grad MB".into(),
        "overhead cut".into(),
    ]);
    for r in &rows {
        row(&[
            r.model.clone(),
            r.batch.to_string(),
            format!("{:.0}", r.param_bytes_zero as f64 / 1e6),
            format!("{:.0}", r.param_bytes_red as f64 / 1e6),
            format!("{:.0}", r.grad_bytes as f64 / 1e6),
            pct(r.overhead_reduction_pct),
        ]);
    }
    let avg = rows.iter().map(|r| r.overhead_reduction_pct).sum::<f64>() / rows.len() as f64;
    println!("\naverage exposed-overhead reduction: {avg:.1}% (paper: 93.7% avg, up to 100%)");
    dump_json("volume_and_overhead", &rows);
}
