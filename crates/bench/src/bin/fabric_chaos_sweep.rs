//! Fabric chaos sweep: host loss and staging-media faults
//! mid-all-reduce, H ∈ {2, 4} × kill phase ∈ {none, reduce-scatter,
//! all-gather} × media-fault rate ∈ {0, 1 per tick}.
//!
//! Each cell runs the fixed chaos workload — a host killed at a chunk
//! boundary of the fused all-reduce is declared lost by the collective
//! deadline watchdog, its arbiter account is quarantined, the survivors
//! regroup H→H−1 and re-run the step's collective bit-identically to a
//! never-failed H−1 fabric, and one full step later the host is
//! hot-readmitted from the pooled parameter state (its device replicas
//! end byte-identical to hosts that never died). Staging-media faults
//! are patrol-scrubbed and caught on access; no poisoned byte ever
//! reaches a reduction.
//!
//! The row computation lives in [`teco_bench::sweeps`]. Everything is
//! seeded and formulaic: running this binary twice produces
//! byte-identical `bench_results/fabric_chaos_sweep.json` (the CI
//! fabric-chaos-smoke job diffs exactly that). There is no paper
//! baseline — the paper evaluates a single fault-free host; this sweep
//! is the model's prediction for the degraded-collective regime (see
//! EXPERIMENTS.md).

use teco_bench::sweeps::{chaos_divergences, chaos_rows};
use teco_bench::{dump_json, f, header, row};

fn main() {
    header("Fabric chaos sweep", "host loss × media faults × H over the pool-staged collective");
    row(&[
        "hosts".into(),
        "kill".into(),
        "media rate".into(),
        "detect".into(),
        "regroup".into(),
        "readmit".into(),
        "retries".into(),
        "media det".into(),
        "ring fb".into(),
        "poisoned".into(),
        "fabric ms".into(),
        "converged".into(),
    ]);
    let out = chaos_rows();
    for r in &out {
        row(&[
            r.hosts.to_string(),
            r.kill_phase.clone(),
            f(r.media_rate),
            r.detections.to_string(),
            r.regroups.to_string(),
            r.readmissions.to_string(),
            r.chunk_retries.to_string(),
            r.media_detections.to_string(),
            r.ring_fallbacks.to_string(),
            r.poisoned_admitted.to_string(),
            f(r.fabric_time_ns as f64 / 1e6),
            if r.converged { "yes".into() } else { "NO".into() },
        ]);
    }
    let diverged = chaos_divergences(&out);
    if diverged.is_empty() {
        println!("\nevery cell converged: degraded and readmitted fabrics ended");
        println!("byte-identical to their never-failed goldens, zero poisoned bytes.");
    } else {
        println!("\nDIVERGED cells: {}", diverged.join("; "));
    }
    dump_json("fabric_chaos_sweep", &out);
    if !diverged.is_empty() {
        std::process::exit(1);
    }
}
