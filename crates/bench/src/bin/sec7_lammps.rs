//! §VII generality: TECO applied to the Lennard-Jones melt (LAMMPS
//! substitute). Paper: transfers 27% of app time; TECO +21.5%; volume
//! −17%; CXL:DBA contribution ≈ 78:22. Also validates, on the *real*
//! trajectory, that per-step position changes fit DBA's low-two-bytes.

use teco_bench::{dump_json, header, pct, row};
use teco_md::{position_dba_applicability, sec7_experiment, LjSystem, MdTiming};
use teco_sim::SimRng;

fn main() {
    let t = MdTiming::paper();
    let r = sec7_experiment(&t, 32_000);
    header("§VII", "TECO on the 3D Lennard-Jones melt (32k atoms)");
    row(&["metric".into(), "measured".into(), "paper".into()]);
    row(&["transfer share".into(), pct(r.baseline_transfer_pct), pct(27.0)]);
    row(&["improvement".into(), pct(r.improvement_pct), pct(21.5)]);
    row(&["volume cut (DBA)".into(), pct(r.volume_reduction_pct), pct(17.0)]);
    row(&["CXL contribution".into(), pct(r.cxl_contribution_pct), pct(78.0)]);
    row(&["DBA contribution".into(), pct(r.dba_contribution_pct), pct(22.0)]);

    // Real-trajectory DBA applicability.
    let mut rng = SimRng::seed_from_u64(3);
    let mut sys = LjSystem::fcc_melt(4, 0.8442, 1.44, 0.001, &mut rng);
    for _ in 0..30 {
        sys.step(); // pass the violent initial melt
    }
    let frac = position_dba_applicability(&mut sys, 20);
    println!(
        "\nmeasured on the live trajectory ({} atoms): {:.1}% of per-step position\nword-changes fit in the low two bytes → positions are DBA-friendly, forces are not.",
        sys.n(),
        100.0 * frac
    );
    dump_json("sec7_lammps", &r);
}
