//! Design ablation: the `dirty_bytes` setting (§V-A fixes it at 2 for DL).
//! Sweeps 1–4 bytes, measuring both sides: the step-time speedup from the
//! smaller payload and the accuracy cost of the coarser truncation, on
//! real training.

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_offload::convergence::{run, ConvergenceConfig, DbaSchedule};
use teco_offload::{simulate_step, simulate_teco_dba, sweep, Calibration, System};

fn main() {
    let cal = Calibration::paper();
    let t5 = ModelSpec::t5_large();
    let zero = simulate_step(&cal, &t5, 4, System::ZeroOffload);

    header("Ablation", "dirty_bytes sweep (T5-large timing + LM-proxy accuracy)");
    row(&["dirty".into(), "payload".into(), "speedup".into(), "perplexity".into()]);
    let steps = 300u64;
    let base = run(&ConvergenceConfig { steps, pretrain_steps: 100, ..Default::default() });
    // Each dirty-bytes setting is an independent (timing, convergence) run;
    // fan them across cores, results back in 1..=4 order.
    let settings: Vec<u8> = (1..=4).collect();
    let out = sweep(&settings, |_, &n| {
        let r = simulate_teco_dba(&cal, &t5, 4, n);
        let speedup = r.speedup_over(&zero);
        let conv = run(&ConvergenceConfig {
            steps,
            pretrain_steps: 100,
            dba: Some(DbaSchedule { act_aft_steps: 100, dirty_bytes: n }),
            ..Default::default()
        });
        (n, speedup, conv.final_metric)
    });
    for &(n, speedup, metric) in &out {
        row(&[n.to_string(), format!("{} B/line", 16 * n as u32), f(speedup), f(metric as f64)]);
    }
    println!("\nno-DBA perplexity: {:.2}", base.final_metric);
    println!("dirty_bytes=2 is the knee: near-max speedup at near-baseline accuracy,");
    println!("matching §V-A's choice ('the parameter-value change happens mostly in");
    println!("the least significant two bytes').");
    dump_json("ablation_dirty_bytes", &out);
}
