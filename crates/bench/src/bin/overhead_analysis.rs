//! §VIII-D: Aggregator/Disaggregator hardware overhead and the
//! Disaggregator's extra DRAM read. The ns-scale logic latency amortizes
//! behind the ~4 ns/line link; the read-modify-write traffic inflates DRAM
//! cycles (paper: 2.48× sequential, 1.9× shuffled) yet stays invisible
//! because GDDR bandwidth dwarfs PCIe.

use teco_bench::{dump_json, f, header, row};
use teco_cxl::CxlConfig;
use teco_mem::dram::{read_modify_write_trace, write_only_trace, Dram, DramConfig};
use teco_mem::Addr;
use teco_sim::SimRng;

fn main() {
    let cfg = CxlConfig::paper();
    header("§VIII-D", "DBA hardware overhead");
    let line_time = cfg.cxl_bandwidth().transfer_time(64);
    println!("CXL line time: {line_time} (paper: ~4 ns/line)");
    println!("Aggregator latency: {} (synthesized 1.28 ns, modeled 1 ns)", cfg.aggregator_latency);
    println!("Disaggregator latency: {} (synthesized 1.126 ns)", cfg.disaggregator_latency);
    println!("→ pipelined behind the link: per-line overhead amortized to ~0.\n");

    let n = 65_536u64;
    let seq: Vec<Addr> = (0..n).map(|i| Addr(i * 64)).collect();
    let mut rng = SimRng::seed_from_u64(5);
    let mut shuf = seq.clone();
    rng.shuffle(&mut shuf);
    let gddr = DramConfig::gddr5();

    row(&[
        "access order".into(),
        "W-only cyc".into(),
        "R+W cyc".into(),
        "inflation".into(),
        "paper".into(),
    ]);
    let mut results = Vec::new();
    for (label, addrs, paper) in [("sequential", &seq, 2.48), ("shuffled", &shuf, 1.9)] {
        let w = Dram::replay(gddr, write_only_trace(addrs));
        let rmw = Dram::replay(gddr, read_modify_write_trace(addrs));
        let infl = rmw.cycles as f64 / w.cycles as f64;
        row(&[label.into(), w.cycles.to_string(), rmw.cycles.to_string(), f(infl), f(paper)]);
        results.push((label, infl));
    }
    println!("\nGDDR5 total ~900 GB/s vs PCIe 3.0 16 GB/s: the extra read stream uses");
    println!("<4% of DRAM bandwidth → no perceivable end-to-end overhead (paper's conclusion).");
    dump_json("overhead_analysis", &results);
}
