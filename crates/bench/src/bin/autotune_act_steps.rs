//! §V-A extension: Bayesian optimization of `act_aft_steps` ("can be tuned
//! using the Bayesian optimization"), implemented with a real GP+EI stack.
//! The objective balances the Fig. 13 trade-off: final perplexity plus a
//! time penalty proportional to the un-accelerated prefix of training.

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_offload::convergence::{run, ConvergenceConfig, DbaSchedule};
use teco_offload::{autotune, simulate_step, sweep, Calibration, System};

fn main() {
    let steps = 400u64;
    let cal = Calibration::paper();
    let gpt2 = ModelSpec::gpt2();
    let t_cxl = simulate_step(&cal, &gpt2, 4, System::TecoCxl).total.as_secs_f64();
    let t_red = simulate_step(&cal, &gpt2, 4, System::TecoReduction).total.as_secs_f64();

    // Objective: perplexity + λ · normalized training time.
    let lambda = 4.0;
    let domain: Vec<f64> = (0..=8).map(|i| (i * 50) as f64).collect();
    // The convergence run is the expensive part and BO only ever samples
    // domain points, so pre-evaluate the whole domain in parallel and let
    // the (sequential, deterministic) BO loop consult the memo — its
    // decisions and the recorded evaluations are unchanged.
    let memo = sweep(&domain, |_, &x| {
        let act = x.round() as u64;
        let r = run(&ConvergenceConfig {
            steps,
            pretrain_steps: 100,
            dba: Some(DbaSchedule { act_aft_steps: act, dirty_bytes: 2 }),
            ..Default::default()
        });
        (act, r.final_metric)
    });
    let mut evals = Vec::new();
    let mut objective = |x: f64| -> f64 {
        let act = x.round() as u64;
        let metric = memo
            .iter()
            .find(|(a, _)| *a == act)
            .map(|&(_, m)| m)
            .expect("BO samples only domain points");
        let time = act as f64 * t_cxl + (steps - act.min(steps)) as f64 * t_red;
        let norm_time = time / (steps as f64 * t_red);
        let score = metric as f64 + lambda * norm_time;
        evals.push((act, metric, norm_time, score));
        score
    };

    let result = autotune::minimize(&mut objective, &domain, 3, 5, 2024);

    header("Autotune", "Bayesian optimization of act_aft_steps (GPT-2 proxy)");
    row(&["act_after".into(), "perplexity".into(), "norm time".into(), "objective".into()]);
    evals.sort_by_key(|e| e.0);
    for (act, ppl, nt, score) in &evals {
        row(&[act.to_string(), f(*ppl as f64), f(*nt), f(*score)]);
    }
    println!(
        "\nBO chose act_aft_steps = {} (objective {:.3}) in {} evaluations of a {}-point domain.",
        result.best_x as u64,
        result.best_y,
        result.history.len(),
        domain.len()
    );
    println!("paper (§V-A): the default 500 'strikes a balance'; BO finds the knee automatically.");
    dump_json("autotune_act_steps", &evals);
}
