//! Perf regression smoke gate.
//!
//! Compares the Criterion medians of the current run
//! (`bench_results/criterion_medians.json`, written by `cargo bench`)
//! against the committed PR-3 baseline (`bench_results/BENCH_pr3.json`)
//! and fails on a >25 % regression of any tracked key. It also re-checks
//! the arena speedup claims *within the current run* — dense vs the
//! hash-map reference measured on the same machine moments apart — so the
//! ≥2× bound never depends on cross-machine comparisons.
//!
//! Usage:
//!   perf_smoke            # gate: compare current medians vs BENCH_pr3.json
//!   perf_smoke --record   # (re)write BENCH_pr3.json from current medians

use serde::Value;

const MEDIANS: &str = "bench_results/criterion_medians.json";
const BASELINE: &str = "bench_results/BENCH_pr3.json";

/// Keys gated against the committed baseline (median_ns, lower is better).
const TRACKED: &[&str] = &[
    "coherence_event/dense_update",
    "coherence_event/dense_invalidation",
    "giant_cache_merge/dense_bulk_dba",
    "step_throughput/push_fence_dba",
    "step_throughput/push_fence_full",
];

/// (fast, slow, minimum required slow/fast ratio) asserted on the current
/// run's medians.
const SPEEDUPS: &[(&str, &str, f64)] = &[
    ("coherence_event/dense_update", "coherence_event/hashref_update", 2.0),
    ("coherence_event/dense_invalidation", "coherence_event/hashref_invalidation", 2.0),
    ("giant_cache_merge/dense_bulk_dba", "giant_cache_merge/hashref_bulk_dba", 2.0),
];

/// Regression threshold: fail when current > baseline × 1.25.
const MAX_REGRESSION: f64 = 1.25;

fn median_ns(doc: &Value, key: &str) -> Option<f64> {
    doc.get(key)?.get("median_ns")?.as_f64()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} — run `cargo bench` first"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn record(current: &Value) {
    let mut fields = Vec::new();
    let mut keys: Vec<&str> = TRACKED.to_vec();
    for &(fast, slow, _) in SPEEDUPS {
        for k in [fast, slow] {
            if !keys.contains(&k) {
                keys.push(k);
            }
        }
    }
    for key in keys {
        let ns = median_ns(current, key)
            .unwrap_or_else(|| panic!("{MEDIANS} is missing {key} — run the benches first"));
        fields.push((
            key.to_string(),
            Value::Object(vec![("median_ns".to_string(), Value::Float(ns))]),
        ));
    }
    let doc = Value::Object(fields);
    std::fs::write(BASELINE, serde_json::to_string_pretty(&doc).expect("serialize baseline"))
        .unwrap_or_else(|e| panic!("cannot write {BASELINE}: {e}"));
    println!("recorded {} keys to {BASELINE}", TRACKED.len());
}

fn main() {
    let current = load(MEDIANS);
    if std::env::args().any(|a| a == "--record") {
        record(&current);
        return;
    }

    let baseline = load(BASELINE);
    let mut failures = Vec::new();

    for &key in TRACKED {
        let now = median_ns(&current, key);
        let then = median_ns(&baseline, key);
        match (now, then) {
            (Some(now), Some(then)) => {
                let ratio = now / then;
                let verdict = if ratio > MAX_REGRESSION { "REGRESSED" } else { "ok" };
                println!("{key}: {now:.0} ns vs baseline {then:.0} ns ({ratio:.2}x) {verdict}");
                if ratio > MAX_REGRESSION {
                    failures.push(format!("{key} regressed {ratio:.2}x (> {MAX_REGRESSION}x)"));
                }
            }
            (None, _) => failures.push(format!("{key} missing from {MEDIANS}")),
            (_, None) => failures.push(format!("{key} missing from {BASELINE}")),
        }
    }

    for &(fast, slow, min_ratio) in SPEEDUPS {
        match (median_ns(&current, fast), median_ns(&current, slow)) {
            (Some(f), Some(s)) => {
                let ratio = s / f;
                let verdict = if ratio < min_ratio { "TOO SLOW" } else { "ok" };
                println!(
                    "{fast} is {ratio:.2}x faster than {slow} (need {min_ratio:.1}x) {verdict}"
                );
                if ratio < min_ratio {
                    failures.push(format!(
                        "{fast} only {ratio:.2}x faster than {slow} (need {min_ratio:.1}x)"
                    ));
                }
            }
            _ => failures.push(format!("{fast} / {slow} missing from {MEDIANS}")),
        }
    }

    if failures.is_empty() {
        println!("perf smoke: all checks passed");
    } else {
        for f in &failures {
            eprintln!("perf smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
