//! Perf regression smoke gate.
//!
//! Compares the Criterion medians of the current run
//! (`bench_results/criterion_medians.json`, written by `cargo bench`)
//! against the committed baselines (`bench_results/BENCH_pr3.json` for
//! the arena rewrites, `bench_results/BENCH_pr6.json` for the datapath
//! kernels) and fails on a >25 % regression of any tracked key. It also
//! re-checks the speedup claims *within the current run* — fast path vs
//! the retained reference measured on the same machine moments apart —
//! so the ≥2× bounds never depend on cross-machine comparisons. Finally
//! it holds the bulk aggregator to the modeled link bandwidth: the wire
//! feeding a PCIe-3.0×16-class CXL link is ~15 GB/s, and a datapath that
//! can't outrun the link it feeds is the bottleneck the datapath PR
//! exists to remove.
//!
//! Usage:
//!   perf_smoke               # gate current medians vs both baselines
//!   perf_smoke --record      # (re)write BENCH_pr3.json from current medians
//!   perf_smoke --record-pr6  # (re)write BENCH_pr6.json from current medians

use serde::Value;
use teco_bench::sweeps::run_placement_workload;
use teco_core::{
    run_fabric_chaos, FabricChaosWorkload, HostKillSpec, PlacementPolicy, TecoConfig, TieredPolicy,
};
use teco_cxl::{ring_all_reduce, CollectiveConfig, CollectivePhase, PoolCollective};
use teco_dl::ModelSpec;
use teco_sim::SimTime;

const MEDIANS: &str = "bench_results/criterion_medians.json";
const BASELINE: &str = "bench_results/BENCH_pr3.json";
const BASELINE_PR6: &str = "bench_results/BENCH_pr6.json";

/// Keys gated against the committed PR-3 baseline (median_ns, lower is
/// better).
const TRACKED: &[&str] = &[
    "coherence_event/dense_update",
    "coherence_event/dense_invalidation",
    "giant_cache_merge/dense_bulk_dba",
    "step_throughput/push_fence_dba",
    "step_throughput/push_fence_full",
];

/// Keys gated against the committed PR-6 datapath baseline.
const TRACKED_PR6: &[&str] = &[
    "aggregator_bulk/dirty_bytes_2",
    "disaggregator_bulk/merge_dirty2",
    "datapath/checksummed_kernel_2",
    "datapath_sharded/write_run_w1",
];

/// (fast, slow, minimum required slow/fast ratio) asserted on the current
/// run's medians.
const SPEEDUPS: &[(&str, &str, f64)] = &[
    ("coherence_event/dense_update", "coherence_event/hashref_update", 2.0),
    ("coherence_event/dense_invalidation", "coherence_event/hashref_invalidation", 2.0),
    ("giant_cache_merge/dense_bulk_dba", "giant_cache_merge/hashref_bulk_dba", 2.0),
    // Fused chunk-wise pack+Fletcher vs the pre-fusion scalar pack plus
    // per-byte checksum second pass (both measured this run; measured
    // headroom ~6× and ~5×).
    ("datapath/checksummed_kernel_2", "datapath/checksummed_scalar_2", 2.0),
    ("datapath/checksummed_kernel_3", "datapath/checksummed_scalar_3", 2.0),
];

/// (key, bytes processed per iteration, minimum GB/s) asserted on the
/// current run's medians: `bytes / median_ns` is exactly GB/s.
const BANDWIDTH: &[(&str, u64, f64)] = &[
    // 1024 whole lines through the bulk aggregator at dirty_bytes=2 must
    // saturate the modeled PCIe-3.0×16 link (~15 GB/s).
    ("aggregator_bulk/dirty_bytes_2", 1024 * 64, 15.0),
];

/// Regression threshold: fail when current > baseline × 1.25.
const MAX_REGRESSION: f64 = 1.25;

fn median_ns(doc: &Value, key: &str) -> Option<f64> {
    doc.get(key)?.get("median_ns")?.as_f64()
}

fn load(path: &str) -> Value {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("cannot read {path}: {e} — run `cargo bench` first"));
    serde_json::from_str(&text).unwrap_or_else(|e| panic!("cannot parse {path}: {e}"))
}

fn record(current: &Value, path: &str, tracked: &[&str], extra_pairs: bool) {
    let mut fields = Vec::new();
    let mut keys: Vec<&str> = tracked.to_vec();
    if extra_pairs {
        for &(fast, slow, _) in SPEEDUPS {
            for k in [fast, slow] {
                if !keys.contains(&k) {
                    keys.push(k);
                }
            }
        }
    }
    for key in keys {
        let ns = median_ns(current, key)
            .unwrap_or_else(|| panic!("{MEDIANS} is missing {key} — run the benches first"));
        fields.push((
            key.to_string(),
            Value::Object(vec![("median_ns".to_string(), Value::Float(ns))]),
        ));
    }
    let doc = Value::Object(fields);
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("serialize baseline"))
        .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
    println!("recorded {} keys to {path}", tracked.len());
}

/// Gate `tracked` keys of the current run against a committed baseline.
fn gate_regressions(
    current: &Value,
    baseline: &Value,
    baseline_path: &str,
    tracked: &[&str],
    failures: &mut Vec<String>,
) {
    for &key in tracked {
        let now = median_ns(current, key);
        let then = median_ns(baseline, key);
        match (now, then) {
            (Some(now), Some(then)) => {
                let ratio = now / then;
                let verdict = if ratio > MAX_REGRESSION { "REGRESSED" } else { "ok" };
                println!("{key}: {now:.0} ns vs baseline {then:.0} ns ({ratio:.2}x) {verdict}");
                if ratio > MAX_REGRESSION {
                    failures.push(format!("{key} regressed {ratio:.2}x (> {MAX_REGRESSION}x)"));
                }
            }
            (None, _) => failures.push(format!("{key} missing from {MEDIANS}")),
            (_, None) => failures.push(format!("{key} missing from {baseline_path}")),
        }
    }
}

fn main() {
    let current = load(MEDIANS);
    if std::env::args().any(|a| a == "--record") {
        record(&current, BASELINE, TRACKED, true);
        return;
    }
    if std::env::args().any(|a| a == "--record-pr6") {
        record(&current, BASELINE_PR6, TRACKED_PR6, false);
        return;
    }

    let mut failures = Vec::new();
    gate_regressions(&current, &load(BASELINE), BASELINE, TRACKED, &mut failures);
    gate_regressions(&current, &load(BASELINE_PR6), BASELINE_PR6, TRACKED_PR6, &mut failures);

    for &(fast, slow, min_ratio) in SPEEDUPS {
        match (median_ns(&current, fast), median_ns(&current, slow)) {
            (Some(f), Some(s)) => {
                let ratio = s / f;
                let verdict = if ratio < min_ratio { "TOO SLOW" } else { "ok" };
                println!(
                    "{fast} is {ratio:.2}x faster than {slow} (need {min_ratio:.1}x) {verdict}"
                );
                if ratio < min_ratio {
                    failures.push(format!(
                        "{fast} only {ratio:.2}x faster than {slow} (need {min_ratio:.1}x)"
                    ));
                }
            }
            _ => failures.push(format!("{fast} / {slow} missing from {MEDIANS}")),
        }
    }

    for &(key, bytes, min_gbps) in BANDWIDTH {
        match median_ns(&current, key) {
            Some(ns) if ns > 0.0 => {
                let gbps = bytes as f64 / ns;
                let verdict = if gbps < min_gbps { "BELOW LINK RATE" } else { "ok" };
                println!("{key}: {gbps:.2} GB/s (need {min_gbps:.1} GB/s) {verdict}");
                if gbps < min_gbps {
                    failures.push(format!(
                        "{key} sustains only {gbps:.2} GB/s (need {min_gbps:.1} GB/s)"
                    ));
                }
            }
            _ => failures.push(format!("{key} missing from {MEDIANS}")),
        }
    }

    // Collective gate: at H >= 4 the pool-staged all-reduce must move
    // fewer bytes than the ring and finish sooner. A pure model check
    // (no Criterion medians involved), so it holds on any machine.
    for hosts in [4usize, 8] {
        let cfg = CollectiveConfig::for_hosts(hosts);
        let ready = vec![SimTime::ZERO; hosts];
        let mut bufs = vec![vec![0u8; 1 << 20]; hosts];
        let pool = PoolCollective::new(cfg)
            .and_then(|mut p| p.all_reduce(&mut bufs, &ready))
            .expect("pool all-reduce completes");
        let ring = ring_all_reduce(&cfg, &mut bufs, &ready).expect("ring all-reduce completes");
        let byte_verdict = if pool.port_bytes < ring.link_bytes { "ok" } else { "TOO MANY" };
        let time_verdict = if pool.completion < ring.completion { "ok" } else { "TOO SLOW" };
        println!(
            "collective H={hosts}: pool {} vs ring {} link-bytes {byte_verdict}, \
             pool {} vs ring {} ns {time_verdict}",
            pool.port_bytes,
            ring.link_bytes,
            pool.completion.as_ns(),
            ring.completion.as_ns()
        );
        if pool.port_bytes >= ring.link_bytes {
            failures.push(format!(
                "collective H={hosts}: pool moved {} bytes, ring {}",
                pool.port_bytes, ring.link_bytes
            ));
        }
        if pool.completion >= ring.completion {
            failures.push(format!(
                "collective H={hosts}: pool {} ns not faster than ring {} ns",
                pool.completion.as_ns(),
                ring.completion.as_ns()
            ));
        }
    }

    // Chaos gate: a host killed mid reduce-scatter must be detected by
    // the watchdog, the survivors must regroup, and the degraded fabric
    // must end with the never-failed golden's parameters and zero
    // poisoned bytes. A pure model check, like the collective gate.
    {
        let mut w = FabricChaosWorkload::small(4, 2, 42);
        w.fabric.base.steps = 4;
        w.fabric.collective.chunk_bytes = 64;
        let golden = run_fabric_chaos(&w).expect("golden chaos run completes").outcome;
        let chaos = run_fabric_chaos(
            &w.clone()
                .with_kill(HostKillSpec {
                    host: 3,
                    step: 1,
                    phase: CollectivePhase::ReduceScatter,
                    chunk: 1,
                })
                .with_readmit_after(1),
        )
        .expect("chaos run completes")
        .outcome;
        let detect_verdict = if chaos.detections.len() == 1 { "ok" } else { "MISSED" };
        let param_verdict =
            if chaos.param_checksum == golden.param_checksum { "ok" } else { "DIVERGED" };
        println!(
            "chaos H=4: {} detections, {} regroups, {} readmissions {detect_verdict}, \
             {} poisoned bytes, params vs golden {param_verdict}",
            chaos.detections.len(),
            chaos.regroups,
            chaos.readmissions,
            chaos.poisoned_admitted
        );
        if chaos.detections.len() != 1 || chaos.regroups != 1 || chaos.readmissions != 1 {
            failures.push(format!(
                "chaos H=4: detections={} regroups={} readmissions={} (want 1 each)",
                chaos.detections.len(),
                chaos.regroups,
                chaos.readmissions
            ));
        }
        if chaos.poisoned_admitted > 0 {
            failures
                .push(format!("chaos H=4: {} poisoned bytes admitted", chaos.poisoned_admitted));
        }
        if chaos.param_checksum != golden.param_checksum {
            failures.push("chaos H=4: final parameters diverged from the golden".to_string());
        }
    }

    // Placement gate: the default tiered policy must not be slower than
    // the single-tier baseline on the fixed placement workload (spilling
    // write-mostly optimizer moments to plain host DRAM rides the faster
    // pool link; it must never cost step time). A pure model check, like
    // the collective gate.
    {
        let spec = ModelSpec::gpt2();
        let (_, single) = run_placement_workload(&spec, TecoConfig::default());
        let (_, tiered) = run_placement_workload(
            &spec,
            TecoConfig::default().with_placement(PlacementPolicy::Tiered(TieredPolicy::default())),
        );
        let verdict = if tiered <= single { "ok" } else { "TOO SLOW" };
        println!(
            "placement GPT-2: tiered default {} ns vs single-tier {} ns {verdict}",
            tiered.as_ns(),
            single.as_ns()
        );
        if tiered > single {
            failures.push(format!(
                "placement: tiered default {} ns slower than single-tier {} ns",
                tiered.as_ns(),
                single.as_ns()
            ));
        }
    }

    if failures.is_empty() {
        println!("perf smoke: all checks passed");
    } else {
        for f in &failures {
            eprintln!("perf smoke FAILURE: {f}");
        }
        std::process::exit(1);
    }
}
