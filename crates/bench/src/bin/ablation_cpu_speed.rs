//! Design ablation: CPU optimizer speed vs DBA's value. TECO hides the
//! parameter stream behind the ADAM sweep; the faster the CPU, the less
//! there is to hide behind — and the more DBA's payload halving matters.
//! (This is the §V motivation seen from the other side: DBA is what keeps
//! TECO effective as CPU optimizers get faster.)

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_offload::{simulate_step, Calibration, System};
use teco_sim::Bandwidth;

fn main() {
    let bert = ModelSpec::bert_large();
    header("Ablation", "CPU optimizer speed vs DBA contribution (Bert-large, batch 4)");
    row(&[
        "CPU GB/s".into(),
        "adam ms".into(),
        "CXL exposed".into(),
        "Red exposed".into(),
        "DBA gain".into(),
    ]);
    let mut out = Vec::new();
    for gbps in [60.0f64, 120.0, 240.0, 480.0, 960.0] {
        let mut cal = Calibration::paper();
        cal.cpu_mem_bw = Bandwidth::from_gb_per_sec(gbps);
        let zero = simulate_step(&cal, &bert, 4, System::ZeroOffload);
        let cxl = simulate_step(&cal, &bert, 4, System::TecoCxl);
        let red = simulate_step(&cal, &bert, 4, System::TecoReduction);
        let dba_gain = 100.0 * (red.speedup_over(&zero) / cxl.speedup_over(&zero) - 1.0);
        row(&[
            f(gbps),
            f(cal.adam_time(&bert).as_millis_f64()),
            f(cxl.breakdown.param_transfer_exposed.as_millis_f64()),
            f(red.breakdown.param_transfer_exposed.as_millis_f64()),
            format!("{dba_gain:.1}%"),
        ]);
        out.push((gbps, dba_gain));
    }
    println!("\nas the CPU sweep accelerates, the update stream loses its overlap window");
    println!("and TECO-CXL's exposure grows — DBA's halved payload becomes the difference");
    println!("between hidden and exposed. The paper's 'up to 21%' DBA gain lives at the");
    println!("fast-CPU end of this curve.");
    dump_json("ablation_cpu_speed", &out);
}
