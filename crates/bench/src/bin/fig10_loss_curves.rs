//! Fig. 10: training-loss curves with and without TECO-Reduction (DBA).
//! The paper shows GPT-2 and ALBERT; we train the LM proxy and the
//! classification proxy.

use teco_bench::{dump_json, header};
use teco_offload::convergence::{run, ConvergenceConfig, DbaSchedule, Task};

fn main() {
    let steps = 400u64;
    for (label, task, lr) in [
        ("GPT-2 proxy (LM)", Task::LanguageModel, 2e-3f32),
        ("Albert proxy (classification)", Task::Classification, 5e-3),
    ] {
        let base = run(&ConvergenceConfig { task, steps, lr, ..Default::default() });
        let teco = run(&ConvergenceConfig {
            task,
            steps,
            lr,
            dba: Some(DbaSchedule { act_aft_steps: steps / 3, dirty_bytes: 2 }),
            ..Default::default()
        });
        header("Fig 10", &format!("Training loss, {label} (every 25th step)"));
        println!("{:>6} {:>12} {:>16}", "step", "original", "TECO-Reduction");
        for i in (0..steps as usize).step_by(25) {
            println!("{:>6} {:>12.4} {:>16.4}", i, base.losses[i], teco.losses[i]);
        }
        println!(
            "final {}: original {:.3} vs TECO-Reduction {:.3}",
            base.metric_name, base.final_metric, teco.final_metric
        );
        dump_json(
            &format!("fig10_loss_{}", if task == Task::LanguageModel { "lm" } else { "cls" }),
            &(&base.losses, &teco.losses),
        );
    }
    println!("\npaper: 'the training loss curves show the similar trend and we use the");
    println!("same number of steps to reach convergence. The impact on the convergence is minor.'");
}
