//! Extended baseline comparison: the §I/§II software alternatives —
//! layer-wise prefetching (SwapAdvisor/Sentinel class) and ZeRO-Offload's
//! own DPU — against TECO, across batch sizes.

use teco_bench::{dump_json, f, header, row};
use teco_dl::ModelSpec;
use teco_offload::{
    dpu_hiding_fraction, simulate_prefetch_step, simulate_step, simulate_zero_offload_dpu,
    Calibration, System,
};

fn main() {
    let cal = Calibration::paper();
    let bert = ModelSpec::bert_large();
    header("Baselines", "Step time (ms), Bert-large — software vs hardware hiding");
    row(&[
        "batch".into(),
        "ZeRO".into(),
        "+DPU".into(),
        "prefetch".into(),
        "TECO-CXL".into(),
        "TECO-Red".into(),
    ]);
    let mut out = Vec::new();
    for batch in [4u32, 8, 16, 20] {
        let zero = simulate_step(&cal, &bert, batch, System::ZeroOffload);
        let dpu = simulate_zero_offload_dpu(&cal, &bert, batch);
        let pre = simulate_prefetch_step(&cal, &bert, batch);
        let cxl = simulate_step(&cal, &bert, batch, System::TecoCxl);
        let red = simulate_step(&cal, &bert, batch, System::TecoReduction);
        row(&[
            batch.to_string(),
            f(zero.total.as_millis_f64()),
            f(dpu.total.as_millis_f64()),
            f(pre.total.as_millis_f64()),
            f(cxl.total.as_millis_f64()),
            f(red.total.as_millis_f64()),
        ]);
        out.push((
            batch,
            zero.total.as_millis_f64(),
            dpu.total.as_millis_f64(),
            pre.total.as_millis_f64(),
            red.total.as_millis_f64(),
        ));
    }
    println!(
        "\nDPU hides {:.0}% of the parameter transfer at batch 4 but {:.0}% at batch 20",
        100.0 * dpu_hiding_fraction(&cal, &bert, 4),
        100.0 * dpu_hiding_fraction(&cal, &bert, 20)
    );
    println!("(§II-A: 'requires significantly large batch sizes'); prefetching is bounded");
    println!("by per-layer transfer:compute ratios; TECO needs neither large batches nor");
    println!("convergence-affecting staleness.");
    dump_json("baselines_comparison", &out);
}
