//! Scaling sweep: N accelerators data-parallel over a shared CXL pool,
//! N ∈ {1, 2, 4, 8} × per-device batch ∈ {4, 8, 16}.
//!
//! Each cell runs the fixed-seed cluster workload — per step: per-device
//! gradient shards flush and fence, the shards reduce into the pooled CPU
//! optimizer through the round-robin host-budget arbiter, and the updated
//! parameters broadcast back through update-mode coherence (one host read
//! fanned out to every giant cache). Speedup counts shards processed per
//! unit time versus the cell's own one-device baseline; efficiency decay
//! is host-DRAM contention, which starts once aggregate link bandwidth
//! (N × 15.088 GB/s) exceeds the 38.4 GB/s pool budget.
//!
//! The row computation lives in [`teco_bench::sweeps`], where the
//! determinism test matrix pins serial against parallel execution.
//! Everything is seeded: running this binary twice produces byte-identical
//! `bench_results/scaling_sweep.json` (the CI scaling-smoke job diffs
//! exactly that). There is no paper baseline for these numbers — the paper
//! evaluates one accelerator per coherence domain; this sweep is the
//! model's prediction for the multi-device regime (see EXPERIMENTS.md).

use teco_bench::sweeps::scaling_rows;
use teco_bench::{dump_json, f, header, pct, row};

fn main() {
    header("Scaling sweep", "N devices over a shared CXL pool × batch size");
    row(&[
        "devices".into(),
        "batch".into(),
        "cluster ms".into(),
        "speedup".into(),
        "efficiency".into(),
        "host wait ms".into(),
        "saved MB".into(),
    ]);
    let out = scaling_rows();
    for r in &out {
        row(&[
            r.devices.to_string(),
            r.batch.to_string(),
            f(r.cluster_time_ns as f64 / 1e6),
            f(r.speedup_vs_one),
            pct(r.efficiency_pct),
            f(r.host_wait_ns as f64 / 1e6),
            f(r.fanout_saved_bytes as f64 / 1e6),
        ]);
    }
    println!("\nspeedup is throughput (shards/time) versus the one-device run at the");
    println!("same batch; efficiency loss is shared host-DRAM contention. Fan-out");
    println!("savings are the pool reads the update-mode broadcast avoided (one host");
    println!("read serves every device's giant cache).");
    dump_json("scaling_sweep", &out);
}
