//! Soak the crash/resume path: run fixed-seed workloads uninterrupted,
//! then kill and resume each one at every step boundary of several steps,
//! and assert the resumed run's JSON report is *byte-identical* to the
//! uninterrupted run's. Covers a zero-fault configuration, a heavily
//! faulty one (CRC retries, stalls, DBA checksum errors, poison — so the
//! fault injector's RNG is mid-schedule at the kill), and an audit-enabled
//! one whose final invariant walk must come back clean.
//!
//! Everything is seeded: running this binary twice produces byte-identical
//! `bench_results/soak_resume.json` (the CI soak-resume job diffs exactly
//! that), and the binary exits nonzero on any divergence.

use serde::Serialize;
use teco_bench::{dump_json, header, row};
use teco_core::{
    run_resumed, run_uninterrupted, KillPoint, ResumeWorkload, RunOutcome, StepBoundary,
};
use teco_cxl::FaultConfig;

#[derive(Serialize)]
struct SoakRow {
    workload: String,
    kill_step: u64,
    boundary: String,
    report_bytes: u64,
    snapshot_bytes: u64,
    snapshots_taken: u64,
    restores: u64,
    byte_identical: bool,
    audit_enabled: bool,
    audit_clean: bool,
}

fn boundary_name(b: StepBoundary) -> &'static str {
    match b {
        StepBoundary::AfterGradFence => "after-grad-fence",
        StepBoundary::AfterActivation => "after-activation",
        StepBoundary::AfterParamFence => "after-param-fence",
    }
}

fn zero_fault_workload(seed: u64) -> ResumeWorkload {
    ResumeWorkload::small(seed)
}

fn faulty_workload(seed: u64) -> ResumeWorkload {
    let mut w = ResumeWorkload::small(seed);
    w.cfg = w.cfg.with_fault(FaultConfig {
        crc_error_rate: 0.25,
        stall_rate: 0.1,
        stall_ns: 40,
        dba_checksum_error_rate: 0.2,
        poison_rate: 0.02,
        retry_limit: 64,
        seed: 1234,
        ..FaultConfig::off()
    });
    w
}

fn audited_workload(seed: u64) -> ResumeWorkload {
    let mut w = ResumeWorkload::small(seed);
    w.cfg = w.cfg.clone().with_audit(true);
    w
}

fn soak(
    name: &str,
    w: &ResumeWorkload,
    baseline: &RunOutcome,
    out: &mut Vec<SoakRow>,
    failures: &mut u64,
) {
    let base_json = serde_json::to_string(&baseline.report).expect("serialize baseline report");
    // Kill at every boundary of the first, a middle, and the last step.
    for step in [0, w.steps / 2, w.steps - 1] {
        for boundary in [
            StepBoundary::AfterGradFence,
            StepBoundary::AfterActivation,
            StepBoundary::AfterParamFence,
        ] {
            let kill = KillPoint { step, boundary };
            let resumed = run_resumed(w, kill).expect("resumed run completes");
            let resumed_json =
                serde_json::to_string(&resumed.report).expect("serialize resumed report");
            let identical = resumed_json == base_json;
            let audit_clean = resumed.last_audit_error.is_none();
            if !identical || !audit_clean {
                *failures += 1;
            }
            row(&[
                name.into(),
                step.to_string(),
                boundary_name(boundary).into(),
                resumed.snapshot_bytes.to_string(),
                identical.to_string(),
                audit_clean.to_string(),
            ]);
            out.push(SoakRow {
                workload: name.into(),
                kill_step: step,
                boundary: boundary_name(boundary).into(),
                report_bytes: resumed_json.len() as u64,
                snapshot_bytes: resumed.snapshot_bytes,
                snapshots_taken: resumed.snapshots_taken,
                restores: resumed.restores,
                byte_identical: identical,
                audit_enabled: resumed.report.audit_enabled,
                audit_clean,
            });
        }
    }
}

fn main() {
    header("Soak resume", "kill+resume at 3 boundaries × 3 steps, diff vs uninterrupted");
    row(&[
        "workload".into(),
        "kill step".into(),
        "boundary".into(),
        "snap bytes".into(),
        "identical".into(),
        "audit ok".into(),
    ]);
    let mut out = Vec::new();
    let mut failures = 0u64;
    for (name, w) in [
        ("zero-fault", zero_fault_workload(7)),
        ("faulty", faulty_workload(7)),
        ("audited", audited_workload(7)),
    ] {
        let baseline = run_uninterrupted(&w).expect("uninterrupted run completes");
        assert!(
            baseline.last_audit_error.is_none(),
            "{name}: uninterrupted audit failed: {:?}",
            baseline.last_audit_error
        );
        soak(name, &w, &baseline, &mut out, &mut failures);
    }
    dump_json("soak_resume", &out);
    if failures > 0 {
        eprintln!("soak_resume: {failures} kill point(s) diverged from the uninterrupted run");
        std::process::exit(1);
    }
    println!("\nall kill points resumed byte-identically; audits clean");
}
