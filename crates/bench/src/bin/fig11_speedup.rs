//! Fig. 11 + Table IV: training-step speedup of TECO-CXL and
//! TECO-Reduction over ZeRO-Offload for every Table III model and batch
//! size (T5-large at batch 16 OOMs, as in the paper).

use teco_bench::{dump_json, f, header, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let cells = experiments::fig11_table4(&cal);
    header("Fig 11 / Table IV", "Speedup over ZeRO-Offload");
    row(&[
        "model".into(),
        "batch".into(),
        "TECO-CXL".into(),
        "TECO-Red".into(),
        "paper(Red)".into(),
    ]);
    for c in &cells {
        row(&[
            c.model.clone(),
            c.batch.to_string(),
            if c.oom { "OOM".into() } else { f(c.teco_cxl) },
            if c.oom { "OOM".into() } else { f(c.teco_reduction) },
            c.paper_reduction.map(f).unwrap_or_else(|| "-".into()),
        ]);
    }
    let measured: Vec<f64> = cells.iter().filter(|c| !c.oom).map(|c| c.teco_reduction).collect();
    let avg_saving =
        100.0 * (1.0 - measured.iter().map(|s| 1.0 / s).sum::<f64>() / measured.len() as f64);
    println!("\naverage training-time reduction: {avg_saving:.1}% (paper: 33.7%, up to 55.4%)");
    let max_saving = 100.0 * (1.0 - 1.0 / measured.iter().fold(0.0f64, |a, &b| a.max(b)));
    println!("maximum training-time reduction: {max_saving:.1}%");
    dump_json("fig11_table4_speedup", &cells);
}
