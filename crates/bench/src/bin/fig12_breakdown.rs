//! Fig. 12: per-phase time breakdown (T5-large) across ZeRO-Offload,
//! TECO-CXL, and TECO-Reduction for several batch sizes.

use teco_bench::{dump_json, f, header, row};
use teco_offload::{experiments, Calibration};

fn main() {
    let cal = Calibration::paper();
    let rows = experiments::fig12_breakdown(&cal);
    header("Fig 12", "Time breakdown, T5-large (ms)");
    row(&[
        "system".into(),
        "batch".into(),
        "fwd+bwd".into(),
        "grad xfer".into(),
        "grad opt".into(),
        "adam".into(),
        "param xfer".into(),
        "fence".into(),
        "total".into(),
    ]);
    for r in &rows {
        row(&[
            r.system.into(),
            r.batch.to_string(),
            f(r.fwd_bwd_ms),
            f(r.grad_xfer_ms),
            f(r.clip_ms),
            f(r.adam_ms),
            f(r.param_xfer_ms),
            f(r.fence_ms),
            f(r.total_ms),
        ]);
    }
    println!("\npaper shape: TECO hides >=69% of exposed gradient transfer at batch<8,");
    println!("all of it at batch 8; TECO-CXL cuts exposed param transfer ~76% at batch 4;");
    println!("with DBA the parameter transfer is completely hidden.");
    dump_json("fig12_breakdown", &rows);
}
