//! Table V: final model accuracy, original vs. TECO-Reduction, across the
//! proxy tasks (real training with the bit-exact DBA merge applied after
//! act_aft_steps).

use teco_bench::{dump_json, header, row};
use teco_offload::convergence::{run, ConvergenceConfig, DbaSchedule, Task};

fn main() {
    header("Table V", "Final model metric: original vs TECO-Reduction");
    row(&["task".into(), "metric".into(), "original".into(), "TECO-Red".into()]);
    let mut out = Vec::new();
    for (label, task, steps, lr) in [
        ("GPT-2 proxy", Task::LanguageModel, 450u64, 2e-3f32),
        ("T5 proxy", Task::Seq2Seq, 350, 3e-3),
        ("Bert proxy", Task::Classification, 300, 5e-3),
        ("GCNII node-cls proxy", Task::Gcn, 300, 5e-3),
        ("GCNII link-pred proxy", Task::LinkPrediction, 300, 5e-3),
    ] {
        let base =
            run(&ConvergenceConfig { task, steps, lr, pretrain_steps: 60, ..Default::default() });
        let teco = run(&ConvergenceConfig {
            task,
            steps,
            lr,
            pretrain_steps: 60,
            dba: Some(DbaSchedule { act_aft_steps: steps / 3, dirty_bytes: 2 }),
            ..Default::default()
        });
        row(&[
            label.into(),
            base.metric_name.into(),
            format!("{:.3}", base.final_metric),
            format!("{:.3}", teco.final_metric),
        ]);
        out.push((label, base.metric_name, base.final_metric, teco.final_metric));
    }
    println!("\npaper (Table V): GPT-2 perplexity 21.05→21.54; Albert F1 84.38→83.69;");
    println!("Bert accuracy 93.13→91.99; T5 gen-len 22.95→21.11 — 'small impact on accuracy'.");
    dump_json("table5_accuracy", &out);
}
