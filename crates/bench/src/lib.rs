//! # teco-bench — experiment harness
//!
//! One binary per paper table/figure (see `src/bin/`) plus Criterion
//! micro-benchmarks (`benches/`). This library holds the shared output
//! helpers: aligned-table printing and JSON result dumps into
//! `bench_results/`.

pub mod report;
pub mod sweeps;

use serde::Serialize;
use std::fs;
use std::path::PathBuf;

/// Print a section header for an experiment.
pub fn header(id: &str, title: &str) {
    println!("\n=== {id}: {title} ===");
}

/// Print one aligned table row.
pub fn row(cells: &[String]) {
    let line: Vec<String> = cells.iter().map(|c| format!("{c:>14}")).collect();
    println!("{}", line.join(" "));
}

/// Format a float cell.
pub fn f(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a percent cell.
pub fn pct(x: f64) -> String {
    format!("{x:.1}%")
}

/// Write an experiment's rows as JSON under `bench_results/<name>.json`.
/// Returns the path written (or None if serialization/IO failed, which is
/// reported but non-fatal: the printed table is the primary output).
pub fn dump_json<T: Serialize>(name: &str, value: &T) -> Option<PathBuf> {
    let dir = PathBuf::from("bench_results");
    if fs::create_dir_all(&dir).is_err() {
        eprintln!("warning: cannot create bench_results/");
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => match fs::write(&path, s) {
            Ok(()) => Some(path),
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                None
            }
        },
        Err(e) => {
            eprintln!("warning: cannot serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatters() {
        assert_eq!(f(1.234), "1.23");
        assert_eq!(pct(12.345), "12.3%");
    }

    #[test]
    fn dump_json_roundtrips() {
        let rows = vec![("a", 1.5f64), ("b", 2.5)];
        let path = dump_json("unit_test_rows", &rows).expect("write ok");
        let text = std::fs::read_to_string(&path).unwrap();
        let back: Vec<(String, f64)> = serde_json::from_str(&text).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].0, "a");
        std::fs::remove_file(path).ok();
    }
}
