//! The REPORT.md section renderers.
//!
//! These used to live inline in the `generate_report` binary; they are
//! library functions so the golden-file tests (`tests/report_golden.rs`)
//! can render each section against its checked-in fixture byte-for-byte.
//! Every section is deterministic: fixed seeds, fixed workloads, no
//! wall-clock or environment inputs.

use crate::sweeps;
use teco_core::{
    run_resumed, run_uninterrupted, KillPoint, ResumeWorkload, StepBoundary, TecoConfig,
    TecoSession,
};
use teco_cxl::FaultConfig;
use teco_mem::LineData;
use teco_offload::{
    chaos_report_md, churn_report_md, collective_report_md, fault_report_md, placement_report_md,
    scaling_report_md,
};
use teco_sim::SimTime;

/// A small fixed-seed faulty run so the report always carries a populated
/// fault/recovery section (deterministic: same counters every invocation).
pub fn fault_section() -> String {
    let fault = FaultConfig {
        crc_error_rate: 0.05,
        stall_rate: 0.05,
        stall_ns: 100,
        poison_rate: 0.01,
        dba_checksum_error_rate: 0.05,
        retry_limit: 8,
        seed: 7,
        ..FaultConfig::off()
    };
    let cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 20)
        .with_act_aft_steps(1)
        .with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, base) = s.alloc_tensor("params", 256 * 64).expect("alloc params");
    let mut now = SimTime::ZERO;
    for step in 0..3u64 {
        s.check_activation(step);
        let lines: Vec<LineData> = (0..256u64)
            .map(|i| {
                let mut l = LineData::zeroed();
                for w in 0..16usize {
                    // High halves fixed across steps (the DBA premise).
                    l.set_word(w, ((i as u32) << 16) | (0x100 + step as u32 * 3 + w as u32));
                }
                l
            })
            .collect();
        s.push_param_lines(base, &lines, now).expect("param push");
        now = s.cxlfence_params(now);
    }
    fault_report_md(&s.fault_report(), s.degraded_regions())
}

/// A deterministic invalidation-mode run that populates the snoop filter,
/// reported so the directory's occupancy (and where its entries live —
/// dense arena vs spillover) is visible next to the fault section.
pub fn snoop_section() -> String {
    let cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 20)
        .with_protocol(teco_cxl::ProtocolMode::Invalidation);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, base) = s.alloc_tensor("params", 512 * 64).expect("alloc params");
    let lines: Vec<LineData> = (0..512u64)
        .map(|i| {
            let mut l = LineData::zeroed();
            for w in 0..16usize {
                l.set_word(w, ((i as u32) << 8) | w as u32);
            }
            l
        })
        .collect();
    s.push_param_lines(base, &lines, SimTime::ZERO).expect("param push");
    let st = s.coherence().snoop_stats();
    format!(
        "\n## Snoop-filter occupancy (invalidation mode, 512-line push)\n\n\
         | metric | value |\n|---|---|\n\
         | tracked lines | {} |\n\
         | dense-arena entries | {} |\n\
         | spillover entries | {} |\n\
         | dense slots available | {} |\n\
         | peak tracked lines | {} |\n\
         | peak directory bytes | {} |\n",
        st.entries,
        st.dense_entries,
        st.spill_entries,
        st.dense_slots,
        st.peak_entries,
        st.peak_bytes
    )
}

/// A fixed-seed kill+resume exercise so the report always carries the
/// crash-consistency counters: snapshots taken, restores performed,
/// snapshot image size, byte-identity of the resumed run, and the paranoid
/// auditor's final verdict. Deterministic: same numbers every invocation.
pub fn resume_section() -> String {
    let mut w = ResumeWorkload::small(7);
    w.cfg = w.cfg.clone().with_audit(true);
    let baseline = run_uninterrupted(&w).expect("uninterrupted run completes");
    let kill = KillPoint { step: w.steps / 2, boundary: StepBoundary::AfterActivation };
    let resumed = run_resumed(&w, kill).expect("resumed run completes");
    let identical = serde_json::to_string(&resumed.report).expect("serialize resumed")
        == serde_json::to_string(&baseline.report).expect("serialize baseline");
    let audit = |e: &Option<String>| match e {
        None => "clean".to_string(),
        Some(msg) => format!("FAILED: {msg}"),
    };
    format!(
        "\n## Crash-consistent snapshot/resume (audited, kill at step {} {})\n\n\
         | metric | uninterrupted | killed+resumed |\n|---|---|---|\n\
         | snapshots taken | {} | {} |\n\
         | restores performed | {} | {} |\n\
         | snapshot image bytes | {} | {} |\n\
         | device checksum | {:#018x} | {:#018x} |\n\
         | last audit walk | {} | {} |\n\
         | report byte-identical to uninterrupted | — | {} |\n",
        kill.step,
        "after-activation",
        baseline.snapshots_taken,
        resumed.snapshots_taken,
        baseline.restores,
        resumed.restores,
        baseline.snapshot_bytes,
        resumed.snapshot_bytes,
        baseline.report.device_checksum,
        resumed.report.device_checksum,
        audit(&baseline.last_audit_error),
        audit(&resumed.last_audit_error),
        identical,
    )
}

/// The datapath section: the sharded-coherence determinism contract as a
/// table. Every (protocol, fault) group runs at coherence workers
/// ∈ {1, 2, 4}; the digest column is FNV-1a over the serialized session
/// snapshot, so "same digest down a group" *is* the byte-identity claim.
/// Serial render for the same reason as [`scaling_section`].
pub fn datapath_section() -> String {
    let rows = sweeps::datapath_rows_with_workers(1);
    let bad = sweeps::datapath_divergences(&rows);
    let mut out = String::from(
        "\n## Sharded datapath determinism (workers \u{2208} {1, 2, 4} vs serial)\n\n\
         | workers | faults | protocol | sim \u{b5}s | to-device bytes | retries | \
         checksum mismatches | snoop peak | snapshot digest |\n\
         |---|---|---|---|---|---|---|---|---|\n",
    );
    for r in &rows {
        out.push_str(&format!(
            "| {} | {} | {} | {:.3} | {} | {} | {} | {} | `{}` |\n",
            r.workers,
            if r.faulty { "on" } else { "off" },
            if r.invalidation { "invalidation" } else { "update" },
            r.sim_time_ns as f64 / 1e3,
            r.bytes_to_device,
            r.link_retries,
            r.checksum_mismatches,
            r.snoop_peak,
            r.snapshot_digest,
        ));
    }
    out.push_str(&format!(
        "\nworker-invariance: {}\n",
        if bad.is_empty() {
            "every worker count reproduced the serial end state bit-for-bit".to_string()
        } else {
            format!("DIVERGED — {}", bad.join("; "))
        }
    ));
    out
}

/// The multi-device scaling section: renders the full scaling sweep
/// (N ∈ {1, 2, 4, 8} × batch ∈ {4, 8, 16}) through the shared markdown
/// renderer. Serial on purpose — a report render must not depend on core
/// count even transiently (the rows are worker-independent anyway; this
/// just keeps the render path trivially single-threaded).
pub fn scaling_section() -> String {
    let rows = sweeps::scaling_rows_with_workers(1);
    format!("\n{}", scaling_report_md(&sweeps::scaling_points(&rows)))
}

/// The fault-domain churn section: device loss, watchdog detection,
/// shard redistribution, hot readmission, and pool-media RAS, rendered
/// from the full churn sweep. Serial for the same reason as
/// [`scaling_section`].
pub fn churn_section() -> String {
    let rows = sweeps::churn_rows_with_workers(1);
    format!("\n{}", churn_report_md(&sweeps::churn_points(&rows)))
}

/// The fabric chaos section: host loss at a chunk boundary of the fused
/// all-reduce, watchdog detection, survivor regroup, hot readmission,
/// and staging-media RAS, rendered from the full chaos sweep with its
/// acceptance gate summarized underneath. Serial for the same reason as
/// [`scaling_section`].
pub fn chaos_section() -> String {
    let rows = sweeps::chaos_rows_with_workers(1);
    let bad = sweeps::chaos_divergences(&rows);
    let mut out = format!("\n{}", chaos_report_md(&sweeps::chaos_points(&rows)));
    out.push_str(&format!(
        "\ngate: {}\n",
        if bad.is_empty() {
            "every degraded and readmitted fabric ended byte-identical to its \
             never-failed golden, with zero poisoned bytes admitted"
                .to_string()
        } else {
            format!("FAILED — {}", bad.join("; "))
        }
    ));
    out
}

/// The tiered-placement section: every Table III model under the
/// explicit single-tier policy instance and the tiered policy, with the
/// sweep's acceptance gate (single-tier byte-identical to the legacy
/// default, tiered demonstrably re-placed, autotuned cache tracking
/// Table III) summarized underneath. Serial for the same reason as
/// [`scaling_section`].
pub fn placement_section() -> String {
    let rows = sweeps::placement_rows_with_workers(1);
    let bad = sweeps::placement_divergences(&rows);
    let mut out = format!("\n{}", placement_report_md(&sweeps::placement_points(&rows)));
    out.push_str(&format!(
        "\ngate: {}\n",
        if bad.is_empty() {
            "explicit single-tier stayed byte-identical to the legacy default on \
             every model, every tiered cell re-placed tensors off the giant cache, \
             and the autotuned cache tracked Table III"
                .to_string()
        } else {
            format!("FAILED — {}", bad.join("; "))
        }
    ));
    out
}

/// The inter-host collective section: the pool-vs-ring comparison grid
/// rendered through the shared markdown renderer, with the sweep's
/// acceptance gate (pool beats ring on time and bytes, bits match,
/// host 0 unperturbed) summarized underneath. Serial for the same reason
/// as [`scaling_section`].
pub fn collective_section() -> String {
    let sweep = sweeps::collective_sweep_with_workers(1);
    let bad = sweeps::collective_divergences(&sweep);
    let mut out =
        format!("\n{}", collective_report_md(&sweeps::collective_points(&sweep.collective)));
    out.push_str(&format!(
        "\ngate: {}\n",
        if bad.is_empty() {
            "pool beat the ring on time and bytes in every cell, bit-identically, \
             with host 0 of every fabric byte-identical to the single-host path"
                .to_string()
        } else {
            format!("FAILED — {}", bad.join("; "))
        }
    ));
    out
}
