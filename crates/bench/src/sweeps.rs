//! Sweep-row computation shared between the bench binaries and the test
//! suite.
//!
//! The fault and scaling sweeps used to live inline in their binaries;
//! they are library functions so the determinism matrix
//! (`tests/determinism.rs`) can run the *same* row computation under both
//! serial and parallel [`teco_offload::sweep_with_workers`] execution and
//! require byte-identical JSON. Every cell is computed independently —
//! including its own clean/one-device baseline — so cells can run on any
//! worker in any order without sharing state.

use serde::{Deserialize, Serialize};
use teco_core::{
    run_churn, run_cluster_uninterrupted, run_fabric_chaos, run_fabric_uninterrupted,
    ChurnWorkload, ClusterConfig, ClusterReport, ClusterWorkload, FabricChaosWorkload,
    FabricWorkload, HostKillSpec, PlacementPolicy, TecoConfig, TecoSession, TieredPolicy,
};
use teco_cxl::{
    ring_all_reduce, CollectiveConfig, CollectivePhase, FaultConfig, PoolCollective, RasConfig,
};
use teco_dl::ModelSpec;
use teco_mem::{Addr, LineData};
use teco_offload::{
    autotune_giant_cache, sweep_with_workers, ChaosPoint, ChurnPoint, CollectivePoint,
    PlacementPoint, ScalingPoint,
};
use teco_sim::{SimRng, SimTime};

// ---------------------------------------------------------------------------
// Fault sweep
// ---------------------------------------------------------------------------

/// Lines per region in the fault workload.
pub const FAULT_LINES: u64 = 512;
/// Training steps in the fault workload.
pub const FAULT_ROUNDS: u64 = 4;
/// The fault injector's fixed seed.
pub const FAULT_SEED: u64 = 42;

/// One cell of the fault sweep's grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultCell {
    /// DBA dirty-byte setting.
    pub dirty_bytes: u8,
    /// The rate fed to every fault class.
    pub fault_rate: f64,
}

/// The grid: dirty ∈ {2, 4} × rate ∈ {0, 0.001, 0.01, 0.05}, in the
/// order the sweep's JSON has always carried.
pub fn fault_grid() -> Vec<FaultCell> {
    let mut cells = Vec::new();
    for &dirty_bytes in &[2u8, 4] {
        for &fault_rate in &[0.0f64, 0.001, 0.01, 0.05] {
            cells.push(FaultCell { dirty_bytes, fault_rate });
        }
    }
    cells
}

/// One row of `bench_results/fault_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultSweepRow {
    /// The rate fed to every fault class.
    pub fault_rate: f64,
    /// DBA dirty-byte setting.
    pub dirty_bytes: u8,
    /// End-of-run simulated time.
    pub sim_time_ns: u64,
    /// Simulated-time ratio versus the fault-model-off run.
    pub slowdown_vs_clean: f64,
    /// Payload bytes CPU→device.
    pub bytes_to_device: u64,
    /// Link CRC errors.
    pub crc_errors: u64,
    /// Link retries.
    pub link_retries: u64,
    /// Transient stalls.
    pub stalls: u64,
    /// DBA checksum mismatches caught receiver-side.
    pub checksum_mismatches: u64,
    /// Lines quarantined by poison containment.
    pub quarantined_lines: u64,
    /// Full-line retries (ladder step 2).
    pub full_line_retries: u64,
    /// Regions degraded to the software baseline (ladder step 3).
    pub degraded_regions: u64,
    /// Did the giant-cache end state stay bit-identical to the clean run?
    pub state_matches_clean: bool,
}

/// Parameter line for (step, i): the high halves of every word are fixed
/// across steps (the §III DBA premise), only the low two bytes change.
fn param_line(step: u64, i: u64) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16usize {
        let hi = ((i as u32) << 16) ^ ((w as u32) << 26);
        let lo = (0x1000u32.wrapping_add(step as u32 * 257).wrapping_add(w as u32)) & 0xFFFF;
        l.set_word(w, (hi & 0xFFFF_0000) | lo);
    }
    l
}

fn grad_line(step: u64, i: u64) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16usize {
        l.set_word(w, (step as u32) << 24 ^ (i as u32) << 8 ^ w as u32);
    }
    l
}

/// Run the fixed fault workload; returns the session, the end-of-run
/// simulated time, and the parameter region base.
pub fn run_fault_workload(dirty_bytes: u8, fault: FaultConfig) -> (TecoSession, SimTime, Addr) {
    let cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 22)
        .with_dirty_bytes(dirty_bytes)
        .with_act_aft_steps(1) // step 0 establishes resident copies
        .with_fault(fault);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, pbase) = s.alloc_tensor("params", FAULT_LINES * 64).expect("alloc params");
    let (_, gbase) = s.alloc_tensor("grads", FAULT_LINES * 64).expect("alloc grads");
    let mut now = SimTime::ZERO;
    for step in 0..FAULT_ROUNDS {
        for i in 0..FAULT_LINES {
            // A gradient line lost to retry exhaustion is recorded in the
            // fault stats; the sweep keeps going.
            let _ = s.push_grad_line(Addr(gbase.0 + i * 64), grad_line(step, i), now);
        }
        now = s.cxlfence_grads(now);
        s.check_activation(step);
        let lines: Vec<LineData> = (0..FAULT_LINES).map(|i| param_line(step, i)).collect();
        s.push_param_lines(pbase, &lines, now).expect("param push");
        now = s.cxlfence_params(now);
    }
    (s, now, pbase)
}

fn state_matches(a: &TecoSession, ab: Addr, b: &TecoSession, bb: Addr) -> bool {
    (0..FAULT_LINES).all(|i| {
        a.device_read_line(Addr(ab.0 + i * 64)).ok() == b.device_read_line(Addr(bb.0 + i * 64)).ok()
    })
}

/// Compute one fault-sweep row. Self-contained: the cell runs its own
/// clean baseline, so rows are identical whether computed serially or on
/// any parallel worker.
pub fn fault_row(cell: &FaultCell) -> FaultSweepRow {
    let (clean_s, clean_t, clean_b) = run_fault_workload(cell.dirty_bytes, FaultConfig::off());
    let fault = FaultConfig {
        crc_error_rate: cell.fault_rate,
        stall_rate: cell.fault_rate,
        stall_ns: 100,
        poison_rate: cell.fault_rate / 4.0,
        dba_checksum_error_rate: cell.fault_rate,
        retry_limit: 8,
        seed: FAULT_SEED,
        ..FaultConfig::off()
    };
    let (s, t, b) = run_fault_workload(cell.dirty_bytes, fault);
    let r = s.fault_report();
    FaultSweepRow {
        fault_rate: cell.fault_rate,
        dirty_bytes: cell.dirty_bytes,
        sim_time_ns: t.as_ns(),
        slowdown_vs_clean: t.as_ns() as f64 / clean_t.as_ns() as f64,
        bytes_to_device: s.stats().bytes_to_device,
        crc_errors: r.crc_errors,
        link_retries: r.retries,
        stalls: r.stalls,
        checksum_mismatches: r.checksum_mismatches,
        quarantined_lines: r.quarantined_lines,
        full_line_retries: r.full_line_retries,
        degraded_regions: r.degraded_regions,
        state_matches_clean: state_matches(&s, b, &clean_s, clean_b),
    }
}

/// The full fault sweep at an explicit worker count.
pub fn fault_rows_with_workers(workers: usize) -> Vec<FaultSweepRow> {
    let grid = fault_grid();
    sweep_with_workers(&grid, workers, |_, cell| fault_row(cell))
}

/// The full fault sweep across all cores.
pub fn fault_rows() -> Vec<FaultSweepRow> {
    fault_rows_with_workers(teco_dl::num_cores())
}

// ---------------------------------------------------------------------------
// Scaling sweep
// ---------------------------------------------------------------------------

/// Device counts the scaling sweep covers.
pub const SCALING_DEVICES: [usize; 4] = [1, 2, 4, 8];
/// Per-device batch sizes the scaling sweep covers.
pub const SCALING_BATCHES: [u64; 3] = [4, 8, 16];
/// Steps per scaling run.
pub const SCALING_STEPS: u64 = 6;
/// Model size, in parameter cache lines (gradients match).
pub const SCALING_LINES: u64 = 512;
/// The content-stream seed.
pub const SCALING_SEED: u64 = 42;
/// Simulated compute per sample (forward+backward), in nanoseconds;
/// multiplied by the batch size. Kept small so the wire time is a visible
/// fraction of the step: per-device host waits then grow superlinearly
/// with N (round-robin serialization inside each gradient round) and
/// efficiency at N=8 recovers as the batch grows — compute hiding the
/// same contention — which is the weak-scaling trend the sweep exists to
/// show.
pub const SCALING_COMPUTE_NS_PER_SAMPLE: u64 = 500;

/// One cell of the scaling sweep's grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScalingCell {
    /// Devices sharing the pool.
    pub devices: usize,
    /// Per-device batch size.
    pub batch: u64,
}

/// The grid: N ∈ {1, 2, 4, 8} × batch ∈ {4, 8, 16}, devices-major.
pub fn scaling_grid() -> Vec<ScalingCell> {
    let mut cells = Vec::new();
    for &devices in &SCALING_DEVICES {
        for &batch in &SCALING_BATCHES {
            cells.push(ScalingCell { devices, batch });
        }
    }
    cells
}

/// The fixed-seed cluster workload for one cell.
pub fn scaling_workload(devices: usize, batch: u64) -> ClusterWorkload {
    ClusterWorkload {
        cfg: ClusterConfig::new(
            TecoConfig::default().with_act_aft_steps(1).with_giant_cache_bytes(1 << 22),
            devices,
        ),
        steps: SCALING_STEPS,
        param_lines: SCALING_LINES,
        grad_lines: SCALING_LINES,
        compute_ns_per_step: batch * SCALING_COMPUTE_NS_PER_SAMPLE,
        seed: SCALING_SEED,
    }
}

/// One row of `bench_results/scaling_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingRow {
    /// Devices sharing the pool.
    pub devices: u64,
    /// Per-device batch size.
    pub batch: u64,
    /// Steps simulated.
    pub steps: u64,
    /// Model size in cache lines.
    pub model_lines: u64,
    /// End-to-end cluster time.
    pub cluster_time_ns: u64,
    /// The same workload on one device (each cell computes its own
    /// baseline, so rows are worker-independent).
    pub one_device_time_ns: u64,
    /// Throughput speedup versus one device: `N · t₁ / t_N`.
    pub speedup_vs_one: f64,
    /// Parallel efficiency: `speedup / N × 100`.
    pub efficiency_pct: f64,
    /// Total time devices waited on the shared host budget.
    pub host_wait_ns: u64,
    /// When the shared host budget drained.
    pub host_drained_ns: u64,
    /// Gradient bytes the devices pushed through the budget.
    pub host_bytes: u64,
    /// Bytes read from the pool for parameter broadcasts.
    pub broadcast_bytes: u64,
    /// Bytes the update-mode fan-out avoided reading.
    pub fanout_saved_bytes: u64,
    /// Device 0's end-state checksum (identical on every replica).
    pub device_checksum: u64,
    /// The pooled optimizer's end-state checksum.
    pub pool_checksum: u64,
}

fn cluster_report(devices: usize, batch: u64) -> ClusterReport {
    run_cluster_uninterrupted(&scaling_workload(devices, batch))
        .expect("scaling workload completes")
        .report
}

/// Compute one scaling row, including its own one-device baseline.
pub fn scaling_row(cell: &ScalingCell) -> ScalingRow {
    let r = cluster_report(cell.devices, cell.batch);
    let one = if cell.devices == 1 { r.clone() } else { cluster_report(1, cell.batch) };
    let t1 = one.cluster_time_ns as f64;
    let tn = r.cluster_time_ns as f64;
    let speedup = cell.devices as f64 * t1 / tn;
    ScalingRow {
        devices: r.n_devices,
        batch: cell.batch,
        steps: r.steps,
        model_lines: SCALING_LINES,
        cluster_time_ns: r.cluster_time_ns,
        one_device_time_ns: one.cluster_time_ns,
        speedup_vs_one: speedup,
        efficiency_pct: speedup / cell.devices as f64 * 100.0,
        host_wait_ns: r.host.total_wait_ns,
        host_drained_ns: r.host.drained_ns,
        host_bytes: r.host.per_device.iter().map(|a| a.bytes).sum(),
        broadcast_bytes: r.host.broadcast_bytes,
        fanout_saved_bytes: r.host.fanout_saved_bytes,
        device_checksum: r.devices[0].device_checksum,
        pool_checksum: r.pool_checksum,
    }
}

/// The full scaling sweep at an explicit worker count.
pub fn scaling_rows_with_workers(workers: usize) -> Vec<ScalingRow> {
    let grid = scaling_grid();
    sweep_with_workers(&grid, workers, |_, cell| scaling_row(cell))
}

/// The full scaling sweep across all cores.
pub fn scaling_rows() -> Vec<ScalingRow> {
    scaling_rows_with_workers(teco_dl::num_cores())
}

/// Reduce scaling rows to the report renderer's plain points.
pub fn scaling_points(rows: &[ScalingRow]) -> Vec<ScalingPoint> {
    rows.iter()
        .map(|r| ScalingPoint {
            devices: r.devices,
            batch: r.batch,
            cluster_time_ns: r.cluster_time_ns,
            speedup_vs_one: r.speedup_vs_one,
            efficiency_pct: r.efficiency_pct,
            host_wait_ns: r.host_wait_ns,
            host_drained_ns: r.host_drained_ns,
            fanout_saved_bytes: r.fanout_saved_bytes,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Datapath sweep
// ---------------------------------------------------------------------------

/// Lines in the datapath sweep's parameter region — above
/// [`teco_cxl::PARALLEL_BATCH_LINES`], so sharded cells cross the
/// thread-spawn threshold and exercise the scatter → parallel drain →
/// seq-sorted merge pipeline, not just the serial fallback.
pub const DATAPATH_LINES: u64 = 5000;
/// Gradient lines per round (device→CPU direction).
pub const DATAPATH_GRAD_LINES: u64 = 256;
/// Training rounds per cell.
pub const DATAPATH_ROUNDS: u64 = 2;
/// The fault injector's fixed seed.
pub const DATAPATH_SEED: u64 = 1234;

/// One cell of the datapath sweep's grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DatapathCell {
    /// Coherence worker shards (1 = the serial engine).
    pub workers: usize,
    /// Fault model on?
    pub faulty: bool,
    /// Invalidation mode instead of the update protocol?
    pub invalidation: bool,
}

/// The grid: protocol-major, then fault, then workers ∈ {1, 2, 4} — so
/// each group of three adjacent rows must be identical up to `workers`.
pub fn datapath_grid() -> Vec<DatapathCell> {
    let mut cells = Vec::new();
    for &invalidation in &[false, true] {
        for &faulty in &[false, true] {
            for &workers in &[1usize, 2, 4] {
                cells.push(DatapathCell { workers, faulty, invalidation });
            }
        }
    }
    cells
}

/// One row of `bench_results/datapath_sweep.json`. Everything except
/// `workers` must be byte-identical across the worker counts of a
/// (protocol, fault) group — that is the determinism contract the
/// sharded fabric ships under, and the CI datapath-smoke job diffs it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DatapathRow {
    /// Coherence worker shards.
    pub workers: usize,
    /// Fault model on?
    pub faulty: bool,
    /// Invalidation mode?
    pub invalidation: bool,
    /// End-of-run simulated time.
    pub sim_time_ns: u64,
    /// Payload bytes CPU→device.
    pub bytes_to_device: u64,
    /// Payload bytes device→CPU.
    pub bytes_to_host: u64,
    /// Coherence control bytes CPU→device.
    pub coherence_control_bytes: u64,
    /// Snoop-filter occupancy at end of run.
    pub snoop_entries: usize,
    /// Snoop-filter high-water mark.
    pub snoop_peak: usize,
    /// Link retries (0 when the fault model is off).
    pub link_retries: u64,
    /// DBA checksum mismatches caught receiver-side.
    pub checksum_mismatches: u64,
    /// FNV-1a 64 over the serialized session snapshot — the byte-identity
    /// witness, cheap enough to commit in JSON.
    pub snapshot_digest: String,
}

/// FNV-1a 64 in hex over arbitrary bytes.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    format!("{h:016x}")
}

/// Run the fixed datapath workload at a worker count and serialize the
/// end state.
pub fn datapath_row(cell: &DatapathCell) -> DatapathRow {
    let fault = if cell.faulty {
        FaultConfig {
            crc_error_rate: 0.01,
            stall_rate: 0.005,
            stall_ns: 60,
            poison_rate: 0.002,
            dba_checksum_error_rate: 0.01,
            retry_limit: 16,
            seed: DATAPATH_SEED,
            ..FaultConfig::off()
        }
    } else {
        FaultConfig::off()
    };
    let mut cfg = TecoConfig::default()
        .with_giant_cache_bytes(1 << 22)
        .with_dirty_bytes(2)
        .with_act_aft_steps(1)
        .with_fault(fault);
    if cell.invalidation {
        cfg = cfg.with_protocol(teco_cxl::ProtocolMode::Invalidation);
    }
    let mut s = TecoSession::new(cfg).expect("valid config");
    s.set_coherence_workers(cell.workers);
    let (_, pbase) = s.alloc_tensor("params", DATAPATH_LINES * 64).expect("alloc params");
    let (_, gbase) = s.alloc_tensor("grads", DATAPATH_GRAD_LINES * 64).expect("alloc grads");
    let mut now = SimTime::ZERO;
    for step in 0..DATAPATH_ROUNDS {
        for i in 0..DATAPATH_GRAD_LINES {
            let _ = s.push_grad_line(Addr(gbase.0 + i * 64), grad_line(step, i), now);
        }
        now = s.cxlfence_grads(now);
        s.check_activation(step);
        let lines: Vec<LineData> = (0..DATAPATH_LINES).map(|i| param_line(step, i)).collect();
        s.push_param_lines(pbase, &lines, now).expect("param push");
        now = s.cxlfence_params(now);
    }
    let snap_json = serde_json::to_string(&s.snapshot()).expect("serialize snapshot");
    let r = s.fault_report();
    let snoop = s.coherence().snoop_stats();
    DatapathRow {
        workers: cell.workers,
        faulty: cell.faulty,
        invalidation: cell.invalidation,
        sim_time_ns: now.as_ns(),
        bytes_to_device: s.stats().bytes_to_device,
        bytes_to_host: s.stats().bytes_to_host,
        coherence_control_bytes: s.coherence().to_device().control_bytes,
        snoop_entries: snoop.entries,
        snoop_peak: snoop.peak_entries,
        link_retries: r.retries,
        checksum_mismatches: r.checksum_mismatches,
        snapshot_digest: fnv1a_hex(snap_json.as_bytes()),
    }
}

/// The full datapath sweep at an explicit worker count (sweep workers,
/// not coherence shards — each cell pins its own shard count).
pub fn datapath_rows_with_workers(workers: usize) -> Vec<DatapathRow> {
    let grid = datapath_grid();
    sweep_with_workers(&grid, workers, |_, cell| datapath_row(cell))
}

/// The full datapath sweep across all cores.
pub fn datapath_rows() -> Vec<DatapathRow> {
    datapath_rows_with_workers(teco_dl::num_cores())
}

/// Worker-invariance check: rows that differ only in `workers` must agree
/// on every other field, snapshot digest included. Returns the offending
/// descriptions (empty = the determinism contract holds).
pub fn datapath_divergences(rows: &[DatapathRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        let Some(serial) = rows
            .iter()
            .find(|s| s.workers == 1 && s.faulty == r.faulty && s.invalidation == r.invalidation)
        else {
            bad.push(format!("no serial row for faulty={} inval={}", r.faulty, r.invalidation));
            continue;
        };
        let mut want = serial.clone();
        want.workers = r.workers;
        if *r != want {
            bad.push(format!(
                "workers={} faulty={} inval={} diverges from serial (digest {} vs {})",
                r.workers, r.faulty, r.invalidation, r.snapshot_digest, serial.snapshot_digest
            ));
        }
    }
    bad
}

// ---------------------------------------------------------------------------
// Churn sweep (fault domains: device loss × media faults × N)
// ---------------------------------------------------------------------------

/// Device counts the churn sweep covers (≥ 2: a device must be losable).
pub const CHURN_DEVICES: [usize; 2] = [2, 4];
/// Media-fault rates (persistent uncorrectable faults per scrub tick).
pub const CHURN_MEDIA_RATES: [f64; 2] = [0.0, 1.0];
/// Steps per churn run.
pub const CHURN_STEPS: u64 = 10;
/// Parameter lines per replica.
pub const CHURN_PARAM_LINES: u64 = 128;
/// Gradient lines per device shard.
pub const CHURN_GRAD_LINES: u64 = 32;
/// Step at whose start the kill fires (kill modes only).
pub const CHURN_KILL_STEP: u64 = 3;
/// Steps between watchdog detection and hot readmission (readmit mode).
pub const CHURN_READMIT_AFTER: u64 = 2;
/// The RAS fault injector's fixed seed.
pub const CHURN_RAS_SEED: u64 = 42;

/// Failure schedule of one churn cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KillMode {
    /// Never-failed run (the convergence baseline's shape).
    None,
    /// Kill one device; the cluster finishes at N−1.
    Lose,
    /// Kill one device, then hot-readmit it from the pooled state.
    Readmit,
}

impl KillMode {
    fn label(self) -> &'static str {
        match self {
            KillMode::None => "none",
            KillMode::Lose => "lose",
            KillMode::Readmit => "readmit",
        }
    }
}

/// One cell of the churn sweep's grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnCell {
    /// Devices sharing the pool.
    pub devices: usize,
    /// Failure schedule.
    pub kill: KillMode,
    /// Persistent media faults per scrub tick (0 = RAS off).
    pub media_rate: f64,
}

/// The grid: N ∈ {2, 4} × kill ∈ {none, lose, readmit} × media rate
/// ∈ {0, 1}, devices-major.
pub fn churn_grid() -> Vec<ChurnCell> {
    let mut cells = Vec::new();
    for &devices in &CHURN_DEVICES {
        for &kill in &[KillMode::None, KillMode::Lose, KillMode::Readmit] {
            for &media_rate in &CHURN_MEDIA_RATES {
                cells.push(ChurnCell { devices, kill, media_rate });
            }
        }
    }
    cells
}

/// The fixed churn workload for one cell. Content is formulaic (see
/// [`teco_core::churn`]), so a kill cell's end state is comparable by
/// checksum to its clean baseline.
pub fn churn_cell_workload(cell: &ChurnCell) -> ChurnWorkload {
    let mut base = TecoConfig::default().with_act_aft_steps(2).with_giant_cache_bytes(1 << 22);
    if cell.media_rate > 0.0 {
        base = base.with_ras(RasConfig {
            media_faults_per_tick: cell.media_rate,
            scrub_lines_per_tick: 16,
            spare_lines: 128,
            seed: CHURN_RAS_SEED,
        });
    }
    let mut w = ChurnWorkload {
        cfg: ClusterConfig::new(base, cell.devices),
        steps: CHURN_STEPS,
        param_lines: CHURN_PARAM_LINES,
        grad_lines: CHURN_GRAD_LINES,
        kills: Vec::new(),
        readmit_after: None,
    };
    match cell.kill {
        KillMode::None => {}
        KillMode::Lose => w = w.with_kill(cell.devices as u64 - 1, CHURN_KILL_STEP),
        KillMode::Readmit => {
            w = w
                .with_kill(cell.devices as u64 - 1, CHURN_KILL_STEP)
                .with_readmit_after(CHURN_READMIT_AFTER)
        }
    }
    w
}

/// One row of `bench_results/churn_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChurnRow {
    /// Devices sharing the pool.
    pub devices: u64,
    /// Failure schedule: `none`, `lose`, or `readmit`.
    pub kill_mode: String,
    /// Persistent media faults per scrub tick.
    pub media_rate: f64,
    /// Steps simulated.
    pub steps: u64,
    /// Watchdog detections.
    pub down_events: u64,
    /// Host-account quarantines.
    pub quarantines: u64,
    /// Hot readmissions performed.
    pub readmits: u64,
    /// Gradient-line pushes rerouted through survivors.
    pub redistributed_lines: u64,
    /// Typed `DeviceDown` errors the driver absorbed (never a panic).
    pub typed_errors: u64,
    /// Media faults injected (device + pool streams).
    pub ras_faults_injected: u64,
    /// Faults found by the patrol scrubber.
    pub ras_detected_by_scrub: u64,
    /// Faults found at access time.
    pub ras_detected_on_access: u64,
    /// Lines retired to spares.
    pub ras_lines_retired: u64,
    /// Quarantined lines rebuilt from the clean pooled copy.
    pub ras_rebuilds: u64,
    /// End-to-end cluster time.
    pub cluster_time_ns: u64,
    /// The pooled optimizer's end-state checksum.
    pub pool_checksum: u64,
    /// The clean (no-kill, no-RAS) baseline's pool checksum — must equal
    /// `pool_checksum` in every cell: redistribution preserves the reduce
    /// and chipkill-mirrored retirement preserves the pool bytes.
    pub clean_pool_checksum: u64,
    /// Did the pool and every live replica end byte-identical to the
    /// clean baseline? (In `lose` mode the dead replica is excluded —
    /// its last broadcasts never reached it.)
    pub converged: bool,
}

/// Compute one churn row, including its own clean baseline (kill = none,
/// RAS off), so rows are worker-independent.
pub fn churn_row(cell: &ChurnCell) -> ChurnRow {
    let clean_cell = ChurnCell { devices: cell.devices, kill: KillMode::None, media_rate: 0.0 };
    let clean = run_churn(&churn_cell_workload(&clean_cell)).expect("clean churn run completes");
    let out = run_churn(&churn_cell_workload(cell)).expect("churn run completes");
    // Every device must match the clean run except a dead, never-readmitted
    // one (the broadcasts after its death never reached it).
    let dead = match cell.kill {
        KillMode::Lose => Some(cell.devices - 1),
        _ => None,
    };
    let converged = out.pool_checksum == clean.pool_checksum
        && (0..cell.devices)
            .filter(|&d| Some(d) != dead)
            .all(|d| out.device_checksums[d] == clean.device_checksums[d]);
    ChurnRow {
        devices: cell.devices as u64,
        kill_mode: cell.kill.label().to_string(),
        media_rate: cell.media_rate,
        steps: out.report.steps,
        down_events: out.report.down_events,
        quarantines: out.report.quarantines,
        readmits: out.report.readmits,
        redistributed_lines: out.redistributed_lines,
        typed_errors: out.typed_errors,
        ras_faults_injected: out.report.ras.faults_injected,
        ras_detected_by_scrub: out.report.ras.detected_by_scrub,
        ras_detected_on_access: out.report.ras.detected_on_access,
        ras_lines_retired: out.report.ras.lines_retired,
        ras_rebuilds: out.report.ras.rebuilds,
        cluster_time_ns: out.report.cluster_time_ns,
        pool_checksum: out.pool_checksum,
        clean_pool_checksum: clean.pool_checksum,
        converged,
    }
}

/// The full churn sweep at an explicit worker count.
pub fn churn_rows_with_workers(workers: usize) -> Vec<ChurnRow> {
    let grid = churn_grid();
    sweep_with_workers(&grid, workers, |_, cell| churn_row(cell))
}

/// The full churn sweep across all cores.
pub fn churn_rows() -> Vec<ChurnRow> {
    churn_rows_with_workers(teco_dl::num_cores())
}

/// Reduce churn rows to the report renderer's plain points.
pub fn churn_points(rows: &[ChurnRow]) -> Vec<ChurnPoint> {
    rows.iter()
        .map(|r| ChurnPoint {
            devices: r.devices,
            kill_mode: r.kill_mode.clone(),
            media_rate: r.media_rate,
            down_events: r.down_events,
            readmits: r.readmits,
            redistributed_lines: r.redistributed_lines,
            faults_injected: r.ras_faults_injected,
            lines_retired: r.ras_lines_retired,
            rebuilds: r.ras_rebuilds,
            cluster_time_ns: r.cluster_time_ns,
            converged: r.converged,
        })
        .collect()
}

// ---------------------------------------------------------------------------
// Collective sweep (pool-staged all-reduce vs the point-to-point ring)
// ---------------------------------------------------------------------------

/// Host counts the collective comparison covers (H ≥ 2: an inter-host
/// exchange must exist).
pub const COLLECTIVE_HOSTS: [usize; 3] = [2, 4, 8];
/// Per-host gradient sizes in MiB. 64 MiB is the acceptance cell: a
/// Bert-large-class gradient per step.
pub const COLLECTIVE_MB: [u64; 3] = [1, 16, 64];
/// The gradient content-stream seed.
pub const COLLECTIVE_SEED: u64 = 42;
/// Host counts the fabric anchor rows cover (H = 1 is the anchor that
/// must collapse to the single-host `scaling_sweep` path).
pub const FABRIC_HOSTS: [usize; 4] = [1, 2, 4, 8];
/// Devices per host in the fabric anchor rows.
pub const FABRIC_DEVICES: usize = 2;
/// The fabric workload seed.
pub const FABRIC_SEED: u64 = 42;

/// One cell of the collective comparison grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CollectiveCell {
    /// Hosts sharing the pool.
    pub hosts: usize,
    /// Per-host gradient size in MiB.
    pub grad_mb: u64,
}

/// The grid: H ∈ {2, 4, 8} × G ∈ {1, 16, 64} MiB, hosts-major.
pub fn collective_grid() -> Vec<CollectiveCell> {
    let mut cells = Vec::new();
    for &hosts in &COLLECTIVE_HOSTS {
        for &grad_mb in &COLLECTIVE_MB {
            cells.push(CollectiveCell { hosts, grad_mb });
        }
    }
    cells
}

/// The per-host gradient buffers of one cell, drawn from per-host forks
/// of the fixed content stream (regenerable, so a cell never needs pool
/// and ring inputs alive at once).
fn collective_inputs(hosts: usize, bytes: usize) -> Vec<Vec<u8>> {
    (0..hosts)
        .map(|h| {
            let mut rng = SimRng::seed_from_u64(COLLECTIVE_SEED).fork(&format!("grad-h{h}"));
            let mut buf = vec![0u8; bytes];
            for chunk in buf.chunks_exact_mut(8) {
                chunk.copy_from_slice(&rng.next_u64().to_le_bytes());
            }
            buf
        })
        .collect()
}

/// One row of the collective comparison in
/// `bench_results/collective_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveRow {
    /// Hosts sharing the pool.
    pub hosts: u64,
    /// Gradient bytes contributed per host.
    pub grad_bytes: u64,
    /// Pool-staged all-reduce completion (barrier → last host done).
    pub pool_ns: u64,
    /// Ring all-reduce completion over the same barrier.
    pub ring_ns: u64,
    /// `ring_ns / pool_ns` — must exceed 1 in every cell.
    pub speedup: f64,
    /// Host↔pool port bytes the pool path moved ((2H−1)·G).
    pub pool_port_bytes: u64,
    /// Pool-DRAM bytes served after fan-in dedup ((H+1)·G).
    pub pool_media_bytes: u64,
    /// Media bytes the gather fan-in avoided re-reading ((H−2)·G).
    pub fanin_saved_bytes: u64,
    /// Endpoint-port bytes the ring moved (4(H−1)·G).
    pub ring_link_bytes: u64,
    /// `ring_link_bytes / pool_port_bytes` — must exceed 1 in every cell.
    pub byte_ratio: f64,
    /// Did pool and ring produce bit-identical reduced gradients?
    pub results_match: bool,
    /// FNV-1a-64 over host 0's reduced gradient, hex (identical for both
    /// paths whenever `results_match`).
    pub grad_checksum: String,
}

/// Compute one collective comparison row. The pool and ring runs never
/// hold their input sets concurrently: each path regenerates the
/// formulaic gradients, reduces in place, and is summarized by checksum
/// before the other starts — the 64 MiB × 8-host cell peaks at one input
/// set, not two.
pub fn collective_row(cell: &CollectiveCell) -> CollectiveRow {
    let bytes = (cell.grad_mb << 20) as usize;
    let cfg = CollectiveConfig::for_hosts(cell.hosts);
    let ready = vec![SimTime::ZERO; cell.hosts];

    let mut bufs = collective_inputs(cell.hosts, bytes);
    let pool = PoolCollective::new(cfg)
        .and_then(|mut p| p.all_reduce(&mut bufs, &ready))
        .expect("pool all-reduce completes");
    let pool_sum = fnv1a_hex(&bufs[0]);
    let all_equal = bufs.windows(2).all(|w| w[0] == w[1]);
    drop(bufs);

    let mut bufs = collective_inputs(cell.hosts, bytes);
    let ring = ring_all_reduce(&cfg, &mut bufs, &ready).expect("ring all-reduce completes");
    let ring_sum = fnv1a_hex(&bufs[0]);
    drop(bufs);

    let pool_ns = (pool.completion - pool.start).as_ns();
    let ring_ns = (ring.completion - ring.start).as_ns();
    CollectiveRow {
        hosts: cell.hosts as u64,
        grad_bytes: bytes as u64,
        pool_ns,
        ring_ns,
        speedup: ring_ns as f64 / pool_ns as f64,
        pool_port_bytes: pool.port_bytes,
        pool_media_bytes: pool.media_bytes,
        fanin_saved_bytes: pool.fanin_saved_bytes,
        ring_link_bytes: ring.link_bytes,
        byte_ratio: ring.link_bytes as f64 / pool.port_bytes as f64,
        results_match: all_equal && pool_sum == ring_sum,
        grad_checksum: pool_sum,
    }
}

/// One fabric anchor row in `bench_results/collective_sweep.json`: an
/// H-host training fabric over the shared pool, with the structural
/// anchor asserted per row — host 0's cluster report is byte-identical
/// to the standalone single-host path (`scaling_sweep`'s
/// `run_cluster_uninterrupted`) at every H, and at H = 1 the whole
/// fabric collapses to it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricRow {
    /// Hosts in the fabric.
    pub hosts: u64,
    /// Devices per host.
    pub devices_per_host: u64,
    /// Steps simulated.
    pub steps: u64,
    /// The fabric clock at the end of the run.
    pub fabric_time_ns: u64,
    /// Time spent in inter-host exchanges.
    pub exchange_ns: u64,
    /// Host↔pool port bytes the collectives moved.
    pub pool_port_bytes: u64,
    /// Pool-DRAM bytes served (fan-in deduplicated).
    pub pool_media_bytes: u64,
    /// Media bytes the gather fan-in avoided re-reading.
    pub fanin_saved_bytes: u64,
    /// Running checksum of every step's globally reduced gradient.
    pub global_grad_checksum: u64,
    /// FNV-1a-64 over host 0's serialized cluster report.
    pub host0_digest: String,
    /// Does `host0_digest` equal the standalone cluster path's digest?
    pub host0_matches_cluster: bool,
}

/// The fixed fabric workload for an anchor row.
pub fn fabric_workload(hosts: usize) -> FabricWorkload {
    FabricWorkload::small(hosts, FABRIC_DEVICES, FABRIC_SEED)
}

/// Compute one fabric anchor row, including the standalone-cluster
/// digest comparison (each row runs its own baseline, so rows are
/// worker-independent).
pub fn fabric_row(hosts: usize) -> FabricRow {
    let w = fabric_workload(hosts);
    let fabric = run_fabric_uninterrupted(&w).expect("fabric run completes").report;
    let cluster = run_cluster_uninterrupted(&w.base).expect("cluster run completes").report;
    let host0 = serde_json::to_string(&fabric.host_reports[0]).expect("serialize host 0");
    let standalone = serde_json::to_string(&cluster).expect("serialize cluster");
    FabricRow {
        hosts: fabric.hosts,
        devices_per_host: FABRIC_DEVICES as u64,
        steps: fabric.steps,
        fabric_time_ns: fabric.fabric_time_ns,
        exchange_ns: fabric.exchange_ns,
        pool_port_bytes: fabric.pool_port_bytes,
        pool_media_bytes: fabric.pool_media_bytes,
        fanin_saved_bytes: fabric.fanin_saved_bytes,
        global_grad_checksum: fabric.global_grad_checksum,
        host0_digest: fnv1a_hex(host0.as_bytes()),
        host0_matches_cluster: host0 == standalone,
    }
}

/// Everything `collective_sweep` writes, as one JSON document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CollectiveSweep {
    /// The fabric anchor rows, H ∈ {1, 2, 4, 8}.
    pub fabric: Vec<FabricRow>,
    /// The pool-vs-ring comparison grid.
    pub collective: Vec<CollectiveRow>,
}

/// The full collective sweep at an explicit worker count.
pub fn collective_sweep_with_workers(workers: usize) -> CollectiveSweep {
    let fabric = sweep_with_workers(&FABRIC_HOSTS, workers, |_, &hosts| fabric_row(hosts));
    let grid = collective_grid();
    let collective = sweep_with_workers(&grid, workers, |_, cell| collective_row(cell));
    CollectiveSweep { fabric, collective }
}

/// The full collective sweep across all cores.
pub fn collective_sweep() -> CollectiveSweep {
    collective_sweep_with_workers(teco_dl::num_cores())
}

/// Reduce collective rows to the report renderer's plain points.
pub fn collective_points(rows: &[CollectiveRow]) -> Vec<CollectivePoint> {
    rows.iter()
        .map(|r| CollectivePoint {
            hosts: r.hosts,
            grad_bytes: r.grad_bytes,
            pool_ns: r.pool_ns,
            ring_ns: r.ring_ns,
            speedup: r.speedup,
            pool_port_bytes: r.pool_port_bytes,
            ring_link_bytes: r.ring_link_bytes,
            fanin_saved_bytes: r.fanin_saved_bytes,
            results_match: r.results_match,
        })
        .collect()
}

/// The sweep's acceptance gate: every comparison cell must beat the ring
/// on completion time *and* moved bytes with bit-identical results, and
/// every fabric row must keep host 0 byte-identical to the standalone
/// cluster path. Returns the offending descriptions (empty = pass).
pub fn collective_divergences(sweep: &CollectiveSweep) -> Vec<String> {
    let mut bad = Vec::new();
    for r in &sweep.collective {
        if !r.results_match {
            bad.push(format!(
                "H={} G={}MB: pool and ring bits diverge",
                r.hosts,
                r.grad_bytes >> 20
            ));
        }
        if r.pool_ns >= r.ring_ns {
            bad.push(format!(
                "H={} G={}MB: pool {}ns not faster than ring {}ns",
                r.hosts,
                r.grad_bytes >> 20,
                r.pool_ns,
                r.ring_ns
            ));
        }
        if r.pool_port_bytes >= r.ring_link_bytes {
            bad.push(format!(
                "H={} G={}MB: pool moved {} bytes, ring {}",
                r.hosts,
                r.grad_bytes >> 20,
                r.pool_port_bytes,
                r.ring_link_bytes
            ));
        }
    }
    for r in &sweep.fabric {
        if !r.host0_matches_cluster {
            bad.push(format!("H={}: host 0 diverged from the standalone cluster path", r.hosts));
        }
    }
    bad
}

// ---------------------------------------------------------------------------
// Fabric chaos sweep
// ---------------------------------------------------------------------------

/// Host counts swept by the chaos grid.
pub const CHAOS_HOSTS: [usize; 2] = [2, 4];
/// Devices per host in the chaos workload.
pub const CHAOS_DEVICES: usize = 2;
/// Training steps in the chaos workload — long enough that the DBA
/// activates (step 4) *after* the kill and the readmission, so the
/// readmitted host must reproduce the dirty-byte merge history too.
pub const CHAOS_STEPS: u64 = 6;
/// The chaos workload's fixed seed.
pub const CHAOS_SEED: u64 = 42;
/// Step whose collective the scheduled kill fires in.
pub const CHAOS_KILL_STEP: u64 = 1;
/// Flat chunk index (within the kill phase) the host goes silent at.
pub const CHAOS_KILL_CHUNK: u64 = 1;
/// Full steps between the watchdog detection and hot readmission.
pub const CHAOS_READMIT_AFTER: u64 = 1;
/// Chunk size forcing multi-chunk shards on the small workload.
pub const CHAOS_CHUNK_BYTES: u64 = 64;
/// Staging-media fault rates swept (faults per RAS tick).
pub const CHAOS_MEDIA_RATES: [f64; 2] = [0.0, 1.0];

/// Where (if anywhere) the scheduled host kill fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChaosKill {
    /// Never-failed cell (the golden for its host count).
    None,
    /// Kill mid reduce-scatter.
    ReduceScatter,
    /// Kill mid all-gather.
    AllGather,
}

impl ChaosKill {
    /// The label carried in rows, points, and the report table.
    pub fn label(self) -> &'static str {
        match self {
            ChaosKill::None => "none",
            ChaosKill::ReduceScatter => "reduce-scatter",
            ChaosKill::AllGather => "all-gather",
        }
    }

    fn phase(self) -> Option<CollectivePhase> {
        match self {
            ChaosKill::None => None,
            ChaosKill::ReduceScatter => Some(CollectivePhase::ReduceScatter),
            ChaosKill::AllGather => Some(CollectivePhase::AllGather),
        }
    }
}

/// One cell of the chaos grid.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChaosCell {
    /// Hosts in the fabric.
    pub hosts: usize,
    /// Kill schedule.
    pub kill: ChaosKill,
    /// Staging-media faults per RAS tick.
    pub media_rate: f64,
}

/// The chaos grid, hosts-major: H ∈ {2, 4} × kill ∈ {none,
/// reduce-scatter, all-gather} × media rate ∈ {0, 1}.
pub fn chaos_grid() -> Vec<ChaosCell> {
    let mut cells = Vec::new();
    for &hosts in &CHAOS_HOSTS {
        for &kill in &[ChaosKill::None, ChaosKill::ReduceScatter, ChaosKill::AllGather] {
            for &media_rate in &CHAOS_MEDIA_RATES {
                cells.push(ChaosCell { hosts, kill, media_rate });
            }
        }
    }
    cells
}

/// The fixed chaos workload for one cell. Kill cells lose their
/// highest-numbered host at step 1 and hot-readmit it one full step
/// after detection; media cells arm staging-media RAS.
pub fn chaos_cell_workload(cell: &ChaosCell) -> FabricChaosWorkload {
    let mut w = FabricChaosWorkload::small(cell.hosts, CHAOS_DEVICES, CHAOS_SEED);
    w.fabric.base.steps = CHAOS_STEPS;
    w.fabric.collective.chunk_bytes = CHAOS_CHUNK_BYTES;
    if cell.media_rate > 0.0 {
        w = w.with_media_faults(cell.media_rate);
    }
    if let Some(phase) = cell.kill.phase() {
        w = w
            .with_kill(HostKillSpec {
                host: cell.hosts as u64 - 1,
                step: CHAOS_KILL_STEP,
                phase,
                chunk: CHAOS_KILL_CHUNK,
            })
            .with_readmit_after(CHAOS_READMIT_AFTER);
    }
    w
}

/// One row of the chaos sweep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosRow {
    /// Hosts in the fabric.
    pub hosts: usize,
    /// Kill schedule label (`none` / `reduce-scatter` / `all-gather`).
    pub kill_phase: String,
    /// Staging-media faults per RAS tick.
    pub media_rate: f64,
    /// Steps the fabric completed.
    pub steps: u64,
    /// Watchdog host-loss detections.
    pub detections: u64,
    /// Survivor regroups (ladder rung 2).
    pub regroups: u64,
    /// Hot host readmissions.
    pub readmissions: u64,
    /// Per-chunk checksummed retries on transient port faults.
    pub chunk_retries: u64,
    /// Staging-media faults detected (scrub + on-access) before any
    /// poisoned byte reached a reduction.
    pub media_detections: u64,
    /// Collectives rerouted over the ring fallback (ladder rung 3).
    pub ring_fallbacks: u64,
    /// Watchdog deadline expiries.
    pub watchdog_timeouts: u64,
    /// Persistent media faults injected.
    pub ras_faults_injected: u64,
    /// Staging lines retired to spares.
    pub ras_lines_retired: u64,
    /// Corrupted bytes admitted to a reduction — must be zero.
    pub poisoned_admitted: u64,
    /// End-of-run fabric time in nanoseconds.
    pub fabric_time_ns: u64,
    /// FNV-1a-64 over every broadcast parameter line.
    pub param_checksum: u64,
    /// The never-failed same-H golden's parameter checksum.
    pub golden_param_checksum: u64,
    /// Byte-identity verdict against the golden (see [`chaos_row`]).
    pub converged: bool,
}

/// Compute one chaos row. Self-contained: the cell recomputes its own
/// never-failed, fault-free same-H golden, so rows can run on any
/// worker in any order.
///
/// `converged` requires zero poisoned bytes, the golden's parameter
/// checksum, the golden's per-device content checksums (the readmitted
/// host included), and golden per-step global-gradient checksums — the
/// full run for fault-only cells, the pre-kill prefix for kill cells
/// (the survivor accumulator restarts at the regroup; the post-kill
/// tail is asserted against the never-failed H−1 fabric by the
/// `fabric_chaos` acceptance suite, not re-derived here).
pub fn chaos_row(cell: &ChaosCell) -> ChaosRow {
    let golden_cell = ChaosCell { hosts: cell.hosts, kill: ChaosKill::None, media_rate: 0.0 };
    let golden = run_fabric_chaos(&chaos_cell_workload(&golden_cell))
        .expect("golden chaos run completes")
        .outcome;
    let out = run_fabric_chaos(&chaos_cell_workload(cell)).expect("chaos run completes").outcome;
    let k = CHAOS_KILL_STEP as usize;
    let grads_ok = match cell.kill {
        ChaosKill::None => out.step_grad_checksums == golden.step_grad_checksums,
        _ => out.step_grad_checksums[..k] == golden.step_grad_checksums[..k],
    };
    let converged = out.poisoned_admitted == 0
        && grads_ok
        && out.param_checksum == golden.param_checksum
        && out.device_checksums == golden.device_checksums;
    ChaosRow {
        hosts: cell.hosts,
        kill_phase: cell.kill.label().to_string(),
        media_rate: cell.media_rate,
        steps: out.report.steps,
        detections: out.detections.len() as u64,
        regroups: out.regroups,
        readmissions: out.readmissions,
        chunk_retries: out.fstats.chunk_retries,
        media_detections: out.ras.detected_by_scrub + out.ras.detected_on_access,
        ring_fallbacks: out.fstats.ring_fallbacks,
        watchdog_timeouts: out.fstats.watchdog_timeouts,
        ras_faults_injected: out.ras.faults_injected,
        ras_lines_retired: out.ras.lines_retired,
        poisoned_admitted: out.poisoned_admitted,
        fabric_time_ns: out.report.fabric_time_ns,
        param_checksum: out.param_checksum,
        golden_param_checksum: golden.param_checksum,
        converged,
    }
}

/// All chaos rows at an explicit worker count.
pub fn chaos_rows_with_workers(workers: usize) -> Vec<ChaosRow> {
    let grid = chaos_grid();
    sweep_with_workers(&grid, workers, |_, cell| chaos_row(cell))
}

/// All chaos rows across all cores.
pub fn chaos_rows() -> Vec<ChaosRow> {
    chaos_rows_with_workers(teco_dl::num_cores())
}

/// Reduce chaos rows to the report renderer's plain points.
pub fn chaos_points(rows: &[ChaosRow]) -> Vec<ChaosPoint> {
    rows.iter()
        .map(|r| ChaosPoint {
            hosts: r.hosts as u64,
            kill_phase: r.kill_phase.clone(),
            media_rate: r.media_rate,
            detections: r.detections,
            regroups: r.regroups,
            readmissions: r.readmissions,
            chunk_retries: r.chunk_retries,
            media_detections: r.media_detections,
            ring_fallbacks: r.ring_fallbacks,
            poisoned_admitted: r.poisoned_admitted,
            fabric_time_ns: r.fabric_time_ns,
            converged: r.converged,
        })
        .collect()
}

/// The chaos sweep's acceptance gate: every cell byte-converged, zero
/// poisoned bytes anywhere, kill cells saw exactly one detection, one
/// regroup, and one readmission, never-failed cells saw none. Returns
/// the offending descriptions (empty = pass).
pub fn chaos_divergences(rows: &[ChaosRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        let cell = format!("H={} kill={} rate={}", r.hosts, r.kill_phase, r.media_rate);
        if !r.converged {
            bad.push(format!("{cell}: diverged from the never-failed golden"));
        }
        if r.poisoned_admitted > 0 {
            bad.push(format!("{cell}: {} poisoned bytes admitted", r.poisoned_admitted));
        }
        if r.kill_phase == "none" {
            if r.detections != 0 || r.regroups != 0 || r.readmissions != 0 {
                bad.push(format!("{cell}: spurious loss events on a kill-free cell"));
            }
        } else if r.detections != 1 || r.regroups != 1 || r.readmissions != 1 {
            bad.push(format!(
                "{cell}: detections={} regroups={} readmissions={} (want 1 each)",
                r.detections, r.regroups, r.readmissions
            ));
        }
    }
    bad
}

// ---------------------------------------------------------------------------
// Placement sweep (tiered tensor placement × Table III models)
// ---------------------------------------------------------------------------

/// Training steps per placement cell.
pub const PLACEMENT_STEPS: u64 = 4;
/// DBA activation step for placement cells (activates mid-run).
pub const PLACEMENT_ACT_AFT: u64 = 2;
/// Giant-cache capacity for the scaled-down placement workloads.
pub const PLACEMENT_CACHE_BYTES: u64 = 1 << 20;
/// The BO autotuner's fixed seed.
pub const PLACEMENT_SEED: u64 = 11;

/// One cell of the placement grid.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementCell {
    /// Table III model name (resolved via [`ModelSpec::by_name`]).
    pub model: String,
    /// Tiered policy instead of the explicit single-tier instance?
    pub tiered: bool,
}

/// The placement grid, model-major: each Table III model under the
/// explicit single-tier policy instance, then the tiered policy.
pub fn placement_grid() -> Vec<PlacementCell> {
    let mut cells = Vec::new();
    for spec in ModelSpec::table3() {
        for &tiered in &[false, true] {
            cells.push(PlacementCell { model: spec.name.to_string(), tiered });
        }
    }
    cells
}

/// The non-default tiering policy every tiered cell runs: a small
/// device-resident tier for compact hot tensors, optimizer moments
/// spilled to plain host DRAM, params/grads staged in the giant cache.
pub fn placement_tiered_policy() -> TieredPolicy {
    TieredPolicy {
        device_capacity_bytes: 1 << 14,
        device_size_threshold: 2048,
        ..TieredPolicy::default()
    }
}

/// Scaled-down tensor shapes for one model: line counts derived from the
/// parameter count so every model lands on distinct, cache-fitting sizes.
pub fn placement_shapes(spec: &ModelSpec) -> (u64, u64, u64) {
    let param_lines = 64 + spec.params / 10_000_000;
    let grad_lines = param_lines / 4;
    let moment_bytes = 2 * grad_lines * 64;
    (param_lines, grad_lines, moment_bytes)
}

/// One row of `bench_results/placement_sweep.json`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementRow {
    /// Model display name.
    pub model: String,
    /// Policy label: `single-tier` or `tiered`.
    pub policy: String,
    /// BO-autotuned giant-cache size in MB.
    pub autotuned_mb: u64,
    /// Published Table III giant-cache size in MB.
    pub table3_mb: u64,
    /// End-of-run simulated time.
    pub sim_time_ns: u64,
    /// Bytes resident in the device tier at end of run.
    pub device_bytes: u64,
    /// Bytes resident in the giant cache at end of run.
    pub giant_cache_bytes: u64,
    /// Bytes resident in plain host DRAM at end of run.
    pub host_dram_bytes: u64,
    /// Step-boundary migrations executed.
    pub migrations: u64,
    /// Bytes moved by those migrations.
    pub migrated_bytes: u64,
    /// Link bytes CPU→device (parameter direction).
    pub bytes_to_device: u64,
    /// Link bytes device→CPU (gradient direction).
    pub bytes_to_host: u64,
    /// FNV-1a 64 over the serialized session snapshot — the byte-identity
    /// witness the CI placement-smoke job diffs run-to-run.
    pub snapshot_digest: String,
}

/// Run one model's scaled workload under one explicit placement policy
/// and serialize the end state. Self-contained like every other sweep
/// row: the cell derives its own shapes and policy from the grid cell.
pub fn placement_row(cell: &PlacementCell) -> PlacementRow {
    let spec = ModelSpec::by_name(&cell.model).expect("placement cell names a known model");
    let policy = if cell.tiered {
        PlacementPolicy::Tiered(placement_tiered_policy())
    } else {
        PlacementPolicy::SingleTier
    };
    let (s, now) = run_placement_workload(&spec, TecoConfig::default().with_placement(policy));
    let tune = autotune_giant_cache(&spec, PLACEMENT_SEED);
    let (device_bytes, giant_cache_bytes, host_dram_bytes, migrations, migrated_bytes) =
        match s.placement() {
            Some(engine) => {
                let map = engine.map();
                let st = engine.stats();
                (
                    map.used(teco_mem::Tier::Device),
                    map.used(teco_mem::Tier::GiantCache),
                    map.used(teco_mem::Tier::HostDram),
                    st.migrations,
                    st.migrated_bytes,
                )
            }
            None => (0, s.giant_cache().allocated(), 0, 0, 0),
        };
    let snap_json = serde_json::to_string(&s.snapshot()).expect("serialize snapshot");
    PlacementRow {
        model: cell.model.clone(),
        policy: if cell.tiered { "tiered" } else { "single-tier" }.to_string(),
        autotuned_mb: tune.tuned_mb,
        table3_mb: tune.table3_mb,
        sim_time_ns: now.as_ns(),
        device_bytes,
        giant_cache_bytes,
        host_dram_bytes,
        migrations,
        migrated_bytes,
        bytes_to_device: s.stats().bytes_to_device,
        bytes_to_host: s.stats().bytes_to_host,
        snapshot_digest: fnv1a_hex(snap_json.as_bytes()),
    }
}

/// The fixed placement workload: params (broadcast-mostly), grads
/// (write-once per step), and optimizer moments (write-mostly) pushed for
/// [`PLACEMENT_STEPS`] steps with DBA activating mid-run.
pub fn run_placement_workload(spec: &ModelSpec, cfg: TecoConfig) -> (TecoSession, SimTime) {
    let (param_lines, grad_lines, moment_bytes) = placement_shapes(spec);
    let cfg = cfg
        .with_giant_cache_bytes(PLACEMENT_CACHE_BYTES)
        .with_act_aft_steps(PLACEMENT_ACT_AFT)
        .with_dirty_bytes(2);
    let mut s = TecoSession::new(cfg).expect("valid config");
    let (_, pbase) = s.alloc_tensor("params", param_lines * 64).expect("alloc params");
    let (_, gbase) = s.alloc_tensor("grads", grad_lines * 64).expect("alloc grads");
    let (_, mbase) = s.alloc_tensor("moment_m", moment_bytes).expect("alloc moments");
    let mut now = SimTime::ZERO;
    for step in 0..PLACEMENT_STEPS {
        for i in 0..grad_lines {
            let _ = s.push_grad_line(Addr(gbase.0 + i * 64), grad_line(step, i), now);
        }
        now = s.cxlfence_grads(now);
        s.check_activation(step);
        let lines: Vec<LineData> = (0..param_lines).map(|i| param_line(step, i)).collect();
        s.push_param_lines(pbase, &lines, now).expect("param push");
        let moments: Vec<LineData> =
            (0..moment_bytes / 64).map(|i| param_line(step.wrapping_add(17), i)).collect();
        s.push_param_lines(mbase, &moments, now).expect("moment push");
        now = s.cxlfence_params(now);
    }
    (s, now)
}

/// All placement rows at an explicit worker count.
pub fn placement_rows_with_workers(workers: usize) -> Vec<PlacementRow> {
    let grid = placement_grid();
    sweep_with_workers(&grid, workers, |_, cell| placement_row(cell))
}

/// All placement rows across all cores.
pub fn placement_rows() -> Vec<PlacementRow> {
    placement_rows_with_workers(teco_dl::num_cores())
}

/// Reduce placement rows to the report renderer's plain points.
pub fn placement_points(rows: &[PlacementRow]) -> Vec<PlacementPoint> {
    rows.iter()
        .map(|r| PlacementPoint {
            model: r.model.clone(),
            policy: r.policy.clone(),
            autotuned_mb: r.autotuned_mb,
            table3_mb: r.table3_mb,
            device_bytes: r.device_bytes,
            giant_cache_bytes: r.giant_cache_bytes,
            host_dram_bytes: r.host_dram_bytes,
            migrations: r.migrations,
            migrated_bytes: r.migrated_bytes,
            link_param_bytes: r.bytes_to_device,
            link_grad_bytes: r.bytes_to_host,
            snapshot_digest: r.snapshot_digest.clone(),
        })
        .collect()
}

/// The placement sweep's acceptance gate:
///
/// 1. every single-tier row is byte-identical to a freshly-run session
///    whose config never mentions placement at all (the explicit
///    `SingleTier` policy instance *is* the legacy layout);
/// 2. every tiered row demonstrably changes placement — bytes resident
///    outside the giant cache, and a snapshot digest different from its
///    single-tier sibling;
/// 3. the autotuned giant-cache size tracks Table III within ratio
///    [0.7, 1.4] on every row.
///
/// Returns the offending descriptions (empty = pass).
pub fn placement_divergences(rows: &[PlacementRow]) -> Vec<String> {
    let mut bad = Vec::new();
    for r in rows {
        let cell = format!("model={} policy={}", r.model, r.policy);
        let ratio = r.autotuned_mb as f64 / r.table3_mb as f64;
        if !(0.7..=1.4).contains(&ratio) {
            bad.push(format!(
                "{cell}: autotuned {} MB strays from Table III {} MB",
                r.autotuned_mb, r.table3_mb
            ));
        }
        if r.policy == "single-tier" {
            let spec = ModelSpec::by_name(&r.model).expect("known model");
            let (s, _) = run_placement_workload(&spec, TecoConfig::default());
            let legacy =
                fnv1a_hex(serde_json::to_string(&s.snapshot()).expect("serialize").as_bytes());
            if r.snapshot_digest != legacy {
                bad.push(format!(
                    "{cell}: explicit single-tier digest {} != legacy default {legacy}",
                    r.snapshot_digest
                ));
            }
            if r.device_bytes != 0 || r.host_dram_bytes != 0 || r.migrations != 0 {
                bad.push(format!("{cell}: single-tier row placed bytes outside the giant cache"));
            }
        } else {
            if r.device_bytes + r.host_dram_bytes == 0 {
                bad.push(format!("{cell}: tiered row placed nothing outside the giant cache"));
            }
            if let Some(single) =
                rows.iter().find(|s| s.model == r.model && s.policy == "single-tier")
            {
                if single.snapshot_digest == r.snapshot_digest {
                    bad.push(format!("{cell}: tiered digest equals the single-tier digest"));
                }
            } else {
                bad.push(format!("{cell}: no single-tier sibling row"));
            }
        }
    }
    bad
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grids_have_expected_shape() {
        assert_eq!(fault_grid().len(), 8);
        assert_eq!(scaling_grid().len(), 12);
        // Devices-major order, the order the JSON has always carried.
        assert_eq!(scaling_grid()[0], ScalingCell { devices: 1, batch: 4 });
        assert_eq!(scaling_grid()[3], ScalingCell { devices: 2, batch: 4 });
    }

    #[test]
    fn one_device_cell_is_its_own_baseline() {
        let row = scaling_row(&ScalingCell { devices: 1, batch: 4 });
        assert_eq!(row.cluster_time_ns, row.one_device_time_ns);
        assert_eq!(row.speedup_vs_one, 1.0);
        assert_eq!(row.efficiency_pct, 100.0);
        assert_eq!(row.host_wait_ns, 0);
    }

    #[test]
    fn datapath_grid_is_worker_adjacent() {
        let grid = datapath_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0], DatapathCell { workers: 1, faulty: false, invalidation: false });
        assert_eq!(grid[1], DatapathCell { workers: 2, faulty: false, invalidation: false });
        assert_eq!(grid[2], DatapathCell { workers: 4, faulty: false, invalidation: false });
    }

    #[test]
    fn datapath_rows_are_worker_invariant_in_miniature() {
        // One (faulty, invalidation) group end to end — the full grid runs
        // in the datapath_sweep binary and the CI datapath-smoke job.
        let rows: Vec<DatapathRow> = [1usize, 2, 4]
            .iter()
            .map(|&workers| {
                datapath_row(&DatapathCell { workers, faulty: true, invalidation: false })
            })
            .collect();
        assert_eq!(datapath_divergences(&rows), Vec::<String>::new());
        assert!(rows[0].link_retries > 0, "fault model should have fired");
    }

    #[test]
    fn churn_grid_shape_and_none_cell_is_clean() {
        let grid = churn_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0], ChurnCell { devices: 2, kill: KillMode::None, media_rate: 0.0 });
        let row = churn_row(&grid[0]);
        assert_eq!(row.down_events, 0);
        assert_eq!(row.redistributed_lines, 0);
        assert_eq!(row.pool_checksum, row.clean_pool_checksum);
        assert!(row.converged);
    }

    #[test]
    fn churn_readmit_cell_converges_under_media_faults() {
        let row = churn_row(&ChurnCell { devices: 2, kill: KillMode::Readmit, media_rate: 1.0 });
        assert_eq!(row.down_events, 1);
        assert_eq!(row.readmits, 1);
        assert!(row.typed_errors >= 1, "kill must surface typed");
        assert!(row.redistributed_lines > 0);
        assert!(row.ras_faults_injected > 0, "media faults must fire");
        assert!(row.converged, "readmitted cell must converge to clean baseline");
    }

    #[test]
    fn collective_grid_shape_and_small_cell_beats_ring() {
        let grid = collective_grid();
        assert_eq!(grid.len(), 9);
        assert_eq!(grid[0], CollectiveCell { hosts: 2, grad_mb: 1 });
        let row = collective_row(&grid[0]);
        assert!(row.results_match, "pool and ring must agree bit for bit");
        assert!(row.speedup > 1.0, "pool must beat the ring: {row:?}");
        assert!(row.byte_ratio > 1.0, "pool must move fewer bytes: {row:?}");
        assert_eq!(row.pool_port_bytes, 3 << 20);
        assert_eq!(row.ring_link_bytes, 4 << 20);
    }

    #[test]
    fn fabric_anchor_holds_at_one_host_and_four() {
        let one = fabric_row(1);
        assert!(one.host0_matches_cluster, "H=1 must collapse to the cluster path");
        assert_eq!(one.exchange_ns, 0);
        assert_eq!(one.pool_port_bytes, 0);
        let four = fabric_row(4);
        assert!(four.host0_matches_cluster, "host 0 must stay unperturbed at H=4");
        assert!(four.exchange_ns > 0);
        assert!(four.fanin_saved_bytes > 0);
        let sweep = CollectiveSweep { fabric: vec![one, four], collective: Vec::new() };
        assert_eq!(collective_divergences(&sweep), Vec::<String>::new());
    }

    #[test]
    fn chaos_grid_shape_and_kill_cell_converges() {
        let grid = chaos_grid();
        assert_eq!(grid.len(), 12);
        assert_eq!(grid[0], ChaosCell { hosts: 2, kill: ChaosKill::None, media_rate: 0.0 });
        // One kill cell end to end — the full grid runs in the
        // fabric_chaos_sweep binary and the CI fabric-chaos-smoke job.
        let row =
            chaos_row(&ChaosCell { hosts: 2, kill: ChaosKill::ReduceScatter, media_rate: 1.0 });
        assert_eq!(row.detections, 1);
        assert_eq!(row.regroups, 1);
        assert_eq!(row.readmissions, 1);
        assert!(row.ras_faults_injected > 0, "media faults must fire");
        assert_eq!(row.poisoned_admitted, 0);
        assert!(row.converged, "kill cell must converge to the never-failed golden");
        assert_eq!(chaos_divergences(&[row]), Vec::<String>::new());
    }

    #[test]
    fn placement_grid_shape_and_tiered_cell_changes_placement() {
        let grid = placement_grid();
        assert_eq!(grid.len(), 10);
        assert_eq!(grid[0], PlacementCell { model: "GPT-2".into(), tiered: false });
        // One model's (single-tier, tiered) pair end to end — the full grid
        // runs in the placement_sweep binary and the CI placement-smoke job.
        let single = placement_row(&grid[0]);
        let tiered = placement_row(&grid[1]);
        assert_eq!(single.device_bytes, 0);
        assert_eq!(single.host_dram_bytes, 0);
        assert!(tiered.host_dram_bytes > 0, "moments must spill to host DRAM: {tiered:?}");
        assert!(tiered.device_bytes > 0, "small grads must pin device-resident: {tiered:?}");
        assert_ne!(single.snapshot_digest, tiered.snapshot_digest);
        assert_eq!(placement_divergences(&[single, tiered]), Vec::<String>::new());
    }

    #[test]
    fn placement_rows_reproduce_run_to_run() {
        let cell = PlacementCell { model: "GCNII".into(), tiered: true };
        let a = placement_row(&cell);
        let b = placement_row(&cell);
        assert_eq!(a, b, "tiered placement row must be byte-reproducible");
    }

    #[test]
    fn zero_rate_fault_cell_matches_clean() {
        let row = fault_row(&FaultCell { dirty_bytes: 2, fault_rate: 0.0 });
        assert!(row.state_matches_clean);
        assert_eq!(row.slowdown_vs_clean, 1.0);
        assert_eq!(row.crc_errors, 0);
    }
}
