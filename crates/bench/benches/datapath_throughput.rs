//! Criterion benchmarks for the link-saturating datapath: the chunked
//! u64 pack/merge kernels against their byte-at-a-time scalar oracles
//! (same run, same machine — the ≥2× gate in `perf_smoke` reads these),
//! plus the region-sharded coherence fabric's bulk write path at several
//! worker counts.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_cxl::coherence::Agent;
use teco_cxl::dba::{kernels, scalar};
use teco_cxl::{Aggregator, DbaRegister, ProtocolMode, ShardedCoherence};
use teco_mem::{Addr, LineData, LINE_BYTES, WORDS_PER_LINE};

const RUN_LINES: usize = 1024;

fn lines(n: usize) -> Vec<LineData> {
    (0..n)
        .map(|i| {
            let mut l = LineData::zeroed();
            for w in 0..16 {
                l.set_word(w, (i as u32).wrapping_mul(2654435761).wrapping_add(w as u32));
            }
            l
        })
        .collect()
}

fn flat_bytes(ls: &[LineData]) -> Vec<u8> {
    ls.iter().flat_map(|l| l.bytes().iter().copied()).collect()
}

/// Kernel vs scalar-oracle pack of the same whole-line run, one pair per
/// dirty-byte width.
fn bench_pack_pairs(c: &mut Criterion) {
    let data = lines(RUN_LINES);
    let src = flat_bytes(&data);
    let mut g = c.benchmark_group("datapath");
    g.throughput(Throughput::Bytes((RUN_LINES * LINE_BYTES) as u64));
    for n in 1usize..=3 {
        let per = WORDS_PER_LINE * n;
        g.bench_function(format!("pack_kernel_{n}"), |b| {
            let mut dst = vec![0u8; RUN_LINES * per];
            b.iter(|| kernels::pack_run(black_box(&src), n, &mut dst))
        });
        g.bench_function(format!("pack_scalar_{n}"), |b| {
            let mut dst = vec![0u8; RUN_LINES * per];
            b.iter(|| {
                for (l, d) in data.iter().zip(dst.chunks_exact_mut(per)) {
                    scalar::pack_line(black_box(l), n, d);
                }
            })
        });
    }
    g.finish();
}

/// Kernel vs scalar-oracle reset-shift-OR merge of a packed payload back
/// into resident lines.
fn bench_merge_pairs(c: &mut Criterion) {
    let data = lines(RUN_LINES);
    let src = flat_bytes(&data);
    let mut g = c.benchmark_group("datapath");
    g.throughput(Throughput::Bytes((RUN_LINES * LINE_BYTES) as u64));
    for n in 1usize..=3 {
        let per = WORDS_PER_LINE * n;
        let mut payload = vec![0u8; RUN_LINES * per];
        kernels::pack_run(&src, n, &mut payload);
        g.bench_function(format!("merge_kernel_{n}"), |b| {
            let mut resident = flat_bytes(&data);
            b.iter(|| kernels::merge_run(black_box(&payload), n, &mut resident))
        });
        g.bench_function(format!("merge_scalar_{n}"), |b| {
            let mut resident = flat_bytes(&data);
            b.iter(|| {
                for (p, r) in payload.chunks_exact(per).zip(resident.chunks_exact_mut(LINE_BYTES)) {
                    scalar::unpack_merge_bytes(black_box(p), n, r);
                }
            })
        });
    }
    g.finish();
}

/// The checksummed aggregate path — chunked pack with the chunk-wise
/// deferred-fold Fletcher-16 fused in — against the pre-fusion reference:
/// scalar pack followed by the per-byte Fletcher second pass. This is the
/// pair the tentpole's checksum fusion replaced, and the one `perf_smoke`
/// holds to the ≥2× same-run bound.
fn bench_checksummed_pairs(c: &mut Criterion) {
    let data = lines(RUN_LINES);
    let mut g = c.benchmark_group("datapath");
    g.throughput(Throughput::Bytes((RUN_LINES * LINE_BYTES) as u64));
    for n in 1u8..=3 {
        let reg = DbaRegister::new(true, n);
        g.bench_function(format!("checksummed_kernel_{n}"), |b| {
            let mut agg = Aggregator::new();
            agg.set_register(reg);
            let mut out = vec![0u8; reg.payload_bytes()];
            b.iter(|| {
                let mut acc = 0u32;
                for l in &data {
                    let (_, csum) = agg.aggregate_into_checksummed(black_box(l), &mut out);
                    acc = acc.wrapping_add(csum as u32);
                }
                acc
            })
        });
        g.bench_function(format!("checksummed_scalar_{n}"), |b| {
            let mut out = vec![0u8; reg.payload_bytes()];
            b.iter(|| {
                let mut acc = 0u32;
                for l in &data {
                    scalar::pack_line(black_box(l), n as usize, &mut out);
                    acc = acc.wrapping_add(scalar::line_checksum_bytewise(&out) as u32);
                }
                acc
            })
        });
    }
    g.finish();
}

/// Bulk accounted writes through the sharded coherence fabric. The run
/// length crosses the thread-spawn threshold, so `w2`/`w4` exercise the
/// scatter → parallel drain → seq-sorted merge pipeline end to end.
fn bench_sharded_write_run(c: &mut Criterion) {
    const N: usize = 8192;
    let mut g = c.benchmark_group("datapath_sharded");
    g.throughput(Throughput::Bytes((N * LINE_BYTES) as u64));
    for workers in [1usize, 2, 4] {
        g.bench_function(format!("write_run_w{workers}"), |b| {
            let mut fab = ShardedCoherence::new(ProtocolMode::Update, workers);
            fab.register_region(Addr(0), (N * LINE_BYTES) as u64);
            b.iter(|| fab.write_run_accounted(Agent::Cpu, 0, black_box(N), 32))
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_pack_pairs,
    bench_merge_pairs,
    bench_checksummed_pairs,
    bench_sharded_write_run
);
criterion_main!(benches);
