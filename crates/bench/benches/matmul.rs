//! Dense matmul kernel throughput (the DL substrate's hot loop).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_dl::ops::matmul;
use teco_dl::Tensor;

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for n in [32usize, 128, 256] {
        let a = Tensor::from_vec(&[n, n], (0..n * n).map(|i| (i as f32).sin()).collect());
        let b = Tensor::from_vec(&[n, n], (0..n * n).map(|i| (i as f32).cos()).collect());
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_function(format!("{n}x{n}"), |bch| {
            bch.iter(|| matmul(black_box(&a), black_box(&b)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_matmul);
criterion_main!(benches);
