//! End-to-end training-step throughput: the session's full parameter path
//! (aggregate → coherence accounting → link → device merge → fence) in
//! steady state, lines/second. This is the macro-benchmark the per-line
//! arena work must move: every line costs coherence-state, giant-cache and
//! checksum bookkeeping.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_core::{TecoConfig, TecoSession};
use teco_mem::LineData;
use teco_sim::SimTime;

const LINES: usize = 4096;

fn lines_with(tag: u32) -> Vec<LineData> {
    (0..LINES)
        .map(|i| {
            let mut l = LineData::zeroed();
            for w in 0..16 {
                l.set_word(w, ((i as u32) << 16) | tag.wrapping_add(w as u32));
            }
            l
        })
        .collect()
}

fn bench_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("step_throughput");
    g.throughput(Throughput::Elements(LINES as u64));

    // DBA active: 32-byte payloads, device-side merge into resident lines.
    g.bench_function("push_fence_dba", |b| {
        let mut s =
            TecoSession::new(TecoConfig::default().with_giant_cache_bytes(1 << 20)).unwrap();
        let (_, base) = s.alloc_tensor("params", (LINES * 64) as u64).unwrap();
        let warm = lines_with(0x4000);
        s.push_param_lines(base, &warm, SimTime::ZERO).unwrap();
        s.check_activation(500);
        let update = lines_with(0x5000);
        let mut now = s.cxlfence_params(SimTime::ZERO);
        b.iter(|| {
            s.push_param_lines(base, black_box(&update), now).unwrap();
            now = s.cxlfence_params(now);
            now
        });
    });

    // DBA off: full 64-byte lines, device-side overwrite.
    g.bench_function("push_fence_full", |b| {
        let mut s =
            TecoSession::new(TecoConfig::default().with_giant_cache_bytes(1 << 20)).unwrap();
        let (_, base) = s.alloc_tensor("params", (LINES * 64) as u64).unwrap();
        let update = lines_with(0x6000);
        let mut now = SimTime::ZERO;
        b.iter(|| {
            s.push_param_lines(base, black_box(&update), now).unwrap();
            now = s.cxlfence_params(now);
            now
        });
    });
    g.finish();
}

criterion_group!(benches, bench_step);
criterion_main!(benches);
