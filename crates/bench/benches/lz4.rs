//! LZ4 codec throughput on parameter-like byte streams (Table VIII).

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_compress::{compress, decompress};
use teco_sim::SimRng;

fn param_bytes(zero_frac: f64, n: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * 4);
    for _ in 0..n {
        let v = if rng.bernoulli(zero_frac) { 0f32 } else { rng.normal(0.0, 0.02) as f32 };
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bench_lz4(c: &mut Criterion) {
    let dense = param_bytes(0.0, 256 * 1024, 1);
    let sparse = param_bytes(0.42, 256 * 1024, 2);
    let mut g = c.benchmark_group("lz4");
    g.throughput(Throughput::Bytes(dense.len() as u64));
    g.bench_function("compress_dense_params", |b| b.iter(|| compress(black_box(&dense))));
    g.bench_function("compress_sparse_params", |b| b.iter(|| compress(black_box(&sparse))));
    let comp = compress(&sparse);
    g.bench_function("decompress_sparse_params", |b| {
        b.iter(|| decompress(black_box(&comp)).unwrap())
    });
    g.finish();
}

criterion_group!(benches, bench_lz4);
criterion_main!(benches);
