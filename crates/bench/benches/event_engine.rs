//! Discrete-event engine throughput (events/second).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use teco_sim::{Engine, Model, Scheduler, SimTime};

struct Ping {
    left: u64,
}
impl Model for Ping {
    type Event = ();
    fn handle(&mut self, _: SimTime, _: (), sched: &mut Scheduler<()>) {
        if self.left > 0 {
            self.left -= 1;
            sched.schedule_in(SimTime::from_ns(1), ());
        }
    }
}

fn bench_engine(c: &mut Criterion) {
    let n = 100_000u64;
    let mut g = c.benchmark_group("event_engine");
    g.throughput(Throughput::Elements(n));
    g.bench_function("chained_events", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Ping { left: n });
            eng.prime(SimTime::ZERO, ());
            eng.run();
            eng.events_processed()
        })
    });
    g.bench_function("heap_heavy_fanout", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Ping { left: 0 });
            for i in 0..n {
                eng.prime(SimTime::from_ns(i % 1000), ());
            }
            eng.run();
            eng.events_processed()
        })
    });
    g.bench_function("batch_primed_fanout", |b| {
        b.iter(|| {
            let mut eng = Engine::new(Ping { left: 0 });
            eng.prime_batch((0..n).map(|i| (SimTime::from_ns(i % 1000), ())));
            eng.run();
            eng.events_processed()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);
