//! DRAM model replay throughput and the §VIII-D RMW experiment timings.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use teco_mem::dram::{read_modify_write_trace, write_only_trace, Dram, DramConfig};
use teco_mem::Addr;

fn bench_dram(c: &mut Criterion) {
    let n = 16_384u64;
    let addrs: Vec<Addr> = (0..n).map(|i| Addr(i * 64)).collect();
    let cfg = DramConfig::gddr5();
    let mut g = c.benchmark_group("dram");
    g.throughput(Throughput::Elements(n));
    g.bench_function("write_only_replay", |b| {
        b.iter(|| Dram::replay(cfg, write_only_trace(&addrs)))
    });
    g.bench_function("rmw_replay", |b| {
        b.iter(|| Dram::replay(cfg, read_modify_write_trace(&addrs)))
    });
    g.finish();
}

criterion_group!(benches, bench_dram);
criterion_main!(benches);
