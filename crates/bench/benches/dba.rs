//! Criterion microbenchmarks for the DBA Aggregator/Disaggregator — the
//! software model of the logic §VIII-D synthesizes at ~1 ns/line.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_cxl::{Aggregator, DbaRegister, Disaggregator};
use teco_mem::{LineData, LINE_BYTES};

fn lines(n: usize) -> Vec<LineData> {
    (0..n)
        .map(|i| {
            let mut l = LineData::zeroed();
            for w in 0..16 {
                l.set_word(w, (i as u32).wrapping_mul(2654435761).wrapping_add(w as u32));
            }
            l
        })
        .collect()
}

fn bench_aggregate(c: &mut Criterion) {
    let data = lines(1024);
    let mut g = c.benchmark_group("aggregator");
    g.throughput(Throughput::Bytes((data.len() * LINE_BYTES) as u64));
    for dirty in [1u8, 2, 4] {
        g.bench_function(format!("dirty_bytes_{dirty}"), |b| {
            let mut agg = Aggregator::new();
            agg.set_register(DbaRegister::new(true, dirty));
            b.iter(|| {
                let mut total = 0usize;
                for l in &data {
                    total += agg.aggregate(black_box(l)).len();
                }
                total
            })
        });
    }
    g.finish();
}

fn bench_disaggregate(c: &mut Criterion) {
    let data = lines(1024);
    let reg = DbaRegister::new(true, 2);
    let mut agg = Aggregator::new();
    agg.set_register(reg);
    let payloads: Vec<Vec<u8>> = data.iter().map(|l| agg.aggregate(l)).collect();
    let mut g = c.benchmark_group("disaggregator");
    g.throughput(Throughput::Bytes((data.len() * LINE_BYTES) as u64));
    g.bench_function("merge_dirty2", |b| {
        let mut dis = Disaggregator::new();
        dis.set_register(reg);
        let mut resident = lines(1024);
        b.iter(|| {
            for (r, p) in resident.iter_mut().zip(&payloads) {
                dis.merge(black_box(p), r);
            }
        })
    });
    g.finish();
}

fn bench_aggregate_bulk(c: &mut Criterion) {
    let data = lines(1024);
    let mut g = c.benchmark_group("aggregator_bulk");
    g.throughput(Throughput::Bytes((data.len() * LINE_BYTES) as u64));
    for dirty in [1u8, 2, 4] {
        g.bench_function(format!("dirty_bytes_{dirty}"), |b| {
            let mut agg = Aggregator::new();
            agg.set_register(DbaRegister::new(true, dirty));
            let mut wire = Vec::new();
            b.iter(|| agg.aggregate_lines(black_box(&data), &mut wire))
        });
    }
    g.finish();
}

fn bench_disaggregate_bulk(c: &mut Criterion) {
    let data = lines(1024);
    let reg = DbaRegister::new(true, 2);
    let mut agg = Aggregator::new();
    agg.set_register(reg);
    let mut wire = Vec::new();
    agg.aggregate_lines(&data, &mut wire);
    let mut g = c.benchmark_group("disaggregator_bulk");
    g.throughput(Throughput::Bytes((data.len() * LINE_BYTES) as u64));
    g.bench_function("merge_dirty2", |b| {
        let mut dis = Disaggregator::new();
        dis.set_register(reg);
        let mut resident = lines(1024);
        b.iter(|| dis.disaggregate_lines(black_box(&wire), &mut resident))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_aggregate,
    bench_disaggregate,
    bench_aggregate_bulk,
    bench_disaggregate_bulk
);
criterion_main!(benches);
