//! Per-event coherence cost: the dense-arena engine against the retained
//! hash-map reference (`teco_cxl::refmaps`), measured in the same run so
//! the speedup claim never compares across machines or builds.
//!
//! The workload is the session's steady state: a region registered at
//! allocation time, then repeated `write_accounted` + `read` rounds over
//! its lines. The dense engine resolves each address with O(1) span
//! arithmetic; the reference hashes every access.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_cxl::{Agent, CoherenceEngine, HashCoherenceEngine, ProtocolMode};
use teco_mem::{Addr, LINE_BYTES};

const LINES: u64 = 4096;

fn bench_events(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence_event");
    // write_accounted + read per line per iteration.
    g.throughput(Throughput::Elements(2 * LINES));

    for (name, mode) in
        [("dense_update", ProtocolMode::Update), ("dense_invalidation", ProtocolMode::Invalidation)]
    {
        g.bench_function(name, |b| {
            let mut eng = CoherenceEngine::new(mode);
            eng.register_region(Addr(0), LINES * LINE_BYTES as u64);
            b.iter(|| {
                for i in 0..LINES {
                    let a = Addr(i * LINE_BYTES as u64);
                    eng.write_accounted(Agent::Cpu, black_box(a), 32);
                    eng.read(Agent::Device, a, LINE_BYTES);
                }
                eng.to_device.data_bytes
            })
        });
    }

    for (name, mode) in [
        ("hashref_update", ProtocolMode::Update),
        ("hashref_invalidation", ProtocolMode::Invalidation),
    ] {
        g.bench_function(name, |b| {
            let mut eng = HashCoherenceEngine::new(mode);
            b.iter(|| {
                for i in 0..LINES {
                    let a = Addr(i * LINE_BYTES as u64);
                    eng.write_accounted(Agent::Cpu, black_box(a), 32);
                    eng.read(Agent::Device, a, LINE_BYTES);
                }
                eng.to_device.data_bytes
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
