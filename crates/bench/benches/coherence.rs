//! Coherence-engine message throughput: update vs invalidation protocol.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_cxl::{Agent, CoherenceEngine, ProtocolMode};
use teco_mem::{Addr, LineData, LINE_BYTES};

fn bench_protocols(c: &mut Criterion) {
    let line = LineData::zeroed();
    let n = 4096u64;
    let mut g = c.benchmark_group("coherence");
    g.throughput(Throughput::Elements(n));
    for (name, mode) in [
        ("update_write_read", ProtocolMode::Update),
        ("invalidation_write_read", ProtocolMode::Invalidation),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| {
                let mut eng = CoherenceEngine::new(mode);
                for i in 0..n {
                    let a = Addr(i * 64);
                    eng.write(Agent::Cpu, black_box(a), line.bytes(), false);
                    eng.read(Agent::Device, a, LINE_BYTES);
                }
                eng.to_device.data_bytes
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
