//! Giant-cache bulk-merge cost: the arena-backed cache (in-place slab
//! merge) against the retained hash-map reference, which round-trips every
//! line through a lookup + scratch copy + insert. Same run, same inputs.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use teco_cxl::{DbaRegister, GiantCache, HashGiantCache};
use teco_mem::{LineData, LINE_BYTES};

const LINES: usize = 4096;

fn payload_for(per: usize) -> Vec<u8> {
    (0..per * LINES).map(|i| (i % 251) as u8).collect()
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("giant_cache_merge");
    g.throughput(Throughput::Elements(LINES as u64));
    let reg = DbaRegister::new(true, 2);
    let region_bytes = (LINES * LINE_BYTES) as u64;

    g.bench_function("dense_bulk_dba", |b| {
        let mut gc = GiantCache::new(region_bytes);
        let (_, base) = gc.alloc_region("params", region_bytes).unwrap();
        // Establish resident lines, then switch to 32-byte DBA merges.
        for i in 0..LINES {
            let a = teco_mem::Addr(base.0 + (i * LINE_BYTES) as u64);
            gc.write_line(a, LineData([0x11; LINE_BYTES])).unwrap();
        }
        gc.disaggregator.set_register(reg);
        let payload = payload_for(reg.payload_bytes());
        b.iter(|| {
            gc.apply_dba_payloads(base, LINES, black_box(&payload)).unwrap();
            gc.lines_written()
        })
    });

    g.bench_function("hashref_bulk_dba", |b| {
        let mut gc = HashGiantCache::new(region_bytes);
        let (_, base) = gc.alloc_region("params", region_bytes).unwrap();
        for i in 0..LINES {
            let a = teco_mem::Addr(base.0 + (i * LINE_BYTES) as u64);
            gc.write_line(a, LineData([0x11; LINE_BYTES])).unwrap();
        }
        gc.disaggregator.set_register(reg);
        let payload = payload_for(reg.payload_bytes());
        b.iter(|| {
            gc.apply_dba_payloads(base, LINES, black_box(&payload)).unwrap();
            gc.lines_written()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
