//! Zero-cost-when-off audit for the cluster's hot path.
//!
//! The shared counting allocator from `teco-testsupport` wraps the system
//! allocator. After a warm-up step has sized every device's wire buffer
//! and the arbiter scratch, the cluster's steady state — gradient-round
//! arbitration plus the pooled parameter broadcast fanned out to every
//! device — must not allocate at all with auditing off. The same loop
//! with auditing ON is then allowed (and expected) to allocate for the
//! per-device shadow maps, proving the counter observes this path.
//!
//! The gradient *push* path builds per-packet payloads and has always
//! allocated (same carve-out as the single-device audit in
//! `alloc_steady_state.rs`), so the loop here exercises the covered
//! paths: `fence_grads_all` (fences + one arbitration round) and
//! `broadcast_params` (bulk param push + fence on every device + one
//! host-budget broadcast charge).
//!
//! One `#[test]` only: the counter is global and the default harness runs
//! tests on multiple threads.

use teco_core::{ClusterConfig, ClusterSession, TecoConfig};
use teco_mem::LineData;
use teco_testsupport::{allocations, min_allocations, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const DEVICES: usize = 4;
const LINES: u64 = 128;

fn line_with(v: u32) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16 {
        l.set_word(w, v.wrapping_add(w as u32));
    }
    l
}

fn step_loop(c: &mut ClusterSession, lines: &[LineData]) {
    c.fence_grads_all();
    c.broadcast_params(lines).expect("mapped run must broadcast");
}

#[test]
fn cluster_steady_state_allocates_nothing_with_audit_off() {
    let base = TecoConfig::default().with_act_aft_steps(0).with_giant_cache_bytes(1 << 20);
    assert!(!base.audit, "audit must default off");
    let mut c = ClusterSession::new(ClusterConfig::new(base, DEVICES)).expect("config validates");
    c.alloc_params(LINES).expect("fits");
    c.check_activation_all();
    let lines: Vec<LineData> = (0..LINES).map(|i| line_with(0x7100_0000 + i as u32)).collect();
    // Warm-up sizes every device's wire buffer and the arbiter scratch.
    step_loop(&mut c, &lines);
    let off_allocs = min_allocations(5, || {
        for _ in 0..10 {
            step_loop(&mut c, &lines);
        }
    });
    assert_eq!(off_allocs, 0, "audit-off cluster steady state must not allocate");

    // Control: the same loop with the auditor ON does allocate (every
    // device's shadow map populates on the first broadcast) — proving the
    // counter watches this path and the zero above is meaningful.
    let base = TecoConfig::default()
        .with_act_aft_steps(0)
        .with_giant_cache_bytes(1 << 20)
        .with_audit(true);
    let mut audited =
        ClusterSession::new(ClusterConfig::new(base, DEVICES)).expect("audited config validates");
    audited.alloc_params(LINES).expect("fits");
    audited.check_activation_all();
    let on_allocs = allocations(|| {
        step_loop(&mut audited, &lines);
    });
    assert!(on_allocs > 0, "audited first broadcast must populate the shadows");
    assert!(audited.audit_status().is_none(), "every device shadow must match");
}
