//! Fabric-wide snapshot/resume acceptance: killing an H-host fabric at
//! any step boundary — including `AfterGradFence`, which sits *after* the
//! inter-host all-reduce, so mid-flight collective accounting is in the
//! image — and restoring every host cluster plus the collective engine
//! from nothing but the serialized bytes must reproduce the uninterrupted
//! run's report byte-for-byte.

use teco_core::resume::{KillPoint, StepBoundary};
use teco_core::{run_fabric_resumed, run_fabric_uninterrupted, FabricWorkload};

const BOUNDARIES: [StepBoundary; 3] =
    [StepBoundary::AfterGradFence, StepBoundary::AfterActivation, StepBoundary::AfterParamFence];

#[test]
fn fabric_resume_is_byte_identical_at_every_boundary() {
    for hosts in [1usize, 2, 4] {
        let mut w = FabricWorkload::small(hosts, 2, 42);
        w.base.steps = 3;
        let baseline = run_fabric_uninterrupted(&w).unwrap();
        let want = serde_json::to_string(&baseline.report).unwrap();
        for step in 0..w.base.steps {
            for boundary in BOUNDARIES {
                let resumed = run_fabric_resumed(&w, KillPoint { step, boundary }).unwrap();
                assert_eq!(resumed.snapshots_taken, 1);
                assert_eq!(resumed.restores, 1);
                assert!(resumed.snapshot_bytes > 0);
                let got = serde_json::to_string(&resumed.report).unwrap();
                assert_eq!(
                    got, want,
                    "H={hosts} fabric diverged after kill at step {step} {boundary:?}"
                );
            }
        }
    }
}

#[test]
fn fabric_resume_preserves_collective_accounting_mid_run() {
    // Kill right after the exchange of a middle step: the restored
    // collective engine must carry the media arbiter horizon and fan-in
    // counters, or the remaining steps' exchange times drift.
    let mut w = FabricWorkload::small(4, 2, 7);
    w.base.steps = 6;
    let baseline = run_fabric_uninterrupted(&w).unwrap().report;
    let resumed =
        run_fabric_resumed(&w, KillPoint { step: 3, boundary: StepBoundary::AfterGradFence })
            .unwrap()
            .report;
    assert_eq!(baseline.exchange_ns, resumed.exchange_ns);
    assert_eq!(baseline.fanin_saved_bytes, resumed.fanin_saved_bytes);
    assert_eq!(baseline.global_grad_checksum, resumed.global_grad_checksum);
    assert!(baseline.fanin_saved_bytes > 0, "H=4 gathers must dedup media reads");
}
