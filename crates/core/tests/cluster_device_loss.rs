//! Device-loss fault-domain proofs: kill injection at non-boundary
//! points surfaces typed errors (never a panic), a boundary snapshot
//! taken with a device down still resumes bit-identically, the watchdog
//! is what bounds detection (disabling it hangs the broadcast typed),
//! and hot readmission reconverges to the never-failed golden run even
//! when media faults are firing at the same time.

use teco_core::{
    churn_grad_line, churn_param_line, run_churn, ChurnWorkload, ClusterConfig, ClusterSession,
    SessionError, TecoConfig,
};

const GRAD_LINES: u64 = 8;
const PARAM_LINES: u64 = 32;

fn small_cluster(devices: usize) -> ClusterSession {
    let cfg = ClusterConfig::new(
        TecoConfig::default().with_act_aft_steps(4).with_giant_cache_bytes(1 << 20),
        devices,
    );
    let mut c = ClusterSession::new(cfg).unwrap();
    c.alloc_params(PARAM_LINES).unwrap();
    c.alloc_grads(GRAD_LINES).unwrap();
    c
}

/// One full step with the churn protocol: reroute declared-dead shards
/// through survivors, absorb typed kill-step errors, fence (watchdog),
/// flush held shards, activate, broadcast.
fn drive_step(c: &mut ClusterSession, step: u64) {
    let n = c.config().devices;
    let survivors: Vec<usize> = (0..n).filter(|&d| c.is_alive(d)).collect();
    let mut held: Vec<usize> = Vec::new();
    for d in 0..n {
        if c.is_detected_down(d) {
            for i in 0..GRAD_LINES {
                let via = survivors[(i as usize) % survivors.len()];
                c.push_grad_shard(via, i, churn_grad_line(d as u64, step, i)).unwrap();
            }
            continue;
        }
        let mut failed = false;
        for i in 0..GRAD_LINES {
            match c.push_grad_shard(d, i, churn_grad_line(d as u64, step, i)) {
                Ok(()) => {}
                Err(e) => {
                    assert!(
                        matches!(e.root(), SessionError::DeviceDown { .. }),
                        "kill must surface typed, got: {e}"
                    );
                    failed = true;
                    break;
                }
            }
        }
        if failed {
            held.push(d);
        }
    }
    c.fence_grads_all();
    if !held.is_empty() {
        let survivors: Vec<usize> = (0..n).filter(|&d| c.is_alive(d)).collect();
        for &dead in &held {
            for i in 0..GRAD_LINES {
                let via = survivors[(i as usize) % survivors.len()];
                c.push_grad_shard(via, i, churn_grad_line(dead as u64, step, i)).unwrap();
            }
        }
        c.fence_grads_all();
    }
    c.check_activation_all();
    let lines: Vec<_> = (0..PARAM_LINES).map(|i| churn_param_line(step, i)).collect();
    c.broadcast_params(&lines).unwrap();
}

#[test]
fn push_to_dead_device_fails_typed_with_context() {
    let mut c = small_cluster(3);
    drive_step(&mut c, 0);
    c.kill_device(1);
    let err = c.push_grad_shard(1, 0, churn_grad_line(1, 1, 0)).unwrap_err();
    match err {
        SessionError::DeviceDown { device, .. } => assert_eq!(device, 1),
        other => panic!("expected DeviceDown, got {other}"),
    }
}

#[test]
fn mid_fence_kill_is_detected_not_panicked() {
    // The shard lands, then the device dies before its fence ack: the
    // next cluster fence's watchdog declares it down — no panic, and the
    // already-reduced shard stays reduced.
    let mut c = small_cluster(3);
    drive_step(&mut c, 0);
    for d in 0..3 {
        for i in 0..GRAD_LINES {
            c.push_grad_shard(d, i, churn_grad_line(d as u64, 1, i)).unwrap();
        }
    }
    c.kill_device(2);
    let newly = c.fence_grads_all();
    assert_eq!(newly, vec![2]);
    assert!(c.is_detected_down(2));
    assert_eq!(c.down_events(), 1);
    assert_eq!(c.pool().reduced_lines(), 2 * 3 * GRAD_LINES);
    // The step completes on the survivors.
    c.check_activation_all();
    let lines: Vec<_> = (0..PARAM_LINES).map(|i| churn_param_line(1, i)).collect();
    c.broadcast_params(&lines).unwrap();
}

#[test]
fn mid_broadcast_kill_fails_typed_then_recovers_at_next_fence() {
    // The device dies after the gradient fence, before the broadcast: the
    // broadcast cannot complete against an undeclared-dead device and
    // must say so typed. The next fence declares it; the broadcast then
    // proceeds on the survivors.
    let mut c = small_cluster(3);
    drive_step(&mut c, 0);
    for d in 0..3 {
        for i in 0..GRAD_LINES {
            c.push_grad_shard(d, i, churn_grad_line(d as u64, 1, i)).unwrap();
        }
    }
    c.fence_grads_all();
    c.kill_device(0);
    c.check_activation_all();
    let lines: Vec<_> = (0..PARAM_LINES).map(|i| churn_param_line(1, i)).collect();
    let err = c.broadcast_params(&lines).unwrap_err();
    assert!(matches!(err.root(), SessionError::DeviceDown { device: 0, .. }), "got: {err}");
    let msg = err.to_string();
    assert!(msg.contains("device 0") && msg.contains("params"), "context-poor error: {msg}");
    // Watchdog runs at the fence point; afterwards the broadcast succeeds.
    let newly = c.fence_grads_all();
    assert_eq!(newly, vec![0]);
    c.broadcast_params(&lines).unwrap();
    assert_eq!(c.alive_count(), 2);
}

#[test]
fn disabled_watchdog_never_declares_and_errors_stay_typed() {
    let cfg = ClusterConfig::new(
        TecoConfig::default().with_act_aft_steps(4).with_giant_cache_bytes(1 << 20),
        2,
    )
    .with_watchdog_deadline_ns(0);
    let mut c = ClusterSession::new(cfg).unwrap();
    c.alloc_params(PARAM_LINES).unwrap();
    c.alloc_grads(GRAD_LINES).unwrap();
    c.kill_device(1);
    for i in 0..GRAD_LINES {
        c.push_grad_shard(0, i, churn_grad_line(0, 0, i)).unwrap();
    }
    let newly = c.fence_grads_all();
    assert!(newly.is_empty(), "deadline 0 must disable the watchdog");
    assert!(!c.is_detected_down(1));
    c.check_activation_all();
    let lines: Vec<_> = (0..PARAM_LINES).map(|i| churn_param_line(0, i)).collect();
    // With nobody to declare the device down, the broadcast hangs — as a
    // typed error, not a panic or a deadlock.
    let err = c.broadcast_params(&lines).unwrap_err();
    assert!(matches!(err.root(), SessionError::DeviceDown { device: 1, .. }), "got: {err}");
}

#[test]
fn boundary_snapshot_with_dead_device_resumes_bit_identically() {
    // Kill at step 2, snapshot at the step-4 boundary (device down and
    // declared), restore from nothing but the JSON bytes, and run both
    // clusters to step 8: reports must match byte for byte.
    let mut a = small_cluster(4);
    for step in 0..2 {
        drive_step(&mut a, step);
    }
    a.kill_device(3);
    for step in 2..4 {
        drive_step(&mut a, step);
    }
    assert!(a.is_detected_down(3));
    let json = serde_json::to_string(&a.snapshot()).unwrap();
    let snap = serde_json::from_str(&json).unwrap();
    let mut b = ClusterSession::from_snapshot(&snap).unwrap();
    for step in 4..8 {
        drive_step(&mut a, step);
        drive_step(&mut b, step);
    }
    assert_eq!(
        serde_json::to_string(&a.report()).unwrap(),
        serde_json::to_string(&b.report()).unwrap(),
        "resume from a mid-outage boundary snapshot must be bit-identical"
    );
}

#[test]
fn snapshot_then_readmit_resumes_bit_identically() {
    let mut a = small_cluster(4);
    a.kill_device(0);
    for step in 0..3 {
        drive_step(&mut a, step);
    }
    let json = serde_json::to_string(&a.snapshot()).unwrap();
    let mut b = ClusterSession::from_snapshot(&serde_json::from_str(&json).unwrap()).unwrap();
    a.readmit_device(0).unwrap();
    b.readmit_device(0).unwrap();
    for step in 3..8 {
        drive_step(&mut a, step);
        drive_step(&mut b, step);
    }
    assert_eq!(
        serde_json::to_string(&a.report()).unwrap(),
        serde_json::to_string(&b.report()).unwrap(),
        "readmission after restore must replay identically"
    );
    assert_eq!(a.report().readmits, 1);
}

#[test]
fn kill_device_zero_readmits_and_reconverges() {
    // Device 0 is the broadcast's wire-cost reference; losing and
    // readmitting it must still converge to the golden run.
    let golden = run_churn(&ChurnWorkload::small(4)).unwrap();
    let churn = run_churn(&ChurnWorkload::small(4).with_kill(0, 3).with_readmit_after(1)).unwrap();
    assert_eq!(churn.report.readmits, 1);
    assert!(churn.content_matches(&golden));
}

#[test]
fn churn_under_media_faults_still_reconverges() {
    // Device loss and persistent media faults at the same time: the
    // readmitted cluster must still land on the golden run's bytes.
    let ras = teco_cxl::RasConfig {
        media_faults_per_tick: 1.0,
        scrub_lines_per_tick: 8,
        spare_lines: 64,
        seed: 9,
    };
    let mut golden_w = ChurnWorkload::small(4);
    golden_w.cfg.base = golden_w.cfg.base.with_ras(ras);
    let golden = run_churn(&golden_w).unwrap();
    let churn_w = {
        let mut w = golden_w.clone().with_kill(2, 4).with_readmit_after(2);
        w.steps = 12;
        w
    };
    let churn = run_churn(&churn_w).unwrap();
    assert!(golden.report.ras.faults_injected > 0, "RAS must actually fire");
    assert_eq!(churn.report.readmits, 1);
    assert!(
        churn.content_matches(&golden),
        "media faults heal to clean content even across a readmission: \
         pool {:#x} vs {:#x}",
        churn.pool_checksum,
        golden.pool_checksum
    );
}
