//! Property: persistent media faults are contained by the fault domain.
//!
//! A RAS-enabled cluster seeds persistent uncorrectable faults into
//! every device's giant-cache media (per-device streams forked off the
//! base seed), scrubs, retires, and rebuilds — and at the end of the run
//! every device's parameter bytes and the pooled optimizer's bytes must
//! equal the clean (RAS-off) run's exactly. A fault on one device's
//! regions never alters another device's parameters, and never admits a
//! poisoned byte into any parameters at all: the detection path always
//! rebuilds the line from the clean pooled copy before use.

use proptest::prelude::*;
use teco_core::{run_churn, ChurnWorkload};
use teco_cxl::RasConfig;

fn churn_with_ras(devices: usize, rate_milli: u64, seed: u64) -> ChurnWorkload {
    let mut w = ChurnWorkload::small(devices);
    w.cfg.base = w.cfg.base.clone().with_ras(RasConfig {
        media_faults_per_tick: rate_milli as f64 / 1000.0,
        scrub_lines_per_tick: 8,
        spare_lines: 64,
        seed,
    });
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// N ∈ {2, 4}, fault rates from occasional to several per step: the
    /// faulted cluster's content converges to the clean cluster's on
    /// every device, and the RAS machinery demonstrably fired.
    #[test]
    fn media_faults_never_alter_any_devices_parameters(
        devices in prop::sample::select(vec![2usize, 4]),
        rate_milli in 250u64..3000,
        seed in 0u64..u64::MAX,
    ) {
        let clean = run_churn(&ChurnWorkload::small(devices)).unwrap();
        let faulted = run_churn(&churn_with_ras(devices, rate_milli, seed)).unwrap();
        prop_assert!(faulted.report.ras.faults_injected > 0,
            "fault rate {rate_milli}/1000 per tick must inject over 12 steps");
        prop_assert_eq!(faulted.pool_checksum, clean.pool_checksum,
            "pooled optimizer bytes must be untouched by media faults");
        for d in 0..devices {
            prop_assert_eq!(faulted.device_checksums[d], clean.device_checksums[d],
                "device {}'s parameters diverged under media faults", d);
        }
    }

    /// Zero-rate RAS is bit-identical to RAS off — the gate that keeps
    /// every pre-RAS report byte-stable.
    #[test]
    fn zero_rate_ras_is_off(seed in 0u64..u64::MAX) {
        let off = run_churn(&ChurnWorkload::small(2)).unwrap();
        let mut w = ChurnWorkload::small(2);
        w.cfg.base = w.cfg.base.clone().with_ras(RasConfig {
            media_faults_per_tick: 0.0,
            scrub_lines_per_tick: 8,
            spare_lines: 64,
            seed,
        });
        let zero = run_churn(&w).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&off.report).unwrap(),
            serde_json::to_string(&zero.report).unwrap()
        );
    }
}
