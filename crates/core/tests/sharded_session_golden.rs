//! Session-level golden equivalence for the sharded coherence fabric:
//! a full TECO session driven with `set_coherence_workers(N)` must
//! produce byte-identical snapshots, stats, and fault reports to the
//! serial default — over fault-free *and* fault-injected configs, both
//! protocol modes, with bulk pushes, recovery-ladder pushes, gradient
//! pushes, fences, and audits all in the mix.

use teco_core::{TecoConfig, TecoSession};
use teco_cxl::{FaultConfig, ProtocolMode};
use teco_mem::{Addr, LineData, LINE_BYTES};
use teco_sim::SimTime;

const REGION_LINES: u64 = 3000;

fn line_with(seed: u32) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16 {
        l.set_word(
            w,
            seed.wrapping_mul(0x9E37_79B9).wrapping_add((w as u32).wrapping_mul(0x85EB_CA6B)),
        );
    }
    l
}

/// Drive a deterministic multi-step workload and return the serialized
/// session snapshot plus the headline live stats.
fn run_workload(cfg: TecoConfig, workers: usize) -> (String, String) {
    let mut s = TecoSession::new(cfg).expect("session");
    s.set_coherence_workers(workers);
    assert_eq!(s.coherence_workers(), workers.max(1));
    let (_id, base) = s.alloc_tensor("params", REGION_LINES * LINE_BYTES as u64).expect("alloc");
    let mut now = SimTime::ZERO;
    for step in 0..4u64 {
        s.check_activation(step);
        // Bulk run covering most of the region (faults force the guarded
        // per-line ladder instead — both paths route through the fabric).
        let lines: Vec<LineData> =
            (0..2000).map(|i| line_with((step as u32) << 16 | i as u32)).collect();
        s.push_param_lines(base, &lines, now).expect("bulk push");
        // Single-line pushes on the region tail.
        for i in 0..32u64 {
            let a = Addr(base.0 + (2000 + i) * LINE_BYTES as u64);
            s.push_param_line(a, line_with(0xDEAD_0000 | i as u32), now).expect("single push");
        }
        // Gradients flow device→CPU through the fabric's packet path.
        for i in 0..16u64 {
            let a = Addr(base.0 + i * LINE_BYTES as u64);
            s.push_grad_line(a, line_with(0xBEEF_0000 | i as u32), now).expect("grad push");
        }
        now = s.cxlfence_params(now);
        now = s.cxlfence_grads(now);
    }
    let snap_json = serde_json::to_string(&s.snapshot()).expect("serialize snapshot");
    let stats = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{:?}",
        s.stats(),
        s.coherence().to_device(),
        s.coherence().to_host(),
        s.coherence().snoop_stats(),
        s.fault_report(),
        s.coherence().tracked_lines(),
        s.fence_stats(),
    );
    (snap_json, stats)
}

fn faulty(cfg: TecoConfig) -> TecoConfig {
    cfg.with_fault(FaultConfig {
        crc_error_rate: 0.2,
        stall_rate: 0.1,
        stall_ns: 40,
        dba_checksum_error_rate: 0.15,
        poison_rate: 0.05,
        retry_limit: 64,
        seed: 77,
        ..FaultConfig::off()
    })
}

fn assert_workers_golden(cfg: TecoConfig) {
    let (want_snap, want_stats) = run_workload(cfg.clone(), 1);
    for workers in [2usize, 3, 4] {
        let (snap, stats) = run_workload(cfg.clone(), workers);
        assert_eq!(stats, want_stats, "live stats diverged at workers={workers}");
        assert_eq!(snap, want_snap, "snapshot bytes diverged at workers={workers}");
    }
}

fn base_cfg() -> TecoConfig {
    TecoConfig::default().with_giant_cache_bytes(1 << 22).with_act_aft_steps(1)
}

#[test]
fn fault_free_update_mode_sessions_are_worker_invariant() {
    assert_workers_golden(base_cfg());
}

#[test]
fn fault_free_invalidation_mode_sessions_are_worker_invariant() {
    assert_workers_golden(base_cfg().with_protocol(ProtocolMode::Invalidation));
}

#[test]
fn faulty_update_mode_sessions_are_worker_invariant() {
    assert_workers_golden(faulty(base_cfg()));
}

#[test]
fn faulty_invalidation_mode_sessions_are_worker_invariant() {
    assert_workers_golden(faulty(base_cfg().with_protocol(ProtocolMode::Invalidation)));
}

#[test]
fn audited_sharded_session_passes_fence_audits() {
    // The paranoid auditor walks the serial-equivalent engine view; a
    // sharded session must satisfy every cross-module invariant at each
    // fence, and its audited snapshot must match the serial one.
    let cfg = base_cfg().with_audit(true);
    assert_workers_golden(cfg);
}

#[test]
fn sharded_snapshot_restores_into_serial_session() {
    // Checkpoint under 4 workers, restore (always serial), continue, and
    // compare against a never-sharded run of the same schedule.
    let run_tail = |mut s: TecoSession, mut now: SimTime| {
        let base = Addr(0);
        for i in 0..64u64 {
            let a = Addr(base.0 + i * LINE_BYTES as u64);
            s.push_param_line(a, line_with(0xAB00 | i as u32), now).unwrap();
        }
        now = s.cxlfence_params(now);
        let _ = now;
        serde_json::to_string(&s.snapshot()).unwrap()
    };

    let mk = |workers: usize| {
        let mut s = TecoSession::new(base_cfg()).unwrap();
        s.set_coherence_workers(workers);
        let (_id, base) = s.alloc_tensor("params", REGION_LINES * LINE_BYTES as u64).unwrap();
        s.check_activation(5);
        let lines: Vec<LineData> = (0..1500).map(|i| line_with(i as u32)).collect();
        s.push_param_lines(base, &lines, SimTime::ZERO).unwrap();
        s
    };

    let sharded = mk(4);
    let restored = TecoSession::from_snapshot(&sharded.snapshot()).unwrap();
    assert_eq!(restored.coherence_workers(), 1, "restore is always serial");
    let serial = mk(1);
    assert_eq!(run_tail(restored, SimTime::ZERO), run_tail(serial, SimTime::ZERO));
}
