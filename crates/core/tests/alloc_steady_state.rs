//! Zero-cost-when-off audit for the session's hot path.
//!
//! The shared counting allocator from `teco-testsupport` wraps the system
//! allocator. After a warm-up pass has sized the session's reused wire
//! buffer, the bulk parameter-push-and-fence loop must not allocate at all
//! with auditing off — the paranoid auditor's shadow machinery may cost
//! nothing on the legacy path. The same loop with auditing ON is then
//! allowed (and expected) to allocate for the shadow map, which doubles as
//! proof the counter actually observes this code path.
//!
//! One `#[test]` only: the counter is global and the default harness runs
//! tests on multiple threads.

use teco_core::{TecoConfig, TecoSession};
use teco_mem::{Addr, LineData, LINE_BYTES};
use teco_sim::SimTime;
use teco_testsupport::{allocations, min_allocations, CountingAlloc};

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const LINES: usize = 128;

fn line_with(v: u32) -> LineData {
    let mut l = LineData::zeroed();
    for w in 0..16 {
        l.set_word(w, v.wrapping_add(w as u32));
    }
    l
}

// The zero-alloc contract covers the bulk parameter path and the fences
// (the gradient path builds per-packet payloads and has always allocated;
// it is outside this guarantee).
fn push_loop(s: &mut TecoSession, base: Addr, lines: &[LineData]) {
    s.push_param_lines(base, lines, SimTime::ZERO).expect("mapped run must push");
    s.cxlfence_grads(SimTime::ZERO);
    s.cxlfence_params(SimTime::ZERO);
}

#[test]
fn session_steady_state_allocates_nothing_with_audit_off() {
    let cfg = TecoConfig::default().with_act_aft_steps(0).with_giant_cache_bytes(1 << 20);
    assert!(!cfg.audit, "audit must default off");
    let mut s = TecoSession::new(cfg).expect("default config validates");
    let (_, base) = s.alloc_tensor("params", (LINES * LINE_BYTES) as u64).expect("fits");
    s.check_activation(0);
    let lines: Vec<LineData> = (0..LINES).map(|i| line_with(0x6100_0000 + i as u32)).collect();
    // Warm-up sizes the wire buffer and the arena chunks.
    push_loop(&mut s, base, &lines);
    let off_allocs = min_allocations(5, || {
        for _ in 0..10 {
            push_loop(&mut s, base, &lines);
        }
    });
    assert_eq!(off_allocs, 0, "audit-off session steady state must not allocate");

    // Control: the same loop with the auditor ON does allocate (the shadow
    // map exists and every fence walks it) — proving the counter watches
    // this path and the zero above is meaningful.
    let cfg = TecoConfig::default()
        .with_act_aft_steps(0)
        .with_giant_cache_bytes(1 << 20)
        .with_audit(true);
    let mut audited = TecoSession::new(cfg).expect("audited config validates");
    let (_, abase) = audited.alloc_tensor("params", (LINES * LINE_BYTES) as u64).expect("fits");
    audited.check_activation(0);
    let on_allocs = allocations(|| {
        push_loop(&mut audited, abase, &lines);
    });
    assert!(on_allocs > 0, "audited first pass must populate the shadow");
    audited.run_audit().expect("shadow must match the device");
}
