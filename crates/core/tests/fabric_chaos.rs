//! Acceptance suite for the fabric chaos harness (ISSUE 9):
//!
//! - zero-fault chaos is byte-identical to the PR 8 fault-free fabric;
//! - a kill at **every** chunk boundary of an H=4 all-reduce is
//!   detected by the watchdog and the regrouped fabric reduces
//!   bit-identically to a never-failed H=3 fabric, with byte-identical
//!   final parameters;
//! - a readmitted host converges byte-identically;
//! - zero poisoned bytes are admitted under any swept media-fault rate;
//! - a mid-collective snapshot at a chunk boundary resumes
//!   bit-identically for H ∈ {2, 4} (satellite: fabric snapshot/resume
//!   inside the all-reduce).

use teco_core::fabric::run_fabric_uninterrupted;
use teco_core::fabric_chaos::{
    run_fabric_chaos, run_fabric_chaos_chunked, run_fabric_chaos_resumed, ChunkPoint,
    FabricChaosWorkload, HostKillSpec,
};
use teco_cxl::CollectivePhase;

const PHASES: [CollectivePhase; 2] = [CollectivePhase::ReduceScatter, CollectivePhase::AllGather];

/// A small chaos workload with fine chunking (64-byte chunks over the
/// 512-byte pooled accumulator) so every phase has H chunk boundaries
/// per shard, and few steps so the boundary sweep stays fast.
fn small_chaos(hosts: usize, seed: u64) -> FabricChaosWorkload {
    let mut w = FabricChaosWorkload::small(hosts, 2, seed);
    w.fabric.base.steps = 4;
    w.fabric.collective.chunk_bytes = 64;
    w
}

#[test]
fn zero_fault_chaos_is_byte_identical_to_the_fabric_path() {
    for hosts in [1usize, 2, 4] {
        let w = small_chaos(hosts, 21);
        assert!(!w.chunked(), "nothing armed must route through the plain fabric loop");
        let chaos = run_fabric_chaos(&w).unwrap();
        let fabric = run_fabric_uninterrupted(&w.fabric).unwrap();
        assert_eq!(
            serde_json::to_string(&chaos.outcome.report).unwrap(),
            serde_json::to_string(&fabric.report).unwrap(),
            "H={hosts}: zero-fault chaos report must be byte-identical to PR 8's"
        );
        assert_eq!(chaos.snapshots_taken, 0);
        assert!(chaos.outcome.detections.is_empty());
    }
}

#[test]
fn kill_at_every_chunk_boundary_regroups_bit_identically_to_h3() {
    let golden = run_fabric_chaos(&small_chaos(3, 33)).unwrap().outcome;
    let kill_step = 1u64;
    // 512 B / 4 shards = 128 B per shard = 2 chunks of 64 B → 8 flat
    // items per phase at H=4.
    for phase in PHASES {
        for chunk in 0..8u64 {
            let w = small_chaos(4, 33).with_kill(HostKillSpec {
                host: 3,
                step: kill_step,
                phase,
                chunk,
            });
            let out = run_fabric_chaos(&w).unwrap().outcome;
            assert_eq!(out.detections.len(), 1, "{phase:?} chunk {chunk}");
            let d = out.detections[0];
            assert_eq!((d.host, d.step, d.phase), (3, kill_step, phase));
            assert!(d.time_ns > 0);
            assert_eq!(out.fstats.watchdog_timeouts, 1);
            assert_eq!(out.fstats.hosts_lost, 1);
            assert_eq!(out.regroups, 1);
            assert_eq!(out.live_hosts, 3);
            assert_eq!(out.poisoned_admitted, 0);
            // Rung 2: from the kill step on, every reduced gradient is
            // bit-identical to the never-failed H=3 fabric's…
            assert_eq!(
                out.step_grad_checksums[kill_step as usize..],
                golden.step_grad_checksums[kill_step as usize..],
                "{phase:?} chunk {chunk}: regrouped reduce diverged from the H=3 run"
            );
            // …and the final parameters are byte-identical outright
            // (the shared draw stream never depended on the dead host).
            assert_eq!(out.param_checksum, golden.param_checksum, "{phase:?} chunk {chunk}");
        }
    }
}

#[test]
fn readmitted_host_converges_byte_identically() {
    let mut w = small_chaos(4, 44);
    w.fabric.base.steps = 6;
    let mut golden_w = small_chaos(4, 44);
    golden_w.fabric.base.steps = 6;
    let golden = run_fabric_chaos_chunked(&golden_w).unwrap().outcome;

    let w = w
        .with_kill(HostKillSpec {
            host: 3,
            step: 1,
            phase: CollectivePhase::ReduceScatter,
            chunk: 2,
        })
        .with_readmit_after(1);
    let out = run_fabric_chaos(&w).unwrap().outcome;
    assert_eq!(out.readmissions, 1);
    assert_eq!(out.live_hosts, 4, "the lost host must be back in the live set");
    // The readmitted host's replicas hold exactly the bytes they would
    // hold had it never died: same params (caught up from pooled
    // state), same last-step gradient lines (fast-forwarded streams).
    assert_eq!(
        out.device_checksums, golden.device_checksums,
        "readmitted host's giant-cache content diverged from the never-failed run"
    );
    assert_eq!(out.param_checksum, golden.param_checksum);
    // Post-readmission reduces include the returned host again.
    assert_eq!(out.report.host_reports.len(), 4);
}

#[test]
fn no_poison_admitted_under_any_swept_media_rate() {
    let golden = run_fabric_chaos(&small_chaos(4, 55)).unwrap().outcome;
    for rate in [0.25, 1.0, 4.0] {
        let w = small_chaos(4, 55).with_media_faults(rate);
        let out = run_fabric_chaos(&w).unwrap().outcome;
        assert_eq!(out.poisoned_admitted, 0, "rate {rate}: poison reached a reduction");
        // Detected staging faults are re-served from the pristine source
        // replica, so the reduced data never moves.
        assert_eq!(
            out.step_grad_checksums, golden.step_grad_checksums,
            "rate {rate}: media faults changed the reduced bytes"
        );
        assert_eq!(out.param_checksum, golden.param_checksum);
        if rate >= 1.0 {
            assert!(out.ras.faults_injected > 0, "rate {rate} injected nothing");
        }
    }
}

#[test]
fn retirement_pressure_trips_the_ring_fallback_at_the_fabric_level() {
    let golden = run_fabric_chaos(&small_chaos(4, 66)).unwrap().outcome;
    let w = small_chaos(4, 66).with_media_faults(8.0).with_ring_fallback(1);
    let out = run_fabric_chaos(&w).unwrap().outcome;
    assert!(out.fstats.ring_fallbacks > 0, "retirement pressure never tripped rung 3");
    assert_eq!(out.poisoned_admitted, 0);
    // The ring fallback reduces the same data, just over a different
    // topology.
    assert_eq!(out.step_grad_checksums, golden.step_grad_checksums);
    assert_eq!(out.param_checksum, golden.param_checksum);
}

#[test]
fn mid_collective_resume_is_bit_identical_for_h2_and_h4() {
    for hosts in [2usize, 4] {
        let w = small_chaos(hosts, 77).with_port_fault_rate(0.25);
        let baseline = run_fabric_chaos_chunked(&w).unwrap();
        for phase in PHASES {
            for chunk in [0u64, 1, 3] {
                let at = ChunkPoint { step: 1, phase, chunk };
                let resumed = run_fabric_chaos_resumed(&w, at).unwrap();
                assert_eq!(resumed.snapshots_taken, 1, "H={hosts} {phase:?} chunk {chunk}");
                assert_eq!(resumed.restores, 1);
                assert!(resumed.snapshot_bytes > 0);
                assert_eq!(
                    serde_json::to_string(&resumed.outcome).unwrap(),
                    serde_json::to_string(&baseline.outcome).unwrap(),
                    "H={hosts} {phase:?} chunk {chunk}: mid-collective resume diverged"
                );
            }
        }
    }
}

#[test]
fn zero_fault_chunked_data_matches_the_plain_path() {
    // The chunk-granular engine and the closed-form collective must
    // agree on every piece of training data (timing models differ).
    for hosts in [2usize, 3, 4] {
        let w = small_chaos(hosts, 88);
        let plain = run_fabric_chaos(&w).unwrap().outcome;
        let chunked = run_fabric_chaos_chunked(&w).unwrap().outcome;
        assert_eq!(chunked.step_grad_checksums, plain.step_grad_checksums);
        assert_eq!(chunked.param_checksum, plain.param_checksum);
        assert_eq!(chunked.device_checksums, plain.device_checksums);
        assert_eq!(chunked.report.global_grad_checksum, plain.report.global_grad_checksum);
        assert_eq!(chunked.report.pool_port_bytes, plain.report.pool_port_bytes);
        assert_eq!(chunked.report.pool_media_bytes, plain.report.pool_media_bytes);
    }
}
