//! Per-tensor-class tiered placement policies and the session-side
//! placement engine.
//!
//! The mechanism (tiers, capacities, heat, the step-boundary migration
//! planner) lives in [`teco_mem::tier`]; this module is the policy layer:
//! which tensor class prefers which tier, and the [`PlacementEngine`] a
//! [`TecoSession`](crate::TecoSession) consults when the configured
//! [`PlacementPolicy`] is not the default.
//!
//! The default policy is [`PlacementPolicy::SingleTier`]: every tensor in
//! the CXL giant cache, exactly today's layout. A session under the
//! default constructs **no** engine — no extra allocations, no heat taps,
//! no new snapshot fields — so the default is byte-identical to the
//! pre-engine build (locked down by `tests/placement_anchor.rs`).
//!
//! A [`TieredPolicy`] splits tensors CostEfficientUSL-style into separate
//! per-class managers with a size threshold:
//!
//! - **params** (broadcast-mostly) and **grads** (write-once) stay in the
//!   giant cache, where DBA aggregation and update-mode fan-out pay off;
//! - **optimizer moments** (write-mostly, never read by the device
//!   forward/backward pass) go to plain host DRAM — coherent but
//!   uncached, full 64-byte lines, charged through the engine's
//!   [`HostLinkArbiter`] pool budget;
//! - tensors at or under the **size threshold** become device-resident
//!   (no link traffic at all), capacity permitting.
//!
//! Unpinned tensors then migrate between the giant cache and host DRAM by
//! observed heat, only at step boundaries, with every moved byte charged
//! through the arbiter.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use teco_cxl::{GiantCacheError, HostLinkArbiter, HostLinkArbiterSnapshot};
use teco_mem::tier::{
    HeatTracker, MigrationPlan, MigrationPlanner, PlacementMap, PlannerConfig, Tier,
    TierCapacities, TierError,
};
use teco_mem::{Addr, LineData, LINE_BYTES};
use teco_sim::{Bandwidth, Interval, SimTime};

/// Tensor classes the policy distinguishes (classified from the region
/// name the framework allocates with).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TensorClass {
    /// Model parameters: broadcast-mostly (CPU optimizer writes, every
    /// device reads).
    Param,
    /// Gradients: write-once per step, device → CPU.
    Grad,
    /// Optimizer moments (ADAM m/v): write-mostly, CPU-only.
    OptimizerMoment,
    /// Anything else (activations, embeddings, scratch).
    Other,
}

impl TensorClass {
    /// Classify a tensor by its allocation name, prefix-matched the way
    /// the repo's workloads name regions (`"params"`, `"grads_dev3"`,
    /// `"moment_m"`, `"opt_v"`, …).
    pub fn classify(name: &str) -> TensorClass {
        let lower = name.to_ascii_lowercase();
        if lower.starts_with("param") {
            TensorClass::Param
        } else if lower.starts_with("grad") {
            TensorClass::Grad
        } else if lower.starts_with("moment") || lower.starts_with("opt") {
            TensorClass::OptimizerMoment
        } else {
            TensorClass::Other
        }
    }

    /// Stable label for reports.
    pub fn label(self) -> &'static str {
        match self {
            TensorClass::Param => "param",
            TensorClass::Grad => "grad",
            TensorClass::OptimizerMoment => "moment",
            TensorClass::Other => "other",
        }
    }
}

/// The non-default, three-tier policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TieredPolicy {
    /// Accelerator-resident bytes the engine may claim (0 disables the
    /// device tier entirely).
    pub device_capacity_bytes: u64,
    /// Plain host-DRAM bytes offered to offloaded tensors.
    pub host_dram_capacity_bytes: u64,
    /// Tensors of at most this many bytes become device-resident,
    /// capacity permitting (0 turns the size rule off).
    pub device_size_threshold: u64,
    /// Send optimizer moments to plain host DRAM (the CostEfficientUSL
    /// split); `false` keeps them in the giant cache like everything else.
    pub moments_to_host_dram: bool,
    /// Heat score promoting a host-DRAM tensor into the giant cache.
    pub promote_score: u64,
    /// Heat score (at or below) demoting a giant-cache tensor to host
    /// DRAM.
    pub demote_score: u64,
    /// Host-DRAM pool bandwidth backing the engine's arbiter, GB/s.
    pub pool_bandwidth_gbps: f64,
}

impl Default for TieredPolicy {
    fn default() -> Self {
        TieredPolicy {
            device_capacity_bytes: 0,
            host_dram_capacity_bytes: 4 << 30,
            device_size_threshold: 0,
            moments_to_host_dram: true,
            promote_score: 4,
            demote_score: 0,
            pool_bandwidth_gbps: 64.0,
        }
    }
}

impl TieredPolicy {
    /// Validate the policy.
    pub fn validate(&self) -> Result<(), String> {
        if self.host_dram_capacity_bytes == 0 {
            return Err("tiered policy needs a nonzero host-DRAM capacity".into());
        }
        if self.pool_bandwidth_gbps <= 0.0 || self.pool_bandwidth_gbps.is_nan() {
            return Err("pool bandwidth must be positive".into());
        }
        self.planner_config().validate()
    }

    /// The planner thresholds this policy configures.
    pub fn planner_config(&self) -> PlannerConfig {
        PlannerConfig { promote_score: self.promote_score, demote_score: self.demote_score }
    }

    /// Tier preference order for a tensor of `class` and `bytes` size:
    /// the first tier with capacity wins.
    pub fn preference(&self, class: TensorClass, bytes: u64) -> &'static [Tier] {
        if self.device_size_threshold > 0 && bytes <= self.device_size_threshold {
            return &[Tier::Device, Tier::GiantCache, Tier::HostDram];
        }
        match class {
            TensorClass::OptimizerMoment if self.moments_to_host_dram => {
                &[Tier::HostDram, Tier::GiantCache]
            }
            _ => &[Tier::GiantCache, Tier::HostDram],
        }
    }
}

/// The user-facing placement knob on [`TecoConfig`](crate::TecoConfig).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub enum PlacementPolicy {
    /// Everything in the CXL giant cache — today's layout, and byte-for-
    /// byte today's behavior (no engine is constructed).
    #[default]
    SingleTier,
    /// The three-tier, per-class, heat-migrating policy.
    Tiered(TieredPolicy),
}

impl PlacementPolicy {
    /// Is this the default (engine-free) policy?
    pub fn is_single_tier(&self) -> bool {
        matches!(self, PlacementPolicy::SingleTier)
    }

    /// Validate the policy.
    pub fn validate(&self) -> Result<(), String> {
        match self {
            PlacementPolicy::SingleTier => Ok(()),
            PlacementPolicy::Tiered(p) => p.validate(),
        }
    }
}

/// Counters the engine accumulates (kept out of `SessionStats`, whose
/// derived encoding is digested inside committed snapshots).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlacementStats {
    /// Step boundaries the planner ran at.
    pub boundaries: u64,
    /// Tensors migrated (one per move).
    pub migrations: u64,
    /// Bytes moved between tiers.
    pub migrated_bytes: u64,
    /// Host-DRAM → giant-cache moves.
    pub promotions: u64,
    /// Giant-cache → host-DRAM moves.
    pub demotions: u64,
    /// Nanoseconds the pool budget spent serving migrations.
    pub migration_ns: u64,
    /// Lines written to engine-backed tiers (device + host DRAM).
    pub side_lines: u64,
    /// Bytes charged to the pool budget for host-DRAM traffic.
    pub pool_bytes: u64,
}

/// Side-tier tensors live in their own address space, far above any
/// giant-cache BAR, so an address alone identifies its owner.
pub const SIDE_BASE: u64 = 1 << 40;

/// The session-side placement engine: policy + placement map + heat +
/// planner + the pool arbiter migrations and host-DRAM traffic are
/// charged through. Constructed only for non-default policies.
#[derive(Debug, Clone)]
pub struct PlacementEngine {
    policy: TieredPolicy,
    map: PlacementMap,
    heat: HeatTracker,
    planner: MigrationPlanner,
    arbiter: HostLinkArbiter,
    /// Per-handle span: `(base, rounded_bytes)`. Giant-cache tensors carry
    /// their real BAR base; side tensors a base in [`SIDE_BASE`] space.
    spans: Vec<(u64, u64)>,
    /// Next free side address.
    next_side: u64,
    /// Line store backing the device and host-DRAM tiers.
    store: HashMap<u64, LineData>,
    /// The engine's clock: the latest pool-grant end it has produced,
    /// used as the ready time for boundary migrations.
    clock: SimTime,
    stats: PlacementStats,
}

impl PlacementEngine {
    /// An engine for `policy` over a giant cache of `giant_cache_bytes`.
    pub fn new(policy: TieredPolicy, giant_cache_bytes: u64) -> Self {
        let caps = TierCapacities {
            device_bytes: policy.device_capacity_bytes,
            giant_cache_bytes,
            host_dram_bytes: policy.host_dram_capacity_bytes,
        };
        let planner = MigrationPlanner::new(policy.planner_config());
        let arbiter =
            HostLinkArbiter::new(Bandwidth::from_gb_per_sec(policy.pool_bandwidth_gbps), 1);
        PlacementEngine {
            policy,
            map: PlacementMap::new(caps),
            heat: HeatTracker::new(),
            planner,
            arbiter,
            spans: Vec::new(),
            next_side: SIDE_BASE,
            store: HashMap::new(),
            clock: SimTime::ZERO,
            stats: PlacementStats::default(),
        }
    }

    /// The policy.
    pub fn policy(&self) -> &TieredPolicy {
        &self.policy
    }
    /// The placement map (tier occupancy, per-tensor tiers).
    pub fn map(&self) -> &PlacementMap {
        &self.map
    }
    /// Engine counters.
    pub fn stats(&self) -> PlacementStats {
        self.stats
    }
    /// The pool arbiter (read access for reports).
    pub fn arbiter(&self) -> &HostLinkArbiter {
        &self.arbiter
    }
    /// The heat of tensor `handle` right now.
    pub fn heat_of(&self, handle: usize) -> teco_mem::tier::RegionHeat {
        self.heat.heat(handle)
    }

    /// Decide a tier for a new tensor. Walks the policy's preference
    /// order; the first tier with room wins. Giant-cache and device
    /// tensors are pinned (their backing cannot relocate); host-DRAM
    /// tensors are migration candidates.
    pub fn place(&mut self, name: &str, bytes: u64) -> Result<(usize, Tier), TierError> {
        let rounded = bytes.div_ceil(LINE_BYTES as u64) * LINE_BYTES as u64;
        let class = TensorClass::classify(name);
        let mut last = None;
        for &tier in self.policy.preference(class, rounded) {
            let pinned = tier != Tier::HostDram;
            match self.map.place(name, rounded, tier, pinned) {
                Ok(h) => return Ok((h, tier)),
                Err(e) => last = Some(e),
            }
        }
        Err(last.expect("preference order is never empty"))
    }

    /// Record the giant-cache BAR base of a just-placed tensor.
    pub fn bind(&mut self, handle: usize, base: u64, rounded: u64) {
        debug_assert_eq!(self.spans.len(), handle, "bind must follow place immediately");
        self.spans.push((base, rounded));
    }

    /// Allocate side-tier storage for a just-placed tensor and return its
    /// base address in [`SIDE_BASE`] space.
    pub fn bind_side(&mut self, handle: usize) -> Addr {
        debug_assert_eq!(self.spans.len(), handle, "bind must follow place immediately");
        let rounded = self.map.tensors()[handle].bytes;
        let base = self.next_side;
        self.next_side += rounded;
        self.spans.push((base, rounded));
        Addr(base)
    }

    /// Does this address belong to an engine-backed (side) tensor?
    pub fn owns(&self, a: Addr) -> bool {
        a.0 >= SIDE_BASE && self.locate(a).is_some()
    }

    /// The handle and current tier of the tensor containing `a`, if any.
    pub fn locate(&self, a: Addr) -> Option<(usize, Tier)> {
        self.spans
            .iter()
            .position(|&(base, len)| a.0 >= base && a.0 < base + len)
            .map(|h| (h, self.map.tensors()[h].tier))
    }

    /// Record write heat against the tensor containing `a` (the session's
    /// tap on its coherence-transaction stream).
    pub fn note_write(&mut self, a: Addr, bytes: u64) {
        if let Some((h, _)) = self.locate(a) {
            self.heat.record_write(h, bytes);
        }
    }

    /// Record read heat against the tensor containing `a`.
    pub fn note_read(&mut self, a: Addr, bytes: u64) {
        if let Some((h, _)) = self.locate(a) {
            self.heat.record_read(h, bytes);
        }
    }

    /// Store a run of side-tier lines starting at `base`.
    pub fn write_lines(&mut self, base: Addr, lines: &[LineData]) -> Result<(), GiantCacheError> {
        let last = Addr(base.0 + ((lines.len().max(1) - 1) * LINE_BYTES) as u64);
        let (h0, _) = self.locate(base).ok_or(GiantCacheError::NotMapped(base))?;
        let (h1, _) = self.locate(last).ok_or(GiantCacheError::NotMapped(last))?;
        if h0 != h1 {
            return Err(GiantCacheError::NotMapped(last));
        }
        for (i, l) in lines.iter().enumerate() {
            self.store.insert(base.0 + (i * LINE_BYTES) as u64, *l);
        }
        self.stats.side_lines += lines.len() as u64;
        Ok(())
    }

    /// Read a side-tier line.
    pub fn read_line(&self, a: Addr) -> Result<LineData, GiantCacheError> {
        if self.locate(a).is_none() {
            return Err(GiantCacheError::NotMapped(a));
        }
        Ok(self.store.get(&a.0).copied().unwrap_or_else(LineData::zeroed))
    }

    /// Charge `bytes` of side-tier traffic to the pool budget.
    pub fn charge_pool(&mut self, ready: SimTime, bytes: u64) -> Interval {
        let iv = self.arbiter.charge_broadcast(ready, bytes, 1);
        self.stats.pool_bytes += bytes;
        self.clock = self.clock.max(iv.end);
        iv
    }

    /// Run the step-boundary pipeline: plan migrations for the window
    /// that just finished, apply them, charge the moved bytes through the
    /// arbiter, and decay heat. A replayed boundary is a no-op (`None`) —
    /// the planner structurally refuses to plan a step twice, so the
    /// engine can never migrate mid-step or double-charge a boundary.
    pub fn step_boundary(&mut self, step: u64) -> Option<MigrationPlan> {
        let plan = match self.planner.plan(step, &self.heat, &self.map) {
            Ok(p) => p,
            Err(TierError::NotAtBoundary { .. }) => return None,
            Err(e) => unreachable!("planner only fails on boundary replay: {e}"),
        };
        self.stats.boundaries += 1;
        if !plan.moves.is_empty() {
            self.map.apply(&plan).expect("plan was built against this map");
            for mv in &plan.moves {
                self.stats.migrations += 1;
                self.stats.migrated_bytes += mv.bytes;
                match mv.to {
                    Tier::GiantCache => self.stats.promotions += 1,
                    Tier::HostDram => self.stats.demotions += 1,
                    Tier::Device => {}
                }
            }
            let iv = self.arbiter.charge_broadcast(self.clock, plan.bytes(), 1);
            self.stats.migration_ns += (iv.end - iv.start).as_ns();
            self.clock = iv.end;
        }
        self.heat.end_step();
        Some(plan)
    }

    /// Checkpoint image; the store is sorted so the encoding is
    /// deterministic.
    pub fn snapshot(&self) -> PlacementEngineSnapshot {
        let mut store: Vec<(u64, Vec<u8>)> =
            self.store.iter().map(|(&a, l)| (a, l.bytes().to_vec())).collect();
        store.sort_unstable_by_key(|(a, _)| *a);
        PlacementEngineSnapshot {
            policy: self.policy.clone(),
            map: self.map.clone(),
            heat: self.heat.clone(),
            planner: self.planner.clone(),
            arbiter: self.arbiter.snapshot(),
            spans: self.spans.clone(),
            next_side: self.next_side,
            store,
            clock: self.clock,
            stats: self.stats,
        }
    }

    /// Rebuild an engine from a snapshot; every subsequent placement,
    /// plan, and pool grant reproduces the original bit-for-bit.
    pub fn from_snapshot(s: &PlacementEngineSnapshot) -> Self {
        let store = s
            .store
            .iter()
            .map(|(a, bytes)| {
                let mut l = LineData::zeroed();
                l.bytes_mut().copy_from_slice(bytes);
                (*a, l)
            })
            .collect();
        PlacementEngine {
            policy: s.policy.clone(),
            map: s.map.clone(),
            heat: s.heat.clone(),
            planner: s.planner.clone(),
            arbiter: HostLinkArbiter::restore(&s.arbiter),
            spans: s.spans.clone(),
            next_side: s.next_side,
            store,
            clock: s.clock,
            stats: s.stats,
        }
    }
}

/// Serialized form of a [`PlacementEngine`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementEngineSnapshot {
    /// The policy the engine was built with.
    pub policy: TieredPolicy,
    /// Tensor→tier accounting.
    pub map: PlacementMap,
    /// Per-region heat.
    pub heat: HeatTracker,
    /// The migration planner (thresholds + last planned boundary).
    pub planner: MigrationPlanner,
    /// The pool arbiter.
    pub arbiter: HostLinkArbiterSnapshot,
    /// Per-handle `(base, rounded_bytes)` spans.
    pub spans: Vec<(u64, u64)>,
    /// Next free side address.
    pub next_side: u64,
    /// Side-tier lines, sorted by address.
    pub store: Vec<(u64, Vec<u8>)>,
    /// The engine clock.
    pub clock: SimTime,
    /// Engine counters.
    pub stats: PlacementStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_by_name_prefix() {
        assert_eq!(TensorClass::classify("params"), TensorClass::Param);
        assert_eq!(TensorClass::classify("param_dev3"), TensorClass::Param);
        assert_eq!(TensorClass::classify("grads"), TensorClass::Grad);
        assert_eq!(TensorClass::classify("moment_m"), TensorClass::OptimizerMoment);
        assert_eq!(TensorClass::classify("opt_v"), TensorClass::OptimizerMoment);
        assert_eq!(TensorClass::classify("embeddings"), TensorClass::Other);
    }

    #[test]
    fn default_policy_is_single_tier_and_serializes_as_such() {
        let p = PlacementPolicy::default();
        assert!(p.is_single_tier());
        let json = serde_json::to_string(&p).unwrap();
        let back: PlacementPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, p);
        let t = PlacementPolicy::Tiered(TieredPolicy::default());
        let json = serde_json::to_string(&t).unwrap();
        let back: PlacementPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(back, t);
    }

    #[test]
    fn preference_splits_classes() {
        let p = TieredPolicy::default();
        assert_eq!(p.preference(TensorClass::Param, 1 << 20)[0], Tier::GiantCache);
        assert_eq!(p.preference(TensorClass::Grad, 1 << 20)[0], Tier::GiantCache);
        assert_eq!(p.preference(TensorClass::OptimizerMoment, 1 << 20)[0], Tier::HostDram);
        let keep = TieredPolicy { moments_to_host_dram: false, ..TieredPolicy::default() };
        assert_eq!(keep.preference(TensorClass::OptimizerMoment, 1 << 20)[0], Tier::GiantCache);
        let dev = TieredPolicy {
            device_capacity_bytes: 1 << 20,
            device_size_threshold: 4096,
            ..TieredPolicy::default()
        };
        assert_eq!(dev.preference(TensorClass::Other, 4096)[0], Tier::Device);
        assert_eq!(dev.preference(TensorClass::Other, 8192)[0], Tier::GiantCache);
    }

    #[test]
    fn engine_places_binds_and_stores() {
        let policy = TieredPolicy {
            device_capacity_bytes: 1 << 16,
            device_size_threshold: 4096,
            ..TieredPolicy::default()
        };
        let mut e = PlacementEngine::new(policy, 1 << 20);
        let (hp, tp) = e.place("params", 8192).unwrap();
        e.bind(hp, 0, 8192);
        assert_eq!(tp, Tier::GiantCache);
        let (hm, tm) = e.place("moment_m", 8192).unwrap();
        let base_m = e.bind_side(hm);
        assert_eq!(tm, Tier::HostDram);
        let (he, te) = e.place("embed", 4096).unwrap();
        let base_e = e.bind_side(he);
        assert_eq!(te, Tier::Device);
        assert!(e.owns(base_m) && e.owns(base_e));
        assert!(!e.owns(Addr(0)), "giant-cache addresses are not engine-backed");

        let mut l = LineData::zeroed();
        l.set_word(0, 7);
        e.write_lines(base_m, std::slice::from_ref(&l)).unwrap();
        assert_eq!(e.read_line(base_m).unwrap(), l);
        assert_eq!(e.read_line(Addr(base_m.0 + 64)).unwrap(), LineData::zeroed());
        assert!(e.read_line(Addr(SIDE_BASE + (1 << 30))).is_err());
    }

    #[test]
    fn boundary_migrates_and_charges_pool_once() {
        let mut e = PlacementEngine::new(TieredPolicy::default(), 1 << 20);
        let (hm, _) = e.place("moment_m", 4096).unwrap();
        let base = e.bind_side(hm);
        for _ in 0..8 {
            e.note_write(base, 64);
        }
        let plan = e.step_boundary(0).expect("fresh boundary plans");
        assert_eq!(plan.moves.len(), 1, "hot moment promoted");
        assert_eq!(e.map().tensors()[hm].tier, Tier::GiantCache);
        let s = e.stats();
        assert_eq!((s.promotions, s.migrations, s.migrated_bytes), (1, 1, 4096));
        assert!(s.migration_ns > 0, "migration crossed the pool budget");
        assert!(e.step_boundary(0).is_none(), "replayed boundary is a no-op");
        assert_eq!(e.stats().migrations, 1, "no double charge");
        // Cold again after decay: demoted at a later boundary.
        for step in 1..8 {
            e.step_boundary(step);
        }
        assert_eq!(e.map().tensors()[hm].tier, Tier::HostDram, "cold tensor demoted");
        assert_eq!(e.stats().demotions, 1);
    }

    #[test]
    fn snapshot_roundtrip_replays_identically() {
        let mut a = PlacementEngine::new(TieredPolicy::default(), 1 << 20);
        let (hm, _) = a.place("moment_m", 4096).unwrap();
        let base = a.bind_side(hm);
        let mut l = LineData::zeroed();
        l.set_word(3, 0xAB);
        a.write_lines(base, std::slice::from_ref(&l)).unwrap();
        a.charge_pool(SimTime::ZERO, 4096);
        for _ in 0..8 {
            a.note_write(base, 64);
        }
        a.step_boundary(0);
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        let mut b = PlacementEngine::from_snapshot(&serde_json::from_str(&json).unwrap());
        assert_eq!(b.read_line(base).unwrap(), l);
        for step in 1..6 {
            let pa = a.step_boundary(step);
            let pb = b.step_boundary(step);
            assert_eq!(pa, pb, "step {step}");
        }
        assert_eq!(a.stats(), b.stats());
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap()
        );
    }

    #[test]
    fn policy_validation() {
        assert!(PlacementPolicy::SingleTier.validate().is_ok());
        assert!(PlacementPolicy::Tiered(TieredPolicy::default()).validate().is_ok());
        let bad = TieredPolicy { demote_score: 9, promote_score: 4, ..TieredPolicy::default() };
        assert!(PlacementPolicy::Tiered(bad).validate().is_err());
        let bad = TieredPolicy { host_dram_capacity_bytes: 0, ..TieredPolicy::default() };
        assert!(bad.validate().is_err());
    }
}
