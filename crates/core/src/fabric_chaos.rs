//! The fabric chaos harness: host loss, staging-media faults, and
//! deadline-driven degradation injected into the multi-host training
//! fabric of [`crate::fabric`].
//!
//! PR 8's fabric assumes every host survives every all-reduce. This
//! module drops that assumption the same way [`crate::churn`] did for
//! devices inside one host: a deterministic kill schedule fires at a
//! chosen chunk boundary of a chosen step's collective, the collective
//! deadline watchdog converts the silence into a typed
//! [`CollectiveError::HostDown`], and the harness walks the degradation
//! ladder — per-chunk checksummed retry (inside
//! [`ChunkedCollective`]), survivor regroup (quarantine + H→H−1
//! re-begin, bit-identical to a never-failed H−1 fabric), and the ring
//! fallback under RAS retirement pressure. Hot readmission rebuilds the
//! lost host from the workload seed, fast-forwards its content streams
//! ([`ClusterDriver::fast_forward_steps`]), and catches it up from the
//! pooled parameter state so it converges byte-identically.
//!
//! Two structural anchors keep the harness honest:
//!
//! - a zero-fault, no-kill chaos workload routes through the plain
//!   [`FabricDriver`] loop, so its report is **byte-identical** to the
//!   PR 8 fault-free path;
//! - the chunk-granular path is suspendable at any chunk boundary
//!   ([`run_fabric_chaos_resumed`]): the whole fabric — hosts, engine,
//!   and the in-flight op — round-trips through the serialized snapshot
//!   envelope and finishes bit-identically.

use crate::cluster::{ClusterDriver, ClusterWorkloadSnapshot};
use crate::fabric::{FabricDriver, FabricError, FabricReport, FabricWorkload};
use crate::resume::StepBoundary;
use crate::session::SessionError;
use serde::{Deserialize, Serialize};
use teco_cxl::{
    ChunkedCollective, ChunkedCollectiveSnapshot, ChunkedOp, CollectiveError,
    CollectiveFaultConfig, CollectiveFaultStats, CollectivePhase, HostKill, RasConfig, RasStats,
};
use teco_mem::{LineData, LINE_BYTES};
use teco_sim::{decode_snapshot, encode_snapshot, SimTime, SnapshotError};

const FNV_SEED: u64 = 0xcbf2_9ce4_8422_2325;

fn fnv_fold(mut cs: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        cs = (cs ^ b as u64).wrapping_mul(0x1000_0000_01b3);
    }
    cs
}

/// A scheduled host kill: the host stops responding at chunk boundary
/// `chunk` of phase `phase` of step `step`'s all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct HostKillSpec {
    /// Host to kill.
    pub host: u64,
    /// Training step whose collective the kill fires in.
    pub step: u64,
    /// Collective phase the kill fires in.
    pub phase: CollectivePhase,
    /// Flat chunk index (within the phase) at which the host goes
    /// silent; clamped to the phase's last item if out of range.
    pub chunk: u64,
}

/// A chunk boundary of one step's collective — where
/// [`run_fabric_chaos_resumed`] suspends, serializes, and restores the
/// whole fabric mid-all-reduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkPoint {
    /// Training step of the targeted collective.
    pub step: u64,
    /// Phase within the collective.
    pub phase: CollectivePhase,
    /// Flat chunk index within the phase.
    pub chunk: u64,
}

/// A deterministic fabric chaos workload: fixed kill schedule, fixed
/// fault posture, byte-reproducible outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricChaosWorkload {
    /// The fabric under test.
    pub fabric: FabricWorkload,
    /// Collective fault posture (port faults, retry budget, watchdog
    /// deadline, staging-media RAS, ring-fallback threshold).
    pub faults: CollectiveFaultConfig,
    /// Scheduled host kill. `None` = the never-failed golden run.
    pub kill: Option<HostKillSpec>,
    /// Steps between a watchdog detection and hot readmission: the host
    /// readmits at the start of step `detection + 1 + readmit_after`.
    /// `None` leaves the fabric at H−1 for the rest of the run.
    pub readmit_after: Option<u64>,
}

impl FabricChaosWorkload {
    /// A small chaos workload over [`FabricWorkload::small`], fault
    /// machinery armed but quiet (no kill, no port faults, no RAS).
    pub fn small(hosts: usize, devices: usize, seed: u64) -> Self {
        FabricChaosWorkload {
            fabric: FabricWorkload::small(hosts, devices, seed),
            faults: CollectiveFaultConfig { seed, ..CollectiveFaultConfig::off() },
            kill: None,
            readmit_after: None,
        }
    }

    /// Schedule a host kill.
    pub fn with_kill(mut self, kill: HostKillSpec) -> Self {
        self.kill = Some(kill);
        self
    }

    /// Readmit the killed host `after` full steps past its detection.
    pub fn with_readmit_after(mut self, after: u64) -> Self {
        self.readmit_after = Some(after);
        self
    }

    /// Arm transient pool-port faults at the given per-chunk rate.
    pub fn with_port_fault_rate(mut self, rate: f64) -> Self {
        self.faults.port_fault_rate = rate;
        self
    }

    /// Arm staging-media RAS with the given fault arrival rate.
    pub fn with_media_faults(mut self, per_tick: f64) -> Self {
        self.faults.ras = RasConfig {
            media_faults_per_tick: per_tick,
            scrub_lines_per_tick: 8,
            spare_lines: 32,
            seed: self.faults.seed,
        };
        self
    }

    /// Arm the ring fallback at the given retired-line threshold.
    pub fn with_ring_fallback(mut self, retired_lines: u64) -> Self {
        self.faults.ring_fallback_retired_lines = retired_lines;
        self
    }

    /// Does this workload need the chunk-granular fault path? A `false`
    /// here routes through the plain [`FabricDriver`] loop, byte-identical
    /// to the PR 8 fault-free path.
    pub fn chunked(&self) -> bool {
        self.kill.is_some() || self.faults.engaged()
    }

    fn validate(&self) -> Result<(), FabricError> {
        if let Some(k) = &self.kill {
            if k.host as usize >= self.fabric.hosts {
                return Err(FabricError::Config(format!(
                    "kill targets host {} of {}",
                    k.host, self.fabric.hosts
                )));
            }
            if k.step >= self.fabric.base.steps {
                return Err(FabricError::Config(format!(
                    "kill step {} out of range {}",
                    k.step, self.fabric.base.steps
                )));
            }
        }
        Ok(())
    }
}

/// A watchdog detection observed by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChaosDetection {
    /// Host the watchdog declared lost.
    pub host: u64,
    /// Training step the loss surfaced in.
    pub step: u64,
    /// Collective phase detection fired in.
    pub phase: CollectivePhase,
    /// Flat chunk index at detection.
    pub chunk: u64,
    /// Simulated time of the declaration, in nanoseconds.
    pub time_ns: u64,
}

/// The chaos run's observable result. Serializing this to JSON is the
/// byte-identity oracle for the mid-collective resume path, and the
/// per-step gradient checksums are the regroup oracle: after a kill at
/// step `s`, `step_grad_checksums[s..]` of an H-host run equal the
/// never-failed (H−1)-host run's.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricChaosOutcome {
    /// The fabric report (dead hosts report their last pre-kill state).
    pub report: FabricReport,
    /// Watchdog detections, in order.
    pub detections: Vec<ChaosDetection>,
    /// FNV-1a-64 of each step's globally reduced gradient.
    pub step_grad_checksums: Vec<u64>,
    /// FNV-1a-64 folded over every broadcast parameter line, in step
    /// order — the "final parameters" identity anchor.
    pub param_checksum: u64,
    /// Per-host, per-device giant-cache content checksums — the
    /// readmission convergence anchor.
    pub device_checksums: Vec<Vec<u64>>,
    /// Hosts alive at the end of the run.
    pub live_hosts: u64,
    /// Survivor regroups performed (ladder rung 2).
    pub regroups: u64,
    /// Hot host readmissions performed.
    pub readmissions: u64,
    /// Typed collective errors the harness absorbed.
    pub typed_errors: u64,
    /// Collective fault/recovery counters.
    pub fstats: CollectiveFaultStats,
    /// Staging-media RAS counters.
    pub ras: RasStats,
    /// Corrupted bytes that reached a reduction — structurally zero;
    /// measured, not assumed.
    pub poisoned_admitted: u64,
}

/// A chaos outcome plus harness-side bookkeeping kept out of it
/// (mirrors [`crate::fabric::FabricRunOutcome`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricChaosRun {
    /// The byte-identity-comparable outcome.
    pub outcome: FabricChaosOutcome,
    /// Snapshots the harness took (0 for an uninterrupted run).
    pub snapshots_taken: u64,
    /// Restores the harness performed (0 for an uninterrupted run).
    pub restores: u64,
    /// Serialized snapshot size in bytes (0 for an uninterrupted run).
    pub snapshot_bytes: u64,
}

/// A readmission scheduled by a detection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
struct PendingReadmit {
    host: u64,
    step: u64,
}

/// Everything the chaos driver holds, captured whole — including the
/// in-flight collective op when suspended mid-all-reduce.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ChaosSnapshot {
    hosts: Vec<ClusterWorkloadSnapshot>,
    alive: Vec<bool>,
    collective: ChunkedCollectiveSnapshot,
    op: ChunkedOp,
    lag: SimTime,
    exchange_time: SimTime,
    grad_checksum: u64,
    param_checksum: u64,
    step_sums: Vec<u64>,
    global_grads: Vec<u8>,
    /// The retained broadcast lines, flattened to bytes (`LineData`
    /// itself is not serializable).
    last_params: Vec<u8>,
    detections: Vec<ChaosDetection>,
    regroups: u64,
    typed_errors: u64,
    steps_done: u64,
    readmit: Option<PendingReadmit>,
}

fn flatten_lines(lines: &[LineData]) -> Vec<u8> {
    let mut out = Vec::with_capacity(lines.len() * LINE_BYTES);
    for l in lines {
        out.extend_from_slice(l.bytes());
    }
    out
}

fn unflatten_lines(bytes: &[u8]) -> Vec<LineData> {
    bytes
        .chunks_exact(LINE_BYTES)
        .map(|c| {
            let mut l = LineData::zeroed();
            l.bytes_mut().copy_from_slice(c);
            l
        })
        .collect()
}

/// Mid-collective suspension bookkeeping for the resume harness.
struct ResumeHarness {
    at: ChunkPoint,
    fired: bool,
    snapshots_taken: u64,
    restores: u64,
    snapshot_bytes: u64,
}

/// The chunk-granular fabric driver: [`FabricDriver`]'s step shape with
/// the collective driven one chunk at a time through
/// [`ChunkedCollective`], so kills, faults, and snapshots land at chunk
/// boundaries.
struct ChaosDriver {
    hosts: Vec<ClusterDriver>,
    alive: Vec<bool>,
    cc: ChunkedCollective,
    lag: SimTime,
    exchange_time: SimTime,
    grad_checksum: u64,
    param_checksum: u64,
    step_sums: Vec<u64>,
    global_grads: Vec<u8>,
    last_params: Vec<LineData>,
    detections: Vec<ChaosDetection>,
    regroups: u64,
    typed_errors: u64,
    steps_done: u64,
    readmit: Option<PendingReadmit>,
}

impl ChaosDriver {
    fn new(w: &FabricChaosWorkload) -> Result<Self, FabricError> {
        let hosts = (0..w.fabric.hosts)
            .map(|h| ClusterDriver::for_host(&w.fabric.base, h))
            .collect::<Result<Vec<_>, SessionError>>()?;
        Ok(ChaosDriver {
            alive: vec![true; hosts.len()],
            hosts,
            cc: ChunkedCollective::new(w.fabric.collective, w.faults)?,
            lag: SimTime::ZERO,
            exchange_time: SimTime::ZERO,
            grad_checksum: FNV_SEED,
            param_checksum: FNV_SEED,
            step_sums: Vec::new(),
            global_grads: Vec::new(),
            last_params: Vec::new(),
            detections: Vec::new(),
            regroups: 0,
            typed_errors: 0,
            steps_done: 0,
            readmit: None,
        })
    }

    fn capture(&self, op: &ChunkedOp) -> ChaosSnapshot {
        ChaosSnapshot {
            hosts: self.hosts.iter().map(|d| d.capture()).collect(),
            alive: self.alive.clone(),
            collective: self.cc.snapshot(),
            op: op.clone(),
            lag: self.lag,
            exchange_time: self.exchange_time,
            grad_checksum: self.grad_checksum,
            param_checksum: self.param_checksum,
            step_sums: self.step_sums.clone(),
            global_grads: self.global_grads.clone(),
            last_params: flatten_lines(&self.last_params),
            detections: self.detections.clone(),
            regroups: self.regroups,
            typed_errors: self.typed_errors,
            steps_done: self.steps_done,
            readmit: self.readmit,
        }
    }

    fn restore(s: &ChaosSnapshot) -> Result<Self, FabricError> {
        Ok(ChaosDriver {
            hosts: s
                .hosts
                .iter()
                .map(ClusterDriver::restore)
                .collect::<Result<Vec<_>, SessionError>>()?,
            alive: s.alive.clone(),
            cc: ChunkedCollective::restore(&s.collective)?,
            lag: s.lag,
            exchange_time: s.exchange_time,
            grad_checksum: s.grad_checksum,
            param_checksum: s.param_checksum,
            step_sums: s.step_sums.clone(),
            global_grads: s.global_grads.clone(),
            last_params: unflatten_lines(&s.last_params),
            detections: s.detections.clone(),
            regroups: s.regroups,
            typed_errors: s.typed_errors,
            steps_done: s.steps_done,
            readmit: s.readmit,
        })
    }

    fn max_live_time(&self) -> SimTime {
        self.hosts
            .iter()
            .zip(&self.alive)
            .filter(|&(_, &a)| a)
            .map(|(d, _)| d.cluster().cluster_time())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Hot readmission: rebuild the lost host from the workload seed,
    /// fast-forward its content streams past every step it missed, and
    /// catch its replicas up from the pooled parameter state. From here
    /// on it pushes exactly the lines it would have pushed had it never
    /// died — byte-identical convergence.
    fn maybe_readmit(&mut self, w: &FabricChaosWorkload) -> Result<(), FabricError> {
        let Some(p) = self.readmit else { return Ok(()) };
        if p.step != self.steps_done {
            return Ok(());
        }
        let host = p.host as usize;
        let mut fresh = ClusterDriver::for_host(&w.fabric.base, host)?;
        fresh.fast_forward_steps(self.steps_done);
        if !self.last_params.is_empty() {
            fresh.broadcast_lines(&self.last_params)?;
        }
        // After the catch-up broadcast: the next activation check must
        // see the same step index a never-failed host's would, so the
        // DBA schedule (and the stale bytes its dirty-byte merge leaves
        // behind) lines up byte-for-byte.
        fresh.align_step(self.steps_done);
        self.hosts[host] = fresh;
        self.alive[host] = true;
        self.cc.readmit_host(host);
        self.readmit = None;
        Ok(())
    }

    /// Stage the live hosts' accumulators and drive the all-reduce one
    /// chunk at a time. A watchdog [`CollectiveError::HostDown`] is
    /// absorbed here: quarantine, regroup over the survivors, re-begin.
    /// The resume harness (if armed) suspends, serializes, and restores
    /// the whole driver at its chunk boundary.
    fn exchange(
        &mut self,
        w: &FabricChaosWorkload,
        mut kill_now: Option<HostKill>,
        mut harness: Option<&mut ResumeHarness>,
    ) -> Result<(), FabricError> {
        let n = self.hosts.len();
        let mut staged: Vec<Vec<u8>> = vec![Vec::new(); n];
        let mut ready = vec![SimTime::ZERO; n];
        for h in 0..n {
            if self.alive[h] {
                self.hosts[h].cluster().pool().copy_grad_bytes_into(&mut staged[h]);
                ready[h] = self.hosts[h].cluster().cluster_time() + self.lag;
            }
        }
        let mut op = self.cc.begin_all_reduce(&staged, &ready)?;
        loop {
            if let Some(h) = harness.as_deref_mut() {
                if !h.fired
                    && !op.done
                    && h.at.step == self.steps_done
                    && h.at.phase == op.phase
                    && h.at.chunk == op.flat
                {
                    h.fired = true;
                    let bytes = encode_snapshot(&self.capture(&op));
                    h.snapshots_taken += 1;
                    h.snapshot_bytes = bytes.len() as u64;
                    let snap: ChaosSnapshot = decode_snapshot(&bytes)
                        .map_err(|e: SnapshotError| FabricError::Config(e.to_string()))?;
                    h.restores += 1;
                    op = snap.op.clone();
                    *self = ChaosDriver::restore(&snap)?;
                }
            }
            match self.cc.step_chunk(&mut op, kill_now.as_ref()) {
                Ok(true) => break,
                Ok(false) => {}
                Err(CollectiveError::HostDown { host, phase, chunk, time_ns }) => {
                    self.detections.push(ChaosDetection {
                        host,
                        step: self.steps_done,
                        phase,
                        chunk,
                        time_ns,
                    });
                    self.typed_errors += 1;
                    self.cc.quarantine_host(host as usize);
                    self.alive[host as usize] = false;
                    self.regroups += 1;
                    if let Some(after) = w.readmit_after {
                        self.readmit =
                            Some(PendingReadmit { host, step: self.steps_done + 1 + after });
                    }
                    kill_now = None;
                    op = self.cc.begin_all_reduce(&staged, &ready)?;
                }
                Err(e) => return Err(e.into()),
            }
        }
        let (result, outcome) = op.into_result()?;
        self.lag = outcome.completion.saturating_sub(self.max_live_time());
        self.exchange_time += outcome.completion - outcome.start;
        self.grad_checksum = fnv_fold(self.grad_checksum, &result);
        self.step_sums.push(fnv_fold(FNV_SEED, &result));
        self.global_grads = result;
        Ok(())
    }

    /// One fabric step with the chaos machinery in the loop: pending
    /// readmission → per-host grad fences → chunked inter-host exchange
    /// (kills land here) → activation checks → one shared parameter
    /// update drawn from the lowest live host's pool stream.
    fn run_chaos_step(
        &mut self,
        w: &FabricChaosWorkload,
        harness: Option<&mut ResumeHarness>,
    ) -> Result<(), FabricError> {
        self.maybe_readmit(w)?;
        let kill_now = w.kill.as_ref().and_then(|k| {
            (k.step == self.steps_done).then_some(HostKill {
                host: k.host,
                phase: k.phase,
                chunk: k.chunk,
            })
        });
        for h in 0..self.hosts.len() {
            if self.alive[h] {
                self.hosts[h].run_step_until(StepBoundary::AfterGradFence)?;
            }
        }
        self.exchange(w, kill_now, harness)?;
        for h in 0..self.hosts.len() {
            if self.alive[h] {
                self.hosts[h].check_activation();
            }
        }
        let drawer =
            self.alive.iter().position(|&a| a).ok_or_else(|| {
                FabricError::Config("no live hosts left to draw parameters".into())
            })?;
        let mut lines = std::mem::take(&mut self.last_params);
        self.hosts[drawer].draw_param_lines(&mut lines);
        for line in &lines {
            self.param_checksum = fnv_fold(self.param_checksum, line.bytes());
        }
        for h in 0..self.hosts.len() {
            if self.alive[h] {
                self.hosts[h].broadcast_lines(&lines)?;
            }
        }
        self.last_params = lines;
        self.steps_done += 1;
        Ok(())
    }

    fn report(&self) -> FabricReport {
        let stats = self.cc.pool().stats();
        FabricReport {
            hosts: self.hosts.len() as u64,
            steps: self.steps_done,
            fabric_time_ns: (self.max_live_time() + self.lag).as_ns(),
            exchange_ns: self.exchange_time.as_ns(),
            all_reduces: stats.all_reduces,
            pool_port_bytes: stats.port_bytes,
            pool_media_bytes: stats.media_bytes,
            fanin_saved_bytes: self.cc.pool().media().fanin_saved_bytes(),
            global_grad_checksum: self.grad_checksum,
            host_reports: self.hosts.iter().map(|d| d.report()).collect(),
        }
    }

    fn into_outcome(self) -> FabricChaosOutcome {
        let report = self.report();
        let fstats = self.cc.fault_stats();
        FabricChaosOutcome {
            device_checksums: report
                .host_reports
                .iter()
                .map(|hr| hr.devices.iter().map(|d| d.device_checksum).collect())
                .collect(),
            live_hosts: self.alive.iter().filter(|&&a| a).count() as u64,
            regroups: self.regroups,
            readmissions: fstats.readmissions,
            typed_errors: self.typed_errors,
            ras: self.cc.ras_stats(),
            poisoned_admitted: fstats.poisoned_admitted,
            fstats,
            detections: self.detections,
            step_grad_checksums: self.step_sums,
            param_checksum: self.param_checksum,
            report,
        }
    }
}

fn run_chaos_inner(
    w: &FabricChaosWorkload,
    suspend: Option<ChunkPoint>,
    force_chunked: bool,
) -> Result<FabricChaosRun, FabricError> {
    w.validate()?;
    if !force_chunked && !w.chunked() {
        // The PR 8 anchor: with nothing armed, the chaos harness IS the
        // plain fabric loop — same driver, same report bytes.
        let mut d = FabricDriver::new(&w.fabric)?;
        let mut step_sums = Vec::new();
        let mut param_checksum = FNV_SEED;
        for _ in 0..w.fabric.base.steps {
            d.run_step()?;
            step_sums.push(fnv_fold(FNV_SEED, d.global_grads()));
            for line in d.last_params() {
                param_checksum = fnv_fold(param_checksum, line.bytes());
            }
        }
        let report = d.report();
        let outcome = FabricChaosOutcome {
            device_checksums: report
                .host_reports
                .iter()
                .map(|hr| hr.devices.iter().map(|dv| dv.device_checksum).collect())
                .collect(),
            live_hosts: report.hosts,
            regroups: 0,
            readmissions: 0,
            typed_errors: 0,
            fstats: CollectiveFaultStats::default(),
            ras: RasStats::default(),
            poisoned_admitted: 0,
            detections: Vec::new(),
            step_grad_checksums: step_sums,
            param_checksum,
            report,
        };
        return Ok(FabricChaosRun { outcome, snapshots_taken: 0, restores: 0, snapshot_bytes: 0 });
    }

    let mut drv = ChaosDriver::new(w)?;
    let mut harness = suspend.map(|at| ResumeHarness {
        at,
        fired: false,
        snapshots_taken: 0,
        restores: 0,
        snapshot_bytes: 0,
    });
    for _ in 0..w.fabric.base.steps {
        drv.run_chaos_step(w, harness.as_mut())?;
    }
    let (snapshots_taken, restores, snapshot_bytes) =
        harness.map(|h| (h.snapshots_taken, h.restores, h.snapshot_bytes)).unwrap_or((0, 0, 0));
    Ok(FabricChaosRun { outcome: drv.into_outcome(), snapshots_taken, restores, snapshot_bytes })
}

/// Run the chaos workload start to finish. Zero-fault, no-kill
/// workloads route through the plain [`FabricDriver`] loop
/// (byte-identical to the PR 8 path); anything armed routes through the
/// chunk-granular fault path.
pub fn run_fabric_chaos(w: &FabricChaosWorkload) -> Result<FabricChaosRun, FabricError> {
    run_chaos_inner(w, None, false)
}

/// Run the chaos workload on the chunk-granular path unconditionally —
/// the uninterrupted baseline the mid-collective resume oracle compares
/// against.
pub fn run_fabric_chaos_chunked(w: &FabricChaosWorkload) -> Result<FabricChaosRun, FabricError> {
    run_chaos_inner(w, None, true)
}

/// Run the chaos workload, suspend the whole fabric at chunk boundary
/// `at` **inside** that step's all-reduce, round-trip every host, the
/// collective engine, and the in-flight op through the serialized
/// snapshot envelope, and finish. The returned `outcome` must serialize
/// byte-identical to [`run_fabric_chaos_chunked`]'s.
pub fn run_fabric_chaos_resumed(
    w: &FabricChaosWorkload,
    at: ChunkPoint,
) -> Result<FabricChaosRun, FabricError> {
    run_chaos_inner(w, Some(at), true)
}
