//! The multi-host training fabric: H hosts, each bringing its own
//! [`ClusterSession`] device cluster to one shared CXL memory pool.
//!
//! Scaling out from [`crate::cluster`]'s "one box" takes exactly one new
//! mechanism: after every host's intra-host gradient fence, the per-host
//! pooled accumulators must agree globally. The fabric stages each host's
//! accumulator bytes through the pool and runs the pool-staged
//! [`PoolCollective::all_reduce`] (one staged write + H−1 direct reads,
//! CCCL-style) — no ring of point-to-point hops. The globally reduced
//! gradient and its running checksum live at the **fabric** level; no
//! per-host cluster state changes shape, which buys two anchors
//! structurally:
//!
//! - an H=1 fabric never touches the collective datapath, so its single
//!   host report is **byte-identical** to [`run_cluster_uninterrupted`]'s
//!   (the `scaling_sweep` path);
//! - host 0 of *any* fabric is seeded exactly like a standalone cluster
//!   ([`ClusterDriver::for_host`]), so its report stays byte-identical at
//!   every H — the collective sits beside the hosts' physics, never
//!   inside it, just as the intra-host arbiter sits beside the device
//!   sessions.
//!
//! Each step: per-host grad fence → inter-host all-reduce (the fabric's
//! `AfterGradFence` boundary, collective state included in snapshots) →
//! per-host activation check → one parameter update drawn from host 0's
//! pool stream and broadcast to every host. The whole fabric kills and
//! resumes at any [`StepBoundary`] through the same versioned snapshot
//! envelope as a single cluster, byte-identically.

use crate::cluster::{
    run_cluster_uninterrupted, ClusterDriver, ClusterReport, ClusterWorkload,
    ClusterWorkloadSnapshot,
};
use crate::resume::{KillPoint, StepBoundary};
use crate::session::SessionError;
use serde::{Deserialize, Serialize};
use std::fmt;
use teco_cxl::{CollectiveConfig, CollectiveError, PoolCollective, PoolCollectiveSnapshot};
use teco_mem::LineData;
use teco_sim::{decode_snapshot, encode_snapshot, SimTime, SnapshotError};

/// Typed failure of the multi-host fabric, carrying host/step/time
/// context. Wraps the per-host session errors and the collective
/// layer's typed errors so nothing on the fabric path panics on a
/// non-boundary kill point.
#[derive(Debug, Clone, PartialEq)]
pub enum FabricError {
    /// A per-host cluster operation failed.
    Session(SessionError),
    /// The inter-host collective failed.
    Collective(CollectiveError),
    /// A host was declared lost and nobody recovered it.
    HostLost {
        /// The lost host.
        host: u64,
        /// The training step the loss surfaced in.
        step: u64,
        /// Simulated time of the declaration, in nanoseconds.
        time_ns: u64,
    },
    /// The workload or harness parameters are unusable.
    Config(String),
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::Session(e) => write!(f, "fabric host session error: {e}"),
            FabricError::Collective(e) => write!(f, "fabric collective error: {e}"),
            FabricError::HostLost { host, step, time_ns } => {
                write!(f, "host {host} lost at step {step} ({time_ns} ns) with no recovery")
            }
            FabricError::Config(msg) => write!(f, "fabric config error: {msg}"),
        }
    }
}

impl std::error::Error for FabricError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FabricError::Session(e) => Some(e),
            FabricError::Collective(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SessionError> for FabricError {
    fn from(e: SessionError) -> Self {
        FabricError::Session(e)
    }
}

impl From<CollectiveError> for FabricError {
    fn from(e: CollectiveError) -> Self {
        FabricError::Collective(e)
    }
}

/// A fixed-seed multi-host workload the harness can run, kill, and
/// resume.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricWorkload {
    /// The per-host cluster workload, replicated across hosts (host 0
    /// keeps the standalone seeding; hosts 1.. fork their content
    /// streams by host label).
    pub base: ClusterWorkload,
    /// Hosts sharing the pool.
    pub hosts: usize,
    /// Collective-layer tuning; `collective.hosts` must equal `hosts`.
    pub collective: CollectiveConfig,
}

impl FabricWorkload {
    /// A small default workload: `hosts` hosts of
    /// [`ClusterWorkload::small`] clusters.
    pub fn small(hosts: usize, devices: usize, seed: u64) -> Self {
        FabricWorkload {
            base: ClusterWorkload::small(devices, seed),
            hosts,
            collective: CollectiveConfig::for_hosts(hosts),
        }
    }

    fn validate(&self) -> Result<(), FabricError> {
        if self.hosts == 0 {
            return Err(FabricError::Config("fabric needs at least one host".into()));
        }
        if self.collective.hosts != self.hosts {
            return Err(FabricError::Config(format!(
                "collective config models {} hosts but the fabric has {}",
                self.collective.hosts, self.hosts
            )));
        }
        Ok(())
    }
}

/// Live driver state for a [`FabricWorkload`] (what a kill destroys).
#[derive(Debug)]
pub struct FabricDriver {
    hosts: Vec<ClusterDriver>,
    collective: PoolCollective,
    /// Fabric-clock excess over the host clusters' clocks: how far the
    /// inter-host exchanges have pushed the global timeline past the
    /// slowest host's own physics.
    lag: SimTime,
    /// Total time spent in inter-host exchanges (barrier to completion).
    exchange_time: SimTime,
    /// The latest globally reduced gradient accumulator.
    global_grads: Vec<u8>,
    /// FNV-1a-64 folded over every step's reduced gradient bytes.
    grad_checksum: u64,
    /// Per-host staging scratch (capacity reused across steps).
    staged: Vec<Vec<u8>>,
    ready_buf: Vec<SimTime>,
    param_buf: Vec<LineData>,
}

impl FabricDriver {
    /// Build every host's cluster and the pool collective engine.
    pub fn new(w: &FabricWorkload) -> Result<Self, FabricError> {
        w.validate()?;
        let hosts = (0..w.hosts)
            .map(|h| ClusterDriver::for_host(&w.base, h))
            .collect::<Result<Vec<_>, SessionError>>()?;
        Ok(FabricDriver {
            hosts,
            collective: PoolCollective::new(w.collective)?,
            lag: SimTime::ZERO,
            exchange_time: SimTime::ZERO,
            global_grads: Vec::new(),
            grad_checksum: 0xcbf2_9ce4_8422_2325,
            staged: Vec::new(),
            ready_buf: Vec::new(),
            param_buf: Vec::new(),
        })
    }

    /// The per-host cluster drivers.
    pub fn hosts(&self) -> &[ClusterDriver] {
        &self.hosts
    }
    /// The pool collective engine.
    pub fn collective(&self) -> &PoolCollective {
        &self.collective
    }
    /// Completed steps (every host advances in lockstep).
    pub fn step(&self) -> u64 {
        self.hosts[0].step()
    }
    /// The latest globally reduced gradient bytes.
    pub fn global_grads(&self) -> &[u8] {
        &self.global_grads
    }
    /// The parameter lines broadcast by the most recent step (empty
    /// before the first broadcast). The chaos harness folds these into
    /// its parameter checksum without re-deriving the draw stream.
    pub fn last_params(&self) -> &[LineData] {
        &self.param_buf
    }

    /// The fabric clock: the slowest host's own physics plus the
    /// accumulated inter-host exchange excess.
    pub fn fabric_time(&self) -> SimTime {
        self.max_cluster_time() + self.lag
    }

    fn max_cluster_time(&self) -> SimTime {
        self.hosts.iter().map(|d| d.cluster().cluster_time()).fold(SimTime::ZERO, SimTime::max)
    }

    /// Stage every host's pooled accumulator and all-reduce them through
    /// the pool. At H = 1 the collective is a structural no-op (no data
    /// movement, no arbiter state) and the "global" gradient is host 0's
    /// accumulator verbatim.
    fn exchange(&mut self) -> Result<(), FabricError> {
        let h = self.hosts.len();
        self.staged.resize_with(h, Vec::new);
        self.ready_buf.clear();
        for (host, buf) in self.hosts.iter().zip(self.staged.iter_mut()) {
            host.cluster().pool().copy_grad_bytes_into(buf);
            self.ready_buf.push(host.cluster().cluster_time() + self.lag);
        }
        let outcome = self.collective.all_reduce(&mut self.staged, &self.ready_buf)?;
        self.lag = outcome.completion.saturating_sub(self.max_cluster_time());
        self.exchange_time += outcome.completion - outcome.start;
        for &b in &self.staged[0] {
            self.grad_checksum = (self.grad_checksum ^ b as u64).wrapping_mul(0x1000_0000_01b3);
        }
        self.global_grads.clear();
        self.global_grads.extend_from_slice(&self.staged[0]);
        Ok(())
    }

    /// One globally shared parameter update: drawn from host 0's pool
    /// stream, broadcast to every host's giant caches.
    fn broadcast(&mut self) -> Result<(), FabricError> {
        let mut lines = std::mem::take(&mut self.param_buf);
        self.hosts[0].draw_param_lines(&mut lines);
        for host in &mut self.hosts {
            host.broadcast_lines(&lines)?;
        }
        self.param_buf = lines;
        Ok(())
    }

    /// Run the current step from its start up to (and including) `until`.
    /// The fabric's `AfterGradFence` boundary includes the inter-host
    /// exchange.
    pub fn run_step_until(&mut self, until: StepBoundary) -> Result<(), FabricError> {
        for host in &mut self.hosts {
            host.run_step_until(StepBoundary::AfterGradFence)?;
        }
        self.exchange()?;
        if until == StepBoundary::AfterGradFence {
            return Ok(());
        }
        for host in &mut self.hosts {
            host.check_activation();
        }
        if until == StepBoundary::AfterActivation {
            return Ok(());
        }
        self.broadcast()
    }

    /// Finish the current step from `after` (exclusive) to its end.
    pub fn finish_step_from(&mut self, after: StepBoundary) -> Result<(), FabricError> {
        match after {
            StepBoundary::AfterParamFence => Ok(()), // step completed pre-kill
            StepBoundary::AfterGradFence => {
                for host in &mut self.hosts {
                    host.check_activation();
                }
                self.broadcast()
            }
            StepBoundary::AfterActivation => self.broadcast(),
        }
    }

    /// Run one full step.
    pub fn run_step(&mut self) -> Result<(), FabricError> {
        self.run_step_until(StepBoundary::AfterParamFence)
    }

    /// Capture the fabric whole.
    pub fn capture(&self) -> FabricSnapshot {
        FabricSnapshot {
            hosts: self.hosts.iter().map(|d| d.capture()).collect(),
            collective: self.collective.snapshot(),
            lag: self.lag,
            exchange_time: self.exchange_time,
            global_grads: self.global_grads.clone(),
            grad_checksum: self.grad_checksum,
        }
    }

    /// Rebuild a fabric from a captured state.
    pub fn restore(s: &FabricSnapshot) -> Result<Self, FabricError> {
        if s.hosts.is_empty() {
            return Err(FabricError::Config("fabric snapshot has no hosts".into()));
        }
        Ok(FabricDriver {
            hosts: s
                .hosts
                .iter()
                .map(ClusterDriver::restore)
                .collect::<Result<Vec<_>, SessionError>>()?,
            collective: PoolCollective::restore(&s.collective)?,
            lag: s.lag,
            exchange_time: s.exchange_time,
            global_grads: s.global_grads.clone(),
            grad_checksum: s.grad_checksum,
            staged: Vec::new(),
            ready_buf: Vec::new(),
            param_buf: Vec::new(),
        })
    }

    /// The fabric report at the current step.
    pub fn report(&self) -> FabricReport {
        let stats = self.collective.stats();
        FabricReport {
            hosts: self.hosts.len() as u64,
            steps: self.step(),
            fabric_time_ns: self.fabric_time().as_ns(),
            exchange_ns: self.exchange_time.as_ns(),
            all_reduces: stats.all_reduces,
            pool_port_bytes: stats.port_bytes,
            pool_media_bytes: stats.media_bytes,
            fanin_saved_bytes: self.collective.media().fanin_saved_bytes(),
            global_grad_checksum: self.grad_checksum,
            host_reports: self.hosts.iter().map(|d| d.report()).collect(),
        }
    }
}

/// Everything the fabric holds between steps, captured whole.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FabricSnapshot {
    /// Every host cluster's checkpoint image.
    pub hosts: Vec<ClusterWorkloadSnapshot>,
    /// The collective engine's state (media arbiter, counters).
    pub collective: PoolCollectiveSnapshot,
    /// Fabric-clock excess over the host clocks.
    pub lag: SimTime,
    /// Accumulated exchange time.
    pub exchange_time: SimTime,
    /// The latest globally reduced gradient.
    pub global_grads: Vec<u8>,
    /// Running FNV-1a-64 over every step's reduced gradient.
    pub grad_checksum: u64,
}

/// The fabric run's observable result: serializing this to JSON is the
/// byte-identity oracle for fabric snapshot/resume, and `host_reports[0]`
/// is byte-identical to the standalone cluster path at **every** H (H=1
/// additionally makes the whole fabric equivalent to that path).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricReport {
    /// Hosts in the fabric.
    pub hosts: u64,
    /// Steps completed.
    pub steps: u64,
    /// The fabric clock in nanoseconds.
    pub fabric_time_ns: u64,
    /// Time spent in inter-host exchanges.
    pub exchange_ns: u64,
    /// Pool-staged all-reduces executed.
    pub all_reduces: u64,
    /// Host↔pool port bytes the collectives moved.
    pub pool_port_bytes: u64,
    /// Pool-DRAM bytes served (fan-in deduplicated).
    pub pool_media_bytes: u64,
    /// Media bytes the gather fan-in avoided re-reading.
    pub fanin_saved_bytes: u64,
    /// Running checksum of every step's globally reduced gradient.
    pub global_grad_checksum: u64,
    /// Per-host cluster reports.
    pub host_reports: Vec<ClusterReport>,
}

/// A fabric report plus harness-side bookkeeping kept out of it (mirrors
/// [`crate::cluster::ClusterRunOutcome`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FabricRunOutcome {
    /// The byte-identity-comparable report.
    pub report: FabricReport,
    /// Snapshots the harness took (0 for an uninterrupted run).
    pub snapshots_taken: u64,
    /// Restores the harness performed (0 for an uninterrupted run).
    pub restores: u64,
    /// Serialized snapshot size in bytes (0 for an uninterrupted run).
    pub snapshot_bytes: u64,
}

/// Run the fabric workload start to finish with no interruption.
pub fn run_fabric_uninterrupted(w: &FabricWorkload) -> Result<FabricRunOutcome, FabricError> {
    let mut d = FabricDriver::new(w)?;
    for _ in 0..w.base.steps {
        d.run_step()?;
    }
    Ok(FabricRunOutcome { report: d.report(), snapshots_taken: 0, restores: 0, snapshot_bytes: 0 })
}

/// Run the fabric workload, kill it at `kill`, restore every host and the
/// collective engine from serialized bytes, and finish. The returned
/// outcome's `report` must serialize byte-identical to
/// [`run_fabric_uninterrupted`]'s.
pub fn run_fabric_resumed(
    w: &FabricWorkload,
    kill: KillPoint,
) -> Result<FabricRunOutcome, FabricError> {
    if kill.step >= w.base.steps {
        return Err(FabricError::Config(format!(
            "kill step {} out of range {}",
            kill.step, w.base.steps
        )));
    }
    let mut d = FabricDriver::new(w)?;
    for _ in 0..kill.step {
        d.run_step()?;
    }
    d.run_step_until(kill.boundary)?;

    let bytes = encode_snapshot(&d.capture());
    let snapshot_bytes = bytes.len() as u64;
    drop(d);
    let snap: FabricSnapshot =
        decode_snapshot(&bytes).map_err(|e: SnapshotError| FabricError::Config(e.to_string()))?;
    let mut d = FabricDriver::restore(&snap)?;

    d.finish_step_from(kill.boundary)?;
    while d.step() < w.base.steps {
        d.run_step()?;
    }
    Ok(FabricRunOutcome { report: d.report(), snapshots_taken: 1, restores: 1, snapshot_bytes })
}

/// Serialized `host_reports[0]` of an H-host fabric equals the standalone
/// cluster report of the same base workload — exposed as a helper so the
/// bench sweep can assert the anchor inside every row.
pub fn host0_matches_cluster_path(w: &FabricWorkload) -> Result<bool, FabricError> {
    let fabric = run_fabric_uninterrupted(w)?;
    let cluster = run_cluster_uninterrupted(&w.base)?;
    let a = serde_json::to_string(&fabric.report.host_reports[0])
        .map_err(|e| FabricError::Config(e.to_string()))?;
    let b =
        serde_json::to_string(&cluster.report).map_err(|e| FabricError::Config(e.to_string()))?;
    Ok(a == b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use teco_cxl::dba::scalar;

    #[test]
    fn h1_fabric_report_is_byte_identical_to_the_cluster_path() {
        let w = FabricWorkload::small(1, 2, 42);
        let fabric = run_fabric_uninterrupted(&w).unwrap();
        let cluster = run_cluster_uninterrupted(&w.base).unwrap();
        assert_eq!(
            serde_json::to_string(&fabric.report.host_reports[0]).unwrap(),
            serde_json::to_string(&cluster.report).unwrap()
        );
        assert_eq!(fabric.report.pool_port_bytes, 0, "H = 1 moves nothing inter-host");
        assert_eq!(fabric.report.exchange_ns, 0);
        assert_eq!(
            fabric.report.fabric_time_ns, cluster.report.cluster_time_ns,
            "H = 1 fabric clock is the cluster clock"
        );
    }

    #[test]
    fn host0_stays_unperturbed_at_every_host_count() {
        for hosts in [2usize, 4] {
            let w = FabricWorkload::small(hosts, 2, 7);
            assert!(
                host0_matches_cluster_path(&w).unwrap(),
                "host 0 of an H={hosts} fabric must match the standalone cluster"
            );
        }
    }

    #[test]
    fn peer_hosts_train_distinct_shards_but_share_parameters() {
        let w = FabricWorkload::small(3, 2, 5);
        let r = run_fabric_uninterrupted(&w).unwrap().report;
        // Different gradient content per host → different pool checksums…
        assert_ne!(r.host_reports[0].pool_checksum, r.host_reports[1].pool_checksum);
        assert_ne!(r.host_reports[1].pool_checksum, r.host_reports[2].pool_checksum);
        // …but the same physics shape: identical step counts and volumes.
        for hr in &r.host_reports {
            assert_eq!(hr.steps, r.host_reports[0].steps);
            assert_eq!(hr.reduced_lines, r.host_reports[0].reduced_lines);
            assert_eq!(hr.cluster_time_ns, r.host_reports[0].cluster_time_ns);
        }
        assert_eq!(r.all_reduces, r.steps);
        assert!(r.exchange_ns > 0);
    }

    #[test]
    fn global_gradient_is_the_wrapping_sum_of_every_hosts_accumulator() {
        let w = FabricWorkload::small(4, 2, 11);
        let mut d = FabricDriver::new(&w).unwrap();
        for _ in 0..w.base.steps {
            d.run_step().unwrap();
        }
        let mut want: Option<Vec<u8>> = None;
        for host in d.hosts() {
            let mut bytes = Vec::new();
            host.cluster().pool().copy_grad_bytes_into(&mut bytes);
            match &mut want {
                None => want = Some(bytes),
                Some(acc) => scalar::reduce_sum_words(&bytes, acc),
            }
        }
        assert_eq!(d.global_grads(), want.unwrap().as_slice());
    }

    #[test]
    fn fabric_runs_are_deterministic() {
        let w = FabricWorkload::small(2, 2, 9);
        let a = run_fabric_uninterrupted(&w).unwrap();
        let b = run_fabric_uninterrupted(&w).unwrap();
        assert_eq!(serde_json::to_string(&a).unwrap(), serde_json::to_string(&b).unwrap());
    }
}
