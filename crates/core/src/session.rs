//! The TECO session: the runtime object behind Listing 1's two-line
//! integration.
//!
//! A session owns the whole hardware stack — coherence engine, CPU-side
//! Aggregator, device-side giant cache with its Disaggregator, the CXL
//! link, and `CXLFENCE` — and exposes the paper's user API:
//! `check_activation(step)` after `loss.backward()`, with tensor mapping
//! and fences hidden inside. It also provides the *functional* end-to-end
//! data path (CPU writes a parameter line → update protocol → aggregation
//! → link → merge into the giant cache) used by the examples and
//! integration tests.

use crate::config::TecoConfig;
use crate::placement::{PlacementEngine, PlacementEngineSnapshot, PlacementPolicy};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use teco_cxl::{
    audit_all, line_checksum, merged_reference, Agent, Aggregator, AggregatorSnapshot, AuditError,
    CoherenceFabric, CoherenceSnapshot, CxlFence, CxlLink, CxlLinkSnapshot, CxlPacket, DbaRegister,
    Direction, FaultStats, FenceDeadline, FenceStats, FenceTimeout, GiantCache, GiantCacheError,
    GiantCacheSnapshot, LinkError, MediaRas, MediaRasSnapshot, Opcode, ProtocolMode, RasStats,
};
use teco_mem::tier::Tier;
use teco_mem::{Addr, LineData, RegionId, LINE_BYTES};
use teco_sim::{Interval, SimTime};

/// Statistics a session accumulates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionStats {
    /// Parameter lines pushed CPU→device.
    pub param_lines: u64,
    /// Gradient lines pushed device→CPU.
    pub grad_lines: u64,
    /// Payload bytes CPU→device.
    pub bytes_to_device: u64,
    /// Payload bytes device→CPU.
    pub bytes_to_host: u64,
    /// Training steps seen by `check_activation`.
    pub steps: u64,
}

/// Typed session errors — every fallible step of the data path surfaces
/// here instead of panicking, so fault reporting can attribute failures.
#[derive(Debug, Clone, PartialEq)]
pub enum SessionError {
    /// The configuration failed validation.
    Config(String),
    /// A giant-cache operation failed (unmapped address, capacity,
    /// quarantined line).
    GiantCache(GiantCacheError),
    /// The link gave up on a transfer (replay buffer exhausted).
    Link(LinkError),
    /// A `CXLFENCE` did not complete within its configured timeout.
    Fence(FenceTimeout),
    /// The paranoid auditor found a cross-module invariant violation.
    Audit(AuditError),
    /// A cluster device stopped responding: its fence never reaches the
    /// watchdog deadline's horizon and every operation on it fails typed.
    DeviceDown {
        /// The dead device's index.
        device: u64,
        /// Simulation time the operation observed the loss, ns.
        time_ns: u64,
    },
    /// An inner error wrapped with attribution context, so a failure in
    /// an N-device cluster names the device, region, and sim time that
    /// produced it from the error alone.
    Context {
        /// Device the failing operation ran on.
        device: u64,
        /// Giant-cache region involved, when known.
        region: Option<String>,
        /// Simulation time of the failure, ns.
        time_ns: u64,
        /// The underlying error.
        source: Box<SessionError>,
    },
}

impl SessionError {
    /// Wrap this error with cluster attribution context.
    pub fn in_context(self, device: u64, region: Option<String>, now: SimTime) -> SessionError {
        SessionError::Context { device, region, time_ns: now.as_ns(), source: Box::new(self) }
    }

    /// The innermost (context-free) error, for `matches!`-style dispatch.
    pub fn root(&self) -> &SessionError {
        match self {
            SessionError::Context { source, .. } => source.root(),
            other => other,
        }
    }
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Config(msg) => write!(f, "invalid config: {msg}"),
            SessionError::GiantCache(e) => write!(f, "giant cache: {e}"),
            SessionError::Link(e) => write!(f, "link: {e}"),
            SessionError::Fence(e) => write!(f, "fence: {e}"),
            SessionError::Audit(e) => write!(f, "audit: {e}"),
            SessionError::DeviceDown { device, time_ns } => {
                write!(f, "device {device} down at t={time_ns} ns: link unresponsive")
            }
            SessionError::Context { device, region, time_ns, source } => {
                write!(f, "device {device}")?;
                if let Some(r) = region {
                    write!(f, " region `{r}`")?;
                }
                write!(f, " at t={time_ns} ns: {source}")
            }
        }
    }
}
impl std::error::Error for SessionError {}

impl From<GiantCacheError> for SessionError {
    fn from(e: GiantCacheError) -> Self {
        SessionError::GiantCache(e)
    }
}
impl From<LinkError> for SessionError {
    fn from(e: LinkError) -> Self {
        SessionError::Link(e)
    }
}
impl From<FenceTimeout> for SessionError {
    fn from(e: FenceTimeout) -> Self {
        SessionError::Fence(e)
    }
}

/// The TECO runtime session.
#[derive(Debug)]
pub struct TecoSession {
    cfg: TecoConfig,
    /// CPU-side CXL module.
    aggregator: Aggregator,
    /// Accelerator memory mapped into the coherence domain (owns the
    /// Disaggregator).
    giant_cache: GiantCache,
    /// The MESI(+update) engine, behind the serial-or-sharded fabric.
    coherence: CoherenceFabric,
    /// The physical link.
    link: CxlLink,
    /// CXLFENCE bookkeeping.
    fence: CxlFence,
    dba_active: bool,
    stats: SessionStats,
    /// Reused wire buffer for the bulk aggregation path; retains its
    /// capacity across pushes so the steady state allocates nothing.
    wire_buf: Vec<u8>,
    /// Session-side recovery counters (quarantines, checksum mismatches,
    /// full-line retries, degradations, fence timeouts). Disjoint from the
    /// link's counters; [`TecoSession::fault_report`] merges both.
    fstats: FaultStats,
    /// Base addresses of regions downgraded to the software-memcpy
    /// baseline after the recovery ladder gave up on them.
    degraded: HashSet<u64>,
    /// Names of the degraded regions, in degradation order.
    degraded_names: Vec<String>,
    /// The paranoid auditor's shadow: an independently maintained copy of
    /// every giant-cache line this session wrote, evolved CPU-side by the
    /// same DBA-merge semantics the device applies. `None` when auditing is
    /// off — the legacy path then never touches it (no allocations, no
    /// hashing, no walks).
    shadow: Option<HashMap<u64, LineData>>,
    /// Pool-media RAS for this device's giant-cache pages: persistent
    /// fault arrivals, the patrol scrubber, and retirement accounting.
    /// `None` when `cfg.ras` is off — the legacy path then pays nothing.
    media: Option<MediaRas>,
    /// Reused scratch for patrol-scrub results; retains capacity across
    /// steps so the RAS steady state allocates nothing.
    scrub_buf: Vec<u64>,
    /// The tiered placement engine. `None` under the default single-tier
    /// policy — the legacy path then pays nothing: no placement map, no
    /// heat taps, no boundary planning, no new snapshot fields.
    placement: Option<PlacementEngine>,
}

impl TecoSession {
    /// Create a session; the giant cache is sized by the config's BAR
    /// setting.
    pub fn new(cfg: TecoConfig) -> Result<Self, SessionError> {
        cfg.validate().map_err(SessionError::Config)?;
        let mut giant_cache = GiantCache::new(cfg.giant_cache_bytes);
        if cfg.ras.enabled() {
            giant_cache.configure_spares(cfg.ras.spare_lines);
        }
        Ok(TecoSession {
            aggregator: Aggregator::new(),
            giant_cache,
            coherence: CoherenceFabric::new(cfg.protocol),
            link: CxlLink::new(cfg.cxl),
            fence: CxlFence::new(),
            dba_active: false,
            stats: SessionStats::default(),
            wire_buf: Vec::new(),
            fstats: FaultStats::default(),
            degraded: HashSet::new(),
            degraded_names: Vec::new(),
            shadow: if cfg.audit { Some(HashMap::new()) } else { None },
            media: if cfg.ras.enabled() { Some(MediaRas::new(cfg.ras)) } else { None },
            scrub_buf: Vec::new(),
            placement: match &cfg.placement {
                PlacementPolicy::SingleTier => None,
                PlacementPolicy::Tiered(p) => {
                    Some(PlacementEngine::new(p.clone(), cfg.giant_cache_bytes))
                }
            },
            cfg,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &TecoConfig {
        &self.cfg
    }
    /// Is DBA currently active?
    pub fn dba_active(&self) -> bool {
        self.dba_active
    }
    /// Session statistics.
    pub fn stats(&self) -> SessionStats {
        self.stats
    }
    /// The giant cache (read access for assertions/tests).
    pub fn giant_cache(&self) -> &GiantCache {
        &self.giant_cache
    }
    /// The coherence fabric (serial engine or region shards).
    pub fn coherence(&self) -> &CoherenceFabric {
        &self.coherence
    }
    /// Coherence worker shards (1 = the serial engine, the default).
    pub fn coherence_workers(&self) -> usize {
        self.coherence.workers()
    }
    /// Re-shard the coherence engine across `workers` region shards (1
    /// restores the serial engine). Observable behavior — packets, counts,
    /// traffic, snapshots — is byte-identical at any worker count; only
    /// bulk-push wall clock changes. A runtime knob, deliberately not part
    /// of [`TecoConfig`] or the checkpoint image.
    pub fn set_coherence_workers(&mut self, workers: usize) {
        self.coherence.set_workers(workers);
    }
    /// The link.
    pub fn link(&self) -> &CxlLink {
        &self.link
    }
    /// Fence statistics.
    pub fn fence_stats(&self) -> teco_cxl::FenceStats {
        self.fence.stats()
    }

    /// Map a tensor into the giant-cache coherence domain (hidden from the
    /// user in §VI — called by the framework at allocation time). Returns
    /// the region id and device base address.
    pub fn alloc_tensor(
        &mut self,
        name: impl Into<String>,
        bytes: u64,
    ) -> Result<(RegionId, Addr), GiantCacheError> {
        let name = name.into();
        let rounded = bytes.div_ceil(LINE_BYTES as u64) * LINE_BYTES as u64;
        if let Some(engine) = &mut self.placement {
            // The placement engine decides the tier. Giant-cache tensors
            // take the classic path below; device-resident and host-DRAM
            // tensors get engine-backed side storage instead.
            let (handle, tier) = engine.place(&name, bytes).map_err(|e| match e {
                teco_mem::tier::TierError::CapacityExceeded { requested, available, .. } => {
                    GiantCacheError::CapacityExceeded { requested, available }
                }
                other => panic!("placement failed unexpectedly: {other}"),
            })?;
            if tier != Tier::GiantCache {
                let base = engine.bind_side(handle);
                // Side regions never collide with giant-cache ids; offset
                // well past any BAR-allocated index.
                return Ok((RegionId(1_000_000 + handle), base));
            }
            let (id, base) = self.giant_cache.alloc_region(name, bytes)?;
            self.coherence.register_region(base, rounded);
            self.placement.as_mut().expect("engine checked above").bind(handle, base.0, rounded);
            return Ok((id, base));
        }
        let (id, base) = self.giant_cache.alloc_region(name, bytes)?;
        // Register the line-rounded span with the coherence engine so its
        // per-line state (and the snoop directory behind it) lives in the
        // dense arena instead of the spillover map.
        self.coherence.register_region(base, rounded);
        Ok((id, base))
    }

    /// Listing 1's `check_activation(i)`: called once per training step
    /// after `loss.backward()`. Activates DBA once `act_aft_steps` have
    /// elapsed, programming the DBA register in the CPU CXL module and
    /// propagating it to the accelerator's module via a `DbaConfig`
    /// message. Returns whether DBA is active.
    pub fn check_activation(&mut self, step: u64) -> bool {
        self.ras_maintenance();
        self.stats.steps = self.stats.steps.max(step + 1);
        let should = step >= self.cfg.act_aft_steps
            && self.cfg.dirty_bytes < 4
            && self.cfg.protocol == ProtocolMode::Update;
        if should && !self.dba_active {
            let reg = DbaRegister::new(true, self.cfg.dirty_bytes);
            self.aggregator.set_register(reg);
            // Host agent forwards the register value to the device module.
            self.giant_cache.disaggregator.set_register(reg);
            self.dba_active = true;
        }
        // The step boundary is the only point tensors may migrate between
        // tiers; a replayed step is a no-op inside the engine.
        if let Some(engine) = &mut self.placement {
            engine.step_boundary(step);
        }
        self.dba_active
    }

    /// Per-step pool-media RAS events, run as part of the training-step
    /// schedule: persistent-fault arrivals land in the latent set, then
    /// one budgeted patrol-scrub window walks its region slice and every
    /// latent fault it finds is retired on the spot. A no-op when RAS is
    /// off.
    fn ras_maintenance(&mut self) {
        if self.media.is_none() {
            return;
        }
        let mapped = self.giant_cache.mapped_lines() as u64;
        let mut buf = std::mem::take(&mut self.scrub_buf);
        buf.clear();
        {
            let media = self.media.as_mut().expect("checked above");
            media.tick(mapped);
            media.scrub(mapped, &mut buf);
        }
        for &line in &buf {
            self.retire_media_line(line);
        }
        self.scrub_buf = buf;
    }

    /// Retire one faulted giant-cache line: quarantine it so no read can
    /// return the corrupt media (the PR 2 containment front end), and
    /// re-home its storage to a spare slot when one is available. The
    /// next parameter push to the line rebuilds it from the authoritative
    /// CPU copy via the full-line heal path.
    fn retire_media_line(&mut self, line: u64) {
        let addr = Addr(line * LINE_BYTES as u64);
        let remapped = self.giant_cache.retire_line(addr).unwrap_or(false);
        let _ = self.giant_cache.quarantine_line(addr);
        if let Some(m) = self.media.as_mut() {
            m.note_retired(remapped);
        }
    }

    /// Is the pool-media RAS model enabled?
    pub fn ras_enabled(&self) -> bool {
        self.media.is_some()
    }

    /// The tiered placement engine, when a non-default policy is active.
    pub fn placement(&self) -> Option<&PlacementEngine> {
        self.placement.as_ref()
    }

    /// Size in bytes of the allocated tensor region containing `addr`,
    /// whether it lives in the giant cache or an engine-backed side tier.
    pub fn region_bytes(&self, addr: Addr) -> Option<u64> {
        if let Some(engine) = &self.placement {
            if addr.0 >= crate::placement::SIDE_BASE {
                return engine.locate(addr).map(|(h, _)| engine.map().tensors()[h].bytes);
            }
        }
        self.giant_cache.regions().lookup(addr).map(|r| r.size)
    }

    /// Is the tiered placement engine active?
    pub fn placement_enabled(&self) -> bool {
        self.placement.is_some()
    }

    /// Pool-media RAS statistics (all-zero when RAS is off).
    pub fn ras_report(&self) -> RasStats {
        self.media.as_ref().map(|m| *m.stats()).unwrap_or_default()
    }

    /// Latent (injected, not yet detected) media faults right now.
    pub fn ras_latent(&self) -> u64 {
        self.media.as_ref().map_or(0, |m| m.latent_count())
    }

    /// Push one *parameter* cache line CPU→device through the full TECO
    /// path: coherence transaction, (possible) aggregation, link transfer,
    /// and device-side merge into the giant cache. Returns the wire
    /// interval.
    ///
    /// `fresh` is the updated line as the CPU optimizer produced it.
    pub fn push_param_line(
        &mut self,
        addr: Addr,
        fresh: LineData,
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        self.push_param_lines(addr, std::slice::from_ref(&fresh), now)
    }

    /// Push a run of consecutive *parameter* lines CPU→device through the
    /// bulk TECO path: one Aggregator pass packs every payload into a
    /// reused wire buffer, the coherence transactions run on the
    /// allocation-free accounting path, the link is charged per line
    /// (timing identical to N calls of [`TecoSession::push_param_line`]),
    /// and the device merges all lines in a single Disaggregator pass.
    ///
    /// `lines[i]` maps to line address `base + 64·i`. Returns the union of
    /// the per-line wire intervals.
    pub fn push_param_lines(
        &mut self,
        base: Addr,
        lines: &[LineData],
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        let n = lines.len();
        if n == 0 {
            return Ok(Interval::new(now, now));
        }
        if self.placement.as_ref().is_some_and(|e| e.owns(base)) {
            return self.push_side_lines(base, lines, now, true);
        }
        if let Some(engine) = &mut self.placement {
            // Heat tap on the coherence-transaction stream for giant-cache
            // tensors; informational for pinned regions, decisive for
            // promoted ones.
            engine.note_write(base, (n * LINE_BYTES) as u64);
        }
        let addr_of = |i: usize| Addr(base.0 + (i * LINE_BYTES) as u64);
        for i in 0..n {
            if !self.giant_cache.is_mapped(addr_of(i)) {
                return Err(GiantCacheError::NotMapped(addr_of(i)).into());
            }
        }
        // The guarded per-line ladder runs only when it can matter: with
        // the fault model off, no media RAS, and nothing degraded, the
        // bulk fast path is byte- and cycle-identical to the
        // pre-fault-model behavior.
        if self.link.faults_enabled() || !self.degraded.is_empty() || self.media.is_some() {
            let mut iv = Interval::new(now, now);
            for (i, line) in lines.iter().enumerate() {
                let t = self.push_param_line_guarded(addr_of(i), line, now)?;
                iv = if i == 0 {
                    t
                } else {
                    Interval::new(iv.start.min(t.start), iv.end.max(t.end))
                };
            }
            return Ok(iv);
        }
        let mut payload = std::mem::take(&mut self.wire_buf);
        let total = self.aggregator.aggregate_lines(lines, &mut payload);
        let per = total / n;
        let aggregated = per < LINE_BYTES;
        let latency = if aggregated { self.cfg.cxl.aggregator_latency } else { SimTime::ZERO };
        let mut iv = Interval::new(now, now);
        // One span lookup covers the whole run when the region is
        // registered; the whole run then hits the coherence fabric in one
        // call — the serial engine loops the dense slots in order, a
        // sharded fabric scatters them to region shards and merges the
        // outcome in (time, seq) order. The link is charged per line
        // afterwards; link state is independent of coherence state, so
        // timing is identical to the interleaved per-line ordering.
        let run = self.coherence.resolve_run(base, n);
        let pushed = match run {
            Some(start) => self.coherence.write_run_accounted(Agent::Cpu, start, n, per),
            None => {
                let mut all = true;
                for i in 0..n {
                    all &= self.coherence.write_accounted(Agent::Cpu, addr_of(i), per);
                }
                all
            }
        };
        debug_assert!(pushed || self.cfg.protocol == ProtocolMode::Invalidation);
        for i in 0..n {
            let t = self.link.transfer(Direction::ToDevice, now, per as u64, latency);
            iv = if i == 0 { t } else { Interval::new(iv.start.min(t.start), iv.end.max(t.end)) };
        }
        // Device side: merge (DBA) or overwrite (full lines), one pass.
        self.giant_cache.apply_dba_payloads(base, n, &payload)?;
        if self.shadow.is_some() {
            let dirty = if aggregated { self.aggregator.register().dirty_bytes() } else { 4 };
            for (i, line) in lines.iter().enumerate() {
                self.shadow_merge(addr_of(i), line, dirty);
            }
        }
        self.stats.param_lines += n as u64;
        self.stats.bytes_to_device += total as u64;
        self.wire_buf = payload;
        Ok(iv)
    }

    /// One parameter line through the recovery ladder:
    ///
    /// 1. DBA payload with a Fletcher-16 checksum. A checksum mismatch
    ///    (payload corrupted in the aggregation pipeline) or a poisoned
    ///    delivery (line quarantined on the device) falls to step 2.
    /// 2. Retry as an uncompacted full 64-byte line — self-describing, no
    ///    resident-copy merge, so it both avoids the DBA pipeline and heals
    ///    a quarantine.
    /// 3. If the link's replay buffer exhausts (either step), the whole
    ///    region downgrades to the software-memcpy baseline: plain copies
    ///    outside the coherent fault path, recorded in the fault report.
    fn push_param_line_guarded(
        &mut self,
        addr: Addr,
        line: &LineData,
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        if self.region_degraded(addr) {
            return self.push_baseline_line(addr, line, now);
        }
        if self.media.is_some() {
            // On-access detection: a latent media fault on this line is
            // found (and retired) by the access itself, without waiting
            // for the patrol scrubber to reach it.
            let line_idx = addr.0 / LINE_BYTES as u64;
            let hit = self.media.as_mut().expect("checked above").check_access(line_idx);
            if hit {
                self.retire_media_line(line_idx);
            }
            if self.giant_cache.is_quarantined(addr) {
                // The resident copy is gone (retired or still poisoned).
                // The fresh CPU line is authoritative: rebuild with a
                // full, uncompacted write, which heals the quarantine and
                // lands in the line's current (possibly re-homed) slot.
                self.media.as_mut().expect("checked above").note_rebuild();
                return self.retry_full_line(addr, line, now);
            }
        }
        let mut buf = [0u8; LINE_BYTES];
        // Sender-side checksum, computed in the same pass that packs the
        // payload; the receiver recomputes after the wire (and the
        // aggregation pipeline) had their chance to corrupt it.
        let (per, expect) = self.aggregator.aggregate_into_checksummed(line, &mut buf);
        let clean = buf;
        let payload = &mut buf[..per];
        let aggregated = per < LINE_BYTES;
        let latency = if aggregated { self.cfg.cxl.aggregator_latency } else { SimTime::ZERO };
        self.link.corrupt_payload(payload);
        let pushed = self.coherence.write_accounted(Agent::Cpu, addr, per);
        debug_assert!(pushed || self.cfg.protocol == ProtocolMode::Invalidation);
        let out = match self.link.transfer_checked(Direction::ToDevice, now, per as u64, latency) {
            Ok(out) => out,
            Err(LinkError::RetryExhausted { .. }) => {
                self.degrade_region(addr);
                return self.push_baseline_line(addr, line, now);
            }
        };
        // The payload crossed the wire even if it is discarded below —
        // stats mirror the link's delivered-volume accounting.
        self.stats.bytes_to_device += per as u64;
        if out.poisoned || line_checksum(payload) != expect {
            // The effective line: what the clean DBA merge would have
            // produced on the device. The full-line retry delivers exactly
            // this — not the raw fresh line — so recovery stays
            // bit-identical to a fault-free run even where DBA truncation
            // is lossy. (Read before quarantining: a quarantined line
            // refuses reads.)
            let mut effective = self.giant_cache.read_line(addr)?;
            self.giant_cache.disaggregator.merge(&clean[..per], &mut effective);
            if out.poisoned {
                // Poison containment: the home agent refuses the payload
                // and the target line is quarantined, never merged.
                let pkt = CxlPacket::data(Opcode::FlushData, addr, payload.to_vec(), aggregated)
                    .with_poison(true);
                let admitted = self.coherence.admit_data(&pkt);
                debug_assert!(!admitted);
                self.giant_cache.quarantine_line(addr)?;
                self.fstats.quarantined_lines += 1;
            } else {
                self.fstats.checksum_mismatches += 1;
            }
            return self.retry_full_line(addr, &effective, now);
        }
        self.giant_cache.apply_dba_payload(addr, payload)?;
        if self.shadow.is_some() {
            let dirty = if aggregated { self.aggregator.register().dirty_bytes() } else { 4 };
            self.shadow_merge(addr, line, dirty);
        }
        self.stats.param_lines += 1;
        Ok(out.interval)
    }

    /// Step 2 of the ladder: resend as a full, uncompacted 64-byte line.
    fn retry_full_line(
        &mut self,
        addr: Addr,
        line: &LineData,
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        self.fstats.full_line_retries += 1;
        let pushed = self.coherence.write_accounted(Agent::Cpu, addr, LINE_BYTES);
        debug_assert!(pushed || self.cfg.protocol == ProtocolMode::Invalidation);
        let out = match self.link.transfer_checked(
            Direction::ToDevice,
            now,
            LINE_BYTES as u64,
            SimTime::ZERO,
        ) {
            Ok(out) => out,
            Err(LinkError::RetryExhausted { .. }) => {
                self.degrade_region(addr);
                return self.push_baseline_line(addr, line, now);
            }
        };
        self.stats.bytes_to_device += LINE_BYTES as u64;
        if out.poisoned {
            // The retry itself arrived poisoned: contain it and stop
            // trusting the coherent path for this region.
            self.giant_cache.quarantine_line(addr)?;
            self.fstats.quarantined_lines += 1;
            self.degrade_region(addr);
            return self.push_baseline_line(addr, line, now);
        }
        // A clean full-line write both delivers the data and heals any
        // quarantine left by step 1.
        self.giant_cache.write_line(addr, *line)?;
        if let Some(shadow) = &mut self.shadow {
            shadow.insert(addr.0, *line);
        }
        self.stats.param_lines += 1;
        Ok(out.interval)
    }

    /// Step 3 of the ladder: the software-memcpy baseline. A plain full-
    /// line copy outside the coherence machinery — no DBA, no update
    /// protocol, no fault injection (the paper's non-TECO offload path).
    fn push_baseline_line(
        &mut self,
        addr: Addr,
        line: &LineData,
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        let iv = self.link.transfer(Direction::ToDevice, now, LINE_BYTES as u64, SimTime::ZERO);
        self.giant_cache.write_line(addr, *line)?;
        if let Some(shadow) = &mut self.shadow {
            shadow.insert(addr.0, *line);
        }
        self.stats.param_lines += 1;
        self.stats.bytes_to_device += LINE_BYTES as u64;
        Ok(iv)
    }

    /// Record a region as permanently downgraded to the baseline path.
    fn degrade_region(&mut self, addr: Addr) {
        let hit = self.giant_cache.regions().lookup(addr).map(|r| (r.base.0, r.name.clone()));
        if let Some((base, name)) = hit {
            if self.degraded.insert(base) {
                self.fstats.degraded_regions += 1;
                self.degraded_names.push(name);
            }
        }
    }

    /// Is the region containing `addr` downgraded to the baseline?
    fn region_degraded(&self, addr: Addr) -> bool {
        !self.degraded.is_empty()
            && self
                .giant_cache
                .regions()
                .lookup(addr)
                .is_some_and(|r| self.degraded.contains(&r.base.0))
    }

    /// Push one *gradient* cache line device→CPU. Gradients never use DBA
    /// (§V: "The gradients transfers from the accelerator to CPU cannot
    /// apply DBA"); they are full lines, so recovery needs no checksum —
    /// a poisoned delivery gets one bounded resend, and link-retry
    /// exhaustion at any point falls back to the baseline copy.
    pub fn push_grad_line(
        &mut self,
        addr: Addr,
        line: LineData,
        now: SimTime,
    ) -> Result<Interval, SessionError> {
        if self.placement.as_ref().is_some_and(|e| e.owns(addr)) {
            return self.push_side_lines(addr, std::slice::from_ref(&line), now, false);
        }
        if let Some(engine) = &mut self.placement {
            engine.note_write(addr, LINE_BYTES as u64);
        }
        let _ = self.coherence.write(Agent::Device, addr, line.bytes(), false);
        if !self.link.faults_enabled() {
            let iv = self.link.transfer(Direction::ToHost, now, LINE_BYTES as u64, SimTime::ZERO);
            self.stats.grad_lines += 1;
            self.stats.bytes_to_host += LINE_BYTES as u64;
            return Ok(iv);
        }
        // Gradient lines land in host memory, not the giant cache; poison
        // containment is the home agent's admission check, and the bounded
        // resend is the recovery.
        let mut attempts = 0u32;
        loop {
            match self.link.transfer_checked(
                Direction::ToHost,
                now,
                LINE_BYTES as u64,
                SimTime::ZERO,
            ) {
                Ok(out) if out.poisoned && attempts == 0 => {
                    let pkt =
                        CxlPacket::data(Opcode::FlushData, addr, line.bytes().to_vec(), false)
                            .with_poison(true);
                    let admitted = self.coherence.admit_data(&pkt);
                    debug_assert!(!admitted);
                    self.fstats.full_line_retries += 1;
                    attempts += 1;
                }
                Ok(out) => {
                    // Either clean, or the bounded resend also arrived
                    // poisoned — deliver what we have and let the stats
                    // carry the poison record.
                    self.stats.grad_lines += 1;
                    self.stats.bytes_to_host += LINE_BYTES as u64;
                    return Ok(out.interval);
                }
                Err(e @ LinkError::RetryExhausted { .. }) => {
                    return Err(e.into());
                }
            }
        }
    }

    /// The engine-backed push path for side-tier tensors (device-resident
    /// and host-DRAM placements, plus tensors later promoted into the
    /// giant-cache tier). Device-resident lines cross no link at all;
    /// host-DRAM lines cross the pool budget as full 64-byte lines (no
    /// DBA — plain coherent host memory); promoted giant-cache lines pay
    /// the DBA-aggregated wire size. All pool traffic is charged through
    /// the engine's `HostLinkArbiter`.
    fn push_side_lines(
        &mut self,
        base: Addr,
        lines: &[LineData],
        now: SimTime,
        to_device: bool,
    ) -> Result<Interval, SessionError> {
        let n = lines.len() as u64;
        let per_wire = self.aggregator.register().payload_bytes() as u64;
        let engine = self.placement.as_mut().expect("side address implies an engine");
        let (_, tier) = engine.locate(base).ok_or(GiantCacheError::NotMapped(base))?;
        engine.write_lines(base, lines)?;
        engine.note_write(base, n * LINE_BYTES as u64);
        let (charged, iv) = match tier {
            Tier::Device => (0, Interval::new(now, now)),
            Tier::GiantCache => {
                let bytes = if to_device { per_wire * n } else { LINE_BYTES as u64 * n };
                (bytes, engine.charge_pool(now, bytes))
            }
            Tier::HostDram => {
                let bytes = LINE_BYTES as u64 * n;
                (bytes, engine.charge_pool(now, bytes))
            }
        };
        if to_device {
            self.stats.param_lines += n;
            self.stats.bytes_to_device += charged;
        } else {
            self.stats.grad_lines += n;
            self.stats.bytes_to_host += charged;
        }
        Ok(iv)
    }

    /// Evolve the shadow copy of `addr` by the device's merge semantics.
    fn shadow_merge(&mut self, addr: Addr, fresh: &LineData, dirty: u8) {
        let shadow = self.shadow.as_mut().expect("caller checked shadow is on");
        let prev = shadow.get(&addr.0).copied().unwrap_or_else(LineData::zeroed);
        shadow.insert(addr.0, merged_reference(&prev, fresh, dirty));
    }

    /// Is the paranoid auditor enabled?
    pub fn audit_enabled(&self) -> bool {
        self.shadow.is_some()
    }

    /// Run the paranoid auditor now. A no-op returning `Ok` when auditing
    /// is off; otherwise walks every cross-module invariant (see
    /// [`teco_cxl::audit`]) including the shadow-data comparison.
    pub fn run_audit(&self) -> Result<(), SessionError> {
        match &self.shadow {
            None => Ok(()),
            Some(shadow) => audit_all(
                &self.coherence.serial_equivalent(),
                &self.giant_cache,
                &self.link,
                shadow,
            )
            .map_err(SessionError::Audit),
        }
    }

    /// The fence-point audit: paranoid mode is fail-stop, so an enabled
    /// auditor that finds a violation panics with the typed error rather
    /// than letting the run continue on corrupt state. (The `try_*` fence
    /// variants surface it as `Err` instead.)
    fn audit_at_fence(&self) {
        if let Err(e) = self.run_audit() {
            panic!("TECO audit failed at fence: {e}");
        }
    }

    /// `CXLFENCE()` for the CPU→device direction (end of parameter
    /// updates, called inside `optimizer.step()` per Listing 1).
    pub fn cxlfence_params(&mut self, now: SimTime) -> SimTime {
        let t = self.fence.fence(&self.link, Direction::ToDevice, now);
        self.audit_at_fence();
        t
    }

    /// `CXLFENCE()` for the device→CPU direction (end of the gradient
    /// flush, called inside `loss.backward()`).
    pub fn cxlfence_grads(&mut self, now: SimTime) -> SimTime {
        let t = self.fence.fence(&self.link, Direction::ToHost, now);
        self.audit_at_fence();
        t
    }

    /// The fence deadline from the fault config (`0` means unbounded).
    /// One [`FenceDeadline`] value backs every deadline consumer — the
    /// session's `try_*` fences, the cluster's per-device fences, and the
    /// device-loss watchdog — so their expiry semantics cannot drift.
    pub fn fence_deadline(&self) -> FenceDeadline {
        FenceDeadline::from_ns(self.cfg.cxl.fault.fence_timeout_ns)
    }

    /// The shared deadline-checked fence: both directions funnel through
    /// this one helper (the former per-direction copies had duplicated
    /// the timeout translation and bookkeeping).
    fn try_cxlfence(&mut self, dir: Direction, now: SimTime) -> Result<SimTime, SessionError> {
        let deadline = self.fence_deadline();
        let t = self.fence.try_fence(&self.link, dir, now, deadline.timeout()).map_err(|e| {
            self.fstats.fence_timeouts += 1;
            SessionError::Fence(e)
        })?;
        self.run_audit()?;
        Ok(t)
    }

    /// [`TecoSession::cxlfence_params`] with the configured timeout: a
    /// drain that would outlast it surfaces as a typed error instead of
    /// blocking unboundedly.
    pub fn try_cxlfence_params(&mut self, now: SimTime) -> Result<SimTime, SessionError> {
        self.try_cxlfence(Direction::ToDevice, now)
    }

    /// [`TecoSession::cxlfence_grads`] with the configured timeout.
    pub fn try_cxlfence_grads(&mut self, now: SimTime) -> Result<SimTime, SessionError> {
        self.try_cxlfence(Direction::ToHost, now)
    }

    /// Read a line from the device's giant cache (what the GPU kernels
    /// see), or from the placement engine's store for side-tier tensors.
    pub fn device_read_line(&self, addr: Addr) -> Result<LineData, GiantCacheError> {
        if let Some(engine) = &self.placement {
            if engine.owns(addr) {
                return engine.read_line(addr);
            }
        }
        self.giant_cache.read_line(addr)
    }

    /// The DBA payload bytes one 64-byte line currently costs on the wire.
    pub fn wire_bytes_per_line(&self) -> usize {
        self.aggregator.register().payload_bytes()
    }

    /// The merged fault/recovery report: link-side counters (CRC errors,
    /// replays, stalls, poison) plus session-side recovery counters
    /// (quarantines, checksum mismatches, full-line retries, degraded
    /// regions, fence timeouts). All-zero when the fault model is off.
    pub fn fault_report(&self) -> FaultStats {
        let mut merged = *self.link.fault_stats();
        merged.merge(&self.fstats);
        merged
    }

    /// Names of regions downgraded to the software-memcpy baseline, in
    /// degradation order. Empty unless the recovery ladder gave up.
    pub fn degraded_regions(&self) -> &[String] {
        &self.degraded_names
    }

    /// Capture the complete session state: every component's checkpoint
    /// image plus the session-level bookkeeping. `HashMap`/`HashSet`-backed
    /// state is sorted before capture so the serialized form is
    /// deterministic; the reused wire buffer is capacity-only scratch and
    /// is deliberately not captured (a restored session re-grows it on the
    /// first bulk push with no behavioral difference).
    pub fn snapshot(&self) -> SessionSnapshot {
        let mut degraded: Vec<u64> = self.degraded.iter().copied().collect();
        degraded.sort_unstable();
        let shadow = self.shadow.as_ref().map(|shadow| {
            let mut lines: Vec<(u64, Vec<u8>)> =
                shadow.iter().map(|(&a, l)| (a, l.bytes().to_vec())).collect();
            lines.sort_unstable_by_key(|(a, _)| *a);
            lines
        });
        SessionSnapshot {
            cfg: self.cfg.clone(),
            aggregator: self.aggregator.snapshot(),
            giant_cache: self.giant_cache.snapshot(),
            coherence: self.coherence.snapshot(),
            link: self.link.snapshot(),
            fence: self.fence.stats(),
            dba_active: self.dba_active,
            stats: self.stats,
            fstats: self.fstats,
            degraded,
            degraded_names: self.degraded_names.clone(),
            shadow,
            media: self.media.as_ref().map(|m| m.snapshot()),
            placement: self.placement.as_ref().map(|e| e.snapshot()),
        }
    }

    /// Rebuild a session from a captured state. The restored session is
    /// observationally identical to the original at the capture point:
    /// every subsequent push, fence, fault draw, and audit walk produces
    /// bit-identical results.
    pub fn from_snapshot(s: &SessionSnapshot) -> Result<Self, SessionError> {
        s.cfg.validate().map_err(SessionError::Config)?;
        let shadow = s.shadow.as_ref().map(|lines| {
            lines
                .iter()
                .map(|(a, bytes)| {
                    let mut l = LineData::zeroed();
                    l.bytes_mut().copy_from_slice(bytes);
                    (*a, l)
                })
                .collect::<HashMap<u64, LineData>>()
        });
        Ok(TecoSession {
            cfg: s.cfg.clone(),
            aggregator: Aggregator::restore(&s.aggregator),
            giant_cache: GiantCache::restore(&s.giant_cache),
            coherence: CoherenceFabric::restore(&s.coherence),
            link: CxlLink::restore(&s.link),
            fence: CxlFence::from_stats(s.fence),
            dba_active: s.dba_active,
            stats: s.stats,
            wire_buf: Vec::new(),
            fstats: s.fstats,
            degraded: s.degraded.iter().copied().collect(),
            degraded_names: s.degraded_names.clone(),
            shadow,
            media: s.media.as_ref().map(MediaRas::from_snapshot),
            scrub_buf: Vec::new(),
            placement: s.placement.as_ref().map(PlacementEngine::from_snapshot),
        })
    }
}

/// Serialized form of a [`TecoSession`] — the per-crate checkpoint images
/// plus session-level bookkeeping, all in deterministic order.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The configuration the session was built with.
    pub cfg: TecoConfig,
    /// CPU-side CXL module (DBA register + counters).
    pub aggregator: AggregatorSnapshot,
    /// Device memory: resident lines, written/quarantined bitmaps, regions,
    /// and the Disaggregator.
    pub giant_cache: GiantCacheSnapshot,
    /// Coherence engine: per-line MESI states, snoop filter, traffic.
    pub coherence: CoherenceSnapshot,
    /// The link: per-channel server/busy-interval state and the fault
    /// injector's RNG streams (mid-retry kills resume the identical fault
    /// schedule).
    pub link: CxlLinkSnapshot,
    /// Fence counters.
    pub fence: FenceStats,
    /// Has DBA activated?
    pub dba_active: bool,
    /// Session statistics.
    pub stats: SessionStats,
    /// Session-side recovery counters.
    pub fstats: FaultStats,
    /// Degraded region bases, sorted.
    pub degraded: Vec<u64>,
    /// Degraded region names, in degradation order.
    pub degraded_names: Vec<String>,
    /// The auditor's shadow lines, sorted by address; `None` when auditing
    /// is off.
    pub shadow: Option<Vec<(u64, Vec<u8>)>>,
    /// Pool-media RAS state (latent faults, RNG stream, scrub cursor);
    /// `None` when RAS is off.
    pub media: Option<MediaRasSnapshot>,
    /// Tiered placement engine state; `None` under the default
    /// single-tier policy.
    pub placement: Option<PlacementEngineSnapshot>,
}

// Hand-written (de)serialization: the vendored derive has no field
// attributes, and `media`/`placement` must be omitted when `None` —
// committed sweep reports digest serialized session snapshots
// byte-for-byte, so a RAS-off, single-tier snapshot has to keep its
// pre-RAS, pre-placement encoding exactly.
impl Serialize for SessionSnapshot {
    fn to_value(&self) -> serde::Value {
        let mut fields = vec![
            ("cfg".to_string(), self.cfg.to_value()),
            ("aggregator".to_string(), self.aggregator.to_value()),
            ("giant_cache".to_string(), self.giant_cache.to_value()),
            ("coherence".to_string(), self.coherence.to_value()),
            ("link".to_string(), self.link.to_value()),
            ("fence".to_string(), self.fence.to_value()),
            ("dba_active".to_string(), self.dba_active.to_value()),
            ("stats".to_string(), self.stats.to_value()),
            ("fstats".to_string(), self.fstats.to_value()),
            ("degraded".to_string(), self.degraded.to_value()),
            ("degraded_names".to_string(), self.degraded_names.to_value()),
            ("shadow".to_string(), self.shadow.to_value()),
        ];
        if let Some(m) = &self.media {
            fields.push(("media".to_string(), m.to_value()));
        }
        if let Some(p) = &self.placement {
            fields.push(("placement".to_string(), p.to_value()));
        }
        serde::Value::Object(fields)
    }
}

impl Deserialize for SessionSnapshot {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        fn req<T: Deserialize>(v: &serde::Value, key: &str) -> Result<T, serde::Error> {
            T::from_value(v.get(key).ok_or_else(|| {
                serde::Error::custom(format!("missing field `{key}` in SessionSnapshot"))
            })?)
        }
        Ok(SessionSnapshot {
            cfg: req(v, "cfg")?,
            aggregator: req(v, "aggregator")?,
            giant_cache: req(v, "giant_cache")?,
            coherence: req(v, "coherence")?,
            link: req(v, "link")?,
            fence: req(v, "fence")?,
            dba_active: req(v, "dba_active")?,
            stats: req(v, "stats")?,
            fstats: req(v, "fstats")?,
            degraded: req(v, "degraded")?,
            degraded_names: req(v, "degraded_names")?,
            shadow: req(v, "shadow")?,
            media: match v.get("media") {
                Some(mv) => Option::<MediaRasSnapshot>::from_value(mv)?,
                None => None,
            },
            placement: match v.get("placement") {
                Some(pv) => Option::<PlacementEngineSnapshot>::from_value(pv)?,
                None => None,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use teco_cxl::MesiState;

    fn session() -> TecoSession {
        TecoSession::new(TecoConfig::default().with_giant_cache_bytes(1 << 20)).unwrap()
    }

    fn line_with(v: u32) -> LineData {
        let mut l = LineData::zeroed();
        for w in 0..16 {
            l.set_word(w, v.wrapping_add(w as u32));
        }
        l
    }

    #[test]
    fn activation_follows_schedule() {
        let mut s = session();
        assert!(!s.check_activation(0));
        assert!(!s.check_activation(499));
        assert!(s.check_activation(500));
        assert!(s.dba_active());
        assert_eq!(s.wire_bytes_per_line(), 32);
        // Device-side register mirrored.
        assert!(s.giant_cache().disaggregator.register().active());
    }

    #[test]
    fn no_activation_under_invalidation_protocol() {
        let cfg = TecoConfig::default().with_protocol(ProtocolMode::Invalidation);
        let mut s = TecoSession::new(cfg).unwrap();
        assert!(!s.check_activation(10_000));
        assert_eq!(s.wire_bytes_per_line(), 64);
    }

    #[test]
    fn param_line_roundtrip_before_dba() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        let fresh = line_with(0xABCD_0000);
        s.push_param_line(base, fresh, SimTime::ZERO).unwrap();
        assert_eq!(s.device_read_line(base).unwrap(), fresh);
        assert_eq!(s.stats().bytes_to_device, 64);
        // Coherent state after push: both S.
        let st = s.coherence().line_state(base);
        assert_eq!(st.cs, MesiState::S);
        assert_eq!(st.gs, MesiState::S);
    }

    #[test]
    fn param_line_dba_merges_on_device() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        // Step 0: full-line push establishes the resident copy.
        let v0 = line_with(0x4111_2222);
        s.push_param_line(base, v0, SimTime::ZERO).unwrap();
        // Activate DBA and push an update that only changes low 2 bytes.
        s.check_activation(500);
        let mut v1 = v0;
        for w in 0..16 {
            v1.set_word(w, (v0.word(w) & 0xFFFF_0000) | 0x0000_7777);
        }
        s.push_param_line(base, v1, SimTime::from_us(1)).unwrap();
        assert_eq!(s.device_read_line(base).unwrap(), v1, "exact reconstruction");
        // Only 32 payload bytes crossed for the second line.
        assert_eq!(s.stats().bytes_to_device, 64 + 32);
    }

    #[test]
    fn dba_is_lossy_on_high_byte_changes() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        let v0 = line_with(0x1111_0000);
        s.push_param_line(base, v0, SimTime::ZERO).unwrap();
        s.check_activation(999);
        let v1 = line_with(0x2222_0000); // high bytes changed too
        s.push_param_line(base, v1, SimTime::from_us(1)).unwrap();
        let got = s.device_read_line(base).unwrap();
        for w in 0..16 {
            let expect = (v0.word(w) & 0xFFFF_0000) | (v1.word(w) & 0x0000_FFFF);
            assert_eq!(got.word(w), expect, "word {w}");
        }
    }

    #[test]
    fn bulk_push_matches_per_line_loop() {
        // One push_param_lines call must be observationally identical to a
        // loop of push_param_line: device contents, stats, coherence
        // traffic, link volume, and wire interval.
        for activate in [false, true] {
            let mut a = session();
            let mut b = session();
            let (_, base_a) = a.alloc_tensor("params", 4096).unwrap();
            let (_, base_b) = b.alloc_tensor("params", 4096).unwrap();
            if activate {
                a.check_activation(500);
                b.check_activation(500);
            }
            let lines: Vec<LineData> = (0..8).map(|i| line_with(0x4200_0000 + i)).collect();
            let mut iv_a: Option<Interval> = None;
            for (i, &l) in lines.iter().enumerate() {
                let iv =
                    a.push_param_line(Addr(base_a.0 + i as u64 * 64), l, SimTime::ZERO).unwrap();
                iv_a = Some(match iv_a {
                    None => iv,
                    Some(p) => Interval::new(p.start.min(iv.start), p.end.max(iv.end)),
                });
            }
            let iv_b = b.push_param_lines(base_b, &lines, SimTime::ZERO).unwrap();
            assert_eq!(iv_a.unwrap(), iv_b);
            assert_eq!(a.stats().param_lines, b.stats().param_lines);
            assert_eq!(a.stats().bytes_to_device, b.stats().bytes_to_device);
            assert_eq!(a.coherence().to_device(), b.coherence().to_device());
            assert_eq!(a.coherence().to_host(), b.coherence().to_host());
            assert_eq!(a.link().volume(Direction::ToDevice), b.link().volume(Direction::ToDevice));
            for i in 0..8u64 {
                assert_eq!(
                    a.device_read_line(Addr(base_a.0 + i * 64)).unwrap(),
                    b.device_read_line(Addr(base_b.0 + i * 64)).unwrap(),
                    "line {i} (dba={activate})"
                );
            }
        }
    }

    #[test]
    fn bulk_push_rejects_unmapped_run() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 128).unwrap(); // two lines
        let lines = vec![line_with(1); 3];
        assert!(s.push_param_lines(base, &lines, SimTime::ZERO).is_err());
        assert_eq!(s.stats().param_lines, 0, "failed push leaves stats untouched");
    }

    #[test]
    fn fence_drains_link() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 1 << 16).unwrap();
        let mut last_end = SimTime::ZERO;
        for i in 0..100u64 {
            let iv = s
                .push_param_line(Addr(base.0 + i * 64), line_with(i as u32), SimTime::ZERO)
                .unwrap();
            last_end = last_end.max(iv.end);
        }
        let fence_done = s.cxlfence_params(SimTime::ZERO);
        assert!(fence_done >= last_end);
        assert_eq!(s.fence_stats().calls, 1);
    }

    #[test]
    fn gradient_lines_never_aggregate() {
        let mut s = session();
        let (_, gbase) = s.alloc_tensor("grads", 4096).unwrap();
        s.check_activation(1_000); // DBA on for params
        s.push_grad_line(gbase, line_with(7), SimTime::ZERO).unwrap();
        assert_eq!(s.stats().bytes_to_host, 64, "gradients go as full lines");
        assert_eq!(s.link().volume(Direction::ToHost), 64);
    }

    #[test]
    fn unmapped_param_push_fails() {
        let mut s = session();
        let err = s.push_param_line(Addr(0xDEAD_0000), line_with(1), SimTime::ZERO);
        assert!(err.is_err());
    }

    #[test]
    fn listing1_training_loop_shape() {
        // The §VI integration: per step, gradients flush + fence, then
        // params push + fence — exactly two fences per step.
        let mut s = session();
        let (_, pbase) = s.alloc_tensor("params", 1 << 12).unwrap();
        let (_, gbase) = s.alloc_tensor("grads", 1 << 12).unwrap();
        let mut now = SimTime::ZERO;
        for step in 0..3u64 {
            // backward: gradient lines stream out, then CXLFENCE (inside
            // loss.backward()).
            for i in 0..8u64 {
                s.push_grad_line(Addr(gbase.0 + i * 64), line_with(i as u32), now).unwrap();
            }
            now = s.cxlfence_grads(now);
            s.check_activation(step);
            // optimizer.step(): param pushes, then CXLFENCE.
            for i in 0..8u64 {
                s.push_param_line(Addr(pbase.0 + i * 64), line_with(100 + i as u32), now).unwrap();
            }
            now = s.cxlfence_params(now);
        }
        assert_eq!(s.fence_stats().calls, 6);
        assert_eq!(s.stats().param_lines, 24);
        assert_eq!(s.stats().grad_lines, 24);
    }

    fn faulty_session(fault: teco_cxl::FaultConfig) -> TecoSession {
        let cfg = TecoConfig::default().with_giant_cache_bytes(1 << 20).with_fault(fault);
        TecoSession::new(cfg).unwrap()
    }

    #[test]
    fn fault_model_off_reports_all_zero() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        s.push_param_line(base, line_with(1), SimTime::ZERO).unwrap();
        assert!(!s.fault_report().any());
        assert!(s.degraded_regions().is_empty());
    }

    #[test]
    fn checksum_mismatch_retries_as_full_line() {
        // Corrupt every DBA payload: each push detects the mismatch and
        // resends the full 64-byte line, converging to exactly what a
        // fault-free DBA merge would have produced.
        let mut s = faulty_session(teco_cxl::FaultConfig {
            dba_checksum_error_rate: 1.0,
            seed: 11,
            ..teco_cxl::FaultConfig::off()
        });
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        // Establish the resident copy (full line; also corrupted+retried).
        let v0 = line_with(0x6000_0000);
        s.push_param_line(base, v0, SimTime::ZERO).unwrap();
        assert_eq!(s.device_read_line(base).unwrap(), v0);
        s.check_activation(500);
        assert!(s.dba_active());
        // A DBA-conformant update: only the low two bytes change.
        let mut v1 = v0;
        for w in 0..16 {
            v1.set_word(w, (v0.word(w) & 0xFFFF_0000) | 0x0000_5151);
        }
        s.push_param_line(base, v1, SimTime::from_us(1)).unwrap();
        assert_eq!(s.device_read_line(base).unwrap(), v1, "full-line retry is exact");
        let r = s.fault_report();
        assert_eq!(r.checksum_mismatches, 2);
        assert_eq!(r.full_line_retries, 2);
        assert_eq!(r.degraded_regions, 0);
        // (64 corrupt + 64 retry) then (32 corrupt + 64 retry) crossed.
        assert_eq!(s.stats().bytes_to_device, 64 + 64 + 32 + 64);
        assert_eq!(s.stats().bytes_to_device, s.link().volume(Direction::ToDevice));
    }

    #[test]
    fn poison_quarantines_then_full_line_heals() {
        // First transfer of the to-device stream is poisoned under seed 5
        // (rate 1.0 → every transfer); the line is quarantined, and the
        // full-line retry is also poisoned → region degrades to baseline,
        // which delivers the exact data anyway.
        let mut s = faulty_session(teco_cxl::FaultConfig {
            poison_rate: 1.0,
            seed: 5,
            ..teco_cxl::FaultConfig::off()
        });
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        let fresh = line_with(0x7000_0000);
        s.push_param_line(base, fresh, SimTime::ZERO).unwrap();
        assert_eq!(s.device_read_line(base).unwrap(), fresh, "baseline still delivers");
        let r = s.fault_report();
        assert!(r.quarantined_lines >= 1);
        assert_eq!(r.degraded_regions, 1);
        assert_eq!(s.degraded_regions(), ["params"]);
        assert!(!s.giant_cache().is_quarantined(base), "baseline write healed it");
        assert!(s.coherence().poisoned_rejects() >= 1, "home agent refused the payload");
    }

    #[test]
    fn retry_exhaustion_degrades_region_once() {
        let mut s = faulty_session(teco_cxl::FaultConfig {
            crc_error_rate: 1.0,
            retry_limit: 2,
            seed: 9,
            ..teco_cxl::FaultConfig::off()
        });
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        for i in 0..4u64 {
            let fresh = line_with(0x100 + i as u32);
            s.push_param_line(Addr(base.0 + i * 64), fresh, SimTime::ZERO).unwrap();
            assert_eq!(s.device_read_line(Addr(base.0 + i * 64)).unwrap(), fresh);
        }
        let r = s.fault_report();
        assert_eq!(r.degraded_regions, 1, "one region, degraded once");
        assert_eq!(s.degraded_regions().len(), 1);
        // After degradation the baseline path draws no faults: exactly one
        // replay-exhaustion event ever happened.
        assert_eq!(r.replay_exhausted, 1);
        assert_eq!(s.stats().param_lines, 4);
    }

    #[test]
    fn recoverable_faults_converge_to_fault_free_state() {
        // The acceptance criterion: with recoverable fault rates, the
        // giant-cache end state is bit-identical to a fault-free run; only
        // time and FaultStats differ.
        let fault = teco_cxl::FaultConfig {
            crc_error_rate: 0.3,
            stall_rate: 0.2,
            stall_ns: 50,
            dba_checksum_error_rate: 0.3,
            retry_limit: 64, // high enough that nothing exhausts
            seed: 77,
            ..teco_cxl::FaultConfig::off()
        };
        let mut faulty = faulty_session(fault);
        let mut clean = session();
        let (_, bf) = faulty.alloc_tensor("params", 1 << 14).unwrap();
        let (_, bc) = clean.alloc_tensor("params", 1 << 14).unwrap();
        // Establish resident copies with full-line pushes, then ship a
        // DBA-conformant update (low two bytes change) through the
        // activated aggregation path.
        let base_lines: Vec<LineData> = (0..64).map(|i| line_with(0x4400_0000 + i)).collect();
        faulty.push_param_lines(bf, &base_lines, SimTime::ZERO).unwrap();
        clean.push_param_lines(bc, &base_lines, SimTime::ZERO).unwrap();
        faulty.check_activation(500);
        clean.check_activation(500);
        let lines: Vec<LineData> = base_lines
            .iter()
            .map(|l| {
                let mut u = *l;
                for w in 0..16 {
                    u.set_word(w, (l.word(w) & 0xFFFF_0000) | 0x0000_9A3C);
                }
                u
            })
            .collect();
        let iv_f = faulty.push_param_lines(bf, &lines, SimTime::from_us(1)).unwrap();
        let iv_c = clean.push_param_lines(bc, &lines, SimTime::from_us(1)).unwrap();
        for i in 0..64u64 {
            assert_eq!(
                faulty.device_read_line(Addr(bf.0 + i * 64)).unwrap(),
                clean.device_read_line(Addr(bc.0 + i * 64)).unwrap(),
                "line {i}"
            );
        }
        assert!(faulty.fault_report().any(), "faults actually fired");
        assert_eq!(faulty.fault_report().degraded_regions, 0, "all recoverable");
        assert!(iv_f.end > iv_c.end, "recovery costs time");
    }

    #[test]
    fn grad_retry_exhaustion_is_typed_error() {
        let mut s = faulty_session(teco_cxl::FaultConfig {
            crc_error_rate: 1.0,
            retry_limit: 3,
            seed: 21,
            ..teco_cxl::FaultConfig::off()
        });
        let (_, gbase) = s.alloc_tensor("grads", 4096).unwrap();
        let err = s.push_grad_line(gbase, line_with(1), SimTime::ZERO).unwrap_err();
        assert!(matches!(
            err,
            SessionError::Link(LinkError::RetryExhausted { direction: Direction::ToHost, .. })
        ));
        assert_eq!(s.stats().grad_lines, 0, "failed push not counted");
    }

    #[test]
    fn fence_timeout_surfaces_and_counts() {
        // Timeout of 10 µs: an idle direction costs only the 5 µs check
        // overhead and passes; 2048 in-flight lines (~8.7 µs of drain at
        // 15 GB/s) push the loaded direction past it.
        let mut s = faulty_session(teco_cxl::FaultConfig {
            fence_timeout_ns: 10_000,
            stall_rate: 1.0, // any nonzero rate arms the injector
            stall_ns: 1,
            seed: 2,
            ..teco_cxl::FaultConfig::off()
        });
        let (_, base) = s.alloc_tensor("params", 1 << 17).unwrap();
        let lines: Vec<LineData> = (0..2048).map(line_with).collect();
        s.push_param_lines(base, &lines, SimTime::ZERO).unwrap();
        let err = s.try_cxlfence_params(SimTime::ZERO).unwrap_err();
        assert!(matches!(err, SessionError::Fence(_)));
        assert_eq!(s.fault_report().fence_timeouts, 1);
        assert_eq!(s.fence_stats().timeouts, 1);
        // An unbounded timeout succeeds on the untouched direction.
        assert!(s.try_cxlfence_grads(SimTime::ZERO).is_ok());
    }

    fn ras_session(rate: f64, scrub: u64, spares: u64, seed: u64) -> TecoSession {
        let cfg = TecoConfig::default()
            .with_giant_cache_bytes(1 << 20)
            .with_act_aft_steps(10)
            .with_ras(teco_cxl::RasConfig {
                media_faults_per_tick: rate,
                scrub_lines_per_tick: scrub,
                spare_lines: spares,
                seed,
            });
        TecoSession::new(cfg).unwrap()
    }

    /// DBA-conformant update for line `i` at `step`: fixed high halves,
    /// step-varying low halves.
    fn conformant_line(step: u64, i: u64) -> LineData {
        let mut l = LineData::zeroed();
        for w in 0..16u32 {
            let hi = (0x5500_0000u32 | (i as u32) << 8 | w) & 0xFFFF_0000;
            l.set_word(w as usize, hi | (step as u32 & 0xFFFF));
        }
        l
    }

    #[test]
    fn media_faults_retire_and_rebuild_to_clean_content() {
        // Persistent media faults at a high rate, detected by patrol scrub
        // and on-access checks, retired to spares, and rebuilt from the
        // authoritative CPU lines: the final device content is
        // bit-identical to a fault-free run.
        let mut r = ras_session(1.5, 8, 64, 42);
        let mut c = TecoSession::new(
            TecoConfig::default().with_giant_cache_bytes(1 << 20).with_act_aft_steps(10),
        )
        .unwrap();
        let (_, br) = r.alloc_tensor("params", 1 << 12).unwrap(); // 64 lines
        let (_, bc) = c.alloc_tensor("params", 1 << 12).unwrap();
        for step in 0..40u64 {
            r.check_activation(step);
            c.check_activation(step);
            let lines: Vec<LineData> = (0..64).map(|i| conformant_line(step, i)).collect();
            r.push_param_lines(br, &lines, SimTime::ZERO).unwrap();
            c.push_param_lines(bc, &lines, SimTime::ZERO).unwrap();
        }
        let stats = r.ras_report();
        assert!(stats.faults_injected > 0, "faults actually arrived");
        assert!(stats.lines_retired > 0, "retirement fired");
        assert!(stats.rebuilds > 0, "rebuild path fired");
        assert!(stats.detected_by_scrub + stats.detected_on_access > 0);
        for i in 0..64u64 {
            assert_eq!(
                r.device_read_line(Addr(br.0 + i * 64)).unwrap(),
                c.device_read_line(Addr(bc.0 + i * 64)).unwrap(),
                "line {i}"
            );
        }
        assert!(!c.ras_enabled() && r.ras_enabled());
    }

    #[test]
    fn ras_snapshot_roundtrip_resumes_identically() {
        let mut a = ras_session(0.7, 4, 16, 9);
        let (_, base) = a.alloc_tensor("params", 1 << 12).unwrap();
        for step in 0..10u64 {
            a.check_activation(step);
            let lines: Vec<LineData> = (0..64).map(|i| conformant_line(step, i)).collect();
            a.push_param_lines(base, &lines, SimTime::ZERO).unwrap();
        }
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        assert!(json.contains("\"media\""), "RAS-on snapshot carries the media image");
        let mut b = TecoSession::from_snapshot(&serde_json::from_str(&json).unwrap()).unwrap();
        for step in 10..25u64 {
            a.check_activation(step);
            b.check_activation(step);
            let lines: Vec<LineData> = (0..64).map(|i| conformant_line(step, i)).collect();
            a.push_param_lines(base, &lines, SimTime::ZERO).unwrap();
            b.push_param_lines(base, &lines, SimTime::ZERO).unwrap();
        }
        assert_eq!(a.ras_report(), b.ras_report());
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap(),
            "resumed run is byte-identical"
        );
    }

    #[test]
    fn ras_off_snapshot_keeps_pre_ras_bytes() {
        let mut s = session();
        let (_, base) = s.alloc_tensor("params", 4096).unwrap();
        s.push_param_line(base, line_with(3), SimTime::ZERO).unwrap();
        let json = serde_json::to_string(&s.snapshot()).unwrap();
        assert!(!json.contains("\"media\""), "no media image when RAS is off");
        assert!(!json.contains("\"ras\""), "no ras config when off");
        assert!(!json.contains("\"remap\""), "no remap table without spares");
    }

    #[test]
    fn error_context_attributes_device_region_time() {
        let root = SessionError::DeviceDown { device: 3, time_ns: 777 };
        let wrapped = root.clone().in_context(3, Some("grads".to_string()), SimTime::from_ns(1234));
        let msg = wrapped.to_string();
        assert!(msg.contains("device 3"), "{msg}");
        assert!(msg.contains("`grads`"), "{msg}");
        assert!(msg.contains("t=1234 ns"), "{msg}");
        assert!(matches!(wrapped.root(), SessionError::DeviceDown { device: 3, .. }));
        assert_eq!(*wrapped.root(), root);
    }

    fn tiered_cfg() -> TecoConfig {
        TecoConfig::default().with_giant_cache_bytes(1 << 20).with_placement(
            crate::placement::PlacementPolicy::Tiered(crate::placement::TieredPolicy {
                device_capacity_bytes: 1 << 16,
                device_size_threshold: 4096,
                ..Default::default()
            }),
        )
    }

    #[test]
    fn tiered_policy_changes_placement_but_default_builds_no_engine() {
        let d = session();
        assert!(!d.placement_enabled(), "default policy constructs no engine");
        let mut s = TecoSession::new(tiered_cfg()).unwrap();
        assert!(s.placement_enabled());
        let (_, pbase) = s.alloc_tensor("params", 8192).unwrap();
        let (_, mbase) = s.alloc_tensor("moment_m", 8192).unwrap();
        let (_, ebase) = s.alloc_tensor("embed", 4096).unwrap();
        let engine = s.placement().unwrap();
        assert!(pbase.0 < crate::placement::SIDE_BASE, "params stay in the giant cache");
        assert!(mbase.0 >= crate::placement::SIDE_BASE, "moments offloaded to host DRAM");
        assert!(ebase.0 >= crate::placement::SIDE_BASE, "small tensor is device-resident");
        use teco_mem::tier::Tier;
        assert_eq!(engine.map().used(Tier::GiantCache), 8192);
        assert_eq!(engine.map().used(Tier::HostDram), 8192);
        assert_eq!(engine.map().used(Tier::Device), 4096);

        // Device-resident pushes cross no link; host-DRAM pushes cross the
        // pool as full lines; the giant-cache path is untouched.
        let before = s.link().volume(Direction::ToDevice);
        s.push_param_line(ebase, line_with(1), SimTime::ZERO).unwrap();
        assert_eq!(s.link().volume(Direction::ToDevice), before, "device tier: no link bytes");
        assert_eq!(s.device_read_line(ebase).unwrap(), line_with(1));
        let iv = s.push_param_line(mbase, line_with(2), SimTime::ZERO).unwrap();
        assert!(iv.end > iv.start, "host-DRAM push pays pool time");
        assert_eq!(s.device_read_line(mbase).unwrap(), line_with(2));
        assert_eq!(s.placement().unwrap().arbiter().broadcast_bytes(), 64);
        s.push_param_line(pbase, line_with(3), SimTime::ZERO).unwrap();
        assert_eq!(s.link().volume(Direction::ToDevice), before + 64, "giant cache uses the link");
    }

    #[test]
    fn tiered_session_snapshot_roundtrip_replays_identically() {
        let mut a = TecoSession::new(tiered_cfg()).unwrap();
        let (_, pbase) = a.alloc_tensor("params", 8192).unwrap();
        let (_, mbase) = a.alloc_tensor("moment_m", 8192).unwrap();
        for step in 0..4u64 {
            for i in 0..8u64 {
                a.push_param_line(Addr(pbase.0 + i * 64), line_with(i as u32), SimTime::ZERO)
                    .unwrap();
                a.push_param_line(Addr(mbase.0 + i * 64), line_with(90 + i as u32), SimTime::ZERO)
                    .unwrap();
            }
            a.check_activation(step);
        }
        let json = serde_json::to_string(&a.snapshot()).unwrap();
        assert!(json.contains("\"placement\""), "tiered snapshot carries the engine image");
        let mut b = TecoSession::from_snapshot(&serde_json::from_str(&json).unwrap()).unwrap();
        for step in 4..8u64 {
            for i in 0..8u64 {
                let l = line_with(1000 + step as u32 * 8 + i as u32);
                let ia = a.push_param_line(Addr(mbase.0 + i * 64), l, SimTime::ZERO).unwrap();
                let ib = b.push_param_line(Addr(mbase.0 + i * 64), l, SimTime::ZERO).unwrap();
                assert_eq!(ia, ib);
            }
            a.check_activation(step);
            b.check_activation(step);
        }
        assert_eq!(a.placement().unwrap().stats(), b.placement().unwrap().stats());
        assert_eq!(
            serde_json::to_string(&a.snapshot()).unwrap(),
            serde_json::to_string(&b.snapshot()).unwrap(),
            "resumed tiered run is byte-identical"
        );
    }

    #[test]
    fn hot_host_dram_tensor_promotes_at_boundary_only() {
        let mut s = TecoSession::new(tiered_cfg()).unwrap();
        // Above the device-size threshold, so the class rule (moments →
        // host DRAM) decides the initial tier.
        let (_, mbase) = s.alloc_tensor("moment_m", 8192).unwrap();
        use teco_mem::tier::Tier;
        for i in 0..8u64 {
            s.push_param_line(Addr(mbase.0 + (i % 4) * 64), line_with(i as u32), SimTime::ZERO)
                .unwrap();
            // Mid-step: still host-DRAM no matter how hot.
            assert_eq!(s.placement().unwrap().map().tensors()[0].tier, Tier::HostDram);
        }
        s.check_activation(0);
        assert_eq!(
            s.placement().unwrap().map().tensors()[0].tier,
            Tier::GiantCache,
            "promotion lands exactly at the step boundary"
        );
        assert_eq!(s.placement().unwrap().stats().promotions, 1);
        // The data survived the tier change (address is stable).
        assert_eq!(s.device_read_line(Addr(mbase.0 + 3 * 64)).unwrap(), line_with(7));
    }

    #[test]
    fn try_fence_unbounded_matches_legacy_fence() {
        // fence_timeout_ns = 0 → unbounded: try_* agrees with fence.
        let mut a = session();
        let mut b = session();
        let (_, ba) = a.alloc_tensor("params", 4096).unwrap();
        let (_, bb) = b.alloc_tensor("params", 4096).unwrap();
        a.push_param_line(ba, line_with(4), SimTime::ZERO).unwrap();
        b.push_param_line(bb, line_with(4), SimTime::ZERO).unwrap();
        let t_legacy = a.cxlfence_params(SimTime::ZERO);
        let t_try = b.try_cxlfence_params(SimTime::ZERO).unwrap();
        assert_eq!(t_legacy, t_try);
    }
}
